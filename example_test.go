package snoopy_test

import (
	"fmt"
	"time"

	"snoopy"
)

// Example shows the minimal lifecycle: open, load, read, write.
func Example() {
	st, err := snoopy.Open(snoopy.Config{
		SubORAMs:      2,
		LoadBalancers: 1,
		Epoch:         2 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	defer st.Close()

	if err := st.Load(map[uint64][]byte{
		42: []byte("the answer"),
	}); err != nil {
		panic(err)
	}

	v, ok, _ := st.Read(42)
	fmt.Println(ok, string(v[:10]))

	prev, _, _ := st.Write(42, []byte("rewritten!"))
	fmt.Println(string(prev[:10]))

	v, _, _ = st.Read(42)
	fmt.Println(string(v[:10]))
	// Output:
	// true the answer
	// the answer
	// rewritten!
}

// ExampleStore_Do shows submitting a whole batch of operations that
// complete together in one epoch.
func ExampleStore_Do() {
	st, err := snoopy.Open(snoopy.Config{SubORAMs: 2, Epoch: 2 * time.Millisecond})
	if err != nil {
		panic(err)
	}
	defer st.Close()
	st.Load(map[uint64][]byte{1: []byte("a"), 2: []byte("b")})

	results := st.Do([]snoopy.Op{
		{Key: 1},
		{Write: true, Key: 2, Value: []byte("B")},
		{Key: 404}, // not loaded
	})
	for _, r := range results {
		if r.Found {
			fmt.Printf("%q\n", r.Value[:1])
		} else {
			fmt.Println("missing")
		}
	}
	// Output:
	// "a"
	// "b"
	// missing
}

// ExampleStore_EnableACL shows the Appendix-D access control extension.
func ExampleStore_EnableACL() {
	st, err := snoopy.Open(snoopy.Config{SubORAMs: 1, Epoch: 2 * time.Millisecond})
	if err != nil {
		panic(err)
	}
	defer st.Close()
	st.Load(map[uint64][]byte{7: []byte("classified")})
	st.EnableACL([]snoopy.ACLRule{
		{User: 1, Object: 7, Op: snoopy.OpRead},
	}, 1)

	_, ok, _ := st.ReadAs(1, 7) // granted
	fmt.Println("user 1:", ok)
	_, ok, _ = st.ReadAs(2, 7) // denied, indistinguishably
	fmt.Println("user 2:", ok)
	// Output:
	// user 1: true
	// user 2: false
}
