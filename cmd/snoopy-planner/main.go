// Command snoopy-planner runs the paper's §6 deployment planner: given a
// data size and performance targets, it calibrates component costs on this
// machine and prints the cheapest configuration.
//
//	snoopy-planner -objects 2000000 -block 160 -throughput 50000 -latency 1s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"snoopy/internal/planner"
)

func main() {
	objects := flag.Int("objects", 2_000_000, "number of stored objects")
	block := flag.Int("block", 160, "object size in bytes")
	throughput := flag.Float64("throughput", 50_000, "minimum throughput (requests/second)")
	latency := flag.Duration("latency", time.Second, "maximum average latency")
	lbPrice := flag.Float64("lb-price", 420, "load balancer node $/month")
	subPrice := flag.Float64("sub-price", 420, "subORAM node $/month")
	maxLB := flag.Int("max-lb", 10, "search bound: load balancers")
	maxSub := flag.Int("max-sub", 40, "search bound: subORAMs")
	flag.Parse()

	fmt.Println("calibrating component costs on this machine...")
	model := planner.Calibrate(*block, 128)
	plan, err := planner.Optimize(planner.Requirements{
		Objects:          *objects,
		BlockSize:        *block,
		MinThroughput:    *throughput,
		MaxLatency:       *latency,
		MaxLoadBalancers: *maxLB,
		MaxSubORAMs:      *maxSub,
	}, model, planner.Prices{LoadBalancer: *lbPrice, SubORAM: *subPrice})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("recommended configuration for %d x %dB objects, >=%.0f reqs/s, <=%v avg latency:\n",
		*objects, *block, *throughput, *latency)
	fmt.Printf("  load balancers: %d\n", plan.LoadBalancers)
	fmt.Printf("  subORAMs:       %d\n", plan.SubORAMs)
	fmt.Printf("  epoch:          %v\n", plan.Epoch.Round(time.Millisecond))
	fmt.Printf("  avg latency:    %v\n", plan.AvgLatency.Round(time.Millisecond))
	fmt.Printf("  throughput:     %.0f reqs/s\n", plan.Throughput)
	fmt.Printf("  cost:           $%.0f/month (%d machines)\n", plan.CostPerMonth, plan.Machines())
}
