// Command snoopy-planner runs the paper's §6 deployment planner: given a
// data size and performance targets, it calibrates component costs on this
// machine and prints the cheapest configuration.
//
//	snoopy-planner -objects 2000000 -block 160 -throughput 50000 -latency 1s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"snoopy/internal/planner"
)

func main() {
	objects := flag.Int("objects", 2_000_000, "number of stored objects")
	block := flag.Int("block", 160, "object size in bytes")
	throughput := flag.Float64("throughput", 50_000, "minimum throughput (requests/second)")
	latency := flag.Duration("latency", time.Second, "maximum average latency")
	lbPrice := flag.Float64("lb-price", 420, "load balancer node $/month")
	subPrice := flag.Float64("sub-price", 420, "subORAM node $/month")
	maxLB := flag.Int("max-lb", 10, "search bound: load balancers")
	maxSub := flag.Int("max-sub", 40, "search bound: subORAMs")
	maxLeaves := flag.Int("max-leaves", 8, "search bound: leaf load balancers per plane (1 = monolithic only)")
	flag.Parse()

	fmt.Println("calibrating component costs on this machine...")
	model := planner.Calibrate(*block, 128)
	plan, err := planner.Optimize(planner.Requirements{
		Objects:          *objects,
		BlockSize:        *block,
		MinThroughput:    *throughput,
		MaxLatency:       *latency,
		MaxLoadBalancers: *maxLB,
		MaxSubORAMs:      *maxSub,
		MaxLBLeaves:      *maxLeaves,
	}, model, planner.Prices{LoadBalancer: *lbPrice, SubORAM: *subPrice})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("recommended configuration for %d x %dB objects, >=%.0f reqs/s, <=%v avg latency:\n",
		*objects, *block, *throughput, *latency)
	fmt.Print(plan.Format())
}
