// traffic.go implements `snoopy-bench -traffic`: the open-loop
// million-session traffic harness. It drives the scenario suite
// (internal/loadgen) at a reference offered load against either an
// in-process deployment or a real TCP cluster of snoopy-server processes,
// then sweeps offered rates to locate the sustained-throughput knee and
// compares it against the paper's Eq. 1–2 closed form (internal/planner)
// and the discrete-event simulator (internal/simnet), both built from a
// cost model calibrated on this machine. Results go to a JSON report
// (results/BENCH_traffic.json via scripts/traffic.sh).
//
// Latency is coordinated-omission-safe: every sample is measured from the
// request's intended send time on the precomputed schedule, so server
// stalls are charged to the server even when they also stall the
// generator (see internal/loadgen).
package main

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"snoopy"
	"snoopy/internal/crypt"
	"snoopy/internal/enclave"
	"snoopy/internal/loadgen"
	"snoopy/internal/planner"
	"snoopy/internal/simnet"
)

// kneeToleranceFactor is the documented agreement band between the
// measured knee and the simnet prediction: within a factor of 8 each way.
// The simulator prices only the modeled pipeline stages; the harness
// measures end-to-end through client-side goroutine scheduling and the
// epoch ticker's phase, so this is an order-of-magnitude drift alarm, not
// a percentage gate. The exact measured/predicted ratio is recorded in
// the report for trend tracking.
const kneeToleranceFactor = 8.0

// p99RegressionSlack is the baseline gate: p99 at the reference load may
// not regress more than 10% against the committed baseline report.
const p99RegressionSlack = 0.10

type trafficOptions struct {
	out       string
	servers   string // comma-separated TCP subORAM addresses; empty = in-process
	platform  string // shared platform key hex (with -servers)
	scenarios string // comma list of suite scenario names, or "all"
	sessions  int
	rate      float64
	duration  time.Duration
	epoch     time.Duration
	objects   int
	block     int
	lbs       int
	subs      int
	knee      bool
	baseline  string
}

type trafficConfig struct {
	Mode      string   `json:"mode"` // "in-process" or "tcp"
	Servers   []string `json:"servers,omitempty"`
	Sessions  int      `json:"sessions"`
	RateRPS   float64  `json:"reference_rate_rps"`
	DurationS float64  `json:"duration_s"`
	EpochMS   float64  `json:"epoch_ms"`
	Objects   int      `json:"objects"`
	Block     int      `json:"block_size"`
	LBs       int      `json:"load_balancers"`
	SubORAMs  int      `json:"suborams"`
}

type trafficPrediction struct {
	// PlannerRPS is the Eq. 1–2 closed-form capacity (MaxLatency pinned
	// to 5T/2 so the epoch equals the deployed epoch).
	PlannerRPS float64 `json:"planner_eq12_rps"`
	// SimnetRPS is the discrete-event simulator's knee for the same
	// calibrated cost model and deployment shape.
	SimnetRPS float64 `json:"simnet_rps"`
	// MeasuredKneeRPS is the open-loop harness's sustained-throughput
	// knee from the rate sweep.
	MeasuredKneeRPS    float64 `json:"measured_knee_rps"`
	MeasuredOverSimnet float64 `json:"measured_over_simnet"`
	ToleranceFactor    float64 `json:"tolerance_factor"`
	WithinTolerance    bool    `json:"within_tolerance"`
}

type trafficReport struct {
	Config    trafficConfig      `json:"config"`
	Scenarios []loadgen.Report   `json:"scenarios"`
	Knee      *loadgen.Knee      `json:"knee,omitempty"`
	Predicted *trafficPrediction `json:"predicted,omitempty"`
}

// trafficOpener returns a factory producing fresh stores: a new in-process
// deployment, or a fresh attested dial of the same TCP cluster (the
// cluster's partitions are re-initialized by LoadSlices on each open, so an
// overloaded probe's backlog cannot poison the next).
func trafficOpener(opt trafficOptions) (func() (loadgen.Store, func(), error), error) {
	ids := make([]uint64, opt.objects)
	data := make([]byte, opt.objects*opt.block)
	for i := range ids {
		ids[i] = uint64(i)
		data[i*opt.block] = byte(i + 1)
	}

	if opt.servers == "" {
		return func() (loadgen.Store, func(), error) {
			st, err := snoopy.Open(snoopy.Config{
				BlockSize:     opt.block,
				LoadBalancers: opt.lbs,
				SubORAMs:      opt.subs,
				Epoch:         opt.epoch,
			})
			if err != nil {
				return nil, nil, err
			}
			if err := st.LoadSlices(ids, data); err != nil {
				st.Close()
				return nil, nil, err
			}
			return st, st.Close, nil
		}, nil
	}

	var key crypt.Key
	raw, err := hex.DecodeString(opt.platform)
	if err != nil || len(raw) != crypt.KeySize {
		return nil, fmt.Errorf("-platform must be %d hex chars (copy it from snoopy-server)", 2*crypt.KeySize)
	}
	copy(key[:], raw)
	platform := enclave.NewPlatformFromKey(key)
	m := snoopy.Measure("snoopy-suboram-v1")
	addrs := strings.Split(opt.servers, ",")
	return func() (loadgen.Store, func(), error) {
		var subs []snoopy.SubORAM
		for _, addr := range addrs {
			sub, err := snoopy.DialSubORAMConfig(strings.TrimSpace(addr), platform, m,
				snoopy.DialConfig{Epoch: opt.epoch})
			if err != nil {
				return nil, nil, fmt.Errorf("dial %s: %w", addr, err)
			}
			subs = append(subs, sub)
		}
		st, err := snoopy.OpenWithSubORAMs(snoopy.Config{
			BlockSize:     opt.block,
			LoadBalancers: opt.lbs,
			Epoch:         opt.epoch,
		}, subs)
		if err != nil {
			return nil, nil, err
		}
		if err := st.LoadSlices(ids, data); err != nil {
			st.Close()
			return nil, nil, err
		}
		return st, st.Close, nil
	}, nil
}

func runTraffic(opt trafficOptions) error {
	open, err := trafficOpener(opt)
	if err != nil {
		return err
	}

	var rep trafficReport
	rep.Config = trafficConfig{
		Mode:      "in-process",
		Sessions:  opt.sessions,
		RateRPS:   opt.rate,
		DurationS: opt.duration.Seconds(),
		EpochMS:   float64(opt.epoch) / float64(time.Millisecond),
		Objects:   opt.objects,
		Block:     opt.block,
		LBs:       opt.lbs,
		SubORAMs:  opt.subs,
	}
	if opt.servers != "" {
		rep.Config.Mode = "tcp"
		rep.Config.Servers = strings.Split(opt.servers, ",")
	}

	// --- Scenario suite at the reference load ---
	suite := loadgen.Suite(opt.epoch)
	if opt.scenarios != "" && opt.scenarios != "all" {
		var picked []loadgen.Scenario
		for _, name := range strings.Split(opt.scenarios, ",") {
			sc, ok := loadgen.Named(strings.TrimSpace(name), opt.epoch)
			if !ok {
				return fmt.Errorf("unknown scenario %q (want one of the suite names)", name)
			}
			picked = append(picked, sc)
		}
		suite = picked
	}
	for i, sc := range suite {
		st, cleanup, err := open()
		if err != nil {
			return fmt.Errorf("open store for scenario %s: %w", sc.Name, err)
		}
		r, err := loadgen.Run(st, loadgen.Config{
			Scenario: sc,
			Sessions: opt.sessions,
			Rate:     opt.rate,
			Duration: opt.duration,
			Objects:  opt.objects,
			Seed:     int64(100 + i),
			Epoch:    opt.epoch,
		})
		cleanup()
		if err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		if r.TimedOut {
			return fmt.Errorf("scenario %s: drain timed out (%d of %d completed)", sc.Name, r.Completed, r.Submitted)
		}
		if r.Failed > 0 {
			return fmt.Errorf("scenario %s: %d operations failed", sc.Name, r.Failed)
		}
		fmt.Printf("traffic %-16s offered %.0f rps achieved %.0f rps  p50=%.1fms p99=%.1fms p999=%.1fms\n",
			sc.Name, r.OfferedRate, r.AchievedRate, r.Latency.P50, r.Latency.P99, r.Latency.P999)
		rep.Scenarios = append(rep.Scenarios, r)
	}

	// --- Knee sweep vs Eq. 1–2 / simnet prediction ---
	if opt.knee {
		if err := runTrafficKnee(opt, open, &rep); err != nil {
			return err
		}
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(opt.out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := os.WriteFile(opt.out, append(raw, '\n'), 0o644); err != nil {
		return err
	}

	if opt.baseline != "" {
		return gateTrafficBaseline(opt, rep)
	}
	return nil
}

func runTrafficKnee(opt trafficOptions, open func() (loadgen.Store, func(), error), rep *trafficReport) error {
	lambda := 128 // core.Config default; public deployment parameter
	fmt.Printf("calibrating cost model (block=%d lambda=%d)...\n", opt.block, lambda)
	model := planner.Calibrate(opt.block, lambda)
	plannerRPS := planner.MaxThroughput(planner.Requirements{
		Objects:   opt.objects,
		BlockSize: opt.block,
		// Pin Eq. 2's latency bound to 5T/2 so the closed form prices
		// exactly the deployed epoch.
		MaxLatency: 5 * opt.epoch / 2,
		Lambda:     lambda,
	}, model, opt.lbs, opt.subs)
	simnetRPS, err := simnet.MaxStableThroughput(simnet.Config{
		LBs: opt.lbs, Subs: opt.subs, Objects: opt.objects, Block: opt.block,
		Lambda: lambda, Epoch: opt.epoch, Model: model, Epochs: 40, Seed: 1,
	}, 0)
	if err != nil {
		return fmt.Errorf("simnet prediction: %w", err)
	}
	if simnetRPS <= 0 {
		return fmt.Errorf("simnet predicts zero capacity for this deployment shape")
	}
	fmt.Printf("predicted capacity: planner Eq.1-2 %.0f rps, simnet %.0f rps\n", plannerRPS, simnetRPS)

	// Geometric sweep bracketing the prediction. The p99 gate is 5T —
	// twice Eq. 2's 5T/2 bound, leaving room for stochastic queueing right
	// at the knee; the goodput gate requires 90% of the offered load to
	// complete within the run.
	rates := []float64{simnetRPS / 4, simnetRPS / 2, simnetRPS, 2 * simnetRPS}
	base := loadgen.Config{
		Scenario: loadgen.Scenario{Name: "knee-poisson-uniform", WriteFrac: 0.5},
		Sessions: opt.sessions,
		Duration: opt.duration,
		Objects:  opt.objects,
		Seed:     17,
		Epoch:    opt.epoch,
	}
	knee, err := loadgen.FindKnee(open, base, rates, 5*opt.epoch, 0.9)
	if err != nil {
		return fmt.Errorf("knee sweep: %w", err)
	}
	for _, p := range knee.Probes {
		fmt.Printf("knee probe %8.0f rps: achieved %.0f rps p99=%.1fms sustained=%v\n",
			p.Rate, p.Achieved, p.P99ms, p.Sustained)
	}
	ratio := knee.Rate / simnetRPS
	pred := &trafficPrediction{
		PlannerRPS:         plannerRPS,
		SimnetRPS:          simnetRPS,
		MeasuredKneeRPS:    knee.Rate,
		MeasuredOverSimnet: ratio,
		ToleranceFactor:    kneeToleranceFactor,
		WithinTolerance:    ratio >= 1/kneeToleranceFactor && ratio <= kneeToleranceFactor,
	}
	rep.Knee = &knee
	rep.Predicted = pred
	fmt.Printf("measured knee %.0f rps (%.2fx simnet prediction)\n", knee.Rate, ratio)
	if !pred.WithinTolerance {
		return fmt.Errorf("measured knee %.0f rps is outside the %gx tolerance band around the simnet prediction %.0f rps",
			knee.Rate, kneeToleranceFactor, simnetRPS)
	}
	return nil
}

// gateTrafficBaseline fails the run if p99 at the reference load regressed
// more than p99RegressionSlack against the committed baseline report. The
// reference point is the first scenario both reports share (the suite
// leads with poisson-uniform).
func gateTrafficBaseline(opt trafficOptions, rep trafficReport) error {
	raw, err := os.ReadFile(opt.baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base trafficReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", opt.baseline, err)
	}
	baseP99 := make(map[string]float64, len(base.Scenarios))
	for _, s := range base.Scenarios {
		baseP99[s.Scenario] = s.Latency.P99
	}
	compared := 0
	for _, s := range rep.Scenarios {
		old, ok := baseP99[s.Scenario]
		if !ok || old <= 0 {
			continue
		}
		compared++
		if s.Latency.P99 > old*(1+p99RegressionSlack) {
			return fmt.Errorf("p99 regression in %s: %.2fms vs baseline %.2fms (>%.0f%% slack)",
				s.Scenario, s.Latency.P99, old, p99RegressionSlack*100)
		}
		fmt.Printf("baseline gate %-16s p99 %.2fms vs %.2fms: ok\n", s.Scenario, s.Latency.P99, old)
	}
	if compared == 0 {
		return fmt.Errorf("baseline %s shares no scenarios with this run", opt.baseline)
	}
	return nil
}
