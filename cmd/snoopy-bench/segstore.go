package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"snoopy/internal/crypt"
	"snoopy/internal/segstore"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
)

// segstoreReport is the shape of results/BENCH_segstore.json: one
// memory-resident baseline and one disk-resident row per segment size, all
// driving the identical batch workload over the identical partition. The
// interesting ratio is disk scan_mb_s versus the memory baseline — that is
// the bandwidth price of partitions larger than RAM — and how it moves with
// segment size (bigger segments amortize per-segment seal/IO overhead at
// the cost of a bigger streaming buffer).
type segstoreReport struct {
	Config struct {
		Blocks    int `json:"blocks"`
		BlockSize int `json:"block_size"`
		BatchSize int `json:"batch_size"`
		Iters     int `json:"iters"`
	} `json:"config"`
	Memory segstoreRow   `json:"memory"`
	Disk   []segstoreRow `json:"disk"`
}

type segstoreRow struct {
	SegmentBytes  int     `json:"segment_bytes,omitempty"`
	SegmentBlocks int     `json:"segment_blocks,omitempty"`
	BatchMs       float64 `json:"batch_ms"`
	ScanMBps      float64 `json:"scan_mb_s"`
	// ScanAllocsPerOp is heap allocations per full steady-state segment
	// scan (disk rows only). The streaming path pools every buffer, so
	// this must be zero; internal/segstore's alloc test guards the same
	// invariant in CI.
	ScanAllocsPerOp uint64 `json:"scan_allocs_per_op,omitempty"`
}

// segstoreBatches times iters identical read batches against one partition
// and returns (ms per batch, scanned MB/s). Every batch forces the full
// linear scan, so scanned bytes per batch is the whole partition.
func segstoreBatches(sub *suboram.SubORAM, blocks, blockSize, batchSize, iters int) (float64, float64, error) {
	reqs := store.NewRequests(batchSize, blockSize)
	for i := 0; i < batchSize; i++ {
		reqs.SetRow(i, store.OpRead, uint64((i*7)%blocks), 0, uint64(i), uint64(i), nil)
	}
	if _, err := sub.BatchAccess(reqs.Clone()); err != nil { // warm-up
		return 0, 0, err
	}
	start := time.Now()
	for it := 0; it < iters; it++ {
		if _, err := sub.BatchAccess(reqs.Clone()); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	batchMs := float64(elapsed.Milliseconds()) / float64(iters)
	scanned := float64(blocks*blockSize*iters) / (1 << 20)
	return batchMs, scanned / elapsed.Seconds(), nil
}

// runSegstore writes the memory-vs-disk scan comparison to path.
func runSegstore(path string) error {
	var rep segstoreReport
	rep.Config.Blocks = 1 << 14
	rep.Config.BlockSize = 160
	rep.Config.BatchSize = 256
	rep.Config.Iters = 8

	ids := make([]uint64, rep.Config.Blocks)
	data := make([]byte, rep.Config.Blocks*rep.Config.BlockSize)
	for i := range ids {
		ids[i] = uint64(i)
		data[i*rep.Config.BlockSize] = byte(i)
	}

	mem := suboram.New(suboram.Config{BlockSize: rep.Config.BlockSize})
	if err := mem.Init(ids, data); err != nil {
		return err
	}
	var err error
	rep.Memory.BatchMs, rep.Memory.ScanMBps, err = segstoreBatches(
		mem, rep.Config.Blocks, rep.Config.BlockSize, rep.Config.BatchSize, rep.Config.Iters)
	if err != nil {
		return err
	}

	for _, segBytes := range []int{16384, 65536, 262144} {
		row, err := segstoreDiskRow(rep, ids, data, segBytes)
		if err != nil {
			return err
		}
		rep.Disk = append(rep.Disk, row)
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func segstoreDiskRow(rep segstoreReport, ids []uint64, data []byte, segBytes int) (segstoreRow, error) {
	row := segstoreRow{SegmentBytes: segBytes, SegmentBlocks: segBytes / rep.Config.BlockSize}
	dir, err := os.MkdirTemp("", "snoopy-segbench")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)
	ss, err := segstore.Open(dir, segstore.Options{
		BlockSize:     rep.Config.BlockSize,
		SegmentBlocks: row.SegmentBlocks,
		Key:           crypt.MustNewKey(),
	})
	if err != nil {
		return row, err
	}
	defer ss.Close()
	sub := suboram.New(suboram.Config{BlockSize: rep.Config.BlockSize, Store: ss})
	if err := sub.Init(ids, data); err != nil {
		return row, err
	}
	row.BatchMs, row.ScanMBps, err = segstoreBatches(
		sub, rep.Config.Blocks, rep.Config.BlockSize, rep.Config.BatchSize, rep.Config.Iters)
	if err != nil {
		return row, err
	}

	// Steady-state allocation count of the raw streaming scan loop.
	noop := func(i int, blk []byte) {}
	if err := ss.Scan(0, ss.NumBlocks(), noop); err != nil { // warm the buffer pool
		return row, err
	}
	const allocIters = 4
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < allocIters; i++ {
		if err := ss.Scan(0, ss.NumBlocks(), noop); err != nil {
			return row, err
		}
	}
	runtime.ReadMemStats(&m1)
	row.ScanAllocsPerOp = (m1.Mallocs - m0.Mallocs) / allocIters
	fmt.Printf("segstore bench: seg=%dB scan=%.1f MB/s (memory %.1f MB/s), %d allocs/scan\n",
		segBytes, row.ScanMBps, rep.Memory.ScanMBps, row.ScanAllocsPerOp)
	return row, nil
}
