// Command snoopy-bench regenerates the tables and figures of the Snoopy
// paper's evaluation (SOSP'21 §8). Each figure prints the same rows/series
// the paper plots; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	snoopy-bench -fig 9a            # one figure
//	snoopy-bench -fig all           # everything (minutes at default scale)
//	snoopy-bench -fig 9a -full      # paper-scale data sizes (slow)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"snoopy"
	"snoopy/internal/figures"
)

// observabilityReport is the shape of results/BENCH_observability.json: the
// public run configuration plus a full telemetry snapshot (counters, gauges,
// histograms, and the recorded epoch stage spans) of an instrumented run.
type observabilityReport struct {
	Config struct {
		LoadBalancers int `json:"load_balancers"`
		SubORAMs      int `json:"suborams"`
		Objects       int `json:"objects"`
		BlockSize     int `json:"block_size"`
		Ops           int `json:"ops"`
	} `json:"config"`
	Telemetry snoopy.TelemetrySnapshot `json:"telemetry"`
}

// runObservability drives a small instrumented deployment and writes the
// registry snapshot to path — the observability companion to the figure
// benchmarks: it records where epoch time goes (stage spans) rather than
// just end-to-end numbers.
func runObservability(path string) error {
	var rep observabilityReport
	rep.Config.LoadBalancers = 2
	rep.Config.SubORAMs = 4
	rep.Config.Objects = 4096
	rep.Config.BlockSize = 160
	rep.Config.Ops = 512

	reg := snoopy.NewTelemetry()
	st, err := snoopy.Open(snoopy.Config{
		BlockSize:     rep.Config.BlockSize,
		LoadBalancers: rep.Config.LoadBalancers,
		SubORAMs:      rep.Config.SubORAMs,
		Telemetry:     reg,
	})
	if err != nil {
		return err
	}
	defer st.Close()

	objects := make(map[uint64][]byte, rep.Config.Objects)
	for i := 0; i < rep.Config.Objects; i++ {
		objects[uint64(i)] = []byte(fmt.Sprintf("obj-%d", i))
	}
	if err := st.Load(objects); err != nil {
		return err
	}
	const perEpoch = 64
	for done := 0; done < rep.Config.Ops; done += perEpoch {
		waits := make([]func() ([]byte, bool, error), 0, perEpoch)
		for i := 0; i < perEpoch; i++ {
			k := uint64((done + i) % rep.Config.Objects)
			var w func() ([]byte, bool, error)
			if i%2 == 0 {
				w, err = st.ReadAsync(k)
			} else {
				w, err = st.WriteAsync(k, []byte(fmt.Sprintf("w-%d", done+i)))
			}
			if err != nil {
				return err
			}
			waits = append(waits, w)
		}
		st.Flush()
		for _, w := range waits {
			if _, _, err := w(); err != nil {
				return err
			}
		}
	}

	rep.Telemetry = reg.Snapshot(256)
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3,4,table8,9a,9b,10,11a,11b,12,13a,13b,14,headline,all")
	full := flag.Bool("full", false, "use the paper's full data sizes (hours of runtime)")
	observability := flag.String("observability", "", "instead of a figure, run an instrumented deployment and write its telemetry snapshot (counters, histograms, epoch stage spans) to this JSON file")
	traffic := flag.String("traffic", "", "instead of a figure, run the open-loop traffic harness (scenario suite at the reference load, then a knee sweep vs the Eq. 1-2 / simnet prediction) and write the report to this JSON file")
	trafficServers := flag.String("servers", "", "with -traffic: comma-separated snoopy-server addresses to drive a real TCP cluster (empty = in-process deployment)")
	trafficPlatform := flag.String("platform", "", "with -traffic -servers: shared platform root key (64 hex chars, copy from snoopy-server)")
	trafficScenarios := flag.String("scenarios", "all", "with -traffic: comma-separated suite scenario names, or all")
	trafficSessions := flag.Int("sessions", 100_000, "with -traffic: simulated client-session population")
	trafficRate := flag.Float64("rate", 2000, "with -traffic: reference offered load in requests/second for the scenario suite")
	trafficDuration := flag.Duration("duration", 3*time.Second, "with -traffic: schedule length per scenario / knee probe")
	trafficEpoch := flag.Duration("epoch", 50*time.Millisecond, "with -traffic: epoch duration")
	trafficObjects := flag.Int("objects", 4096, "with -traffic: object count")
	trafficBlock := flag.Int("block", 160, "with -traffic: object size in bytes (must match -servers' -block)")
	trafficLBs := flag.Int("lbs", 2, "with -traffic: load balancers")
	trafficSubs := flag.Int("suborams", 4, "with -traffic: subORAMs (in-process mode; TCP mode uses one per -servers address)")
	trafficKnee := flag.Bool("knee", true, "with -traffic: calibrate, predict capacity (planner + simnet), and sweep rates for the sustained-throughput knee")
	trafficBaseline := flag.String("baseline", "", "with -traffic: committed baseline report; fail if p99 at the reference load regresses >10%")
	segstoreOut := flag.String("segstore", "", "instead of a figure, compare memory-resident vs disk-resident (internal/segstore) scan throughput across segment sizes and write the comparison to this JSON file")
	lbtreeOut := flag.String("lbtree", "", "instead of a figure, benchmark the monolithic load balancer against 1/2/4/8-leaf aggregation trees and write the comparison to this JSON file")
	flag.Parse()

	if *traffic != "" {
		err := runTraffic(trafficOptions{
			out:       *traffic,
			servers:   *trafficServers,
			platform:  *trafficPlatform,
			scenarios: *trafficScenarios,
			sessions:  *trafficSessions,
			rate:      *trafficRate,
			duration:  *trafficDuration,
			epoch:     *trafficEpoch,
			objects:   *trafficObjects,
			block:     *trafficBlock,
			lbs:       *trafficLBs,
			subs:      *trafficSubs,
			knee:      *trafficKnee,
			baseline:  *trafficBaseline,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "traffic run: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("traffic report written to %s\n", *traffic)
		return
	}

	if *lbtreeOut != "" {
		if err := runLBTree(*lbtreeOut); err != nil {
			fmt.Fprintf(os.Stderr, "lbtree run: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("lb tree comparison written to %s\n", *lbtreeOut)
		return
	}

	if *segstoreOut != "" {
		if err := runSegstore(*segstoreOut); err != nil {
			fmt.Fprintf(os.Stderr, "segstore run: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("segstore comparison written to %s\n", *segstoreOut)
		return
	}

	if *observability != "" {
		if err := runObservability(*observability); err != nil {
			fmt.Fprintf(os.Stderr, "observability run: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry snapshot written to %s\n", *observability)
		return
	}

	sc := figures.DefaultScale()
	if *full {
		sc = figures.FullScale()
	}
	w := os.Stdout

	runs := map[string]func(){
		"3":        func() { figures.Fig3(w, sc) },
		"4":        func() { figures.Fig4(w, sc) },
		"table8":   func() { figures.Table8(w) },
		"9a":       func() { figures.Fig9a(w, sc) },
		"9a-sim":   func() { figures.Fig9aSim(w, sc) },
		"9b":       func() { figures.Fig9b(w, sc) },
		"10":       func() { figures.Fig10(w, sc) },
		"11a":      func() { figures.Fig11a(w, sc) },
		"11b":      func() { figures.Fig11b(w, sc) },
		"12":       func() { figures.Fig12(w, sc) },
		"13a":      func() { figures.Fig13a(w, sc) },
		"13b":      func() { figures.Fig13b(w, sc) },
		"14":       func() { figures.Fig14(w, sc) },
		"headline": func() { figures.Headline(w, sc) },
	}
	order := []string{"3", "4", "table8", "9a", "9a-sim", "9b", "10", "11a", "11b", "12", "13a", "13b", "14", "headline"}

	want := strings.ToLower(*fig)
	if want == "all" {
		for _, k := range order {
			runs[k]()
			fmt.Fprintln(w)
		}
		return
	}
	run, ok := runs[want]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown figure %q; choose from %s or all\n", *fig, strings.Join(order, ","))
		os.Exit(2)
	}
	run()
}
