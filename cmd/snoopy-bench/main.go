// Command snoopy-bench regenerates the tables and figures of the Snoopy
// paper's evaluation (SOSP'21 §8). Each figure prints the same rows/series
// the paper plots; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	snoopy-bench -fig 9a            # one figure
//	snoopy-bench -fig all           # everything (minutes at default scale)
//	snoopy-bench -fig 9a -full      # paper-scale data sizes (slow)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"snoopy/internal/figures"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3,4,table8,9a,9b,10,11a,11b,12,13a,13b,14,headline,all")
	full := flag.Bool("full", false, "use the paper's full data sizes (hours of runtime)")
	flag.Parse()

	sc := figures.DefaultScale()
	if *full {
		sc = figures.FullScale()
	}
	w := os.Stdout

	runs := map[string]func(){
		"3":        func() { figures.Fig3(w, sc) },
		"4":        func() { figures.Fig4(w, sc) },
		"table8":   func() { figures.Table8(w) },
		"9a":       func() { figures.Fig9a(w, sc) },
		"9a-sim":   func() { figures.Fig9aSim(w, sc) },
		"9b":       func() { figures.Fig9b(w, sc) },
		"10":       func() { figures.Fig10(w, sc) },
		"11a":      func() { figures.Fig11a(w, sc) },
		"11b":      func() { figures.Fig11b(w, sc) },
		"12":       func() { figures.Fig12(w, sc) },
		"13a":      func() { figures.Fig13a(w, sc) },
		"13b":      func() { figures.Fig13b(w, sc) },
		"14":       func() { figures.Fig14(w, sc) },
		"headline": func() { figures.Headline(w, sc) },
	}
	order := []string{"3", "4", "table8", "9a", "9a-sim", "9b", "10", "11a", "11b", "12", "13a", "13b", "14", "headline"}

	want := strings.ToLower(*fig)
	if want == "all" {
		for _, k := range order {
			runs[k]()
			fmt.Fprintln(w)
		}
		return
	}
	run, ok := runs[want]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown figure %q; choose from %s or all\n", *fig, strings.Join(order, ","))
		os.Exit(2)
	}
	run()
}
