// The -lbtree mode benchmarks the hierarchical load-balancer plane against
// the monolithic one it replaces: the same R requests are batched by a
// monolithic balancer (one oblivious O(m log² m) sort) and by aggregation
// trees of 1, 2, 4 and 8 leaves (per-leaf sorts of R/L plus the root's
// O(m log m) merge of already-sorted runs). The report records measured wall
// time and steady-state allocations per MakeBatches, alongside the exact
// compare-exchange counts of the root-level oblivious work — the merge must
// strictly undercut the monolithic sort from 4 leaves on, with zero
// steady-state allocations at every level.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"snoopy/internal/arena"
	"snoopy/internal/batch"
	"snoopy/internal/crypt"
	"snoopy/internal/loadbalancer"
	"snoopy/internal/obliv"
	"snoopy/internal/store"
)

type lbtreeEntry struct {
	Leaves   int   `json:"leaves"`
	NsOp     int64 `json:"ns_op"`
	BOp      int64 `json:"b_op"`
	AllocsOp int64 `json:"allocs_op"`
	// RootCompareExchanges is the oblivious work done at the root level:
	// the full sort for the monolithic balancer, the merge of per-leaf
	// sorted runs for a tree. A pure function of public parameters.
	RootCompareExchanges int `json:"root_compare_exchanges"`
	// RootFractionOfMonolithicSort = RootCompareExchanges / monolithic
	// sort compare-exchanges; < 1 means the merge beats the re-sort.
	RootFractionOfMonolithicSort float64 `json:"root_fraction_of_monolithic_sort"`
}

type lbtreeReport struct {
	Config struct {
		Requests  int `json:"requests"`
		SubORAMs  int `json:"suborams"`
		Lambda    int `json:"lambda"`
		BlockSize int `json:"block_size"`
	} `json:"config"`
	Monolithic lbtreeEntry   `json:"monolithic"`
	Tree       []lbtreeEntry `json:"tree"`
}

// runLBTree benchmarks monolithic vs tree batch formation and writes the
// comparison to path (results/BENCH_lbtree.json via scripts/bench.sh).
func runLBTree(path string) error {
	const (
		reqCount = 4096
		subs     = 4
		lambda   = 128
		block    = 160
	)
	var rep lbtreeReport
	rep.Config.Requests = reqCount
	rep.Config.SubORAMs = subs
	rep.Config.Lambda = lambda
	rep.Config.BlockSize = block

	key := crypt.MustNewKey()
	rng := rand.New(rand.NewSource(65))
	all := store.NewRequests(reqCount, block)
	for i := 0; i < reqCount; i++ {
		all.SetRow(i, store.OpRead, rng.Uint64()%uint64(4*reqCount), 0, uint64(i), uint64(i), nil)
	}

	alpha := batch.Size(reqCount, subs, lambda)
	if alpha == 0 {
		alpha = 1
	}
	monoSortCX := obliv.SortCost(reqCount + alpha*subs)

	cfg := loadbalancer.Config{BlockSize: block, NumSubORAMs: subs, Lambda: lambda, SortWorkers: 1}

	monoRes := testing.Benchmark(func(b *testing.B) {
		c := cfg
		c.Pool = arena.NewPool()
		lb := loadbalancer.New(c, key)
		warm, err := lb.MakeBatches(all)
		if err != nil {
			b.Fatal(err)
		}
		warm.Release()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bb, err := lb.MakeBatches(all)
			if err != nil {
				b.Fatal(err)
			}
			bb.Release()
		}
	})
	rep.Monolithic = lbtreeEntry{
		Leaves:                       1,
		NsOp:                         monoRes.NsPerOp(),
		BOp:                          monoRes.AllocedBytesPerOp(),
		AllocsOp:                     monoRes.AllocsPerOp(),
		RootCompareExchanges:         monoSortCX,
		RootFractionOfMonolithicSort: 1,
	}
	fmt.Printf("monolithic:  %12d ns/op  %6d B/op  %4d allocs/op  (sort: %d compare-exchanges)\n",
		rep.Monolithic.NsOp, rep.Monolithic.BOp, rep.Monolithic.AllocsOp, monoSortCX)

	for _, leaves := range []int{1, 2, 4, 8} {
		feeds, rates := splitLBTreeFeeds(all, leaves, block)
		rootCX := obliv.MergeSortedCost(loadbalancer.TreeRunLens(rates, subs, lambda))
		res := testing.Benchmark(func(b *testing.B) {
			c := cfg
			c.Pool = arena.NewPool()
			tree, err := loadbalancer.NewTree(loadbalancer.TreeConfig{Config: c, Leaves: leaves}, key)
			if err != nil {
				b.Fatal(err)
			}
			warm, feedErrs, err := tree.MakeBatches(0, feeds)
			if err != nil || feedErrs != nil {
				b.Fatal(err, feedErrs)
			}
			warm.Release()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bb, _, err := tree.MakeBatches(uint64(i)+1, feeds)
				if err != nil {
					b.Fatal(err)
				}
				bb.Release()
			}
		})
		e := lbtreeEntry{
			Leaves:                       leaves,
			NsOp:                         res.NsPerOp(),
			BOp:                          res.AllocedBytesPerOp(),
			AllocsOp:                     res.AllocsPerOp(),
			RootCompareExchanges:         rootCX,
			RootFractionOfMonolithicSort: float64(rootCX) / float64(monoSortCX),
		}
		rep.Tree = append(rep.Tree, e)
		fmt.Printf("tree-%d:      %12d ns/op  %6d B/op  %4d allocs/op  (root merge: %d CX, %.1f%% of monolithic sort)\n",
			leaves, e.NsOp, e.BOp, e.AllocsOp, rootCX, 100*e.RootFractionOfMonolithicSort)
		if leaves >= 4 && rootCX >= monoSortCX {
			return fmt.Errorf("root merge at %d leaves (%d CX) does not beat the monolithic sort (%d CX)",
				leaves, rootCX, monoSortCX)
		}
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// splitLBTreeFeeds deals the request set round-robin into per-leaf feeds,
// the way clients spread across the leaves of a plane, and returns the
// public per-feed rates alongside.
func splitLBTreeFeeds(all *store.Requests, leaves, block int) ([]*store.Requests, []int) {
	n := all.Len()
	rates := make([]int, leaves)
	for i := 0; i < n; i++ {
		rates[i%leaves]++
	}
	feeds := make([]*store.Requests, leaves)
	fill := make([]int, leaves)
	for f := range feeds {
		feeds[f] = store.NewRequests(rates[f], block)
	}
	for i := 0; i < n; i++ {
		f := i % leaves
		j := fill[f]
		feeds[f].SetRow(j, all.Op[i], all.Key[i], 0, uint64(j), uint64(j), all.Block(i))
		fill[f]++
	}
	return feeds, rates
}
