// Command snoopy-client drives a Snoopy deployment whose subORAMs run as
// snoopy-server processes: it attests and connects to each server, loads a
// synthetic object set, runs a mixed read/write workload, and reports
// throughput and latency percentiles.
//
//	snoopy-server -listen :7001 -platform <hex> &
//	snoopy-server -listen :7002 -platform <hex> &
//	snoopy-client -servers 127.0.0.1:7001,127.0.0.1:7002 -platform <hex> \
//	              -objects 100000 -ops 2000 -clients 8
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"snoopy"
	"snoopy/internal/crypt"
	"snoopy/internal/enclave"
	"snoopy/internal/metrics"
	"snoopy/internal/transport"
	"snoopy/internal/workload"
)

func main() {
	servers := flag.String("servers", "127.0.0.1:7001", "comma-separated subORAM addresses")
	platformHex := flag.String("platform", "", "shared platform root key (64 hex chars)")
	objects := flag.Int("objects", 100_000, "objects to load")
	block := flag.Int("block", 160, "object size in bytes")
	ops := flag.Int("ops", 2000, "operations to run")
	clients := flag.Int("clients", 8, "concurrent clients")
	lbs := flag.Int("lbs", 2, "load balancers")
	epoch := flag.Duration("epoch", 50*time.Millisecond, "epoch duration")
	writeFrac := flag.Float64("writes", 0.5, "write fraction")
	pipeline := flag.Bool("pipeline", false, "overlap epoch stages across epochs (stage A of epoch N+1 runs while stages B/C of earlier epochs drain)")
	pipelineDepth := flag.Int("pipeline-depth", 0, "max epochs in flight with -pipeline (0 = GOMAXPROCS clamped to [2,4])")
	rpcTimeout := flag.Duration("rpc-timeout", 0, "per-attempt batch RPC deadline (0 = derive from epoch)")
	dialTimeout := flag.Duration("dial-timeout", 0, "connect + attested handshake deadline (0 = default 5s)")
	retries := flag.Int("retries", 0, "reconnect attempts after a failed RPC (0 = default 4, negative = none)")
	standbys := flag.String("standbys", "", "comma-separated standby subORAM addresses, promoted in order when a partition trips the failure detector")
	failoverAfter := flag.Int("failover-after", 3, "consecutive failed epochs before promoting a standby (used with -standbys)")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /trace/epochs, and /debug/pprof on this address (empty = off)")
	telemetryHold := flag.Duration("telemetry-hold", 0, "keep the process (and its telemetry endpoint) alive this long after the workload finishes")
	journalDir := flag.String("journal-dir", "", "epoch-journal directory for a fault-tolerant root (shared with snoopy-server -standby-root); enables idempotent ops")
	replyWindow := flag.Int("reply-window", 0, "root reply-dedupe window in requests (0 = default 4096; used with -journal-dir)")
	opRetries := flag.Int("op-retries", 3, "retries per op under the same idempotency ID after a root/partition failure (with -journal-dir)")
	retryBackoff := flag.Duration("retry-backoff", 0, "delay between idempotent op retries (0 = one epoch)")
	flag.Parse()

	var key crypt.Key
	raw, err := hex.DecodeString(*platformHex)
	if err != nil || len(raw) != crypt.KeySize {
		log.Fatalf("-platform must be %d hex chars (copy it from snoopy-server)", 2*crypt.KeySize)
	}
	copy(key[:], raw)
	platform := enclave.NewPlatformFromKey(key)
	m := snoopy.Measure("snoopy-suboram-v1")

	// One registry observes the whole client-side deployment: epoch stage
	// spans and core counters, load-balancer timings, and per-connection
	// transport RPC/retry activity. All of it is keyed on public events.
	var reg *snoopy.Telemetry
	if *telemetryAddr != "" {
		reg = snoopy.NewTelemetry()
		addr, stop, err := snoopy.ServeTelemetry(*telemetryAddr, reg)
		if err != nil {
			log.Fatalf("telemetry listener on %s: %v", *telemetryAddr, err)
		}
		defer stop()
		fmt.Printf("telemetry on http://%s (/metrics, /trace/epochs, /debug/pprof)\n", addr)
	}

	// Every timeout below derives from public deployment configuration
	// (flags and the epoch duration), never from request contents.
	dcfg := snoopy.DialConfig{
		RPCTimeout:  *rpcTimeout,
		DialTimeout: *dialTimeout,
		Retries:     *retries,
		Epoch:       *epoch,
		Telemetry:   reg,
	}
	var subs []snoopy.SubORAM
	for _, addr := range strings.Split(*servers, ",") {
		sub, err := snoopy.DialSubORAMConfig(strings.TrimSpace(addr), platform, m, dcfg)
		if err != nil {
			log.Fatalf("dial %s: %v", addr, err)
		}
		subs = append(subs, sub)
		fmt.Printf("attested and connected to %s\n", addr)
	}

	cfg := snoopy.Config{
		BlockSize:     *block,
		LoadBalancers: *lbs,
		Epoch:         *epoch,
		Pipeline:      *pipeline,
		PipelineDepth: *pipelineDepth,
		JournalDir:    *journalDir,
		ReplyWindow:   *replyWindow,
		Telemetry:     reg,
	}
	if *retryBackoff <= 0 {
		*retryBackoff = *epoch
	}

	// With -standbys, a supervisor promotes the next unused standby when a
	// partition fails -failover-after consecutive epochs; the threshold is
	// public configuration, so repair timing reveals nothing about request
	// contents.
	var sup *snoopy.Supervisor
	if *standbys != "" {
		addrs := strings.Split(*standbys, ",")
		pool := make(chan string, len(addrs))
		for _, addr := range addrs {
			pool <- strings.TrimSpace(addr)
		}
		promote := func(part int, old snoopy.SubORAM) (snoopy.SubORAM, error) {
			select {
			case addr := <-pool:
				if c, ok := old.(interface{ Close() error }); ok {
					c.Close()
				}
				sub, err := snoopy.DialSubORAMConfig(addr, platform, m, dcfg)
				if err != nil {
					return nil, fmt.Errorf("standby %s: %w", addr, err)
				}
				log.Printf("partition %d: promoted standby %s", part, addr)
				return sub, nil
			default:
				return nil, fmt.Errorf("partition %d: no standbys left", part)
			}
		}
		sup = snoopy.NewSupervisor(len(subs), promote, snoopy.FailoverPolicy{FailAfter: *failoverAfter})
		sup.Instrument(reg)
		defer sup.Close()
		cfg.FailoverAfter = *failoverAfter
		cfg.Failover = sup.Failover()
		cfg.OnFailover = sup.OnFailover()
	}

	st, err := snoopy.OpenWithSubORAMs(cfg, subs)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	fmt.Printf("loading %d objects...\n", *objects)
	ids := make([]uint64, *objects)
	data := make([]byte, *objects**block)
	for i := range ids {
		ids[i] = uint64(i)
		copy(data[i**block:], fmt.Sprintf("obj-%d", i))
	}
	if err := st.LoadSlices(ids, data); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running %d ops across %d clients (write fraction %.0f%%)...\n",
		*ops, *clients, 100**writeFrac)
	gen := workload.Mix(workload.Uniform(*objects), *writeFrac)
	var lat metrics.Latencies
	var failed, retried, suppressed metrics.Counter
	th := metrics.NewThroughput()
	var wg sync.WaitGroup
	perClient := (*ops + *clients - 1) / *clients
	// With -journal-dir, every op carries a unique idempotency ID and is
	// retried under that same ID after a failure: a retry of a request the
	// root already answered (including one replayed from the journal by a
	// promoted standby) returns the original parked answer instead of
	// re-executing. The dedup window is the client-side half: if an answer
	// somehow arrives twice, only the first delivery counts.
	idem := *journalDir != ""
	var nextID atomic.Uint64
	dedup := transport.NewReplyDedup(*replyWindow)
	for c := 0; c < *clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < perClient; i++ {
				op := gen(rng)
				t0 := time.Now()
				var err error
				if idem {
					id := nextID.Add(1)
					for attempt := 0; ; attempt++ {
						if op.Write {
							_, _, err = st.WriteIdem(id, op.Key, []byte(fmt.Sprintf("w-%d-%d", c, i)))
						} else {
							_, _, err = st.ReadIdem(id, op.Key)
						}
						if err == nil || attempt >= *opRetries {
							break
						}
						retried.Inc()
						time.Sleep(*retryBackoff)
					}
					if err == nil && !dedup.Deliver(id) {
						suppressed.Inc()
						continue // duplicate answer; already counted
					}
				} else if op.Write {
					_, _, err = st.Write(op.Key, []byte(fmt.Sprintf("w-%d-%d", c, i)))
				} else {
					_, _, err = st.Read(op.Key)
				}
				if err != nil {
					failed.Inc()
					if sup == nil && !idem {
						log.Printf("op failed: %v", err)
						return
					}
					// An op routed to a dead partition fails within its
					// deadline; the supervisor is promoting a standby, so
					// keep driving load through the outage.
					continue
				}
				lat.Add(time.Since(t0))
				th.Done(1)
			}
		}()
	}
	wg.Wait()
	fmt.Printf("throughput: %.0f reqs/s\n", th.PerSecond())
	fmt.Printf("latency:    %s\n", lat.String())
	stats := st.Stats()
	fmt.Printf("last epoch: batch=%d dropped=%d make=%v suboram=%v match=%v\n",
		stats.BatchSize, stats.Dropped, stats.MakeBatch.Round(time.Microsecond),
		stats.SubORAM.Round(time.Microsecond), stats.Match.Round(time.Microsecond))
	if n := failed.Load(); n > 0 {
		fmt.Printf("failed ops: %d\n", n)
	}
	if n := retried.Load(); n > 0 {
		fmt.Printf("idempotent retries: %d (duplicate answers suppressed: %d)\n", n, suppressed.Load())
	}
	if sup != nil {
		h := st.Health()
		fmt.Printf("failover:   %s healthy=%v failovers=%v\n", sup.Stats(), h.Healthy(), h.Failovers)
	}
	if reg != nil && *telemetryHold > 0 {
		fmt.Printf("holding telemetry endpoint for %v...\n", *telemetryHold)
		time.Sleep(*telemetryHold)
	}
}
