// Command snoopy-server hosts one subORAM partition behind an attested,
// encrypted TCP endpoint (the paper's per-machine subORAM process).
//
// The simulated attestation platform is keyed by a shared hex secret so
// that separately started processes agree on one authority:
//
//	snoopy-server -listen :7001 -block 160 -platform 00112233...
//
// Then point snoopy-client (or snoopy.DialSubORAM) at it with the same
// platform secret.
//
// With -data <dir>, the partition is durable (internal/persist): sealed
// snapshots plus a sealed write-ahead log live in <dir>, every acknowledged
// batch is on disk before its response leaves the enclave, and a restarted
// server — including after kill -9 — recovers the partition and resumes
// serving without re-initialization. If the host tampered with or rolled
// back any file in <dir>, startup fails loudly with an integrity error
// instead of serving corrupt or stale state:
//
//	snoopy-server -listen :7001 -block 160 -data /var/lib/snoopy/part0 -platform ...
//
// With -leaf <index>, the process instead hosts one leaf load balancer of a
// hierarchical (two-level aggregation tree) LB plane: it obliviously sorts
// and locally dedupes its own clients' requests and forwards the sealed
// sorted run to the root over the attested channel. The tree shape is
// public configuration and must match the root's: -lb-leaves leaves with
// root fan-in -lb-fan-in (0 = leaves), plus the deployment's -suborams,
// -lambda, and shared -lb-key routing key:
//
//	snoopy-server -listen :7002 -leaf 0 -lb-leaves 4 -suborams 8 -lb-key 8899aabb... -platform ...
//
// With -standby-root, the process is a warm standby for a load-balancer
// root that journals its epochs (Config.JournalDir / snoopy-client
// -journal-dir): it probes the primary root's liveness address every
// -probe-interval, and after -fail-after consecutive misses it promotes
// itself — it attests to the partition servers, opens the shared journal
// directory (which replays any journaled-but-incomplete epochs under the
// dead root's delivery tags; the partitions' replay caches make the
// re-dispatch exactly-once), and serves epochs from then on. The scope is
// honest about what this binary can and cannot recover: replayed answers
// are parked in the promoted root's reply window for clients that retry
// under their original idempotency IDs, but client connections themselves
// are process-local in this reproduction — a client embedded in the dead
// primary must reconnect to the standby by its own means (e.g. rerun
// snoopy-client against the same -journal-dir). The journal directory
// must be shared storage reachable from both roots:
//
//	snoopy-server -standby-root -journal-dir /srv/snoopy/journal \
//	              -primary 127.0.0.1:9100 -servers 127.0.0.1:7001,127.0.0.1:7002 \
//	              -fail-after 3 -probe-interval 1s -platform ...
package main

import (
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"snoopy/internal/cluster"
	"snoopy/internal/core"
	"snoopy/internal/crypt"
	"snoopy/internal/enclave"
	"snoopy/internal/loadbalancer"
	"snoopy/internal/metrics"
	"snoopy/internal/persist"
	"snoopy/internal/segstore"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
	"snoopy/internal/telemetry"
	"snoopy/internal/transport"
)

// Program is the enclave identity this binary attests to; clients must
// expect enclave.Measure(Program).
const Program = "snoopy-suboram-v1"

// LeafProgram is the enclave identity attested in -leaf mode; the root
// dials leaves expecting enclave.Measure(LeafProgram).
const LeafProgram = "snoopy-leaf-v1"

// counted wraps the served partition with liveness counters so
// -health-log can surface serving activity through the process log. The
// counters observe only batch counts and the (public, Theorem-3-sized) row
// counts — nothing content-dependent.
type counted struct {
	transport.Partition
	batches metrics.Counter
	rows    metrics.Counter
}

func (c *counted) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	n := uint64(reqs.Len())
	out, err := c.Partition.BatchAccess(reqs)
	if err == nil {
		c.batches.Inc()
		c.rows.Add(n)
	}
	return out, err
}

// serveLeaf hosts one leaf load balancer of a hierarchical LB plane. The
// tree shape flags are validated against each other exactly as the root
// validates them, so a misconfigured leaf fails at startup, not mid-epoch.
func serveLeaf(listen string, index, leaves, fanIn, subORAMs, lambda, block, sortWorkers int,
	lbKeyHex string, platform *enclave.Platform, reg *telemetry.Registry, opts transport.ServeOptions) {
	if leaves < 1 {
		log.Fatal("-leaf requires -lb-leaves ≥ 1")
	}
	if index >= leaves {
		log.Fatalf("-leaf %d out of range for -lb-leaves %d", index, leaves)
	}
	if fanIn == 0 {
		fanIn = leaves
	}
	if leaves > fanIn {
		log.Fatalf("-lb-leaves %d exceed -lb-fan-in %d (two-level tree)", leaves, fanIn)
	}
	if subORAMs < 1 {
		log.Fatal("-leaf requires -suborams ≥ 1")
	}
	var lbKey crypt.Key
	if lbKeyHex == "" {
		lbKey = crypt.MustNewKey()
		fmt.Printf("lb key: %s\n", hex.EncodeToString(lbKey[:]))
	} else {
		raw, err := hex.DecodeString(lbKeyHex)
		if err != nil || len(raw) != crypt.KeySize {
			log.Fatalf("-lb-key must be %d hex chars", 2*crypt.KeySize)
		}
		copy(lbKey[:], raw)
	}
	leaf := loadbalancer.NewLeaf(loadbalancer.Config{
		BlockSize:   block,
		NumSubORAMs: subORAMs,
		Lambda:      lambda,
		SortWorkers: sortWorkers,
		Telemetry:   reg,
	}, lbKey, index)
	l, err := net.Listen("tcp", listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("leaf LB %d/%d serving on %s (fan-in=%d suborams=%d block=%dB lambda=%d measurement=%q)\n",
		index, leaves, l.Addr(), fanIn, subORAMs, block, lambda, LeafProgram)
	if err := transport.ServeLeafOptions(l, leaf, platform, enclave.Measure(LeafProgram), opts); err != nil {
		log.Fatal(err)
	}
}

// standbyRoot runs the warm-standby root loop: probe the primary, and on
// a trip promote by opening the shared journal directory over attested
// partition connections. Runs until the process is killed.
func standbyRoot(primary, journalDir, servers string, failAfter int, probeInterval, epoch time.Duration,
	block, lbs, lambda int, platform *enclave.Platform, reg *telemetry.Registry) {
	if journalDir == "" {
		log.Fatal("-standby-root requires -journal-dir (shared with the primary root)")
	}
	if primary == "" {
		log.Fatal("-standby-root requires -primary (a TCP address the primary keeps open, e.g. its -telemetry-addr)")
	}
	if servers == "" {
		log.Fatal("-standby-root requires -servers (the partition endpoints to adopt on promotion)")
	}
	m := enclave.Measure(Program)
	addrs := strings.Split(servers, ",")

	sup := cluster.NewSupervisor(len(addrs), nil, cluster.Policy{
		FailAfter:     failAfter,
		ProbeInterval: probeInterval,
		ProbeTimeout:  probeInterval,
	})
	if reg != nil {
		sup.Instrument(reg)
	}
	promote := func(old *core.System) (*core.System, error) {
		if old != nil {
			old.Close()
		}
		subs := make([]core.SubORAMClient, len(addrs))
		for i, addr := range addrs {
			sub, err := transport.Dial(strings.TrimSpace(addr), platform, m)
			if err != nil {
				return nil, fmt.Errorf("partition %s: %w", addr, err)
			}
			subs[i] = sub
		}
		sys, err := core.NewWithSubORAMs(core.Config{
			BlockSize:        block,
			NumLoadBalancers: lbs,
			Lambda:           lambda,
			EpochDuration:    epoch,
			JournalDir:       journalDir,
			Telemetry:        reg,
		}, subs)
		if err != nil {
			return nil, err
		}
		log.Printf("promoted: serving as root over journal %s (incomplete epochs replayed, delivery tags adopted)",
			journalDir)
		return sys, nil
	}
	sup.SuperviseRoot(nil, promote)
	// Until promoted, liveness is the primary's TCP endpoint; after, it is
	// our own (now-primary) root. Probe outcomes feed the same
	// consecutive-miss detector partitions use.
	sup.WatchRoot(func(sys *core.System, timeout time.Duration) error {
		if sys != nil {
			if sys.Crashed() {
				return errors.New("local root crashed")
			}
			return nil
		}
		c, err := net.DialTimeout("tcp", primary, timeout)
		if err != nil {
			return err
		}
		return c.Close()
	})
	fmt.Printf("standby root: probing %s every %v (fail-after=%d journal=%s partitions=%d)\n",
		primary, probeInterval, failAfter, journalDir, len(addrs))
	for range time.Tick(10 * probeInterval) {
		if st := sup.Stats(); st.RootTrips > 0 {
			log.Printf("root plane: %s", st.String())
		}
	}
}

func main() {
	listen := flag.String("listen", ":7001", "address to listen on")
	block := flag.Int("block", 160, "object size in bytes")
	workers := flag.Int("workers", 0, "scan worker threads (0 = 1)")
	sealed := flag.Bool("sealed", false, "store partition in sealed enclave-external memory")
	dataDir := flag.String("data", "", "directory for sealed durable state (empty = in-memory only)")
	diskResident := flag.Bool("disk-resident", false, "keep partition contents on disk in sealed segments (requires -data, excludes -sealed)")
	segmentBytes := flag.Int("segment-bytes", 0, "sealed segment payload size in bytes for -disk-resident (0 = 512 blocks)")
	platformHex := flag.String("platform", "", "shared platform root key (64 hex chars); empty generates one and prints it")
	handshakeTimeout := flag.Duration("handshake-timeout", 10*time.Second, "attested handshake deadline per connection")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "per-response write deadline")
	idleTimeout := flag.Duration("idle-timeout", 0, "drop connections idle this long (0 = keep forever)")
	healthLog := flag.Duration("health-log", 0, "log serving counters (batches, rows, epoch) this often (0 = off)")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /trace/epochs, and /debug/pprof on this address (empty = off)")
	leafIndex := flag.Int("leaf", -1, "serve leaf load balancer with this index instead of a partition (-1 = partition)")
	lbLeaves := flag.Int("lb-leaves", 0, "leaf count of the hierarchical LB plane this leaf belongs to (requires -leaf)")
	lbFanIn := flag.Int("lb-fan-in", 0, "root merge fan-in of the hierarchical LB plane (0 = -lb-leaves; requires -leaf)")
	subORAMs := flag.Int("suborams", 0, "deployment partition count, for -leaf request routing")
	lambda := flag.Int("lambda", 128, "batch-sizing security parameter in bits, for -leaf")
	sortWorkers := flag.Int("sort-workers", 0, "oblivious sort worker threads for -leaf (0 = 1)")
	lbKeyHex := flag.String("lb-key", "", "shared LB routing key (64 hex chars) for -leaf; empty generates one and prints it")
	standbyRootMode := flag.Bool("standby-root", false, "run as a warm standby for a journaling LB root instead of a partition")
	journalDir := flag.String("journal-dir", "", "shared epoch-journal directory for -standby-root (same as the primary root's)")
	primary := flag.String("primary", "", "primary root liveness address probed by -standby-root (any TCP endpoint it keeps open)")
	probeInterval := flag.Duration("probe-interval", time.Second, "primary liveness probe interval for -standby-root")
	failAfter := flag.Int("fail-after", 3, "consecutive missed probes before -standby-root promotes itself")
	servers := flag.String("servers", "", "comma-separated partition addresses adopted by -standby-root on promotion")
	lbs := flag.Int("lbs", 2, "load-balancer count for the promoted root (-standby-root; must match the primary's)")
	epoch := flag.Duration("epoch", 50*time.Millisecond, "epoch duration for the promoted root (-standby-root)")
	flag.Parse()

	var key crypt.Key
	if *platformHex == "" {
		key = crypt.MustNewKey()
		fmt.Printf("platform key: %s\n", hex.EncodeToString(key[:]))
	} else {
		raw, err := hex.DecodeString(*platformHex)
		if err != nil || len(raw) != crypt.KeySize {
			log.Fatalf("-platform must be %d hex chars", 2*crypt.KeySize)
		}
		copy(key[:], raw)
	}
	platform := enclave.NewPlatformFromKey(key)

	// One registry instruments the partition, its durable layer, and the
	// transport. Every instrument it exposes is keyed on public events
	// only (batches, epochs, connections), so serving it leaks nothing
	// beyond what the network adversary already sees.
	var reg *telemetry.Registry
	if *telemetryAddr != "" {
		reg = telemetry.NewRegistry()
		addr, stop, err := telemetry.Serve(*telemetryAddr, reg)
		if err != nil {
			log.Fatalf("telemetry listener on %s: %v", *telemetryAddr, err)
		}
		defer stop()
		fmt.Printf("telemetry on http://%s (/metrics, /trace/epochs, /debug/pprof)\n", addr)
	}

	if *standbyRootMode {
		standbyRoot(*primary, *journalDir, *servers, *failAfter, *probeInterval, *epoch,
			*block, *lbs, *lambda, platform, reg)
		return
	}

	if *leafIndex >= 0 {
		serveLeaf(*listen, *leafIndex, *lbLeaves, *lbFanIn, *subORAMs, *lambda,
			*block, *sortWorkers, *lbKeyHex, platform, reg, transport.ServeOptions{
				HandshakeTimeout: *handshakeTimeout,
				WriteTimeout:     *writeTimeout,
				IdleTimeout:      *idleTimeout,
				Telemetry:        reg,
			})
		return
	}

	if *diskResident && *dataDir == "" {
		log.Fatal("-disk-resident requires -data")
	}
	if *diskResident && *sealed {
		log.Fatal("-disk-resident and -sealed are mutually exclusive")
	}

	var sub *suboram.SubORAM
	var serve transport.Partition
	epochOf := func() uint64 { return 0 }
	switch {
	case *diskResident:
		sd, err := persist.NewSegDurable(*dataDir,
			func(ss *segstore.Store) persist.StorePartition {
				sub = suboram.New(suboram.Config{BlockSize: *block, Workers: *workers, Store: ss, Telemetry: reg})
				return sub
			},
			persist.SegConfig{BlockSize: *block, SegmentBlocks: *segmentBytes / *block, Telemetry: reg})
		if err != nil {
			log.Fatalf("disk-resident state in %s unusable: %v", *dataDir, err)
		}
		if sd.Recovered() {
			fmt.Printf("recovered disk-resident partition from %s: %d objects at epoch %d (rolled forward: %v)\n",
				*dataDir, sub.NumObjects(), sd.Epoch(), sd.RolledForward())
		} else {
			fmt.Printf("disk-resident state in %s (fresh partition)\n", *dataDir)
		}
		serve = sd
		epochOf = sd.Epoch
	case *dataDir != "":
		sub = suboram.New(suboram.Config{BlockSize: *block, Workers: *workers, Sealed: *sealed, Telemetry: reg})
		dur, err := persist.NewDurable(*dataDir, sub, persist.Config{BlockSize: *block, Telemetry: reg})
		if err != nil {
			log.Fatalf("durable state in %s unusable: %v", *dataDir, err)
		}
		if dur.Recovered() {
			fmt.Printf("recovered partition from %s: %d objects at epoch %d (replayed %d WAL epochs)\n",
				*dataDir, sub.NumObjects(), dur.Epoch(), dur.ReplayedEpochs())
		} else {
			fmt.Printf("durable state in %s (fresh partition)\n", *dataDir)
		}
		serve = dur
		epochOf = dur.Epoch
	default:
		sub = suboram.New(suboram.Config{BlockSize: *block, Workers: *workers, Sealed: *sealed, Telemetry: reg})
		serve = sub
	}
	if *healthLog > 0 {
		c := &counted{Partition: serve}
		serve = c
		go func() {
			for range time.Tick(*healthLog) {
				log.Printf("health: batches=%d rows=%d epoch=%d objects=%d",
					c.batches.Load(), c.rows.Load(), epochOf(), sub.NumObjects())
			}
		}()
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subORAM serving on %s (block=%dB sealed=%v measurement=%q)\n",
		l.Addr(), *block, *sealed, Program)
	err = transport.ServeSubORAMOptions(l, serve, platform, enclave.Measure(Program), transport.ServeOptions{
		HandshakeTimeout: *handshakeTimeout,
		WriteTimeout:     *writeTimeout,
		IdleTimeout:      *idleTimeout,
		Telemetry:        reg,
	})
	if err != nil {
		log.Fatal(err)
	}
}
