package snoopy

import (
	"time"

	"snoopy/internal/adaptive"
	"snoopy/internal/core"
	"snoopy/internal/pir"
	"snoopy/internal/planner"
	"snoopy/internal/replica"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
)

// This file exposes the paper's extension features (§6, §9, Appendix D):
// access control, fault-tolerant/rollback-protected partitions, PIR-backed
// partitions, and the latency-minimizing planner.

// Operation codes for ACL rules.
const (
	OpRead  = store.OpRead
	OpWrite = store.OpWrite
)

// ACLRule grants a user an operation on an object (Appendix D).
type ACLRule = core.ACLRule

// EnableACL installs an access-control matrix, served obliviously by an
// internal recursive Snoopy instance (paper §D). Call before submitting
// requests; afterwards use ReadAs/WriteAs. Plain Read/Write run as user 0.
func (s *Store) EnableACL(rules []ACLRule, aclSubORAMs int) error {
	return s.sys.EnableACL(rules, aclSubORAMs)
}

// ReadAs reads key on behalf of user; denied reads return zeroes with
// ok == false, indistinguishable (to the storage) from permitted ones.
func (s *Store) ReadAs(user, key uint64) (value []byte, ok bool, err error) {
	return s.sys.ReadAs(user, key)
}

// WriteAs writes key on behalf of user; denied writes change nothing.
func (s *Store) WriteAs(user, key uint64, value []byte) (previous []byte, ok bool, err error) {
	return s.sys.WriteAs(user, key, value)
}

// NewReplicatedSubORAM builds a partition replicated across f+r+1 local
// nodes, tolerating f crashes and r rollback attacks, with a trusted
// monotonic counter detecting stale replicas (paper §9). The result plugs
// into OpenWithSubORAMs like any partition.
func NewReplicatedSubORAM(blockSize, f, r int, sealed bool) (SubORAM, error) {
	n := f + r + 1
	reps := make([]*replica.Replica, n)
	for i := range reps {
		reps[i] = replica.NewReplica(suboram.New(suboram.Config{
			BlockSize: blockSize, Sealed: sealed,
		}))
	}
	return replica.NewGroup(reps, nil, f, r)
}

// NewAdaptiveSubORAM builds a partition that switches between the
// throughput-optimized linear-scan engine and the latency-optimized DORAM
// based on observed batch sizes — the adaptive-workload direction §1.1
// leaves as future work. switchBelow/switchAbove set the hysteresis band
// in mean batch size (0 picks defaults).
func NewAdaptiveSubORAM(blockSize, switchBelow, switchAbove int) (SubORAM, error) {
	return adaptive.New(adaptive.Config{
		BlockSize:   blockSize,
		SwitchBelow: switchBelow,
		SwitchAbove: switchAbove,
	})
}

// NewPIRSubORAM builds a partition served by two-server XOR PIR (paper §9
// "Private Information Retrieval"): reads are information-theoretically
// private against either (non-colluding) server; writes are applied in the
// clear, so use it for read-dominated stores such as transparency logs.
func NewPIRSubORAM(blockSize int) SubORAM {
	return pir.NewSubORAM(blockSize)
}

// PlanDeploymentForBudget is the §6 extension planner: given a data size,
// a throughput target, and a monthly budget, it returns the configuration
// minimizing average latency.
func PlanDeploymentForBudget(objects, blockSize int, minThroughput, monthlyBudget float64) (Plan, error) {
	model := planner.Calibrate(blockSize, 128)
	return planner.OptimizeLatency(planner.Requirements{
		Objects:       objects,
		BlockSize:     blockSize,
		MinThroughput: minThroughput,
		MaxLatency:    time.Hour, // bounded by the budget search instead
	}, monthlyBudget, model, planner.DefaultPrices())
}
