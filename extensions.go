package snoopy

import (
	"time"

	"snoopy/internal/adaptive"
	"snoopy/internal/cluster"
	"snoopy/internal/core"
	"snoopy/internal/pir"
	"snoopy/internal/planner"
	"snoopy/internal/replica"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
)

// This file exposes the paper's extension features (§6, §9, Appendix D):
// access control, fault-tolerant/rollback-protected partitions, PIR-backed
// partitions, and the latency-minimizing planner.

// Operation codes for ACL rules.
const (
	OpRead  = store.OpRead
	OpWrite = store.OpWrite
)

// ACLRule grants a user an operation on an object (Appendix D).
type ACLRule = core.ACLRule

// EnableACL installs an access-control matrix, served obliviously by an
// internal recursive Snoopy instance (paper §D). Call before submitting
// requests; afterwards use ReadAs/WriteAs. Plain Read/Write run as user 0.
func (s *Store) EnableACL(rules []ACLRule, aclSubORAMs int) error {
	return s.sys.EnableACL(rules, aclSubORAMs)
}

// ReadAs reads key on behalf of user; denied reads return zeroes with
// ok == false, indistinguishable (to the storage) from permitted ones.
func (s *Store) ReadAs(user, key uint64) (value []byte, ok bool, err error) {
	return s.sys.ReadAs(user, key)
}

// WriteAs writes key on behalf of user; denied writes change nothing.
func (s *Store) WriteAs(user, key uint64, value []byte) (previous []byte, ok bool, err error) {
	return s.sys.WriteAs(user, key, value)
}

// NewReplicatedSubORAM builds a partition replicated across f+r+1 local
// nodes, tolerating f crashes and r rollback attacks, with a trusted
// monotonic counter detecting stale replicas (paper §9). The result plugs
// into OpenWithSubORAMs like any partition.
func NewReplicatedSubORAM(blockSize, f, r int, sealed bool) (SubORAM, error) {
	return NewReplicatedSubORAMOptions(blockSize, ReplicaOptions{F: f, R: r, Sealed: sealed})
}

// ReplicaOptions configures a self-healing replicated partition. Every
// field is public deployment configuration.
type ReplicaOptions struct {
	// F and R are the tolerated crash and rollback counts; the group has
	// F+R+1 members.
	F, R int
	// Spares adds standby members that hold no state until promoted; when
	// auto-heal finds a member unreachable it promotes a spare in its
	// place and resynchronizes it from a fresh peer.
	Spares int
	// AutoHealAfter, when > 0, resynchronizes stale members and promotes
	// spares for unreachable ones after a member misses that many
	// consecutive batches. The resync transfer is a whole sealed
	// partition image — its size is a public function of partition
	// geometry, so rejoin leaks nothing beyond what Theorem 3 already
	// makes public.
	AutoHealAfter int
	// ReplyTimeout bounds each member's reply per batch (0 = wait
	// forever); members that miss it are counted failed for that batch
	// and the quorum proceeds without them.
	ReplyTimeout time.Duration
	// Sealed keeps member partitions in enclave-external sealed memory.
	Sealed bool
}

// NewReplicatedSubORAMOptions is NewReplicatedSubORAM with self-healing
// knobs: standby spares, automatic resync/promotion, and a per-batch reply
// deadline (paper §9 plus the repair loop that returns a faulted group to
// full health).
func NewReplicatedSubORAMOptions(blockSize int, opt ReplicaOptions) (SubORAM, error) {
	n := opt.F + opt.R + 1
	newRep := func() *replica.Replica {
		return replica.NewReplica(suboram.New(suboram.Config{
			BlockSize: blockSize, Sealed: opt.Sealed,
		}))
	}
	reps := make([]*replica.Replica, n)
	for i := range reps {
		reps[i] = newRep()
	}
	g, err := replica.NewGroup(reps, nil, opt.F, opt.R)
	if err != nil {
		return nil, err
	}
	if opt.ReplyTimeout > 0 {
		g.SetTimeout(opt.ReplyTimeout)
	}
	if opt.AutoHealAfter > 0 {
		g.SetAutoHeal(opt.AutoHealAfter)
	}
	for i := 0; i < opt.Spares; i++ {
		g.AddSpare(newRep())
	}
	return g, nil
}

// ---- Failure detection and failover supervision (internal/cluster) ----

// FailoverPolicy sets the failure detector's thresholds. All fields are
// public deployment parameters: detection and repair timing depend only on
// them, never on request contents.
type FailoverPolicy = cluster.Policy

// SupervisorStats aggregates a supervisor's repair activity: detector
// trips, promotions and failed promotions, recoveries, and
// time-to-recovery.
type SupervisorStats = cluster.Stats

// Supervisor drives automatic failover: a consecutive-miss failure
// detector (fed by epoch health and optional liveness probes) that calls a
// promote hook when a partition trips, with full repair accounting. Wire
// its Failover/OnFailover into Config, feed Store.Health() to
// ObserveHealth each epoch (or run Watch probe loops), and read Stats.
type Supervisor = cluster.Supervisor

// NewSupervisor builds a Supervisor over parts partitions; promote
// supplies the replacement client for a tripped partition (a dialed
// standby, or a node restored from sealed durable state).
func NewSupervisor(parts int, promote FailoverFunc, policy FailoverPolicy) *Supervisor {
	return cluster.NewSupervisor(parts, promote, policy)
}

// NewAdaptiveSubORAM builds a partition that switches between the
// throughput-optimized linear-scan engine and the latency-optimized DORAM
// based on observed batch sizes — the adaptive-workload direction §1.1
// leaves as future work. switchBelow/switchAbove set the hysteresis band
// in mean batch size (0 picks defaults).
func NewAdaptiveSubORAM(blockSize, switchBelow, switchAbove int) (SubORAM, error) {
	return adaptive.New(adaptive.Config{
		BlockSize:   blockSize,
		SwitchBelow: switchBelow,
		SwitchAbove: switchAbove,
	})
}

// NewPIRSubORAM builds a partition served by two-server XOR PIR (paper §9
// "Private Information Retrieval"): reads are information-theoretically
// private against either (non-colluding) server; writes are applied in the
// clear, so use it for read-dominated stores such as transparency logs.
func NewPIRSubORAM(blockSize int) SubORAM {
	return pir.NewSubORAM(blockSize)
}

// PlanDeploymentForBudget is the §6 extension planner: given a data size,
// a throughput target, and a monthly budget, it returns the configuration
// minimizing average latency.
func PlanDeploymentForBudget(objects, blockSize int, minThroughput, monthlyBudget float64) (Plan, error) {
	model := planner.Calibrate(blockSize, 128)
	return planner.OptimizeLatency(planner.Requirements{
		Objects:       objects,
		BlockSize:     blockSize,
		MinThroughput: minThroughput,
		MaxLatency:    time.Hour, // bounded by the budget search instead
	}, monthlyBudget, model, planner.DefaultPrices())
}
