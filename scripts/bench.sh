#!/usr/bin/env bash
# Data-plane benchmark harness. Runs the hot-path benchmarks (batch
# formation, response matching, wire codec, end-to-end epochs) with
# -benchmem and emits results/BENCH_dataplane.json with ns/op, B/op and
# allocs/op per benchmark. Compare against
# results/BENCH_dataplane_baseline.json (recorded before the pooled-arena
# refactor) to see the allocation reduction.
#
# Also runs snoopy-bench's instrumented observability deployment and emits
# results/BENCH_observability.json: a full telemetry snapshot — counters,
# stage-duration histograms, and the per-epoch stage spans showing where
# epoch time goes (stage A batching, per-partition stage B, stage C match).
#
# Also emits results/BENCH_segstore.json: memory-resident vs
# disk-resident (internal/segstore) scan throughput across segment sizes,
# with the steady-state allocation count of the streaming scan loop (must
# be zero).
#
# Finally emits results/BENCH_lbtree.json: monolithic load balancer vs
# 1/2/4/8-leaf hierarchical aggregation trees — MakeBatches wall time,
# steady-state B/op and allocs/op (must be zero), and the root-level
# compare-exchange counts showing the merge-of-sorted-runs beating the
# monolithic re-sort from 4 leaves on.
#
# Usage: scripts/bench.sh [benchtime]   (default 2x)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2x}"
FILTER='BenchmarkLoadBalancerMakeBatch|BenchmarkLoadBalancerMatchResponses|BenchmarkWireCodec|BenchmarkSnoopyEndToEnd|BenchmarkPipelinedEpochs'
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$FILTER" -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"

mkdir -p results
awk '
BEGIN { print "{"; print "  \"benchmarks\": ["; first = 1 }
/^Benchmark/ {
    name = $1; ns = ""; bop = ""; aop = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")     ns  = $(i-1)
        if ($(i) == "B/op")      bop = $(i-1)
        if ($(i) == "allocs/op") aop = $(i-1)
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", \
        name, ns, (bop == "" ? "null" : bop), (aop == "" ? "null" : aop)
}
END { print "\n  ]"; print "}" }
' "$RAW" > results/BENCH_dataplane.json

echo "wrote results/BENCH_dataplane.json"

# Pipelined vs synchronous epoch throughput (BenchmarkPipelinedEpochs at
# depths 1/2/4 plus the default). A dedicated -count=5 run, taking the
# minimum ns/op per configuration — min-of-N is the low-noise estimator on
# a shared box. Emits results/BENCH_pipeline.json and FAILS the bench if
# the pipelined engine regresses below the synchronous one beyond a 3%
# scheduler-noise guard band: on a single-core host overlapped execution
# can at best tie synchronous (there is no second core to absorb the
# overlapped stages), so the gate's job is to catch genuine pessimization
# — the pre-fix engine was 12.5% slower pipelined — not coin-flip noise.
RAWP="$(mktemp)"
trap 'rm -f "$RAW" "$RAWP"' EXIT
go test -run '^$' -bench 'BenchmarkPipelinedEpochs' -benchtime "$BENCHTIME" -count=5 . | tee "$RAWP"

awk '
/^BenchmarkPipelinedEpochs\// {
    ns = ""
    for (i = 2; i <= NF; i++) if ($(i) == "ns/op") ns = $(i-1)
    if (ns == "") next
    name = $1
    sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix, if any
    if (!(name in best) || ns + 0 < best[name] + 0) best[name] = ns
}
END {
    sync = best["BenchmarkPipelinedEpochs/pipeline=false"]
    pipe = best["BenchmarkPipelinedEpochs/pipeline=true"]
    if (sync == "" || pipe == "") {
        print "BENCH_pipeline: missing pipeline=false/true results" > "/dev/stderr"
        exit 1
    }
    n = 0
    for (name in best)
        if (match(name, /depth=[0-9]+$/)) {
            d = substr(name, RSTART + 6, RLENGTH - 6) + 0
            order[++n] = d
            depths[d] = best[name]
        }
    # insertion sort: a handful of depths
    for (i = 2; i <= n; i++)
        for (j = i; j > 1 && order[j] < order[j-1]; j--) {
            t = order[j]; order[j] = order[j-1]; order[j-1] = t
        }
    printf "{\n"
    printf "  \"samples\": 5,\n"
    printf "  \"estimator\": \"min\",\n"
    printf "  \"synchronous_ns_op\": %s,\n", sync
    printf "  \"pipelined_ns_op\": %s,\n", pipe
    printf "  \"pipelined_speedup\": %.4f,\n", sync / pipe
    printf "  \"by_depth\": {"
    for (i = 1; i <= n; i++)
        printf "%s\"%s\": %s", (i > 1 ? ", " : ""), order[i], depths[order[i]]
    printf "}\n}\n"
    if (pipe + 0 > sync * 1.03) {
        printf "BENCH_pipeline: pipelined (%s ns/op) regresses below synchronous (%s ns/op)\n", pipe, sync > "/dev/stderr"
        exit 1
    }
}
' "$RAWP" > results/BENCH_pipeline.json

echo "wrote results/BENCH_pipeline.json"

go run ./cmd/snoopy-bench -observability results/BENCH_observability.json
echo "wrote results/BENCH_observability.json"

go run ./cmd/snoopy-bench -segstore results/BENCH_segstore.json
echo "wrote results/BENCH_segstore.json"

go run ./cmd/snoopy-bench -lbtree results/BENCH_lbtree.json
echo "wrote results/BENCH_lbtree.json"

# Open-loop traffic harness (in-process deployment, fixed small shape so
# the numbers are machine-comparable): the full scenario suite at the
# reference load, then the knee sweep vs the calibrated Eq. 1-2 / simnet
# prediction. Emits results/BENCH_traffic.json and FAILS if p99 at the
# reference load regresses >10% against the committed baseline
# (results/BENCH_traffic_baseline.json) — the latency there is dominated
# by the public epoch quantum, so the gate is stable across hosts. The
# TCP-cluster variant of the same harness is scripts/traffic.sh.
go run ./cmd/snoopy-bench -traffic results/BENCH_traffic.json \
  -sessions 100000 -rate 1500 -duration 1200ms -epoch 25ms \
  -objects 1024 -block 64 -lbs 1 -suborams 2 \
  -baseline results/BENCH_traffic_baseline.json
echo "wrote results/BENCH_traffic.json"
