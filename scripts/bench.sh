#!/usr/bin/env bash
# Data-plane benchmark harness. Runs the hot-path benchmarks (batch
# formation, response matching, wire codec, end-to-end epochs) with
# -benchmem and emits results/BENCH_dataplane.json with ns/op, B/op and
# allocs/op per benchmark. Compare against
# results/BENCH_dataplane_baseline.json (recorded before the pooled-arena
# refactor) to see the allocation reduction.
#
# Also runs snoopy-bench's instrumented observability deployment and emits
# results/BENCH_observability.json: a full telemetry snapshot — counters,
# stage-duration histograms, and the per-epoch stage spans showing where
# epoch time goes (stage A batching, per-partition stage B, stage C match).
#
# Also emits results/BENCH_segstore.json: memory-resident vs
# disk-resident (internal/segstore) scan throughput across segment sizes,
# with the steady-state allocation count of the streaming scan loop (must
# be zero).
#
# Finally emits results/BENCH_lbtree.json: monolithic load balancer vs
# 1/2/4/8-leaf hierarchical aggregation trees — MakeBatches wall time,
# steady-state B/op and allocs/op (must be zero), and the root-level
# compare-exchange counts showing the merge-of-sorted-runs beating the
# monolithic re-sort from 4 leaves on.
#
# Usage: scripts/bench.sh [benchtime]   (default 2x)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2x}"
FILTER='BenchmarkLoadBalancerMakeBatch|BenchmarkLoadBalancerMatchResponses|BenchmarkWireCodec|BenchmarkSnoopyEndToEnd|BenchmarkPipelinedEpochs'
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$FILTER" -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"

mkdir -p results
awk '
BEGIN { print "{"; print "  \"benchmarks\": ["; first = 1 }
/^Benchmark/ {
    name = $1; ns = ""; bop = ""; aop = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")     ns  = $(i-1)
        if ($(i) == "B/op")      bop = $(i-1)
        if ($(i) == "allocs/op") aop = $(i-1)
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", \
        name, ns, (bop == "" ? "null" : bop), (aop == "" ? "null" : aop)
}
END { print "\n  ]"; print "}" }
' "$RAW" > results/BENCH_dataplane.json

echo "wrote results/BENCH_dataplane.json"

go run ./cmd/snoopy-bench -observability results/BENCH_observability.json
echo "wrote results/BENCH_observability.json"

go run ./cmd/snoopy-bench -segstore results/BENCH_segstore.json
echo "wrote results/BENCH_segstore.json"

go run ./cmd/snoopy-bench -lbtree results/BENCH_lbtree.json
echo "wrote results/BENCH_lbtree.json"
