#!/usr/bin/env bash
# Open-loop traffic harness driver: boots a real TCP cluster of
# snoopy-server partition processes on loopback, then drives it with
# snoopy-bench -traffic — 10^5..10^6 simulated client sessions on a
# precomputed coordinated-omission-safe schedule (see internal/loadgen).
#
#   scripts/traffic.sh smoke   # CI mode: 2 servers, 10^5 sessions, two
#                              # scenarios, no knee sweep (~10s)
#   scripts/traffic.sh full    # 4 servers, 10^6 sessions, the whole
#                              # scenario suite plus the knee sweep vs the
#                              # calibrated Eq. 1-2 / simnet prediction
#
# Writes results/TRAFFIC_<mode>.json. The in-process report consumed by
# the p99 baseline gate is emitted by scripts/bench.sh instead
# (results/BENCH_traffic.json), so that gate does not depend on loopback
# networking noise.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-smoke}"
BLOCK=64
EPOCH=50ms
BASE_PORT=7411

case "$MODE" in
  smoke)
    SERVERS_N=2
    SESSIONS=100000
    RATE=1200
    DURATION=1s
    SCENARIOS="poisson-uniform,hotkey-storm"
    KNEE=false
    ;;
  full)
    SERVERS_N=4
    SESSIONS=1000000
    RATE=2000
    DURATION=3s
    SCENARIOS="all"
    KNEE=true
    ;;
  *)
    echo "usage: scripts/traffic.sh [smoke|full]" >&2
    exit 2
    ;;
esac

mkdir -p bin results
go build -o bin/snoopy-server ./cmd/snoopy-server
go build -o bin/snoopy-bench ./cmd/snoopy-bench

# Shared simulated-attestation platform key: separately started server
# processes and the bench client must agree on one authority.
PLATFORM="$(head -c 32 /dev/urandom | od -An -tx1 | tr -d ' \n')"

LOGDIR="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$LOGDIR"
}
trap cleanup EXIT

ADDRS=""
for i in $(seq 0 $((SERVERS_N - 1))); do
  port=$((BASE_PORT + i))
  bin/snoopy-server -listen "127.0.0.1:$port" -block "$BLOCK" -platform "$PLATFORM" \
    >"$LOGDIR/server_$i.log" 2>&1 &
  PIDS+=($!)
  ADDRS="${ADDRS:+$ADDRS,}127.0.0.1:$port"
done

# Wait for every partition to accept connections.
for i in $(seq 0 $((SERVERS_N - 1))); do
  port=$((BASE_PORT + i))
  for _ in $(seq 1 50); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
      exec 3>&- 3<&- || true
      break
    fi
    sleep 0.1
  done
done

bin/snoopy-bench -traffic "results/TRAFFIC_$MODE.json" \
  -servers "$ADDRS" -platform "$PLATFORM" \
  -scenarios "$SCENARIOS" -sessions "$SESSIONS" -rate "$RATE" \
  -duration "$DURATION" -epoch "$EPOCH" -objects 1024 -block "$BLOCK" \
  -lbs 1 -knee="$KNEE"

echo "traffic.sh ($MODE): OK — results/TRAFFIC_$MODE.json"
