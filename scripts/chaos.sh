#!/usr/bin/env bash
# Long chaos soak — deliberately outside the tier-1 time budget.
#
# Part 1 runs the seeded chaos harnesses (internal/chaos) across many seeds
# with long fault phases under -race: scripted kill/stall/rollback/restart
# schedules against replicated partitions, plus the root-failover harness
# that kills the root load balancer at journal crash points (stage-a /
# journal / dispatch) and kills leaves mid-epoch, promoting a standby root
# that replays the sealed epoch journal. Every client history goes through
# the linearizability checker, every tracked request must be answered
# exactly once, and the cluster must be back to full health within K epochs
# of the last fault. A failing seed is printed in the test output;
# replaying it reproduces the identical fault schedule.
#
# Part 2 exercises the real process boundary: it builds snoopy-server,
# kills it with SIGKILL mid-deployment, restarts it on the same sealed data
# directory, and verifies acknowledged state survives and tampered state is
# refused — plus the in-process crash-recovery soak.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== seeded chaos soaks (16 seeds each, -race) =="
SNOOPY_CHAOS_SOAK=1 go test -race -timeout 120m -run 'TestChaosSoak|TestRootChaosSoak' -v ./internal/chaos/

echo "== kill -9 + restart and crash-recovery soak =="
go test -timeout 30m -run 'TestServerSurvivesKill9|TestCrashRecoverySoak' -v .

echo "chaos.sh: OK"
