#!/usr/bin/env bash
# Long chaos soak — deliberately outside the tier-1 time budget.
#
# Part 1 runs the seeded chaos harness (internal/chaos) across many seeds
# with long fault phases under -race: scripted kill/stall/rollback/restart
# schedules against replicated partitions, checking every client history
# with the linearizability checker and requiring the cluster back to full
# health within K epochs of the last fault. A failing seed is printed in
# the test output; replaying it reproduces the identical fault schedule.
#
# Part 2 exercises the real process boundary: it builds snoopy-server,
# kills it with SIGKILL mid-deployment, restarts it on the same sealed data
# directory, and verifies acknowledged state survives and tampered state is
# refused — plus the in-process crash-recovery soak.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== seeded chaos soak (16 seeds, -race) =="
SNOOPY_CHAOS_SOAK=1 go test -race -timeout 120m -run TestChaosSoak -v ./internal/chaos/

echo "== kill -9 + restart and crash-recovery soak =="
go test -timeout 30m -run 'TestServerSurvivesKill9|TestCrashRecoverySoak' -v .

echo "chaos.sh: OK"
