#!/usr/bin/env bash
# Pre-commit check: vet the whole module, then race-test the subsystems with
# the trickiest concurrency surface — persistence, replication, transport,
# failure detection/failover, the seeded chaos harness, the pooled data
# plane (arena recycling under the pipelined epoch loop in core, and the
# pooled hot paths in loadbalancer/ohash), the oblivious sort/merge
# primitives under parallel leaf sorting (obliv), the trace leakage
# suite with parallel workers, and the fault-tolerant root plane (epoch
# journal, standby promotion, exactly-once replies). The full suite is
# `go test ./...`; the long multi-seed chaos soak is scripts/chaos.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
# -race slows the branch-free oblivious scans ~20x; the core package alone
# needs well over go test's default 10m, hence the explicit timeout.
go test -race -timeout 45m \
  ./internal/persist/... \
  ./internal/segstore/... \
  ./internal/replica/... \
  ./internal/transport/... \
  ./internal/faultnet/... \
  ./internal/arena/... \
  ./internal/core/... \
  ./internal/cluster/... \
  ./internal/chaos/... \
  ./internal/loadbalancer/... \
  ./internal/obliv/... \
  ./internal/trace/... \
  ./internal/ohash/... \
  ./internal/telemetry/... \
  ./internal/metrics/...

# The open-loop traffic harness under -race: the scenario-matrix soak, the
# coordinated-omission regression test, and the workload-independence soak
# (byte-identical telemetry across secret-differing key patterns). -short
# skips only the real-time simnet cross-validation sweep, which measures
# wall-clock capacity and is meaningless under the race detector's ~20x
# slowdown; it runs in the plain `go test ./...` tier instead.
go test -race -short -timeout 15m ./internal/loadgen/ ./internal/workload/

# End-to-end smoke of the TCP traffic path: boots a real loopback cluster
# of snoopy-server processes and drives 10^5 open-loop sessions through it.
scripts/traffic.sh smoke

# Focused re-run of the overlapped epoch engine's highest-risk surface at
# pipeline depth > 1: the Flush/Close/stats soak with a faultnet-stalled
# partition mid-drain, the depth-token liveness test, arena isolation
# across in-flight epochs, and the leakage suite with the pipeline on
# (Pipeline=true, PipelineDepth=4). These run above as part of their
# packages; re-running them -count=2 shakes out schedule-dependent
# interleavings the single pass can miss.
go test -race -timeout 15m -count=2 \
  -run 'TestPipelinedSoakWithStalledRemote|TestFlushBlockedOnDepthUnblocksOnClose|TestPipelinedEpochsArenaIsolation|TestPartStageBZeroAlloc' \
  ./internal/core/
go test -race -timeout 15m -count=2 \
  -run 'TestTelemetryTraceIndependentOfSecretsPipelined' \
  ./internal/trace/

# Focused re-run of the fault-tolerant root plane: journal append/replay
# and crash-point recovery in core, root-supervisor promotion races in
# cluster, the seeded root-kill chaos harness, and the journal/standby
# leakage tests. Schedule-sensitive by construction (promotion races a
# probing watchdog), so shake them with -count=2 as well.
go test -race -timeout 15m -count=2 \
  -run 'TestJournal|TestRootPromotion|TestTripPlanesSeparate|TestRootChaos' \
  ./internal/core/ ./internal/cluster/ ./internal/chaos/
go test -race -timeout 15m -count=2 \
  -run 'TestJournalTrace' \
  ./internal/trace/
echo "check.sh: OK"
