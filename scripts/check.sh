#!/usr/bin/env bash
# Pre-commit check: vet the whole module, then race-test the subsystems with
# the trickiest concurrency/durability surface (persistence, replication,
# transport). The full suite is `go test ./...`.
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
go test -race ./internal/persist/... ./internal/replica/... ./internal/transport/...
echo "check.sh: OK"
