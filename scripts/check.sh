#!/usr/bin/env bash
# Pre-commit check: vet the whole module, then race-test the subsystems with
# the trickiest concurrency surface — persistence, replication, transport,
# failure detection/failover, the seeded chaos harness, the pooled data
# plane (arena recycling under the pipelined epoch loop in core, and the
# pooled hot paths in loadbalancer/ohash), the oblivious sort/merge
# primitives under parallel leaf sorting (obliv), and the trace leakage
# suite with parallel workers. The full suite is
# `go test ./...`; the long multi-seed chaos soak is scripts/chaos.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
# -race slows the branch-free oblivious scans ~20x; the core package alone
# needs well over go test's default 10m, hence the explicit timeout.
go test -race -timeout 45m \
  ./internal/persist/... \
  ./internal/segstore/... \
  ./internal/replica/... \
  ./internal/transport/... \
  ./internal/faultnet/... \
  ./internal/arena/... \
  ./internal/core/... \
  ./internal/cluster/... \
  ./internal/chaos/... \
  ./internal/loadbalancer/... \
  ./internal/obliv/... \
  ./internal/trace/... \
  ./internal/ohash/... \
  ./internal/telemetry/... \
  ./internal/metrics/...
echo "check.sh: OK"
