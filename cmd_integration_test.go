package snoopy_test

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"snoopy/internal/crypt"
	"snoopy/internal/enclave"
	"snoopy/internal/loadbalancer"
	"snoopy/internal/store"
	"snoopy/internal/transport"
)

// TestCommandLineIntegration builds the real binaries and runs a two-server
// deployment end to end: snoopy-server ×2 + snoopy-client, attested over
// a shared platform key, loading objects and running a workload.
func TestCommandLineIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCommands(t)
	key := crypt.MustNewKey()
	platformHex := hex.EncodeToString(key[:])

	var addrs []string
	var servers []*exec.Cmd
	for i := 0; i < 2; i++ {
		port := freePort(t)
		addr := fmt.Sprintf("127.0.0.1:%d", port)
		srv := exec.Command(filepath.Join(bin, "snoopy-server"),
			"-listen", addr, "-block", "64", "-platform", platformHex)
		srv.Stdout = os.Stderr
		srv.Stderr = os.Stderr
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		addrs = append(addrs, addr)
	}
	defer func() {
		for _, s := range servers {
			s.Process.Kill()
			s.Wait()
		}
	}()
	for _, addr := range addrs {
		waitListening(t, addr)
	}

	client := exec.Command(filepath.Join(bin, "snoopy-client"),
		"-servers", addrs[0]+","+addrs[1],
		"-platform", platformHex,
		"-block", "64", "-objects", "2000", "-ops", "40",
		"-clients", "4", "-epoch", "20ms")
	var out bytes.Buffer
	client.Stdout = &out
	client.Stderr = &out
	if err := client.Run(); err != nil {
		t.Fatalf("client failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"attested and connected", "throughput:", "latency:"} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Fatalf("client output missing %q:\n%s", want, out.String())
		}
	}
}

// TestServerKillRestartIntegration kills one durable snoopy-server with
// SIGKILL in the middle of a client run and restarts it on the same address
// and data directory. The client — armed with a retry budget — must ride out
// the outage: its in-flight batches fail over to redial + re-attestation and
// the run completes with no failed operation.
func TestServerKillRestartIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCommands(t)
	key := crypt.MustNewKey()
	platformHex := hex.EncodeToString(key[:])
	dataDir := t.TempDir()

	startServer := func(addr string, durable bool) (*exec.Cmd, *syncBuffer) {
		args := []string{"-listen", addr, "-block", "64", "-platform", platformHex}
		if durable {
			args = append(args, "-data", dataDir)
		}
		srv := exec.Command(filepath.Join(bin, "snoopy-server"), args...)
		out := &syncBuffer{}
		srv.Stdout = out
		srv.Stderr = out
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		return srv, out
	}

	victimAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	otherAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	victim, _ := startServer(victimAddr, true)
	other, _ := startServer(otherAddr, false)
	defer func() {
		other.Process.Kill()
		other.Wait()
	}()
	waitListening(t, victimAddr)
	waitListening(t, otherAddr)

	client := exec.Command(filepath.Join(bin, "snoopy-client"),
		"-servers", victimAddr+","+otherAddr,
		"-platform", platformHex,
		"-block", "64", "-objects", "1000", "-ops", "400",
		"-clients", "4", "-epoch", "20ms",
		"-retries", "10")
	clientOut := &syncBuffer{}
	client.Stdout = clientOut
	client.Stderr = clientOut
	if err := client.Start(); err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan error, 1)
	go func() { clientDone <- client.Wait() }()

	// Wait for the workload phase, let a few epochs land, then crash the
	// durable server the hard way.
	deadline := time.Now().Add(30 * time.Second)
	for !bytes.Contains(clientOut.Bytes(), []byte("running")) {
		if time.Now().After(deadline) {
			t.Fatalf("client never reached the workload:\n%s", clientOut.String())
		}
		select {
		case err := <-clientDone:
			t.Fatalf("client exited early (%v):\n%s", err, clientOut.String())
		case <-time.After(20 * time.Millisecond):
		}
	}
	time.Sleep(300 * time.Millisecond)
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.Wait()

	restarted, restartedOut := startServer(victimAddr, true)
	defer func() {
		restarted.Process.Kill()
		restarted.Wait()
	}()
	waitListening(t, victimAddr)

	select {
	case err := <-clientDone:
		if err != nil {
			t.Fatalf("client failed across server restart: %v\n%s", err, clientOut.String())
		}
	case <-time.After(120 * time.Second):
		t.Fatalf("client hung across server restart:\n%s", clientOut.String())
	}
	if bytes.Contains(clientOut.Bytes(), []byte("op failed")) {
		t.Fatalf("operations failed despite retry budget:\n%s", clientOut.String())
	}
	for _, want := range []string{"throughput:", "latency:"} {
		if !bytes.Contains(clientOut.Bytes(), []byte(want)) {
			t.Fatalf("client output missing %q:\n%s", want, clientOut.String())
		}
	}
	if !bytes.Contains(restartedOut.Bytes(), []byte("recovered partition")) {
		t.Fatalf("restarted server did not recover its durable state:\n%s", restartedOut.String())
	}
}

// TestTelemetryEndpointIntegration runs a real snoopy-server and
// snoopy-client, both with -telemetry-addr, drives a workload, and scrapes
// the operator surface of each: /metrics must show the transport serving and
// RPC counters, /trace/epochs must show every epoch stage span, and the
// pprof index must respond.
func TestTelemetryEndpointIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCommands(t)
	key := crypt.MustNewKey()
	platformHex := hex.EncodeToString(key[:])

	serverAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	serverTel := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	clientTel := fmt.Sprintf("127.0.0.1:%d", freePort(t))

	srv := exec.Command(filepath.Join(bin, "snoopy-server"),
		"-listen", serverAddr, "-block", "64", "-platform", platformHex,
		"-telemetry-addr", serverTel)
	srvOut := &syncBuffer{}
	srv.Stdout = srvOut
	srv.Stderr = srvOut
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	waitListening(t, serverAddr)
	waitListening(t, serverTel)

	// -telemetry-hold keeps the client's endpoint alive after the workload
	// so the test can scrape it; the client is killed once scraped.
	client := exec.Command(filepath.Join(bin, "snoopy-client"),
		"-servers", serverAddr, "-platform", platformHex,
		"-block", "64", "-objects", "500", "-ops", "40",
		"-clients", "4", "-epoch", "20ms",
		"-telemetry-addr", clientTel, "-telemetry-hold", "2m")
	clientOut := &syncBuffer{}
	client.Stdout = clientOut
	client.Stderr = clientOut
	if err := client.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		client.Process.Kill()
		client.Wait()
	}()

	deadline := time.Now().Add(60 * time.Second)
	for !bytes.Contains(clientOut.Bytes(), []byte("holding telemetry")) {
		if time.Now().After(deadline) {
			t.Fatalf("client never finished its workload:\n%s", clientOut.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	scrape := func(addr, path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s%s: %v", addr, path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s%s: status %d", addr, path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	// Client surface: the deployment's epoch engine lives here, so its
	// metrics carry the core counters and RPC-side transport counters...
	clientMetrics := scrape(clientTel, "/metrics")
	for _, want := range []string{
		"counter core_requests_total 40\n", // exactly -ops, no more, no less
		"counter transport_retries_total 0\n",
		"counter transport_rpc_failures_total 0\n",
		"hist transport_rpc count ",
		"gauge snoopy_config_suborams 1\n",
	} {
		if !strings.Contains(clientMetrics, want) {
			t.Errorf("client /metrics missing %q:\n%s", want, clientMetrics)
		}
	}
	// ...and its epoch trace records every stage span.
	clientSpans := scrape(clientTel, "/trace/epochs?n=512")
	for _, stage := range []string{"stage_a_batch", "stage_b_suboram", "stage_c_match", `"stage": "epoch"`} {
		if !strings.Contains(clientSpans, stage) {
			t.Errorf("client /trace/epochs missing stage %q:\n%s", stage, clientSpans)
		}
	}

	// Server surface: serving-side transport counters. Replays and stale
	// rejects exist (so operators can alarm on them) and are zero in a
	// clean run.
	serverMetrics := scrape(serverTel, "/metrics")
	for _, want := range []string{
		"counter transport_conns_total 1\n",
		"counter transport_replays_total 0\n",
		"counter transport_stale_rejects_total 0\n",
		"counter suboram_batches_total ",
		"hist transport_batch_serve count ",
	} {
		if !strings.Contains(serverMetrics, want) {
			t.Errorf("server /metrics missing %q:\n%s", want, serverMetrics)
		}
	}
	m := regexp.MustCompile(`counter transport_batches_served_total (\d+)`).FindStringSubmatch(serverMetrics)
	if m == nil || m[1] == "0" {
		t.Errorf("server served no batches per its own telemetry:\n%s", serverMetrics)
	}

	// pprof responds on both surfaces.
	for _, addr := range []string{clientTel, serverTel} {
		if idx := scrape(addr, "/debug/pprof/"); !strings.Contains(idx, "goroutine") {
			t.Errorf("pprof index on %s looks wrong:\n%s", addr, idx)
		}
	}
}

// TestLeafServerIntegration runs the real snoopy-server binary in -leaf
// mode and installs it as one leaf of an in-process aggregation tree: the
// batches the hybrid tree produces must be row-for-row identical to an
// all-local tree under the same routing key, proving the binary's leaf role
// speaks the leaf-run protocol the root expects.
func TestLeafServerIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCommands(t)
	pkey := crypt.MustNewKey()
	lbKey := crypt.MustNewKey()

	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	srv := exec.Command(filepath.Join(bin, "snoopy-server"),
		"-listen", addr, "-leaf", "1", "-lb-leaves", "2",
		"-suborams", "4", "-lambda", "32", "-block", "64",
		"-platform", hex.EncodeToString(pkey[:]),
		"-lb-key", hex.EncodeToString(lbKey[:]))
	srv.Stdout = os.Stderr
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	waitListening(t, addr)

	// The server derives its attestation authority from pkey; dial with the
	// same authority and the leaf role's published measurement.
	rl, err := transport.DialLeaf(addr, enclave.NewPlatformFromKey(pkey), enclave.Measure("snoopy-leaf-v1"))
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()

	cfg := loadbalancer.Config{BlockSize: 64, NumSubORAMs: 4, Lambda: 32}
	newTree := func() *loadbalancer.Tree {
		tr, err := loadbalancer.NewTree(loadbalancer.TreeConfig{Config: cfg, Leaves: 2}, lbKey)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	hybrid := newTree()
	hybrid.ReplaceLeaf(1, rl)
	local := newTree()

	feeds := func() []*store.Requests {
		f0 := store.NewRequests(16, 64)
		f1 := store.NewRequests(16, 64)
		for j := 0; j < 16; j++ {
			f0.SetRow(j, store.OpWrite, uint64(j), 0, uint64(j), uint64(j), []byte(fmt.Sprintf("w%d", j)))
			f1.SetRow(j, store.OpRead, uint64(j+8), 0, uint64(j), uint64(j), nil)
		}
		return []*store.Requests{f0, f1}
	}
	for epoch := uint64(1); epoch <= 2; epoch++ {
		bh, feedErrs, err := hybrid.MakeBatches(epoch, feeds())
		if err != nil || feedErrs != nil {
			t.Fatalf("hybrid tree epoch %d: %v %v", epoch, err, feedErrs)
		}
		bl, _, err := local.MakeBatches(epoch, feeds())
		if err != nil {
			t.Fatal(err)
		}
		if bh.PerSub != bl.PerSub || bh.All.Len() != bl.All.Len() {
			t.Fatalf("shape mismatch: %d×%d vs %d×%d", bh.PerSub, bh.All.Len(), bl.PerSub, bl.All.Len())
		}
		for i := 0; i < bh.All.Len(); i++ {
			if bh.All.Key[i] != bl.All.Key[i] || bh.All.Op[i] != bl.All.Op[i] ||
				bh.All.Sub[i] != bl.All.Sub[i] || !bytes.Equal(bh.All.Block(i), bl.All.Block(i)) {
				t.Fatalf("epoch %d row %d differs between binary leaf and local leaf", epoch, i)
			}
		}
		bh.Release()
		bl.Release()
	}
}

// TestLeafKillDummyRunIntegration kills a real `snoopy-server -leaf`
// process with SIGKILL between two epochs of a hybrid aggregation tree and
// asserts the root's §9-style degradation: the dead leaf's feed fails (its
// requests are absent and reported via feedErrs), the root substitutes the
// neutral all-dummy run for the missing leaf run, and the epoch's public
// shape — per-partition batch size α and total padded rows — still meets
// the same Theorem-3 bound a fully healthy tree produces. A host watching
// batch shapes learns only that a leaf died (which it can already see from
// the dead process), never anything about surviving requests.
func TestLeafKillDummyRunIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCommands(t)
	pkey := crypt.MustNewKey()
	lbKey := crypt.MustNewKey()

	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	srv := exec.Command(filepath.Join(bin, "snoopy-server"),
		"-listen", addr, "-leaf", "1", "-lb-leaves", "2",
		"-suborams", "4", "-lambda", "32", "-block", "64",
		"-platform", hex.EncodeToString(pkey[:]),
		"-lb-key", hex.EncodeToString(lbKey[:]))
	srv.Stdout = os.Stderr
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	waitListening(t, addr)

	// No reconnect budget: once the process is SIGKILLed, the next BuildRun
	// must fail within the epoch instead of retrying into the outage.
	rl, err := transport.DialLeafOptions(addr, enclave.NewPlatformFromKey(pkey),
		enclave.Measure("snoopy-leaf-v1"), transport.Options{}.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()

	cfg := loadbalancer.Config{BlockSize: 64, NumSubORAMs: 4, Lambda: 32}
	newTree := func() *loadbalancer.Tree {
		tr, err := loadbalancer.NewTree(loadbalancer.TreeConfig{Config: cfg, Leaves: 2}, lbKey)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	hybrid := newTree()
	hybrid.ReplaceLeaf(1, rl)
	healthy := newTree() // reference for the public Theorem-3 shape

	// Feed 0 (local leaf) and feed 1 (the binary leaf) use disjoint key
	// ranges so the dead leaf's keys are recognizable in the merged batch.
	feeds := func() []*store.Requests {
		f0 := store.NewRequests(16, 64)
		f1 := store.NewRequests(16, 64)
		for j := 0; j < 16; j++ {
			f0.SetRow(j, store.OpRead, uint64(j), 0, uint64(j), uint64(j), nil)
			f1.SetRow(j, store.OpRead, uint64(j+1000), 0, uint64(j), uint64(j), nil)
		}
		return []*store.Requests{f0, f1}
	}

	// Epoch 1: the binary leaf participates; both feeds succeed.
	b1, feedErrs, err := hybrid.MakeBatches(1, feeds())
	if err != nil || feedErrs != nil {
		t.Fatalf("healthy epoch failed: %v %v", err, feedErrs)
	}
	wantPerSub, wantRows := b1.PerSub, b1.All.Len()
	b1.Release()

	// kill -9 the leaf process, then run the next epoch through the root.
	if err := srv.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	srv.Wait()

	b2, feedErrs, err := hybrid.MakeBatches(2, feeds())
	if err != nil {
		t.Fatalf("epoch must survive a dead leaf, got: %v", err)
	}
	defer b2.Release()
	if feedErrs == nil || feedErrs[1] == nil {
		t.Fatalf("dead leaf's feed not reported failed: %v", feedErrs)
	}
	if feedErrs[0] != nil {
		t.Fatalf("healthy feed failed: %v", feedErrs[0])
	}

	// Public shape: the dummy-run substitution must keep the exact
	// Theorem-3 shape of a healthy epoch — same per-partition α, same total
	// padded rows — which the all-local reference tree certifies.
	bRef, _, err := healthy.MakeBatches(2, feeds())
	if err != nil {
		t.Fatal(err)
	}
	refPerSub, refRows := bRef.PerSub, bRef.All.Len()
	bRef.Release()
	if b2.PerSub != wantPerSub || b2.All.Len() != wantRows {
		t.Fatalf("dead-leaf epoch changed the public shape: %d×%d, healthy was %d×%d",
			b2.PerSub, b2.All.Len(), wantPerSub, wantRows)
	}
	if b2.PerSub != refPerSub || b2.All.Len() != refRows {
		t.Fatalf("dead-leaf epoch misses the Theorem-3 bound: %d×%d, reference %d×%d",
			b2.PerSub, b2.All.Len(), refPerSub, refRows)
	}

	// Contents: the dead leaf's keys are gone, the surviving leaf's keys
	// are all present, and the difference is made up of dummy rows (keys
	// above MaxKey), i.e. the substituted run is public padding.
	real := map[uint64]bool{}
	for i := 0; i < b2.All.Len(); i++ {
		if k := b2.All.Key[i]; k <= uint64(1)<<63-1 {
			real[k] = true
		}
	}
	for j := uint64(0); j < 16; j++ {
		if !real[j] {
			t.Fatalf("surviving leaf's key %d missing from the merged batch", j)
		}
		if real[j+1000] {
			t.Fatalf("dead leaf's key %d leaked into the merged batch", j+1000)
		}
	}
}

// buildCommands compiles the real binaries once into a temp dir.
func buildCommands(t *testing.T) string {
	t.Helper()
	bin := t.TempDir()
	for _, cmd := range []string{"snoopy-server", "snoopy-client"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, cmd), "./cmd/"+cmd).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", cmd, err, out)
		}
	}
	return bin
}

// syncBuffer is a bytes.Buffer safe for concurrent writes (process output)
// and reads (test assertions).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

func (b *syncBuffer) String() string { return string(b.Bytes()) }

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server at %s never started", addr)
}
