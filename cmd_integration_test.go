package snoopy_test

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"snoopy/internal/crypt"
)

// TestCommandLineIntegration builds the real binaries and runs a two-server
// deployment end to end: snoopy-server ×2 + snoopy-client, attested over
// a shared platform key, loading objects and running a workload.
func TestCommandLineIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := t.TempDir()
	for _, cmd := range []string{"snoopy-server", "snoopy-client"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, cmd), "./cmd/"+cmd).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", cmd, err, out)
		}
	}
	key := crypt.MustNewKey()
	platformHex := hex.EncodeToString(key[:])

	var addrs []string
	var servers []*exec.Cmd
	for i := 0; i < 2; i++ {
		port := freePort(t)
		addr := fmt.Sprintf("127.0.0.1:%d", port)
		srv := exec.Command(filepath.Join(bin, "snoopy-server"),
			"-listen", addr, "-block", "64", "-platform", platformHex)
		srv.Stdout = os.Stderr
		srv.Stderr = os.Stderr
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		addrs = append(addrs, addr)
	}
	defer func() {
		for _, s := range servers {
			s.Process.Kill()
			s.Wait()
		}
	}()
	for _, addr := range addrs {
		waitListening(t, addr)
	}

	client := exec.Command(filepath.Join(bin, "snoopy-client"),
		"-servers", addrs[0]+","+addrs[1],
		"-platform", platformHex,
		"-block", "64", "-objects", "2000", "-ops", "40",
		"-clients", "4", "-epoch", "20ms")
	var out bytes.Buffer
	client.Stdout = &out
	client.Stderr = &out
	if err := client.Run(); err != nil {
		t.Fatalf("client failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"attested and connected", "throughput:", "latency:"} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Fatalf("client output missing %q:\n%s", want, out.String())
		}
	}
}

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server at %s never started", addr)
}
