package snoopy_test

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"snoopy"
	"snoopy/internal/crypt"
	"snoopy/internal/enclave"
)

// TestServerSurvivesKill9 builds the real snoopy-server binary, runs it with
// -data, kills it with SIGKILL mid-deployment, restarts it on the same
// directory, and verifies the last acknowledged write is still readable —
// the tentpole durability claim, exercised through the real process
// boundary. It then tampers with the sealed state and verifies the server
// refuses to start.
func TestServerSurvivesKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := t.TempDir()
	out, err := exec.Command("go", "build", "-o", filepath.Join(bin, "snoopy-server"), "./cmd/snoopy-server").CombinedOutput()
	if err != nil {
		t.Fatalf("build snoopy-server: %v\n%s", err, out)
	}
	key := crypt.MustNewKey()
	platformHex := hex.EncodeToString(key[:])
	// The library-side platform shares the binary's root key, so attestation
	// verifies across the process boundary.
	platform := enclave.NewPlatformFromKey(key)
	measurement := snoopy.Measure("snoopy-suboram-v1")
	dataDir := filepath.Join(t.TempDir(), "part0")

	startServer := func(addr string) (*exec.Cmd, *bytes.Buffer) {
		var log bytes.Buffer
		srv := exec.Command(filepath.Join(bin, "snoopy-server"),
			"-listen", addr, "-block", "64", "-platform", platformHex, "-data", dataDir)
		srv.Stdout = &log
		srv.Stderr = &log
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		return srv, &log
	}
	openStore := func(addr string) *snoopy.Store {
		sub, err := snoopy.DialSubORAM(addr, platform, measurement)
		if err != nil {
			t.Fatalf("dial %s: %v", addr, err)
		}
		st, err := snoopy.OpenWithSubORAMs(snoopy.Config{BlockSize: 64, Epoch: 5 * time.Millisecond}, []snoopy.SubORAM{sub})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	srv, _ := startServer(addr)
	waitListening(t, addr)

	st := openStore(addr)
	objects := map[uint64][]byte{}
	for id := uint64(1); id <= 100; id++ {
		objects[id] = []byte(fmt.Sprintf("object-%d-initial", id))
	}
	if err := st.Load(objects); err != nil {
		t.Fatalf("Load: %v", err)
	}
	// The acknowledged write the crash must not lose.
	if _, _, err := st.Write(42, []byte("written-before-crash")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	st.Close()

	// kill -9: no shutdown path runs.
	if err := srv.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	srv.Wait()

	addr2 := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	srv2, log2 := startServer(addr2)
	defer func() { srv2.Process.Kill(); srv2.Wait() }()
	waitListening(t, addr2)

	st2 := openStore(addr2)
	got, ok, err := st2.Read(42)
	if err != nil || !ok {
		t.Fatalf("Read(42) after restart: ok=%v err=%v", ok, err)
	}
	if want := "written-before-crash"; !bytes.HasPrefix(got, []byte(want)) {
		t.Fatalf("Read(42) = %q, want prefix %q", got, want)
	}
	got, ok, err = st2.Read(7)
	if err != nil || !ok || !bytes.HasPrefix(got, []byte("object-7-initial")) {
		t.Fatalf("Read(7) after restart = %q ok=%v err=%v", got, ok, err)
	}
	st2.Close()
	if !bytes.Contains(log2.Bytes(), []byte("recovered partition")) {
		t.Fatalf("restarted server did not report recovery:\n%s", log2.String())
	}

	// Tampering any sealed file must make the next start fail loudly.
	srv2.Process.Kill()
	srv2.Wait()
	snapPath := filepath.Join(dataDir, "snapshot")
	b, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/3] ^= 0x80
	if err := os.WriteFile(snapPath, b, 0o600); err != nil {
		t.Fatal(err)
	}
	addr3 := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	srv3, log3 := startServer(addr3)
	done := make(chan error, 1)
	go func() { done <- srv3.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("server started on tampered state:\n%s", log3.String())
		}
	case <-time.After(10 * time.Second):
		srv3.Process.Kill()
		t.Fatalf("server did not exit on tampered state:\n%s", log3.String())
	}
	if !bytes.Contains(log3.Bytes(), []byte("unusable")) {
		t.Fatalf("tampered-state failure not reported:\n%s", log3.String())
	}
}
