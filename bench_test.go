// Benchmarks mapping to the paper's tables and figures (see DESIGN.md §4
// for the index) plus the ablations of DESIGN.md §5. The cmd/snoopy-bench
// harness regenerates the full figures; these testing.B entries benchmark
// the same code paths at fixed operating points so regressions show up in
// `go test -bench`.
package snoopy_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"snoopy"
	"snoopy/internal/arena"
	"snoopy/internal/batch"
	"snoopy/internal/crypt"
	"snoopy/internal/loadbalancer"
	"snoopy/internal/obladi"
	"snoopy/internal/obliv"
	"snoopy/internal/oblix"
	"snoopy/internal/ohash"
	"snoopy/internal/pathoram"
	"snoopy/internal/plaintext"
	"snoopy/internal/planner"
	"snoopy/internal/ringoram"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
	"snoopy/internal/wirecode"
)

const benchBlock = 160 // the paper's object size

// ---- Figures 3 & 4: batch-size math ----

func BenchmarkBatchSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = batch.Size(10_000, 20, 128)
	}
}

func BenchmarkCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = batch.Capacity(20, 128, 1000)
	}
}

// ---- Figure 13a: bitonic sort parallelism ----

func BenchmarkBitonicSort(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				reqs := store.NewRequests(n, benchBlock)
				for i := 0; i < n; i++ {
					reqs.Key[i] = uint64(i * 2654435761)
				}
				b.SetBytes(int64(n * benchBlock))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					obliv.SortParallel(store.ByKeyTag{Requests: reqs}, workers)
				}
			})
		}
	}
}

// ---- Ablation 1: compaction algorithm choice ----

func BenchmarkCompaction(b *testing.B) {
	const n = 1 << 14
	for _, alg := range []struct {
		name string
		f    func(obliv.Swapper, []uint8)
	}{
		{"ORCompact", obliv.Compact},
		{"LogShift", obliv.CompactLogShift},
	} {
		b.Run(alg.name, func(b *testing.B) {
			reqs := store.NewRequests(n, benchBlock)
			marks := make([]uint8, n)
			rng := rand.New(rand.NewSource(1))
			for i := range marks {
				marks[i] = uint8(rng.Intn(2))
			}
			b.SetBytes(int64(n * benchBlock))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := append([]uint8(nil), marks...)
				alg.f(reqs, m)
			}
		})
	}
}

// ---- Ablation 2: two-tier vs single-tier hash table bucket sizes ----

func BenchmarkHashTableTiers(b *testing.B) {
	const n = 4096
	g := ohash.DefaultParams().GeometryFor(n)
	single := ohash.SingleTierBucketSize(n, 128)
	b.ReportMetric(float64(g.Z1), "tier1-bucket")
	b.ReportMetric(float64(g.Z2), "tier2-bucket")
	b.ReportMetric(float64(single), "single-tier-bucket")
	b.ReportMetric(float64(single)/float64(g.Z1), "tier1-shrinkage")
	reqs := store.NewRequests(n, benchBlock)
	for i := 0; i < n; i++ {
		reqs.SetRow(i, store.OpRead, uint64(i*3+1), 0, uint64(i), uint64(i), nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ohash.Build(reqs, ohash.DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 12: component costs ----

func BenchmarkLoadBalancerMakeBatch(b *testing.B) {
	for _, r := range []int{1 << 8, 1 << 10, 1 << 12} {
		b.Run(fmt.Sprintf("R=%d/S=4", r), func(b *testing.B) {
			lb := loadbalancer.New(loadbalancer.Config{
				BlockSize: benchBlock, NumSubORAMs: 4, Lambda: 128,
			}, crypt.MustNewKey())
			reqs := store.NewRequests(r, benchBlock)
			for i := 0; i < r; i++ {
				reqs.SetRow(i, store.OpRead, uint64(i*13+1), 0, uint64(i), uint64(i), nil)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batches, err := lb.MakeBatches(reqs)
				if err != nil {
					b.Fatal(err)
				}
				batches.Release()
			}
		})
	}
}

func BenchmarkLoadBalancerMatchResponses(b *testing.B) {
	const r = 1 << 10
	lb := loadbalancer.New(loadbalancer.Config{
		BlockSize: benchBlock, NumSubORAMs: 4, Lambda: 128,
	}, crypt.MustNewKey())
	reqs := store.NewRequests(r, benchBlock)
	for i := 0; i < r; i++ {
		reqs.SetRow(i, store.OpRead, uint64(i*13+1), 0, uint64(i), uint64(i), nil)
	}
	batches, err := lb.MakeBatches(reqs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matched, err := lb.MatchResponses(batches.All, reqs)
		if err != nil {
			b.Fatal(err)
		}
		arena.Default.PutRequests(matched)
	}
}

// BenchmarkWireCodec measures the fixed-layout batch codec against the gob
// path it replaced: encode into a reused buffer, decode into pooled storage.
func BenchmarkWireCodec(b *testing.B) {
	for _, n := range []int{1 << 8, 1 << 10, 1 << 12} {
		reqs := store.NewRequests(n, benchBlock)
		for i := 0; i < n; i++ {
			reqs.SetRow(i, store.OpRead, uint64(i*13+1), 0, uint64(i), uint64(i), nil)
		}
		b.Run(fmt.Sprintf("encode/n=%d", n), func(b *testing.B) {
			buf := make([]byte, 0, wirecode.FrameLen(n, benchBlock))
			b.SetBytes(int64(wirecode.FrameLen(n, benchBlock)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = wirecode.AppendRequests(buf[:0], reqs)
			}
		})
		b.Run(fmt.Sprintf("decode/n=%d", n), func(b *testing.B) {
			frame := wirecode.AppendRequests(nil, reqs)
			b.SetBytes(int64(len(frame)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := wirecode.DecodeRequests(frame, arena.Default)
				if err != nil {
					b.Fatal(err)
				}
				arena.Default.PutRequests(out)
			}
		})
	}
}

// BenchmarkSubORAMProcessBatch also covers Figure 13b (worker scaling).
func BenchmarkSubORAMProcessBatch(b *testing.B) {
	for _, objects := range []int{1 << 12, 1 << 15, 1 << 17} {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("objects=%d/workers=%d", objects, workers), func(b *testing.B) {
				sub := suboram.New(suboram.Config{BlockSize: benchBlock, Workers: workers})
				ids := make([]uint64, objects)
				for i := range ids {
					ids[i] = uint64(i)
				}
				if err := sub.Init(ids, make([]byte, objects*benchBlock)); err != nil {
					b.Fatal(err)
				}
				const batchN = 512
				reqs := store.NewRequests(batchN, benchBlock)
				for i := 0; i < batchN; i++ {
					reqs.SetRow(i, store.OpRead, uint64((i*131)%objects), 0, uint64(i), uint64(i), nil)
				}
				b.SetBytes(int64(objects * benchBlock))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sub.BatchAccess(reqs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---- Ablation 5: sealed (enclave-external) vs in-enclave storage (§7) ----

func BenchmarkSealedScan(b *testing.B) {
	const objects = 1 << 13
	for _, sealed := range []bool{false, true} {
		b.Run(fmt.Sprintf("sealed=%v", sealed), func(b *testing.B) {
			sub := suboram.New(suboram.Config{BlockSize: benchBlock, Sealed: sealed})
			ids := make([]uint64, objects)
			for i := range ids {
				ids[i] = uint64(i)
			}
			if err := sub.Init(ids, make([]byte, objects*benchBlock)); err != nil {
				b.Fatal(err)
			}
			reqs := store.NewRequests(256, benchBlock)
			for i := 0; i < 256; i++ {
				reqs.SetRow(i, store.OpRead, uint64(i*17%objects), 0, uint64(i), uint64(i), nil)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sub.BatchAccess(reqs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Ablation 6: deduplication under skew (§4.1) ----

func BenchmarkSkewedBatch(b *testing.B) {
	const r = 1 << 12
	for _, skew := range []string{"uniform", "all-same-key"} {
		b.Run(skew, func(b *testing.B) {
			lb := loadbalancer.New(loadbalancer.Config{
				BlockSize: benchBlock, NumSubORAMs: 8, Lambda: 128,
			}, crypt.MustNewKey())
			reqs := store.NewRequests(r, benchBlock)
			for i := 0; i < r; i++ {
				key := uint64(42)
				if skew == "uniform" {
					key = uint64(i)
				}
				reqs.SetRow(i, store.OpRead, key, 0, uint64(i), uint64(i), nil)
			}
			b.ResetTimer()
			var dropped int
			for i := 0; i < b.N; i++ {
				out, err := lb.MakeBatches(reqs)
				if err != nil {
					b.Fatal(err)
				}
				dropped += out.Dropped
			}
			if dropped != 0 {
				b.Fatalf("skewed batch dropped %d requests", dropped)
			}
		})
	}
}

// ---- Figure 9a (small-scale end-to-end): full-system request cost per
// configuration. NOTE: all nodes time-multiplex this host's cores, so this
// measures correctness-path cost, not cluster scaling — the scaling figure
// is regenerated by `snoopy-bench -fig 9a`, which extends these component
// costs through the paper's pipeline equations. Offered load scales with
// the subORAM count so per-partition work stays comparable. ----

func BenchmarkSnoopyEndToEnd(b *testing.B) {
	const objects = 1 << 14
	for _, cfg := range []struct{ lbs, subs int }{{1, 1}, {1, 3}, {2, 6}} {
		b.Run(fmt.Sprintf("L=%d/S=%d", cfg.lbs, cfg.subs), func(b *testing.B) {
			st, err := snoopy.Open(snoopy.Config{
				BlockSize: benchBlock, LoadBalancers: cfg.lbs, SubORAMs: cfg.subs,
				SubORAMWorkers: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			ids := make([]uint64, objects)
			for i := range ids {
				ids[i] = uint64(i)
			}
			if err := st.LoadSlices(ids, make([]byte, objects*benchBlock)); err != nil {
				b.Fatal(err)
			}
			perEpoch := 256 * cfg.subs
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				waits := make([]func() ([]byte, bool, error), perEpoch)
				for j := 0; j < perEpoch; j++ {
					w, err := st.ReadAsync(uint64((i*perEpoch + j) % objects))
					if err != nil {
						b.Fatal(err)
					}
					waits[j] = w
				}
				st.Flush()
				for _, w := range waits {
					if _, _, err := w(); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(b.N*perEpoch)/time.Since(start).Seconds(), "reqs/s")
		})
	}
}

// ---- Figure 9b: key transparency operation cost ----

func BenchmarkSnoopyKeyTransparency(b *testing.B) {
	const users = 1 << 12
	st, err := snoopy.Open(snoopy.Config{BlockSize: 32, SubORAMs: 4, SubORAMWorkers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	objects := map[uint64][]byte{}
	for i := uint64(0); i < 2*users; i++ {
		objects[i] = []byte{byte(i)}
	}
	if err := st.Load(objects); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One KT lookup: log2(users)+1 = 13 reads in one epoch.
		var waits []func() ([]byte, bool, error)
		for k := uint64(0); k < 13; k++ {
			w, err := st.ReadAsync((uint64(i)*13 + k) % (2 * users))
			if err != nil {
				b.Fatal(err)
			}
			waits = append(waits, w)
		}
		st.Flush()
		for _, w := range waits {
			if _, _, err := w(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---- Figure 10: Oblix as subORAM vs native subORAM ----

func BenchmarkOblixAsSubORAM(b *testing.B) {
	const objects = 1 << 12
	sub := oblix.NewSubORAM(benchBlock)
	ids := make([]uint64, objects)
	for i := range ids {
		ids[i] = uint64(i)
	}
	if err := sub.Init(ids, make([]byte, objects*benchBlock)); err != nil {
		b.Fatal(err)
	}
	reqs := store.NewRequests(64, benchBlock)
	for i := 0; i < 64; i++ {
		reqs.SetRow(i, store.OpRead, uint64(i*31%objects), 0, uint64(i), uint64(i), nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sub.BatchAccess(reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Baselines (Fig. 9a / 11b reference points) ----

func BenchmarkPathORAMAccess(b *testing.B) {
	o, err := pathoram.New(1<<16, benchBlock)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Access(false, uint32(i%(1<<16)), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRingORAMAccess(b *testing.B) {
	o, err := ringoram.New(1<<16, benchBlock, ringoram.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Access(false, uint32(i%(1<<16)), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOblixAccess(b *testing.B) {
	d, err := oblix.New(1<<14, benchBlock)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Access(false, uint32(i%(1<<14)), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObladiBatch(b *testing.B) {
	const objects = 1 << 14
	ids := make([]uint64, objects)
	for i := range ids {
		ids[i] = uint64(i)
	}
	p, err := obladi.New(obladi.Config{BlockSize: benchBlock}, ids, make([]byte, objects*benchBlock))
	if err != nil {
		b.Fatal(err)
	}
	ops := make([]obladi.Op, obladi.DefaultBatchSize)
	for i := range ops {
		ops[i] = obladi.Op{Key: uint64((i * 37) % objects)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ExecuteBatch(ops); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ops)), "reqs/batch")
}

func BenchmarkPlaintextStore(b *testing.B) {
	s := plaintext.New(15)
	ids := make([]uint64, 1<<16)
	for i := range ids {
		ids[i] = uint64(i)
	}
	s.Load(ids, make([]byte, len(ids)*benchBlock), benchBlock)
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			i++
			s.Get(i % uint64(len(ids)))
		}
	})
}

// ---- Figure 14: planner ----

func BenchmarkPlannerOptimize(b *testing.B) {
	model := planner.AnalyticModel(2, 50, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := planner.Optimize(planner.Requirements{
			Objects: 1_000_000, BlockSize: benchBlock,
			MinThroughput: 50_000, MaxLatency: time.Second,
		}, model, planner.DefaultPrices())
		if err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Crypto substrate ----

func BenchmarkSipHash(b *testing.B) {
	k := crypt.MustNewSipKey()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = crypt.SipHash(k, uint64(i))
	}
}

func BenchmarkFusedAccess(b *testing.B) {
	obj := make([]byte, benchBlock)
	slot := make([]byte, benchBlock)
	b.SetBytes(2 * benchBlock)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obliv.FusedAccess(uint8(i&1), uint8((i>>1)&1)&uint8(1-i&1), obj, slot)
	}
}

// ---- Ablation: two-tier construction vs Signal-style quadratic (§5) ----

func BenchmarkHashTableConstruction(b *testing.B) {
	const n = 1024
	reqs := store.NewRequests(n, benchBlock)
	for i := 0; i < n; i++ {
		reqs.SetRow(i, store.OpRead, uint64(i*7+3), 0, uint64(i), uint64(i), nil)
	}
	b.Run("two-tier", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ohash.Build(reqs, ohash.DefaultParams()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("signal-quadratic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ohash.BuildSingleTierQuadratic(reqs, 128); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Pipelined vs synchronous epochs (§6) ----

func BenchmarkPipelinedEpochs(b *testing.B) {
	modes := []struct {
		name     string
		pipeline bool
		depth    int
	}{
		{"pipeline=false", false, 0},
		{"pipeline=true", true, 0}, // default depth
		{"pipeline=true/depth=1", true, 1},
		{"pipeline=true/depth=2", true, 2},
		{"pipeline=true/depth=4", true, 4},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			st, err := snoopy.Open(snoopy.Config{
				BlockSize: benchBlock, SubORAMs: 2,
				Pipeline: mode.pipeline, PipelineDepth: mode.depth,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			const objects = 1 << 13
			ids := make([]uint64, objects)
			for i := range ids {
				ids[i] = uint64(i)
			}
			if err := st.LoadSlices(ids, make([]byte, objects*benchBlock)); err != nil {
				b.Fatal(err)
			}
			// Clear heap debt left by earlier benchmarks in the same process
			// so GC pacing doesn't skew the synchronous/pipelined comparison.
			runtime.GC()
			b.ResetTimer()
			waits := make([]func() ([]byte, bool, error), 0, b.N*64)
			for i := 0; i < b.N; i++ {
				for j := 0; j < 64; j++ {
					w, err := st.ReadAsync(uint64((i*64 + j) % objects))
					if err != nil {
						b.Fatal(err)
					}
					waits = append(waits, w)
				}
				st.Flush()
			}
			for _, w := range waits {
				if _, _, err := w(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
