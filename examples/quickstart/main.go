// Quickstart: open an in-process Snoopy deployment, load objects, and
// perform oblivious reads and writes through the public API.
package main

import (
	"fmt"
	"log"
	"time"

	"snoopy"
)

func main() {
	// Two load balancers in front of four subORAM partitions, batching
	// requests into 10ms epochs.
	st, err := snoopy.Open(snoopy.Config{
		BlockSize:     160,
		LoadBalancers: 2,
		SubORAMs:      4,
		Epoch:         10 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// Load the object set (fixed at initialization, like any ORAM).
	objects := map[uint64][]byte{}
	for id := uint64(0); id < 10_000; id++ {
		objects[id] = []byte(fmt.Sprintf("medical-record-%d", id))
	}
	if err := st.Load(objects); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d objects across %d partitions\n", len(objects), 4)

	// Reads and writes hide *which* object is touched: every epoch sends
	// equal-sized encrypted batches to every partition regardless.
	v, ok, err := st.Read(1234)
	if err != nil || !ok {
		log.Fatalf("read: %v ok=%v", err, ok)
	}
	fmt.Printf("read 1234  -> %q\n", trim(v))

	prev, _, err := st.Write(1234, []byte("updated-diagnosis"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("write 1234 -> replaced %q\n", trim(prev))

	v, _, _ = st.Read(1234)
	fmt.Printf("read 1234  -> %q\n", trim(v))

	stats := st.Stats()
	fmt.Printf("last epoch: %d requests, batch size %d per subORAM, %v end to end\n",
		stats.Requests, stats.BatchSize, stats.Wall.Round(time.Microsecond))
}

func trim(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}
