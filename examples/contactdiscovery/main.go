// Private contact discovery (paper §3.2, §5): the design Snoopy's subORAM
// generalizes. A messaging service's enclave holds the registered-user
// set; a client uploads its address book and learns which contacts are
// registered — while the enclave's memory access pattern reveals nothing
// about the contacts (it builds an oblivious hash table of the batch and
// linearly scans ALL registered users against it, exactly Fig. 7).
//
// This example drives the subORAM engine directly: the Aux bit of each
// response is the "registered" signal, and the value block returns the
// user's profile record.
package main

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"snoopy/internal/store"
	"snoopy/internal/suboram"
)

const (
	registered = 50_000 // users registered with the service
	blockSize  = 64     // profile record size
)

func main() {
	// ---- Service enclave: load the registered-user set ----
	ids := make([]uint64, registered)
	data := make([]byte, registered*blockSize)
	for i := range ids {
		ids[i] = phoneID(fmt.Sprintf("+1-555-%07d", i))
		copy(data[i*blockSize:], fmt.Sprintf("profile(user-%d)", i))
	}
	eng := suboram.New(suboram.Config{BlockSize: blockSize, Workers: 4})
	if err := eng.Init(ids, data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enclave loaded %d registered users\n", registered)

	// ---- Client: upload an address book (some registered, some not) ----
	contacts := []string{
		"+1-555-0000042",   // registered
		"+1-555-0013337",   // registered
		"+44-20-7946-0000", // not registered
		"+1-555-0000007",   // registered
		"+49-30-1234567",   // not registered
	}
	batch := store.NewRequests(len(contacts), blockSize)
	for i, c := range contacts {
		batch.SetRow(i, store.OpRead, phoneID(c), 0, uint64(i), uint64(i), nil)
	}

	t0 := time.Now()
	out, err := eng.BatchAccess(batch)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0)

	// ---- Client learns the intersection; the enclave's access pattern
	// was a fixed function of (batch size, data size) only ----
	found := map[uint64][]byte{}
	for i := 0; i < out.Len(); i++ {
		if out.Aux[i] == 1 {
			found[out.Key[i]] = out.Block(i)
		}
	}
	for _, c := range contacts {
		if rec, ok := found[phoneID(c)]; ok {
			fmt.Printf("  %-20s registered   (%s)\n", c, trim(rec))
		} else {
			fmt.Printf("  %-20s not on the service\n", c)
		}
	}
	st := eng.LastStats()
	fmt.Printf("discovery over %d users in %v (table build %v, oblivious scan %v)\n",
		registered, elapsed.Round(time.Millisecond),
		st.Build.Round(time.Millisecond), st.Scan.Round(time.Millisecond))
}

// phoneID hashes a phone number into the object-id space.
func phoneID(phone string) uint64 {
	h := sha256.Sum256([]byte(phone))
	return binary.LittleEndian.Uint64(h[:8]) &^ (uint64(1) << 63)
}

func trim(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}
