// Cluster deployment: subORAMs served behind attested, encrypted TCP
// channels (the paper's architecture, Fig. 1c, on localhost). Each
// "machine" is a listener running the subORAM server loop; the client
// process attests each one before keying its channel, then drives the
// full system through the load balancers.
//
// For a true multi-process deployment, see cmd/snoopy-server and
// cmd/snoopy-client.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"snoopy"
	"snoopy/internal/enclave"
	"snoopy/internal/metrics"
	"snoopy/internal/transport"
)

const (
	subORAMs  = 4
	lbs       = 2
	objects   = 50_000
	blockSize = 160
)

func main() {
	platform := snoopy.NewPlatform()
	measurement := snoopy.Measure("snoopy-suboram-v1")

	// ---- Spin up subORAM "machines" ----
	var subs []snoopy.SubORAM
	for i := 0; i < subORAMs; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer l.Close()
		go transport.ServeSubORAM(l, snoopy.NewLocalSubORAM(blockSize, 2, false),
			platform, enclave.Measurement(measurement))
		sub, err := snoopy.DialSubORAM(l.Addr().String(), platform, measurement)
		if err != nil {
			log.Fatal(err)
		}
		subs = append(subs, sub)
		fmt.Printf("attested subORAM %d at %s\n", i, l.Addr())
	}

	// ---- Assemble the system ----
	st, err := snoopy.OpenWithSubORAMs(snoopy.Config{
		BlockSize:     blockSize,
		LoadBalancers: lbs,
		Epoch:         20 * time.Millisecond,
	}, subs)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	ids := make([]uint64, objects)
	data := make([]byte, objects*blockSize)
	for i := range ids {
		ids[i] = uint64(i)
		copy(data[i*blockSize:], fmt.Sprintf("value-%d", i))
	}
	if err := st.LoadSlices(ids, data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d objects across %d partitions behind %d load balancers\n",
		objects, subORAMs, lbs)

	// ---- Concurrent clients ----
	const clients, opsPerClient = 16, 25
	var lat metrics.Latencies
	th := metrics.NewThroughput()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < opsPerClient; i++ {
				key := uint64(rng.Intn(objects))
				t0 := time.Now()
				var err error
				if rng.Intn(2) == 0 {
					_, _, err = st.Read(key)
				} else {
					_, _, err = st.Write(key, []byte(fmt.Sprintf("w-%d-%d", c, i)))
				}
				if err != nil {
					log.Printf("op: %v", err)
					return
				}
				lat.Add(time.Since(t0))
				th.Done(1)
			}
		}()
	}
	wg.Wait()

	fmt.Printf("completed %d ops: %.0f reqs/s, latency %s\n", th.Ops(), th.PerSecond(), lat.String())
	s := st.Stats()
	fmt.Printf("last epoch: batch %d per subORAM, %d dropped, wall %v\n",
		s.BatchSize, s.Dropped, s.Wall.Round(time.Millisecond))
}
