// Multi-user deployment with the paper's extension features: an
// access-control matrix served by a recursive Snoopy instance (Appendix D)
// over partitions replicated for crash- and rollback-tolerance (§9).
// Three users share a document store; the storage provider can neither see
// which documents anyone touches nor tell permitted from denied requests.
package main

import (
	"fmt"
	"log"
	"time"

	"snoopy"
)

const (
	alice = uint64(1)
	bob   = uint64(2)
	eve   = uint64(3)

	payrollDoc = uint64(100)
	wikiDoc    = uint64(101)
)

func main() {
	// Two partitions, each replicated to tolerate 1 crash + 1 rollback.
	var subs []snoopy.SubORAM
	for i := 0; i < 2; i++ {
		g, err := snoopy.NewReplicatedSubORAM(160, 1, 1, false)
		if err != nil {
			log.Fatal(err)
		}
		subs = append(subs, g)
	}
	st, err := snoopy.OpenWithSubORAMs(snoopy.Config{
		LoadBalancers: 2,
		Epoch:         10 * time.Millisecond,
	}, subs)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	if err := st.Load(map[uint64][]byte{
		payrollDoc: []byte("salaries: CONFIDENTIAL"),
		wikiDoc:    []byte("lunch menu: tacos"),
	}); err != nil {
		log.Fatal(err)
	}

	// Alice administers payroll; Bob can read the wiki and payroll; Eve
	// gets nothing.
	rules := []snoopy.ACLRule{
		{User: alice, Object: payrollDoc, Op: snoopy.OpRead},
		{User: alice, Object: payrollDoc, Op: snoopy.OpWrite},
		{User: bob, Object: payrollDoc, Op: snoopy.OpRead},
		{User: bob, Object: wikiDoc, Op: snoopy.OpRead},
		{User: bob, Object: wikiDoc, Op: snoopy.OpWrite},
	}
	if err := st.EnableACL(rules, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store up: 2 replicated partitions (f=1, r=1), %d ACL rules\n", len(rules))

	show := func(who string, user, doc uint64) {
		v, ok, err := st.ReadAs(user, doc)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			fmt.Printf("  %-5s read doc %d -> DENIED (null response)\n", who, doc)
			return
		}
		fmt.Printf("  %-5s read doc %d -> %q\n", who, doc, trim(v))
	}

	show("alice", alice, payrollDoc)
	show("bob", bob, payrollDoc)
	show("bob", bob, wikiDoc)
	show("eve", eve, payrollDoc) // denied — and the provider can't tell

	// Eve tries to vandalize the wiki; the write is obliviously suppressed.
	if _, ok, err := st.WriteAs(eve, wikiDoc, []byte("pwned")); err != nil {
		log.Fatal(err)
	} else if ok {
		log.Fatal("eve's write should have been denied")
	}
	show("bob", bob, wikiDoc) // unchanged

	// Bob updates the wiki legitimately.
	if _, _, err := st.WriteAs(bob, wikiDoc, []byte("lunch menu: ramen")); err != nil {
		log.Fatal(err)
	}
	show("bob", bob, wikiDoc)
	fmt.Println("every request above flowed through fixed-size oblivious batches;")
	fmt.Println("denied and permitted operations were indistinguishable in execution")
}

func trim(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}
