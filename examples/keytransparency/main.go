// Key transparency over Snoopy (paper §3.2, §8.2 / Fig. 9b): a provider
// stores a Merkle tree of user public keys as Snoopy objects. Looking up
// Bob's key fetches his leaf plus the log₂(n) proof siblings — all through
// the oblivious store, so the provider cannot tell WHOSE key Alice fetched
// — and verifies the inclusion proof against the signed root.
//
// Object layout (matching workload.KTLookup): level 0 holds the n raw leaf
// records at keys [0, n); level l ≥ 1 holds the n/2ˡ subtree hashes at
// keys [offset_l, offset_l + n/2ˡ), offset_l = n + n/2 + … + n/2^(l-1).
// The root itself is "signed" and served directly, not fetched.
package main

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"log"
	"math"
	"time"

	"snoopy"
	"snoopy/internal/workload"
)

const users = 4096 // power of two for a clean tree

func main() {
	// ---- Provider: build the tree and load it into Snoopy ----
	leaves := make([][]byte, users)
	for u := range leaves {
		leaves[u] = userKey(uint64(u))
	}
	objects, root := buildTree(leaves)
	fmt.Printf("transparency log: %d users, %d stored objects, signed root %x…\n",
		users, len(objects), root[:8])

	st, err := snoopy.Open(snoopy.Config{
		BlockSize:     32,
		LoadBalancers: 1,
		SubORAMs:      4,
		Epoch:         10 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	if err := st.Load(objects); err != nil {
		log.Fatal(err)
	}

	// ---- Client: oblivious lookup of Bob's key + inclusion proof ----
	const bob = uint64(1337)
	t0 := time.Now()
	keys := workload.KTLookup(users, bob)
	fmt.Printf("lookup fetches %d objects (log2(%d)+1 = %d accesses, the paper's KT cost)\n",
		len(keys), users, workload.KTAccessesPerLookup(users))

	// Submit all proof fetches; they complete together in one epoch.
	waits := make([]func() ([]byte, bool, error), len(keys))
	for i, k := range keys {
		w, err := st.ReadAsync(k)
		if err != nil {
			log.Fatal(err)
		}
		waits[i] = w
	}
	fetched := make([][]byte, len(keys))
	for i, w := range waits {
		v, ok, err := w()
		if err != nil || !ok {
			log.Fatalf("fetch key %d: %v ok=%v", keys[i], err, ok)
		}
		fetched[i] = v
	}

	// Verify: fetched[0] is Bob's leaf; fetched[1] the level-0 sibling
	// (a raw leaf); fetched[2:] are subtree hashes bottom-up.
	if !bytes.Equal(fetched[0], userKey(bob)) {
		log.Fatal("leaf record mismatch")
	}
	h := hashLeaf(fetched[0])
	for l := 1; l < len(fetched); l++ {
		var sib [32]byte
		if l == 1 {
			sib = hashLeaf(fetched[1]) // level-0 sibling is a raw leaf
		} else {
			copy(sib[:], fetched[l])
		}
		if (bob>>(l-1))&1 == 0 {
			h = hashNode(h, sib)
		} else {
			h = hashNode(sib, h)
		}
	}
	if h != root {
		log.Fatalf("proof verification FAILED: %x != %x", h[:8], root[:8])
	}
	fmt.Printf("inclusion proof verified against the signed root in %v\n",
		time.Since(t0).Round(time.Millisecond))
	fmt.Println("the provider processed fixed-size oblivious batches — it never learned it was Bob")
}

// userKey is user u's (toy) public key record, 32 bytes.
func userKey(u uint64) []byte {
	h := sha256.Sum256([]byte(fmt.Sprintf("pubkey-of-user-%d", u)))
	return h[:]
}

func hashLeaf(b []byte) [32]byte { return sha256.Sum256(append([]byte{0}, b...)) }

func hashNode(l, r [32]byte) [32]byte {
	return sha256.Sum256(append(append([]byte{1}, l[:]...), r[:]...))
}

// buildTree returns the object map (leaves + internal hash levels, root
// excluded) and the root hash.
func buildTree(leaves [][]byte) (map[uint64][]byte, [32]byte) {
	n := len(leaves)
	levels := int(math.Log2(float64(n)))
	objects := make(map[uint64][]byte, 2*n)
	for i, leaf := range leaves {
		objects[uint64(i)] = leaf
	}
	cur := make([][32]byte, n)
	for i := range leaves {
		cur[i] = hashLeaf(leaves[i])
	}
	offset := uint64(n)
	for l := 1; l <= levels; l++ {
		next := make([][32]byte, len(cur)/2)
		for i := range next {
			next[i] = hashNode(cur[2*i], cur[2*i+1])
		}
		if l < levels { // the root is published out of band
			for i := range next {
				objects[offset+uint64(i)] = append([]byte(nil), next[i][:]...)
			}
			offset += uint64(len(next)) // next level starts after this one
		}
		cur = next
	}
	return objects, cur[0]
}
