// Package snoopy is an oblivious, horizontally scalable object store — a
// from-scratch Go reproduction of "Snoopy: Surpassing the Scalability
// Bottleneck of Oblivious Storage" (SOSP 2021).
//
// A Store hides *which* objects clients access from everything outside the
// (modeled) hardware enclaves: requests are collected into epochs,
// deduplicated and padded into equal-sized batches per data partition by
// oblivious load balancers, and each partition (subORAM) answers its batch
// with a single oblivious linear scan. Throughput scales by adding load
// balancers and subORAMs — there is no central point of coordination.
//
// Quick start:
//
//	st, _ := snoopy.Open(snoopy.Config{SubORAMs: 4, Epoch: 5 * time.Millisecond})
//	defer st.Close()
//	st.Load(map[uint64][]byte{1: []byte("hello"), 2: []byte("world")})
//	v, ok, _ := st.Read(1)            // oblivious read
//	prev, _, _ := st.Write(2, []byte("updated"))
//
// See examples/ for complete programs, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for the reproduction of the paper's evaluation.
package snoopy

import (
	"sort"
	"time"

	"snoopy/internal/core"
	"snoopy/internal/enclave"
	"snoopy/internal/planner"
	"snoopy/internal/suboram"
	"snoopy/internal/telemetry"
	"snoopy/internal/transport"
)

// MaxKey is the largest valid object key; larger values are reserved for
// the system's internal dummy request space.
const MaxKey = uint64(1)<<63 - 1

// Config configures a deployment. The zero value gives a single-partition,
// single-load-balancer store with 160-byte objects and manual epochs.
type Config struct {
	// BlockSize is the fixed object value size in bytes (default 160, the
	// paper's object size). Shorter values are zero-padded.
	BlockSize int
	// LoadBalancers (L) and SubORAMs (S) size the deployment.
	LoadBalancers int
	SubORAMs      int
	// Lambda is the security parameter in bits for batch sizing (default
	// 128).
	Lambda int
	// LBLeaves, when > 1, splits every load balancer into a two-level
	// oblivious aggregation tree: that many leaf balancers each sort and
	// locally deduplicate their own clients' requests, and a root merges
	// the per-leaf sorted runs (O(n log n) per merge level instead of a
	// monolithic O(n log² n) re-sort), globally deduplicates, and pads to
	// the same Theorem-3 bound a monolithic balancer would use. The tree
	// shape is public configuration; 0 or 1 keeps the monolithic plane.
	LBLeaves int
	// LBFanIn optionally caps the number of leaf runs merged per root
	// merge node (0 means merge all leaves in one balanced binary merge
	// tree). Must be ≥ LBLeaves when set.
	LBFanIn int
	// Epoch is the batching interval. Zero means epochs run only when
	// Flush is called.
	Epoch time.Duration
	// SubORAMWorkers and SortWorkers bound per-node parallelism.
	SubORAMWorkers int
	SortWorkers    int
	// Sealed keeps partitions in enclave-external authenticated-encrypted
	// memory (the paper's §7 deployment mode).
	Sealed bool
	// Pipeline overlaps epoch stages across epochs (paper §6), raising
	// sustained throughput when load balancers and subORAMs would
	// otherwise idle waiting for each other.
	Pipeline bool
	// PipelineDepth bounds how many epochs may be in flight at once when
	// Pipeline is set: stage A of epoch N+1 may start while stage B of
	// epoch N and stage C of epoch N-1 are still running, up to this many
	// unfinished epochs. Zero picks a default from GOMAXPROCS (clamped to
	// [2,4]). The depth is public deployment configuration — backpressure
	// depends only on it and the epoch schedule, never on request
	// contents. Ignored when Pipeline is false.
	PipelineDepth int
	// DataDir, when non-empty, makes the deployment durable: every
	// partition keeps sealed snapshots and a sealed write-ahead log under
	// this directory (internal/persist), every acknowledged write is on
	// disk before its epoch completes, and Open recovers the store
	// automatically when the directory already holds state — after a crash
	// (kill -9 included) reopen with the same DataDir and skip Load; see
	// Recovered. The host sees only fixed-shape authenticated ciphertext;
	// tampering or rollback of any state file makes Open fail with an
	// integrity error. Only local partitions persist here — remote
	// subORAMs (OpenWithSubORAMs) persist on their own hosts via
	// `snoopy-server -data`.
	DataDir string
	// DiskResident keeps partition contents on disk in sealed fixed-shape
	// segments (internal/segstore) instead of resident memory, so a
	// partition can be far larger than RAM: each batch streams every
	// segment through a small pooled buffer. Requires DataDir and is
	// mutually exclusive with Sealed (the segment store is already
	// enclave-external sealed storage). The I/O schedule is a function of
	// public parameters only.
	DiskResident bool
	// SegmentBytes is the approximate sealed-segment payload size in bytes
	// for DiskResident deployments (rounded down to a whole number of
	// blocks; default 512 blocks' worth). It is a public tuning parameter
	// trading scan-buffer memory against per-segment I/O overhead.
	SegmentBytes int
	// JournalDir, when non-empty, makes the load-balancer root itself
	// fault tolerant: before any epoch's batches are dispatched to
	// partitions, the root seals the epoch's merged batches, reply
	// routing tables, and per-partition delivery tags into a fixed-shape
	// journal under this directory (internal/persist). A standby root
	// that Opens the same JournalDir replays journaled-but-incomplete
	// epochs under the dead root's delivery tags — partition-side replay
	// caches deduplicate re-deliveries — and parks the recovered answers
	// for clients retrying under their original idempotency IDs (see
	// ReadIdem/WriteIdem). The journal also pins the oblivious routing
	// key, so every incarnation routes identically. Journal shape and
	// write timing are functions of public parameters only. See DESIGN.md
	// §14 for the promotion protocol and the exactly-once argument.
	JournalDir string
	// ReplyWindow bounds the root's reply-deduplication window: how many
	// recently answered idempotency IDs the root keeps parked so a client
	// retry of an already-answered request returns the original answer
	// instead of re-executing (default 4096, used when JournalDir is
	// set). Public configuration.
	ReplyWindow int
	// FailoverAfter, together with Failover, enables automatic partition
	// repair: after a partition fails this many consecutive epochs, the
	// store calls Failover in the background to obtain a replacement
	// client and swaps it in, so the next epochs succeed instead of
	// failing that partition's requests forever. Zero disables failover.
	// The threshold is public deployment configuration — repair timing
	// depends only on it and the epoch schedule, never on request
	// contents.
	FailoverAfter int
	// Failover supplies a replacement client for a tripped partition —
	// typically a dialed standby server or a node restored from sealed
	// durable state. At most one attempt per partition is in flight at a
	// time; an error leaves the partition degraded and the attempt is
	// retried on the next failing epoch. NewSupervisor wires a
	// probe-driven detector around this hook.
	Failover FailoverFunc
	// OnFailover, if set, observes each completed failover attempt: took
	// is the outage duration (first failed epoch to successful swap) and
	// err is nil on success.
	OnFailover func(part int, took time.Duration, err error)
	// Telemetry, when non-nil, receives the deployment's counters,
	// histograms, and per-epoch stage spans (see NewTelemetry). Every
	// instrument name, bucket boundary, and recording site is a function
	// of public configuration only, and recording fires once per public
	// event with public payloads — observability adds no side channel
	// beyond what Theorem 3 already makes public. Nil disables telemetry
	// at zero cost.
	Telemetry *Telemetry
}

// FailoverFunc produces a replacement client for failed partition part;
// old is the client being replaced (close it if it holds resources).
type FailoverFunc = core.FailoverFunc

// Store is a running Snoopy deployment.
type Store struct {
	sys *core.System
}

// EpochStats re-exports per-epoch timing (see core.EpochStats).
type EpochStats = core.EpochStats

// SubORAM is the interface remote partitions implement.
type SubORAM = core.SubORAMClient

// Open starts an in-process deployment.
func Open(cfg Config) (*Store, error) {
	sys, err := core.NewLocal(core.Config{
		BlockSize:        cfg.BlockSize,
		NumLoadBalancers: cfg.LoadBalancers,
		NumSubORAMs:      cfg.SubORAMs,
		Lambda:           cfg.Lambda,
		LBLeaves:         cfg.LBLeaves,
		LBFanIn:          cfg.LBFanIn,
		EpochDuration:    cfg.Epoch,
		SubORAMWorkers:   cfg.SubORAMWorkers,
		SortWorkers:      cfg.SortWorkers,
		Sealed:           cfg.Sealed,
		Pipeline:         cfg.Pipeline,
		PipelineDepth:    cfg.PipelineDepth,
		DataDir:          cfg.DataDir,
		DiskResident:     cfg.DiskResident,
		SegmentBytes:     cfg.SegmentBytes,
		JournalDir:       cfg.JournalDir,
		ReplyWindow:      cfg.ReplyWindow,
		FailoverAfter:    cfg.FailoverAfter,
		Failover:         cfg.Failover,
		OnFailover:       cfg.OnFailover,
		Telemetry:        cfg.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	return &Store{sys: sys}, nil
}

// OpenWithSubORAMs starts a deployment over caller-provided partitions —
// typically transport.RemoteSubORAM handles from DialSubORAM.
func OpenWithSubORAMs(cfg Config, subs []SubORAM) (*Store, error) {
	sys, err := core.NewWithSubORAMs(core.Config{
		BlockSize:        cfg.BlockSize,
		NumLoadBalancers: cfg.LoadBalancers,
		Lambda:           cfg.Lambda,
		LBLeaves:         cfg.LBLeaves,
		LBFanIn:          cfg.LBFanIn,
		EpochDuration:    cfg.Epoch,
		SortWorkers:      cfg.SortWorkers,
		Pipeline:         cfg.Pipeline,
		PipelineDepth:    cfg.PipelineDepth,
		JournalDir:       cfg.JournalDir,
		ReplyWindow:      cfg.ReplyWindow,
		FailoverAfter:    cfg.FailoverAfter,
		Failover:         cfg.Failover,
		OnFailover:       cfg.OnFailover,
		Telemetry:        cfg.Telemetry,
	}, subs)
	if err != nil {
		return nil, err
	}
	return &Store{sys: sys}, nil
}

// Load initializes the store's object set (call once, before requests).
// Keys must be ≤ MaxKey. Iteration order does not matter.
func (s *Store) Load(objects map[uint64][]byte) error {
	ids := make([]uint64, 0, len(objects))
	for id := range objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	block := s.sys.BlockSize()
	data := make([]byte, len(ids)*block)
	for i, id := range ids {
		copy(data[i*block:(i+1)*block], objects[id])
	}
	return s.sys.Init(ids, data)
}

// LoadSlices initializes the store from parallel id/value slices, where
// data holds len(ids) fixed-size blocks.
func (s *Store) LoadSlices(ids []uint64, data []byte) error {
	return s.sys.Init(ids, data)
}

// Read returns the value stored under key. ok is false if the key was not
// part of the loaded object set.
func (s *Store) Read(key uint64) (value []byte, ok bool, err error) {
	return s.sys.Read(key)
}

// Write replaces the value under key, returning the value the object had
// at the start of the write's epoch. Writes to unknown keys are no-ops
// with ok == false.
func (s *Store) Write(key uint64, value []byte) (previous []byte, ok bool, err error) {
	return s.sys.Write(key, value)
}

// ReadAsync submits without blocking; the returned function waits.
func (s *Store) ReadAsync(key uint64) (func() ([]byte, bool, error), error) {
	return s.sys.ReadAsync(key)
}

// WriteAsync submits without blocking; the returned function waits.
func (s *Store) WriteAsync(key uint64, value []byte) (func() ([]byte, bool, error), error) {
	return s.sys.WriteAsync(key, value)
}

// ErrRootDown is returned by requests in flight when the load-balancer
// root crashes. With Config.JournalDir set, retry the request with the
// same idempotency ID against the promoted standby (a store Opened on the
// same JournalDir): if the dead root had journaled the epoch, the standby
// replays it and returns the original answer; if not, the request was
// never applied and the retry executes it exactly once.
var ErrRootDown = core.ErrRootDown

// ReadIdem is Read with an idempotency ID for exactly-once retry across
// root failover (requires Config.JournalDir; id must be unique per
// logical request and non-zero — 0 means untracked, at-least-once). A
// retry of an already-answered ID returns the original answer from the
// root's reply window instead of re-executing.
func (s *Store) ReadIdem(id, key uint64) (value []byte, ok bool, err error) {
	return s.sys.ReadIdem(id, key)
}

// WriteIdem is Write with an idempotency ID (see ReadIdem): a retry of an
// already-applied write returns the original previous-value answer
// without applying the write a second time.
func (s *Store) WriteIdem(id, key uint64, value []byte) (previous []byte, ok bool, err error) {
	return s.sys.WriteIdem(id, key, value)
}

// ReadIdemAsync submits without blocking; the returned function waits.
func (s *Store) ReadIdemAsync(id, key uint64) (func() ([]byte, bool, error), error) {
	return s.sys.ReadIdemAsync(id, key)
}

// WriteIdemAsync submits without blocking; the returned function waits.
func (s *Store) WriteIdemAsync(id, key uint64, value []byte) (func() ([]byte, bool, error), error) {
	return s.sys.WriteIdemAsync(id, key, value)
}

// Flush processes one epoch immediately (useful with Epoch == 0).
func (s *Store) Flush() { s.sys.Flush() }

// Stats returns the most recent epoch's timing breakdown.
func (s *Store) Stats() EpochStats { return s.sys.LastEpochStats() }

// TotalDropped returns the cumulative batch-overflow drops (expect 0).
func (s *Store) TotalDropped() uint64 { return s.sys.TotalDropped() }

// HealthStats re-exports per-partition failure counters (see
// core.HealthStats).
type HealthStats = core.HealthStats

// Health returns per-partition failure counters: which partitions are
// currently failing (and for how many consecutive epochs), how often each
// has failed overall, and how many times each has been failed over to a
// replacement (see Config.Failover). A failed partition degrades only its
// own requests; the rest of the store keeps serving. HealthStats.Healthy
// reports whether every partition is serving with no repair in flight.
func (s *Store) Health() HealthStats { return s.sys.Health() }

// Recovered reports whether Open restored partition state from
// Config.DataDir. A recovered store is ready to serve requests without
// Load; calling Load anyway replaces the recovered object set.
func (s *Store) Recovered() bool { return s.sys.Recovered() }

// BlockSize returns the configured object size.
func (s *Store) BlockSize() int { return s.sys.BlockSize() }

// Close stops the deployment; pending requests fail with an error.
func (s *Store) Close() { s.sys.Close() }

// ---- Remote deployment helpers ----

// Platform is the simulated attestation authority shared by a deployment.
type Platform = enclave.Platform

// Measurement identifies an enclave program.
type Measurement = enclave.Measurement

// NewPlatform creates a fresh attestation authority.
func NewPlatform() *Platform { return enclave.NewPlatform() }

// Measure hashes a program identity.
func Measure(program string) Measurement { return enclave.Measure(program) }

// DialSubORAM connects to a remote subORAM over an attested, encrypted
// channel, verifying its measurement. Default failure handling applies:
// per-RPC deadlines and attested reconnect with exponential backoff (see
// DialConfig for tuning).
func DialSubORAM(addr string, p *Platform, want Measurement) (SubORAM, error) {
	return transport.Dial(addr, p, want)
}

// DialConfig tunes a remote subORAM connection's failure handling. Every
// field is public deployment configuration: timeouts and retry schedules
// are functions of these values alone, never of request contents, so
// failure-path timing leaks nothing the epoch schedule does not already
// make public. The zero value gives the defaults (5s dial, 30s RPC, 4
// reconnect attempts with jittered exponential backoff).
type DialConfig struct {
	// DialTimeout bounds TCP connect plus the attested handshake.
	DialTimeout time.Duration
	// RPCTimeout bounds one batch RPC attempt. Zero derives it from Epoch
	// when that is set (20 epochs, floored at 2s), else defaults to 30s.
	RPCTimeout time.Duration
	// InitTimeout bounds one Init attempt (default max(RPCTimeout, 2m)).
	InitTimeout time.Duration
	// Retries is the reconnect budget after a failed RPC: 0 means the
	// default (4), negative disables retries.
	Retries int
	// Epoch, when set, derives RPCTimeout from the deployment's epoch
	// duration if RPCTimeout is zero.
	Epoch time.Duration
	// Telemetry, when non-nil, counts this connection's RPC latency,
	// retries, reconnects, and failures (transport_* instruments). All
	// recording sites fire on connection-level events the network
	// adversary already observes.
	Telemetry *Telemetry
}

// DialSubORAMConfig is DialSubORAM with explicit failure-handling
// configuration.
func DialSubORAMConfig(addr string, p *Platform, want Measurement, cfg DialConfig) (SubORAM, error) {
	opts := transport.Options{
		DialTimeout: cfg.DialTimeout,
		RPCTimeout:  cfg.RPCTimeout,
		InitTimeout: cfg.InitTimeout,
		Telemetry:   cfg.Telemetry,
	}
	if opts.RPCTimeout <= 0 && cfg.Epoch > 0 {
		opts.RPCTimeout = transport.OptionsForEpoch(cfg.Epoch).RPCTimeout
	}
	switch {
	case cfg.Retries < 0:
		opts = opts.WithRetries(0)
	case cfg.Retries > 0:
		opts = opts.WithRetries(cfg.Retries)
	}
	return transport.DialOptions(addr, p, want, opts)
}

// NewLocalSubORAM creates an in-process partition (useful to mix local and
// remote partitions, or to serve one with ServeSubORAM).
func NewLocalSubORAM(blockSize, workers int, sealed bool) *suboram.SubORAM {
	return suboram.New(suboram.Config{BlockSize: blockSize, Workers: workers, Sealed: sealed})
}

// ---- Telemetry (oblivious-safe observability) ----

// Telemetry is a process-wide registry of counters, gauges, fixed-bucket
// histograms, and per-epoch stage spans (internal/telemetry). Its design
// invariant is that observability must not reinstate the side channel the
// store exists to close: every instrument name, label, and bucket boundary
// is fixed at registration from public configuration; every recording site
// fires unconditionally once per public event (an epoch, a batch, a
// connection) with public payloads (epoch number, partition index, padded
// batch size α); and all timing flows through the registry's replaceable
// monotonic clock. Pass one registry to Config.Telemetry and/or
// DialConfig.Telemetry, then expose it with ServeTelemetry.
type Telemetry = telemetry.Registry

// TelemetrySnapshot is a point-in-time copy of a registry's instruments
// and recent epoch spans (see Telemetry.Snapshot).
type TelemetrySnapshot = telemetry.Snapshot

// EpochSpan is one recorded stage span in an epoch trace.
type EpochSpan = telemetry.Span

// NewTelemetry creates an empty telemetry registry with a real monotonic
// clock. A nil *Telemetry is also valid everywhere and records nothing.
func NewTelemetry() *Telemetry { return telemetry.NewRegistry() }

// ServeTelemetry serves the operator surface for a registry on addr:
// GET /metrics (plain-text instrument dump), GET /trace/epochs?n=N (the
// last N stage spans as JSON, canonically ordered), and net/http/pprof
// under /debug/pprof/. It returns the bound address (useful with ":0")
// and a function that shuts the server down.
func ServeTelemetry(addr string, t *Telemetry) (string, func() error, error) {
	return telemetry.Serve(addr, t)
}

// ---- Planner ----

// Plan is a deployment recommendation (see internal/planner).
type Plan = planner.Plan

// PlanDeployment runs the paper's §6 planner: it calibrates component
// costs on this machine, then returns the cheapest (load balancers,
// subORAMs) configuration that sustains minThroughput requests/second
// under the average-latency bound for the given data size.
func PlanDeployment(objects, blockSize int, minThroughput float64, maxLatency time.Duration) (Plan, error) {
	model := planner.Calibrate(blockSize, 128)
	return planner.Optimize(planner.Requirements{
		Objects:       objects,
		BlockSize:     blockSize,
		MinThroughput: minThroughput,
		MaxLatency:    maxLatency,
	}, model, planner.DefaultPrices())
}

// ---- Batched client API ----

// Op is one operation in a batch submitted via Do.
type Op struct {
	Write bool
	Key   uint64
	Value []byte // writes only
	// User is the ACL principal (0 when access control is disabled).
	User uint64
}

// Result is the outcome of one Op: Value is the object's value at the
// start of the epoch (for writes too, per batch semantics); Found reports
// whether the key exists and — with ACL enabled — the op was permitted.
type Result struct {
	Value []byte
	Found bool
	Err   error
}

// Do submits all ops and waits for their epoch(s) to complete, returning
// one Result per op in order. Ops land in the same epoch when submitted
// between flushes, so a Do batch typically completes together.
func (s *Store) Do(ops []Op) []Result {
	waits := make([]func() ([]byte, bool, error), len(ops))
	results := make([]Result, len(ops))
	for i, op := range ops {
		var w func() ([]byte, bool, error)
		var err error
		if op.Write {
			w, err = s.sys.WriteAsAsync(op.User, op.Key, op.Value)
		} else {
			w, err = s.sys.ReadAsAsync(op.User, op.Key)
		}
		if err != nil {
			results[i] = Result{Err: err}
			continue
		}
		waits[i] = w
	}
	for i, w := range waits {
		if w == nil {
			continue
		}
		v, found, err := w()
		results[i] = Result{Value: v, Found: found, Err: err}
	}
	return results
}
