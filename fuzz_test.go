package snoopy_test

// Native fuzz targets for the oblivious primitives and parameter math.
// `go test` runs the seed corpus; `go test -fuzz=FuzzX` explores further.

import (
	"bytes"
	"testing"

	"snoopy/internal/batch"
	"snoopy/internal/crypt"
	"snoopy/internal/obliv"
)

func FuzzCompactMatchesReference(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1, 0})
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{1}, 70))
	f.Fuzz(func(t *testing.T, marksRaw []byte) {
		if len(marksRaw) > 512 {
			marksRaw = marksRaw[:512]
		}
		n := len(marksRaw)
		vals := make(obliv.U64Slice, n)
		marks := make([]uint8, n)
		var want []uint64
		for i := range marksRaw {
			vals[i] = uint64(i) + 7
			marks[i] = marksRaw[i] & 1
			if marks[i] == 1 {
				want = append(want, vals[i])
			}
		}
		got := append(obliv.U64Slice(nil), vals...)
		obliv.Compact(got, marks)
		for i, w := range want {
			if got[i] != w {
				t.Fatalf("slot %d: %d != %d (marks %v)", i, got[i], w, marks)
			}
		}
	})
}

func FuzzSortOrders(f *testing.F) {
	f.Add([]byte{3, 1, 2})
	f.Add([]byte{255, 0, 255, 0, 7})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 512 {
			raw = raw[:512]
		}
		u := make(obliv.U64Slice, len(raw))
		for i, b := range raw {
			u[i] = uint64(b)
		}
		obliv.Sort(u)
		for i := 1; i < len(u); i++ {
			if u[i-1] > u[i] {
				t.Fatalf("unsorted at %d", i)
			}
		}
	})
}

func FuzzBatchSizeBound(f *testing.F) {
	f.Add(uint16(100), uint8(4), uint8(40))
	f.Add(uint16(1), uint8(1), uint8(128))
	f.Fuzz(func(t *testing.T, rRaw uint16, sRaw, lRaw uint8) {
		r := int(rRaw)
		s := int(sRaw%32) + 1
		lambda := int(lRaw%128) + 1
		b := batch.Size(r, s, lambda)
		if b > r || (r > 0 && b <= 0) {
			t.Fatalf("Size(%d,%d,%d) = %d out of range", r, s, lambda, b)
		}
		if b < r {
			limit := 1.0
			for i := 0; i < lambda; i++ {
				limit /= 2
			}
			if bound := batch.OverflowBound(r, s, b); bound > limit*1.0000001 {
				t.Fatalf("Size(%d,%d,%d)=%d violates bound: %g > 2^-%d", r, s, lambda, b, bound, lambda)
			}
		}
	})
}

func FuzzSealerRoundTrip(f *testing.F) {
	f.Add([]byte("plaintext"), []byte("aad"))
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, pt, aad []byte) {
		s, err := crypt.NewSealer(crypt.MustNewKey(), 1)
		if err != nil {
			t.Fatal(err)
		}
		ct := s.Seal(pt, aad)
		got, err := s.Open(ct, aad)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatal("round trip mismatch")
		}
		if len(ct) > 0 {
			ct[len(ct)-1] ^= 1
			if _, err := s.Open(ct, aad); err == nil {
				t.Fatal("tampered ciphertext accepted")
			}
		}
	})
}
