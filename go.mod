module snoopy

go 1.22
