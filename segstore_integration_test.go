package snoopy_test

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"snoopy"
	"snoopy/internal/crypt"
	"snoopy/internal/enclave"
)

// TestDiskResidentServerSurvivesKill9 is the disk-resident counterpart of
// TestServerSurvivesKill9: the real snoopy-server binary with
// -disk-resident keeps the partition in sealed on-disk segments far larger
// than its streaming buffer, is killed with SIGKILL mid-deployment, and
// must recover the last acknowledged write on restart. It then rolls the
// segment data file back to an authentic-but-stale copy — the per-segment
// rollback attack the epoch-stamped slots exist to catch — and verifies the
// server refuses to start.
func TestDiskResidentServerSurvivesKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := t.TempDir()
	out, err := exec.Command("go", "build", "-o", filepath.Join(bin, "snoopy-server"), "./cmd/snoopy-server").CombinedOutput()
	if err != nil {
		t.Fatalf("build snoopy-server: %v\n%s", err, out)
	}
	key := crypt.MustNewKey()
	platformHex := hex.EncodeToString(key[:])
	platform := enclave.NewPlatformFromKey(key)
	measurement := snoopy.Measure("snoopy-suboram-v1")
	dataDir := filepath.Join(t.TempDir(), "part0")

	// 2048-byte segments of 64-byte blocks = 32 blocks per streaming
	// buffer; 512 objects make the partition 16× larger than the buffer.
	startServer := func(addr string) (*exec.Cmd, *bytes.Buffer) {
		var log bytes.Buffer
		srv := exec.Command(filepath.Join(bin, "snoopy-server"),
			"-listen", addr, "-block", "64", "-platform", platformHex,
			"-data", dataDir, "-disk-resident", "-segment-bytes", "2048")
		srv.Stdout = &log
		srv.Stderr = &log
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		return srv, &log
	}
	openStore := func(addr string) *snoopy.Store {
		sub, err := snoopy.DialSubORAM(addr, platform, measurement)
		if err != nil {
			t.Fatalf("dial %s: %v", addr, err)
		}
		st, err := snoopy.OpenWithSubORAMs(snoopy.Config{BlockSize: 64, Epoch: 5 * time.Millisecond}, []snoopy.SubORAM{sub})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	segDataPath := func() string {
		matches, err := filepath.Glob(filepath.Join(dataDir, "segments", "segments-*.dat"))
		if err != nil || len(matches) != 1 {
			t.Fatalf("segment data file: matches=%v err=%v", matches, err)
		}
		return matches[0]
	}

	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	srv, _ := startServer(addr)
	waitListening(t, addr)

	st := openStore(addr)
	objects := map[uint64][]byte{}
	for id := uint64(1); id <= 512; id++ {
		objects[id] = []byte(fmt.Sprintf("object-%d-initial", id))
	}
	if err := st.Load(objects); err != nil {
		t.Fatalf("Load: %v", err)
	}
	// Authentic-but-stale snapshot of the segment slots for the rollback
	// attack at the end.
	staleData, err := os.ReadFile(segDataPath())
	if err != nil {
		t.Fatal(err)
	}
	// The acknowledged write the crash must not lose.
	if _, _, err := st.Write(42, []byte("written-before-crash")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	st.Close()

	// kill -9: no shutdown path runs.
	if err := srv.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	srv.Wait()

	addr2 := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	srv2, log2 := startServer(addr2)
	defer func() { srv2.Process.Kill(); srv2.Wait() }()
	waitListening(t, addr2)

	st2 := openStore(addr2)
	got, ok, err := st2.Read(42)
	if err != nil || !ok {
		t.Fatalf("Read(42) after restart: ok=%v err=%v", ok, err)
	}
	if want := "written-before-crash"; !bytes.HasPrefix(got, []byte(want)) {
		t.Fatalf("Read(42) = %q, want prefix %q", got, want)
	}
	got, ok, err = st2.Read(7)
	if err != nil || !ok || !bytes.HasPrefix(got, []byte("object-7-initial")) {
		t.Fatalf("Read(7) after restart = %q ok=%v err=%v", got, ok, err)
	}
	st2.Close()
	if !bytes.Contains(log2.Bytes(), []byte("recovered disk-resident partition")) {
		t.Fatalf("restarted server did not report disk-resident recovery:\n%s", log2.String())
	}

	// Per-segment rollback: restore the stale (pre-write) segment slots
	// under the current registry and counter. Every slot authenticates
	// under the sealing key, but carries an older epoch than its registry
	// entry demands — recovery must refuse to serve it.
	srv2.Process.Kill()
	srv2.Wait()
	if err := os.WriteFile(segDataPath(), staleData, 0o600); err != nil {
		t.Fatal(err)
	}
	addr3 := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	srv3, log3 := startServer(addr3)
	done := make(chan error, 1)
	go func() { done <- srv3.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("server started on rolled-back segments:\n%s", log3.String())
		}
	case <-time.After(10 * time.Second):
		srv3.Process.Kill()
		t.Fatalf("server did not exit on rolled-back segments:\n%s", log3.String())
	}
	if !bytes.Contains(log3.Bytes(), []byte("unusable")) {
		t.Fatalf("rolled-back-state failure not reported:\n%s", log3.String())
	}
}
