package snoopy_test

import (
	"bytes"
	"net"
	"testing"
	"time"

	"snoopy"
	"snoopy/internal/enclave"
	"snoopy/internal/transport"
)

func TestPublicAPIQuickstart(t *testing.T) {
	st, err := snoopy.Open(snoopy.Config{
		SubORAMs: 3, LoadBalancers: 2, Lambda: 32, Epoch: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Load(map[uint64][]byte{
		1: []byte("hello"),
		2: []byte("world"),
		9: []byte("nine"),
	}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := st.Read(1)
	if err != nil || !ok || !bytes.HasPrefix(v, []byte("hello")) {
		t.Fatalf("read: %q %v %v", v, ok, err)
	}
	prev, ok, err := st.Write(2, []byte("updated"))
	if err != nil || !ok || !bytes.HasPrefix(prev, []byte("world")) {
		t.Fatalf("write: %q %v %v", prev, ok, err)
	}
	v, _, _ = st.Read(2)
	if !bytes.HasPrefix(v, []byte("updated")) {
		t.Fatalf("read-after-write: %q", v)
	}
	if _, ok, _ := st.Read(12345); ok {
		t.Fatal("unknown key reported ok")
	}
	if st.Stats().Epoch == 0 {
		t.Fatal("no epochs ran")
	}
}

func TestPublicAPIHierarchicalLB(t *testing.T) {
	st, err := snoopy.Open(snoopy.Config{
		SubORAMs: 2, LoadBalancers: 1, Lambda: 32, Epoch: 2 * time.Millisecond,
		LBLeaves: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	objects := map[uint64][]byte{}
	for k := uint64(0); k < 32; k++ {
		objects[k] = []byte{byte('a' + k%26)}
	}
	if err := st.Load(objects); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 32; k++ {
		v, ok, err := st.Read(k)
		if err != nil || !ok || v[0] != byte('a'+k%26) {
			t.Fatalf("tree read %d: %q %v %v", k, v, ok, err)
		}
	}
	if _, _, err := st.Write(3, []byte("tree")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := st.Read(3); !bytes.HasPrefix(v, []byte("tree")) {
		t.Fatalf("tree read-after-write: %q", v)
	}

	// A fan-in below the leaf count cannot form a two-level tree.
	if _, err := snoopy.Open(snoopy.Config{
		SubORAMs: 1, Lambda: 32, LBLeaves: 4, LBFanIn: 2,
	}); err == nil {
		t.Fatal("LBFanIn < LBLeaves accepted by Open")
	}
}

func TestPublicAPIManualEpochs(t *testing.T) {
	st, err := snoopy.Open(snoopy.Config{SubORAMs: 2, Lambda: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Load(map[uint64][]byte{7: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	get, err := st.ReadAsync(7)
	if err != nil {
		t.Fatal(err)
	}
	st.Flush()
	v, ok, err := get()
	if err != nil || !ok || v[0] != 'x' {
		t.Fatalf("manual epoch read: %q %v %v", v, ok, err)
	}
}

func TestPublicAPIRemote(t *testing.T) {
	platform := snoopy.NewPlatform()
	m := snoopy.Measure("suboram-v1")
	var subs []snoopy.SubORAM
	for i := 0; i < 2; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go transport.ServeSubORAM(l, snoopy.NewLocalSubORAM(160, 0, false), platform, enclave.Measurement(m))
		sub, err := snoopy.DialSubORAM(l.Addr().String(), platform, m)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	st, err := snoopy.OpenWithSubORAMs(snoopy.Config{
		LoadBalancers: 1, Lambda: 32, Epoch: 2 * time.Millisecond,
	}, subs)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Load(map[uint64][]byte{5: []byte("remote")}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := st.Read(5)
	if err != nil || !ok || !bytes.HasPrefix(v, []byte("remote")) {
		t.Fatalf("remote read: %q %v %v", v, ok, err)
	}
}

func TestPlanDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs calibration")
	}
	// Generous targets so the test passes even when calibration runs under
	// the race detector's ~20x slowdown.
	p, err := snoopy.PlanDeployment(10_000, 160, 50, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if p.LoadBalancers < 1 || p.SubORAMs < 1 || p.CostPerMonth <= 0 {
		t.Fatalf("degenerate plan: %+v", p)
	}
}
