// Package obladi reproduces the architecture of Obladi (Crooks et al.,
// OSDI'18), the paper's primary baseline (§8.1): a *trusted proxy* that
// collects client requests into fixed-size batches (the paper configures
// 500), deduplicates them, and executes them against a Ring ORAM, padding
// with dummy accesses so the server always sees exactly batchSize accesses
// per batch.
//
// The defining property this reproduction preserves is the scalability
// ceiling: all requests funnel through one proxy whose position map and
// batching logic cannot be distributed securely, so adding machines does
// not add throughput (paper Table 8, Fig. 9a).
package obladi

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"snoopy/internal/ringoram"
)

// DefaultBatchSize matches the paper's Obladi configuration (§8.1).
const DefaultBatchSize = 500

// Op is a client operation.
type Op struct {
	Write bool
	Key   uint64
	Value []byte
}

// Resp is the outcome of an Op: the pre-batch value of the key (batch
// semantics identical to Snoopy's).
type Resp struct {
	Value []byte
	Found bool
	Err   error
}

// NetworkModel charges the proxy↔storage-server transfer time that the
// paper's two-machine Obladi deployment pays (the proxy is a separate
// trusted machine fetching ORAM paths over the network). Zero values mean
// no network (co-located, used by unit tests).
type NetworkModel struct {
	// RTTPerBatch is the fixed round-trip cost charged once per batch
	// (Obladi pipelines fetches within a batch).
	RTTPerBatch time.Duration
	// BytesPerSecond is the link bandwidth applied to the server block
	// traffic a batch generates.
	BytesPerSecond float64
}

// Delay returns the modeled transfer time for the given traffic.
func (n NetworkModel) Delay(bytes uint64) time.Duration {
	if n.BytesPerSecond <= 0 {
		return n.RTTPerBatch
	}
	return n.RTTPerBatch + time.Duration(float64(bytes)/n.BytesPerSecond*1e9)
}

// DefaultNetwork models the paper's testbed links: ~1 Gbps with sub-ms
// datacenter RTT.
func DefaultNetwork() NetworkModel {
	return NetworkModel{RTTPerBatch: 500 * time.Microsecond, BytesPerSecond: 125e6}
}

// Config configures the proxy.
type Config struct {
	BlockSize int
	BatchSize int
	// MaxWait bounds how long a partial batch waits before executing
	// (only used by the concurrent frontend).
	MaxWait time.Duration
	Ring    ringoram.Params
	// Network models the proxy↔storage link; zero means co-located.
	Network NetworkModel
}

// Proxy is the trusted batching proxy.
type Proxy struct {
	cfg     Config
	oram    *ringoram.ORAM
	idx     map[uint64]uint32
	rng     *rand.Rand
	netMark uint64 // ServerBytesMoved high-water mark for network charging

	mu      sync.Mutex
	queue   []pendingOp
	closed  bool
	kicker  chan struct{}
	started bool
	wg      sync.WaitGroup
}

type pendingOp struct {
	op Op
	ch chan Resp
}

// New creates a proxy over the given object set.
func New(cfg Config, ids []uint64, data []byte) (*Proxy, error) {
	if cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("obladi: BlockSize must be positive")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.Ring == (ringoram.Params{}) {
		cfg.Ring = ringoram.DefaultParams()
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 10 * time.Millisecond
	}
	if len(data) != len(ids)*cfg.BlockSize {
		return nil, fmt.Errorf("obladi: data length mismatch")
	}
	n := len(ids)
	if n == 0 {
		n = 1
	}
	oram, err := ringoram.New(n, cfg.BlockSize, cfg.Ring)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:    cfg,
		oram:   oram,
		idx:    make(map[uint64]uint32, len(ids)),
		rng:    rand.New(rand.NewSource(rand.Int63())),
		kicker: make(chan struct{}, 1),
	}
	for i, id := range ids {
		if _, dup := p.idx[id]; dup {
			return nil, fmt.Errorf("obladi: duplicate id %d", id)
		}
		p.idx[id] = uint32(i)
		if _, err := oram.Access(true, uint32(i), data[i*cfg.BlockSize:(i+1)*cfg.BlockSize]); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// ExecuteBatch runs one batch synchronously: deduplicate (last write
// wins), execute one ORAM access per distinct key, pad with dummy accesses
// to the configured batch size, and answer every op with the pre-batch
// value of its key.
func (p *Proxy) ExecuteBatch(ops []Op) ([]Resp, error) {
	if len(ops) > p.cfg.BatchSize {
		return nil, fmt.Errorf("obladi: batch of %d exceeds configured size %d", len(ops), p.cfg.BatchSize)
	}
	// Deduplicate: one access per distinct key; last write wins.
	type merged struct {
		write bool
		value []byte
	}
	order := make([]uint64, 0, len(ops))
	byKey := map[uint64]*merged{}
	for _, op := range ops {
		m, ok := byKey[op.Key]
		if !ok {
			m = &merged{}
			byKey[op.Key] = m
			order = append(order, op.Key)
		}
		if op.Write {
			m.write = true
			m.value = op.Value
		}
	}

	// Execute distinct accesses sequentially through the single ORAM.
	pre := map[uint64]Resp{}
	for _, key := range order {
		m := byKey[key]
		dense, ok := p.idx[key]
		if !ok {
			// Absent key: dummy access to keep the batch size fixed.
			if _, err := p.dummyAccess(); err != nil {
				return nil, err
			}
			pre[key] = Resp{Found: false}
			continue
		}
		var v []byte
		var err error
		if m.write {
			v, err = p.oram.Access(true, dense, m.value)
		} else {
			v, err = p.oram.Access(false, dense, nil)
		}
		if err != nil {
			return nil, err
		}
		pre[key] = Resp{Value: v, Found: true}
	}
	// Pad to the fixed batch size with dummy accesses.
	for i := len(order); i < p.cfg.BatchSize; i++ {
		if _, err := p.dummyAccess(); err != nil {
			return nil, err
		}
	}

	out := make([]Resp, len(ops))
	for i, op := range ops {
		out[i] = pre[op.Key]
	}
	// Charge the modeled network time for this batch's server traffic.
	if p.cfg.Network != (NetworkModel{}) {
		moved := p.oram.ServerBytesMoved() - p.netMark
		p.netMark = p.oram.ServerBytesMoved()
		time.Sleep(p.cfg.Network.Delay(moved))
	}
	return out, nil
}

func (p *Proxy) dummyAccess() ([]byte, error) {
	return p.oram.Access(false, uint32(p.rng.Intn(p.oram.NumBlocks())), nil)
}

// Start launches the concurrent frontend: queued operations execute when a
// full batch accumulates or MaxWait elapses.
func (p *Proxy) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return
	}
	p.started = true
	p.wg.Add(1)
	go p.loop()
}

// Close drains and stops the frontend.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	select {
	case p.kicker <- struct{}{}:
	default:
	}
	p.wg.Wait()
}

// Submit enqueues an operation; the returned function blocks for its result.
func (p *Proxy) Submit(op Op) (func() Resp, error) {
	ch := make(chan Resp, 1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("obladi: proxy closed")
	}
	p.queue = append(p.queue, pendingOp{op: op, ch: ch})
	full := len(p.queue) >= p.cfg.BatchSize
	p.mu.Unlock()
	if full {
		select {
		case p.kicker <- struct{}{}:
		default:
		}
	}
	return func() Resp { return <-ch }, nil
}

func (p *Proxy) loop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.MaxWait)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-p.kicker:
		}
		p.mu.Lock()
		closed := p.closed
		var take []pendingOp
		if len(p.queue) > p.cfg.BatchSize {
			take = p.queue[:p.cfg.BatchSize]
			p.queue = p.queue[p.cfg.BatchSize:]
		} else {
			take = p.queue
			p.queue = nil
		}
		p.mu.Unlock()
		if len(take) > 0 {
			ops := make([]Op, len(take))
			for i := range take {
				ops[i] = take[i].op
			}
			resps, err := p.ExecuteBatch(ops)
			for i := range take {
				if err != nil {
					take[i].ch <- Resp{Err: err}
				} else {
					take[i].ch <- resps[i]
				}
			}
		}
		if closed {
			p.mu.Lock()
			empty := len(p.queue) == 0
			p.mu.Unlock()
			if empty {
				return
			}
		}
	}
}

// ServerBytesMoved exposes the underlying ORAM traffic.
func (p *Proxy) ServerBytesMoved() uint64 { return p.oram.ServerBytesMoved() }
