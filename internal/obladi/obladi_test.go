package obladi

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

const testBlock = 16

func newProxy(t *testing.T, n, batch int) *Proxy {
	t.Helper()
	ids := make([]uint64, n)
	data := make([]byte, n*testBlock)
	for i := 0; i < n; i++ {
		ids[i] = uint64(i * 2)
		copy(data[i*testBlock:], []byte(fmt.Sprintf("v%d", i*2)))
	}
	p, err := New(Config{BlockSize: testBlock, BatchSize: batch, MaxWait: time.Millisecond}, ids, data)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExecuteBatchBasics(t *testing.T) {
	p := newProxy(t, 50, 16)
	resps, err := p.ExecuteBatch([]Op{
		{Key: 4},
		{Write: true, Key: 6, Value: []byte("new6")},
		{Key: 9999},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resps[0].Found || !bytes.HasPrefix(resps[0].Value, []byte("v4")) {
		t.Fatalf("read wrong: %+v", resps[0])
	}
	if !resps[1].Found || !bytes.HasPrefix(resps[1].Value, []byte("v6")) {
		t.Fatalf("write should return pre-batch value: %+v", resps[1])
	}
	if resps[2].Found {
		t.Fatal("absent key found")
	}
	// The write persisted.
	resps, _ = p.ExecuteBatch([]Op{{Key: 6}})
	if !bytes.HasPrefix(resps[0].Value, []byte("new6")) {
		t.Fatalf("write lost: %q", resps[0].Value)
	}
}

func TestDedupLastWriteWins(t *testing.T) {
	p := newProxy(t, 20, 16)
	_, err := p.ExecuteBatch([]Op{
		{Write: true, Key: 2, Value: []byte("first")},
		{Key: 2},
		{Write: true, Key: 2, Value: []byte("second")},
	})
	if err != nil {
		t.Fatal(err)
	}
	resps, _ := p.ExecuteBatch([]Op{{Key: 2}})
	if !bytes.HasPrefix(resps[0].Value, []byte("second")) {
		t.Fatalf("last write should win: %q", resps[0].Value)
	}
}

func TestOversizedBatchRejected(t *testing.T) {
	p := newProxy(t, 10, 4)
	ops := make([]Op, 5)
	if _, err := p.ExecuteBatch(ops); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

func TestConcurrentFrontend(t *testing.T) {
	p := newProxy(t, 100, 8)
	p.Start()
	defer p.Close()
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(100))
	errs := make(chan error, 32)
	for c := 0; c < 32; c++ {
		key := uint64(rng.Intn(100) * 2)
		wg.Add(1)
		go func() {
			defer wg.Done()
			wait, err := p.Submit(Op{Key: key})
			if err != nil {
				errs <- err
				return
			}
			r := wait()
			if r.Err != nil {
				errs <- r.Err
				return
			}
			if !r.Found {
				errs <- fmt.Errorf("key %d not found", key)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTrafficGrowsPerBatch(t *testing.T) {
	p := newProxy(t, 64, 32)
	before := p.ServerBytesMoved()
	p.ExecuteBatch([]Op{{Key: 0}})
	// Even a one-op batch pads to 32 accesses.
	delta := p.ServerBytesMoved() - before
	if delta == 0 {
		t.Fatal("no traffic for padded batch")
	}
	before = p.ServerBytesMoved()
	p.ExecuteBatch(nil)
	delta2 := p.ServerBytesMoved() - before
	if delta2 == 0 {
		t.Fatal("empty batch should still pad with dummies")
	}
}
