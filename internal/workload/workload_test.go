package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestUniformInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := Uniform(100)
	for i := 0; i < 1000; i++ {
		if k := u(rng); k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := Zipf(1000, 1.2)
	counts := map[uint64]int{}
	for i := 0; i < 10000; i++ {
		counts[z(rng)]++
	}
	if counts[0] < 1000 {
		t.Fatalf("Zipf head not hot: key 0 hit %d/10000", counts[0])
	}
}

func TestHotspot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := Hotspot(1000, 0.9)
	hot := 0
	for i := 0; i < 10000; i++ {
		if h(rng) == 0 {
			hot++
		}
	}
	if hot < 8500 {
		t.Fatalf("hotspot fraction too low: %d/10000", hot)
	}
}

func TestMixWriteFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	gen := Mix(Uniform(10), 0.3)
	writes := 0
	for i := 0; i < 10000; i++ {
		if gen(rng).Write {
			writes++
		}
	}
	if writes < 2500 || writes > 3500 {
		t.Fatalf("write fraction off: %d/10000", writes)
	}
}

func TestKTAccessesPerLookup(t *testing.T) {
	// Paper §8.2: 5M users ⇒ 24 accesses (log₂(5M)≈22.3 → 23, +1).
	if got := KTAccessesPerLookup(5_000_000); got != 24 {
		t.Fatalf("5M users: got %d accesses, paper says 24", got)
	}
	if got := KTAccessesPerLookup(1); got != 1 {
		t.Fatalf("single user: %d", got)
	}
}

func TestKTLookupShape(t *testing.T) {
	const users = 1024
	keys := KTLookup(users, 37)
	if len(keys) != KTAccessesPerLookup(users) {
		t.Fatalf("lookup fetches %d keys, want %d", len(keys), KTAccessesPerLookup(users))
	}
	if keys[0] != 37 {
		t.Fatalf("first key should be the user's leaf, got %d", keys[0])
	}
	seen := map[uint64]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate key %d in lookup", k)
		}
		seen[k] = true
	}
	// Total key space: 2n-1 tree nodes (approximately; padded to pow2).
	for _, k := range keys {
		if k >= 2*uint64(users) {
			t.Fatalf("key %d beyond tree node space", k)
		}
	}
}

// TestZipfChiSquare checks the hoisted generator still samples the exact
// Zipf(s=1.2, v=1) mass over a small support: Go's rand.Zipf draws k with
// P(k) ∝ (1+k)^(-s) for k ∈ [0, n-1]. A chi-square statistic over n = 16
// bins with 200k samples sits near its df = 15 expectation when the
// distribution is right; 60 would be a p < 10⁻⁶ outlier. The seed is fixed,
// so the statistic is deterministic.
func TestZipfChiSquare(t *testing.T) {
	const (
		n       = 16
		s       = 1.2
		samples = 200_000
	)
	rng := rand.New(rand.NewSource(7))
	z := Zipf(n, s)
	obs := make([]float64, n)
	for i := 0; i < samples; i++ {
		k := z(rng)
		if k >= n {
			t.Fatalf("sample %d out of range [0,%d)", k, n)
		}
		obs[k]++
	}
	var norm float64
	mass := make([]float64, n)
	for k := 0; k < n; k++ {
		mass[k] = math.Pow(float64(1+k), -s)
		norm += mass[k]
	}
	var chi2 float64
	for k := 0; k < n; k++ {
		exp := mass[k] / norm * samples
		d := obs[k] - exp
		chi2 += d * d / exp
	}
	if chi2 > 60 {
		t.Fatalf("chi-square = %.1f over %d bins: empirical distribution does not match Zipf mass", chi2, n)
	}
}

// TestZipfDeterministicPerRNG: hoisting the rand.Zipf construction must not
// change the sample sequence a seeded rng produces (construction consumes
// no draws), and two choosers over equal-seeded rngs must agree.
func TestZipfDeterministicPerRNG(t *testing.T) {
	a := Zipf(1024, 1.1)
	b := Zipf(1024, 1.1)
	ra := rand.New(rand.NewSource(42))
	rb := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		if ka, kb := a(ra), b(rb); ka != kb {
			t.Fatalf("sample %d diverged: %d vs %d", i, ka, kb)
		}
	}
}

// TestZipfConcurrentRNGs: one chooser shared by goroutines with their own
// rngs (the load-generator shape) must be race-free and in-range.
func TestZipfConcurrentRNGs(t *testing.T) {
	z := Zipf(4096, 1.1)
	done := make(chan bool, 4)
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			ok := true
			for i := 0; i < 5000; i++ {
				if z(rng) >= 4096 {
					ok = false
				}
			}
			done <- ok
		}(int64(w))
	}
	for w := 0; w < 4; w++ {
		if !<-done {
			t.Fatal("sample out of range under concurrent rngs")
		}
	}
}

// BenchmarkZipfChooser proves the hoisting fix: "hoisted" is the cached
// generator, "per-sample-construction" is what Zipf used to do — build a
// fresh rand.NewZipf for every draw.
func BenchmarkZipfChooser(b *testing.B) {
	const n, s = 1 << 20, 1.1
	b.Run("hoisted", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		z := Zipf(n, s)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = z(rng)
		}
	})
	b.Run("per-sample-construction", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = rand.NewZipf(rng, s, 1, n-1).Uint64()
		}
	})
}

func totalArrivals(t *testing.T, sched []Burst, seed int64) (int, float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ts := Arrivals(rng, sched)
	var end float64
	for _, b := range sched {
		end += b.Seconds
	}
	return len(ts), end
}

func TestBurstyScheduleMeanAndShape(t *testing.T) {
	sched := BurstySchedule(1000, 8, 1, 0.2, 4)
	n, end := totalArrivals(t, sched, 11)
	if end < 3.99 || end > 4.01 {
		t.Fatalf("schedule covers %.2fs, want 4s", end)
	}
	// Mean offered load must stay ~1000/s: 4000 expected arrivals.
	if n < 3500 || n > 4500 {
		t.Fatalf("bursty arrivals = %d, want ≈4000", n)
	}
	// Peak phases must be ~8× the quiet phases.
	if len(sched) < 2 || sched[0].Rate <= sched[1].Rate*7 {
		t.Fatalf("burst structure missing: %+v", sched[:2])
	}
}

func TestDiurnalScheduleMeanAndShape(t *testing.T) {
	sched := DiurnalSchedule(1000, 4, 4, 8)
	n, end := totalArrivals(t, sched, 12)
	if end < 3.99 || end > 4.01 {
		t.Fatalf("schedule covers %.2fs, want 4s", end)
	}
	if n < 3500 || n > 4500 {
		t.Fatalf("diurnal arrivals = %d, want ≈4000", n)
	}
	min, max := math.Inf(1), 0.0
	for _, b := range sched {
		min = math.Min(min, b.Rate)
		max = math.Max(max, b.Rate)
	}
	if ratio := max / min; ratio < 3 || ratio > 5 {
		t.Fatalf("peak/trough ratio = %.2f, want ≈4", ratio)
	}
}

func TestArrivals(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ts := Arrivals(rng, []Burst{{Rate: 1000, Seconds: 1}, {Rate: 0, Seconds: 1}, {Rate: 100, Seconds: 1}})
	if len(ts) < 900 || len(ts) > 1300 {
		t.Fatalf("arrival count off: %d", len(ts))
	}
	prev := 0.0
	quiet := 0
	for _, x := range ts {
		if x < prev {
			t.Fatal("arrivals not sorted")
		}
		if x > 1 && x < 2 {
			quiet++
		}
		prev = x
	}
	if quiet != 0 {
		t.Fatalf("%d arrivals during quiet burst", quiet)
	}
	if prev > 3 {
		t.Fatalf("arrival after schedule end: %f", prev)
	}
}
