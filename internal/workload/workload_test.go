package workload

import (
	"math/rand"
	"testing"
)

func TestUniformInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := Uniform(100)
	for i := 0; i < 1000; i++ {
		if k := u(rng); k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := Zipf(1000, 1.2)
	counts := map[uint64]int{}
	for i := 0; i < 10000; i++ {
		counts[z(rng)]++
	}
	if counts[0] < 1000 {
		t.Fatalf("Zipf head not hot: key 0 hit %d/10000", counts[0])
	}
}

func TestHotspot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := Hotspot(1000, 0.9)
	hot := 0
	for i := 0; i < 10000; i++ {
		if h(rng) == 0 {
			hot++
		}
	}
	if hot < 8500 {
		t.Fatalf("hotspot fraction too low: %d/10000", hot)
	}
}

func TestMixWriteFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	gen := Mix(Uniform(10), 0.3)
	writes := 0
	for i := 0; i < 10000; i++ {
		if gen(rng).Write {
			writes++
		}
	}
	if writes < 2500 || writes > 3500 {
		t.Fatalf("write fraction off: %d/10000", writes)
	}
}

func TestKTAccessesPerLookup(t *testing.T) {
	// Paper §8.2: 5M users ⇒ 24 accesses (log₂(5M)≈22.3 → 23, +1).
	if got := KTAccessesPerLookup(5_000_000); got != 24 {
		t.Fatalf("5M users: got %d accesses, paper says 24", got)
	}
	if got := KTAccessesPerLookup(1); got != 1 {
		t.Fatalf("single user: %d", got)
	}
}

func TestKTLookupShape(t *testing.T) {
	const users = 1024
	keys := KTLookup(users, 37)
	if len(keys) != KTAccessesPerLookup(users) {
		t.Fatalf("lookup fetches %d keys, want %d", len(keys), KTAccessesPerLookup(users))
	}
	if keys[0] != 37 {
		t.Fatalf("first key should be the user's leaf, got %d", keys[0])
	}
	seen := map[uint64]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate key %d in lookup", k)
		}
		seen[k] = true
	}
	// Total key space: 2n-1 tree nodes (approximately; padded to pow2).
	for _, k := range keys {
		if k >= 2*uint64(users) {
			t.Fatalf("key %d beyond tree node space", k)
		}
	}
}

func TestArrivals(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ts := Arrivals(rng, []Burst{{Rate: 1000, Seconds: 1}, {Rate: 0, Seconds: 1}, {Rate: 100, Seconds: 1}})
	if len(ts) < 900 || len(ts) > 1300 {
		t.Fatalf("arrival count off: %d", len(ts))
	}
	prev := 0.0
	quiet := 0
	for _, x := range ts {
		if x < prev {
			t.Fatal("arrivals not sorted")
		}
		if x > 1 && x < 2 {
			quiet++
		}
		prev = x
	}
	if quiet != 0 {
		t.Fatalf("%d arrivals during quiet burst", quiet)
	}
	if prev > 3 {
		t.Fatalf("arrival after schedule end: %f", prev)
	}
}
