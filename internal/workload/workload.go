// Package workload generates the request patterns used across the
// evaluation: uniform and Zipf-skewed key choice, read/write mixes, the
// key-transparency access pattern of Fig. 9b (log₂ n + 1 dependent lookups
// per logical operation), and bursty arrival schedules. The paper's
// security argument makes performance workload-independent for oblivious
// systems (§8, "the request distribution does not impact their
// performance"); the generators exist to demonstrate exactly that, and to
// drive the plaintext baseline where distribution does matter.
package workload

import (
	"math"
	"math/rand"
	"sync"
)

// KeyChooser picks object keys.
type KeyChooser func(*rand.Rand) uint64

// Uniform chooses keys uniformly from [0, n).
func Uniform(n int) KeyChooser {
	return func(rng *rand.Rand) uint64 { return uint64(rng.Intn(n)) }
}

// Zipf chooses keys Zipf(s, 1)-distributed over [0, n) — the skewed
// workload that deduplication defuses (paper §4.1).
//
// The underlying rand.Zipf generator is constructed once per *rand.Rand and
// cached: construction computes the rejection-inversion constants and
// allocates, and the old per-sample construction paid that setup on every
// draw, dominating the sample cost (see BenchmarkZipfChooser). rand.NewZipf
// consumes no random draws at construction, so the sample sequence for a
// given rng is unchanged.
func Zipf(n int, s float64) KeyChooser {
	var mu sync.Mutex
	cache := make(map[*rand.Rand]*rand.Zipf, 1)
	return func(rng *rand.Rand) uint64 {
		mu.Lock()
		z := cache[rng]
		if z == nil {
			z = rand.NewZipf(rng, s, 1, uint64(n-1))
			cache[rng] = z
		}
		mu.Unlock()
		return z.Uint64()
	}
}

// Hotspot sends fraction p of requests to a single hot key.
func Hotspot(n int, p float64) KeyChooser {
	return func(rng *rand.Rand) uint64 {
		if rng.Float64() < p {
			return 0
		}
		return uint64(rng.Intn(n))
	}
}

// Op is a generated request.
type Op struct {
	Write bool
	Key   uint64
}

// Mix generates ops with the given write fraction over a key chooser.
func Mix(keys KeyChooser, writeFrac float64) func(*rand.Rand) Op {
	return func(rng *rand.Rand) Op {
		return Op{Write: rng.Float64() < writeFrac, Key: keys(rng)}
	}
}

// KTAccessesPerLookup returns the number of ORAM accesses one key
// transparency lookup costs for n users: log₂(n)+1 — Bob's key, the signed
// root (free), and a Merkle inclusion proof of log₂(n) siblings (paper
// §8.2: 24 accesses for 5M users... the paper counts log₂(n)+1 = 24 at
// n = 5M plus the directly-served root).
func KTAccessesPerLookup(users int) int {
	if users <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(users)))) + 1
}

// KTLookup returns the object keys one KT lookup for `user` must fetch
// when the transparency log's Merkle tree is stored as objects: the leaf
// plus the proof siblings level by level. Keys are laid out heap-style:
// level l node i has key offset[l]+i.
func KTLookup(users int, user uint64) []uint64 {
	if users <= 1 {
		return []uint64{0}
	}
	levels := int(math.Ceil(math.Log2(float64(users))))
	keys := make([]uint64, 0, levels+1)
	keys = append(keys, user) // the leaf: Bob's key record
	offset := uint64(0)
	width := uint64(1) << levels
	idx := user
	for l := 0; l < levels; l++ {
		keys = append(keys, offset+(idx^1)) // proof sibling at level l
		offset += width
		width >>= 1
		idx >>= 1
	}
	return keys
}

// Burst describes an arrival schedule: Rate requests/second for Seconds.
type Burst struct {
	Rate    float64
	Seconds float64
}

// Steady returns a one-phase schedule: a constant Poisson process at rate
// requests/second for the given duration.
func Steady(rate, seconds float64) []Burst {
	return []Burst{{Rate: rate, Seconds: seconds}}
}

// BurstySchedule alternates quiet and burst phases while keeping the mean
// offered load at `mean` requests/second: each period spends fraction duty
// at factor× the quiet rate. The open-loop harness uses it for hot-key
// storms and flash-crowd arrival; for an oblivious deployment the epoch
// schedule must stay a function of the (public) arrival counts only.
func BurstySchedule(mean, factor, period, duty, seconds float64) []Burst {
	if factor <= 1 || duty <= 0 || duty >= 1 || period <= 0 || period > seconds {
		return Steady(mean, seconds)
	}
	// mean = base·(1-duty) + base·factor·duty  ⇒  base = mean / (1 + duty·(factor-1)).
	base := mean / (1 + duty*(factor-1))
	peak := base * factor
	var out []Burst
	for off := 0.0; off < seconds; off += period {
		rest := seconds - off
		bl := math.Min(period*duty, rest)
		out = append(out, Burst{Rate: peak, Seconds: bl})
		if rest > bl {
			out = append(out, Burst{Rate: base, Seconds: math.Min(period-bl, rest-bl)})
		}
	}
	return out
}

// DiurnalSchedule modulates the mean rate sinusoidally over one full period
// of `seconds` (a compressed day), quantized into steps constant-rate
// phases, with peak/trough ratio factor. The mean offered load stays
// `mean` requests/second.
func DiurnalSchedule(mean, factor, seconds float64, steps int) []Burst {
	if steps < 2 || factor <= 1 || seconds <= 0 {
		return Steady(mean, seconds)
	}
	// peak = mean·(1+a), trough = mean·(1-a), peak/trough = factor.
	a := (factor - 1) / (factor + 1)
	out := make([]Burst, 0, steps)
	dt := seconds / float64(steps)
	for i := 0; i < steps; i++ {
		mid := (float64(i) + 0.5) / float64(steps)
		r := mean * (1 + a*math.Sin(2*math.Pi*mid))
		if r < 0 {
			r = 0
		}
		out = append(out, Burst{Rate: r, Seconds: dt})
	}
	return out
}

// Arrivals expands a schedule into request timestamps (seconds from 0),
// Poisson-spaced within each burst.
func Arrivals(rng *rand.Rand, schedule []Burst) []float64 {
	var ts []float64
	now := 0.0
	for _, b := range schedule {
		end := now + b.Seconds
		if b.Rate <= 0 {
			now = end
			continue
		}
		for now < end {
			now += rng.ExpFloat64() / b.Rate
			if now < end {
				ts = append(ts, now)
			}
		}
		now = end
	}
	return ts
}
