// Package workload generates the request patterns used across the
// evaluation: uniform and Zipf-skewed key choice, read/write mixes, the
// key-transparency access pattern of Fig. 9b (log₂ n + 1 dependent lookups
// per logical operation), and bursty arrival schedules. The paper's
// security argument makes performance workload-independent for oblivious
// systems (§8, "the request distribution does not impact their
// performance"); the generators exist to demonstrate exactly that, and to
// drive the plaintext baseline where distribution does matter.
package workload

import (
	"math"
	"math/rand"
)

// KeyChooser picks object keys.
type KeyChooser func(*rand.Rand) uint64

// Uniform chooses keys uniformly from [0, n).
func Uniform(n int) KeyChooser {
	return func(rng *rand.Rand) uint64 { return uint64(rng.Intn(n)) }
}

// Zipf chooses keys Zipf(s, 1)-distributed over [0, n) — the skewed
// workload that deduplication defuses (paper §4.1).
func Zipf(n int, s float64) KeyChooser {
	return func(rng *rand.Rand) uint64 {
		z := rand.NewZipf(rng, s, 1, uint64(n-1))
		return z.Uint64()
	}
}

// Hotspot sends fraction p of requests to a single hot key.
func Hotspot(n int, p float64) KeyChooser {
	return func(rng *rand.Rand) uint64 {
		if rng.Float64() < p {
			return 0
		}
		return uint64(rng.Intn(n))
	}
}

// Op is a generated request.
type Op struct {
	Write bool
	Key   uint64
}

// Mix generates ops with the given write fraction over a key chooser.
func Mix(keys KeyChooser, writeFrac float64) func(*rand.Rand) Op {
	return func(rng *rand.Rand) Op {
		return Op{Write: rng.Float64() < writeFrac, Key: keys(rng)}
	}
}

// KTAccessesPerLookup returns the number of ORAM accesses one key
// transparency lookup costs for n users: log₂(n)+1 — Bob's key, the signed
// root (free), and a Merkle inclusion proof of log₂(n) siblings (paper
// §8.2: 24 accesses for 5M users... the paper counts log₂(n)+1 = 24 at
// n = 5M plus the directly-served root).
func KTAccessesPerLookup(users int) int {
	if users <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(users)))) + 1
}

// KTLookup returns the object keys one KT lookup for `user` must fetch
// when the transparency log's Merkle tree is stored as objects: the leaf
// plus the proof siblings level by level. Keys are laid out heap-style:
// level l node i has key offset[l]+i.
func KTLookup(users int, user uint64) []uint64 {
	if users <= 1 {
		return []uint64{0}
	}
	levels := int(math.Ceil(math.Log2(float64(users))))
	keys := make([]uint64, 0, levels+1)
	keys = append(keys, user) // the leaf: Bob's key record
	offset := uint64(0)
	width := uint64(1) << levels
	idx := user
	for l := 0; l < levels; l++ {
		keys = append(keys, offset+(idx^1)) // proof sibling at level l
		offset += width
		width >>= 1
		idx >>= 1
	}
	return keys
}

// Burst describes an arrival schedule: Rate requests/second for Seconds.
type Burst struct {
	Rate    float64
	Seconds float64
}

// Arrivals expands a schedule into request timestamps (seconds from 0),
// Poisson-spaced within each burst.
func Arrivals(rng *rand.Rand, schedule []Burst) []float64 {
	var ts []float64
	now := 0.0
	for _, b := range schedule {
		end := now + b.Seconds
		if b.Rate <= 0 {
			now = end
			continue
		}
		for now < end {
			now += rng.ExpFloat64() / b.Rate
			if now < end {
				ts = append(ts, now)
			}
		}
		now = end
	}
	return ts
}
