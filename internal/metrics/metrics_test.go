package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestLatencies(t *testing.T) {
	var l Latencies
	if l.Mean() != 0 || l.Percentile(50) != 0 || l.Count() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * time.Millisecond)
	}
	if l.Count() != 100 {
		t.Fatal("count wrong")
	}
	if got := l.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
	if got := l.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := l.Max(); got != 100*time.Millisecond {
		t.Fatalf("max = %v", got)
	}
	// Adding after a percentile query must re-sort.
	l.Add(200 * time.Millisecond)
	if got := l.Max(); got != 200*time.Millisecond {
		t.Fatalf("max after add = %v", got)
	}
}

func TestLatenciesConcurrent(t *testing.T) {
	var l Latencies
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Add(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if l.Count() != 8000 {
		t.Fatalf("lost samples: %d", l.Count())
	}
}

func TestThroughput(t *testing.T) {
	th := NewThroughput()
	th.Done(500)
	th.Done(500)
	if th.Ops() != 1000 {
		t.Fatal("ops wrong")
	}
	if th.PerSecond() <= 0 {
		t.Fatal("rate should be positive")
	}
}
