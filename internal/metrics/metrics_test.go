package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestLatencies(t *testing.T) {
	var l Latencies
	if l.Mean() != 0 || l.Percentile(50) != 0 || l.Count() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * time.Millisecond)
	}
	if l.Count() != 100 {
		t.Fatal("count wrong")
	}
	if got := l.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
	if got := l.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := l.Max(); got != 100*time.Millisecond {
		t.Fatalf("max = %v", got)
	}
	// Adding after a percentile query must re-sort.
	l.Add(200 * time.Millisecond)
	if got := l.Max(); got != 200*time.Millisecond {
		t.Fatalf("max after add = %v", got)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	ms := func(d float64) time.Duration { return time.Duration(d * float64(time.Millisecond)) }
	cases := []struct {
		name    string
		samples []time.Duration
		p       float64
		want    time.Duration
	}{
		{"single sample p1", []time.Duration{ms(5)}, 1, ms(5)},
		{"single sample p50", []time.Duration{ms(5)}, 50, ms(5)},
		{"single sample p100", []time.Duration{ms(5)}, 100, ms(5)},
		// Nearest rank over {1,2,3,4}ms: rank = ceil(p/100*4).
		{"four samples p25", []time.Duration{ms(1), ms(2), ms(3), ms(4)}, 25, ms(1)},
		{"four samples p26", []time.Duration{ms(1), ms(2), ms(3), ms(4)}, 26, ms(2)},
		{"four samples p50", []time.Duration{ms(1), ms(2), ms(3), ms(4)}, 50, ms(2)},
		{"four samples p75", []time.Duration{ms(1), ms(2), ms(3), ms(4)}, 75, ms(3)},
		{"four samples p99", []time.Duration{ms(1), ms(2), ms(3), ms(4)}, 99, ms(4)},
		{"four samples p100", []time.Duration{ms(1), ms(2), ms(3), ms(4)}, 100, ms(4)},
		// The old floor-based index under-read high percentiles on small n:
		// p99 of 2 samples must be the larger one.
		{"two samples p99", []time.Duration{ms(1), ms(10)}, 99, ms(10)},
		{"two samples p50", []time.Duration{ms(1), ms(10)}, 50, ms(1)},
		{"unsorted input", []time.Duration{ms(9), ms(1), ms(5)}, 100, ms(9)},
		// Out-of-range p clamps instead of panicking.
		{"p below range", []time.Duration{ms(1), ms(2)}, -5, ms(1)},
		{"p above range", []time.Duration{ms(1), ms(2)}, 250, ms(2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var l Latencies
			for _, s := range tc.samples {
				l.Add(s)
			}
			if got := l.Percentile(tc.p); got != tc.want {
				t.Fatalf("Percentile(%v) of %v = %v, want %v", tc.p, tc.samples, got, tc.want)
			}
		})
	}
}

// TestP999NearestRank: p999 follows the same nearest-rank definition as
// the other percentiles — rank ⌈0.999·n⌉ — so it only separates from Max
// once n ≥ 1000, and at exactly n = 1000 it is the second-largest sample.
func TestP999NearestRank(t *testing.T) {
	var l Latencies
	for i := 1; i <= 1000; i++ {
		l.Add(time.Duration(i) * time.Microsecond)
	}
	if got := l.Percentile(99.9); got != 999*time.Microsecond {
		t.Fatalf("p999 of 1..1000µs = %v, want 999µs", got)
	}
	s := l.Snapshot()
	if s.P999 != 999*time.Microsecond || s.Max != 1000*time.Microsecond {
		t.Fatalf("snapshot p999/max = %v/%v, want 999µs/1ms", s.P999, s.Max)
	}
	// One more sample: rank ⌈0.999·1001⌉ = 1000.
	l.Add(1001 * time.Microsecond)
	if got := l.Percentile(99.9); got != 1000*time.Microsecond {
		t.Fatalf("p999 of 1..1001µs = %v, want 1000µs", got)
	}
}

// TestSnapshotSmallSamples: nearest-rank behavior at n < 10 — every tail
// percentile must be an actually-observed sample, and for tiny n the tail
// collapses onto the maximum rather than extrapolating.
func TestSnapshotSmallSamples(t *testing.T) {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }

	t.Run("single observation", func(t *testing.T) {
		var l Latencies
		l.Add(ms(7))
		s := l.Snapshot()
		want := LatencySnapshot{Count: 1, Mean: ms(7), P50: ms(7), P99: ms(7), P999: ms(7), Max: ms(7)}
		if s != want {
			t.Fatalf("snapshot = %+v, want %+v", s, want)
		}
	})

	t.Run("all equal", func(t *testing.T) {
		var l Latencies
		for i := 0; i < 9; i++ {
			l.Add(ms(3))
		}
		s := l.Snapshot()
		if s.Count != 9 || s.Mean != ms(3) || s.P50 != ms(3) || s.P99 != ms(3) || s.P999 != ms(3) || s.Max != ms(3) {
			t.Fatalf("all-equal snapshot = %+v", s)
		}
	})

	t.Run("n below 10 collapses tail onto max", func(t *testing.T) {
		var l Latencies
		for i := 1; i <= 7; i++ {
			l.Add(ms(i))
		}
		s := l.Snapshot()
		// ⌈0.5·7⌉ = 4 ⇒ p50 is the 4th sample; every tail rank is 7.
		if s.P50 != ms(4) {
			t.Fatalf("p50 = %v, want 4ms", s.P50)
		}
		if s.P99 != ms(7) || s.P999 != ms(7) || s.Max != ms(7) {
			t.Fatalf("tail must collapse onto max at n=7: %+v", s)
		}
	})

	t.Run("percentiles ordered", func(t *testing.T) {
		var l Latencies
		for _, d := range []int{12, 1, 5, 9, 2} {
			l.Add(ms(d))
		}
		s := l.Snapshot()
		if s.P50 > s.P99 || s.P99 > s.P999 || s.P999 > s.Max {
			t.Fatalf("unordered percentiles: %+v", s)
		}
	})
}

func TestLatenciesConcurrent(t *testing.T) {
	var l Latencies
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Add(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if l.Count() != 8000 {
		t.Fatalf("lost samples: %d", l.Count())
	}
}

// TestLatenciesSnapshotConsistency: a Snapshot's fields all describe one
// sample set. The old String path locked once per statistic, so a snapshot
// taken while writers were adding samples could report a count from one set
// and percentiles from another; these invariants then failed.
func TestLatenciesSnapshotConsistency(t *testing.T) {
	var l Latencies
	if (l.Snapshot() != LatencySnapshot{}) {
		t.Fatal("empty snapshot should be zero")
	}
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * time.Millisecond)
	}
	s := l.Snapshot()
	want := LatencySnapshot{
		Count: 100, Mean: 50500 * time.Microsecond,
		P50: 50 * time.Millisecond, P99: 99 * time.Millisecond,
		P999: 100 * time.Millisecond, Max: 100 * time.Millisecond,
	}
	if s != want {
		t.Fatalf("snapshot = %+v, want %+v", s, want)
	}
	if s.String() != l.String() {
		t.Fatalf("String drifted: %q vs %q", s.String(), l.String())
	}
}

// TestLatenciesSnapshotUnderConcurrentAdd is the -race regression test for
// the export path: readers snapshot (and String, which sorts) while writers
// add. Every snapshot must be internally consistent — ordered percentiles,
// mean within the sample range, monotone counts — which only holds when the
// whole summary is computed under one lock.
func TestLatenciesSnapshotUnderConcurrentAdd(t *testing.T) {
	var l Latencies
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 1; i <= 2000; i++ {
				// Values span [1ms, 7ms]; every statistic must stay inside.
				l.Add(time.Duration(1+(w*2000+i)%7) * time.Millisecond)
			}
		}()
	}

	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		prev := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := l.Snapshot()
			_ = l.String()
			if s.Count < prev {
				t.Errorf("count went backwards: %d -> %d", prev, s.Count)
				return
			}
			prev = s.Count
			if s.Count == 0 {
				continue
			}
			if s.P50 > s.P99 || s.P99 > s.Max {
				t.Errorf("unordered percentiles: %+v", s)
				return
			}
			if s.Mean < time.Millisecond || s.Mean > 7*time.Millisecond || s.Max > 7*time.Millisecond {
				t.Errorf("statistics outside sample range: %+v", s)
				return
			}
		}
	}()

	writers.Wait()
	close(stop)
	<-readerDone
	if got := l.Count(); got != 8000 {
		t.Fatalf("lost samples: %d", got)
	}
}

func TestThroughput(t *testing.T) {
	th := NewThroughput()
	th.Done(500)
	th.Done(500)
	if th.Ops() != 1000 {
		t.Fatal("ops wrong")
	}
	if th.PerSecond() <= 0 {
		t.Fatal("rate should be positive")
	}
}

func TestThroughputZeroValue(t *testing.T) {
	var th Throughput
	if th.PerSecond() != 0 {
		t.Fatal("unopened window should report 0 rate")
	}
	if th.Ops() != 0 {
		t.Fatal("unopened window should report 0 ops")
	}
	th.Done(10)
	th.Done(5)
	if th.Ops() != 15 {
		t.Fatalf("ops = %d, want 15", th.Ops())
	}
	if th.PerSecond() <= 0 {
		t.Fatal("rate should be positive once the window opens")
	}
}
