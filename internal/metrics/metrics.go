// Package metrics provides the latency and throughput accumulators the
// benchmark harness reports with (mean / percentile latencies, sustained
// request rates) — the y-axes of the paper's Figs. 9–11.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter, safe for concurrent
// use. The zero value is ready. It backs the failure-handling
// observability counters (detector trips, promotions, resync traffic).
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Latencies accumulates duration samples. Safe for concurrent Add.
type Latencies struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (l *Latencies) Add(d time.Duration) {
	l.mu.Lock()
	l.samples = append(l.samples, d)
	l.sorted = false
	l.mu.Unlock()
}

// Count returns the sample count.
func (l *Latencies) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// Mean returns the average latency.
func (l *Latencies) Mean() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range l.samples {
		sum += s
	}
	return sum / time.Duration(len(l.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100) by the nearest-rank
// definition: the smallest sample such that at least p% of samples are ≤ it,
// i.e. rank ⌈p/100·n⌉. Out-of-range p is clamped.
func (l *Latencies) Percentile(p float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.samples)
	if n == 0 {
		return 0
	}
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
	return l.samples[nearestRank(p, n)-1]
}

// nearestRank returns rank ⌈p/100·n⌉ clamped to [1, n]. The product is
// computed with a tiny downward guard: p/100 is not exactly representable
// for values like 99.9, and without the guard ⌈0.999·1000⌉ evaluates to
// 1000 instead of 999, silently shifting tail percentiles onto the max.
func nearestRank(p float64, n int) int {
	rank := int(math.Ceil(p/100*float64(n) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return rank
}

// Max returns the largest sample.
func (l *Latencies) Max() time.Duration { return l.Percentile(100) }

// LatencySnapshot is a self-consistent summary of a distribution: every
// field is computed from the same sample set, under one lock acquisition.
// Percentiles use the nearest-rank definition, so at small n the tail
// percentiles collapse onto the maximum (P999 == Max for n < 1000, P99 ==
// Max for n < 100) instead of interpolating values that were never observed.
type LatencySnapshot struct {
	Count                     int
	Mean, P50, P99, P999, Max time.Duration
}

// Snapshot summarizes the distribution atomically. Unlike calling Count /
// Mean / Percentile in sequence — each of which locks separately, so
// concurrent Adds land between them and the summary mixes sample sets —
// every field here describes the same instant.
func (l *Latencies) Snapshot() LatencySnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.samples)
	if n == 0 {
		return LatencySnapshot{}
	}
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
	var sum time.Duration
	for _, s := range l.samples {
		sum += s
	}
	rank := func(p float64) time.Duration {
		return l.samples[nearestRank(p, n)-1]
	}
	return LatencySnapshot{
		Count: n,
		Mean:  sum / time.Duration(n),
		P50:   rank(50),
		P99:   rank(99),
		P999:  rank(99.9),
		Max:   l.samples[n-1],
	}
}

// String formats the snapshot.
func (s LatencySnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p999=%v max=%v",
		s.Count, s.Mean, s.P50, s.P99, s.P999, s.Max)
}

// String summarizes the distribution from one consistent snapshot.
func (l *Latencies) String() string { return l.Snapshot().String() }

// Throughput measures completed operations over a wall-clock window. The
// zero value is usable: the window opens at the first Done call.
type Throughput struct {
	mu    sync.Mutex
	start time.Time
	ops   int64
}

// NewThroughput starts a measurement window immediately.
func NewThroughput() *Throughput { return &Throughput{start: time.Now()} }

// Done records n completed operations, opening the window if it has not
// started yet.
func (t *Throughput) Done(n int) {
	t.mu.Lock()
	if t.start.IsZero() {
		t.start = time.Now()
	}
	t.ops += int64(n)
	t.mu.Unlock()
}

// Ops returns the operation count so far.
func (t *Throughput) Ops() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ops
}

// PerSecond returns the sustained rate since the window opened, or 0 if the
// window never opened.
func (t *Throughput) PerSecond() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.start.IsZero() {
		return 0
	}
	el := time.Since(t.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(t.ops) / el
}
