package planner

import (
	"math"
	"time"

	"snoopy/internal/crypt"
	"snoopy/internal/loadbalancer"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
)

// Calibrate measures this machine's actual component costs by running the
// real load balancer and subORAM at a probe size, then fits the analytic
// model's constants to the measurements (paper §8.5: "the planner takes as
// input microbenchmarks"). blockSize is the deployment's object size.
func Calibrate(blockSize, lambda int) CostModel {
	const (
		probeReqs = 2048
		probeSubs = 4
		probeObjs = 1 << 14
	)
	// --- Load balancer probe ---
	lb := loadbalancer.New(loadbalancer.Config{
		BlockSize: blockSize, NumSubORAMs: probeSubs, Lambda: lambda,
	}, crypt.MustNewKey())
	reqs := store.NewRequests(probeReqs, blockSize)
	for i := 0; i < probeReqs; i++ {
		reqs.SetRow(i, store.OpRead, uint64(i), 0, uint64(i), uint64(i), nil)
	}
	t0 := time.Now()
	batches, err := lb.MakeBatches(reqs)
	if err != nil {
		return AnalyticModel(2, 50, lambda) // conservative fallback
	}
	if _, err := lb.MatchResponses(batches.All, reqs); err != nil {
		return AnalyticModel(2, 50, lambda)
	}
	lbWall := time.Since(t0)
	m := float64(probeReqs + batches.PerSub*probeSubs)
	l2 := log2(m)
	sortNs := float64(lbWall.Nanoseconds()) / (2 * m * l2 * l2)

	// --- SubORAM probe ---
	sub := suboram.New(suboram.Config{BlockSize: blockSize})
	ids := make([]uint64, probeObjs)
	for i := range ids {
		ids[i] = uint64(i)
	}
	if err := sub.Init(ids, make([]byte, probeObjs*blockSize)); err != nil {
		return AnalyticModel(sortNs, 50, lambda)
	}
	probeBatch := store.NewRequests(batches.PerSub, blockSize)
	for i := 0; i < probeBatch.Len(); i++ {
		probeBatch.SetRow(i, store.OpRead, uint64(i), 0, uint64(i), uint64(i), nil)
	}
	t0 = time.Now()
	if _, err := sub.BatchAccess(probeBatch); err != nil {
		return AnalyticModel(sortNs, 50, lambda)
	}
	subWall := time.Since(t0)
	// Attribute the build via the sort constant, the rest to the scan.
	mb := 8 * float64(probeBatch.Len())
	l2b := log2(mb)
	buildNs := sortNs * mb * l2b * l2b
	scanNs := (float64(subWall.Nanoseconds()) - buildNs) / float64(probeObjs)
	if scanNs <= 0 {
		scanNs = 1
	}
	return AnalyticModel(sortNs, scanNs, lambda)
}

func log2(x float64) float64 {
	if x < 2 {
		return 1
	}
	return math.Log2(x)
}
