// Package planner implements Snoopy's deployment planner (paper §6): given
// a data size, a minimum throughput, and a maximum average latency, it
// searches configurations (number of load balancers B, number of subORAMs
// S) for the cheapest one that meets the targets, using the paper's three
// relationships:
//
//	(1) T ≥ max( L_LB(X·T/B, S),  B · L_S(f(X·T/B, S), N/S) )
//	(2) L_sys ≤ 5T/2
//	(3) C_sys = B·C_LB + S·C_S
//
// where T is the epoch length, X the offered load, and f the Theorem-3
// batch size. Component latencies L_LB and L_S come from a CostModel —
// either the analytic model calibrated against this implementation's
// microbenchmarks, or caller-supplied measurements.
package planner

import (
	"fmt"
	"math"
	"strings"
	"time"

	"snoopy/internal/batch"
	"snoopy/internal/loadbalancer"
	"snoopy/internal/obliv"
)

// CostModel supplies component processing times.
type CostModel struct {
	// LBTime is the load-balancer time to build batches for r requests
	// across s subORAMs and match their responses.
	LBTime func(r, s int) time.Duration
	// SubTime is the subORAM time to process one batch of the given size
	// against objectsPerSub stored objects.
	SubTime func(batchSize, objectsPerSub int) time.Duration
}

// AnalyticModel builds a CostModel from per-unit constants. The shapes
// mirror the implementation: the load balancer is dominated by an
// O(m log² m) oblivious sort over m = r + α·s records; the subORAM by an
// O(α log² α) table build plus a linear scan of its partition.
func AnalyticModel(sortNsPerItemLog2, scanNsPerObject float64, lambda int) CostModel {
	lb := func(r, s int) time.Duration {
		alpha := batch.Size(r, s, lambda)
		m := float64(r + alpha*s)
		if m < 2 {
			m = 2
		}
		l2 := math.Log2(m)
		// MakeBatches sorts m records; MatchResponses sorts r + α·s again.
		ns := 2 * sortNsPerItemLog2 * m * l2 * l2
		return time.Duration(ns)
	}
	sub := func(batchSize, objectsPerSub int) time.Duration {
		if batchSize < 2 {
			batchSize = 2
		}
		m := 8 * float64(batchSize) // construction works over ~8α rows
		l2 := math.Log2(m)
		build := sortNsPerItemLog2 * m * l2 * l2
		scan := scanNsPerObject * float64(objectsPerSub)
		return time.Duration(build + scan)
	}
	return CostModel{LBTime: lb, SubTime: sub}
}

// Prices is the per-node monthly cost (the paper uses Azure DCsv2-series
// instances; both node types run the same SKU).
type Prices struct {
	LoadBalancer float64
	SubORAM      float64
}

// DefaultPrices approximates the paper's DC4s_v2 pricing.
func DefaultPrices() Prices { return Prices{LoadBalancer: 420, SubORAM: 420} }

// Requirements is the planner input.
type Requirements struct {
	Objects       int
	BlockSize     int
	MinThroughput float64 // requests/second
	MaxLatency    time.Duration
	Lambda        int
	// Search bounds (defaults 8/32).
	MaxLoadBalancers int
	MaxSubORAMs      int
	// MaxLBLeaves bounds the hierarchical-plane dimension: each load
	// balancer may be split into a two-level aggregation tree of up to
	// this many leaf balancers (powers of two are searched). Default 8;
	// 1 restricts the search to monolithic planes.
	MaxLBLeaves int
}

// Plan is a feasible configuration.
type Plan struct {
	LoadBalancers int
	SubORAMs      int
	// LBLeaves is the leaf count of each load balancer's aggregation tree
	// (1 = monolithic plane). With LBLeaves > 1, every plane is LBLeaves
	// leaf nodes feeding one root node: leaves sort their own clients'
	// requests in parallel and the root merges the sorted runs.
	LBLeaves int
	// LBFanIn is the root's merge fan-in (equals LBLeaves for the
	// two-level tree the planner searches).
	LBFanIn      int
	Epoch        time.Duration
	AvgLatency   time.Duration
	Throughput   float64 // sustainable reqs/sec at this epoch
	CostPerMonth float64
}

// planeNodes returns the machine count of one LB plane: the root alone for
// a monolithic plane, root + leaves for a tree.
func planeNodes(leaves int) int {
	if leaves <= 1 {
		return 1
	}
	return leaves + 1
}

// Machines returns the total node count.
func (p Plan) Machines() int { return p.LoadBalancers*planeNodes(p.LBLeaves) + p.SubORAMs }

// TreeShape describes each plane's topology for operator output.
func (p Plan) TreeShape() string {
	if p.LBLeaves <= 1 {
		return "monolithic"
	}
	return fmt.Sprintf("%d leaves → root (fan-in %d)", p.LBLeaves, p.LBFanIn)
}

// Format renders the plan the way snoopy-planner prints it (also pinned by
// the planner's golden-file test).
func (p Plan) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  load balancers: %d\n", p.LoadBalancers)
	fmt.Fprintf(&b, "  lb plane:       %s\n", p.TreeShape())
	fmt.Fprintf(&b, "  subORAMs:       %d\n", p.SubORAMs)
	fmt.Fprintf(&b, "  epoch:          %v\n", p.Epoch.Round(time.Millisecond))
	fmt.Fprintf(&b, "  avg latency:    %v\n", p.AvgLatency.Round(time.Millisecond))
	fmt.Fprintf(&b, "  throughput:     %.0f reqs/s\n", p.Throughput)
	fmt.Fprintf(&b, "  cost:           $%.0f/month (%d machines)\n", p.CostPerMonth, p.Machines())
	return b.String()
}

// lbPlaneTime models one plane's critical-path time at load r. Monolithic
// planes pay the full oblivious sort (the CostModel's LBTime). A tree plane
// pays one leaf's sort over its r/leaves share (leaves run in parallel on
// their own machines) plus the root's merge of the already-sorted runs,
// which replaces the monolithic sort at the exact compare-exchange ratio
// obliv.MergeSortedCost / obliv.SortCost — a pure function of the public
// run-length vector loadbalancer.TreeRunLens.
func lbPlaneTime(m CostModel, r, s, leaves, lambda int) time.Duration {
	if leaves <= 1 {
		return m.LBTime(r, s)
	}
	rf := (r + leaves - 1) / leaves
	rates := make([]int, leaves)
	for f := range rates {
		rates[f] = rf
	}
	runs := loadbalancer.TreeRunLens(rates, s, lambda)
	alpha := batch.Size(r, s, lambda)
	if alpha == 0 {
		alpha = 1
	}
	n := r + alpha*s
	if n < 2 {
		n = 2
	}
	frac := float64(obliv.MergeSortedCost(runs)) / float64(obliv.SortCost(n))
	root := time.Duration(float64(m.LBTime(r, s)) * frac)
	return m.LBTime(rf, s) + root
}

// Optimize returns the cheapest feasible plan (ties: fewer machines, then
// more subORAMs, mirroring the paper's preference for partitioning).
func Optimize(req Requirements, m CostModel, prices Prices) (Plan, error) {
	if req.Lambda <= 0 {
		req.Lambda = 128
	}
	if req.MaxLoadBalancers <= 0 {
		req.MaxLoadBalancers = 8
	}
	if req.MaxSubORAMs <= 0 {
		req.MaxSubORAMs = 32
	}
	if req.MaxLBLeaves <= 0 {
		req.MaxLBLeaves = 8
	}
	if req.MinThroughput <= 0 || req.MaxLatency <= 0 || req.Objects <= 0 {
		return Plan{}, fmt.Errorf("planner: throughput, latency and objects must be positive")
	}
	var best *Plan
	for s := 1; s <= req.MaxSubORAMs; s++ {
		for b := 1; b <= req.MaxLoadBalancers; b++ {
			for leaves := 1; leaves <= req.MaxLBLeaves; leaves *= 2 {
				p, ok := feasible(req, m, b, s, leaves)
				if !ok {
					continue
				}
				p.CostPerMonth = float64(b*planeNodes(leaves))*prices.LoadBalancer + float64(s)*prices.SubORAM
				if best == nil ||
					p.CostPerMonth < best.CostPerMonth ||
					(p.CostPerMonth == best.CostPerMonth && p.Machines() < best.Machines()) ||
					(p.CostPerMonth == best.CostPerMonth && p.Machines() == best.Machines() && p.SubORAMs > best.SubORAMs) ||
					(p.CostPerMonth == best.CostPerMonth && p.Machines() == best.Machines() && p.SubORAMs == best.SubORAMs && p.LBLeaves < best.LBLeaves) {
					pp := p
					best = &pp
				}
			}
		}
	}
	if best == nil {
		return Plan{}, fmt.Errorf("planner: no configuration within %d LBs × %d subORAMs meets %g reqs/s at %v",
			req.MaxLoadBalancers, req.MaxSubORAMs, req.MinThroughput, req.MaxLatency)
	}
	return *best, nil
}

// feasible checks Equations (1)-(2) for a configuration, choosing the
// largest epoch the latency budget allows (larger epochs amortize dummies
// best, paper Fig. 3).
func feasible(req Requirements, m CostModel, b, s, leaves int) (Plan, bool) {
	// Equation (2): T ≤ 2·L_max/5.
	tMax := time.Duration(2 * float64(req.MaxLatency) / 5)
	if tMax <= 0 {
		return Plan{}, false
	}
	objectsPerSub := (req.Objects + s - 1) / s
	// Equation (1) at epoch T: processing must fit within T.
	fits := func(t time.Duration) bool {
		r := int(req.MinThroughput * t.Seconds() / float64(b)) // per-LB epoch load
		alpha := batch.Size(r, s, req.Lambda)
		if alpha == 0 {
			alpha = 1
		}
		lbT := lbPlaneTime(m, r, s, leaves, req.Lambda)
		subT := time.Duration(b) * m.SubTime(alpha, objectsPerSub)
		if lbT > subT {
			return lbT <= t
		}
		return subT <= t
	}
	if !fits(tMax) {
		// Processing time grows sublinearly in T (batch size grows ~T),
		// so if the largest allowed epoch does not fit, none will —
		// except when the per-epoch fixed cost dominates; probe smaller
		// epochs to be sure.
		ok := false
		for _, frac := range []float64{0.5, 0.25, 0.1} {
			t := time.Duration(float64(tMax) * frac)
			if t > 0 && fits(t) {
				tMax = t
				ok = true
				break
			}
		}
		if !ok {
			return Plan{}, false
		}
	}
	r := int(req.MinThroughput * tMax.Seconds() / float64(b))
	return Plan{
		LoadBalancers: b,
		SubORAMs:      s,
		LBLeaves:      leaves,
		LBFanIn:       leaves,
		Epoch:         tMax,
		AvgLatency:    time.Duration(5 * float64(tMax) / 2),
		Throughput:    float64(r*b) / tMax.Seconds(),
	}, true
}

// MaxThroughput inverts the planner: for a fixed configuration and latency
// budget, it returns the highest offered load (reqs/sec) that Equation (1)
// still satisfies — the quantity plotted on the y-axis of Fig. 9a.
func MaxThroughput(req Requirements, m CostModel, b, s int) float64 {
	if req.Lambda <= 0 {
		req.Lambda = 128
	}
	tEpoch := time.Duration(2 * float64(req.MaxLatency) / 5)
	if tEpoch <= 0 {
		return 0
	}
	objectsPerSub := (req.Objects + s - 1) / s
	fits := func(x float64) bool {
		r := int(x * tEpoch.Seconds() / float64(b))
		alpha := batch.Size(r, s, req.Lambda)
		if alpha == 0 {
			alpha = 1
		}
		lbT := m.LBTime(r, s)
		subT := time.Duration(b) * m.SubTime(alpha, objectsPerSub)
		t := lbT
		if subT > t {
			t = subT
		}
		return t <= tEpoch
	}
	if !fits(1) {
		return 0
	}
	lo, hi := 1.0, 1.0
	for fits(hi) && hi < 1e9 {
		hi *= 2
	}
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
