package planner

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedModel is a deterministic cost model for unit tests: LB time linear
// in requests, subORAM time linear in batch plus objects.
func fixedModel() CostModel {
	return CostModel{
		LBTime: func(r, s int) time.Duration {
			return time.Duration(r) * 10 * time.Microsecond
		},
		SubTime: func(batchSize, objectsPerSub int) time.Duration {
			return time.Duration(batchSize)*20*time.Microsecond +
				time.Duration(objectsPerSub)*time.Microsecond
		},
	}
}

func TestOptimizeFindsFeasiblePlan(t *testing.T) {
	p, err := Optimize(Requirements{
		Objects: 100000, BlockSize: 160,
		MinThroughput: 2000, MaxLatency: time.Second, Lambda: 128,
	}, fixedModel(), DefaultPrices())
	if err != nil {
		t.Fatal(err)
	}
	if p.LoadBalancers < 1 || p.SubORAMs < 1 {
		t.Fatalf("degenerate plan: %+v", p)
	}
	if p.AvgLatency > time.Second {
		t.Fatalf("plan violates latency: %+v", p)
	}
	if p.Throughput < 2000*0.99 {
		t.Fatalf("plan below target throughput: %+v", p)
	}
}

func TestOptimizeInfeasible(t *testing.T) {
	_, err := Optimize(Requirements{
		Objects: 10_000_000, BlockSize: 160,
		MinThroughput: 1e12, MaxLatency: time.Millisecond,
		MaxLoadBalancers: 2, MaxSubORAMs: 2,
	}, fixedModel(), DefaultPrices())
	if err == nil {
		t.Fatal("impossible requirements produced a plan")
	}
}

func TestOptimizeInvalidInput(t *testing.T) {
	if _, err := Optimize(Requirements{}, fixedModel(), DefaultPrices()); err == nil {
		t.Fatal("zero requirements accepted")
	}
}

func TestMoreDataNeedsMoreSubORAMs(t *testing.T) {
	// Paper Fig. 14a: larger data sizes shift the optimum toward more
	// subORAMs (the linear scan must be partitioned).
	small, err := Optimize(Requirements{
		Objects: 10_000, BlockSize: 160,
		MinThroughput: 50_000, MaxLatency: time.Second,
	}, fixedModel(), DefaultPrices())
	if err != nil {
		t.Fatal(err)
	}
	large, err := Optimize(Requirements{
		Objects: 1_000_000, BlockSize: 160,
		MinThroughput: 50_000, MaxLatency: time.Second,
	}, fixedModel(), DefaultPrices())
	if err != nil {
		t.Fatal(err)
	}
	if large.SubORAMs <= small.SubORAMs {
		t.Fatalf("1M objects should need more subORAMs than 10K: %d vs %d",
			large.SubORAMs, small.SubORAMs)
	}
	if large.CostPerMonth < small.CostPerMonth {
		t.Fatalf("larger data should not be cheaper: $%.0f vs $%.0f",
			large.CostPerMonth, small.CostPerMonth)
	}
}

func TestHigherThroughputCostsMore(t *testing.T) {
	// Paper Fig. 14b: cost increases with the throughput requirement.
	prev := 0.0
	for _, x := range []float64{5_000, 20_000, 80_000} {
		p, err := Optimize(Requirements{
			Objects: 100_000, BlockSize: 160,
			MinThroughput: x, MaxLatency: time.Second,
		}, fixedModel(), DefaultPrices())
		if err != nil {
			t.Fatalf("throughput %g: %v", x, err)
		}
		if p.CostPerMonth < prev {
			t.Fatalf("cost decreased as throughput rose: $%.0f after $%.0f", p.CostPerMonth, prev)
		}
		prev = p.CostPerMonth
	}
}

func TestMaxThroughputMonotoneInMachines(t *testing.T) {
	req := Requirements{Objects: 200_000, BlockSize: 160, MaxLatency: time.Second, Lambda: 128}
	m := fixedModel()
	prev := 0.0
	for s := 1; s <= 8; s++ {
		x := MaxThroughput(req, m, 1, s)
		if x < prev {
			t.Fatalf("throughput fell when adding subORAM %d: %g after %g", s, x, prev)
		}
		prev = x
	}
	if prev == 0 {
		t.Fatal("no throughput at 8 subORAMs")
	}
}

func TestTreePlaneTimeBeatsMonolithic(t *testing.T) {
	// The hierarchical plane's critical path — one leaf's sort over its
	// share plus the root's merge-of-runs — must undercut the monolithic
	// sort once the plane is split at least four ways (the merge replaces
	// the O(m log² m) re-sort with O(m log m) work at ~half the
	// compare-exchanges).
	m := AnalyticModel(2, 50, 128)
	r, s := 1<<17, 8
	mono := m.LBTime(r, s)
	prev := mono
	for _, leaves := range []int{4, 8} {
		tree := lbPlaneTime(m, r, s, leaves, 128)
		if tree >= mono {
			t.Fatalf("%d-leaf plane time %v not below monolithic %v", leaves, tree, mono)
		}
		_ = prev
	}
	// One leaf is exactly the monolithic plane.
	if got := lbPlaneTime(m, r, s, 1, 128); got != mono {
		t.Fatalf("1-leaf plane time %v != monolithic %v", got, mono)
	}
}

func TestOptimizeTreeExtendsFeasibleRegion(t *testing.T) {
	// Sweep the throughput requirement upward from the monolithic single-LB
	// ceiling: somewhere above it, only a hierarchical plane can keep up,
	// and the planner must find (and report) that tree rather than fail.
	m := AnalyticModel(2, 0.01, 128) // LB-bound: scans are nearly free
	base := Requirements{
		Objects: 100_000, BlockSize: 160,
		MaxLatency:       200 * time.Millisecond,
		MaxLoadBalancers: 1, MaxSubORAMs: 4,
	}
	xMono := MaxThroughput(base, m, 1, 4)
	if xMono <= 0 {
		t.Fatal("monolithic ceiling is zero; test setup broken")
	}
	foundTree := false
	for _, scale := range []float64{1.05, 1.1, 1.2, 1.3, 1.4, 1.5} {
		req := base
		req.MinThroughput = xMono * scale
		mono := req
		mono.MaxLBLeaves = 1
		_, errMono := Optimize(mono, m, DefaultPrices())
		p, errTree := Optimize(req, m, DefaultPrices())
		if errMono == nil {
			continue // monolithic still keeps up at this load
		}
		if errTree != nil {
			continue // beyond what even 8 leaves sustain
		}
		if p.LBLeaves <= 1 {
			t.Fatalf("monolithic infeasible at %.0f reqs/s yet plan claims %s", req.MinThroughput, p.TreeShape())
		}
		if p.LBFanIn != p.LBLeaves {
			t.Fatalf("two-level tree must have fan-in == leaves: %+v", p)
		}
		foundTree = true
	}
	if !foundTree {
		t.Fatal("no throughput in the sweep where the tree extends the feasible region")
	}
}

func TestOptimizeTreeNeverCostsMoreThanMonolithicSearch(t *testing.T) {
	// Adding the tree dimension can only enlarge the search space, so the
	// chosen plan is never more expensive than the monolithic-only search.
	m := fixedModel()
	for _, x := range []float64{5_000, 50_000} {
		req := Requirements{
			Objects: 100_000, BlockSize: 160,
			MinThroughput: x, MaxLatency: time.Second,
		}
		mono := req
		mono.MaxLBLeaves = 1
		pm, err := Optimize(mono, m, DefaultPrices())
		if err != nil {
			t.Fatal(err)
		}
		pt, err := Optimize(req, m, DefaultPrices())
		if err != nil {
			t.Fatal(err)
		}
		if pt.CostPerMonth > pm.CostPerMonth {
			t.Fatalf("tree search worsened cost: $%.0f vs $%.0f", pt.CostPerMonth, pm.CostPerMonth)
		}
	}
}

// TestPlanGolden pins snoopy-planner's exact recommendation output for a few
// deployments under a fixed analytic model (no calibration). Refresh with
// `go test ./internal/planner -run TestPlanGolden -update` after a deliberate
// cost-model change, and review the diff like any other behavioral change.
func TestPlanGolden(t *testing.T) {
	m := AnalyticModel(2, 50, 128)
	cases := []struct {
		name string
		req  Requirements
	}{
		{"small-low-load", Requirements{
			Objects: 100_000, BlockSize: 160,
			MinThroughput: 10_000, MaxLatency: time.Second,
		}},
		{"paper-scale", Requirements{
			Objects: 2_000_000, BlockSize: 160,
			MinThroughput: 100_000, MaxLatency: time.Second,
			MaxLoadBalancers: 10, MaxSubORAMs: 40,
		}},
		{"lb-bound-single-plane", Requirements{
			Objects: 100_000, BlockSize: 160,
			MinThroughput: 800_000, MaxLatency: 200 * time.Millisecond,
			MaxLoadBalancers: 1, MaxSubORAMs: 8,
		}},
		{"lb-bound-monolithic-only", Requirements{
			Objects: 100_000, BlockSize: 160,
			MinThroughput: 800_000, MaxLatency: 200 * time.Millisecond,
			MaxLoadBalancers: 1, MaxSubORAMs: 8, MaxLBLeaves: 1,
		}},
	}
	var buf strings.Builder
	for _, c := range cases {
		fmt.Fprintf(&buf, "%s:\n", c.name)
		p, err := Optimize(c.req, m, DefaultPrices())
		if err != nil {
			fmt.Fprintf(&buf, "  error: %v\n", err)
			continue
		}
		buf.WriteString(p.Format())
	}
	golden := filepath.Join("testdata", "plans.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(buf.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if buf.String() != string(want) {
		t.Fatalf("planner output drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, buf.String(), want)
	}
}

func TestCalibrateProducesUsableModel(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs real components")
	}
	m := Calibrate(160, 128)
	lb := m.LBTime(1000, 4)
	sub := m.SubTime(500, 100_000)
	if lb <= 0 || sub <= 0 {
		t.Fatalf("calibrated model degenerate: lb=%v sub=%v", lb, sub)
	}
	// Sanity: scanning 10× the objects costs more.
	if m.SubTime(500, 1_000_000) <= sub {
		t.Fatal("scan cost not increasing in object count")
	}
}

func TestOptimizeLatency(t *testing.T) {
	m := fixedModel()
	req := Requirements{Objects: 100_000, BlockSize: 160, MinThroughput: 10_000}
	p, err := OptimizeLatency(req, 5000, m, DefaultPrices())
	if err != nil {
		t.Fatal(err)
	}
	if p.CostPerMonth > 5000 {
		t.Fatalf("plan over budget: %+v", p)
	}
	if p.AvgLatency <= 0 || p.Epoch <= 0 {
		t.Fatalf("degenerate latency plan: %+v", p)
	}
	// A bigger budget should never yield worse latency.
	p2, err := OptimizeLatency(req, 10000, m, DefaultPrices())
	if err != nil {
		t.Fatal(err)
	}
	if p2.AvgLatency > p.AvgLatency {
		t.Fatalf("more budget, worse latency: %v vs %v", p2.AvgLatency, p.AvgLatency)
	}
	// Budget below one machine pair is infeasible.
	if _, err := OptimizeLatency(req, 100, m, DefaultPrices()); err == nil {
		t.Fatal("tiny budget accepted")
	}
	if _, err := OptimizeLatency(Requirements{}, 5000, m, DefaultPrices()); err == nil {
		t.Fatal("zero requirements accepted")
	}
}

func TestOptimizeLatencyRespectsThroughput(t *testing.T) {
	m := fixedModel()
	p, err := OptimizeLatency(Requirements{
		Objects: 50_000, BlockSize: 160, MinThroughput: 30_000,
	}, 8400, m, DefaultPrices())
	if err != nil {
		t.Fatal(err)
	}
	// The chosen epoch must actually sustain the load per Eq. (1).
	r := int(30_000 * p.Epoch.Seconds() / float64(p.LoadBalancers))
	lbT := m.LBTime(r, p.SubORAMs)
	if lbT > p.Epoch {
		t.Fatalf("plan epoch %v cannot fit LB time %v", p.Epoch, lbT)
	}
}
