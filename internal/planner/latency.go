package planner

import (
	"fmt"
	"time"

	"snoopy/internal/batch"
)

// OptimizeLatency is the planner variant the paper's §6 proposes as an
// extension: "given a throughput, data size, and cost, output a
// configuration minimizing latency". It searches configurations whose
// monthly cost fits the budget, finds for each the smallest epoch that
// still sustains the required throughput, and returns the one with the
// lowest resulting average latency (5T/2, Eq. 2).
func OptimizeLatency(req Requirements, budget float64, m CostModel, prices Prices) (Plan, error) {
	if req.Lambda <= 0 {
		req.Lambda = 128
	}
	if req.MaxLoadBalancers <= 0 {
		req.MaxLoadBalancers = 8
	}
	if req.MaxSubORAMs <= 0 {
		req.MaxSubORAMs = 32
	}
	if req.MaxLBLeaves <= 0 {
		req.MaxLBLeaves = 8
	}
	if req.MinThroughput <= 0 || req.Objects <= 0 || budget <= 0 {
		return Plan{}, fmt.Errorf("planner: throughput, objects and budget must be positive")
	}
	var best *Plan
	for s := 1; s <= req.MaxSubORAMs; s++ {
		for b := 1; b <= req.MaxLoadBalancers; b++ {
			for leaves := 1; leaves <= req.MaxLBLeaves; leaves *= 2 {
				cost := float64(b*planeNodes(leaves))*prices.LoadBalancer + float64(s)*prices.SubORAM
				if cost > budget {
					continue
				}
				t, ok := minEpoch(req, m, b, s, leaves)
				if !ok {
					continue
				}
				p := Plan{
					LoadBalancers: b,
					SubORAMs:      s,
					LBLeaves:      leaves,
					LBFanIn:       leaves,
					Epoch:         t,
					AvgLatency:    time.Duration(5 * float64(t) / 2),
					Throughput:    req.MinThroughput,
					CostPerMonth:  cost,
				}
				if best == nil || p.AvgLatency < best.AvgLatency ||
					(p.AvgLatency == best.AvgLatency && p.CostPerMonth < best.CostPerMonth) ||
					(p.AvgLatency == best.AvgLatency && p.CostPerMonth == best.CostPerMonth && p.LBLeaves < best.LBLeaves) {
					pp := p
					best = &pp
				}
			}
		}
	}
	if best == nil {
		return Plan{}, fmt.Errorf("planner: no configuration within $%.0f/month sustains %g reqs/s",
			budget, req.MinThroughput)
	}
	return *best, nil
}

// minEpoch binary-searches the smallest epoch T such that the pipeline
// fits (Eq. 1) at the required load. Processing time grows sublinearly in
// T while the budget grows linearly, so feasibility is monotone in T.
func minEpoch(req Requirements, m CostModel, b, s, leaves int) (time.Duration, bool) {
	objectsPerSub := (req.Objects + s - 1) / s
	fits := func(t time.Duration) bool {
		if t <= 0 {
			return false
		}
		r := int(req.MinThroughput * t.Seconds() / float64(b))
		alpha := batchSizeAtLeastOne(r, s, req.Lambda)
		lbT := lbPlaneTime(m, r, s, leaves, req.Lambda)
		subT := time.Duration(b) * m.SubTime(alpha, objectsPerSub)
		t0 := lbT
		if subT > t0 {
			t0 = subT
		}
		return t0 <= t
	}
	// Exponential probe for an upper bound, capped at one hour.
	hi := time.Millisecond
	for !fits(hi) {
		hi *= 2
		if hi > time.Hour {
			return 0, false
		}
	}
	lo := time.Duration(0)
	for i := 0; i < 40 && hi-lo > 10*time.Microsecond; i++ {
		mid := lo + (hi-lo)/2
		if fits(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}

func batchSizeAtLeastOne(r, s, lambda int) int {
	a := batch.Size(r, s, lambda)
	if a < 1 {
		a = 1
	}
	return a
}
