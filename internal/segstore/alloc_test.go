package segstore

import (
	"testing"

	"snoopy/internal/crypt"
)

// TestScanZeroAllocSteadyState: once the buffer pool is warm, a full
// streaming scan — read slot, authenticate, open, visit every block,
// reseal, write back, update the registry entry — performs zero heap
// allocations. Anything else would make scan cost drift with GC pressure
// and turn the disk-resident path into an allocation hotspot at exactly
// the partition sizes it exists for.
func TestScanZeroAllocSteadyState(t *testing.T) {
	s, err := Open(t.TempDir(), Options{
		BlockSize:     32,
		SegmentBlocks: 8,
		Key:           crypt.MustNewKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 256 // 32 segments, far more than one warm-up touches lazily
	if err := s.Format(n); err != nil {
		t.Fatal(err)
	}
	noop := func(i int, blk []byte) {}
	if err := s.Scan(0, n, noop); err != nil { // warm the pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := s.Scan(0, n, noop); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Scan allocated %.1f times per run, want 0", allocs)
	}
}
