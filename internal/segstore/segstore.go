// Package segstore is the disk-resident sealed partition store: it lets one
// subORAM node serve a partition orders of magnitude larger than its memory
// by keeping the blocks on disk in fixed-shape, AEAD-sealed segments and
// streaming the oblivious linear scan over them.
//
// The key observation (the external-memory framing of "Oblivious Storage
// with Low I/O Overhead", PAPERS.md) is that Snoopy's subORAM already pays
// for a full linear pass over the partition per batch — and a sequential
// full-segment read/write pass is *naturally* data-independent. Moving the
// partition to disk therefore costs bandwidth, never obliviousness: every
// scan reads and rewrites every segment in fixed order, whatever the batch
// contains.
//
// On-disk layout of a store directory:
//
//	registry           — one sealed record: geometry (block size, segment
//	                     blocks, block count), the store epoch, the data-file
//	                     generation, the ids-file epoch, and one entry per
//	                     logical segment mapping it to a physical slot and
//	                     recording the epoch it was last sealed at. Written
//	                     atomically (tmp + fsync + rename) at each commit.
//	segments-<gen>.dat — the segment slots. Each logical segment owns two
//	                     physical slots (double buffering): a write at epoch
//	                     e lands in slot parity e%2, so the previous epoch's
//	                     slot stays intact until the registry commits — a
//	                     torn in-place write can never destroy acknowledged
//	                     state. Slots are padded to a DirectIO-friendly
//	                     multiple of 4096 bytes.
//
// Each slot is framed as a public prefix {magic, segment index, epoch}
// followed by nonce||ciphertext||tag over the segment's blocks; the AAD
// binds (store context, segment index, epoch), so a slot moved to another
// segment, replayed from an older epoch, or bit-flipped fails closed with a
// typed error in the enclave.ErrIntegrity class — never a panic, never
// silently wrong data.
//
// Freshness: the registry records the epoch every segment must authenticate
// at. The registry itself is untrusted storage; its freshness is anchored by
// the caller (internal/persist's trusted monotonic counter) comparing the
// registry's store epoch against the counter at open. Within a batch, the
// caller brackets the scan with BeginEpoch/Commit; a crash between them
// leaves the previous epoch's slots and registry intact, and the write-ahead
// log (persist) rolls the batch forward.
//
// Obliviousness of the store's own I/O: every operation the host disk
// observes is a full-slot read or write whose (offset, length) is a function
// of public parameters only — partition size, segment geometry, and the
// (public) epoch number. internal/trace records the stream and the trace
// tests assert it is bit-identical across secret-differing workloads.
package segstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"snoopy/internal/crypt"
	"snoopy/internal/enclave"
	"snoopy/internal/telemetry"
	"snoopy/internal/trace"
)

// ErrIntegrity is the class of every segstore integrity failure; it wraps
// enclave.ErrIntegrity so errors.Is(err, enclave.ErrIntegrity) holds for any
// corrupt, truncated, or replayed on-disk state.
var ErrIntegrity = fmt.Errorf("segstore: %w", enclave.ErrIntegrity)

// ErrSegmentRollback is returned when a segment slot authenticates as an
// older epoch than the registry requires — the host replayed stale sealed
// state. It is in the ErrIntegrity class.
var ErrSegmentRollback = fmt.Errorf("%w: segment rolled back to a stale epoch", ErrIntegrity)

// ErrRegistryRollback is returned by the caller-driven freshness check
// (RequireEpoch) when the whole registry is older than the trusted counter
// allows. It is in the ErrIntegrity class.
var ErrRegistryRollback = fmt.Errorf("%w: registry rolled back behind the trusted epoch", ErrIntegrity)

// errCorrupt wraps a decode/authentication failure into the ErrIntegrity
// class.
func errCorrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrIntegrity, fmt.Sprintf(format, args...))
}

// slotAlign is the physical slot granularity: slots are padded to a multiple
// of this so segment I/O stays friendly to DirectIO and the device's native
// block size. Public.
const slotAlign = 4096

// slotMagic marks a sealed segment slot's public prefix.
const slotMagic = uint32(0x5347_4d54) // "SGMT"

// slotPrefixLen is the public slot prefix: magic u32 | segment u32 |
// epoch u64. It is stored in the clear (the reader needs the epoch to check
// for rollback before paying for decryption) and bound through the AAD.
const slotPrefixLen = 4 + 4 + 8

// segContext is the AAD context for segment slots.
const segContext = "snoopy-segstore/segment/v1"

// Options configures a Store. BlockSize and SegmentBlocks are public
// parameters; every I/O shape is a function of them and the partition size.
type Options struct {
	// BlockSize is the object value size in bytes.
	BlockSize int
	// SegmentBlocks is the number of blocks per segment (default 512). It
	// sets the streaming-scan buffer size — the only partition-proportional
	// memory a scan needs is ONE segment's plaintext and ciphertext — and
	// the write-back granularity.
	SegmentBlocks int
	// Key is the sealing key (shared with the enclosing persistence
	// directory). Required: segstore never invents keys, so a recovered
	// store opens under the same key that sealed it.
	Key crypt.Key
	// Rec, when non-nil, records the host-visible segment I/O trace
	// (offset, length of every slot read/write). Test-only; requires
	// single-threaded scans.
	Rec *trace.Recorder
	// Telemetry, when non-nil, records segment read/write bytes and
	// per-scan stage spans. Payloads are public (segment counts, byte
	// counts derived from geometry); nil disables recording.
	Telemetry *telemetry.Registry
}

func (o *Options) fillDefaults() {
	if o.BlockSize <= 0 {
		o.BlockSize = 160
	}
	if o.SegmentBlocks <= 0 {
		o.SegmentBlocks = 512
	}
}

// scanBuf is one scan worker's reusable buffer pair: the sealed slot image
// and its decrypted plaintext. Pairs live on a free list so steady-state
// scans allocate nothing.
type scanBuf struct {
	sealed []byte // slotBytes
	plain  []byte // segmentBlocks*blockSize
	aad    []byte // segContext || segment u32 || epoch u64
}

// Store is a disk-resident sealed partition store.
type Store struct {
	dir    string
	opts   Options
	sealer *crypt.RandomSealer

	mu  sync.Mutex // guards registry state, formatting, and commit
	reg registry
	f   *os.File // segments-<gen>.dat (nil until formatted)

	// writeEpoch is the epoch subsequent scan write-backs seal at
	// (BeginEpoch). Guarded by mu; read by scan workers only between
	// BeginEpoch and Commit, which the caller serializes with scans.
	writeEpoch uint64

	// Scan buffer free list. bufMu (not mu) guards it because concurrent
	// scan workers take/return buffers while the store is mid-scan.
	bufMu sync.Mutex
	bufs  []*scanBuf

	// Commit scratch, reused across commits (guarded by mu).
	regPlain  []byte
	regSealed []byte

	// Telemetry instruments, resolved once at construction; all nil (and
	// no-ops) when Options.Telemetry is nil.
	telSegReads   *telemetry.Counter
	telSegWrites  *telemetry.Counter
	telReadBytes  *telemetry.Counter
	telWriteBytes *telemetry.Counter
	telScans      *telemetry.Counter
	telScanSeg    *telemetry.Histogram
	stScan        *telemetry.SpanStage
}

// Open opens (or creates) a store directory. If the directory already holds
// a registry, the store comes back formatted with its persisted geometry —
// Options.BlockSize/SegmentBlocks must then match. A fresh directory yields
// an unformatted store; call Format before use.
func Open(dir string, opts Options) (*Store, error) {
	opts.fillDefaults()
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	sealer, err := crypt.NewRandomSealer(opts.Key)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:    dir,
		opts:   opts,
		sealer: sealer,

		telSegReads:   opts.Telemetry.Counter("segstore_segment_reads_total"),
		telSegWrites:  opts.Telemetry.Counter("segstore_segment_writes_total"),
		telReadBytes:  opts.Telemetry.Counter("segstore_read_bytes_total"),
		telWriteBytes: opts.Telemetry.Counter("segstore_write_bytes_total"),
		telScans:      opts.Telemetry.Counter("segstore_scans_total"),
		telScanSeg:    opts.Telemetry.Histogram("segstore_segment_rw", nil),
		stScan:        opts.Telemetry.Stage("segstore_scan"),
	}
	reg, err := s.readRegistry()
	switch {
	case err == nil:
		if int(reg.blockSize) != opts.BlockSize {
			return nil, fmt.Errorf("segstore: store sealed with block size %d, configured %d", reg.blockSize, opts.BlockSize)
		}
		if int(reg.segmentBlocks) != opts.SegmentBlocks {
			return nil, fmt.Errorf("segstore: store sealed with %d blocks/segment, configured %d", reg.segmentBlocks, opts.SegmentBlocks)
		}
		s.reg = reg
		s.writeEpoch = reg.storeEpoch
		if err := s.openData(reg.gen); err != nil {
			return nil, err
		}
	case errors.Is(err, os.ErrNotExist):
		// Unformatted: legitimate only for a store that never completed a
		// Format. A data file without a registry is a torn create; remove it
		// so Format starts clean.
	default:
		return nil, err
	}
	return s, nil
}

// Formatted reports whether the store has geometry (a registry on disk).
func (s *Store) Formatted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f != nil
}

// Format sizes a fresh (or re-sizes an existing) store for n blocks, writing
// zeroed sealed segments at the current write epoch (BeginEpoch) and
// committing the registry. An existing store is replaced under a new
// data-file generation, so a crash mid-Format leaves the previous generation
// fully intact.
func (s *Store) Format(n int) error {
	if n < 0 {
		return fmt.Errorf("segstore: negative block count %d", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	epoch := s.writeEpoch
	gen := uint64(1)
	oldGen := uint64(0)
	if s.f != nil {
		oldGen = s.reg.gen
		gen = s.reg.gen + 1
	}
	segs := (n + s.opts.SegmentBlocks - 1) / s.opts.SegmentBlocks
	reg := registry{
		blockSize:     uint32(s.opts.BlockSize),
		segmentBlocks: uint32(s.opts.SegmentBlocks),
		numBlocks:     uint64(n),
		storeEpoch:    epoch,
		idsEpoch:      epoch,
		gen:           gen,
		entries:       make([]segEntry, segs),
	}
	f, err := os.OpenFile(s.dataPath(gen), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	// Seal every segment zeroed at the format epoch. Parity slots for the
	// format epoch are written; the sibling slots stay zero until first use.
	buf := s.newScanBuf(reg)
	zero := buf.plain
	clear(zero)
	for seg := 0; seg < segs; seg++ {
		reg.entries[seg] = segEntry{phys: physSlot(seg, epoch), epoch: epoch}
		if err := s.writeSlot(f, reg, seg, epoch, zero, buf); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	old := s.f
	s.f = f
	s.reg = reg
	s.writeEpoch = epoch
	if err := s.commitRegistryLocked(); err != nil {
		return err
	}
	if old != nil {
		old.Close()
		os.Remove(s.dataPath(oldGen))
	}
	// Geometry changed: drop stale-sized scan buffers.
	s.bufMu.Lock()
	s.bufs = nil
	s.bufMu.Unlock()
	return nil
}

func (s *Store) dataPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("segments-%d.dat", gen))
}

func (s *Store) openData(gen uint64) error {
	f, err := os.OpenFile(s.dataPath(gen), os.O_RDWR, 0o600)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return errCorrupt("registry names data file generation %d, which is missing", gen)
		}
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if want := int64(len(s.reg.entries)) * 2 * int64(s.slotBytesFor(s.reg)); st.Size() < want {
		f.Close()
		return errCorrupt("data file truncated: %d bytes, want at least %d", st.Size(), want)
	}
	s.f = f
	return nil
}

// ---- Geometry (all public) ----

// NumBlocks returns the partition size in blocks (0 when unformatted).
func (s *Store) NumBlocks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.reg.numBlocks)
}

// BlockSize returns the object value size in bytes.
func (s *Store) BlockSize() int { return s.opts.BlockSize }

// NumSegments returns the number of logical segments.
func (s *Store) NumSegments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.reg.entries)
}

// SegmentBlocks returns the blocks-per-segment geometry — the scan
// alignment and the streaming buffer size in blocks.
func (s *Store) SegmentBlocks() int { return s.opts.SegmentBlocks }

// ScanAlign returns the block alignment scans must honor: worker ranges
// split on segment boundaries so each segment is streamed exactly once.
func (s *Store) ScanAlign() int { return s.opts.SegmentBlocks }

// Epoch returns the committed store epoch.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reg.storeEpoch
}

// IDsEpoch returns the epoch the sealed ids image was last rewritten at —
// the freshness anchor the persistence layer binds into the ids file's AAD.
func (s *Store) IDsEpoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reg.idsEpoch
}

// SetIDsEpoch records a fresh ids image epoch; committed with the registry.
func (s *Store) SetIDsEpoch(e uint64) {
	s.mu.Lock()
	s.reg.idsEpoch = e
	s.mu.Unlock()
}

// RequireEpoch anchors the registry's freshness to the caller's trusted
// epoch: the committed store epoch must be at least min (the trusted
// counter) — anything older is replayed stale state — and no more than max
// (counter+1, the single batch that can be in flight across a crash).
func (s *Store) RequireEpoch(min, max uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reg.storeEpoch < min {
		return fmt.Errorf("%w (registry at epoch %d, trusted counter at %d)", ErrRegistryRollback, s.reg.storeEpoch, min)
	}
	if s.reg.storeEpoch > max {
		return errCorrupt("registry at epoch %d, beyond the trusted bound %d", s.reg.storeEpoch, max)
	}
	return nil
}

// ---- Slot geometry ----

// physSlot maps (logical segment, epoch) to the physical slot index: each
// segment owns slots 2*seg and 2*seg+1, alternating by epoch parity so the
// previous epoch's image survives until the next commit.
func physSlot(seg int, epoch uint64) uint64 {
	return uint64(2*seg) + (epoch & 1)
}

// slotBytesFor returns the fixed physical slot size for a registry's
// geometry: public prefix + sealed payload, rounded up to slotAlign.
func (s *Store) slotBytesFor(reg registry) int {
	raw := slotPrefixLen + int(reg.segmentBlocks)*int(reg.blockSize) + crypt.Overhead
	return (raw + slotAlign - 1) / slotAlign * slotAlign
}

// segPlainBytes is one segment's plaintext size.
func (s *Store) segPlainBytes(reg registry) int {
	return int(reg.segmentBlocks) * int(reg.blockSize)
}

func (s *Store) newScanBuf(reg registry) *scanBuf {
	return &scanBuf{
		sealed: make([]byte, s.slotBytesFor(reg)),
		plain:  make([]byte, s.segPlainBytes(reg)),
		aad:    make([]byte, len(segContext)+12),
	}
}

// takeScanBuf pops a buffer pair off the free list, growing it as needed.
func (s *Store) takeScanBuf() *scanBuf {
	s.bufMu.Lock()
	if n := len(s.bufs); n > 0 {
		b := s.bufs[n-1]
		s.bufs[n-1] = nil
		s.bufs = s.bufs[:n-1]
		s.bufMu.Unlock()
		return b
	}
	s.bufMu.Unlock()
	s.mu.Lock()
	reg := s.reg
	s.mu.Unlock()
	return s.newScanBuf(reg)
}

func (s *Store) returnScanBuf(b *scanBuf) {
	s.bufMu.Lock()
	s.bufs = append(s.bufs, b)
	s.bufMu.Unlock()
}

// slotAAD fills b.aad with segContext || segment u32 || epoch u64.
func slotAAD(b *scanBuf, seg int, epoch uint64) []byte {
	n := copy(b.aad, segContext)
	binary.LittleEndian.PutUint32(b.aad[n:n+4], uint32(seg))
	binary.LittleEndian.PutUint64(b.aad[n+4:n+12], epoch)
	return b.aad[:n+12]
}

// readSlot reads and opens segment seg at the given epoch into b.plain.
// The slot's public prefix is checked before decryption: a prefix carrying
// an older epoch is reported as ErrSegmentRollback, everything else that
// fails authentication as corruption. Callers hold no lock; the data file
// supports concurrent ReadAt.
func (s *Store) readSlot(f *os.File, reg registry, seg int, epoch uint64, b *scanBuf) error {
	slotBytes := len(b.sealed)
	off := int64(physSlot(seg, epoch)) * int64(slotBytes)
	if _, err := f.ReadAt(b.sealed, off); err != nil {
		return errCorrupt("segment %d slot read at %d: %v", seg, off, err)
	}
	s.opts.Rec.Record(trace.KindSegRead, int(off), slotBytes)
	s.telSegReads.Inc()
	s.telReadBytes.Add(uint64(slotBytes))
	if got := binary.LittleEndian.Uint32(b.sealed[0:4]); got != slotMagic {
		return errCorrupt("segment %d slot has bad magic %#x", seg, got)
	}
	if got := binary.LittleEndian.Uint32(b.sealed[4:8]); got != uint32(seg) {
		return errCorrupt("segment %d slot carries segment index %d", seg, got)
	}
	gotEpoch := binary.LittleEndian.Uint64(b.sealed[8:16])
	if gotEpoch != epoch {
		if gotEpoch < epoch {
			return fmt.Errorf("%w (segment %d at epoch %d, registry requires %d)", ErrSegmentRollback, seg, gotEpoch, epoch)
		}
		return errCorrupt("segment %d slot from future epoch %d (registry at %d)", seg, gotEpoch, epoch)
	}
	ct := b.sealed[slotPrefixLen : slotPrefixLen+s.segPlainBytes(reg)+crypt.Overhead]
	pt, err := s.sealer.OpenAppend(b.plain[:0], ct, slotAAD(b, seg, epoch))
	if err != nil {
		return errCorrupt("segment %d authentication failed at epoch %d", seg, epoch)
	}
	_ = pt // decrypted in place into b.plain
	return nil
}

// writeSlot seals b.plain (or the provided plaintext) as segment seg at the
// given epoch and writes the full slot. The caller fsyncs (Commit) before
// the epoch is acknowledged.
func (s *Store) writeSlot(f *os.File, reg registry, seg int, epoch uint64, plain []byte, b *scanBuf) error {
	slotBytes := len(b.sealed)
	binary.LittleEndian.PutUint32(b.sealed[0:4], slotMagic)
	binary.LittleEndian.PutUint32(b.sealed[4:8], uint32(seg))
	binary.LittleEndian.PutUint64(b.sealed[8:16], epoch)
	ct := s.sealer.SealAppend(b.sealed[slotPrefixLen:slotPrefixLen], plain, slotAAD(b, seg, epoch))
	// Zero the alignment tail so slot contents are a pure function of the
	// sealed payload.
	clear(b.sealed[slotPrefixLen+len(ct):])
	off := int64(physSlot(seg, epoch)) * int64(slotBytes)
	if _, err := f.WriteAt(b.sealed, off); err != nil {
		return err
	}
	s.opts.Rec.Record(trace.KindSegWrite, int(off), slotBytes)
	s.telSegWrites.Inc()
	s.telWriteBytes.Add(uint64(slotBytes))
	return nil
}

// ---- Epoch bracket ----

// BeginEpoch sets the epoch subsequent Scan write-backs seal at. The
// persistence layer calls it after the batch's WAL record is durable and
// before the scan; segments then move to the new epoch slot by slot while
// the previous epoch's slots stay intact for crash recovery.
func (s *Store) BeginEpoch(e uint64) {
	s.mu.Lock()
	s.writeEpoch = e
	s.mu.Unlock()
}

// Commit makes the current epoch's slots durable and atomically publishes
// the registry recording them. After Commit returns, every segment
// authenticates at the committed epoch and recovery needs no roll-forward.
func (s *Store) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("segstore: commit on unformatted store")
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.reg.storeEpoch = s.writeEpoch
	return s.commitRegistryLocked()
}

// A scan callback visits one block during a streaming pass: i is the global
// block index and blk the block's bytes, mutable in place. Every visited
// block is resealed and written back whether or not fn changed it. The
// parameter type is spelled literally so suboram's BlockStore interface is
// satisfied without importing this package's types.

// Scan streams the oblivious pass over blocks [lo, hi): for each segment,
// read the sealed slot, open it into a pooled buffer, apply fn to every
// block, reseal at the write epoch, and write the slot back. lo and hi must
// be segment-aligned (hi may equal NumBlocks). Concurrent Scans over
// disjoint ranges are safe; each takes its own buffer pair from the free
// list. The I/O sequence is a function of (lo, hi, geometry, epoch) only.
func (s *Store) Scan(lo, hi int, fn func(i int, blk []byte)) error {
	s.mu.Lock()
	if s.f == nil {
		s.mu.Unlock()
		return fmt.Errorf("segstore: scan on unformatted store")
	}
	reg := s.reg
	epoch := s.writeEpoch
	f := s.f
	s.mu.Unlock()

	segBlocks := int(reg.segmentBlocks)
	n := int(reg.numBlocks)
	if lo < 0 || hi > n || lo > hi {
		return fmt.Errorf("segstore: scan range [%d,%d) outside [0,%d)", lo, hi, n)
	}
	if lo%segBlocks != 0 || (hi%segBlocks != 0 && hi != n) {
		return fmt.Errorf("segstore: scan range [%d,%d) not aligned to %d-block segments", lo, hi, segBlocks)
	}
	b := s.takeScanBuf()
	defer s.returnScanBuf(b)
	blockSize := int(reg.blockSize)
	t0 := s.opts.Telemetry.Now()
	for seg := lo / segBlocks; seg*segBlocks < hi; seg++ {
		ts0 := s.opts.Telemetry.Now()
		// Read at the segment's current epoch (registry entry), write back
		// at the scan's write epoch: during a batch these differ by one and
		// the write lands in the sibling parity slot.
		if err := s.readSlot(f, reg, seg, s.entryEpoch(seg), b); err != nil {
			return err
		}
		base := seg * segBlocks
		limit := minInt(base+segBlocks, n)
		for i := base; i < limit; i++ {
			fn(i, b.plain[(i-base)*blockSize:(i-base+1)*blockSize])
		}
		if err := s.writeSlot(f, reg, seg, epoch, b.plain, b); err != nil {
			return err
		}
		s.setEntry(seg, segEntry{phys: physSlot(seg, epoch), epoch: epoch})
		s.telScanSeg.Observe(time.Duration(s.opts.Telemetry.Now() - ts0))
	}
	s.telScans.Inc()
	s.stScan.Record(epoch, lo/segBlocks, (hi-lo+segBlocks-1)/segBlocks, t0, s.opts.Telemetry.Now())
	return nil
}

// Verify streams a read-only authentication pass over blocks [lo, hi),
// optionally applying fn to each block (fn mutations are NOT written back).
// Used by recovery to fail closed on any corrupt or rolled-back segment
// before serving, with the same fixed sequential I/O shape as a scan's read
// half.
func (s *Store) Verify(lo, hi int, fn func(i int, blk []byte)) error {
	s.mu.Lock()
	if s.f == nil {
		s.mu.Unlock()
		return fmt.Errorf("segstore: verify on unformatted store")
	}
	reg := s.reg
	f := s.f
	s.mu.Unlock()
	segBlocks := int(reg.segmentBlocks)
	n := int(reg.numBlocks)
	if lo%segBlocks != 0 || (hi%segBlocks != 0 && hi != n) || lo < 0 || hi > n {
		return fmt.Errorf("segstore: verify range [%d,%d) invalid", lo, hi)
	}
	b := s.takeScanBuf()
	defer s.returnScanBuf(b)
	blockSize := int(reg.blockSize)
	for seg := lo / segBlocks; seg*segBlocks < hi; seg++ {
		if err := s.readSlot(f, reg, seg, s.entryEpoch(seg), b); err != nil {
			return err
		}
		if fn != nil {
			base := seg * segBlocks
			limit := minInt(base+segBlocks, n)
			for i := base; i < limit; i++ {
				fn(i, b.plain[(i-base)*blockSize:(i-base+1)*blockSize])
			}
		}
	}
	return nil
}

// Rewrite streams a read-modify-write pass like Scan but applies fn and
// reseals at the write epoch unconditionally over the whole store — the
// recovery roll-forward primitive. Unlike Scan it is always whole-store, so
// a crash-interrupted batch is re-applied with one fixed I/O shape.
func (s *Store) Rewrite(fn func(i int, blk []byte)) error {
	return s.Scan(0, s.NumBlocks(), fn)
}

// entryEpoch returns segment seg's registry epoch.
func (s *Store) entryEpoch(seg int) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reg.entries[seg].epoch
}

// setEntry updates segment seg's registry entry (in memory; Commit
// publishes it).
func (s *Store) setEntry(seg int, e segEntry) {
	s.mu.Lock()
	s.reg.entries[seg] = e
	s.mu.Unlock()
}

// ---- Random access (load, export, recovery — not the batch hot path) ----

// ReadBlock reads block i into dst (len >= BlockSize) by streaming its
// containing segment. Intended for export/tests; the batch path never reads
// single blocks.
func (s *Store) ReadBlock(i int, dst []byte) error {
	s.mu.Lock()
	reg := s.reg
	f := s.f
	s.mu.Unlock()
	if f == nil || i < 0 || i >= int(reg.numBlocks) {
		return fmt.Errorf("segstore: block %d out of range", i)
	}
	segBlocks := int(reg.segmentBlocks)
	seg := i / segBlocks
	b := s.takeScanBuf()
	defer s.returnScanBuf(b)
	if err := s.readSlot(f, reg, seg, s.entryEpoch(seg), b); err != nil {
		return err
	}
	blockSize := int(reg.blockSize)
	copy(dst, b.plain[(i-seg*segBlocks)*blockSize:(i-seg*segBlocks+1)*blockSize])
	return nil
}

// LoadRange bulk-writes blocks [start, start+len(data)/BlockSize) from
// packed data, streaming whole segments: unaligned edges read-modify-write
// their segment, aligned interiors are sealed directly from data. Slots are
// written at the current write epoch; call Commit (or Format's epoch
// discipline) afterwards.
func (s *Store) LoadRange(start int, data []byte) error {
	s.mu.Lock()
	reg := s.reg
	epoch := s.writeEpoch
	f := s.f
	s.mu.Unlock()
	if f == nil {
		return fmt.Errorf("segstore: load on unformatted store")
	}
	blockSize := int(reg.blockSize)
	if len(data)%blockSize != 0 {
		return fmt.Errorf("segstore: load data length %d not a multiple of block size %d", len(data), blockSize)
	}
	count := len(data) / blockSize
	if start < 0 || start+count > int(reg.numBlocks) {
		return fmt.Errorf("segstore: load range [%d,%d) outside [0,%d)", start, start+count, reg.numBlocks)
	}
	segBlocks := int(reg.segmentBlocks)
	n := int(reg.numBlocks)
	b := s.takeScanBuf()
	defer s.returnScanBuf(b)
	for seg := start / segBlocks; seg*segBlocks < start+count; seg++ {
		base := seg * segBlocks
		limit := minInt(base+segBlocks, n)
		full := start <= base && base+segBlocks <= start+count
		if !full {
			// Partial segment: merge over the existing contents.
			if err := s.readSlot(f, reg, seg, s.entryEpoch(seg), b); err != nil {
				return err
			}
		} else {
			clear(b.plain)
		}
		for i := maxInt(base, start); i < minInt(limit, start+count); i++ {
			copy(b.plain[(i-base)*blockSize:(i-base+1)*blockSize],
				data[(i-start)*blockSize:(i-start+1)*blockSize])
		}
		if err := s.writeSlot(f, reg, seg, epoch, b.plain, b); err != nil {
			return err
		}
		s.setEntry(seg, segEntry{phys: physSlot(seg, epoch), epoch: epoch})
	}
	return nil
}

// Close releases the data file handle. Committed state remains recoverable;
// Close is not required for durability.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
