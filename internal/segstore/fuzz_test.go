package segstore

// Fuzz targets for the sealed-storage decoders: the registry plaintext
// codec and the full on-disk store (registry file + segment slots). The
// host controls every byte of both; however they are mangled — bit flips,
// truncation, swapped halves, appended garbage, stale copies — the store
// must either fail with an enclave.ErrIntegrity-class error or expose
// exactly the committed state. It must never panic and never serve
// something else.
//
// `go test` runs the seed corpus; `go test -fuzz=FuzzX` explores further.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"snoopy/internal/crypt"
	"snoopy/internal/enclave"
)

// FuzzRegistryDecoder feeds raw plaintext at unmarshalRegistry (the layer
// under the AEAD — what an attacker who somehow forged a seal would reach).
// Accepted inputs must be canonical: re-marshaling reproduces the input
// byte for byte, so no two byte strings decode to the same registry.
func FuzzRegistryDecoder(f *testing.F) {
	valid := marshalRegistry(nil, registry{
		blockSize:     32,
		segmentBlocks: 4,
		numBlocks:     19,
		storeEpoch:    7,
		idsEpoch:      7,
		gen:           1,
		entries: []segEntry{
			{phys: 1, epoch: 7}, {phys: 2, epoch: 7}, {phys: 5, epoch: 7},
			{phys: 6, epoch: 6}, {phys: 9, epoch: 7},
		},
	})
	f.Add(valid)
	f.Add(valid[:regHeaderLen])
	f.Add(valid[:len(valid)-1])
	f.Add(append(append([]byte(nil), valid...), 0))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		r, err := unmarshalRegistry(raw)
		if err != nil {
			if !errors.Is(err, enclave.ErrIntegrity) {
				t.Fatalf("error outside the integrity class: %v", err)
			}
			return
		}
		if got := marshalRegistry(nil, r); !bytes.Equal(got, raw) {
			t.Fatalf("accepted non-canonical registry: %d bytes in, %d bytes back", len(raw), len(got))
		}
	})
}

// FuzzStoreMutation builds a real two-epoch store, mutates one of its files
// the way a hostile host would, and checks that reopen + full verify either
// fails closed in the integrity class or yields exactly the committed
// contents. The rolled-back-file case (restore a stale but authentic copy)
// is covered explicitly as mutation op 4.
func FuzzStoreMutation(f *testing.F) {
	for fileIdx := byte(0); fileIdx < 2; fileIdx++ {
		for op := byte(0); op < 5; op++ {
			f.Add(fileIdx, op, uint32(0), byte(0xff))
			f.Add(fileIdx, op, uint32(1<<30), byte(1))
			f.Add(fileIdx, op, uint32(4099), byte(0))
		}
	}
	f.Fuzz(func(t *testing.T, fileIdx, op byte, pos uint32, val byte) {
		const blockSize, segBlocks, n = 32, 4, 19
		dir := t.TempDir()
		key := crypt.MustNewKey()
		s, err := Open(dir, Options{BlockSize: blockSize, SegmentBlocks: segBlocks, Key: key})
		if err != nil {
			t.Fatal(err)
		}
		s.BeginEpoch(1)
		if err := s.Format(n); err != nil {
			t.Fatal(err)
		}
		fillPattern(t, s, n, blockSize, 0xAA)
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		regPath := filepath.Join(dir, registryFile)
		dataPath := s.dataPath(1)
		// Stale-but-authentic copies of epoch 1, for the rollback op.
		staleReg, err := os.ReadFile(regPath)
		if err != nil {
			t.Fatal(err)
		}
		staleData, err := os.ReadFile(dataPath)
		if err != nil {
			t.Fatal(err)
		}
		s.BeginEpoch(2)
		if err := s.Scan(0, n, func(i int, blk []byte) {
			binary.LittleEndian.PutUint64(blk, binary.LittleEndian.Uint64(blk)+1000)
		}); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		path := regPath
		stale := staleReg
		if fileIdx%2 == 1 {
			path = dataPath
			stale = staleData
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		switch op % 5 {
		case 0: // flip bits in one byte
			b[int(pos)%len(b)] ^= val | 1
		case 1: // truncate
			b = b[:int(pos)%(len(b)+1)]
		case 2: // swap halves
			half := len(b) / 2
			if half > 0 {
				tmp := append([]byte(nil), b[:half]...)
				copy(b, b[half:2*half])
				copy(b[half:2*half], tmp)
			}
		case 3: // append garbage
			for i := 0; i < int(pos%64)+1; i++ {
				b = append(b, val)
			}
		case 4: // roll back to the authentic epoch-1 copy
			b = stale
		}
		if err := os.WriteFile(path, b, 0o600); err != nil {
			t.Fatal(err)
		}

		s2, err := Open(dir, Options{BlockSize: blockSize, SegmentBlocks: segBlocks, Key: key})
		if err != nil {
			if !errors.Is(err, enclave.ErrIntegrity) {
				t.Fatalf("open after mutating %s (op %d): error outside the integrity class: %v",
					filepath.Base(path), op%5, err)
			}
			return
		}
		defer s2.Close()
		// Rolling the registry back alone is indistinguishable from a crash
		// before the epoch-2 commit at this layer: the registry is authentic
		// and self-consistent at epoch 1. Catching it is the trusted
		// counter's job — persist.SegDurable fails RequireEpoch. Everything
		// segstore accepts must at least be an authentic committed state.
		wantEpoch := uint64(2)
		wantSalt := uint64(1000)
		if fileIdx%2 == 0 && op%5 == 4 {
			wantEpoch, wantSalt = 1, 0
		}
		if got := s2.Epoch(); got != wantEpoch {
			t.Fatalf("mutating %s (op %d): silently loaded epoch %d, want %d",
				filepath.Base(path), op%5, got, wantEpoch)
		}
		blk := make([]byte, blockSize)
		for i := 0; i < n; i++ {
			err := s2.ReadBlock(i, blk)
			if err != nil {
				if !errors.Is(err, enclave.ErrIntegrity) {
					t.Fatalf("read after mutating %s (op %d): error outside the integrity class: %v",
						filepath.Base(path), op%5, err)
				}
				return
			}
			if got := binary.LittleEndian.Uint64(blk); got != uint64(i)+wantSalt {
				t.Fatalf("mutating %s (op %d): block %d silently corrupted to %d",
					filepath.Base(path), op%5, i, got)
			}
		}
	})
}
