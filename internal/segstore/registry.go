package segstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// The registry is the store's sealed root of trust on disk: one record
// naming the geometry, the committed store epoch, the data-file generation,
// and — per logical segment — the physical slot holding its current image
// and the epoch that image must authenticate at. It is rewritten atomically
// (tmp + fsync + rename + dir fsync) at every commit, so the host either
// observes the previous registry or the new one, never a torn mix.
//
// Freshness of the registry itself is NOT self-certifying — a malicious
// host can always serve yesterday's registry together with yesterday's
// (internally consistent) slots. The enclosing persistence layer anchors it
// by comparing the registry's store epoch against the trusted monotonic
// counter (RequireEpoch).

// registryFile is the registry record's file name within the store dir.
const registryFile = "registry"

// regContext is the registry record's AAD context.
const regContext = "snoopy-segstore/registry/v1"

// regMagic / regVersion identify the plaintext layout.
const (
	regMagic   = uint32(0x5347_5247) // "SGRG"
	regVersion = uint32(1)
)

// regHeaderLen is the fixed plaintext header:
// magic u32 | version u32 | blockSize u32 | segmentBlocks u32 |
// numBlocks u64 | storeEpoch u64 | idsEpoch u64 | gen u64 | numSegments u32.
const regHeaderLen = 4 + 4 + 4 + 4 + 8 + 8 + 8 + 8 + 4

// regEntryLen is one per-segment entry: phys u64 | epoch u64.
const regEntryLen = 8 + 8

// maxRegistrySegments bounds the segment count a decoder will accept before
// allocating, so a corrupt length field cannot drive an OOM. 2^26 segments
// at the minimum segment size is already far beyond any deployable
// partition.
const maxRegistrySegments = 1 << 26

// segEntry is one logical segment's registry entry.
type segEntry struct {
	phys  uint64 // physical slot index in the data file
	epoch uint64 // epoch the slot's seal must authenticate at
}

// registry is the in-memory registry state.
type registry struct {
	blockSize     uint32
	segmentBlocks uint32
	numBlocks     uint64
	storeEpoch    uint64
	idsEpoch      uint64
	gen           uint64
	entries       []segEntry
}

// marshalRegistry appends the registry plaintext to dst.
func marshalRegistry(dst []byte, r registry) []byte {
	var hdr [regHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], regMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], regVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], r.blockSize)
	binary.LittleEndian.PutUint32(hdr[12:16], r.segmentBlocks)
	binary.LittleEndian.PutUint64(hdr[16:24], r.numBlocks)
	binary.LittleEndian.PutUint64(hdr[24:32], r.storeEpoch)
	binary.LittleEndian.PutUint64(hdr[32:40], r.idsEpoch)
	binary.LittleEndian.PutUint64(hdr[40:48], r.gen)
	binary.LittleEndian.PutUint32(hdr[48:52], uint32(len(r.entries)))
	dst = append(dst, hdr[:]...)
	var ent [regEntryLen]byte
	for _, e := range r.entries {
		binary.LittleEndian.PutUint64(ent[0:8], e.phys)
		binary.LittleEndian.PutUint64(ent[8:16], e.epoch)
		dst = append(dst, ent[:]...)
	}
	return dst
}

// unmarshalRegistry decodes a registry plaintext with hostile-input bounds
// checking: every length and geometry field is validated before use, and
// every failure is a typed error in the ErrIntegrity class — never a panic,
// never a partially-populated registry.
func unmarshalRegistry(b []byte) (registry, error) {
	var r registry
	if len(b) < regHeaderLen {
		return r, errCorrupt("registry truncated: %d bytes, header needs %d", len(b), regHeaderLen)
	}
	if got := binary.LittleEndian.Uint32(b[0:4]); got != regMagic {
		return r, errCorrupt("registry has bad magic %#x", got)
	}
	if got := binary.LittleEndian.Uint32(b[4:8]); got != regVersion {
		return r, errCorrupt("registry version %d unsupported", got)
	}
	r.blockSize = binary.LittleEndian.Uint32(b[8:12])
	r.segmentBlocks = binary.LittleEndian.Uint32(b[12:16])
	r.numBlocks = binary.LittleEndian.Uint64(b[16:24])
	r.storeEpoch = binary.LittleEndian.Uint64(b[24:32])
	r.idsEpoch = binary.LittleEndian.Uint64(b[32:40])
	r.gen = binary.LittleEndian.Uint64(b[40:48])
	n := binary.LittleEndian.Uint32(b[48:52])
	if r.blockSize == 0 || r.segmentBlocks == 0 {
		return registry{}, errCorrupt("registry names zero geometry (block size %d, segment blocks %d)", r.blockSize, r.segmentBlocks)
	}
	if n > maxRegistrySegments {
		return registry{}, errCorrupt("registry names %d segments, beyond the %d bound", n, maxRegistrySegments)
	}
	segs := (r.numBlocks + uint64(r.segmentBlocks) - 1) / uint64(r.segmentBlocks)
	if uint64(n) != segs {
		return registry{}, errCorrupt("registry entry count %d disagrees with %d blocks at %d blocks/segment (want %d)", n, r.numBlocks, r.segmentBlocks, segs)
	}
	if len(b) != regHeaderLen+int(n)*regEntryLen {
		return registry{}, errCorrupt("registry length %d, want %d for %d segments", len(b), regHeaderLen+int(n)*regEntryLen, n)
	}
	r.entries = make([]segEntry, n)
	for i := range r.entries {
		off := regHeaderLen + i*regEntryLen
		r.entries[i].phys = binary.LittleEndian.Uint64(b[off : off+8])
		r.entries[i].epoch = binary.LittleEndian.Uint64(b[off+8 : off+16])
		// A slot index outside the segment's own pair means the sealed
		// record was forged under a different geometry or spliced.
		if r.entries[i].phys != uint64(2*i) && r.entries[i].phys != uint64(2*i)+1 {
			return registry{}, errCorrupt("registry maps segment %d to foreign slot %d", i, r.entries[i].phys)
		}
		if r.entries[i].epoch > r.storeEpoch+1 {
			return registry{}, errCorrupt("registry entry %d at epoch %d, beyond store epoch %d", i, r.entries[i].epoch, r.storeEpoch)
		}
	}
	return r, nil
}

// readRegistry loads and opens the sealed registry record. os.ErrNotExist
// passes through untouched (unformatted store); every other failure is in
// the ErrIntegrity class.
func (s *Store) readRegistry() (registry, error) {
	raw, err := os.ReadFile(filepath.Join(s.dir, registryFile))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return registry{}, err
		}
		return registry{}, fmt.Errorf("segstore: reading registry: %w", err)
	}
	plain, err := s.sealer.Open(raw, []byte(regContext))
	if err != nil {
		return registry{}, errCorrupt("registry authentication failed")
	}
	return unmarshalRegistry(plain)
}

// commitRegistryLocked seals and atomically replaces the registry record
// for the current in-memory state. Caller holds s.mu. Scratch buffers are
// reused across commits; the file dance (create, write, fsync, rename, dir
// fsync) is the commit point that makes an epoch's slots authoritative.
func (s *Store) commitRegistryLocked() error {
	s.regPlain = marshalRegistry(s.regPlain[:0], s.reg)
	s.regSealed = s.sealer.SealAppend(s.regSealed[:0], s.regPlain, []byte(regContext))
	path := filepath.Join(s.dir, registryFile)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if _, err := f.Write(s.regSealed); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(s.dir)
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
