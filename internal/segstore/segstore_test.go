package segstore

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"snoopy/internal/crypt"
	"snoopy/internal/enclave"
)

func testStore(t *testing.T, dir string, key crypt.Key, blockSize, segBlocks int) *Store {
	t.Helper()
	s, err := Open(dir, Options{BlockSize: blockSize, SegmentBlocks: segBlocks, Key: key})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// fillPattern writes a recognizable per-block pattern via LoadRange.
func fillPattern(t *testing.T, s *Store, n, blockSize int, salt byte) {
	t.Helper()
	data := make([]byte, n*blockSize)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(data[i*blockSize:], uint64(i))
		data[i*blockSize+8] = salt
	}
	if err := s.LoadRange(0, data); err != nil {
		t.Fatalf("LoadRange: %v", err)
	}
}

func checkPattern(t *testing.T, s *Store, n, blockSize int, salt byte) {
	t.Helper()
	blk := make([]byte, blockSize)
	for i := 0; i < n; i++ {
		if err := s.ReadBlock(i, blk); err != nil {
			t.Fatalf("ReadBlock(%d): %v", i, err)
		}
		if got := binary.LittleEndian.Uint64(blk); got != uint64(i) {
			t.Fatalf("block %d holds index %d", i, got)
		}
		if blk[8] != salt {
			t.Fatalf("block %d salt %d, want %d", i, blk[8], salt)
		}
	}
}

func TestFormatScanCommitReopen(t *testing.T) {
	dir := t.TempDir()
	key := crypt.MustNewKey()
	const blockSize, segBlocks, n = 32, 4, 19 // deliberately non-multiple of segBlocks
	s := testStore(t, dir, key, blockSize, segBlocks)
	if s.Formatted() {
		t.Fatal("fresh store reports formatted")
	}
	s.BeginEpoch(1)
	if err := s.Format(n); err != nil {
		t.Fatalf("Format: %v", err)
	}
	fillPattern(t, s, n, blockSize, 0xAA)
	if err := s.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	checkPattern(t, s, n, blockSize, 0xAA)

	// One epoch of scanning: increment every block's low word.
	s.BeginEpoch(2)
	if err := s.Scan(0, n, func(i int, blk []byte) {
		binary.LittleEndian.PutUint64(blk, binary.LittleEndian.Uint64(blk)+100)
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if err := s.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got := s.Epoch(); got != 2 {
		t.Fatalf("Epoch = %d, want 2", got)
	}
	s.Close()

	// Reopen: contents and epoch survive.
	s2 := testStore(t, dir, key, blockSize, segBlocks)
	if !s2.Formatted() {
		t.Fatal("reopened store reports unformatted")
	}
	if got := s2.Epoch(); got != 2 {
		t.Fatalf("reopened Epoch = %d, want 2", got)
	}
	blk := make([]byte, blockSize)
	for i := 0; i < n; i++ {
		if err := s2.ReadBlock(i, blk); err != nil {
			t.Fatalf("ReadBlock(%d): %v", i, err)
		}
		if got := binary.LittleEndian.Uint64(blk); got != uint64(i+100) {
			t.Fatalf("block %d holds %d, want %d", i, got, i+100)
		}
	}
	if err := s2.Verify(0, n, nil); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	s2.Close()
}

func TestScanAlignmentEnforced(t *testing.T) {
	s := testStore(t, t.TempDir(), crypt.MustNewKey(), 16, 4)
	s.BeginEpoch(1)
	if err := s.Format(16); err != nil {
		t.Fatal(err)
	}
	if err := s.Scan(2, 8, func(int, []byte) {}); err == nil {
		t.Fatal("unaligned scan accepted")
	}
	if err := s.Scan(0, 20, func(int, []byte) {}); err == nil {
		t.Fatal("out-of-range scan accepted")
	}
}

func TestWrongKeyFailsClosed(t *testing.T) {
	dir := t.TempDir()
	s := testStore(t, dir, crypt.MustNewKey(), 16, 4)
	s.BeginEpoch(1)
	if err := s.Format(8); err != nil {
		t.Fatal(err)
	}
	s.Close()
	_, err := Open(dir, Options{BlockSize: 16, SegmentBlocks: 4, Key: crypt.MustNewKey()})
	if !errors.Is(err, enclave.ErrIntegrity) {
		t.Fatalf("wrong-key open: got %v, want ErrIntegrity class", err)
	}
}

func TestSegmentRollbackDetected(t *testing.T) {
	dir := t.TempDir()
	key := crypt.MustNewKey()
	const blockSize, segBlocks, n = 16, 4, 8
	s := testStore(t, dir, key, blockSize, segBlocks)
	s.BeginEpoch(1)
	if err := s.Format(n); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Snapshot the epoch-1 data file, advance two epochs (so both parity
	// slots move past epoch 1), then restore the stale file under the fresh
	// registry: every segment must be reported rolled back.
	dataPath := s.dataPath(1)
	stale, err := os.ReadFile(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(2); e <= 3; e++ {
		s.BeginEpoch(e)
		if err := s.Scan(0, n, func(int, []byte) {}); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := os.WriteFile(dataPath, stale, 0o600); err != nil {
		t.Fatal(err)
	}
	s2 := testStore(t, dir, key, blockSize, segBlocks)
	err = s2.Verify(0, n, nil)
	if !errors.Is(err, ErrSegmentRollback) {
		t.Fatalf("stale data file: got %v, want ErrSegmentRollback", err)
	}
	if !errors.Is(err, enclave.ErrIntegrity) {
		t.Fatalf("rollback error not in ErrIntegrity class: %v", err)
	}
	s2.Close()
}

func TestRequireEpoch(t *testing.T) {
	s := testStore(t, t.TempDir(), crypt.MustNewKey(), 16, 4)
	s.BeginEpoch(5)
	if err := s.Format(8); err != nil {
		t.Fatal(err)
	}
	if err := s.RequireEpoch(5, 6); err != nil {
		t.Fatalf("in-range epoch rejected: %v", err)
	}
	if err := s.RequireEpoch(6, 7); !errors.Is(err, ErrRegistryRollback) {
		t.Fatalf("stale registry: got %v, want ErrRegistryRollback", err)
	}
	if err := s.RequireEpoch(2, 3); !errors.Is(err, enclave.ErrIntegrity) {
		t.Fatalf("future registry: got %v, want ErrIntegrity class", err)
	}
}

func TestTamperedRegistryFailsClosed(t *testing.T) {
	dir := t.TempDir()
	key := crypt.MustNewKey()
	s := testStore(t, dir, key, 16, 4)
	s.BeginEpoch(1)
	if err := s.Format(8); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := filepath.Join(dir, registryFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Options{BlockSize: 16, SegmentBlocks: 4, Key: key})
	if !errors.Is(err, enclave.ErrIntegrity) {
		t.Fatalf("tampered registry: got %v, want ErrIntegrity class", err)
	}
}

func TestLoadRangeUnaligned(t *testing.T) {
	const blockSize, segBlocks, n = 16, 4, 12
	s := testStore(t, t.TempDir(), crypt.MustNewKey(), blockSize, segBlocks)
	s.BeginEpoch(1)
	if err := s.Format(n); err != nil {
		t.Fatal(err)
	}
	fillPattern(t, s, n, blockSize, 0x01)
	// Overwrite an unaligned interior range [3, 9).
	data := make([]byte, 6*blockSize)
	for i := 0; i < 6; i++ {
		binary.LittleEndian.PutUint64(data[i*blockSize:], uint64(1000+i))
	}
	if err := s.LoadRange(3, data); err != nil {
		t.Fatal(err)
	}
	blk := make([]byte, blockSize)
	for i := 0; i < n; i++ {
		if err := s.ReadBlock(i, blk); err != nil {
			t.Fatal(err)
		}
		want := uint64(i)
		if i >= 3 && i < 9 {
			want = uint64(1000 + i - 3)
		}
		if got := binary.LittleEndian.Uint64(blk); got != want {
			t.Fatalf("block %d holds %d, want %d", i, got, want)
		}
	}
}
