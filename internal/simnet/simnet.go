// Package simnet is a discrete-event simulator of a Snoopy deployment: L
// load-balancer machines and S subORAM machines exchanging epoch batches
// over finite-bandwidth links, fed by Poisson client arrivals. Component
// processing times come from a measured cost model (internal/planner), so
// the simulator independently validates the closed-form pipeline equations
// (paper §6, Eq. 1–2) that the figure harness uses — including the
// queueing and pipelining effects the closed form abstracts away
// ("We can pipeline the subORAM and load balancer processing", §6).
//
// The simulation is epoch-stepped: stage start times respect both data
// dependencies (batches must arrive before processing) and resource
// availability (a machine runs one stage at a time), which is exactly a
// pipelined schedule. Sustained throughput is the largest arrival rate for
// which the pipeline lag stays bounded.
package simnet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"snoopy/internal/batch"
	"snoopy/internal/planner"
)

// Config describes the simulated deployment and offered load.
type Config struct {
	LBs, Subs      int
	Objects        int
	Block          int
	Lambda         int
	Epoch          time.Duration
	Arrival        float64 // offered load, requests/second
	Model          planner.CostModel
	NetRTT         time.Duration
	NetBytesPerSec float64
	Epochs         int // simulated epochs (default 50)
	Seed           int64
}

func (c *Config) fill() error {
	if c.LBs <= 0 || c.Subs <= 0 || c.Objects <= 0 || c.Block <= 0 {
		return fmt.Errorf("simnet: LBs, Subs, Objects, Block must be positive")
	}
	if c.Lambda <= 0 {
		c.Lambda = 128
	}
	if c.Epoch <= 0 {
		return fmt.Errorf("simnet: Epoch must be positive")
	}
	if c.Epochs <= 0 {
		c.Epochs = 50
	}
	if c.Model.LBTime == nil || c.Model.SubTime == nil {
		return fmt.Errorf("simnet: cost model required")
	}
	return nil
}

// Result summarizes a simulation run.
type Result struct {
	Completed   int
	Throughput  float64 // completed requests / simulated duration
	MeanLatency time.Duration
	P50, P99    time.Duration
	// Lag is the final pipeline lag (completion time minus epoch close);
	// unbounded growth means the offered load exceeds capacity.
	Lag    time.Duration
	Stable bool
}

// Run simulates the deployment for the configured number of epochs.
func Run(cfg Config) (Result, error) {
	if err := cfg.fill(); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	T := cfg.Epoch.Seconds()
	objectsPerSub := (cfg.Objects + cfg.Subs - 1) / cfg.Subs

	net := func(bytes int) time.Duration {
		if cfg.NetBytesPerSec <= 0 {
			return cfg.NetRTT
		}
		return cfg.NetRTT + time.Duration(float64(bytes)/cfg.NetBytesPerSec*1e9)
	}

	lbFree := make([]float64, cfg.LBs) // seconds
	subFree := make([]float64, cfg.Subs)
	var latencies []float64
	var midLag, endLag float64
	completed := 0

	for k := 0; k < cfg.Epochs; k++ {
		epochClose := float64(k+1) * T
		// Poisson arrivals for this epoch, split across LBs.
		perLB := make([]int, cfg.LBs)
		total := poisson(rng, cfg.Arrival*T)
		for i := 0; i < total; i++ {
			perLB[rng.Intn(cfg.LBs)]++
		}

		// Stage 1: each LB builds its batches once the epoch closes and the
		// machine is free. The measured LBTime covers make+match; split it
		// between the two stages.
		makeDone := make([]float64, cfg.LBs)
		alpha := make([]int, cfg.LBs)
		for i := 0; i < cfg.LBs; i++ {
			a := batch.Size(perLB[i], cfg.Subs, cfg.Lambda)
			if a == 0 {
				a = 1
			}
			alpha[i] = a
			lbT := cfg.Model.LBTime(perLB[i], cfg.Subs).Seconds() / 2
			start := maxf(epochClose, lbFree[i])
			makeDone[i] = start + lbT
			lbFree[i] = makeDone[i]
		}

		// Stage 2: each subORAM processes the L batches in LB order.
		respArrive := make([][]float64, cfg.LBs)
		for i := range respArrive {
			respArrive[i] = make([]float64, cfg.Subs)
		}
		for s := 0; s < cfg.Subs; s++ {
			for i := 0; i < cfg.LBs; i++ {
				arrive := makeDone[i] + net(alpha[i]*(cfg.Block+64)).Seconds()
				start := maxf(arrive, subFree[s])
				done := start + cfg.Model.SubTime(alpha[i], objectsPerSub).Seconds()
				subFree[s] = done
				respArrive[i][s] = done + net(alpha[i]*(cfg.Block+64)).Seconds()
			}
		}

		// Stage 3: each LB matches once all its responses are in.
		for i := 0; i < cfg.LBs; i++ {
			ready := 0.0
			for s := 0; s < cfg.Subs; s++ {
				ready = maxf(ready, respArrive[i][s])
			}
			start := maxf(ready, lbFree[i])
			done := start + cfg.Model.LBTime(perLB[i], cfg.Subs).Seconds()/2
			lbFree[i] = done

			// Requests arrived uniformly within the epoch window.
			for r := 0; r < perLB[i]; r++ {
				arrival := float64(k)*T + rng.Float64()*T
				latencies = append(latencies, done-arrival)
			}
			completed += perLB[i]
			lag := done - epochClose
			if k == cfg.Epochs/2 && lag > midLag {
				midLag = lag
			}
			if k == cfg.Epochs-1 && lag > endLag {
				endLag = lag
			}
		}
	}

	res := Result{Completed: completed}
	dur := float64(cfg.Epochs) * T
	res.Throughput = float64(completed) / dur
	res.Lag = time.Duration(endLag * 1e9)
	// Stable if the pipeline lag stopped growing between the midpoint and
	// the end (allowing one epoch of jitter).
	res.Stable = endLag-midLag < T*float64(cfg.Epochs)/2*0.1 && endLag < 20*T
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		res.MeanLatency = time.Duration(sum / float64(len(latencies)) * 1e9)
		res.P50 = time.Duration(latencies[len(latencies)/2] * 1e9)
		res.P99 = time.Duration(latencies[len(latencies)*99/100] * 1e9)
	}
	return res, nil
}

// MaxStableThroughput binary-searches the largest offered load the
// deployment sustains with bounded lag and mean latency within bound.
func MaxStableThroughput(cfg Config, latencyBound time.Duration) (float64, error) {
	if err := cfg.fill(); err != nil {
		return 0, err
	}
	ok := func(x float64) bool {
		c := cfg
		c.Arrival = x
		r, err := Run(c)
		if err != nil {
			return false
		}
		return r.Stable && (latencyBound <= 0 || r.MeanLatency <= latencyBound)
	}
	if !ok(1) {
		return 0, nil
	}
	lo, hi := 1.0, 2.0
	for ok(hi) && hi < 1e9 {
		lo, hi = hi, hi*2
	}
	for i := 0; i < 30; i++ {
		mid := (lo + hi) / 2
		if ok(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

func poisson(rng *rand.Rand, mean float64) int {
	// Knuth for small means, normal approximation for large.
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		v := mean + rng.NormFloat64()*math.Sqrt(mean)
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
