package simnet

import (
	"testing"
	"time"

	"snoopy/internal/planner"
)

func testModel() planner.CostModel {
	return planner.CostModel{
		LBTime: func(r, s int) time.Duration {
			return time.Duration(r)*5*time.Microsecond + time.Millisecond
		},
		SubTime: func(batchSize, objectsPerSub int) time.Duration {
			return time.Duration(batchSize)*10*time.Microsecond +
				time.Duration(objectsPerSub)*100*time.Nanosecond
		},
	}
}

func baseConfig(arrival float64) Config {
	return Config{
		LBs: 2, Subs: 4, Objects: 100_000, Block: 160, Lambda: 64,
		Epoch: 100 * time.Millisecond, Arrival: arrival,
		Model: testModel(), NetRTT: 500 * time.Microsecond, NetBytesPerSec: 125e6,
		Epochs: 60, Seed: 1,
	}
}

func TestLowLoadStableWithModelLatency(t *testing.T) {
	r, err := Run(baseConfig(1000))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Stable {
		t.Fatalf("low load unstable: %+v", r)
	}
	if r.Completed == 0 {
		t.Fatal("no requests completed")
	}
	// At low load, mean latency ≈ T/2 (wait) + processing ≈ a bit over
	// half an epoch; certainly under 2.5T (Eq. 2's bound).
	if r.MeanLatency > 250*time.Millisecond {
		t.Fatalf("low-load latency too high: %v", r.MeanLatency)
	}
	if r.MeanLatency < 50*time.Millisecond {
		t.Fatalf("latency below the epoch-wait floor: %v", r.MeanLatency)
	}
}

func TestOverloadDetected(t *testing.T) {
	// The subORAM scan takes 10ms + batch cost; at absurd arrival rates the
	// per-epoch work exceeds the epoch and lag must grow.
	cfg := baseConfig(5_000_000)
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stable {
		t.Fatalf("overload not detected: %+v", r)
	}
}

func TestMaxStableThroughputMonotoneInMachines(t *testing.T) {
	prev := 0.0
	for _, subs := range []int{2, 4, 8} {
		cfg := baseConfig(0)
		cfg.Subs = subs
		cfg.Epochs = 40
		x, err := MaxStableThroughput(cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		if x < prev*0.9 { // allow binary-search noise
			t.Fatalf("throughput fell with more subORAMs: %g after %g", x, prev)
		}
		prev = x
	}
	if prev <= 0 {
		t.Fatal("no sustainable throughput found")
	}
}

func TestSimulatorAgreesWithClosedForm(t *testing.T) {
	// The simulated capacity should be within ~3x of the planner's
	// closed-form MaxThroughput for the same model (the closed form
	// ignores queueing, the simulator ignores nothing; they must agree on
	// order of magnitude and direction).
	cfg := baseConfig(0)
	sim, err := MaxStableThroughput(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	req := planner.Requirements{
		Objects: cfg.Objects, BlockSize: cfg.Block,
		MaxLatency: 250 * time.Millisecond, // epoch 100ms = 2/5 of this
		Lambda:     cfg.Lambda,
	}
	closed := planner.MaxThroughput(req, cfg.Model, cfg.LBs, cfg.Subs)
	if closed <= 0 || sim <= 0 {
		t.Fatalf("degenerate: sim=%g closed=%g", sim, closed)
	}
	ratio := sim / closed
	if ratio < 0.3 || ratio > 3.5 {
		t.Fatalf("simulator and closed form diverge: sim=%g closed=%g ratio=%.2f", sim, closed, ratio)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	cfg := baseConfig(100)
	cfg.Model = planner.CostModel{}
	if _, err := Run(cfg); err == nil {
		t.Fatal("missing model accepted")
	}
}
