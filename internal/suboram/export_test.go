package suboram

// Test-only hooks: simulate the untrusted host attacking the sealed
// external memory (paper §2 integrity threat model).

func (s *SubORAM) corruptSealedBlock(i int) { s.sealed.Corrupt(i) }

func (s *SubORAM) replaySealedBlock(i int, snap []byte) { s.sealed.Replay(i, snap) }

func (s *SubORAM) snapshotSealedBlock(i int) []byte { return s.sealed.Snapshot(i) }
