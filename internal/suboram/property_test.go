package suboram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"snoopy/internal/store"
)

// TestBatchAccessPropertyInvariants quick-checks, across random distinct
// batches: the response multiset of keys equals the request multiset, all
// hits are flagged, all misses are zeroed.
func TestBatchAccessPropertyInvariants(t *testing.T) {
	s := newLoaded(t, Config{}, 150) // ids are multiples of 3
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%64) + 1
		reqs := store.NewRequests(n, testBlock)
		used := map[uint64]bool{}
		for i := 0; i < n; i++ {
			var key uint64
			for {
				key = uint64(rng.Intn(600))
				if !used[key] {
					break
				}
			}
			used[key] = true
			reqs.SetRow(i, store.OpRead, key, 0, uint64(i), uint64(i), nil)
		}
		out, err := s.BatchAccess(reqs)
		if err != nil || out.Len() != n {
			return false
		}
		for i := 0; i < out.Len(); i++ {
			key := out.Key[i]
			if !used[key] {
				return false // fabricated response
			}
			stored := key%3 == 0 && key < 450
			if (out.Aux[i] == 1) != stored {
				return false
			}
			if !stored {
				for _, c := range out.Block(i) {
					if c != 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
