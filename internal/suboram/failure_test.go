package suboram

import (
	"errors"
	"testing"

	"snoopy/internal/enclave"
	"snoopy/internal/store"
)

// TestSealedCorruptionFailsBatch: a host flipping bits in the sealed
// partition must surface as an integrity error, never as wrong data.
func TestSealedCorruptionFailsBatch(t *testing.T) {
	s := newLoaded(t, Config{Sealed: true}, 40)
	s.corruptSealedBlock(7)
	_, err := s.BatchAccess(batchOf([3]interface{}{store.OpRead, uint64(21), nil}))
	if !errors.Is(err, enclave.ErrIntegrity) {
		t.Fatalf("expected integrity error, got %v", err)
	}
}

// TestSealedReplayFailsBatch: replaying an old (validly encrypted) block
// is caught by the in-enclave freshness digest.
func TestSealedReplayFailsBatch(t *testing.T) {
	s := newLoaded(t, Config{Sealed: true}, 40)
	snap := s.snapshotSealedBlock(3)
	// Advance the block with a write, then replay the stale ciphertext.
	if _, err := s.BatchAccess(batchOf([3]interface{}{store.OpWrite, uint64(9), value(9, 1)})); err != nil {
		t.Fatal(err)
	}
	s.replaySealedBlock(3, snap)
	_, err := s.BatchAccess(batchOf([3]interface{}{store.OpRead, uint64(9), nil}))
	if !errors.Is(err, enclave.ErrIntegrity) {
		t.Fatalf("expected integrity error on replay, got %v", err)
	}
}

// TestSealedReplaySameContentStillDetected: even a replay right after a
// scan (content identical, ciphertext stale) must fail — detection relies
// on digests of the current ciphertext, not plaintext comparison.
func TestSealedReplaySameContentStillDetected(t *testing.T) {
	s := newLoaded(t, Config{Sealed: true}, 20)
	snap := s.snapshotSealedBlock(0)
	// A pure read batch re-encrypts every block (write-back churn).
	if _, err := s.BatchAccess(batchOf([3]interface{}{store.OpRead, uint64(3), nil})); err != nil {
		t.Fatal(err)
	}
	s.replaySealedBlock(0, snap)
	if _, err := s.BatchAccess(batchOf([3]interface{}{store.OpRead, uint64(3), nil})); !errors.Is(err, enclave.ErrIntegrity) {
		t.Fatalf("stale-but-identical replay not detected: %v", err)
	}
}
