package suboram

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"snoopy/internal/store"
)

const testBlock = 32

func value(id uint64, version int) []byte {
	b := make([]byte, testBlock)
	copy(b, []byte(fmt.Sprintf("obj-%d-v%d", id, version)))
	return b
}

func newLoaded(t *testing.T, cfg Config, n int) *SubORAM {
	t.Helper()
	if cfg.BlockSize == 0 {
		cfg.BlockSize = testBlock
	}
	s := New(cfg)
	ids := make([]uint64, n)
	data := make([]byte, n*cfg.BlockSize)
	for i := 0; i < n; i++ {
		ids[i] = uint64(i * 3) // sparse ids
		copy(data[i*cfg.BlockSize:], value(ids[i], 0))
	}
	if err := s.Init(ids, data); err != nil {
		t.Fatal(err)
	}
	return s
}

func batchOf(rows ...[3]interface{}) *store.Requests {
	reqs := store.NewRequests(len(rows), testBlock)
	for i, r := range rows {
		op := r[0].(uint8)
		key := r[1].(uint64)
		var data []byte
		if r[2] != nil {
			data = r[2].([]byte)
		}
		reqs.SetRow(i, op, key, 0, uint64(i), uint64(i), data)
	}
	return reqs
}

func respFor(t *testing.T, out *store.Requests, key uint64) int {
	t.Helper()
	for i := 0; i < out.Len(); i++ {
		if out.Key[i] == key {
			return i
		}
	}
	t.Fatalf("no response for key %d", key)
	return -1
}

func TestReadsReturnStoredValues(t *testing.T) {
	s := newLoaded(t, Config{Strict: true}, 100)
	reqs := batchOf(
		[3]interface{}{store.OpRead, uint64(0), nil},
		[3]interface{}{store.OpRead, uint64(3), nil},
		[3]interface{}{store.OpRead, uint64(297), nil},
	)
	out, err := s.BatchAccess(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("got %d responses", out.Len())
	}
	for _, key := range []uint64{0, 3, 297} {
		i := respFor(t, out, key)
		if !bytes.Equal(out.Block(i), value(key, 0)) {
			t.Fatalf("key %d: wrong value %q", key, out.Block(i))
		}
		if out.Aux[i] != 1 {
			t.Fatalf("key %d: found bit not set", key)
		}
	}
}

func TestWriteThenReadAcrossBatches(t *testing.T) {
	s := newLoaded(t, Config{Strict: true}, 50)
	w := batchOf([3]interface{}{store.OpWrite, uint64(6), value(6, 1)})
	out, err := s.BatchAccess(w)
	if err != nil {
		t.Fatal(err)
	}
	// Write response carries the pre-write value (§C).
	if !bytes.Equal(out.Block(respFor(t, out, 6)), value(6, 0)) {
		t.Fatalf("write response should be pre-write value, got %q", out.Block(0))
	}
	r := batchOf([3]interface{}{store.OpRead, uint64(6), nil})
	out, err = s.BatchAccess(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Block(respFor(t, out, 6)), value(6, 1)) {
		t.Fatalf("read after write returned %q", out.Block(0))
	}
}

func TestAbsentKeysReturnZeroes(t *testing.T) {
	s := newLoaded(t, Config{Strict: true}, 20)
	reqs := batchOf(
		[3]interface{}{store.OpRead, uint64(1), nil}, // not stored (ids are multiples of 3)
		[3]interface{}{store.OpWrite, uint64(2), value(2, 9)},
		[3]interface{}{store.OpRead, store.DummyKeyBit | 5, nil},
	)
	out, err := s.BatchAccess(reqs)
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]byte, testBlock)
	for _, key := range []uint64{1, 2, store.DummyKeyBit | 5} {
		i := respFor(t, out, key)
		if !bytes.Equal(out.Block(i), zero) {
			t.Fatalf("key %#x: expected zero response, got %q", key, out.Block(i))
		}
		if out.Aux[i] != 0 {
			t.Fatalf("key %#x: found bit should be clear", key)
		}
	}
	// The write to an absent key must not create an object.
	r := batchOf([3]interface{}{store.OpRead, uint64(2), nil})
	out, _ = s.BatchAccess(r)
	if out.Aux[0] != 0 {
		t.Fatal("write to absent key materialized an object")
	}
}

func TestMixedLargeBatchRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const n = 400
	s := newLoaded(t, Config{Strict: true}, n)
	shadow := map[uint64][]byte{}
	for i := 0; i < n; i++ {
		shadow[uint64(i*3)] = value(uint64(i*3), 0)
	}
	for round := 0; round < 5; round++ {
		perm := rng.Perm(n)
		k := 50 + rng.Intn(100)
		reqs := store.NewRequests(k, testBlock)
		expect := map[uint64][]byte{}
		writes := map[uint64][]byte{}
		for i := 0; i < k; i++ {
			key := uint64(perm[i] * 3)
			if rng.Intn(2) == 0 {
				reqs.SetRow(i, store.OpRead, key, 0, uint64(i), uint64(i), nil)
			} else {
				v := value(key, 100+round)
				reqs.SetRow(i, store.OpWrite, key, 0, uint64(i), uint64(i), v)
				writes[key] = v
			}
			expect[key] = shadow[key] // response is always pre-batch value
		}
		out, err := s.BatchAccess(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < out.Len(); i++ {
			if !bytes.Equal(out.Block(i), expect[out.Key[i]]) {
				t.Fatalf("round %d key %d: got %q want %q", round, out.Key[i], out.Block(i), expect[out.Key[i]])
			}
		}
		for key, v := range writes {
			shadow[key] = v
		}
	}
}

func TestStrictRejectsDuplicates(t *testing.T) {
	s := newLoaded(t, Config{Strict: true}, 10)
	reqs := batchOf(
		[3]interface{}{store.OpRead, uint64(3), nil},
		[3]interface{}{store.OpRead, uint64(3), nil},
	)
	if _, err := s.BatchAccess(reqs); err == nil {
		t.Fatal("duplicate batch accepted in strict mode")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	for _, workers := range []int{2, 3, 8} {
		serial := newLoaded(t, Config{Workers: 1}, 200)
		par := newLoaded(t, Config{Workers: workers}, 200)
		rng := rand.New(rand.NewSource(32))
		reqs := store.NewRequests(64, testBlock)
		perm := rng.Perm(200)
		for i := 0; i < 64; i++ {
			key := uint64(perm[i] * 3)
			if i%2 == 0 {
				reqs.SetRow(i, store.OpWrite, key, 0, uint64(i), uint64(i), value(key, 7))
			} else {
				reqs.SetRow(i, store.OpRead, key, 0, uint64(i), uint64(i), nil)
			}
		}
		o1, err1 := serial.BatchAccess(reqs.Clone())
		o2, err2 := par.BatchAccess(reqs.Clone())
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		m := map[uint64][]byte{}
		for i := 0; i < o1.Len(); i++ {
			m[o1.Key[i]] = o1.Block(i)
		}
		for i := 0; i < o2.Len(); i++ {
			if !bytes.Equal(o2.Block(i), m[o2.Key[i]]) {
				t.Fatalf("workers=%d: response mismatch for key %d", workers, o2.Key[i])
			}
		}
		// And the partitions must now agree: read everything back.
		check := store.NewRequests(200, testBlock)
		for i := 0; i < 200; i++ {
			check.SetRow(i, store.OpRead, uint64(i*3), 0, uint64(i), uint64(i), nil)
		}
		c1, _ := serial.BatchAccess(check.Clone())
		c2, _ := par.BatchAccess(check.Clone())
		m = map[uint64][]byte{}
		for i := 0; i < c1.Len(); i++ {
			m[c1.Key[i]] = c1.Block(i)
		}
		for i := 0; i < c2.Len(); i++ {
			if !bytes.Equal(c2.Block(i), m[c2.Key[i]]) {
				t.Fatalf("workers=%d: stored state diverged at key %d", workers, c2.Key[i])
			}
		}
	}
}

func TestSealedMatchesPlain(t *testing.T) {
	plain := newLoaded(t, Config{}, 60)
	sealed := newLoaded(t, Config{Sealed: true, Workers: 2}, 60)
	reqs := batchOf(
		[3]interface{}{store.OpWrite, uint64(9), value(9, 5)},
		[3]interface{}{store.OpRead, uint64(12), nil},
	)
	o1, err1 := plain.BatchAccess(reqs.Clone())
	o2, err2 := sealed.BatchAccess(reqs.Clone())
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for _, key := range []uint64{9, 12} {
		if !bytes.Equal(o1.Block(respFor(t, o1, key)), o2.Block(respFor(t, o2, key))) {
			t.Fatalf("sealed/plain diverge on key %d", key)
		}
	}
	r := batchOf([3]interface{}{store.OpRead, uint64(9), nil})
	o3, err := sealed.BatchAccess(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(o3.Block(0), value(9, 5)) {
		t.Fatal("sealed store lost a write")
	}
}

func TestInitValidation(t *testing.T) {
	s := New(Config{BlockSize: testBlock})
	if err := s.Init([]uint64{1, 1}, make([]byte, 2*testBlock)); err == nil {
		t.Fatal("duplicate ids accepted")
	}
	if err := s.Init([]uint64{store.DummyKeyBit | 1}, make([]byte, testBlock)); err == nil {
		t.Fatal("dummy-space id accepted")
	}
	if err := s.Init([]uint64{1}, make([]byte, 5)); err == nil {
		t.Fatal("bad data length accepted")
	}
}

func TestStatsPopulated(t *testing.T) {
	s := newLoaded(t, Config{}, 50)
	if _, err := s.BatchAccess(batchOf([3]interface{}{store.OpRead, uint64(0), nil})); err != nil {
		t.Fatal(err)
	}
	st := s.LastStats()
	if st.Build <= 0 || st.Scan <= 0 || st.Extract <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}
