package suboram

import (
	"bytes"
	"math/rand"
	"testing"

	"snoopy/internal/crypt"
	"snoopy/internal/segstore"
	"snoopy/internal/store"
)

// storeSegBlocks is the segment geometry for disk-resident tests: with
// 8-block segments the scan buffer holds 8 blocks, so the 200-block test
// partitions are 25× larger than the streaming buffer — comfortably past
// the 8× bar the subsystem is specified against.
const storeSegBlocks = 8

func newStoreBacked(t *testing.T, cfg Config, n int) *SubORAM {
	t.Helper()
	if cfg.BlockSize == 0 {
		cfg.BlockSize = testBlock
	}
	ss, err := segstore.Open(t.TempDir(), segstore.Options{
		BlockSize:     cfg.BlockSize,
		SegmentBlocks: storeSegBlocks,
		Key:           crypt.MustNewKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ss.Close() })
	cfg.Store = ss
	return newLoaded(t, cfg, n)
}

func TestStoreMatchesPlain(t *testing.T) {
	plain := newLoaded(t, Config{}, 200)
	disk := newStoreBacked(t, Config{}, 200)
	reqs := batchOf(
		[3]interface{}{store.OpWrite, uint64(9), value(9, 5)},
		[3]interface{}{store.OpRead, uint64(12), nil},
		[3]interface{}{store.OpRead, uint64(1), nil}, // absent
	)
	o1, err1 := plain.BatchAccess(reqs.Clone())
	o2, err2 := disk.BatchAccess(reqs.Clone())
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for _, key := range []uint64{9, 12, 1} {
		if !bytes.Equal(o1.Block(respFor(t, o1, key)), o2.Block(respFor(t, o2, key))) {
			t.Fatalf("disk/plain diverge on key %d", key)
		}
	}
	r := batchOf([3]interface{}{store.OpRead, uint64(9), nil})
	o3, err := disk.BatchAccess(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(o3.Block(0), value(9, 5)) {
		t.Fatal("disk-resident store lost a write")
	}
}

func TestStoreRandomizedAgainstShadow(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const n = 200
	s := newStoreBacked(t, Config{Strict: true}, n)
	shadow := map[uint64][]byte{}
	for i := 0; i < n; i++ {
		shadow[uint64(i*3)] = value(uint64(i*3), 0)
	}
	for round := 0; round < 5; round++ {
		perm := rng.Perm(n)
		k := 30 + rng.Intn(60)
		reqs := store.NewRequests(k, testBlock)
		expect := map[uint64][]byte{}
		writes := map[uint64][]byte{}
		for i := 0; i < k; i++ {
			key := uint64(perm[i] * 3)
			if rng.Intn(2) == 0 {
				reqs.SetRow(i, store.OpRead, key, 0, uint64(i), uint64(i), nil)
			} else {
				v := value(key, 200+round)
				reqs.SetRow(i, store.OpWrite, key, 0, uint64(i), uint64(i), v)
				writes[key] = v
			}
			expect[key] = shadow[key]
		}
		out, err := s.BatchAccess(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < out.Len(); i++ {
			if !bytes.Equal(out.Block(i), expect[out.Key[i]]) {
				t.Fatalf("round %d key %d: got %q want %q", round, out.Key[i], out.Block(i), expect[out.Key[i]])
			}
		}
		for key, v := range writes {
			shadow[key] = v
		}
	}
}

func TestStoreParallelMatchesSerial(t *testing.T) {
	for _, workers := range []int{2, 3, 8} {
		serial := newStoreBacked(t, Config{Workers: 1}, 200)
		par := newStoreBacked(t, Config{Workers: workers}, 200)
		rng := rand.New(rand.NewSource(42))
		reqs := store.NewRequests(64, testBlock)
		perm := rng.Perm(200)
		for i := 0; i < 64; i++ {
			key := uint64(perm[i] * 3)
			if i%2 == 0 {
				reqs.SetRow(i, store.OpWrite, key, 0, uint64(i), uint64(i), value(key, 7))
			} else {
				reqs.SetRow(i, store.OpRead, key, 0, uint64(i), uint64(i), nil)
			}
		}
		o1, err1 := serial.BatchAccess(reqs.Clone())
		o2, err2 := par.BatchAccess(reqs.Clone())
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		m := map[uint64][]byte{}
		for i := 0; i < o1.Len(); i++ {
			m[o1.Key[i]] = o1.Block(i)
		}
		for i := 0; i < o2.Len(); i++ {
			if !bytes.Equal(o2.Block(i), m[o2.Key[i]]) {
				t.Fatalf("workers=%d: response mismatch for key %d", workers, o2.Key[i])
			}
		}
		check := store.NewRequests(200, testBlock)
		for i := 0; i < 200; i++ {
			check.SetRow(i, store.OpRead, uint64(i*3), 0, uint64(i), uint64(i), nil)
		}
		c1, _ := serial.BatchAccess(check.Clone())
		c2, _ := par.BatchAccess(check.Clone())
		m = map[uint64][]byte{}
		for i := 0; i < c1.Len(); i++ {
			m[c1.Key[i]] = c1.Block(i)
		}
		for i := 0; i < c2.Len(); i++ {
			if !bytes.Equal(c2.Block(i), m[c2.Key[i]]) {
				t.Fatalf("workers=%d: stored state diverged at key %d", workers, c2.Key[i])
			}
		}
	}
}

func TestStoreExportAndRestore(t *testing.T) {
	s := newStoreBacked(t, Config{}, 50)
	w := batchOf([3]interface{}{store.OpWrite, uint64(6), value(6, 1)})
	if _, err := s.BatchAccess(w); err != nil {
		t.Fatal(err)
	}
	ids, data, err := s.Export()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 50 || len(data) != 50*testBlock {
		t.Fatalf("export shape %d ids, %d bytes", len(ids), len(data))
	}
	if !bytes.Equal(data[2*testBlock:3*testBlock], value(6, 1)) {
		t.Fatal("export missed the written value")
	}

	// RestoreFromStore adopts the on-disk contents without re-streaming.
	if err := s.RestoreFromStore(ids); err != nil {
		t.Fatal(err)
	}
	r := batchOf([3]interface{}{store.OpRead, uint64(6), nil})
	out, err := s.BatchAccess(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Block(0), value(6, 1)) {
		t.Fatal("RestoreFromStore lost the partition contents")
	}

	// Shape mismatch fails closed.
	if err := s.RestoreFromStore(ids[:10]); err == nil {
		t.Fatal("RestoreFromStore accepted a mis-sized identifier set")
	}
}
