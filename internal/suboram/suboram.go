// Package suboram implements Snoopy's throughput-optimized subORAM (paper
// §5, Fig. 7, Fig. 19): an oblivious object store that only supports batched
// accesses. A batch of distinct requests is turned into an oblivious
// two-tier hash table; a single linear scan over the stored partition then
// services every request at once. The amortized per-request cost of the scan
// beats polylogarithmic ORAMs in the high-throughput regime the system
// targets.
//
// Obliviousness: the scan visits every object in a fixed order and, for each
// object, reads the two hash-table buckets its identifier maps to under
// fresh per-batch keys, touching every slot in both buckets with
// branch-free compare-and-set operations. Request contents influence no
// access position.
package suboram

import (
	"fmt"
	"sync"
	"time"

	"snoopy/internal/arena"
	"snoopy/internal/crypt"
	"snoopy/internal/enclave"
	"snoopy/internal/obliv"
	"snoopy/internal/ohash"
	"snoopy/internal/store"
	"snoopy/internal/telemetry"
	"snoopy/internal/trace"
)

// Config configures a subORAM.
type Config struct {
	// BlockSize is the object value size in bytes.
	BlockSize int
	// Hash configures two-tier hash table geometry; zero value means
	// ohash.DefaultParams.
	Hash ohash.Params
	// Workers bounds scan parallelism (paper Fig. 13b). 0 means 1.
	Workers int
	// Strict enables a (non-oblivious, debug-only) duplicate-key check on
	// incoming batches; production deployments rely on the load balancer's
	// guarantee (paper Definition 2).
	Strict bool
	// Sealed stores the partition in enclave-external encrypted memory with
	// in-enclave digests (paper §7). Slower, but models the real deployment
	// where the partition exceeds the EPC.
	Sealed bool
	// Store, when non-nil, keeps the partition in a disk-resident sealed
	// block store (internal/segstore) instead of memory: the linear scan
	// streams sealed segments through a pooled buffer, so the partition can
	// exceed memory by orders of magnitude. Mutually exclusive with Sealed.
	// Only object identifiers stay resident. The scan's I/O pattern remains
	// a function of public parameters (partition size, segment geometry).
	Store BlockStore
	// Rec, when non-nil, records the batch access trace. Test-only;
	// requires Workers == 1.
	Rec *trace.Recorder
	// TestHashKeys pins the per-batch hash keys so obliviousness tests can
	// compare traces across batches. Test-only; production must leave nil.
	TestHashKeys *[2]crypt.SipKey
	// Pool supplies per-batch working memory (response sets, worker table
	// copies). Nil means arena.Default.
	Pool *arena.Pool
	// Telemetry, when non-nil, records build/scan/extract durations and
	// batch/row counters. One recording per batch, payloads are the public
	// padded batch size α — never request contents; nil disables recording.
	Telemetry *telemetry.Registry
}

// BlockStore is the contract a disk-resident partition backend must meet
// (satisfied by *segstore.Store). The scan callback signature is spelled
// literally so implementations need no types from this package.
//
// Obliviousness contract: Scan must stream blocks [lo, hi) in a fixed order
// with an I/O pattern that is a function of (lo, hi) and public geometry
// only — never of block contents or of what fn does to them — and must
// invoke fn on every block exactly once, writing every block back whether
// or not fn changed it.
type BlockStore interface {
	// Format sizes the store for n blocks (zeroed); prior contents are
	// replaced.
	Format(n int) error
	// NumBlocks returns the formatted partition size in blocks.
	NumBlocks() int
	// ScanAlign returns the block alignment scan ranges must honor; worker
	// splits round to it so each segment is streamed by exactly one worker.
	ScanAlign() int
	// Scan streams blocks [lo, hi), applying fn to each block in place and
	// writing every block back. lo and hi must be ScanAlign()-aligned
	// (hi == NumBlocks() is always allowed). Concurrent calls over disjoint
	// aligned ranges must be safe.
	Scan(lo, hi int, fn func(i int, blk []byte)) error
	// LoadRange bulk-writes packed block data starting at block index start.
	LoadRange(start int, data []byte) error
	// ReadBlock copies block i into dst (export/recovery path, not the
	// batch hot path).
	ReadBlock(i int, dst []byte) error
}

// Stats reports where a batch spent its time (paper Fig. 12's "SubORAM
// (process batch)" component, further broken down).
type Stats struct {
	Build   time.Duration // oblivious hash table construction
	Scan    time.Duration // linear scan over the partition
	Extract time.Duration // response compaction
}

// Total returns the end-to-end processing time.
func (s Stats) Total() time.Duration { return s.Build + s.Scan + s.Extract }

// SubORAM holds one data partition.
type SubORAM struct {
	cfg     Config
	builder *ohash.Builder // scratch reuse across batches (guarded by mu)

	mu     sync.Mutex // serializes batches (paper: fixed batch order)
	ids    []uint64
	plain  []byte               // plain mode: n×BlockSize
	sealed *enclave.SealedStore // sealed mode
	last   Stats

	// Per-batch scratch, reused across batches (guarded by mu):
	zeroBlk    []byte        // the all-zero miss response block
	workTables []ohash.Table // scan-worker table copies (structs reused)
	workErrs   []error
	// noutScratch backs BatchAccessN's returned slice (valid until the
	// next call, like every other per-batch scratch here).
	noutScratch []*store.Requests

	// Sealed-scan streaming buffers; sealedMu (not mu) guards them because
	// scan workers run while mu is held by BatchAccess.
	sealedMu   sync.Mutex
	sealedBufs [][]byte

	// Store-scan callback plumbing: one prebound closure per worker,
	// created once in New so steady-state store scans allocate nothing. The
	// closure reads its table through storeCtx (set per batch under mu,
	// before workers start).
	storeCtx []storeScanCtx
	storeFns []func(i int, blk []byte)

	// Telemetry instruments, resolved once at construction; all nil (and
	// no-ops) when Config.Telemetry is nil.
	telBuild   *telemetry.Histogram
	telScan    *telemetry.Histogram
	telExtract *telemetry.Histogram
	telBatches *telemetry.Counter
	telRows    *telemetry.Counter
}

// takeSealedBufs pops n block buffers off the sealed-scan free list,
// growing it as needed.
func (s *SubORAM) takeSealedBufs(n int) [][]byte {
	s.sealedMu.Lock()
	defer s.sealedMu.Unlock()
	for len(s.sealedBufs) < n {
		s.sealedBufs = append(s.sealedBufs, make([]byte, s.cfg.BlockSize))
	}
	// Copy the popped entries out: the tail slots are reused by later
	// appends, so handing out an aliasing subslice would race.
	bufs := make([][]byte, n)
	copy(bufs, s.sealedBufs[len(s.sealedBufs)-n:])
	s.sealedBufs = s.sealedBufs[:len(s.sealedBufs)-n]
	return bufs
}

func (s *SubORAM) returnSealedBufs(bufs [][]byte) {
	s.sealedMu.Lock()
	s.sealedBufs = append(s.sealedBufs, bufs...)
	s.sealedMu.Unlock()
}

// New creates an empty subORAM.
func New(cfg Config) *SubORAM {
	if cfg.BlockSize <= 0 {
		panic("suboram: BlockSize must be positive")
	}
	if cfg.Hash == (ohash.Params{}) {
		cfg.Hash = ohash.DefaultParams()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Store != nil && cfg.Sealed {
		panic("suboram: Store and Sealed are mutually exclusive")
	}
	hp := cfg.Hash
	hp.Rec = cfg.Rec
	hp.Pool = cfg.Pool
	s := &SubORAM{
		cfg:        cfg,
		builder:    ohash.NewBuilder(hp),
		zeroBlk:    make([]byte, cfg.BlockSize),
		telBuild:   cfg.Telemetry.Histogram("suboram_build", nil),
		telScan:    cfg.Telemetry.Histogram("suboram_scan", nil),
		telExtract: cfg.Telemetry.Histogram("suboram_extract", nil),
		telBatches: cfg.Telemetry.Counter("suboram_batches_total"),
		telRows:    cfg.Telemetry.Counter("suboram_rows_total"),
	}
	if cfg.Store != nil {
		s.storeCtx = make([]storeScanCtx, cfg.Workers)
		s.storeFns = make([]func(i int, blk []byte), cfg.Workers)
		for w := range s.storeFns {
			w := w
			s.storeFns[w] = func(i int, blk []byte) {
				s.scanOne(s.storeCtx[w].table, i, blk)
			}
		}
	}
	return s
}

// storeScanCtx carries one store-scan worker's per-batch table binding.
type storeScanCtx struct {
	table *ohash.Table
}

// pool returns the configured arena, defaulting to the process-wide one.
func (s *SubORAM) pool() *arena.Pool {
	if s.cfg.Pool != nil {
		return s.cfg.Pool
	}
	return arena.Default
}

// Init loads the partition: object i has identifier ids[i] and value
// data[i*BlockSize:(i+1)*BlockSize]. Identifiers must be distinct and below
// store.DummyKeyBit.
func (s *SubORAM) Init(ids []uint64, data []byte) error {
	if len(data) != len(ids)*s.cfg.BlockSize {
		return fmt.Errorf("suboram: data length %d != %d objects × %d bytes",
			len(data), len(ids), s.cfg.BlockSize)
	}
	seen := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		if id >= store.DummyKeyBit {
			return fmt.Errorf("suboram: object id %#x in dummy key space", id)
		}
		if seen[id] {
			return fmt.Errorf("suboram: duplicate object id %d", id)
		}
		seen[id] = true
	}
	return s.load(ids, data)
}

func (s *SubORAM) load(ids []uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ids = append([]uint64(nil), ids...)
	if s.cfg.Store != nil {
		// Disk-resident: size the store for the partition and stream the
		// values in. Only the identifiers stay memory-resident (they drive
		// the bucket addressing and must not hit the disk in the clear).
		if err := s.cfg.Store.Format(len(ids)); err != nil {
			return err
		}
		if err := s.cfg.Store.LoadRange(0, data); err != nil {
			return err
		}
		s.plain = nil
		s.sealed = nil
		return nil
	}
	if s.cfg.Sealed {
		st, err := enclave.NewSealedStore(len(ids), s.cfg.BlockSize)
		if err != nil {
			return err
		}
		for i := range ids {
			st.Write(i, data[i*s.cfg.BlockSize:(i+1)*s.cfg.BlockSize])
		}
		s.sealed = st
		s.plain = nil
	} else {
		s.plain = append([]byte(nil), data...)
		s.sealed = nil
	}
	return nil
}

// NumObjects returns the partition size.
func (s *SubORAM) NumObjects() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ids)
}

// LastStats returns the timing breakdown of the most recent batch.
func (s *SubORAM) LastStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// BatchAccess processes a batch of requests with distinct keys and returns
// one response row per request (paper Fig. 19). Read responses carry the
// object value; write responses carry the pre-write value (§C); requests
// for absent keys (including load-balancer dummies) come back zeroed with
// Aux == 0. The input batch is not modified.
func (s *SubORAM) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batchAccessLocked(reqs)
}

// BatchAccessN executes a whole epoch's batches — one per load balancer,
// in the fixed load-balancer order linearizability depends on — under a
// single lock acquisition (core.BatchedSubORAMClient). The returned slice
// is internal scratch reused by the next call; the *store.Requests it
// points at are the caller's to release as usual.
func (s *SubORAM) BatchAccessN(reqs []*store.Requests) ([]*store.Requests, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cap(s.noutScratch) < len(reqs) {
		s.noutScratch = make([]*store.Requests, len(reqs))
	}
	outs := s.noutScratch[:len(reqs)]
	for i, r := range reqs {
		out, err := s.batchAccessLocked(r)
		if err != nil {
			// All-or-nothing for the caller: already-produced responses
			// would never be matched, so give them back to the arena.
			pool := s.pool()
			for j := 0; j < i; j++ {
				pool.PutRequests(outs[j])
				outs[j] = nil
			}
			return nil, err
		}
		outs[i] = out
	}
	return outs, nil
}

func (s *SubORAM) batchAccessLocked(reqs *store.Requests) (*store.Requests, error) {
	if reqs.BlockSize != s.cfg.BlockSize {
		return nil, fmt.Errorf("suboram: batch block size %d != %d", reqs.BlockSize, s.cfg.BlockSize)
	}
	if s.cfg.Strict {
		seen := make(map[uint64]bool, reqs.Len())
		for _, k := range reqs.Key {
			if seen[k] {
				return nil, fmt.Errorf("suboram: duplicate request key %#x in batch", k)
			}
			seen[k] = true
		}
	}

	var st Stats
	t0 := time.Now()
	tt0 := s.cfg.Telemetry.Now()
	var table *ohash.Table
	var err error
	if s.cfg.TestHashKeys != nil {
		hp := s.cfg.Hash
		hp.Rec = s.cfg.Rec
		table, err = ohash.BuildWithKeys(reqs, hp, s.cfg.TestHashKeys[0], s.cfg.TestHashKeys[1])
	} else {
		table, err = s.builder.Build(reqs)
	}
	if err != nil {
		return nil, err
	}
	st.Build = time.Since(t0)
	tt1 := s.cfg.Telemetry.Now()
	s.telBuild.Observe(time.Duration(tt1 - tt0))

	t0 = time.Now()
	if err := s.scan(table); err != nil {
		return nil, err
	}
	// Requests whose key matched no stored object return zeroes.
	for _, tier := range [2]*store.Requests{table.Tier1, table.Tier2} {
		for i := 0; i < tier.Len(); i++ {
			miss := tier.Tag[i] & obliv.Not(tier.Aux[i])
			obliv.CondCopyBytes(miss, tier.Block(i), s.zeroBlk)
		}
	}
	st.Scan = time.Since(t0)
	tt2 := s.cfg.Telemetry.Now()
	s.telScan.Observe(time.Duration(tt2 - tt1))

	t0 = time.Now()
	out := table.Extract()
	st.Extract = time.Since(t0)
	s.last = st
	// One recording per batch; the row payload is the public padded batch
	// size α, identical across workloads with the same public parameters.
	s.telExtract.Observe(time.Duration(s.cfg.Telemetry.Now() - tt2))
	s.telBatches.Inc()
	s.telRows.Add(uint64(reqs.Len()))
	return out, nil
}

// scan runs the linear pass over the partition, fanning out across workers.
// Each worker owns a disjoint object range and a private copy of the hash
// table; copies are obliviously merged by found-bit afterwards, so
// concurrent workers never race on table slots.
func (s *SubORAM) scan(table *ohash.Table) error {
	n := len(s.ids)
	workers := s.cfg.Workers
	if workers > n {
		workers = maxInt(1, n)
	}
	if workers <= 1 || n == 0 {
		return s.scanRange(table, 0, n, 0)
	}

	// Worker table copies come from the arena (the structs themselves are
	// reused across batches); worker 0 scans the primary table in place.
	pool := s.pool()
	if cap(s.workTables) < workers {
		s.workTables = make([]ohash.Table, workers)
		s.workErrs = make([]error, workers)
	}
	copies := s.workTables[:workers]
	errs := s.workErrs[:workers]
	for w := 1; w < workers; w++ {
		copies[w] = ohash.Table{Geom: table.Geom, K1: table.K1, K2: table.K2}
		copies[w].Tier1 = pool.GetRequests(table.Tier1.Len(), table.Tier1.BlockSize)
		copies[w].Tier1.CopyPrefix(table.Tier1)
		copies[w].Tier2 = pool.GetRequests(table.Tier2.Len(), table.Tier2.BlockSize)
		copies[w].Tier2.CopyPrefix(table.Tier2)
	}
	var wg sync.WaitGroup
	per := (n + workers - 1) / workers
	if s.cfg.Store != nil {
		// Store ranges split on segment boundaries so every sealed segment
		// is streamed by exactly one worker — the split depends only on
		// public geometry (n, workers, segment size).
		align := s.cfg.Store.ScanAlign()
		per = (per + align - 1) / align * align
	}
	for w := 0; w < workers; w++ {
		lo, hi := w*per, minInt((w+1)*per, n)
		if lo >= hi {
			errs[w] = nil
			continue
		}
		w, lo, hi := w, lo, hi
		tbl := table
		if w > 0 {
			tbl = &copies[w]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[w] = s.scanRange(tbl, lo, hi, w)
		}()
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	// Merge worker copies back into the primary table: a slot changed only
	// in the copy whose object range contained the matching key. Then
	// release the copies' tier storage back to the arena.
	for w := 1; w < workers; w++ {
		if firstErr == nil {
			mergeTier(table.Tier1, copies[w].Tier1)
			mergeTier(table.Tier2, copies[w].Tier2)
		}
		pool.PutRequests(copies[w].Tier1)
		pool.PutRequests(copies[w].Tier2)
		copies[w] = ohash.Table{}
	}
	return firstErr
}

func mergeTier(dst, src *store.Requests) {
	for i := 0; i < dst.Len(); i++ {
		c := src.Aux[i]
		obliv.CondCopyBytes(c, dst.Block(i), src.Block(i))
		obliv.CondSetU8(c, &dst.Aux[i], 1)
	}
}

// scanRange scans objects [lo, hi) against the table; w is the worker index
// (selects the prebound store-scan closure in store mode).
func (s *SubORAM) scanRange(table *ohash.Table, lo, hi, w int) error {
	if s.cfg.Store != nil {
		s.storeCtx[w].table = table
		return s.cfg.Store.Scan(lo, hi, s.storeFns[w])
	}
	if s.sealed != nil {
		return s.scanRangeSealed(table, lo, hi)
	}
	for i := lo; i < hi; i++ {
		blk := s.plain[i*s.cfg.BlockSize : (i+1)*s.cfg.BlockSize]
		s.scanOne(table, i, blk)
	}
	return nil
}

// scanOne applies one object's bucket scans.
func (s *SubORAM) scanOne(table *ohash.Table, i int, blk []byte) {
	id := s.ids[i]
	s.cfg.Rec.Record(trace.KindTouch, i, 0)
	lo1, hi1, lo2, hi2 := table.Buckets(id)
	scanBucket(table.Tier1, lo1, hi1, id, blk)
	scanBucket(table.Tier2, lo2, hi2, id, blk)
}

// scanRangeSealed implements the paper's §7 paging optimization: a host
// loader thread streams (decrypts) upcoming blocks into a shared buffer
// ahead of the scan, and a write-back thread re-seals processed blocks
// behind it, so the enclave compute loop never stalls on storage. Every
// block is written back whether or not it changed — ciphertext churn is
// identical for reads and writes.
func (s *SubORAM) scanRangeSealed(table *ohash.Table, lo, hi int) error {
	type item struct {
		i   int
		buf []byte
		err error
	}
	const depth = 16
	// The streaming buffers live on the SubORAM and are reused by every
	// sealed scan; with Workers > 1 each concurrent range takes its own
	// disjoint set from the shared free list.
	bufs := s.takeSealedBufs(depth)
	defer s.returnSealedBufs(bufs)
	free := make(chan []byte, depth)
	for _, b := range bufs {
		free <- b
	}
	loaded := make(chan item, depth)
	go func() { // host loader thread
		for i := lo; i < hi; i++ {
			buf := <-free
			if err := s.sealed.Read(i, buf); err != nil {
				loaded <- item{err: err}
				close(loaded)
				return
			}
			loaded <- item{i: i, buf: buf}
		}
		close(loaded)
	}()
	writeback := make(chan item, depth)
	wbDone := make(chan struct{})
	go func() { // write-back thread
		defer close(wbDone)
		for it := range writeback {
			s.sealed.Write(it.i, it.buf)
			free <- it.buf
		}
	}()
	var firstErr error
	for it := range loaded {
		if it.err != nil {
			if firstErr == nil {
				firstErr = it.err
			}
			continue
		}
		if firstErr == nil {
			s.scanOne(table, it.i, it.buf)
		}
		writeback <- it
	}
	close(writeback)
	<-wbDone
	return firstErr
}

// scanBucket applies the double oblivious compare-and-set of Fig. 7 step ➋
// to every slot of one bucket.
func scanBucket(tier *store.Requests, lo, hi int, id uint64, blk []byte) {
	for sl := lo; sl < hi; sl++ {
		tier.Touch(sl)
		eq := obliv.EqU64(tier.Key[sl], id) & tier.Tag[sl]
		isW := obliv.EqU8(tier.Op[sl], store.OpWrite)
		cw := eq & isW
		cr := eq & obliv.Not(isW)
		obliv.FusedAccess(cw, cr, blk, tier.Block(sl))
		obliv.CondSetU8(eq, &tier.Aux[sl], 1)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Restore loads the partition from a trusted state image, skipping Init's
// duplicate/dummy-space validation: the import hook internal/persist uses
// for crash recovery, where the image was authenticated (sealed by this
// same enclave) and already validated when first loaded. Behaviour is
// otherwise identical to Init.
func (s *SubORAM) Restore(ids []uint64, data []byte) error {
	if len(data) != len(ids)*s.cfg.BlockSize {
		return fmt.Errorf("suboram: data length %d != %d objects × %d bytes",
			len(data), len(ids), s.cfg.BlockSize)
	}
	return s.load(ids, data)
}

// RestoreFromStore adopts an already-populated disk-resident partition: the
// block values live in the configured Store (authenticated and
// rollback-checked by the persistence layer before this call) and only the
// identifier set is loaded. This is the crash-recovery path for store-mode
// partitions, where re-streaming every value through Restore would double
// the recovery I/O for no benefit.
func (s *SubORAM) RestoreFromStore(ids []uint64) error {
	if s.cfg.Store == nil {
		return fmt.Errorf("suboram: RestoreFromStore without a configured store")
	}
	if got := s.cfg.Store.NumBlocks(); got != len(ids) {
		return fmt.Errorf("suboram: store holds %d blocks, identifier set names %d", got, len(ids))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ids = append([]uint64(nil), ids...)
	s.plain = nil
	s.sealed = nil
	return nil
}

// Export returns a copy of the partition contents (ids and packed data) —
// the state-migration path used when switching subORAM engines
// (internal/adaptive) and by replication tooling.
func (s *SubORAM) Export() (ids []uint64, data []byte, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids = append([]uint64(nil), s.ids...)
	data = make([]byte, len(s.ids)*s.cfg.BlockSize)
	if s.cfg.Store != nil {
		for i := range s.ids {
			if err := s.cfg.Store.ReadBlock(i, data[i*s.cfg.BlockSize:(i+1)*s.cfg.BlockSize]); err != nil {
				return nil, nil, err
			}
		}
		return ids, data, nil
	}
	if s.sealed != nil {
		for i := range s.ids {
			if err := s.sealed.Read(i, data[i*s.cfg.BlockSize:(i+1)*s.cfg.BlockSize]); err != nil {
				return nil, nil, err
			}
		}
		return ids, data, nil
	}
	copy(data, s.plain)
	return ids, data, nil
}
