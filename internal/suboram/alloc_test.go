package suboram

import (
	"math/rand"
	"testing"

	"snoopy/internal/arena"
	"snoopy/internal/store"
	"snoopy/internal/telemetry"
)

// TestBatchAccessZeroAllocSteadyState: with a warm arena, processing a
// batch — table build, linear scan, extraction — performs zero heap
// allocations. Workers is pinned to 1; the parallel scan spawns goroutines,
// which allocate by nature.
func TestBatchAccessZeroAllocSteadyState(t *testing.T) {
	pool := arena.NewPool()
	const block = 32
	sub := New(Config{BlockSize: block, Workers: 1, Pool: pool})

	nObj := 512
	ids := make([]uint64, nObj)
	data := make([]byte, nObj*block)
	for i := range ids {
		ids[i] = uint64(i)
		data[i*block] = byte(i)
	}
	if err := sub.Init(ids, data); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(53))
	reqs := store.NewRequests(64, block)
	perm := rng.Perm(nObj)
	for i := 0; i < reqs.Len(); i++ {
		reqs.SetRow(i, store.OpRead, uint64(perm[i]), 0, uint64(i), uint64(i), nil)
	}

	out, err := sub.BatchAccess(reqs)
	if err != nil {
		t.Fatal(err)
	}
	pool.PutRequests(out)

	allocs := testing.AllocsPerRun(20, func() {
		out, err := sub.BatchAccess(reqs)
		if err != nil {
			t.Fatal(err)
		}
		pool.PutRequests(out)
	})
	if allocs != 0 {
		t.Fatalf("warm BatchAccess allocated %.1f times per run, want 0", allocs)
	}
}

// TestBatchAccessZeroAllocWithTelemetry: wiring a telemetry registry — with
// an access-trace sink attached, the worst case — must not reintroduce
// allocations into the warm batch path. Observing histograms, bumping
// counters, and recording stage timings are all allocation-free by design.
func TestBatchAccessZeroAllocWithTelemetry(t *testing.T) {
	pool := arena.NewPool()
	const block = 32
	reg := telemetry.NewRegistry()
	reg.SetTrace(telemetry.NewTraceSink())
	sub := New(Config{BlockSize: block, Workers: 1, Pool: pool, Telemetry: reg})

	nObj := 512
	ids := make([]uint64, nObj)
	data := make([]byte, nObj*block)
	for i := range ids {
		ids[i] = uint64(i)
	}
	if err := sub.Init(ids, data); err != nil {
		t.Fatal(err)
	}

	reqs := store.NewRequests(64, block)
	for i := 0; i < reqs.Len(); i++ {
		reqs.SetRow(i, store.OpRead, uint64(i), 0, uint64(i), uint64(i), nil)
	}
	out, err := sub.BatchAccess(reqs)
	if err != nil {
		t.Fatal(err)
	}
	pool.PutRequests(out)

	allocs := testing.AllocsPerRun(20, func() {
		out, err := sub.BatchAccess(reqs)
		if err != nil {
			t.Fatal(err)
		}
		pool.PutRequests(out)
	})
	if allocs != 0 {
		t.Fatalf("instrumented warm BatchAccess allocated %.1f times per run, want 0", allocs)
	}
	if reg.Counter("suboram_batches_total").Value() == 0 {
		t.Fatal("telemetry not recording — guard is vacuous")
	}
}
