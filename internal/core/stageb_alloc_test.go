package core

import (
	"testing"
	"time"

	"snoopy/internal/arena"
	"snoopy/internal/loadbalancer"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
)

// stubBatched is a BatchedSubORAMClient that answers from preallocated
// responses, isolating the engine's dispatch overhead from partition work.
type stubBatched struct {
	outs   []*store.Requests
	nCalls int
	one    int
}

func (s *stubBatched) Init(ids []uint64, data []byte) error { return nil }

func (s *stubBatched) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	s.one++
	return s.outs[0], nil
}

func (s *stubBatched) BatchAccessN(reqs []*store.Requests) ([]*store.Requests, error) {
	s.nCalls++
	return s.outs[:len(reqs)], nil
}

// TestPartStageBZeroAlloc guards the stage-B worker-pool dispatch path:
// gathering an epoch's live batches into the per-partition scratch,
// handing them to the partition (batched fast path), and scattering the
// responses must allocate nothing — the PR 2 zero-alloc contract extended
// to the overlapped engine. Both the BatchAccessN fast path (L > 1) and
// the per-batch fallback are pinned.
func TestPartStageBZeroAlloc(t *testing.T) {
	const L, S, perSub = 3, 1, 4
	stub := &stubBatched{}
	for i := 0; i < L; i++ {
		stub.outs = append(stub.outs, store.NewRequests(perSub, testBlock))
	}
	sys, err := NewWithSubORAMs(Config{
		BlockSize: testBlock, NumLoadBalancers: L, Lambda: 32,
	}, []SubORAMClient{stub})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)

	job := &epochJob{
		id:        1,
		eps:       make([]lbEpoch, L),
		responses: make([][]*store.Requests, L),
		subWall:   make([]time.Duration, S),
		subErr:    make([]error, S),
		subUsed:   make([]SubORAMClient, S),
	}
	for i := range job.eps {
		job.eps[i].batches = &loadbalancer.Batches{
			All:    store.NewRequests(S*perSub, testBlock),
			PerSub: perSub,
		}
		job.eps[i].perSub = perSub
		job.responses[i] = make([]*store.Requests, S)
	}

	sys.partStageB(job, 0) // warm scratch
	allocs := testing.AllocsPerRun(100, func() {
		job.id++
		sys.partStageB(job, 0)
	})
	if allocs != 0 {
		t.Fatalf("stage-B batched dispatch allocates %.1f per epoch, want 0", allocs)
	}
	if stub.nCalls == 0 {
		t.Fatal("batched fast path never taken — guard is vacuous")
	}
	if job.responses[L-1][0] != stub.outs[L-1] {
		t.Fatal("responses not scattered positionally")
	}

	// Per-batch fallback (a client without BatchAccessN): same contract.
	for i := range job.eps {
		job.eps[i].err = nil
	}
	plain := suboram.New(suboram.Config{BlockSize: testBlock})
	ids := make([]uint64, perSub)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	if err := plain.Init(ids, make([]byte, perSub*testBlock)); err != nil {
		t.Fatal(err)
	}
	sys2, err := NewWithSubORAMs(Config{
		BlockSize: testBlock, NumLoadBalancers: L, Lambda: 32,
	}, []SubORAMClient{&noBatchN{plain}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys2.Close)
	for i := range job.eps {
		all := job.eps[i].batches.All
		for r := 0; r < all.Len(); r++ {
			all.SetRow(r, store.OpRead, uint64(r+1), 0, uint64(r), uint64(r), nil)
		}
	}
	sys2.partStageB(job, 0)
	releaseResponses(job, S)
	allocs = testing.AllocsPerRun(100, func() {
		job.id++
		sys2.partStageB(job, 0)
		releaseResponses(job, S)
	})
	if allocs != 0 {
		t.Fatalf("stage-B per-batch dispatch allocates %.1f per epoch, want 0", allocs)
	}
}

// noBatchN hides a partition's BatchAccessN so the engine takes the
// per-batch fallback.
type noBatchN struct{ inner *suboram.SubORAM }

func (n *noBatchN) Init(ids []uint64, data []byte) error { return n.inner.Init(ids, data) }
func (n *noBatchN) BatchAccess(r *store.Requests) (*store.Requests, error) {
	return n.inner.BatchAccess(r)
}

func releaseResponses(job *epochJob, S int) {
	for i := range job.responses {
		for s := 0; s < S; s++ {
			if job.responses[i][s] != nil {
				arena.Default.PutRequests(job.responses[i][s])
				job.responses[i][s] = nil
			}
		}
	}
}
