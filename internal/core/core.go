// Package core assembles Snoopy's components into the full system of §3.1:
// L independent oblivious load balancers in front of S subORAM partitions,
// processing client requests in synchronized epochs.
//
// Concurrency model (paper §4.3, §C): clients enqueue requests with any load
// balancer at any time; at each epoch boundary every load balancer
// independently deduplicates and batches its pending requests; every
// subORAM then executes the L batches in fixed load-balancer order; finally
// each load balancer obliviously matches responses and replies. The
// resulting history is linearizable: operations are ordered by (epoch, load
// balancer, reads-before-writes, sequence), and a read always observes the
// latest write ordered before it.
package core

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"snoopy/internal/arena"
	"snoopy/internal/crypt"
	"snoopy/internal/loadbalancer"
	"snoopy/internal/persist"
	"snoopy/internal/segstore"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
	"snoopy/internal/telemetry"
	"snoopy/internal/trace"
)

// SubORAMClient is the interface the system needs from a partition: local
// (in-process) subORAMs and remote (transport-backed) ones both satisfy it.
type SubORAMClient interface {
	// Init loads the partition contents.
	Init(ids []uint64, data []byte) error
	// BatchAccess executes one batch of distinct requests.
	BatchAccess(reqs *store.Requests) (*store.Requests, error)
}

// BatchedSubORAMClient is the optional fast path for clients that can
// execute a whole epoch's worth of batches (one per load balancer) in a
// single exchange — a remote partition turns L round trips and L AEAD
// seals into one of each. Batches must be applied in slice order (the
// fixed load-balancer order linearizability depends on). The returned
// slice itself (not the Requests it points at) is only valid until the
// next BatchAccessN call on the same client.
type BatchedSubORAMClient interface {
	SubORAMClient
	BatchAccessN(reqs []*store.Requests) ([]*store.Requests, error)
}

// ErrClosed is returned for requests submitted after Close.
var ErrClosed = errors.New("core: system closed")

// ErrOverflow is returned for requests dropped by per-subORAM batch
// overflow — the Theorem-3 event whose probability the batch-sizing
// function makes negligible. A dropped request was never sent to its
// partition, so failing it explicitly is the only truthful answer.
var ErrOverflow = errors.New("core: request dropped by batch overflow")

// Config configures a Snoopy deployment.
type Config struct {
	// BlockSize is the object value size in bytes.
	BlockSize int
	// NumLoadBalancers is L.
	NumLoadBalancers int
	// LBLeaves, when > 1, replaces each monolithic load balancer with a
	// two-level oblivious aggregation tree: that many leaf balancers each
	// sort + locally deduplicate their own clients' requests, and a root
	// merges the already-sorted runs (O(n log n) instead of a fresh
	// O(n log² n) sort). 0 or 1 keeps the single-balancer plane. The tree
	// shape is public deployment configuration.
	LBLeaves int
	// LBFanIn caps the root's merge fan-in (defaults to LBLeaves). Public.
	LBFanIn int
	// NumSubORAMs is S (used only by NewLocal; NewWithSubORAMs infers it).
	NumSubORAMs int
	// Lambda is the security parameter for batch sizing.
	Lambda int
	// EpochDuration is the batching interval. Zero disables the internal
	// ticker; epochs then run only via Flush (deterministic tests).
	EpochDuration time.Duration
	// SubORAMWorkers and SortWorkers bound per-node parallelism.
	SubORAMWorkers int
	SortWorkers    int
	// Sealed stores partitions in enclave-external encrypted memory.
	Sealed bool
	// Strict enables debug validation inside subORAMs.
	Strict bool
	// Pipeline overlaps epoch stages (paper §6: "we can pipeline the
	// subORAM and load balancer processing"): while the subORAMs execute
	// epoch e, the load balancers batch epoch e+1 and match epoch e-1.
	// Flush then returns once the epoch is *dispatched*; per-request
	// completion still blocks until its epoch finishes.
	Pipeline bool
	// PipelineDepth bounds the number of epochs in flight at once
	// (dispatched but not yet fully replied) when Pipeline is on. Flush
	// blocks once the bound is reached — the backpressure that keeps the
	// arena working set and reply latency bounded. 0 picks a default from
	// public parameters (GOMAXPROCS, clamped to [2,4]); the depth, like
	// every scheduling parameter, is public deployment configuration: the
	// dispatch cadence it produces depends only on epoch timing and batch
	// sizes the network adversary already observes.
	PipelineDepth int
	// DataDir, when non-empty, makes every local partition durable
	// (internal/persist): sealed snapshots plus a sealed write-ahead log
	// under DataDir/part-NNN, the oblivious routing key sealed at
	// DataDir/route.key, and automatic crash recovery when the directory
	// already holds state. Only NewLocal honors it; remote partitions
	// persist on their own hosts (snoopy-server -data).
	DataDir string
	// DiskResident keeps partition block values on disk in sealed segments
	// (internal/segstore) instead of memory, letting a partition exceed RAM
	// by orders of magnitude: batches stream the oblivious scan over the
	// sealed segment file with redo-log durability. Requires DataDir.
	// Mutually exclusive with Sealed.
	DiskResident bool
	// SegmentBytes is the disk-resident segment size in bytes (default
	// 512 blocks' worth): the streaming-scan buffer and write-back
	// granularity, rounded down to a whole number of blocks. A public
	// parameter — the scan's I/O shape is a function of it and the
	// partition size only.
	SegmentBytes int

	// FailoverAfter trips automatic failover for a partition after that
	// many consecutive failed epochs (0 disables). Like every timing and
	// threshold parameter in the system, it is public deployment
	// configuration — failover timing reveals only that a partition is
	// down, which the epoch schedule already makes public.
	FailoverAfter int
	// Failover is invoked, at most once in flight per partition, when a
	// partition trips the detector. It returns a replacement client
	// (typically a standby replica promoted via internal/replica, or a node
	// freshly restored from internal/persist sealed state) that serves the
	// partition from the next epoch on. Returning an error (or nil) leaves
	// the old client in place; the attempt is retried while the partition
	// keeps failing. The old client is passed so the hook can close it or
	// salvage state.
	Failover FailoverFunc
	// OnFailover, when set, observes every failover attempt: took is the
	// time from the partition's first failed epoch of this outage (the
	// time-to-recovery on success), err is nil when a replacement was
	// promoted.
	OnFailover func(part int, took time.Duration, err error)

	// JournalDir, when non-empty, makes the root load balancer itself
	// crash-tolerant: before every epoch's stage-B dispatch the system
	// durably journals the merged batches, the client→reply routing tables,
	// and the per-partition delivery tags to a sealed epoch journal
	// (internal/persist). On reopen — the same process restarting, or a
	// standby root promoted over the same directory — journaled-but-
	// incomplete epochs are replayed against the partitions under their
	// original (lbID, seq) tags, so partitions that already applied a batch
	// answer from their replay caches and the epoch commits exactly once.
	// The journal also pins the oblivious routing key (JournalDir/route.key)
	// so a successor routes and matches identically.
	JournalDir string
	// JournalRec, when non-nil, receives the journal's host-visible I/O
	// trace (offsets and lengths) — the leakage suite asserts it is
	// byte-identical across secret-differing workloads.
	JournalRec *trace.Recorder
	// ReplyWindow bounds the root's reply-dedupe window: the last that many
	// successfully answered idempotent request IDs are remembered so a
	// client retry of an already-answered request returns the original
	// result instead of re-executing. 0 picks 4096. Public configuration.
	ReplyWindow int

	// TestCrashPoint, when set, is consulted at named points inside Flush
	// ("stage-a": after batching, before journaling; "journal": after the
	// journal commit, before dispatch; "dispatch": after partitions
	// executed, before any reply). Returning true simulates a root crash at
	// that point: the system stops silently — no replies, no further epochs
	// — exactly as a killed process would. Test hook (internal/chaos);
	// honored only in synchronous (non-Pipeline) mode.
	TestCrashPoint func(point string, epoch uint64) bool

	// Telemetry, when non-nil, records per-epoch stage spans (stage A
	// batching, per-partition stage B, stage C match/reply, the whole
	// epoch) and system counters, and is threaded into every component the
	// system builds (load balancers, local subORAMs, durable wrappers).
	// Every span tag is a public parameter: epoch number, partition index,
	// batch size α, request count R. Nil disables recording everywhere.
	Telemetry *telemetry.Registry

	// TestLBChoiceSeed, when non-zero, seeds the random client→load-balancer
	// assignment deterministically. That choice is public (paper §4.3:
	// clients randomly pick a load balancer, and the network adversary sees
	// which one each contacts); the leakage tests pin it so two runs differ
	// only in secrets. Production deployments leave it zero.
	TestLBChoiceSeed int64

	// routeKey pins the load balancers' partition-assignment key; set by
	// NewLocal when recovering a durable deployment so recovered objects
	// stay reachable at their original partitions.
	routeKey *crypt.Key
}

func (c *Config) fillDefaults() {
	if c.BlockSize <= 0 {
		c.BlockSize = 160
	}
	if c.NumLoadBalancers <= 0 {
		c.NumLoadBalancers = 1
	}
	if c.NumSubORAMs <= 0 {
		c.NumSubORAMs = 1
	}
	if c.Lambda <= 0 {
		c.Lambda = 128
	}
}

// EpochStats describes one completed epoch.
type EpochStats struct {
	Epoch       uint64
	Requests    int           // real client requests processed
	BatchSize   int           // max per-subORAM batch size α across LBs
	Dropped     int           // Theorem-3 overflow victims (expect 0)
	MakeBatch   time.Duration // max across load balancers
	SubORAM     time.Duration // max across subORAMs (sum over LB batches)
	Match       time.Duration // max across load balancers
	Wall        time.Duration // end-to-end epoch time
	LBWall      []time.Duration
	SubORAMWall []time.Duration
}

// result is what a waiting client receives.
type result struct {
	value []byte
	found bool
	err   error
}

type pending struct {
	op   uint8
	key  uint64
	user uint64
	// id is the client-chosen idempotency ID (0 = untracked): successful
	// results are parked in the reply window under it, and it travels into
	// the epoch journal so a successor root can route the reply.
	id   uint64
	data []byte
	ch   chan result
}

type lbState struct {
	bal loadbalancer.Balancer

	mu sync.Mutex
	// queues holds one pending-request queue per feed: the monolithic
	// balancer has a single feed, an aggregation tree one per leaf. Clients
	// are pinned to a (plane, feed) pair at submit, so a dead leaf fails
	// only its own clients.
	queues [][]pending
	// closed (guarded by mu, not the system-wide channel) makes the
	// enqueue-after-final-drain race impossible: Close sets it under mu
	// while draining, and submitAs re-checks it under the same mu before
	// appending, so no request can slip into a queue nobody will flush.
	closed bool
}

// FailoverFunc produces a replacement client for a partition whose
// consecutive-failure run tripped the detector (Config.FailoverAfter).
type FailoverFunc func(part int, old SubORAMClient) (SubORAMClient, error)

// HealthStats reports per-partition failure state, so operators (and the
// replication layer) can tell a transient blip from a dead partition.
type HealthStats struct {
	// ConsecutiveFailures[s] is the current run of epochs in which
	// partition s failed; it resets to zero on the first success.
	ConsecutiveFailures []int
	// TotalFailures[s] counts every epoch in which partition s failed.
	TotalFailures []uint64
	// Failovers[s] counts replacements promoted for partition s
	// (Config.Failover successes).
	Failovers []uint64
	// Repairing[s] reports a failover attempt currently in flight.
	Repairing []bool
	// LeafConsecutiveFailures[g] is the current run of epochs in which load
	// balancer feed g (global index plane*feedsPerPlane+leaf) failed to
	// build its run; zero-length when the plane is monolithic. A cluster
	// supervisor watches these to trip leaf-level repair (ResetLeaf or a
	// replacement RemoteLeaf).
	LeafConsecutiveFailures []int
	// LeafTotalFailures[g] counts every epoch in which feed g failed.
	LeafTotalFailures []uint64
}

// Healthy reports whether every partition is currently serving: no
// consecutive-failure run and no repair in flight. The chaos harness's
// convergence invariant checks this.
func (h HealthStats) Healthy() bool {
	for _, c := range h.ConsecutiveFailures {
		if c != 0 {
			return false
		}
	}
	for _, r := range h.Repairing {
		if r {
			return false
		}
	}
	for _, c := range h.LeafConsecutiveFailures {
		if c != 0 {
			return false
		}
	}
	return true
}

// System is a running Snoopy deployment.
type System struct {
	cfg Config
	lbs []*lbState
	// feedsPerPlane is Balancer.Feeds() of every plane (identical across
	// planes: one for monolithic, LBLeaves for a tree). Global feed index
	// g = plane*feedsPerPlane + feed addresses job.queues and leaf health.
	feedsPerPlane int

	// subsMu guards element swaps in subs: automatic failover (repair)
	// replaces a dead partition's client in place. Readers snapshot the
	// slice; the length never changes.
	subsMu sync.RWMutex
	subs   []SubORAMClient

	epochMu sync.Mutex // serializes epoch rounds (stage A)
	epoch   uint64

	statsMu    sync.Mutex
	lastEp     EpochStats
	totalDrops uint64
	health     HealthStats
	// downSince[s] is when partition s's current consecutive-failure run
	// began (zero when healthy) — the base for time-to-recovery reporting.
	downSince []time.Time
	repairWG  sync.WaitGroup

	// Stage-B execution plane: one long-lived worker per partition, each
	// draining its own FIFO job queue. Per-partition epoch order (required
	// for last-write-wins linearizability) is the queue order; partitions
	// drift across epochs independently, so a slow partition no longer
	// stalls the others' next-epoch scans. In pipelined mode depthSem
	// bounds the epochs in flight and the sequencer runs the epoch-ordered
	// completion work (health accounting, batch release, stage C spawn).
	depth    int              // epochs in flight bound (1 when !Pipeline)
	partQ    []chan *epochJob // per-partition FIFO job queues, cap depth
	bDone    chan *epochJob   // completed jobs, in epoch order
	seqDone  chan struct{}    // sequencer exited
	depthSem chan struct{}    // pipeline depth tokens
	workerWG sync.WaitGroup   // partition workers
	bOnce    sync.Once        // closes bDone exactly once
	finishMu sync.Mutex       // serializes finishStageB across modes
	// bGather/bIdx/bView are per-partition scratch for assembling the
	// live-batch slice handed to BatchAccessN; partition s is only ever
	// processed by one worker at a time (FIFO queue), so slot s needs no
	// lock. bView[s] holds the per-plane batch window structs so the scan
	// dispatch allocates nothing per epoch (the views are consumed within
	// the partition call and never outlive it).
	bGather [][]*store.Requests
	bIdx    [][]int
	bView   [][]store.Requests
	cWG     sync.WaitGroup
	pipeOff bool // set at Close; guarded by epochMu

	closed   chan struct{}
	closeOne sync.Once
	ticker   *time.Ticker
	wg       sync.WaitGroup

	// Root fault-tolerance plane (Config.JournalDir). journal is the sealed
	// epoch journal; dispTags[s] (guarded by tagMu) is the delivery tag
	// partition s's next dispatch will travel under — journaled before the
	// dispatch so a successor can replay it verbatim. replyWin parks
	// successful results of idempotent requests; crashedCh is closed by a
	// simulated root crash (TestCrashPoint / Crash).
	journal   *persist.Journal
	tagMu     sync.Mutex
	dispTags  []persist.JournalTag
	replyWin  *replyWindow
	crashedCh chan struct{}
	crashOne  sync.Once

	rng   *rand.Rand
	rngMu sync.Mutex

	// acl, when set, enforces the Appendix-D access-control matrix via a
	// recursive Snoopy instance.
	acl *aclState

	// Telemetry instruments, resolved once at construction; all nil (and
	// no-ops) when Config.Telemetry is nil.
	telEpoch     *telemetry.Gauge
	telRequests  *telemetry.Counter
	telOverflow  *telemetry.Counter
	telPartFails *telemetry.Counter
	telLeafFails *telemetry.Counter
	telRepairs   *telemetry.Counter
	telFailovers *telemetry.Counter
	stStageA     *telemetry.SpanStage
	stStageB     *telemetry.SpanStage
	stStageC     *telemetry.SpanStage
	stEpoch      *telemetry.SpanStage

	// recovered reports whether any durable partition restored persisted
	// state at startup (Config.DataDir).
	recovered bool
	// owned holds durable partitions NewLocal created (memory-resident
	// Durable and disk-resident SegDurable alike), closed with the system.
	// Caller-provided partitions are never closed here.
	owned []io.Closer
}

// NewLocal creates a deployment whose subORAMs run in-process. With
// Config.DataDir set, each partition is wrapped for sealed durability and
// any state already in the directory is recovered before the system starts
// (no Init needed on reopen).
func NewLocal(cfg Config) (*System, error) {
	cfg.fillDefaults()
	if cfg.DataDir != "" {
		if err := checkPartitionCount(cfg.DataDir, cfg.NumSubORAMs); err != nil {
			return nil, err
		}
		key, err := persist.LoadOrCreateRoutingKey(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		cfg.routeKey = &key
	}
	if cfg.DiskResident && cfg.DataDir == "" {
		return nil, fmt.Errorf("core: DiskResident requires DataDir")
	}
	if cfg.DiskResident && cfg.Sealed {
		return nil, fmt.Errorf("core: DiskResident and Sealed are mutually exclusive")
	}
	subs := make([]SubORAMClient, cfg.NumSubORAMs)
	recovered := false
	for i := range subs {
		path := ""
		if cfg.DataDir != "" {
			path = filepath.Join(cfg.DataDir, fmt.Sprintf("part-%03d", i))
		}
		if cfg.DiskResident {
			sd, err := persist.NewSegDurable(path,
				func(ss *segstore.Store) persist.StorePartition {
					return suboram.New(suboram.Config{
						BlockSize: cfg.BlockSize,
						Workers:   cfg.SubORAMWorkers,
						Strict:    cfg.Strict,
						Store:     ss,
						Telemetry: cfg.Telemetry,
					})
				},
				persist.SegConfig{
					BlockSize:     cfg.BlockSize,
					SegmentBlocks: cfg.SegmentBytes / cfg.BlockSize,
					Telemetry:     cfg.Telemetry,
				})
			if err != nil {
				return nil, fmt.Errorf("core: partition %d: %w", i, err)
			}
			recovered = recovered || sd.Recovered()
			subs[i] = sd
			continue
		}
		sub := suboram.New(suboram.Config{
			BlockSize: cfg.BlockSize,
			Workers:   cfg.SubORAMWorkers,
			Strict:    cfg.Strict,
			Sealed:    cfg.Sealed,
			Telemetry: cfg.Telemetry,
		})
		if path == "" {
			subs[i] = sub
			continue
		}
		dur, err := persist.NewDurable(
			path, sub, persist.Config{BlockSize: cfg.BlockSize, Telemetry: cfg.Telemetry})
		if err != nil {
			return nil, fmt.Errorf("core: partition %d: %w", i, err)
		}
		recovered = recovered || dur.Recovered()
		subs[i] = dur
	}
	sys, err := NewWithSubORAMs(cfg, subs)
	if err != nil {
		return nil, err
	}
	sys.recovered = recovered
	for _, sub := range subs {
		switch dur := sub.(type) {
		case *persist.Durable:
			sys.owned = append(sys.owned, dur)
		case *persist.SegDurable:
			sys.owned = append(sys.owned, dur)
		}
	}
	return sys, nil
}

// checkPartitionCount rejects reopening a data directory with a different
// subORAM count: objects would be unreachable at their persisted partitions.
// A directory with no partitions yet (fresh deployment) passes.
func checkPartitionCount(dataDir string, want int) error {
	entries, err := os.ReadDir(dataDir)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	have := 0
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "part-") {
			have++
		}
	}
	if have != 0 && have != want {
		return fmt.Errorf("core: data dir %s holds %d partitions, configured %d", dataDir, have, want)
	}
	return nil
}

// NewWithSubORAMs creates a deployment over caller-provided partitions
// (e.g. remote subORAMs reached over a transport).
func NewWithSubORAMs(cfg Config, subs []SubORAMClient) (*System, error) {
	cfg.fillDefaults()
	if len(subs) == 0 {
		return nil, fmt.Errorf("core: need at least one subORAM")
	}
	cfg.NumSubORAMs = len(subs)
	if cfg.JournalDir != "" && cfg.routeKey == nil {
		// A successor root must route and match exactly like its
		// predecessor: pin the oblivious routing key in the journal
		// directory.
		key, err := persist.LoadOrCreateRoutingKey(cfg.JournalDir)
		if err != nil {
			return nil, err
		}
		cfg.routeKey = &key
	}
	var key crypt.Key
	if cfg.routeKey != nil {
		key = *cfg.routeKey
	} else {
		var err error
		key, err = crypt.NewKey()
		if err != nil {
			return nil, err
		}
	}
	lbSeed := time.Now().UnixNano()
	if cfg.TestLBChoiceSeed != 0 {
		lbSeed = cfg.TestLBChoiceSeed
	}
	sys := &System{
		cfg:    cfg,
		subs:   subs,
		closed: make(chan struct{}),
		rng:    rand.New(rand.NewSource(lbSeed)),
		health: HealthStats{
			ConsecutiveFailures: make([]int, len(subs)),
			TotalFailures:       make([]uint64, len(subs)),
			Failovers:           make([]uint64, len(subs)),
			Repairing:           make([]bool, len(subs)),
		},
		downSince: make([]time.Time, len(subs)),

		telEpoch:     cfg.Telemetry.Gauge("core_epoch"),
		telRequests:  cfg.Telemetry.Counter("core_requests_total"),
		telOverflow:  cfg.Telemetry.Counter("core_overflow_dropped_total"),
		telPartFails: cfg.Telemetry.Counter("core_partition_epoch_failures_total"),
		telLeafFails: cfg.Telemetry.Counter("core_leaf_epoch_failures_total"),
		telRepairs:   cfg.Telemetry.Counter("core_repairs_started_total"),
		telFailovers: cfg.Telemetry.Counter("core_failovers_total"),
		stStageA:     cfg.Telemetry.Stage("stage_a_batch"),
		stStageB:     cfg.Telemetry.Stage("stage_b_suboram"),
		stStageC:     cfg.Telemetry.Stage("stage_c_match"),
		stEpoch:      cfg.Telemetry.Stage("epoch"),
	}
	// The deployment shape is the public configuration every other label is
	// derived from; export it so an operator can interpret the rest.
	cfg.Telemetry.Gauge("snoopy_config_lbs").Set(int64(cfg.NumLoadBalancers))
	cfg.Telemetry.Gauge("snoopy_config_suborams").Set(int64(cfg.NumSubORAMs))
	cfg.Telemetry.Gauge("snoopy_config_lambda").Set(int64(cfg.Lambda))
	cfg.Telemetry.Gauge("snoopy_config_block_bytes").Set(int64(cfg.BlockSize))
	lbCfg := loadbalancer.Config{
		BlockSize:   cfg.BlockSize,
		NumSubORAMs: cfg.NumSubORAMs,
		Lambda:      cfg.Lambda,
		SortWorkers: cfg.SortWorkers,
		Telemetry:   cfg.Telemetry,
	}
	for i := 0; i < cfg.NumLoadBalancers; i++ {
		var bal loadbalancer.Balancer
		if cfg.LBLeaves > 1 {
			tree, err := loadbalancer.NewTree(loadbalancer.TreeConfig{
				Config: lbCfg,
				Leaves: cfg.LBLeaves,
				FanIn:  cfg.LBFanIn,
			}, key)
			if err != nil {
				return nil, err
			}
			bal = tree
		} else {
			bal = loadbalancer.Monolithic{LB: loadbalancer.New(lbCfg, key)}
		}
		sys.lbs = append(sys.lbs, &lbState{
			bal:    bal,
			queues: make([][]pending, bal.Feeds()),
		})
	}
	sys.feedsPerPlane = sys.lbs[0].bal.Feeds()
	if cfg.LBLeaves > 1 {
		cfg.Telemetry.Gauge("snoopy_config_lb_leaves").Set(int64(sys.feedsPerPlane))
		totalFeeds := cfg.NumLoadBalancers * sys.feedsPerPlane
		sys.health.LeafConsecutiveFailures = make([]int, totalFeeds)
		sys.health.LeafTotalFailures = make([]uint64, totalFeeds)
	}
	sys.depth = 1
	if cfg.Pipeline {
		sys.depth = cfg.PipelineDepth
		if sys.depth <= 0 {
			sys.depth = defaultPipelineDepth()
		}
		if sys.depth > maxPipelineDepth {
			sys.depth = maxPipelineDepth
		}
		sys.depthSem = make(chan struct{}, sys.depth)
		sys.bDone = make(chan *epochJob, sys.depth+1)
		sys.seqDone = make(chan struct{})
		cfg.Telemetry.Gauge("snoopy_config_pipeline_depth").Set(int64(sys.depth))
		go sys.sequencer()
	}
	sys.partQ = make([]chan *epochJob, len(subs))
	sys.bGather = make([][]*store.Requests, len(subs))
	sys.bIdx = make([][]int, len(subs))
	sys.bView = make([][]store.Requests, len(subs))
	for s := range sys.partQ {
		sys.partQ[s] = make(chan *epochJob, sys.depth)
		sys.bGather[s] = make([]*store.Requests, 0, cfg.NumLoadBalancers)
		sys.bIdx[s] = make([]int, 0, cfg.NumLoadBalancers)
		sys.bView[s] = make([]store.Requests, cfg.NumLoadBalancers)
	}
	sys.workerWG.Add(len(subs))
	for s := range subs {
		go sys.partitionWorker(s)
	}
	sys.crashedCh = make(chan struct{})
	sys.replyWin = newReplyWindow(cfg.ReplyWindow)
	if cfg.JournalDir != "" {
		j, incomplete, err := persist.OpenJournal(cfg.JournalDir, cfg.JournalRec)
		if err != nil {
			return nil, err
		}
		sys.journal = j
		// Continue the predecessor's epoch sequence (a crashed, unjournaled
		// stage A's number is safely reused — it was never dispatched).
		sys.epoch = j.LastEpoch()
		sys.initDispTags()
		sys.replayJournal(incomplete)
		sys.initDispTags()
	}
	if cfg.EpochDuration > 0 {
		sys.ticker = time.NewTicker(cfg.EpochDuration)
		sys.wg.Add(1)
		go func() {
			defer sys.wg.Done()
			for {
				select {
				case <-sys.closed:
					return
				case <-sys.ticker.C:
					sys.Flush()
				}
			}
		}()
	}
	return sys, nil
}

// Init partitions the object set across subORAMs and loads them (paper
// Fig. 23). Must be called before any request.
func (sys *System) Init(ids []uint64, data []byte) error {
	partIDs, partData, err := sys.lbs[0].bal.Partition(ids, data)
	if err != nil {
		return err
	}
	subs := sys.snapshotSubs()
	var wg sync.WaitGroup
	errs := make([]error, len(subs))
	for s := range subs {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[s] = subs[s].Init(partIDs[s], partData[s])
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Close stops the epoch ticker and fails all pending requests.
func (sys *System) Close() {
	sys.closeOne.Do(func() {
		close(sys.closed)
		if sys.ticker != nil {
			sys.ticker.Stop()
		}
	})
	sys.wg.Wait()
	// Shut the stage-B plane down in dependency order: stop new dispatches
	// (pipeOff under epochMu), close the partition queues so the workers
	// drain every already-dispatched epoch through stage B, then close the
	// sequencer's input and wait out the stage-C goroutines it spawned —
	// a dispatched epoch always completes fully, replies included.
	sys.epochMu.Lock()
	if !sys.pipeOff {
		sys.pipeOff = true
		for _, q := range sys.partQ {
			close(q)
		}
	}
	sys.epochMu.Unlock()
	sys.workerWG.Wait()
	if sys.cfg.Pipeline {
		sys.bOnce.Do(func() { close(sys.bDone) })
		<-sys.seqDone
		sys.cWG.Wait()
	}
	// No stage B runs after this point, so no new repair can start; wait
	// out any in-flight attempt (its own dial deadlines bound the wait).
	sys.repairWG.Wait()
	sys.closeACL()
	// Fail whatever is still queued. The per-lbState closed flag is set
	// under the same mutex that guards enqueueing, so a submit racing with
	// Close either lands before this drain (and is failed here) or observes
	// closed and returns ErrClosed — never a queued request with no reply.
	crashed := sys.Crashed()
	for _, st := range sys.lbs {
		st.mu.Lock()
		st.closed = true
		qs := st.queues
		st.queues = make([][]pending, len(qs))
		st.mu.Unlock()
		if crashed {
			// A crashed root answers nothing — its clients' waits already
			// resolved to ErrRootDown through the crash channel.
			continue
		}
		for _, q := range qs {
			for _, p := range q {
				p.ch <- result{err: ErrClosed}
			}
		}
	}
	for _, dur := range sys.owned {
		dur.Close()
	}
	if sys.journal != nil {
		sys.journal.Close()
	}
}

// submit enqueues a request with a uniformly chosen load balancer (paper
// §4.3: "clients randomly choose one load balancer to contact").
func (sys *System) submit(op uint8, key uint64, data []byte) (chan result, error) {
	return sys.submitAs(0, op, key, data)
}

func (sys *System) submitAs(user uint64, op uint8, key uint64, data []byte) (chan result, error) {
	return sys.submitID(user, op, key, data, 0)
}

// submitID is submitAs carrying an idempotency ID (0 = untracked).
func (sys *System) submitID(user uint64, op uint8, key uint64, data []byte, id uint64) (chan result, error) {
	select {
	case <-sys.crashedCh:
		// A crashed root refuses, distinguishably from a clean shutdown:
		// the client's move is to retry against the promoted successor.
		return nil, ErrRootDown
	default:
	}
	select {
	case <-sys.closed:
		return nil, ErrClosed
	default:
	}
	if key >= store.DummyKeyBit {
		return nil, fmt.Errorf("core: key %#x in reserved dummy space", key)
	}
	if len(data) > sys.cfg.BlockSize {
		return nil, fmt.Errorf("core: value length %d exceeds block size %d", len(data), sys.cfg.BlockSize)
	}
	// Clients pick an ingestion point uniformly (paper §4.3). With a tree
	// plane the choice is over feeds — (plane, leaf) pairs — which the
	// network adversary observes anyway; with monolithic planes this is the
	// original uniform plane choice, same rng draw sequence.
	sys.rngMu.Lock()
	g := sys.rng.Intn(len(sys.lbs) * sys.feedsPerPlane)
	sys.rngMu.Unlock()
	st := sys.lbs[g/sys.feedsPerPlane]
	f := g % sys.feedsPerPlane
	ch := make(chan result, 1)
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil, ErrClosed
	}
	st.queues[f] = append(st.queues[f], pending{op: op, key: key, user: user, id: id, data: data, ch: ch})
	st.mu.Unlock()
	return ch, nil
}

// Read submits a read and blocks until its epoch completes. found reports
// whether the key exists in the store.
func (sys *System) Read(key uint64) (value []byte, found bool, err error) {
	ch, err := sys.submit(store.OpRead, key, nil)
	if err != nil {
		return nil, false, err
	}
	r := <-ch
	return r.value, r.found, r.err
}

// Write submits a write and blocks until its epoch completes. The returned
// previous value is the object's value at the start of the write's epoch
// (the paper's OStoreBatchAccess semantics: every deduplicated request for
// a key shares one response carrying the pre-batch value) — NOT an atomic
// read-modify-write. Writes to keys not loaded at Init are no-ops with
// found == false.
func (sys *System) Write(key uint64, value []byte) (previous []byte, found bool, err error) {
	ch, err := sys.submit(store.OpWrite, key, value)
	if err != nil {
		return nil, false, err
	}
	r := <-ch
	return r.value, r.found, r.err
}

// ReadAsync and WriteAsync submit without blocking; the returned function
// blocks for the outcome. Used by throughput benchmarks.
func (sys *System) ReadAsync(key uint64) (func() ([]byte, bool, error), error) {
	ch, err := sys.submit(store.OpRead, key, nil)
	if err != nil {
		return nil, err
	}
	return func() ([]byte, bool, error) { r := <-ch; return r.value, r.found, r.err }, nil
}

// WriteAsync submits a write without blocking.
func (sys *System) WriteAsync(key uint64, value []byte) (func() ([]byte, bool, error), error) {
	ch, err := sys.submit(store.OpWrite, key, value)
	if err != nil {
		return nil, err
	}
	return func() ([]byte, bool, error) { r := <-ch; return r.value, r.found, r.err }, nil
}

// lbEpoch is one load balancer's stage-A output for an epoch. perSub and
// dropped are copied out of the Batches so that stage B can release the
// batch storage to the arena as soon as the subORAMs are done with it,
// while stage C still has the numbers for stats.
type lbEpoch struct {
	// feedReqs holds the per-feed request snapshots (one for a monolithic
	// plane, one per leaf for a tree); stage C matches each feed's
	// responses against its own snapshot.
	feedReqs []*store.Requests
	batches  *loadbalancer.Batches
	// feedErrs, when non-nil, carries per-feed (leaf) failures: feed f's
	// requests are absent from the batches iff feedErrs[f] != nil, and
	// stage C fails only that feed's clients.
	feedErrs []error
	err      error
	wall     time.Duration
	perSub   int
	dropped  int
	// droppedKeys are the plane-wide Theorem-3 overflow victims' keys
	// (normally nil); stage C fails exactly these requests with
	// ErrOverflow. droppedByFeed[f] adds feed f's leaf-local victims.
	droppedKeys   []uint64
	droppedByFeed [][]uint64
}

// epochJob carries one epoch through the processing stages.
type epochJob struct {
	id     uint64
	t0     time.Time
	t0tel  int64 // telemetry-clock epoch start (whole-epoch span base)
	queues [][]pending
	eps    []lbEpoch
	denied [][]uint8
	aclErr error

	responses [][]*store.Requests // [lb][sub]
	subWall   []time.Duration
	subErr    []error
	// subUsed[s] is the client that served partition s this epoch (the
	// snapshot repair needs as its "old" argument — the table may have
	// been swapped by the time accounting runs).
	subUsed []SubORAMClient

	// bLeft counts partitions still executing stage B; the worker that
	// takes it to zero completes the job: synchronous epochs close bFin
	// (the dispatching Flush is waiting on it), pipelined epochs go to the
	// sequencer. Completions reach the sequencer in epoch order because
	// every partition drains its queue FIFO: job N+1 cannot complete
	// anywhere before every partition finished job N.
	bLeft atomic.Int32
	sync  bool
	bFin  chan struct{}
}

// Pipeline depth bounds. The default is sized from public parameters
// only: the machine's GOMAXPROCS (public deployment shape), clamped so a
// big machine doesn't balloon the arena working set. maxPipelineDepth
// caps operator configuration for the same reason.
const maxPipelineDepth = 16

func defaultPipelineDepth() int {
	d := runtime.GOMAXPROCS(0)
	if d < 2 {
		d = 2
	}
	if d > 4 {
		d = 4
	}
	return d
}

// Flush runs one epoch. In the default synchronous mode it batches,
// executes, matches, and replies before returning. In pipelined mode
// (Config.Pipeline) it performs stage A (snapshot + batching) and
// dispatches the rest; stages overlap across epochs exactly as the
// paper's throughput equation assumes: stage A of epoch N+1 runs while
// the partition workers scan epoch N and stage C matches epoch N−1, up
// to PipelineDepth epochs in flight.
func (sys *System) Flush() {
	select {
	case <-sys.crashedCh:
		// A crashed root does nothing — silently, like a killed process.
		return
	default:
	}
	sys.epochMu.Lock()
	job := sys.stageA()
	if sys.crashAt("stage-a", job) {
		return
	}
	if sys.pipeOff {
		// Close already shut the partition queues: nothing will execute
		// this job, so every snapshotted request gets its ErrClosed reply
		// here instead of silently never completing.
		sys.epochMu.Unlock()
		sys.failJob(job, ErrClosed)
		return
	}
	if sys.cfg.Pipeline {
		// Depth-token acquire applies backpressure when the pipeline is
		// full. It also selects on closed so a Flush blocked here (e.g.
		// behind a partition stalled at its RPC deadline) cannot hold
		// Close hostage: the job is failed, not dispatched.
		select {
		case sys.depthSem <- struct{}{}:
		case <-sys.closed:
			sys.epochMu.Unlock()
			sys.failJob(job, ErrClosed)
			return
		}
		// Journal-before-dispatch: once Begin returns, the epoch either
		// completes here or is replayed by a successor. A Begin failure
		// means the epoch was never acknowledged — failing it without
		// dispatch keeps "not journaled ⇒ never applied" true, so clients
		// can safely retry as fresh requests.
		if err := sys.journalBegin(job); err != nil {
			<-sys.depthSem
			sys.epochMu.Unlock()
			sys.failJob(job, err)
			return
		}
		sys.dispatch(job)
		sys.epochMu.Unlock()
		return
	}
	if err := sys.journalBegin(job); err != nil {
		sys.epochMu.Unlock()
		sys.failJob(job, err)
		return
	}
	if sys.crashAt("journal", job) {
		return
	}
	job.sync = true
	job.bFin = make(chan struct{})
	sys.dispatch(job)
	sys.epochMu.Unlock()
	<-job.bFin
	if sys.crashAfterDispatch(job) {
		return
	}
	sys.finishStageB(job)
	sys.stageC(job)
}

// dispatch hands the job to every partition worker. Caller holds epochMu,
// so queue order is epoch order. The sends cannot block indefinitely: at
// most depth jobs hold tokens (pipelined) or one job is in flight per
// caller (synchronous), matching the queues' capacity.
func (sys *System) dispatch(job *epochJob) {
	for s := range sys.partQ {
		sys.partQ[s] <- job
	}
}

// failJob replies ErrClosed (or another terminal error) to every request
// snapshotted into a job that will never execute, and returns the job's
// pooled stage-A storage to the arena.
func (sys *System) failJob(job *epochJob, err error) {
	for _, q := range job.queues {
		for _, p := range q {
			p.ch <- result{err: err}
		}
	}
	for i := range job.eps {
		job.eps[i].batches.Release()
		job.eps[i].batches = nil
		for f := range job.eps[i].feedReqs {
			arena.Default.PutRequests(job.eps[i].feedReqs[f])
			job.eps[i].feedReqs[f] = nil
		}
	}
}

// partitionWorker drains partition s's job queue in FIFO (= epoch) order.
// The worker that finishes a job's last partition completes it: a
// synchronous epoch wakes its Flush, a pipelined one goes to the
// sequencer. Long-lived workers replace the per-epoch goroutine fan-out —
// the stage-B pool is bounded by S for the life of the system.
func (sys *System) partitionWorker(s int) {
	defer sys.workerWG.Done()
	for job := range sys.partQ[s] {
		sys.partStageB(job, s)
		if job.bLeft.Add(-1) == 0 {
			if job.sync {
				close(job.bFin)
			} else {
				sys.bDone <- job
			}
		}
	}
}

// sequencer runs the epoch-ordered completion work for pipelined epochs:
// health/failover accounting (consecutive-failure runs are only well
// defined in epoch order), batch release, and the stage-C spawn. Stage C
// itself runs concurrently across epochs and releases the depth token
// when the epoch has fully replied.
func (sys *System) sequencer() {
	defer close(sys.seqDone)
	for job := range sys.bDone {
		sys.finishStageB(job)
		sys.cWG.Add(1)
		go func(job *epochJob) {
			defer sys.cWG.Done()
			sys.stageC(job)
			<-sys.depthSem
		}(job)
	}
}

// stageAPlane builds plane i's batches from its snapshotted feed queues.
func (sys *System) stageAPlane(job *epochJob, i int) {
	F := sys.feedsPerPlane
	t := time.Now()
	ta0 := sys.cfg.Telemetry.Now()
	feedReqs := make([]*store.Requests, F)
	for f := 0; f < F; f++ {
		q := job.queues[i*F+f]
		reqs := arena.Default.GetRequests(len(q), sys.cfg.BlockSize)
		for j, p := range q {
			// Seq and Client are feed-local; a tree balancer shifts
			// Seq by public per-feed bases for global last-write-wins.
			reqs.SetRow(j, p.op, p.key, 0, uint64(j), uint64(j), p.data)
		}
		feedReqs[f] = reqs
	}
	b, feedErrs, err := sys.lbs[i].bal.MakeBatches(job.id, feedReqs)
	ep := lbEpoch{feedReqs: feedReqs, batches: b, feedErrs: feedErrs, err: err, wall: time.Since(t)}
	if b != nil {
		ep.perSub, ep.dropped = b.PerSub, b.Dropped
		ep.droppedKeys = b.DroppedKeys
		ep.droppedByFeed = b.DroppedByFeed
	}
	job.eps[i] = ep
	// One span per (epoch, load balancer), tagged with the public
	// per-subORAM batch size α — fires on error paths too.
	sys.stStageA.Record(job.id, i, ep.perSub, ta0, sys.cfg.Telemetry.Now())
}

// stageA snapshots the queues, resolves ACL permissions, and builds every
// load balancer's batches. Caller holds epochMu.
func (sys *System) stageA() *epochJob {
	L := len(sys.lbs)
	F := sys.feedsPerPlane
	sys.epoch++
	// job.queues is flat over global feed index g = plane*F + feed, so the
	// ACL layer (index-generic over queues) works unchanged.
	job := &epochJob{id: sys.epoch, t0: time.Now(), t0tel: sys.cfg.Telemetry.Now(), queues: make([][]pending, L*F)}
	for i, st := range sys.lbs {
		st.mu.Lock()
		for f := 0; f < F; f++ {
			job.queues[i*F+f] = st.queues[f]
			st.queues[f] = nil
		}
		st.mu.Unlock()
	}

	// With access control enabled, resolve permissions first through the
	// recursive ACL instance (paper §D: two epochs per operation).
	job.denied, job.aclErr = sys.applyACL(job.queues)

	S := len(sys.subs)
	job.responses = make([][]*store.Requests, L)
	for i := range job.responses {
		job.responses[i] = make([]*store.Requests, S)
	}
	job.subWall = make([]time.Duration, S)
	job.subErr = make([]error, S)
	job.subUsed = make([]SubORAMClient, S)
	job.bLeft.Store(int32(S))

	job.eps = make([]lbEpoch, L)
	// A single-plane deployment batches inline: spawning a goroutine per
	// epoch buys nothing and costs a schedule round trip on small epochs.
	if L == 1 {
		sys.stageAPlane(job, 0)
	} else {
		var wg sync.WaitGroup
		for i := range sys.lbs {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				sys.stageAPlane(job, i)
			}()
		}
		wg.Wait()
	}
	sys.observeLeafHealth(job)
	return job
}

// observeLeafHealth folds the epoch's per-feed (leaf) failures into
// HealthStats so a cluster supervisor can trip leaf-level repair. Stage A
// runs under epochMu, so consecutive-failure runs are well defined.
func (sys *System) observeLeafHealth(job *epochJob) {
	if len(sys.health.LeafConsecutiveFailures) == 0 {
		return
	}
	F := sys.feedsPerPlane
	sys.statsMu.Lock()
	for i := range sys.lbs {
		for f := 0; f < F; f++ {
			g := i*F + f
			if job.eps[i].feedErrs != nil && job.eps[i].feedErrs[f] != nil {
				sys.health.LeafConsecutiveFailures[g]++
				sys.health.LeafTotalFailures[g]++
				sys.telLeafFails.Inc()
			} else {
				sys.health.LeafConsecutiveFailures[g] = 0
			}
		}
	}
	sys.statsMu.Unlock()
}

// partStageB executes one partition's share of an epoch: the L batches in
// fixed load-balancer order (the order linearizability's last-write-wins
// depends on). Invoked only from partition s's worker, so per-partition
// epoch order is the queue order and the scratch slot needs no lock.
//
// A failed partition does not fail the epoch: its error is recorded with
// its partition index (and counted in HealthStats), and stage C fails only
// the requests routed to it — the system degrades per partition and
// survives to the next epoch.
func (sys *System) partStageB(job *epochJob, s int) {
	sys.subsMu.RLock()
	sub := sys.subs[s]
	sys.subsMu.RUnlock()
	job.subUsed[s] = sub
	t := time.Now()
	tb0 := sys.cfg.Telemetry.Now()
	rows := 0
	// Record wall time on every exit: a failed partition's (often
	// deadline-length) stall is real epoch time, and reporting zero
	// would skew EpochStats exactly when latency matters most. The
	// span fires once per (epoch, partition) on every exit path,
	// tagged with the public row count Σα over load balancers.
	defer func() {
		job.subWall[s] = time.Since(t)
		sys.stStageB.Record(job.id, s, rows, tb0, sys.cfg.Telemetry.Now())
	}()
	gather := sys.bGather[s][:0]
	idxs := sys.bIdx[s][:0]
	for i := range job.eps {
		if job.eps[i].err != nil || job.eps[i].batches == nil {
			continue
		}
		v := &sys.bView[s][len(idxs)]
		job.eps[i].batches.ForInto(v, s)
		gather = append(gather, v)
		idxs = append(idxs, i)
	}
	// Multi-batch fast path: one exchange (and, remotely, one AEAD seal
	// and one round trip) for the whole epoch instead of one per load
	// balancer. All-or-nothing per partition, which matches the error
	// granularity stage C already applies. With a journal configured the
	// grouped path is taken even for a single batch, so every journaled
	// epoch consumes exactly one delivery tag per partition — the
	// prediction journalBegin records and a successor replays.
	if bn, ok := sub.(BatchedSubORAMClient); ok && (len(gather) > 1 || (sys.journal != nil && len(gather) >= 1)) {
		outs, err := bn.BatchAccessN(gather)
		if err != nil {
			job.subErr[s] = fmt.Errorf("suboram %d: %w", s, err)
			return
		}
		for k, i := range idxs {
			rows += job.eps[i].perSub
			job.responses[i][s] = outs[k]
		}
		return
	}
	for k, i := range idxs {
		out, err := sub.BatchAccess(gather[k])
		if err != nil {
			job.subErr[s] = fmt.Errorf("suboram %d: %w", s, err)
			return
		}
		rows += job.eps[i].perSub
		job.responses[i][s] = out
	}
}

// finishStageB runs the epoch-completion work that must happen in epoch
// order once every partition finished: health/failover accounting (a
// partition whose consecutive-failure run reaches Config.FailoverAfter
// trips automatic failover — one repair attempt at a time, retried each
// further failing epoch until a replacement is promoted) and the batch
// release back to the arena.
func (sys *System) finishStageB(job *epochJob) {
	sys.finishMu.Lock()
	defer sys.finishMu.Unlock()
	now := time.Now()
	sys.statsMu.Lock()
	for s := range job.subErr {
		if job.subErr[s] != nil {
			if sys.health.ConsecutiveFailures[s] == 0 {
				sys.downSince[s] = now
			}
			sys.health.ConsecutiveFailures[s]++
			sys.health.TotalFailures[s]++
			sys.telPartFails.Inc()
			if sys.cfg.FailoverAfter > 0 && sys.cfg.Failover != nil &&
				sys.health.ConsecutiveFailures[s] >= sys.cfg.FailoverAfter &&
				!sys.health.Repairing[s] {
				sys.health.Repairing[s] = true
				sys.telRepairs.Inc()
				sys.repairWG.Add(1)
				go sys.repair(s, job.subUsed[s])
			}
		} else {
			sys.health.ConsecutiveFailures[s] = 0
			if !sys.health.Repairing[s] {
				sys.downSince[s] = time.Time{}
			}
		}
	}
	sys.statsMu.Unlock()
	// Every subORAM is done with its views of the batch storage: return it
	// to the arena now, before stage C (possibly overlapping the next
	// epoch's stage B in pipelined mode) runs. Stage C reads the copied
	// perSub/dropped fields, never the Batches.
	for i := range job.eps {
		job.eps[i].batches.Release()
		job.eps[i].batches = nil
	}
}

// stageC matches responses, replies to clients, and records stats. Safe to
// run concurrently across epochs.
func (sys *System) stageC(job *epochJob) {
	L := len(sys.lbs)
	matchWall := make([]time.Duration, L)
	if L == 1 {
		sys.stageCPlane(job, 0, matchWall)
	} else {
		var wg sync.WaitGroup
		for i := range sys.lbs {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				sys.stageCPlane(job, i, matchWall)
			}()
		}
		wg.Wait()
	}

	sys.stageCStats(job, matchWall)
	// Every reply for this epoch has been issued (and parked): the journal
	// no longer needs to replay it.
	sys.journalComplete(job.id)
}

// stageCPlane matches one plane's responses and replies to its clients.
func (sys *System) stageCPlane(job *epochJob, i int, matchWall []time.Duration) {
	F := sys.feedsPerPlane
	S := len(sys.subs)
	t := time.Now()
	tc0 := sys.cfg.Telemetry.Now()
	nreq := 0
	for f := 0; f < F; f++ {
		nreq += len(job.queues[i*F+f])
	}
	// One span per (epoch, load balancer) on every exit path, tagged
	// with the public per-plane request count.
	defer func() {
		matchWall[i] = time.Since(t)
		sys.stStageC.Record(job.id, i, nreq, tc0, sys.cfg.Telemetry.Now())
	}()
	// Whatever path this epoch takes, its pooled request snapshots
	// and subORAM responses go back to the arena at the end.
	defer func() {
		for f := range job.eps[i].feedReqs {
			arena.Default.PutRequests(job.eps[i].feedReqs[f])
			job.eps[i].feedReqs[f] = nil
		}
		for s := 0; s < S; s++ {
			arena.Default.PutRequests(job.responses[i][s])
			job.responses[i][s] = nil
		}
	}()
	if nreq == 0 {
		return
	}
	failAll := func(err error) {
		for f := 0; f < F; f++ {
			for _, p := range job.queues[i*F+f] {
				p.ch <- result{err: err}
			}
		}
	}
	if job.aclErr != nil {
		failAll(job.aclErr)
		return
	}
	if job.eps[i].err != nil {
		failAll(job.eps[i].err)
		return
	}
	// Graceful degradation: responses from healthy partitions are
	// matched normally; requests routed to failed partitions get
	// that partition's (index-tagged) error. Every reply — value or
	// error — leaves at match completion, so reply traffic keeps
	// its uniform timing regardless of which partitions failed.
	anyErr := false
	total := 0
	for s := 0; s < S; s++ {
		if job.subErr[s] != nil {
			anyErr = true
			continue
		}
		if r := job.responses[i][s]; r != nil {
			total += r.Len()
		}
	}
	all := arena.Default.GetRequests(total, sys.cfg.BlockSize)
	off := 0
	for s := 0; s < S; s++ {
		if r := job.responses[i][s]; r != nil && job.subErr[s] == nil {
			all.CopyRowsPlain(off, r)
			off += r.Len()
		}
	}
	// The plane's aggregate response set is matched back per feed:
	// each feed gets its own oblivious match against its own request
	// snapshot, and a failed feed (dead leaf) fails only its own
	// clients while every other feed completes normally.
	for f := 0; f < F; f++ {
		sys.replyFeed(job, i, f, all, anyErr)
	}
	arena.Default.PutRequests(all)
}

// stageCStats folds the completed epoch into EpochStats and whole-epoch
// telemetry. Guarded against out-of-order completion: concurrent stage C
// of an older epoch may finish after a newer one.
func (sys *System) stageCStats(job *epochJob, matchWall []time.Duration) {
	st := EpochStats{Epoch: job.id, Wall: time.Since(job.t0)}
	for _, q := range job.queues {
		st.Requests += len(q)
	}
	for i := range sys.lbs {
		if job.eps[i].err == nil {
			if job.eps[i].perSub > st.BatchSize {
				st.BatchSize = job.eps[i].perSub
			}
			st.Dropped += job.eps[i].dropped
		}
		lbStats := sys.lbs[i].bal.LastStats()
		if lbStats.MakeBatch > st.MakeBatch {
			st.MakeBatch = lbStats.MakeBatch
		}
		if lbStats.Match > st.Match {
			st.Match = lbStats.Match
		}
		st.LBWall = append(st.LBWall, job.eps[i].wall)
	}
	for s := range sys.subs {
		if job.subWall[s] > st.SubORAM {
			st.SubORAM = job.subWall[s]
		}
		st.SubORAMWall = append(st.SubORAMWall, job.subWall[s])
	}
	sys.statsMu.Lock()
	sys.totalDrops += uint64(st.Dropped)
	if st.Epoch >= sys.lastEp.Epoch {
		sys.lastEp = st
	}
	sys.statsMu.Unlock()

	// Whole-epoch telemetry: fires exactly once per epoch, unconditionally.
	// R (the real request count) is public — the adversary sees every client
	// message arrive — and the overflow count is already in EpochStats.
	// SetMax applies the same ordering guard as lastEp above: a
	// late-finishing older epoch's concurrent stage C must not roll the
	// gauge backwards, while its trace event still fires (the event stream
	// stays a function of the recorded epochs, not of the schedule).
	sys.telEpoch.SetMax(int64(job.id))
	sys.telRequests.Add(uint64(st.Requests))
	sys.telOverflow.Add(uint64(st.Dropped))
	sys.stEpoch.Record(job.id, -1, st.Requests, job.t0tel, sys.cfg.Telemetry.Now())
}

// replyFeed matches one feed's responses and replies to its clients. A
// feed-level failure (dead leaf) fails exactly this feed's queue; overflow
// victims are the union of the plane-wide dropped keys and this feed's
// leaf-local drops.
func (sys *System) replyFeed(job *epochJob, i, f int, all *store.Requests, anyErr bool) {
	F := sys.feedsPerPlane
	q := job.queues[i*F+f]
	if len(q) == 0 {
		return
	}
	ep := &job.eps[i]
	fail := func(err error) {
		for _, p := range q {
			p.ch <- result{err: err}
		}
	}
	if ep.feedErrs != nil && ep.feedErrs[f] != nil {
		fail(ep.feedErrs[f])
		return
	}
	matched, err := sys.lbs[i].bal.MatchResponses(job.id, all, f, ep.feedReqs[f])
	if err != nil {
		fail(err)
		return
	}
	var droppedSet map[uint64]struct{}
	nd := len(ep.droppedKeys)
	if ep.droppedByFeed != nil {
		nd += len(ep.droppedByFeed[f])
	}
	if nd > 0 {
		droppedSet = make(map[uint64]struct{}, nd)
		for _, k := range ep.droppedKeys {
			droppedSet[k] = struct{}{}
		}
		if ep.droppedByFeed != nil {
			for _, k := range ep.droppedByFeed[f] {
				droppedSet[k] = struct{}{}
			}
		}
	}
	answered := make([]bool, len(q))
	for j := 0; j < matched.Len(); j++ {
		idx := matched.Client[j]
		p := q[idx]
		answered[idx] = true
		if anyErr {
			if serr := job.subErr[sys.lbs[i].bal.SubORAMFor(matched.Key[j])]; serr != nil {
				p.ch <- result{err: serr}
				continue
			}
		}
		if droppedSet != nil {
			if _, dropped := droppedSet[matched.Key[j]]; dropped {
				p.ch <- result{err: ErrOverflow}
				continue
			}
		}
		val := append([]byte(nil), matched.Block(j)...)
		found := matched.Aux[j]
		if job.denied != nil && job.denied[i*F+f] != nil {
			nullDenied(val, &found, job.denied[i*F+f][idx])
		}
		r := result{value: val, found: found == 1}
		// Park the answer for idempotent retries before delivering it: a
		// client that saw this root crash a moment later re-asks with the
		// same ID and gets the original result instead of a re-execution.
		sys.replyWin.put(p.id, r)
		p.ch <- r
	}
	arena.Default.PutRequests(matched)
	// Liveness backstop: no queued request may ever be left without a
	// reply, whatever path the epoch took.
	for idx := range answered {
		if !answered[idx] {
			q[idx].ch <- result{err: ErrOverflow}
		}
	}
}

// snapshotSubs returns a stable view of the partition clients for one
// epoch (or Init): repair may swap an element concurrently, and a batch
// must go entirely to one client.
func (sys *System) snapshotSubs() []SubORAMClient {
	sys.subsMu.RLock()
	defer sys.subsMu.RUnlock()
	return append([]SubORAMClient(nil), sys.subs...)
}

// repair runs one failover attempt for partition s. On success the
// replacement client serves the partition from the next dispatched epoch;
// on failure the Repairing flag clears so a later failing epoch retries.
func (sys *System) repair(s int, old SubORAMClient) {
	defer sys.repairWG.Done()
	repl, err := sys.cfg.Failover(s, old)
	if err == nil && repl == nil {
		err = fmt.Errorf("core: failover for partition %d returned no client", s)
	}
	if err != nil {
		sys.statsMu.Lock()
		down := sys.downSince[s]
		sys.health.Repairing[s] = false
		sys.statsMu.Unlock()
		if sys.cfg.OnFailover != nil {
			sys.cfg.OnFailover(s, sinceDown(down), err)
		}
		return
	}
	sys.subsMu.Lock()
	sys.subs[s] = repl
	sys.subsMu.Unlock()
	if sys.journal != nil {
		// The replacement has its own delivery stream; re-predict the tag
		// the next journaled dispatch to s will travel under. A journaled
		// epoch already in flight across this swap degrades to
		// at-least-once for partition s (fresh client, fresh replay cache)
		// — see the package comment in journal.go.
		sys.tagMu.Lock()
		sys.dispTags[s] = tagOf(repl)
		sys.tagMu.Unlock()
	}
	sys.telFailovers.Inc()
	sys.statsMu.Lock()
	sys.health.ConsecutiveFailures[s] = 0
	sys.health.Failovers[s]++
	sys.health.Repairing[s] = false
	down := sys.downSince[s]
	sys.downSince[s] = time.Time{}
	sys.statsMu.Unlock()
	if sys.cfg.OnFailover != nil {
		sys.cfg.OnFailover(s, sinceDown(down), nil)
	}
}

func sinceDown(t0 time.Time) time.Duration {
	if t0.IsZero() {
		return 0
	}
	return time.Since(t0)
}

// LastEpochStats returns statistics for the most recent completed epoch.
func (sys *System) LastEpochStats() EpochStats {
	sys.statsMu.Lock()
	defer sys.statsMu.Unlock()
	return sys.lastEp
}

// Health returns per-partition failure counters. A partition with a
// growing ConsecutiveFailures run is down (its requests fail with a
// partition-tagged error each epoch while the rest of the system keeps
// serving); the paper's answer at that point is replication
// (internal/replica) or operator intervention.
func (sys *System) Health() HealthStats {
	sys.statsMu.Lock()
	defer sys.statsMu.Unlock()
	return HealthStats{
		ConsecutiveFailures:     append([]int(nil), sys.health.ConsecutiveFailures...),
		TotalFailures:           append([]uint64(nil), sys.health.TotalFailures...),
		Failovers:               append([]uint64(nil), sys.health.Failovers...),
		Repairing:               append([]bool(nil), sys.health.Repairing...),
		LeafConsecutiveFailures: append([]int(nil), sys.health.LeafConsecutiveFailures...),
		LeafTotalFailures:       append([]uint64(nil), sys.health.LeafTotalFailures...),
	}
}

// TotalDropped returns the cumulative count of requests dropped by batch
// overflow across all epochs (the Theorem-3 negligible event; expect 0).
func (sys *System) TotalDropped() uint64 {
	sys.statsMu.Lock()
	defer sys.statsMu.Unlock()
	return sys.totalDrops
}

// Recovered reports whether the deployment restored partition state from
// Config.DataDir at startup (in which case Init is not needed).
func (sys *System) Recovered() bool { return sys.recovered }

// NumSubORAMs returns S.
func (sys *System) NumSubORAMs() int { return len(sys.subs) }

// NumLoadBalancers returns L.
func (sys *System) NumLoadBalancers() int { return len(sys.lbs) }

// FeedsPerPlane returns the number of independent request-ingestion points
// per load-balancer plane: 1 for a monolithic plane, LBLeaves for a tree.
func (sys *System) FeedsPerPlane() int { return sys.feedsPerPlane }

// SubORAMFor returns the partition storing id (the oblivious routing is
// shared across planes).
func (sys *System) SubORAMFor(id uint64) int { return sys.lbs[0].bal.SubORAMFor(id) }

// LoadBalancerTree returns plane's aggregation tree, or nil when the plane
// is monolithic (Config.LBLeaves <= 1). Cluster supervisors use it to swap
// a tripped leaf for a replacement.
func (sys *System) LoadBalancerTree(plane int) *loadbalancer.Tree {
	t, _ := sys.lbs[plane].bal.(*loadbalancer.Tree)
	return t
}

// ResetLeaf replaces a tripped leaf balancer on plane with a fresh local
// one — the leaf-level analogue of partition failover. It also clears the
// feed's consecutive-failure run so health converges once the replacement
// serves. No-op on a monolithic plane.
func (sys *System) ResetLeaf(plane, leaf int) {
	t := sys.LoadBalancerTree(plane)
	if t == nil {
		return
	}
	t.ResetLeaf(leaf)
	sys.statsMu.Lock()
	g := plane*sys.feedsPerPlane + leaf
	if g < len(sys.health.LeafConsecutiveFailures) {
		sys.health.LeafConsecutiveFailures[g] = 0
	}
	sys.statsMu.Unlock()
}

// BlockSize returns the configured value size.
func (sys *System) BlockSize() int { return sys.cfg.BlockSize }
