package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"snoopy/internal/store"
)

func startACLSystem(t *testing.T) *System {
	t.Helper()
	sys := startSystem(t, Config{
		NumLoadBalancers: 2, NumSubORAMs: 2, EpochDuration: 2 * time.Millisecond,
	}, 50)
	rules := []ACLRule{
		{User: 1, Object: 10, Op: store.OpRead},
		{User: 1, Object: 10, Op: store.OpWrite},
		{User: 2, Object: 10, Op: store.OpRead}, // read-only on 10
		{User: 2, Object: 20, Op: store.OpWrite},
	}
	if err := sys.EnableACL(rules, 2); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestACLPermittedOperations(t *testing.T) {
	sys := startACLSystem(t)
	v, found, err := sys.ReadAs(1, 10)
	if err != nil || !found {
		t.Fatalf("permitted read denied: %v %v", err, found)
	}
	if trimmed(v) != "init-10" {
		t.Fatalf("permitted read got %q", trimmed(v))
	}
	if _, found, err = sys.WriteAs(1, 10, []byte("by-user-1")); err != nil || !found {
		t.Fatalf("permitted write denied: %v %v", err, found)
	}
	v, _, _ = sys.ReadAs(1, 10)
	if trimmed(v) != "by-user-1" {
		t.Fatalf("write did not apply: %q", trimmed(v))
	}
}

func TestACLDeniedReadReturnsNull(t *testing.T) {
	sys := startACLSystem(t)
	v, found, err := sys.ReadAs(3, 10) // user 3 has no rights
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("denied read reported found")
	}
	if !bytes.Equal(v, make([]byte, len(v))) {
		t.Fatalf("denied read leaked data: %q", v)
	}
}

func TestACLDeniedWriteChangesNothing(t *testing.T) {
	sys := startACLSystem(t)
	if _, found, err := sys.WriteAs(2, 10, []byte("evil")); err != nil || found {
		t.Fatalf("denied write: err=%v found=%v (should be nil,false)", err, found)
	}
	v, found, err := sys.ReadAs(1, 10)
	if err != nil || !found {
		t.Fatal(err, found)
	}
	if trimmed(v) != "init-10" {
		t.Fatalf("denied write mutated state: %q", trimmed(v))
	}
}

func TestACLWriteOnlyGrantDoesNotAllowRead(t *testing.T) {
	sys := startACLSystem(t)
	if _, found, _ := sys.ReadAs(2, 20); found {
		t.Fatal("write-only grant allowed a read")
	}
	if _, found, err := sys.WriteAs(2, 20, []byte("ok")); err != nil || !found {
		t.Fatalf("granted write denied: %v %v", err, found)
	}
	v, _, _ := sys.ReadAs(1, 10) // unrelated sanity
	_ = v
}

func TestACLDefaultUserZero(t *testing.T) {
	sys := startACLSystem(t)
	// Plain Read runs as user 0, which has no grants.
	if _, found, _ := sys.Read(10); found {
		t.Fatal("user 0 should be denied without a rule")
	}
}

func TestACLManyUsersConcurrent(t *testing.T) {
	sys := startSystem(t, Config{NumSubORAMs: 2, EpochDuration: 2 * time.Millisecond}, 100)
	var rules []ACLRule
	for u := uint64(1); u <= 8; u++ {
		rules = append(rules, ACLRule{User: u, Object: u, Op: store.OpRead})
	}
	if err := sys.EnableACL(rules, 2); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 16)
	for u := uint64(1); u <= 8; u++ {
		u := u
		go func() {
			if _, found, err := sys.ReadAs(u, u); err != nil || !found {
				errs <- fmt.Errorf("user %d own-object read failed: %v %v", u, err, found)
				return
			}
			if _, found, _ := sys.ReadAs(u, (u%8)+1); found && (u%8)+1 != u {
				errs <- fmt.Errorf("user %d read another user's object", u)
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestACLInvalidRule(t *testing.T) {
	sys := startSystem(t, Config{NumSubORAMs: 1}, 4)
	if err := sys.EnableACL([]ACLRule{{User: 1, Object: 1, Op: 9}}, 1); err == nil {
		t.Fatal("invalid op accepted")
	}
}

func TestACLWithPipelinedEpochs(t *testing.T) {
	sys := startSystem(t, Config{
		NumLoadBalancers: 2, NumSubORAMs: 2, Pipeline: true,
		EpochDuration: 2 * time.Millisecond,
	}, 50)
	if err := sys.EnableACL([]ACLRule{
		{User: 1, Object: 10, Op: store.OpRead},
		{User: 1, Object: 10, Op: store.OpWrite},
	}, 1); err != nil {
		t.Fatal(err)
	}
	if _, found, err := sys.WriteAs(1, 10, []byte("piped")); err != nil || !found {
		t.Fatalf("pipelined ACL write: %v %v", err, found)
	}
	v, found, err := sys.ReadAs(1, 10)
	if err != nil || !found || trimmed(v) != "piped" {
		t.Fatalf("pipelined ACL read: %q %v %v", trimmed(v), found, err)
	}
	if _, found, _ := sys.ReadAs(2, 10); found {
		t.Fatal("pipelined ACL denied read leaked")
	}
}
