package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"snoopy/internal/history"
	"snoopy/internal/store"
)

const testBlock = 32

func startSystem(t *testing.T, cfg Config, nObjects int) *System {
	t.Helper()
	if cfg.BlockSize == 0 {
		cfg.BlockSize = testBlock
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 32
	}
	sys, err := NewLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	ids := make([]uint64, nObjects)
	data := make([]byte, nObjects*cfg.BlockSize)
	for i := 0; i < nObjects; i++ {
		ids[i] = uint64(i)
		copy(data[i*cfg.BlockSize:], []byte(fmt.Sprintf("init-%d", i)))
	}
	if err := sys.Init(ids, data); err != nil {
		t.Fatal(err)
	}
	return sys
}

func trimmed(b []byte) string { return strings.TrimRight(string(b), "\x00") }

func TestReadWriteSingleEpochTicker(t *testing.T) {
	sys := startSystem(t, Config{
		NumLoadBalancers: 2, NumSubORAMs: 3, EpochDuration: 2 * time.Millisecond,
	}, 100)
	v, found, err := sys.Read(7)
	if err != nil || !found {
		t.Fatalf("read failed: %v found=%v", err, found)
	}
	if trimmed(v) != "init-7" {
		t.Fatalf("read got %q", trimmed(v))
	}
	prev, found, err := sys.Write(7, []byte("updated"))
	if err != nil || !found {
		t.Fatalf("write failed: %v found=%v", err, found)
	}
	if trimmed(prev) != "init-7" {
		t.Fatalf("write returned %q, want pre-write value", trimmed(prev))
	}
	v, _, _ = sys.Read(7)
	if trimmed(v) != "updated" {
		t.Fatalf("read after write got %q", trimmed(v))
	}
}

func TestAbsentKey(t *testing.T) {
	sys := startSystem(t, Config{NumSubORAMs: 2, EpochDuration: time.Millisecond}, 10)
	_, found, err := sys.Read(9999)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("absent key reported found")
	}
	if _, found, _ := sys.Write(9999, []byte("x")); found {
		t.Fatal("write to absent key reported found")
	}
	if _, found, _ := sys.Read(9999); found {
		t.Fatal("write materialized an absent key")
	}
}

func TestRejectsReservedKeysAndOversizedValues(t *testing.T) {
	sys := startSystem(t, Config{NumSubORAMs: 1, EpochDuration: time.Millisecond}, 4)
	if _, _, err := sys.Read(store.DummyKeyBit | 1); err == nil {
		t.Fatal("reserved key accepted")
	}
	if _, _, err := sys.Write(1, make([]byte, testBlock+1)); err == nil {
		t.Fatal("oversized value accepted")
	}
}

func TestManualFlush(t *testing.T) {
	sys := startSystem(t, Config{NumSubORAMs: 2}, 20) // no ticker
	get, err := sys.ReadAsync(5)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, found, err := get()
		if err != nil || !found || trimmed(v) != "init-5" {
			t.Errorf("async read wrong: %q %v %v", trimmed(v), found, err)
		}
	}()
	sys.Flush()
	<-done
	st := sys.LastEpochStats()
	if st.Requests != 1 || st.BatchSize < 1 {
		t.Fatalf("epoch stats wrong: %+v", st)
	}
}

func TestSameEpochSemantics(t *testing.T) {
	// A read and a write to the same key in the same epoch: the read sees
	// the pre-epoch value (reads linearize before writes within a batch,
	// paper §C), and the write's previous-value response matches it.
	sys := startSystem(t, Config{NumLoadBalancers: 1, NumSubORAMs: 2}, 50)
	rd, err := sys.ReadAsync(3)
	if err != nil {
		t.Fatal(err)
	}
	wr, err := sys.WriteAsync(3, []byte("new"))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		v, _, _ := rd()
		if trimmed(v) != "init-3" {
			t.Errorf("same-epoch read got %q, want pre-epoch value", trimmed(v))
		}
	}()
	go func() {
		defer wg.Done()
		v, _, _ := wr()
		if trimmed(v) != "init-3" {
			t.Errorf("same-epoch write response %q", trimmed(v))
		}
	}()
	sys.Flush()
	wg.Wait()
}

func TestLastWriteWinsWithinEpoch(t *testing.T) {
	sys := startSystem(t, Config{NumLoadBalancers: 1, NumSubORAMs: 2}, 50)
	var fns []func() ([]byte, bool, error)
	for i := 0; i < 5; i++ {
		fn, err := sys.WriteAsync(9, []byte(fmt.Sprintf("w%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		fns = append(fns, fn)
	}
	sys.Flush() // all five writes land in this single epoch
	for _, fn := range fns {
		fn()
	}
	get, err := sys.ReadAsync(9)
	if err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	v, _, _ := get()
	if trimmed(v) != "w4" {
		t.Fatalf("last write should win, got %q", trimmed(v))
	}
}

func TestConcurrentClientsLinearizable(t *testing.T) {
	sys := startSystem(t, Config{
		NumLoadBalancers: 2, NumSubORAMs: 3, EpochDuration: time.Millisecond,
	}, 8)
	initial := map[uint64]string{}
	for i := uint64(0); i < 8; i++ {
		initial[i] = fmt.Sprintf("init-%d", i)
	}

	var mu sync.Mutex
	var ops []history.Op
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < 10; i++ {
				key := uint64(rng.Intn(8))
				start := time.Now().UnixNano()
				var op history.Op
				if rng.Intn(2) == 0 {
					v, _, err := sys.Read(key)
					if err != nil {
						t.Error(err)
						return
					}
					op = history.Op{Key: key, Output: trimmed(v)}
				} else {
					val := fmt.Sprintf("c%d-%d", c, i)
					prev, _, err := sys.Write(key, []byte(val))
					if err != nil {
						t.Error(err)
						return
					}
					// Write responses carry the epoch-start value, not the
					// immediate predecessor; only reads are observations.
					_ = prev
					op = history.Op{Key: key, Write: true, Input: val, IgnoreOutput: true}
				}
				op.Start = start
				op.End = time.Now().UnixNano()
				mu.Lock()
				ops = append(ops, op)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if !history.CheckLinearizable(initial, ops) {
		t.Fatal("history not linearizable")
	}
}

func TestValuesSurviveManyEpochs(t *testing.T) {
	sys := startSystem(t, Config{NumLoadBalancers: 2, NumSubORAMs: 4, EpochDuration: time.Millisecond}, 200)
	rng := rand.New(rand.NewSource(60))
	shadow := map[uint64]string{}
	for round := 0; round < 30; round++ {
		key := uint64(rng.Intn(200))
		if rng.Intn(2) == 0 {
			val := fmt.Sprintf("r%d", round)
			if _, _, err := sys.Write(key, []byte(val)); err != nil {
				t.Fatal(err)
			}
			shadow[key] = val
		} else {
			v, found, err := sys.Read(key)
			if err != nil || !found {
				t.Fatalf("read %d: %v %v", key, err, found)
			}
			want, ok := shadow[key]
			if !ok {
				want = fmt.Sprintf("init-%d", key)
			}
			if trimmed(v) != want {
				t.Fatalf("key %d: got %q want %q", key, trimmed(v), want)
			}
		}
	}
}

func TestCloseFailsPending(t *testing.T) {
	sys := startSystem(t, Config{NumSubORAMs: 1}, 4) // manual epochs only
	get, err := sys.ReadAsync(1)
	if err != nil {
		t.Fatal(err)
	}
	sys.Close()
	if _, _, err := get(); err == nil {
		t.Fatal("pending request should fail on Close")
	}
	if _, _, err := sys.Read(1); err == nil {
		t.Fatal("post-close request accepted")
	}
}

func TestEpochStatsShape(t *testing.T) {
	sys := startSystem(t, Config{NumLoadBalancers: 2, NumSubORAMs: 3}, 64)
	var fns []func() ([]byte, bool, error)
	for i := 0; i < 40; i++ {
		fn, err := sys.ReadAsync(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		fns = append(fns, fn)
	}
	sys.Flush()
	for _, fn := range fns {
		if _, _, err := fn(); err != nil {
			t.Fatal(err)
		}
	}
	st := sys.LastEpochStats()
	if st.Requests != 40 || st.Dropped != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if len(st.LBWall) != 2 || len(st.SubORAMWall) != 3 {
		t.Fatalf("per-node walls missing: %+v", st)
	}
	if st.Wall <= 0 || st.MakeBatch <= 0 || st.SubORAM <= 0 {
		t.Fatalf("durations not recorded: %+v", st)
	}
}

func TestSealedSystem(t *testing.T) {
	sys := startSystem(t, Config{NumSubORAMs: 2, Sealed: true, EpochDuration: time.Millisecond}, 30)
	if _, _, err := sys.Write(5, []byte("sealed!")); err != nil {
		t.Fatal(err)
	}
	v, found, err := sys.Read(5)
	if err != nil || !found || trimmed(v) != "sealed!" {
		t.Fatalf("sealed round trip: %q %v %v", trimmed(v), found, err)
	}
}

func TestManyValuesIntegrity(t *testing.T) {
	// Sized to stay fast under -race on small hosts.
	sys := startSystem(t, Config{NumLoadBalancers: 2, NumSubORAMs: 3, EpochDuration: time.Millisecond}, 200)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := c * 40; i < c*40+40; i++ {
				if _, _, err := sys.Write(uint64(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < 160; i++ {
		v, found, err := sys.Read(uint64(i))
		if err != nil || !found {
			t.Fatal(err, found)
		}
		if !bytes.HasPrefix(v, []byte(fmt.Sprintf("v%d", i))) {
			t.Fatalf("key %d corrupted: %q", i, trimmed(v))
		}
	}
}

func TestDoubleCloseAndConcurrentFlush(t *testing.T) {
	sys := startSystem(t, Config{NumSubORAMs: 2, EpochDuration: time.Millisecond}, 10)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sys.Flush()
		}()
	}
	wg.Wait()
	sys.Close()
	sys.Close() // must be idempotent
}

func TestFlushWithNoSubscribers(t *testing.T) {
	// Idle epochs (no pending requests) must still run cleanly — each
	// subORAM gets one dummy per LB (obliviousness of request presence).
	sys := startSystem(t, Config{NumLoadBalancers: 2, NumSubORAMs: 3}, 10)
	for i := 0; i < 5; i++ {
		sys.Flush()
	}
	st := sys.LastEpochStats()
	if st.Requests != 0 || st.BatchSize != 1 {
		t.Fatalf("idle epoch stats: %+v", st)
	}
}
