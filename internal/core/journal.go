// Root fault tolerance (Config.JournalDir): the sealed epoch journal, the
// standby-replay path, the reply-dedupe window behind the idempotent API,
// and the simulated-crash machinery the chaos harness drives.
//
// Exactly-once argument, end to end:
//
//   - Journal-before-dispatch. An epoch's merged batches, reply routing
//     tables (client idempotency IDs per feed row), and per-partition
//     delivery tags are durably journaled BEFORE any partition sees the
//     batches. Not journaled ⇒ never applied, so a client retry of an
//     unacknowledged request re-executes as a fresh request — safe.
//   - Tagged delivery. Every dispatch travels under the journaled
//     (lbID, seq) tag; partitions keep a replay cache keyed by it. A
//     successor root replaying a journaled epoch re-issues the identical
//     delivery, and a partition that already applied it answers from its
//     cache instead of applying twice. Journaled ⇒ applied at most once.
//   - Reply window. Successful results of idempotent requests are parked
//     under their client-chosen IDs (on the original root at reply time,
//     on a successor at replay time), so a retry of an already-answered
//     request returns the original result. The client's own ReplyDedup
//     window (internal/transport) suppresses the duplicate if both
//     incarnations manage to answer.
//
// Known degradations (documented, exercised by internal/chaos): a
// partition failover that replaces a tagged client between the crash and
// the replay presents a fresh replay cache, so that partition's share of
// the epoch degrades to at-least-once (last-write-wins makes re-applying
// a journaled batch idempotent at the storage layer for writes of the
// same epoch, but the guarantee is formally weakened); and requests that
// carry no idempotency ID (id 0) keep the original at-least-once
// semantics throughout.
package core

import (
	"errors"
	"sync"

	"snoopy/internal/arena"
	"snoopy/internal/persist"
	"snoopy/internal/store"
)

// ErrRootDown is returned for requests submitted to (or in flight on) a
// crashed root load balancer. Clients retry against the promoted standby
// with the same idempotency ID.
var ErrRootDown = errors.New("core: root load balancer down")

// TaggedClient is the optional partition-client hook root fault tolerance
// builds on: the journal records each client's delivery tag before
// dispatch, and a successor adopts the recorded tags before replaying.
// transport.RemoteSubORAM and transport.LocalTagged implement it.
type TaggedClient interface {
	// DeliveryTag returns the delivery-stream identity and last consumed
	// sequence number.
	DeliveryTag() (lbID, seq uint64)
	// AdoptDeliveryTag overrides both, so the next dispatch replays the
	// predecessor's delivery.
	AdoptDeliveryTag(lbID, seq uint64)
}

// replyWindow parks successful results of idempotent requests under their
// client-chosen IDs, bounded FIFO like transport.ReplyDedup: it needs to
// cover the client retry horizon, not the session.
type replyWindow struct {
	mu   sync.Mutex
	seen map[uint64]result
	ring []uint64
	next int
}

func newReplyWindow(n int) *replyWindow {
	if n <= 0 {
		n = 4096
	}
	return &replyWindow{seen: make(map[uint64]result, n), ring: make([]uint64, n)}
}

// put parks a successful result under id. Errors are not parked: a failed
// request was not answered, and the client's retry should re-execute it.
func (w *replyWindow) put(id uint64, r result) {
	if id == 0 || r.err != nil {
		return
	}
	// The caller may hand the same value slice to the live client; park a
	// private copy so a later retry cannot observe client mutations.
	r.value = append([]byte(nil), r.value...)
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.seen[id]; dup {
		return
	}
	if old := w.ring[w.next]; old != 0 {
		delete(w.seen, old)
	}
	w.ring[w.next] = id
	w.next = (w.next + 1) % len(w.ring)
	w.seen[id] = r
}

func (w *replyWindow) get(id uint64) (result, bool) {
	if id == 0 {
		return result{}, false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	r, ok := w.seen[id]
	if ok {
		// Hand out a copy: the caller owns its answer, and a later retry
		// must not observe the first retry's mutations.
		r.value = append([]byte(nil), r.value...)
	}
	return r, ok
}

// tagOf resolves the journaled delivery tag for one partition client: only
// clients that are both tagged and batched get a real tag (the journal
// predicts exactly one BatchAccessN per partition per epoch). The zero tag
// marks an untagged client, whose replay is at-least-once.
func tagOf(sub SubORAMClient) persist.JournalTag {
	if tc, ok := sub.(TaggedClient); ok {
		if _, ok := sub.(BatchedSubORAMClient); ok {
			lbID, seq := tc.DeliveryTag()
			return persist.JournalTag{LBID: lbID, Seq: seq}
		}
	}
	return persist.JournalTag{}
}

// initDispTags (re)loads the per-partition dispatch-tag predictions from
// the live clients — at open, and again after a journal replay consumed
// sequence numbers.
func (sys *System) initDispTags() {
	subs := sys.snapshotSubs()
	sys.tagMu.Lock()
	if sys.dispTags == nil {
		sys.dispTags = make([]persist.JournalTag, len(subs))
	}
	for s, sub := range subs {
		sys.dispTags[s] = tagOf(sub)
	}
	sys.tagMu.Unlock()
}

// journalBegin durably journals an epoch before its dispatch: the merged
// batches, the per-feed reply routing (client idempotency IDs in queue
// order), and the delivery tags the dispatch will consume. No-op without a
// journal. Caller holds epochMu, so the tag prediction cannot race another
// dispatch.
func (sys *System) journalBegin(job *epochJob) error {
	if sys.journal == nil {
		return nil
	}
	F := sys.feedsPerPlane
	rec := persist.JournalEpoch{
		Epoch:     job.id,
		BlockSize: sys.cfg.BlockSize,
		ACLOK:     job.aclErr == nil,
		Planes:    make([]persist.JournalPlane, len(sys.lbs)),
	}
	sys.tagMu.Lock()
	rec.Tags = append([]persist.JournalTag(nil), sys.dispTags...)
	sys.tagMu.Unlock()
	nLive := 0
	for i := range job.eps {
		ep := &job.eps[i]
		p := &rec.Planes[i]
		p.OK = ep.err == nil && ep.batches != nil
		if p.OK {
			nLive++
			p.PerSub = ep.perSub
			p.Batch = ep.batches.All
			p.Dropped = ep.droppedKeys
		}
		p.Feeds = make([]persist.JournalFeed, F)
		for f := 0; f < F; f++ {
			fd := &p.Feeds[f]
			fd.OK = p.OK && (ep.feedErrs == nil || ep.feedErrs[f] == nil)
			fd.Reqs = ep.feedReqs[f]
			q := job.queues[i*F+f]
			fd.IDs = make([]uint64, len(q))
			for j := range q {
				fd.IDs[j] = q[j].id
			}
			if ep.droppedByFeed != nil {
				fd.Dropped = ep.droppedByFeed[f]
			}
			if job.denied != nil {
				fd.Denied = job.denied[i*F+f]
			}
		}
	}
	if err := sys.journal.Begin(&rec); err != nil {
		return err
	}
	// The dispatch this record describes will consume exactly one grouped
	// delivery per partition (partStageB forces BatchAccessN whenever a
	// journal is configured); advance the predictions to the tags the NEXT
	// epoch will travel under.
	if nLive > 0 {
		sys.tagMu.Lock()
		for s := range sys.dispTags {
			if sys.dispTags[s] != (persist.JournalTag{}) {
				sys.dispTags[s].Seq++
			}
		}
		sys.tagMu.Unlock()
	}
	return nil
}

// journalComplete marks an epoch fully replied; the journal drops it from
// the replay set (and compacts once the open set drains).
func (sys *System) journalComplete(epoch uint64) {
	if sys.journal != nil {
		sys.journal.Complete(epoch)
	}
}

// replayJournal re-issues every journaled-but-incomplete epoch of a
// crashed predecessor, in epoch order, before the system serves. Called
// from NewWithSubORAMs, before workers accept new epochs.
func (sys *System) replayJournal(incomplete []*persist.JournalEpoch) {
	for _, je := range incomplete {
		sys.replayEpoch(je)
		sys.journal.Complete(je.Epoch)
		je.Release()
	}
}

// replayEpoch re-runs one journaled epoch: adopt the journaled delivery
// tags, re-dispatch each partition's batches in fixed plane order (the
// partitions' replay caches deduplicate already-applied deliveries),
// re-match the responses against the journaled request snapshots, and park
// the results in the reply window under the journaled idempotency IDs so
// retried clients get their answers.
func (sys *System) replayEpoch(je *persist.JournalEpoch) {
	subs := sys.snapshotSubs()
	S := len(subs)
	if len(je.Tags) != S || len(je.Planes) != len(sys.lbs) {
		// A different deployment shape than the journal was written under;
		// nothing can be replayed meaningfully. Fail closed: skip.
		return
	}
	for s, sub := range subs {
		if je.Tags[s] == (persist.JournalTag{}) {
			continue
		}
		if tc, ok := sub.(TaggedClient); ok {
			tc.AdoptDeliveryTag(je.Tags[s].LBID, je.Tags[s].Seq)
		}
	}
	live := make([]int, 0, len(je.Planes))
	for i := range je.Planes {
		if je.Planes[i].OK && je.Planes[i].Batch != nil {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return
	}
	responses := make([][]*store.Requests, len(je.Planes))
	for i := range responses {
		responses[i] = make([]*store.Requests, S)
	}
	subErr := make([]error, S)
	var wg sync.WaitGroup
	for s := 0; s < S; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			gather := make([]*store.Requests, 0, len(live))
			for _, i := range live {
				p := &je.Planes[i]
				gather = append(gather, p.Batch.View(s*p.PerSub, (s+1)*p.PerSub))
			}
			if bn, ok := subs[s].(BatchedSubORAMClient); ok {
				outs, err := bn.BatchAccessN(gather)
				if err != nil {
					subErr[s] = err
					return
				}
				for k, i := range live {
					responses[i][s] = outs[k]
				}
				return
			}
			for k, i := range live {
				out, err := subs[s].BatchAccess(gather[k])
				if err != nil {
					subErr[s] = err
					return
				}
				responses[i][s] = out
			}
		}()
	}
	wg.Wait()
	if je.ACLOK {
		for _, i := range live {
			sys.replayPlaneReplies(je, i, responses[i], subErr)
		}
	}
	for i := range responses {
		for s := range responses[i] {
			arena.Default.PutRequests(responses[i][s])
			responses[i][s] = nil
		}
	}
}

// replayPlaneReplies re-matches one plane's replayed responses and parks
// each tracked request's result in the reply window.
func (sys *System) replayPlaneReplies(je *persist.JournalEpoch, i int, resp []*store.Requests, subErr []error) {
	p := &je.Planes[i]
	total := 0
	for s := range resp {
		if subErr[s] == nil && resp[s] != nil {
			total += resp[s].Len()
		}
	}
	all := arena.Default.GetRequests(total, je.BlockSize)
	defer arena.Default.PutRequests(all)
	off := 0
	for s := range resp {
		if subErr[s] == nil && resp[s] != nil {
			all.CopyRowsPlain(off, resp[s])
			off += resp[s].Len()
		}
	}
	var droppedSet map[uint64]struct{}
	addDropped := func(keys []uint64) {
		for _, k := range keys {
			if droppedSet == nil {
				droppedSet = make(map[uint64]struct{})
			}
			droppedSet[k] = struct{}{}
		}
	}
	addDropped(p.Dropped)
	for f := range p.Feeds {
		fd := &p.Feeds[f]
		if !fd.OK || fd.Reqs == nil || fd.Reqs.Len() == 0 {
			continue
		}
		tracked := false
		for _, id := range fd.IDs {
			if id != 0 {
				tracked = true
				break
			}
		}
		if !tracked {
			continue
		}
		feedDropped := droppedSet
		if len(fd.Dropped) > 0 {
			feedDropped = make(map[uint64]struct{}, len(droppedSet)+len(fd.Dropped))
			for k := range droppedSet {
				feedDropped[k] = struct{}{}
			}
			for _, k := range fd.Dropped {
				feedDropped[k] = struct{}{}
			}
		}
		matched, err := sys.lbs[i].bal.MatchResponses(je.Epoch, all, f, fd.Reqs)
		if err != nil {
			continue
		}
		for j := 0; j < matched.Len(); j++ {
			idx := matched.Client[j]
			if idx >= uint64(len(fd.IDs)) {
				continue
			}
			id := fd.IDs[idx]
			if id == 0 {
				continue
			}
			key := matched.Key[j]
			if subErr[sys.lbs[i].bal.SubORAMFor(key)] != nil {
				continue
			}
			if _, drop := feedDropped[key]; drop {
				continue
			}
			val := append([]byte(nil), matched.Block(j)...)
			found := matched.Aux[j]
			if fd.Denied != nil {
				nullDenied(val, &found, fd.Denied[idx])
			}
			sys.replyWin.put(id, result{value: val, found: found == 1})
		}
		arena.Default.PutRequests(matched)
	}
}

// --- simulated root crash ---------------------------------------------

// crashLocked transitions the system to the crashed state: no replies, no
// further epochs, submits fail with ErrRootDown — the observable behavior
// of a killed root process. Caller holds epochMu.
func (sys *System) crashLocked() {
	sys.crashOne.Do(func() { close(sys.crashedCh) })
	sys.closeOne.Do(func() {
		close(sys.closed)
		if sys.ticker != nil {
			sys.ticker.Stop()
		}
	})
	if !sys.pipeOff {
		sys.pipeOff = true
		for _, q := range sys.partQ {
			close(q)
		}
	}
}

// crashAt consults the test crash hook at a pre-dispatch point. On crash
// it marks the system dead, releases the job's storage, and answers
// nothing — clients observe ErrRootDown through the idempotent wait path.
// Caller holds epochMu; on true it has been released.
func (sys *System) crashAt(point string, job *epochJob) bool {
	if sys.cfg.TestCrashPoint == nil || sys.cfg.Pipeline || !sys.cfg.TestCrashPoint(point, job.id) {
		return false
	}
	sys.crashLocked()
	sys.epochMu.Unlock()
	sys.releaseJobSilently(job, false)
	return true
}

// crashAfterDispatch consults the hook at the post-execution point: the
// partitions applied the epoch, but no reply (and no journal completion)
// was issued — the window where only the journal keeps the epoch's
// effects observable.
func (sys *System) crashAfterDispatch(job *epochJob) bool {
	if sys.cfg.TestCrashPoint == nil || sys.cfg.Pipeline || !sys.cfg.TestCrashPoint("dispatch", job.id) {
		return false
	}
	sys.epochMu.Lock()
	sys.crashLocked()
	sys.epochMu.Unlock()
	sys.releaseJobSilently(job, true)
	return true
}

// releaseJobSilently returns a crashed job's pooled storage to the arena
// without replying to anyone — a dead process answers nothing.
func (sys *System) releaseJobSilently(job *epochJob, withResponses bool) {
	for i := range job.eps {
		job.eps[i].batches.Release()
		job.eps[i].batches = nil
		for f := range job.eps[i].feedReqs {
			arena.Default.PutRequests(job.eps[i].feedReqs[f])
			job.eps[i].feedReqs[f] = nil
		}
	}
	if withResponses {
		for i := range job.responses {
			for s := range job.responses[i] {
				arena.Default.PutRequests(job.responses[i][s])
				job.responses[i][s] = nil
			}
		}
	}
}

// Crash simulates a root process death from outside an epoch (the chaos
// harness's kill switch): the system stops silently, pending requests are
// never answered, and in-flight idempotent waits return ErrRootDown.
// Synchronous mode only (like Config.TestCrashPoint).
func (sys *System) Crash() {
	sys.epochMu.Lock()
	sys.crashLocked()
	sys.epochMu.Unlock()
	sys.wg.Wait()
}

// Crashed reports whether the root is in the (simulated) crashed state.
func (sys *System) Crashed() bool {
	select {
	case <-sys.crashedCh:
		return true
	default:
		return false
	}
}

// --- idempotent client API --------------------------------------------

// await waits for a request's result, preferring an already-delivered
// result over the crash signal (the reply channel is buffered, so a reply
// issued before the crash is never lost).
func (sys *System) await(ch chan result) result {
	select {
	case r := <-ch:
		return r
	case <-sys.crashedCh:
		select {
		case r := <-ch:
			return r
		default:
			return result{err: ErrRootDown}
		}
	}
}

// submitIdem is submitAs with a client-chosen idempotency ID: if the
// window already holds id's answer (this incarnation answered it, or a
// predecessor's journaled epoch was replayed here), it is returned without
// re-executing.
func (sys *System) submitIdem(user uint64, op uint8, key uint64, data []byte, id uint64) (chan result, *result, error) {
	if r, ok := sys.replyWin.get(id); ok {
		return nil, &r, nil
	}
	ch, err := sys.submitID(user, op, key, data, id)
	if err != nil {
		return nil, nil, err
	}
	return ch, nil, nil
}

// ReadIdem is Read with exactly-once semantics across root crashes: a
// retry with the same non-zero id (against this root or its promoted
// successor over the same journal directory) returns the original answer
// instead of re-executing. id 0 degrades to plain Read.
func (sys *System) ReadIdem(id, key uint64) (value []byte, found bool, err error) {
	ch, parked, err := sys.submitIdem(0, store.OpRead, key, nil, id)
	if err != nil {
		return nil, false, err
	}
	if parked != nil {
		return parked.value, parked.found, parked.err
	}
	r := sys.await(ch)
	return r.value, r.found, r.err
}

// WriteIdem is Write with the same exactly-once contract as ReadIdem: a
// journaled epoch's write is applied exactly once however many times the
// client retries across a root crash.
func (sys *System) WriteIdem(id, key uint64, value []byte) (previous []byte, found bool, err error) {
	ch, parked, err := sys.submitIdem(0, store.OpWrite, key, value, id)
	if err != nil {
		return nil, false, err
	}
	if parked != nil {
		return parked.value, parked.found, parked.err
	}
	r := sys.await(ch)
	return r.value, r.found, r.err
}

// ReadIdemAsync submits without blocking; the returned function waits.
func (sys *System) ReadIdemAsync(id, key uint64) (func() ([]byte, bool, error), error) {
	ch, parked, err := sys.submitIdem(0, store.OpRead, key, nil, id)
	if err != nil {
		return nil, err
	}
	return func() ([]byte, bool, error) {
		if parked != nil {
			return parked.value, parked.found, parked.err
		}
		r := sys.await(ch)
		return r.value, r.found, r.err
	}, nil
}

// WriteIdemAsync submits without blocking; the returned function waits.
func (sys *System) WriteIdemAsync(id, key uint64, value []byte) (func() ([]byte, bool, error), error) {
	ch, parked, err := sys.submitIdem(0, store.OpWrite, key, value, id)
	if err != nil {
		return nil, err
	}
	return func() ([]byte, bool, error) {
		if parked != nil {
			return parked.value, parked.found, parked.err
		}
		r := sys.await(ch)
		return r.value, r.found, r.err
	}, nil
}
