package core

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"snoopy/internal/store"
)

// failLeaf is a LeafBalancer stub whose BuildRun always fails — the
// chaos-injection analogue of a crashed leaf load balancer.
type failLeaf struct{ msg string }

func (d failLeaf) BuildRun(uint64, *store.Requests, int, uint64, *store.Requests) ([]uint64, error) {
	return nil, fmt.Errorf("%s", d.msg)
}

func TestTreeSystemReadWrite(t *testing.T) {
	sys := startSystem(t, Config{
		NumLoadBalancers: 2, NumSubORAMs: 3, LBLeaves: 4,
		EpochDuration: 2 * time.Millisecond,
	}, 100)
	if sys.FeedsPerPlane() != 4 {
		t.Fatalf("FeedsPerPlane = %d, want 4", sys.FeedsPerPlane())
	}
	v, found, err := sys.Read(7)
	if err != nil || !found || trimmed(v) != "init-7" {
		t.Fatalf("tree read: %q %v %v", trimmed(v), found, err)
	}
	prev, found, err := sys.Write(7, []byte("updated"))
	if err != nil || !found || trimmed(prev) != "init-7" {
		t.Fatalf("tree write: %q %v %v", trimmed(prev), found, err)
	}
	if v, _, _ := sys.Read(7); trimmed(v) != "updated" {
		t.Fatalf("read after write got %q", trimmed(v))
	}
}

func TestTreeSystemCrossFeedLastWriteWins(t *testing.T) {
	// Five same-key writes in one epoch land on random leaves of the tree.
	// Same-epoch writes are ordered (feed, local sequence) — the tree
	// analogue of the multi-plane (load balancer, sequence) order — so the
	// winner is the last write enqueued with the highest-numbered leaf that
	// received any. The pinned assignment seed makes that deterministic.
	const leaves = 4
	const seed = 7
	sys := startSystem(t, Config{
		NumLoadBalancers: 1, NumSubORAMs: 2, LBLeaves: leaves, TestLBChoiceSeed: seed,
	}, 50)
	rng := rand.New(rand.NewSource(seed))
	winner := -1
	maxFeed := -1
	var fns []func() ([]byte, bool, error)
	for i := 0; i < 5; i++ {
		fn, err := sys.WriteAsync(9, []byte(fmt.Sprintf("w%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		fns = append(fns, fn)
		if f := rng.Intn(leaves); f >= maxFeed {
			maxFeed, winner = f, i
		}
	}
	sys.Flush()
	for _, fn := range fns {
		fn()
	}
	get, err := sys.ReadAsync(9)
	if err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	v, _, _ := get()
	if trimmed(v) != fmt.Sprintf("w%d", winner) {
		t.Fatalf("cross-feed LWW: got %q, want w%d (feed %d)", trimmed(v), winner, maxFeed)
	}
}

func TestTreeSystemManyEpochsIntegrity(t *testing.T) {
	sys := startSystem(t, Config{
		NumLoadBalancers: 2, NumSubORAMs: 3, LBLeaves: 2,
		EpochDuration: time.Millisecond, Pipeline: true,
	}, 200)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := c * 30; i < c*30+30; i++ {
				if _, _, err := sys.Write(uint64(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < 120; i++ {
		v, found, err := sys.Read(uint64(i))
		if err != nil || !found {
			t.Fatal(err, found)
		}
		if !strings.HasPrefix(trimmed(v), fmt.Sprintf("v%d", i)) {
			t.Fatalf("key %d corrupted: %q", i, trimmed(v))
		}
	}
}

func TestTreeSystemWithACL(t *testing.T) {
	// The denied-flag plumbing is indexed by global feed, so ACL must keep
	// working when each plane has several feeds.
	sys := startSystem(t, Config{
		NumLoadBalancers: 1, NumSubORAMs: 2, LBLeaves: 3,
		EpochDuration: 2 * time.Millisecond,
	}, 50)
	if err := sys.EnableACL([]ACLRule{
		{User: 1, Object: 10, Op: store.OpRead},
	}, 1); err != nil {
		t.Fatal(err)
	}
	v, found, err := sys.ReadAs(1, 10)
	if err != nil || !found || trimmed(v) != "init-10" {
		t.Fatalf("permitted read through tree: %q %v %v", trimmed(v), found, err)
	}
	if _, found, _ := sys.ReadAs(2, 10); found {
		t.Fatal("denied read through tree reported found")
	}
}

func TestTreeInvalidFanInRejected(t *testing.T) {
	_, err := NewLocal(Config{
		BlockSize: testBlock, NumSubORAMs: 1, Lambda: 32,
		LBLeaves: 4, LBFanIn: 2,
	})
	if err == nil {
		t.Fatal("LBFanIn < LBLeaves accepted")
	}
}

// TestTreeLeafKillFailsOnlyItsClients is the leaf-level chaos test: with one
// leaf of the aggregation tree dead, exactly the clients assigned to that
// leaf fail — with the leaf's error, in the same epoch — while every other
// client completes normally, and the failure shows up in HealthStats for a
// supervisor to act on. ResetLeaf then repairs the plane in place.
func TestTreeLeafKillFailsOnlyItsClients(t *testing.T) {
	const leaves = 4
	const seed = 1
	sys := startSystem(t, Config{
		NumLoadBalancers: 1, NumSubORAMs: 3, LBLeaves: leaves,
		TestLBChoiceSeed: seed,
	}, 64)

	// The client→feed assignment is the pinned rng's Intn draw sequence;
	// replicate it so the test knows each request's leaf exactly.
	rng := rand.New(rand.NewSource(seed))
	feedOf := func() int { return rng.Intn(1 * leaves) }

	// Warm-up epoch through the healthy tree.
	get, err := sys.ReadAsync(0)
	if err != nil {
		t.Fatal(err)
	}
	feedOf()
	sys.Flush()
	if _, _, err := get(); err != nil {
		t.Fatal(err)
	}

	const dead = 2
	tree := sys.LoadBalancerTree(0)
	if tree == nil {
		t.Fatal("LoadBalancerTree returned nil for a tree plane")
	}
	tree.ReplaceLeaf(dead, failLeaf{msg: "injected: leaf 2 down"})

	const n = 48
	fns := make([]func() ([]byte, bool, error), n)
	feeds := make([]int, n)
	for i := 0; i < n; i++ {
		fns[i], err = sys.ReadAsync(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		feeds[i] = feedOf()
	}
	sys.Flush() // one epoch resolves every request, dead leaf included
	onDead := 0
	for i := 0; i < n; i++ {
		v, found, err := fns[i]()
		if feeds[i] == dead {
			onDead++
			if err == nil || !strings.Contains(err.Error(), "leaf 2 down") {
				t.Fatalf("request %d on dead leaf: err=%v, want injected leaf error", i, err)
			}
			continue
		}
		if err != nil || !found || trimmed(v) != fmt.Sprintf("init-%d", i) {
			t.Fatalf("request %d on healthy leaf %d: %q %v %v", i, feeds[i], trimmed(v), found, err)
		}
	}
	if onDead == 0 {
		t.Fatal("no request landed on the dead leaf; pick another seed")
	}

	h := sys.Health()
	if len(h.LeafConsecutiveFailures) != leaves {
		t.Fatalf("leaf health has %d entries, want %d", len(h.LeafConsecutiveFailures), leaves)
	}
	for g := 0; g < leaves; g++ {
		wantFail := uint64(0)
		if g == dead {
			wantFail = 1
		}
		if h.LeafTotalFailures[g] != wantFail {
			t.Fatalf("LeafTotalFailures[%d] = %d, want %d", g, h.LeafTotalFailures[g], wantFail)
		}
	}
	if h.LeafConsecutiveFailures[dead] != 1 || h.Healthy() {
		t.Fatalf("dead leaf not reflected in health: %+v", h)
	}

	// Repair in place and verify the plane fully recovers.
	sys.ResetLeaf(0, dead)
	for i := 0; i < n; i++ {
		fns[i], err = sys.ReadAsync(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
	}
	sys.Flush()
	for i := 0; i < n; i++ {
		v, found, err := fns[i]()
		if err != nil || !found || trimmed(v) != fmt.Sprintf("init-%d", i) {
			t.Fatalf("post-repair request %d: %q %v %v", i, trimmed(v), found, err)
		}
	}
	if h := sys.Health(); !h.Healthy() {
		t.Fatalf("health did not converge after ResetLeaf: %+v", h)
	}
}
