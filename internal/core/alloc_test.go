package core

import (
	"testing"

	"snoopy/internal/telemetry"
)

// TestEpochTelemetryRecordingZeroAlloc guards the exact recording pattern
// the epoch loop performs — gauge set, counter adds, and one span record per
// stage (A, per-partition B, C, whole epoch) — against heap allocations,
// with an access-trace sink attached (the worst case). The data plane's
// zero-allocation contract (PR 2) must survive instrumentation.
func TestEpochTelemetryRecordingZeroAlloc(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.SetTrace(telemetry.NewTraceSink())

	epoch := reg.Gauge("core_epoch")
	requests := reg.Counter("core_requests_total")
	overflow := reg.Counter("core_overflow_dropped_total")
	stA := reg.Stage("stage_a_batch")
	stB := reg.Stage("stage_b_suboram")
	stC := reg.Stage("stage_c_match")
	stE := reg.Stage("epoch")

	var id uint64
	allocs := testing.AllocsPerRun(100, func() {
		id++
		t0 := reg.Now()
		stA.Record(id, 0, 64, t0, reg.Now())
		for s := 0; s < 4; s++ {
			stB.Record(id, s, 64, t0, reg.Now())
		}
		stC.Record(id, 0, 32, t0, reg.Now())
		epoch.Set(int64(id))
		requests.Add(32)
		overflow.Add(0)
		stE.Record(id, -1, 32, t0, reg.Now())
	})
	if allocs != 0 {
		t.Fatalf("epoch telemetry recording allocated %.1f times per run, want 0", allocs)
	}
	if requests.Value() == 0 || len(reg.Spans(8)) == 0 {
		t.Fatal("telemetry not recording — guard is vacuous")
	}
}
