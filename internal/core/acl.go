package core

import (
	"fmt"

	"snoopy/internal/crypt"
	"snoopy/internal/obliv"
	"snoopy/internal/store"
)

// Access control (paper Appendix D): the access-control matrix is stored
// in a *second, recursive Snoopy instance* keyed by (user, object,
// operation). Each epoch then runs in two phases: the load balancers first
// obliviously look up the ACL entries for the pending requests, then apply
// the permission bits — branch-free, so execution never reveals which
// requests were permitted — and run the ordinary epoch. Denied reads
// return null values; denied writes are converted into reads (no state
// change) and also return null.

// ACLRule grants user the given operation (store.OpRead or store.OpWrite)
// on object.
type ACLRule struct {
	User   uint64
	Object uint64
	Op     uint8
}

type aclState struct {
	sys    *System
	hasher *crypt.Hasher
}

// aclKey maps an (user, object, op) triple into the ACL store's key space
// with a keyed hash, exactly as §D's access-control matrix lookup.
func (a *aclState) key(user, object uint64, op uint8) uint64 {
	h := a.hasher.Sum64(user)
	h ^= a.hasher.Sum64(object ^ 0x9e3779b97f4a7c15)
	h ^= a.hasher.Sum64(uint64(op) | 1<<62)
	return h &^ store.DummyKeyBit
}

// EnableACL installs an access-control matrix, served by an internal
// recursive Snoopy deployment with aclSubORAMs partitions. Must be called
// before requests are submitted. Requests without an explicit user (Read/
// Write) run as user 0.
func (sys *System) EnableACL(rules []ACLRule, aclSubORAMs int) error {
	if aclSubORAMs <= 0 {
		aclSubORAMs = 1
	}
	aclSys, err := NewLocal(Config{
		BlockSize:   8, // a permission record: one byte used
		NumSubORAMs: aclSubORAMs,
		Lambda:      sys.cfg.Lambda,
		// Manual epochs: the outer Flush drives the recursive instance.
	})
	if err != nil {
		return err
	}
	a := &aclState{sys: aclSys, hasher: crypt.NewHasher(crypt.MustNewKey())}

	ids := make([]uint64, 0, len(rules))
	seen := make(map[uint64]bool, len(rules))
	for _, r := range rules {
		if r.Op != store.OpRead && r.Op != store.OpWrite {
			return fmt.Errorf("core: ACL rule with invalid op %d", r.Op)
		}
		k := a.key(r.User, r.Object, r.Op)
		if seen[k] {
			continue
		}
		seen[k] = true
		ids = append(ids, k)
	}
	data := make([]byte, len(ids)*8)
	for i := range ids {
		data[i*8] = 1 // granted
	}
	if err := aclSys.Init(ids, data); err != nil {
		return err
	}

	sys.epochMu.Lock()
	defer sys.epochMu.Unlock()
	sys.acl = a
	return nil
}

// ReadAs submits a read on behalf of user; with ACL enabled, denied reads
// return a zero value with found == false.
func (sys *System) ReadAs(user, key uint64) (value []byte, found bool, err error) {
	ch, err := sys.submitAs(user, store.OpRead, key, nil)
	if err != nil {
		return nil, false, err
	}
	r := <-ch
	return r.value, r.found, r.err
}

// WriteAs submits a write on behalf of user; with ACL enabled, denied
// writes change nothing and return found == false.
func (sys *System) WriteAs(user, key uint64, value []byte) (previous []byte, found bool, err error) {
	ch, err := sys.submitAs(user, store.OpWrite, key, value)
	if err != nil {
		return nil, false, err
	}
	r := <-ch
	return r.value, r.found, r.err
}

// applyACL performs the recursive permission lookups for one epoch's
// pending queues and rewrites the requests branch-free: denied writes
// become reads, and every denied request is flagged so its response is
// nulled after matching. Returns per-queue denial flags.
func (sys *System) applyACL(queues [][]pending) ([][]uint8, error) {
	a := sys.acl
	denied := make([][]uint8, len(queues))
	if a == nil {
		return denied, nil
	}
	// Phase 1: submit all ACL lookups, run one recursive epoch.
	type lookup struct {
		q, i int
		wait chan result
	}
	var lookups []lookup
	for qi, q := range queues {
		denied[qi] = make([]uint8, len(q))
		for i, p := range q {
			ch, err := a.sys.submit(store.OpRead, a.key(p.user, p.key, p.op), nil)
			if err != nil {
				return nil, err
			}
			lookups = append(lookups, lookup{q: qi, i: i, wait: ch})
		}
	}
	a.sys.Flush()
	// Phase 2: apply permissions branch-free.
	for _, l := range lookups {
		r := <-l.wait
		if r.err != nil {
			return nil, r.err
		}
		var granted uint8
		if r.found && len(r.value) > 0 {
			granted = r.value[0] & 1
		}
		p := &queues[l.q][l.i]
		deny := obliv.Not(granted)
		denied[l.q][l.i] = deny
		// A denied write must not mutate state: flip its op to read. The
		// flip is a conditional set on a secret bit, not a branch on the
		// access path.
		op := uint64(p.op)
		obliv.CondSetU64(deny, &op, uint64(store.OpRead))
		p.op = uint8(op)
	}
	return denied, nil
}

// nullDenied zeroes the responses of denied requests (branch-free).
func nullDenied(val []byte, found *uint8, deny uint8) {
	zero := make([]byte, len(val))
	obliv.CondCopyBytes(deny, val, zero)
	obliv.CondSetU8(deny, found, 0)
}

// CloseACL tears down the recursive instance (called from Close).
func (sys *System) closeACL() {
	if sys.acl != nil {
		sys.acl.sys.Close()
	}
}

// ReadAsAsync submits a read for user without blocking.
func (sys *System) ReadAsAsync(user, key uint64) (func() ([]byte, bool, error), error) {
	ch, err := sys.submitAs(user, store.OpRead, key, nil)
	if err != nil {
		return nil, err
	}
	return func() ([]byte, bool, error) { r := <-ch; return r.value, r.found, r.err }, nil
}

// WriteAsAsync submits a write for user without blocking.
func (sys *System) WriteAsAsync(user, key uint64, value []byte) (func() ([]byte, bool, error), error) {
	ch, err := sys.submitAs(user, store.OpWrite, key, value)
	if err != nil {
		return nil, err
	}
	return func() ([]byte, bool, error) { r := <-ch; return r.value, r.found, r.err }, nil
}
