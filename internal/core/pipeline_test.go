package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"snoopy/internal/history"
)

func TestPipelinedBasicCorrectness(t *testing.T) {
	sys := startSystem(t, Config{
		NumLoadBalancers: 2, NumSubORAMs: 3, Pipeline: true,
		EpochDuration: 2 * time.Millisecond,
	}, 100)
	if _, _, err := sys.Write(7, []byte("pipelined")); err != nil {
		t.Fatal(err)
	}
	v, found, err := sys.Read(7)
	if err != nil || !found || trimmed(v) != "pipelined" {
		t.Fatalf("pipelined round trip: %q %v %v", trimmed(v), found, err)
	}
}

func TestPipelinedManualFlushDispatches(t *testing.T) {
	sys := startSystem(t, Config{NumSubORAMs: 2, Pipeline: true}, 20)
	get, err := sys.ReadAsync(5)
	if err != nil {
		t.Fatal(err)
	}
	sys.Flush() // returns after dispatch; completion happens in the worker
	v, found, err := get()
	if err != nil || !found || trimmed(v) != "init-5" {
		t.Fatalf("pipelined manual flush: %q %v %v", trimmed(v), found, err)
	}
}

func TestPipelinedOverlappingEpochsKeepOrder(t *testing.T) {
	// Writes dispatched in consecutive epochs must apply in epoch order
	// even while stages overlap.
	sys := startSystem(t, Config{NumLoadBalancers: 1, NumSubORAMs: 2, Pipeline: true}, 30)
	var waits []func() ([]byte, bool, error)
	for e := 0; e < 6; e++ {
		w, err := sys.WriteAsync(3, []byte(fmt.Sprintf("e%d", e)))
		if err != nil {
			t.Fatal(err)
		}
		waits = append(waits, w)
		sys.Flush() // one write per epoch, dispatched back-to-back
	}
	for _, w := range waits {
		if _, _, err := w(); err != nil {
			t.Fatal(err)
		}
	}
	get, err := sys.ReadAsync(3)
	if err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	v, _, err := get()
	if err != nil {
		t.Fatal(err)
	}
	if trimmed(v) != "e5" {
		t.Fatalf("epoch order violated: final value %q", trimmed(v))
	}
}

func TestPipelinedLinearizable(t *testing.T) {
	sys := startSystem(t, Config{
		NumLoadBalancers: 2, NumSubORAMs: 3, Pipeline: true,
		EpochDuration: time.Millisecond,
	}, 8)
	initial := map[uint64]string{}
	for i := uint64(0); i < 8; i++ {
		initial[i] = fmt.Sprintf("init-%d", i)
	}
	var mu sync.Mutex
	var ops []history.Op
	var wg sync.WaitGroup
	for c := 0; c < 5; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c + 100)))
			for i := 0; i < 8; i++ {
				key := uint64(rng.Intn(8))
				start := time.Now().UnixNano()
				var op history.Op
				if rng.Intn(2) == 0 {
					v, _, err := sys.Read(key)
					if err != nil {
						t.Error(err)
						return
					}
					op = history.Op{Key: key, Output: trimmed(v)}
				} else {
					val := fmt.Sprintf("p%d-%d", c, i)
					if _, _, err := sys.Write(key, []byte(val)); err != nil {
						t.Error(err)
						return
					}
					op = history.Op{Key: key, Write: true, Input: val, IgnoreOutput: true}
				}
				op.Start = start
				op.End = time.Now().UnixNano()
				mu.Lock()
				ops = append(ops, op)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if !history.CheckLinearizable(initial, ops) {
		t.Fatal("pipelined history not linearizable")
	}
}

func TestPipelinedCloseDrains(t *testing.T) {
	sys, err := NewLocal(Config{
		BlockSize: testBlock, NumSubORAMs: 2, Lambda: 32, Pipeline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := []uint64{1}
	if err := sys.Init(ids, make([]byte, testBlock)); err != nil {
		t.Fatal(err)
	}
	get, err := sys.ReadAsync(1)
	if err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	sys.Close() // must drain the dispatched epoch, then fail the rest
	if _, _, err := get(); err != nil {
		t.Fatalf("dispatched request should complete through Close: %v", err)
	}
	if _, _, err := sys.Read(1); err == nil {
		t.Fatal("post-close request accepted")
	}
}
