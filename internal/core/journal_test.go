package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"snoopy/internal/store"
	"snoopy/internal/suboram"
	"snoopy/internal/transport"
)

// journalCluster models what survives a root crash: the partitions (with
// their replay caches — the partition server's state) and the journal
// directory. Each root incarnation gets fresh tagged clients over the same
// partitions, exactly like a standby process dialing the same servers.
type journalCluster struct {
	subs []*suboram.SubORAM
	rcs  []*transport.ReplayCache
	dir  string
}

func newJournalCluster(t *testing.T, S int) *journalCluster {
	t.Helper()
	c := &journalCluster{dir: t.TempDir()}
	for i := 0; i < S; i++ {
		c.subs = append(c.subs, suboram.New(suboram.Config{BlockSize: testBlock}))
		c.rcs = append(c.rcs, transport.NewReplayCache())
	}
	return c
}

// root starts one root incarnation over the cluster. crash is the
// simulated-crash schedule (nil = never).
func (c *journalCluster) root(t *testing.T, crash func(point string, epoch uint64) bool) *System {
	t.Helper()
	clients := make([]SubORAMClient, len(c.subs))
	for i := range c.subs {
		clients[i] = transport.NewLocalTagged(c.subs[i], c.rcs[i])
	}
	sys, err := NewWithSubORAMs(Config{
		BlockSize:        testBlock,
		NumLoadBalancers: 2,
		Lambda:           32,
		JournalDir:       c.dir,
		TestCrashPoint:   crash,
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func (c *journalCluster) initObjects(t *testing.T, sys *System, n int) {
	t.Helper()
	ids := make([]uint64, n)
	data := make([]byte, n*testBlock)
	for i := 0; i < n; i++ {
		ids[i] = uint64(i)
		copy(data[i*testBlock:], []byte(fmt.Sprintf("init-%d", i)))
	}
	if err := sys.Init(ids, data); err != nil {
		t.Fatal(err)
	}
}

// crashOnceAt returns a schedule that crashes the first time the named
// point is reached at or after the given epoch.
func crashOnceAt(point string, epoch uint64) func(string, uint64) bool {
	fired := false
	return func(p string, e uint64) bool {
		if fired || p != point || e < epoch {
			return false
		}
		fired = true
		return true
	}
}

// runIdemWrite submits an idempotent write, runs the epoch, and returns
// the outcome.
func runIdemWrite(t *testing.T, sys *System, id, key uint64, val string) ([]byte, bool, error) {
	t.Helper()
	wait, err := sys.WriteIdemAsync(id, key, []byte(val))
	if err != nil {
		return nil, false, err
	}
	sys.Flush()
	return wait()
}

// TestJournalCrashAfterDispatchExactlyOnce is the tentpole scenario: the
// root crashes after the partitions applied an epoch but before any reply
// or journal completion. The promoted standby replays the journaled epoch
// — the partitions' replay caches deduplicate the delivery — and the
// client's retry with the same ID gets the original answer. The write is
// applied exactly once.
func TestJournalCrashAfterDispatchExactlyOnce(t *testing.T) {
	c := newJournalCluster(t, 3)

	r1 := c.root(t, crashOnceAt("dispatch", 2))
	c.initObjects(t, r1, 64)
	if prev, found, err := runIdemWrite(t, r1, 1, 5, "v1"); err != nil || !found || trimmed(prev) != "init-5" {
		t.Fatalf("epoch 1 write: prev=%q found=%v err=%v", trimmed(prev), found, err)
	}

	// Epoch 2 crashes post-execution: the waiter must see the root die,
	// not hang and not get an answer.
	if _, _, err := runIdemWrite(t, r1, 2, 5, "v2"); !errors.Is(err, ErrRootDown) {
		t.Fatalf("crashed epoch returned %v, want ErrRootDown", err)
	}
	if !r1.Crashed() {
		t.Fatal("root did not crash at the dispatch point")
	}
	// New submissions are refused distinguishably.
	if _, _, err := r1.Read(5); !errors.Is(err, ErrRootDown) {
		t.Fatalf("submit on crashed root returned %v, want ErrRootDown", err)
	}
	r1.Close()

	// Standby promotion: opening the same journal directory replays
	// epoch 2 and parks its replies.
	r2 := c.root(t, nil)
	defer r2.Close()

	// The client retry returns the ORIGINAL answer: previous value "v1",
	// proving the replayed epoch was not applied a second time (a fresh
	// re-execution would observe previous "v2").
	prev, found, err := r2.WriteIdem(2, 5, []byte("v2"))
	if err != nil || !found {
		t.Fatalf("retry after promotion: found=%v err=%v", found, err)
	}
	if trimmed(prev) != "v1" {
		t.Fatalf("retry observed previous %q, want %q (exactly-once violated)", trimmed(prev), "v1")
	}

	wait, err := r2.ReadIdemAsync(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	r2.Flush()
	got, found, err := wait()
	if err != nil || !found || trimmed(got) != "v2" {
		t.Fatalf("post-promotion read: %q found=%v err=%v", trimmed(got), found, err)
	}
}

// TestJournalCrashBeforeDispatchReplaysOnce covers the journaled-but-
// undispatched window: the partitions never saw the epoch, so the standby's
// replay is its first (and only) application.
func TestJournalCrashBeforeDispatchReplaysOnce(t *testing.T) {
	c := newJournalCluster(t, 2)

	r1 := c.root(t, crashOnceAt("journal", 2))
	c.initObjects(t, r1, 32)
	if _, _, err := runIdemWrite(t, r1, 10, 7, "seven-a"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runIdemWrite(t, r1, 11, 7, "seven-b"); !errors.Is(err, ErrRootDown) {
		t.Fatalf("crashed epoch returned %v, want ErrRootDown", err)
	}
	r1.Close()

	r2 := c.root(t, nil)
	defer r2.Close()
	prev, found, err := r2.WriteIdem(11, 7, []byte("seven-b"))
	if err != nil || !found || trimmed(prev) != "seven-a" {
		t.Fatalf("retry: prev=%q found=%v err=%v, want prev=%q", trimmed(prev), found, err, "seven-a")
	}
	wait, err := r2.ReadIdemAsync(12, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2.Flush()
	got, _, err := wait()
	if err != nil || trimmed(got) != "seven-b" {
		t.Fatalf("read after replay: %q err=%v", trimmed(got), err)
	}
}

// TestJournalCrashBeforeJournalRetriesFresh covers the unjournaled window:
// a crash after stage A but before the journal commit means the epoch was
// never acknowledged, so nothing is replayed and the retry re-executes as
// a fresh request.
func TestJournalCrashBeforeJournalRetriesFresh(t *testing.T) {
	c := newJournalCluster(t, 2)

	r1 := c.root(t, crashOnceAt("stage-a", 2))
	c.initObjects(t, r1, 32)
	if _, _, err := runIdemWrite(t, r1, 20, 9, "nine-a"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runIdemWrite(t, r1, 21, 9, "nine-b"); !errors.Is(err, ErrRootDown) {
		t.Fatalf("crashed epoch returned %v, want ErrRootDown", err)
	}
	r1.Close()

	r2 := c.root(t, nil)
	defer r2.Close()
	// Nothing journaled: the retry executes fresh and observes the last
	// committed value as previous.
	prev, found, err := runIdemWrite(t, r2, 21, 9, "nine-b")
	if err != nil || !found || trimmed(prev) != "nine-a" {
		t.Fatalf("fresh retry: prev=%q found=%v err=%v", trimmed(prev), found, err)
	}
}

// TestJournalEpochContinuation: a successor continues the predecessor's
// epoch sequence instead of restarting at 1 — the partitions' fixed-order
// linearizability depends on monotone epochs.
func TestJournalEpochContinuation(t *testing.T) {
	c := newJournalCluster(t, 2)
	r1 := c.root(t, nil)
	c.initObjects(t, r1, 16)
	for i := 0; i < 3; i++ {
		r1.Flush()
	}
	r1.Close()

	r2 := c.root(t, nil)
	defer r2.Close()
	r2.Flush()
	if ep := r2.LastEpochStats().Epoch; ep != 4 {
		t.Fatalf("successor's first epoch is %d, want 4", ep)
	}
}

// TestReplyWindowStopsReExecution: within one incarnation, a second call
// with an already-answered ID returns the parked answer without running
// another epoch.
func TestReplyWindowStopsReExecution(t *testing.T) {
	c := newJournalCluster(t, 2)
	sys := c.root(t, nil)
	defer sys.Close()
	c.initObjects(t, sys, 16)

	prev, _, err := runIdemWrite(t, sys, 30, 3, "first")
	if err != nil || trimmed(prev) != "init-3" {
		t.Fatalf("first write: prev=%q err=%v", trimmed(prev), err)
	}
	// Same ID, different payload, no Flush: answered from the window.
	prev2, found, err := sys.WriteIdem(30, 3, []byte("second"))
	if err != nil || !found {
		t.Fatalf("retry: found=%v err=%v", found, err)
	}
	if trimmed(prev2) != "init-3" {
		t.Fatalf("retry observed previous %q, want the original answer %q", trimmed(prev2), "init-3")
	}
	// The duplicate never executed.
	wait, err := sys.ReadIdemAsync(31, 3)
	if err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	got, _, err := wait()
	if err != nil || trimmed(got) != "first" {
		t.Fatalf("read: %q err=%v (duplicate write executed?)", trimmed(got), err)
	}

	// Parked values are private copies: scribbling over a returned value
	// must not corrupt a later retry's answer.
	for i := range prev2 {
		prev2[i] = 0xee
	}
	prev3, _, err := sys.WriteIdem(30, 3, []byte("third"))
	if err != nil || trimmed(prev3) != "init-3" {
		t.Fatalf("second retry: prev=%q err=%v", trimmed(prev3), err)
	}
	if bytes.Contains(prev3, []byte{0xee}) {
		t.Fatal("reply window shares storage with delivered values")
	}
}

// TestCrashKillSwitch: the external Crash() hook behaves like the in-epoch
// crash points — silent stop, ErrRootDown on submit, successor replays
// nothing (no epoch was in flight).
func TestCrashKillSwitch(t *testing.T) {
	c := newJournalCluster(t, 2)
	r1 := c.root(t, nil)
	c.initObjects(t, r1, 16)
	if _, _, err := runIdemWrite(t, r1, 40, 2, "x"); err != nil {
		t.Fatal(err)
	}
	r1.Crash()
	if !r1.Crashed() {
		t.Fatal("Crash did not mark the root crashed")
	}
	if _, _, err := r1.Read(2); !errors.Is(err, ErrRootDown) {
		t.Fatalf("submit after Crash returned %v, want ErrRootDown", err)
	}
	r1.Close()

	r2 := c.root(t, nil)
	defer r2.Close()
	wait, err := r2.ReadIdemAsync(41, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2.Flush()
	got, _, err := wait()
	if err != nil || trimmed(got) != "x" {
		t.Fatalf("successor read: %q err=%v", trimmed(got), err)
	}
}

// TestJournalUntaggedIDZero: id 0 keeps plain at-least-once semantics —
// never parked, never deduplicated.
func TestJournalUntaggedIDZero(t *testing.T) {
	c := newJournalCluster(t, 2)
	sys := c.root(t, nil)
	defer sys.Close()
	c.initObjects(t, sys, 8)

	if _, _, err := runIdemWrite(t, sys, 0, 1, "a"); err != nil {
		t.Fatal(err)
	}
	// A second id-0 write executes normally (previous is "a", not parked).
	prev, _, err := runIdemWrite(t, sys, 0, 1, "b")
	if err != nil || trimmed(prev) != "a" {
		t.Fatalf("second id-0 write: prev=%q err=%v", trimmed(prev), err)
	}
}

// TestJournaledEpochsKeepPlainAPI: the journal must not disturb the plain
// (untracked) API's behavior in the same deployment.
func TestJournaledEpochsKeepPlainAPI(t *testing.T) {
	c := newJournalCluster(t, 3)
	sys := c.root(t, nil)
	defer sys.Close()
	c.initObjects(t, sys, 64)

	done := make(chan struct{})
	go func() {
		defer close(done)
		v, found, err := sys.Read(12)
		if err != nil || !found || trimmed(v) != "init-12" {
			t.Errorf("plain read: %q found=%v err=%v", trimmed(v), found, err)
		}
	}()
	waitForQueued(t, sys, 1)
	sys.Flush()
	<-done
}

// waitForQueued spins until n requests are enqueued across all feeds (the
// plain API has no async variant handle to rendezvous on).
func waitForQueued(t *testing.T, sys *System, n int) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		time.Sleep(100 * time.Microsecond)
		total := 0
		for _, st := range sys.lbs {
			st.mu.Lock()
			for _, q := range st.queues {
				total += len(q)
			}
			st.mu.Unlock()
		}
		if total >= n {
			return
		}
	}
	t.Fatal("request never enqueued")
}

// TestJournalReplayedResponsesCopied guards the LocalTagged arena
// interaction: a replayed grouped response must be an independent copy, so
// the replaying root's stage-C release cannot corrupt the replay cache.
func TestJournalReplayedResponsesCopied(t *testing.T) {
	c := newJournalCluster(t, 2)
	r1 := c.root(t, crashOnceAt("dispatch", 2))
	c.initObjects(t, r1, 16)
	if _, _, err := runIdemWrite(t, r1, 50, 4, "val-a"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runIdemWrite(t, r1, 51, 4, "val-b"); !errors.Is(err, ErrRootDown) {
		t.Fatalf("want ErrRootDown, got %v", err)
	}
	r1.Close()

	// Two successive promotions over the same journal: if the first
	// replay's storage handling corrupted the caches or the journal, the
	// second would return garbage.
	r2 := c.root(t, nil)
	if prev, _, err := r2.WriteIdem(51, 4, []byte("val-b")); err != nil || trimmed(prev) != "val-a" {
		t.Fatalf("first promotion retry: prev=%q err=%v", trimmed(prev), err)
	}
	r2.Close()

	r3 := c.root(t, nil)
	defer r3.Close()
	wait, err := r3.ReadIdemAsync(52, 4)
	if err != nil {
		t.Fatal(err)
	}
	r3.Flush()
	got, _, err := wait()
	if err != nil || trimmed(got) != "val-b" {
		t.Fatalf("second promotion read: %q err=%v", trimmed(got), err)
	}
}

// TestJournalOverflowKeysNotParked: a request dropped by Theorem-3
// overflow is answered with ErrOverflow, which must never enter the reply
// window (a retry should re-execute it).
func TestJournalOverflowKeysNotParked(t *testing.T) {
	w := newReplyWindow(4)
	w.put(1, result{err: ErrOverflow})
	if _, ok := w.get(1); ok {
		t.Fatal("error result parked in reply window")
	}
	w.put(2, result{value: []byte("ok"), found: true})
	if r, ok := w.get(2); !ok || string(r.value) != "ok" {
		t.Fatal("successful result not parked")
	}
	// Bounded eviction.
	for id := uint64(3); id <= 6; id++ {
		w.put(id, result{found: true})
	}
	if _, ok := w.get(2); ok {
		t.Fatal("window not bounded")
	}
	if _, ok := w.get(0); ok {
		t.Fatal("id 0 resolvable")
	}
}

// TestJournalRouteKeyPinned: both incarnations must route every key to the
// same partition (the journal directory pins the routing key); otherwise a
// replayed batch would scan the wrong partition.
func TestJournalRouteKeyPinned(t *testing.T) {
	c := newJournalCluster(t, 4)
	r1 := c.root(t, nil)
	c.initObjects(t, r1, 32)
	want := make([]int, 32)
	for k := 0; k < 32; k++ {
		want[k] = r1.SubORAMFor(uint64(k))
	}
	r1.Close()
	r2 := c.root(t, nil)
	defer r2.Close()
	for k := 0; k < 32; k++ {
		if got := r2.SubORAMFor(uint64(k)); got != want[k] {
			t.Fatalf("key %d routed to %d by successor, %d by predecessor", k, got, want[k])
		}
	}
}

var _ = store.OpRead // keep the import when build tags trim tests
