package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestPipelinedEpochsArenaIsolation drives many overlapping epochs with
// concurrent writers and verifies every reader observes either the initial
// value or something a writer actually wrote for that exact key. Pooled
// buffers flowing between stage A, B, and C of different in-flight epochs
// would surface here as cross-epoch (or cross-key) value bleed — and, under
// -race, as a data race on the recycled backing arrays.
func TestPipelinedEpochsArenaIsolation(t *testing.T) {
	const block = 32
	sys, err := NewLocal(Config{
		BlockSize:        block,
		NumLoadBalancers: 2,
		NumSubORAMs:      3,
		Lambda:           32,
		EpochDuration:    time.Millisecond,
		Pipeline:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	const nKeys = 64
	ids := make([]uint64, nKeys)
	data := make([]byte, nKeys*block)
	for i := range ids {
		ids[i] = uint64(i)
		copy(data[i*block:], fmt.Sprintf("init-%03d", i))
	}
	if err := sys.Init(ids, data); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() { // writers: every value names its key
			defer wg.Done()
			for i := 0; i < 40; i++ {
				key := uint64((g*16 + i) % nKeys)
				val := fmt.Sprintf("w-%03d-g%d-i%02d", key, g, i)
				if _, _, err := sys.Write(key, []byte(val)); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() { // readers: a value must always name the key it came from
			defer wg.Done()
			for i := 0; i < 60; i++ {
				key := uint64(i % nKeys)
				v, found, err := sys.Read(key)
				if err != nil {
					errCh <- err
					return
				}
				if !found {
					errCh <- fmt.Errorf("key %d vanished", key)
					return
				}
				wantInit := []byte(fmt.Sprintf("init-%03d", key))
				wantWrite := []byte(fmt.Sprintf("w-%03d-", key))
				if !bytes.HasPrefix(v, wantInit) && !bytes.HasPrefix(v, wantWrite) {
					errCh <- fmt.Errorf("key %d returned foreign value %q (buffer bleed)", key, v)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
