package core

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snoopy/internal/enclave"
	"snoopy/internal/faultnet"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
	"snoopy/internal/telemetry"
	"snoopy/internal/transport"
)

// TestEpochGaugeMonotoneUnderLateStageC pins the fix for the epoch gauge
// rollback: stage C of epoch N-1 can finish after stage C of epoch N when
// epochs overlap, and its gauge update must not drag the published epoch
// backwards. The stats path has carried an `Epoch >=` guard since the
// pipelined mode landed; the gauge path used an unguarded Set.
func TestEpochGaugeMonotoneUnderLateStageC(t *testing.T) {
	reg := telemetry.NewRegistry()
	sys := startSystem(t, Config{
		NumSubORAMs: 2, Pipeline: true, PipelineDepth: 4, Telemetry: reg,
	}, 16)

	var waits []func() ([]byte, bool, error)
	for e := 0; e < 12; e++ {
		w, err := sys.ReadAsync(uint64(e % 16))
		if err != nil {
			t.Fatal(err)
		}
		waits = append(waits, w)
		sys.Flush()
	}
	for _, w := range waits {
		if _, _, err := w(); err != nil {
			t.Fatal(err)
		}
	}

	g := reg.Gauge("core_epoch")
	top := g.Value()
	if top != int64(sys.LastEpochStats().Epoch) {
		t.Fatalf("gauge %d does not match last epoch %d", top, sys.LastEpochStats().Epoch)
	}
	// A straggler stage C publishing an older epoch id must be a no-op on
	// the stored value (this is exactly the call stageCStats makes).
	sys.telEpoch.SetMax(top - 3)
	if got := g.Value(); got != top {
		t.Fatalf("late stage C rolled the epoch gauge back: %d -> %d", top, got)
	}
	sys.telEpoch.SetMax(top + 1)
	if got := g.Value(); got != top+1 {
		t.Fatalf("gauge refused a newer epoch: %d", got)
	}
}

// stallSub wedges BatchAccess on a channel, simulating a partition that is
// alive but not making progress.
type stallSub struct {
	inner   SubORAMClient
	stall   atomic.Bool
	release chan struct{}
}

func (s *stallSub) Init(ids []uint64, data []byte) error { return s.inner.Init(ids, data) }

func (s *stallSub) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	if s.stall.Load() {
		<-s.release
	}
	return s.inner.BatchAccess(reqs)
}

// TestFlushBlockedOnDepthUnblocksOnClose pins the Flush/Close liveness
// contract: a Flush waiting for a pipeline slot (every slot held by an
// epoch stalled in stage B) must observe Close, abandon the dispatch, and
// fail the epoch's requests with ErrClosed instead of blocking forever on
// an un-cancellable send.
func TestFlushBlockedOnDepthUnblocksOnClose(t *testing.T) {
	stalled := &stallSub{inner: suboram.New(suboram.Config{BlockSize: testBlock}), release: make(chan struct{})}
	subs := []SubORAMClient{stalled, suboram.New(suboram.Config{BlockSize: testBlock})}
	sys, err := NewWithSubORAMs(Config{
		BlockSize: testBlock, NumLoadBalancers: 1, Lambda: 32,
		Pipeline: true, PipelineDepth: 1,
	}, subs)
	if err != nil {
		t.Fatal(err)
	}
	ids := []uint64{1, 2, 3, 4}
	if err := sys.Init(ids, make([]byte, len(ids)*testBlock)); err != nil {
		t.Fatal(err)
	}

	// Epoch 1 takes the only pipeline slot and wedges in stage B.
	stalled.stall.Store(true)
	w1, err := sys.ReadAsync(1)
	if err != nil {
		t.Fatal(err)
	}
	sys.Flush()

	// Epoch 2's Flush blocks waiting for the slot.
	w2, err := sys.ReadAsync(2)
	if err != nil {
		t.Fatal(err)
	}
	flushed := make(chan struct{})
	go func() {
		sys.Flush()
		close(flushed)
	}()
	select {
	case <-flushed:
		t.Fatal("Flush did not block with the pipeline full")
	case <-time.After(50 * time.Millisecond):
	}

	// Close must unblock the waiting Flush; its requests fail with
	// ErrClosed rather than hanging.
	closed := make(chan struct{})
	go func() {
		sys.Close()
		close(closed)
	}()
	done := make(chan error, 1)
	go func() {
		_, _, err := w2()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked Flush's request got %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request of the blocked Flush never resolved")
	}

	// Release the wedged partition: the dispatched epoch drains through
	// Close and its request still completes.
	stalled.stall.Store(false)
	close(stalled.release)
	if _, _, err := w1(); err != nil {
		t.Fatalf("dispatched epoch should complete through Close: %v", err)
	}
	select {
	case <-flushed:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Flush never returned")
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned")
	}
}

// TestPipelinedSoakWithStalledRemote hammers a depth-4 pipelined system
// with concurrent Flush, LastEpochStats, Health, and client traffic while
// one of three partitions is a remote whose connection stalls mid-drain
// (faultnet StallAfter), then closes the system with requests still in
// flight. Run under -race (scripts/check.sh), this is the memory-safety
// and liveness soak for the worker-pool engine: every accepted request
// must resolve, and Close must return.
func TestPipelinedSoakWithStalledRemote(t *testing.T) {
	platform := enclave.NewPlatform()
	m := enclave.Measure("snoopy-suboram")
	sub := suboram.New(suboram.Config{BlockSize: testBlock})
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The server's read direction stalls after 64 KiB: a few epochs in,
	// mid-frame, the partition stops consuming batches.
	l := faultnet.WrapListener(raw, func(i int) (faultnet.Plan, faultnet.Plan) {
		read := faultnet.NoFaults()
		read.StallAfter = 64 << 10
		return read, faultnet.NoFaults()
	})
	defer l.Kill()
	go transport.ServeSubORAM(l, sub, platform, m)

	remote, err := transport.DialOptions(raw.Addr().String(), platform, m,
		transport.Options{DialTimeout: 2 * time.Second, RPCTimeout: 300 * time.Millisecond}.NoRetries())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	subs := []SubORAMClient{
		suboram.New(suboram.Config{BlockSize: testBlock}),
		suboram.New(suboram.Config{BlockSize: testBlock}),
		remote,
	}
	sys, err := NewWithSubORAMs(Config{
		BlockSize: testBlock, NumLoadBalancers: 2, Lambda: 32,
		Pipeline: true, PipelineDepth: 4,
		EpochDuration: 2 * time.Millisecond,
	}, subs)
	if err != nil {
		t.Fatal(err)
	}
	const nKeys = 32
	ids := make([]uint64, nKeys)
	data := make([]byte, nKeys*testBlock)
	for i := range ids {
		ids[i] = uint64(i)
	}
	if err := sys.Init(ids, data); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		g := g
		wg.Add(1)
		go func() { // clients: requests may fail (stalled partition, Close) but must resolve
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := uint64((g*11 + i) % nKeys)
				if i%2 == 0 {
					sys.Read(key)
				} else {
					sys.Write(key, []byte{byte(g), byte(i)})
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // extra manual flushes racing the ticker
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sys.Flush()
			}
		}
	}()
	wg.Add(1)
	go func() { // observers
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sys.LastEpochStats()
				sys.Health()
			}
		}
	}()

	time.Sleep(600 * time.Millisecond) // long enough to cross the stall offset
	closeDone := make(chan struct{})
	go func() {
		sys.Close() // close with requests in flight
		close(closeDone)
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)

	waitDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(waitDone)
	}()
	select {
	case <-waitDone:
	case <-time.After(30 * time.Second):
		t.Fatal("soak goroutines wedged (request never resolved)")
	}
	select {
	case <-closeDone:
	case <-time.After(30 * time.Second):
		t.Fatal("Close wedged mid-drain")
	}
}
