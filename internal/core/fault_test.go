package core

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snoopy/internal/enclave"
	"snoopy/internal/faultnet"
	"snoopy/internal/persist"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
	"snoopy/internal/transport"
)

const faultBlock = 32

var errInjected = errors.New("injected partition crash")

// flakySub wraps a real partition with a switchable failure mode and a
// configurable pre-failure delay (so failed partitions report nonzero wall
// time, like a deadline expiry would).
type flakySub struct {
	inner     SubORAMClient
	fail      atomic.Bool
	failDelay time.Duration
}

func (f *flakySub) Init(ids []uint64, data []byte) error { return f.inner.Init(ids, data) }

func (f *flakySub) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	if f.fail.Load() {
		if f.failDelay > 0 {
			time.Sleep(f.failDelay)
		}
		return nil, errInjected
	}
	return f.inner.BatchAccess(reqs)
}

// newFlakySystem builds an S-partition system over flaky local subORAMs,
// loaded with keys 0..n-1, manual epochs (Flush-driven).
func newFlakySystem(t *testing.T, S, n int) (*System, []*flakySub) {
	t.Helper()
	flaky := make([]*flakySub, S)
	subs := make([]SubORAMClient, S)
	for i := range subs {
		flaky[i] = &flakySub{inner: suboram.New(suboram.Config{BlockSize: faultBlock})}
		subs[i] = flaky[i]
	}
	sys, err := NewWithSubORAMs(Config{
		BlockSize: faultBlock, NumLoadBalancers: 1, Lambda: 32,
	}, subs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	ids := make([]uint64, n)
	data := make([]byte, n*faultBlock)
	for i := range ids {
		ids[i] = uint64(i)
		data[i*faultBlock] = byte(i + 1)
	}
	if err := sys.Init(ids, data); err != nil {
		t.Fatal(err)
	}
	return sys, flaky
}

// flushAsync submits reads for the given keys, runs one epoch, and returns
// each key's outcome.
func flushAsync(t *testing.T, sys *System, keys []uint64) map[uint64]error {
	t.Helper()
	waits := make(map[uint64]func() ([]byte, bool, error), len(keys))
	for _, k := range keys {
		w, err := sys.ReadAsync(k)
		if err != nil {
			t.Fatalf("submit %d: %v", k, err)
		}
		waits[k] = w
	}
	sys.Flush()
	outcome := make(map[uint64]error, len(keys))
	for k, w := range waits {
		_, _, err := w()
		outcome[k] = err
	}
	return outcome
}

// TestPartitionFailureDegradesGracefully kills one of three partitions for
// an epoch: only the requests routed to it may fail (with its index in the
// error), the rest of the epoch completes, health counters track the
// failure, and the next epoch — partition recovered — is fully healthy.
func TestPartitionFailureDegradesGracefully(t *testing.T) {
	const S, n = 3, 60
	sys, flaky := newFlakySystem(t, S, n)
	keys := make([]uint64, n)
	routed := make(map[uint64]int, n)
	for i := range keys {
		keys[i] = uint64(i)
		routed[uint64(i)] = sys.SubORAMFor(uint64(i))
	}
	perPart := make([]int, S)
	for _, s := range routed {
		perPart[s]++
	}
	for s, c := range perPart {
		if c == 0 {
			t.Fatalf("no keys routed to partition %d; enlarge n", s)
		}
	}

	flaky[1].fail.Store(true)
	outcome := flushAsync(t, sys, keys)
	for k, err := range outcome {
		if routed[k] == 1 {
			if !errors.Is(err, errInjected) {
				t.Fatalf("key %d on dead partition: err=%v, want injected failure", k, err)
			}
			if !strings.Contains(err.Error(), "suboram 1") {
				t.Fatalf("key %d error %q lacks partition index", k, err)
			}
		} else if err != nil {
			t.Fatalf("key %d on healthy partition %d failed: %v", k, routed[k], err)
		}
	}
	h := sys.Health()
	if h.ConsecutiveFailures[1] != 1 || h.TotalFailures[1] != 1 {
		t.Fatalf("health for dead partition: %+v", h)
	}
	if h.ConsecutiveFailures[0] != 0 || h.ConsecutiveFailures[2] != 0 {
		t.Fatalf("healthy partitions marked failed: %+v", h)
	}

	// Next epoch, partition recovered: the system survived and is whole.
	flaky[1].fail.Store(false)
	outcome = flushAsync(t, sys, keys)
	for k, err := range outcome {
		if err != nil {
			t.Fatalf("key %d failed after recovery: %v", k, err)
		}
	}
	h = sys.Health()
	if h.ConsecutiveFailures[1] != 0 {
		t.Fatalf("consecutive-failure run not reset on success: %+v", h)
	}
	if h.TotalFailures[1] != 1 {
		t.Fatalf("total failures lost: %+v", h)
	}
}

// TestStageBDiagnostics checks the failure-path observability satellites:
// a failed partition's wall time is recorded (not left at zero) and its
// error carries the partition index.
func TestStageBDiagnostics(t *testing.T) {
	sys, flaky := newFlakySystem(t, 2, 20)
	flaky[1].fail.Store(true)
	flaky[1].failDelay = 10 * time.Millisecond

	keys := []uint64{}
	for k := uint64(0); k < 20; k++ {
		if sys.SubORAMFor(k) == 1 {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		t.Fatal("no keys routed to partition 1")
	}
	outcome := flushAsync(t, sys, keys)
	for k, err := range outcome {
		if err == nil || !strings.Contains(err.Error(), "suboram 1") {
			t.Fatalf("key %d: err=%v, want partition-tagged error", k, err)
		}
	}
	stats := sys.LastEpochStats()
	if len(stats.SubORAMWall) != 2 {
		t.Fatalf("SubORAMWall: %v", stats.SubORAMWall)
	}
	if stats.SubORAMWall[1] < 10*time.Millisecond {
		t.Fatalf("failed partition wall time %v, want >= its 10ms stall", stats.SubORAMWall[1])
	}
}

// TestOverflowReturnsErrOverflow forces the Theorem-3 overflow event with a
// tiny security parameter and a key set aimed at one partition: every
// dropped request must fail with ErrOverflow — never hang, never return a
// silently wrong "not found".
func TestOverflowReturnsErrOverflow(t *testing.T) {
	const S = 2
	subs := make([]SubORAMClient, S)
	for i := range subs {
		subs[i] = suboram.New(suboram.Config{BlockSize: faultBlock})
	}
	sys, err := NewWithSubORAMs(Config{
		BlockSize: faultBlock, NumLoadBalancers: 1, Lambda: 1,
	}, subs)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// Collect distinct keys that all route to partition 0, overwhelming its
	// per-epoch batch capacity.
	var keys []uint64
	for k := uint64(0); len(keys) < 40 && k < 10_000; k++ {
		if sys.SubORAMFor(k) == 0 {
			keys = append(keys, k)
		}
	}
	n := len(keys)
	ids := append([]uint64(nil), keys...)
	data := make([]byte, n*faultBlock)
	for i := range ids {
		data[i*faultBlock] = 1
	}
	if err := sys.Init(ids, data); err != nil {
		t.Fatal(err)
	}

	outcome := flushAsync(t, sys, keys)
	overflowed := 0
	for k, err := range outcome {
		switch {
		case err == nil:
		case errors.Is(err, ErrOverflow):
			overflowed++
		default:
			t.Fatalf("key %d: unexpected error %v", k, err)
		}
	}
	if overflowed == 0 {
		t.Fatalf("no overflow with Lambda=1 and %d keys on one partition; batch stats: %+v",
			n, sys.LastEpochStats())
	}
	if got := sys.TotalDropped(); got != uint64(overflowed) {
		t.Fatalf("TotalDropped=%d but %d requests got ErrOverflow", got, overflowed)
	}

	// The negligible event is survivable: the next epoch with a sane load
	// answers correctly.
	outcome = flushAsync(t, sys, keys[:4])
	for k, err := range outcome {
		if err != nil {
			t.Fatalf("key %d failed in post-overflow epoch: %v", k, err)
		}
	}
}

// TestFailoverPromotesStandby trips the automatic failover path: a
// partition failing FailoverAfter consecutive epochs invokes the hook, a
// failed first attempt is retried, and the promoted standby (here: the
// flaky wrapper's healthy inner partition, standing in for a replica.Group
// spare) serves the partition's original data from then on.
func TestFailoverPromotesStandby(t *testing.T) {
	const S, n = 2, 24
	flaky := make([]*flakySub, S)
	subs := make([]SubORAMClient, S)
	for i := range subs {
		flaky[i] = &flakySub{inner: suboram.New(suboram.Config{BlockSize: faultBlock})}
		subs[i] = flaky[i]
	}
	var attempts atomic.Int32
	sys, err := NewWithSubORAMs(Config{
		BlockSize: faultBlock, NumLoadBalancers: 1, Lambda: 32,
		FailoverAfter: 2,
		Failover: func(part int, old SubORAMClient) (SubORAMClient, error) {
			if part != 1 {
				return nil, errors.New("failover for a healthy partition")
			}
			if attempts.Add(1) == 1 {
				return nil, errors.New("standby not ready yet")
			}
			return old.(*flakySub).inner, nil
		},
	}, subs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	keys := make([]uint64, n)
	ids := make([]uint64, n)
	data := make([]byte, n*faultBlock)
	for i := range ids {
		keys[i] = uint64(i)
		ids[i] = uint64(i)
		data[i*faultBlock] = byte(i + 1)
	}
	if err := sys.Init(ids, data); err != nil {
		t.Fatal(err)
	}

	flaky[1].fail.Store(true)
	// Epochs routed to partition 1 fail until the detector trips (2
	// consecutive failures), the first hook attempt errors, a later failing
	// epoch retries, and the promotion lands. The repair is asynchronous, so
	// poll epochs until the system is whole again.
	deadline := time.Now().Add(15 * time.Second)
	for {
		outcome := flushAsync(t, sys, keys)
		bad := 0
		for _, err := range outcome {
			if err != nil {
				bad++
			}
		}
		if bad == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failover never promoted the standby (health %+v)", sys.Health())
		}
		time.Sleep(2 * time.Millisecond)
	}
	h := sys.Health()
	if h.Failovers[1] < 1 {
		t.Fatalf("no failover recorded for partition 1: %+v", h)
	}
	if attempts.Load() < 2 {
		t.Fatalf("failed first failover attempt was not retried (attempts=%d)", attempts.Load())
	}
	if !h.Healthy() {
		t.Fatalf("system not healthy after promotion: %+v", h)
	}
	// The standby serves the partition's original contents.
	for _, k := range keys {
		if sys.SubORAMFor(k) != 1 {
			continue
		}
		v, found, err := func() ([]byte, bool, error) {
			w, err := sys.ReadAsync(k)
			if err != nil {
				return nil, false, err
			}
			sys.Flush()
			return w()
		}()
		if err != nil || !found || v[0] != byte(k+1) {
			t.Fatalf("key %d after promotion: v=%v found=%v err=%v", k, v, found, err)
		}
	}
}

// TestFailoverPromotesRestoredRemote closes the full §9 recovery loop over
// real sockets: a remote durable partition is killed mid-run, the detector
// trips, and the failover hook restarts the node from its sealed on-disk
// state (internal/persist recovery) at a fresh address. Acknowledged writes
// from before the crash must survive into the promoted replacement.
func TestFailoverPromotesRestoredRemote(t *testing.T) {
	platform := enclave.NewPlatform()
	m := enclave.Measure("snoopy-suboram")
	dir := t.TempDir()
	opts := transport.Options{DialTimeout: 2 * time.Second, RPCTimeout: 2 * time.Second}.NoRetries()

	startNode := func() (*faultnet.Listener, *persist.Durable, string, error) {
		sub := suboram.New(suboram.Config{BlockSize: faultBlock})
		dur, err := persist.NewDurable(dir, sub, persist.Config{BlockSize: faultBlock})
		if err != nil {
			return nil, nil, "", err
		}
		raw, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			dur.Close()
			return nil, nil, "", err
		}
		l := faultnet.WrapListener(raw, nil)
		go transport.ServeSubORAM(l, dur, platform, m)
		return l, dur, raw.Addr().String(), nil
	}

	l1, dur1, addr1, err := startNode()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := transport.DialOptions(addr1, platform, m, opts)
	if err != nil {
		t.Fatal(err)
	}

	var promoted atomic.Int32
	sys, err := NewWithSubORAMs(Config{
		BlockSize: faultBlock, NumLoadBalancers: 1, Lambda: 32,
		FailoverAfter: 1,
		Failover: func(part int, old SubORAMClient) (SubORAMClient, error) {
			if rc, ok := old.(*transport.RemoteSubORAM); ok {
				rc.Close()
			}
			dur1.Close() // the crashed node's WAL handle: release before reopening the dir
			l2, dur2, addr2, err := startNode()
			if err != nil {
				return nil, err
			}
			if !dur2.Recovered() {
				l2.Close()
				dur2.Close()
				return nil, errors.New("restarted node found no sealed state")
			}
			t.Cleanup(func() { l2.Close(); dur2.Close() })
			repl, err := transport.DialOptions(addr2, platform, m, opts)
			if err != nil {
				return nil, err
			}
			t.Cleanup(func() { repl.Close() })
			promoted.Add(1)
			return repl, nil
		},
	}, []SubORAMClient{r1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)

	ids := []uint64{1, 2, 3, 4}
	if err := sys.Init(ids, make([]byte, len(ids)*faultBlock)); err != nil {
		t.Fatal(err)
	}
	w, err := sys.WriteAsync(3, []byte("durable-v1"))
	if err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	if _, _, err := w(); err != nil {
		t.Fatal(err)
	}

	// Crash the node: listener and every live connection die at once.
	l1.Kill()

	deadline := time.Now().Add(20 * time.Second)
	for {
		outcome := flushAsync(t, sys, ids)
		bad := 0
		for _, err := range outcome {
			if err != nil {
				bad++
			}
		}
		if bad == 0 && promoted.Load() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restored remote never promoted (health %+v)", sys.Health())
		}
		time.Sleep(5 * time.Millisecond)
	}
	h := sys.Health()
	if h.Failovers[0] < 1 || !h.Healthy() {
		t.Fatalf("health after restored-remote failover: %+v", h)
	}
	// The pre-crash acknowledged write survived sealed recovery into the
	// replacement node.
	rw, err := sys.ReadAsync(3)
	if err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	v, found, err := rw()
	if err != nil || !found || !bytes.HasPrefix(v, []byte("durable-v1")) {
		t.Fatalf("pre-crash write lost across failover: %q %v %v", v, found, err)
	}
}

// TestSubmitCloseRace hammers concurrent submits against Close: every
// accepted request must receive exactly one reply (value or ErrClosed) —
// none may be stranded in a queue nobody will flush.
func TestSubmitCloseRace(t *testing.T) {
	for iter := 0; iter < 10; iter++ {
		sys, err := NewLocal(Config{
			BlockSize: faultBlock, NumLoadBalancers: 2, NumSubORAMs: 2,
			Lambda: 32, EpochDuration: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids := []uint64{0, 1, 2, 3}
		if err := sys.Init(ids, make([]byte, len(ids)*faultBlock)); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					wait, err := sys.ReadAsync(uint64(g % len(ids)))
					if err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("submit: %v", err)
						}
						return
					}
					// The reply must always arrive; a request accepted after
					// the final drain would block here forever.
					if _, _, err := wait(); err != nil && !errors.Is(err, ErrClosed) {
						t.Errorf("wait: %v", err)
						return
					}
				}
			}()
		}
		time.Sleep(2 * time.Millisecond)
		sys.Close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("request stranded: submit/Close race left a queued request without a reply")
		}
	}
}
