// Package wirecode is the fixed-layout wire codec for the request batches
// that flow between load balancers and subORAMs. It replaces gob on the
// batch hot path: encoding is a columnar memcpy into a caller-owned buffer,
// decoding is the reverse into pooled storage, and — the security point —
// the frame length is a closed-form function of public parameters only,
//
//	FrameLen(n, blockSize) = HeaderLen + n·(RowBytes + blockSize),
//
// so message sizes manifestly leak nothing beyond (n, blockSize), which the
// batch-sizing theorem already makes public. gob gave no such guarantee
// (its varint encodings made frame size a function of field *values*), and
// it allocated a fresh encoder and reflection state per message.
//
// Frame layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic 0x534E5031 ("SNP1")
//	4       2     version (1)
//	6       2     RowBytes (31) — structural self-check
//	8       4     blockSize
//	12      4     n (record count)
//	16      n     Op column
//	16+n    8n    Key column
//	16+9n   4n    Sub column
//	16+13n  n     Tag column
//	16+14n  n     Aux column
//	16+15n  8n    Seq column
//	16+23n  8n    Client column
//	16+31n  n·blockSize  Data (n fixed-size value blocks)
//
// The same per-record "key + value block" row shape backs the persistence
// layer's write-ahead log records (KVRow* helpers), so the durable and wire
// representations of a request cannot drift apart.
package wirecode

import (
	"encoding/binary"
	"errors"
	"fmt"

	"snoopy/internal/arena"
	"snoopy/internal/store"
)

const (
	// Magic identifies a batch frame ("SNP1").
	Magic = 0x534E5031
	// Version is the frame layout version.
	Version = 1
	// HeaderLen is the fixed frame header size in bytes.
	HeaderLen = 16
	// RowBytes is the per-record metadata size: Op(1) + Key(8) + Sub(4) +
	// Tag(1) + Aux(1) + Seq(8) + Client(8).
	RowBytes = 1 + 8 + 4 + 1 + 1 + 8 + 8
)

// ErrFrame is wrapped by every decode failure: untrusted bytes that are
// truncated, oversized, or structurally inconsistent error out — never
// panic.
var ErrFrame = errors.New("wirecode: malformed frame")

// FrameLen returns the exact encoded size of an n-record batch: a function
// of the two public parameters only.
func FrameLen(n, blockSize int) int {
	return HeaderLen + n*(RowBytes+blockSize)
}

// AppendRequests appends the frame encoding of r to dst and returns the
// extended slice. Callers that pre-grow dst to FrameLen(r.Len(),
// r.BlockSize) get a pure copy with no allocation.
func AppendRequests(dst []byte, r *store.Requests) []byte {
	n := r.Len()
	need := FrameLen(n, r.BlockSize)
	// One capacity check up front; all writes below are plain copies.
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	off := len(dst)
	dst = dst[:off+need]
	binary.LittleEndian.PutUint32(dst[off:], Magic)
	binary.LittleEndian.PutUint16(dst[off+4:], Version)
	binary.LittleEndian.PutUint16(dst[off+6:], RowBytes)
	binary.LittleEndian.PutUint32(dst[off+8:], uint32(r.BlockSize))
	binary.LittleEndian.PutUint32(dst[off+12:], uint32(n))
	p := off + HeaderLen
	copy(dst[p:], r.Op)
	p += n
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(dst[p+8*i:], r.Key[i])
	}
	p += 8 * n
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(dst[p+4*i:], r.Sub[i])
	}
	p += 4 * n
	copy(dst[p:], r.Tag)
	p += n
	copy(dst[p:], r.Aux)
	p += n
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(dst[p+8*i:], r.Seq[i])
	}
	p += 8 * n
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(dst[p+8*i:], r.Client[i])
	}
	p += 8 * n
	copy(dst[p:], r.Data)
	return dst
}

// maxRecords bounds the record count a frame may declare, independent of
// any transport-level frame cap, so a hostile header cannot force a huge
// pool allocation.
const maxRecords = 1 << 26

// DecodeRequests validates frame — untrusted bytes — and decodes it into a
// record set drawn from pool (arena.Default when nil). The frame must be
// exactly one encoded batch; truncated, padded, or inconsistent input
// returns an error wrapping ErrFrame. The caller owns the result and may
// release it back to the pool.
func DecodeRequests(frame []byte, pool *arena.Pool) (*store.Requests, error) {
	if pool == nil {
		pool = arena.Default
	}
	if len(frame) < HeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, need %d-byte header", ErrFrame, len(frame), HeaderLen)
	}
	if m := binary.LittleEndian.Uint32(frame[0:]); m != Magic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrFrame, m)
	}
	if v := binary.LittleEndian.Uint16(frame[4:]); v != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFrame, v)
	}
	if rb := binary.LittleEndian.Uint16(frame[6:]); rb != RowBytes {
		return nil, fmt.Errorf("%w: row size %d, built for %d", ErrFrame, rb, RowBytes)
	}
	blockSize := int(binary.LittleEndian.Uint32(frame[8:]))
	n := int(binary.LittleEndian.Uint32(frame[12:]))
	if blockSize <= 0 {
		return nil, fmt.Errorf("%w: block size %d", ErrFrame, blockSize)
	}
	if n < 0 || n > maxRecords {
		return nil, fmt.Errorf("%w: record count %d", ErrFrame, n)
	}
	want := uint64(HeaderLen) + uint64(n)*uint64(RowBytes+blockSize)
	if uint64(len(frame)) != want {
		return nil, fmt.Errorf("%w: %d bytes for %d records of block %d, want %d",
			ErrFrame, len(frame), n, blockSize, want)
	}
	r := pool.GetRequests(n, blockSize)
	p := HeaderLen
	copy(r.Op, frame[p:p+n])
	p += n
	for i := 0; i < n; i++ {
		r.Key[i] = binary.LittleEndian.Uint64(frame[p+8*i:])
	}
	p += 8 * n
	for i := 0; i < n; i++ {
		r.Sub[i] = binary.LittleEndian.Uint32(frame[p+4*i:])
	}
	p += 4 * n
	copy(r.Tag, frame[p:p+n])
	p += n
	copy(r.Aux, frame[p:p+n])
	p += n
	for i := 0; i < n; i++ {
		r.Seq[i] = binary.LittleEndian.Uint64(frame[p+8*i:])
	}
	p += 8 * n
	for i := 0; i < n; i++ {
		r.Client[i] = binary.LittleEndian.Uint64(frame[p+8*i:])
	}
	p += 8 * n
	copy(r.Data, frame[p:])
	return r, nil
}

// KVRowLen is the byte length of one key/value row: the shared record shape
// of WAL records and the codec's logical rows.
func KVRowLen(blockSize int) int { return 8 + blockSize }

// PutKVRow encodes (key, value) into row, zero-padding the value to the
// row's block size. row must be KVRowLen-sized for that block size.
func PutKVRow(row []byte, key uint64, value []byte) {
	binary.LittleEndian.PutUint64(row[:8], key)
	n := copy(row[8:], value)
	clear(row[8+n:])
}

// KVRowKey returns the key of an encoded row.
func KVRowKey(row []byte) uint64 { return binary.LittleEndian.Uint64(row[:8]) }

// KVRowValue returns the value block of an encoded row (aliasing row).
func KVRowValue(row []byte) []byte { return row[8:] }
