package wirecode

import (
	"math/rand"
	"testing"
)

// FuzzDecodeRequests: DecodeRequests consumes untrusted bytes from the
// network (post-AEAD, but a compromised peer holds the channel key), so it
// must return an error — never panic, never over-allocate — on arbitrary
// input: truncations, oversized counts, mismatched block sizes, garbage.
func FuzzDecodeRequests(f *testing.F) {
	rng := rand.New(rand.NewSource(46))
	// Valid frames of several shapes.
	for _, tc := range []struct{ n, block int }{{0, 16}, {1, 1}, {16, 8}, {100, 160}} {
		f.Add(AppendRequests(nil, randomRequests(rng, tc.n, tc.block)))
	}
	// Structured near-misses.
	good := AppendRequests(nil, randomRequests(rng, 8, 32))
	f.Add(good[:HeaderLen])
	f.Add(good[:len(good)-1])
	f.Add(append(append([]byte(nil), good...), 0xaa))
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x50, 0x4e, 0x53}) // magic bytes alone

	f.Fuzz(func(t *testing.T, frame []byte) {
		r, err := DecodeRequests(frame, nil)
		if err != nil {
			if r != nil {
				t.Fatal("error with non-nil result")
			}
			return
		}
		// A successful decode must be internally consistent and re-encode to
		// the identical frame.
		if r.BlockSize <= 0 || r.Len() < 0 {
			t.Fatalf("inconsistent decode: n=%d block=%d", r.Len(), r.BlockSize)
		}
		if len(r.Data) != r.Len()*r.BlockSize {
			t.Fatalf("data column %d bytes for %d×%d", len(r.Data), r.Len(), r.BlockSize)
		}
		re := AppendRequests(nil, r)
		if len(re) != len(frame) {
			t.Fatalf("re-encode size %d != input %d", len(re), len(frame))
		}
		for i := range re {
			if re[i] != frame[i] {
				t.Fatalf("re-encode differs at byte %d", i)
			}
		}
	})
}
