package wirecode

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"

	"snoopy/internal/arena"
	"snoopy/internal/store"
)

// gobRequests mirrors the gob representation the transport used before the
// fixed-layout codec; the equivalence test proves the codec carries exactly
// the same information.
type gobRequests struct {
	BlockSize int
	Op        []uint8
	Key       []uint64
	Sub       []uint32
	Tag       []uint8
	Aux       []uint8
	Seq       []uint64
	Client    []uint64
	Data      []byte
}

func randomRequests(rng *rand.Rand, n, block int) *store.Requests {
	r := store.NewRequests(n, block)
	for i := 0; i < n; i++ {
		r.Op[i] = uint8(rng.Intn(2))
		r.Key[i] = rng.Uint64()
		r.Sub[i] = rng.Uint32()
		r.Tag[i] = uint8(rng.Intn(2))
		r.Aux[i] = uint8(rng.Intn(2))
		r.Seq[i] = rng.Uint64()
		r.Client[i] = rng.Uint64()
		rng.Read(r.Block(i))
	}
	return r
}

func requestsEqual(a, b *store.Requests) bool {
	if a.BlockSize != b.BlockSize || a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.Op[i] != b.Op[i] || a.Key[i] != b.Key[i] || a.Sub[i] != b.Sub[i] ||
			a.Tag[i] != b.Tag[i] || a.Aux[i] != b.Aux[i] || a.Seq[i] != b.Seq[i] ||
			a.Client[i] != b.Client[i] {
			return false
		}
	}
	return bytes.Equal(a.Data, b.Data)
}

// TestRoundTripMatchesGob: for randomized request sets, decode(encode(r))
// carries exactly the fields a gob round trip carries.
func TestRoundTripMatchesGob(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, tc := range []struct{ n, block int }{
		{0, 16}, {1, 1}, {7, 32}, {256, 160}, {1000, 8},
	} {
		r := randomRequests(rng, tc.n, tc.block)

		// Fixed-layout round trip.
		frame := AppendRequests(nil, r)
		got, err := DecodeRequests(frame, nil)
		if err != nil {
			t.Fatalf("n=%d block=%d: decode: %v", tc.n, tc.block, err)
		}
		if !requestsEqual(r, got) {
			t.Fatalf("n=%d block=%d: codec round trip diverged", tc.n, tc.block)
		}

		// gob round trip of the same set must agree field-for-field.
		var buf bytes.Buffer
		w := gobRequests{BlockSize: r.BlockSize, Op: r.Op, Key: r.Key, Sub: r.Sub,
			Tag: r.Tag, Aux: r.Aux, Seq: r.Seq, Client: r.Client, Data: r.Data}
		if err := gob.NewEncoder(&buf).Encode(w); err != nil {
			t.Fatal(err)
		}
		var gw gobRequests
		if err := gob.NewDecoder(&buf).Decode(&gw); err != nil {
			t.Fatal(err)
		}
		via := &store.Requests{BlockSize: gw.BlockSize, Op: gw.Op, Key: gw.Key,
			Sub: gw.Sub, Tag: gw.Tag, Aux: gw.Aux, Seq: gw.Seq, Client: gw.Client, Data: gw.Data}
		if tc.n > 0 && !requestsEqual(via, got) {
			t.Fatalf("n=%d block=%d: codec and gob round trips disagree", tc.n, tc.block)
		}
	}
}

// TestRoundTripExtremeValues covers the reserved key spaces and column
// extremes: load-balancer dummy keys, table-padding keys, max Sub.
func TestRoundTripExtremeValues(t *testing.T) {
	r := store.NewRequests(4, 8)
	r.SetRow(0, store.OpRead, store.DummyKeyBit|42, math.MaxUint32, math.MaxUint64, math.MaxUint64, nil)
	r.SetRow(1, store.OpWrite, math.MaxUint64, 0, 0, 0, []byte{0xff, 0xfe})
	r.SetRow(2, store.OpRead, 0, 0, 0, 0, nil)
	r.SetRow(3, store.OpWrite, store.DummyKeyBit, math.MaxUint32, 1, 1, []byte("12345678"))
	got, err := DecodeRequests(AppendRequests(nil, r), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !requestsEqual(r, got) {
		t.Fatal("extreme values did not survive the round trip")
	}
}

// TestFrameLengthIsPublic: the encoded size equals FrameLen(n, blockSize)
// for every content — frame sizes leak nothing beyond the public (n, B).
func TestFrameLengthIsPublic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct{ n, block int }{{0, 16}, {3, 64}, {100, 160}} {
		want := FrameLen(tc.n, tc.block)
		var sizes []int
		for trial := 0; trial < 5; trial++ {
			r := randomRequests(rng, tc.n, tc.block)
			frame := AppendRequests(nil, r)
			sizes = append(sizes, len(frame))
		}
		for _, s := range sizes {
			if s != want {
				t.Fatalf("n=%d block=%d: frame size %d != FrameLen %d (content-dependent size!)",
					tc.n, tc.block, s, want)
			}
		}
	}
}

// TestAppendIntoPresizedBufferDoesNotAllocate: with dst pre-grown to the
// frame length, encoding is a pure copy.
func TestAppendIntoPresizedBufferDoesNotAllocate(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	r := randomRequests(rng, 128, 64)
	buf := make([]byte, 0, FrameLen(r.Len(), r.BlockSize))
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendRequests(buf[:0], r)
	})
	if allocs != 0 {
		t.Fatalf("pre-sized encode allocated %.1f times per run", allocs)
	}
}

// TestDecodeIntoPool: decode draws from the provided pool and the result
// can be released back.
func TestDecodeIntoPool(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	pool := arena.NewPool()
	r := randomRequests(rng, 50, 16)
	frame := AppendRequests(nil, r)
	got, err := DecodeRequests(frame, pool)
	if err != nil {
		t.Fatal(err)
	}
	pool.PutRequests(got)
	got2, err := DecodeRequests(frame, pool)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != got {
		t.Fatal("second decode did not reuse the pooled set")
	}
	if !requestsEqual(r, got2) {
		t.Fatal("pooled decode diverged")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	r := randomRequests(rng, 10, 8)
	good := AppendRequests(nil, r)

	mutate := func(name string, f func([]byte) []byte) {
		frame := f(append([]byte(nil), good...))
		if _, err := DecodeRequests(frame, nil); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	mutate("empty", func(b []byte) []byte { return nil })
	mutate("short header", func(b []byte) []byte { return b[:8] })
	mutate("truncated body", func(b []byte) []byte { return b[:len(b)-1] })
	mutate("trailing garbage", func(b []byte) []byte { return append(b, 0) })
	mutate("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	mutate("bad version", func(b []byte) []byte { b[4] = 99; return b })
	mutate("bad row size", func(b []byte) []byte { b[6] = 99; return b })
	mutate("zero block size", func(b []byte) []byte {
		b[8], b[9], b[10], b[11] = 0, 0, 0, 0
		return b
	})
	mutate("oversized count", func(b []byte) []byte {
		b[12], b[13], b[14], b[15] = 0xff, 0xff, 0xff, 0xff
		return b
	})
}

func TestKVRowHelpers(t *testing.T) {
	row := make([]byte, KVRowLen(16))
	PutKVRow(row, 0xdeadbeef, []byte("value"))
	if KVRowKey(row) != 0xdeadbeef {
		t.Fatalf("key %#x", KVRowKey(row))
	}
	v := KVRowValue(row)
	if len(v) != 16 || !bytes.HasPrefix(v, []byte("value")) {
		t.Fatalf("value %q", v)
	}
	for _, b := range v[5:] {
		if b != 0 {
			t.Fatal("value not zero-padded")
		}
	}
	// Re-putting a shorter value clears the old tail.
	PutKVRow(row, 1, []byte("x"))
	if v := KVRowValue(row); v[1] != 0 || v[4] != 0 {
		t.Fatal("stale bytes survived PutKVRow")
	}
}
