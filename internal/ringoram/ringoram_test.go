package ringoram

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	o, err := New(128, 16, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Access(true, 17, []byte("ring")); err != nil {
		t.Fatal(err)
	}
	v, err := o.Access(false, 17, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(v, []byte("ring")) {
		t.Fatalf("round trip lost data: %q", v)
	}
}

func TestBadParams(t *testing.T) {
	if _, err := New(8, 8, Params{Z: 0, S: 1, A: 1}); err == nil {
		t.Fatal("Z=0 accepted")
	}
	if _, err := New(0, 8, DefaultParams()); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestRandomizedAgainstShadow(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	const n = 256
	o, _ := New(n, 16, DefaultParams())
	shadow := make([][]byte, n)
	for i := range shadow {
		shadow[i] = make([]byte, 16)
	}
	for step := 0; step < 8000; step++ {
		id := uint32(rng.Intn(n))
		if rng.Intn(2) == 0 {
			val := []byte(fmt.Sprintf("s%d", step))
			if _, err := o.Access(true, id, val); err != nil {
				t.Fatal(err)
			}
			b := make([]byte, 16)
			copy(b, val)
			shadow[id] = b
		} else {
			v, err := o.Access(false, id, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(v, shadow[id]) {
				t.Fatalf("step %d id %d: got %q want %q", step, id, v, shadow[id])
			}
		}
	}
}

func TestStashBoundedAndReshufflesHappen(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	const n = 1024
	o, _ := New(n, 8, DefaultParams())
	maxStash := 0
	for step := 0; step < 30000; step++ {
		o.Access(true, uint32(rng.Intn(n)), []byte{byte(step)})
		if s := o.StashSize(); s > maxStash {
			maxStash = s
		}
	}
	if maxStash > 300 {
		t.Fatalf("stash grew to %d — eviction broken", maxStash)
	}
	if o.Reshuffles() == 0 {
		t.Fatal("no early reshuffles over 30k accesses — S accounting broken")
	}
}

// TestReadPathTrafficBelowPathORAM checks Ring ORAM's headline property:
// per-access read traffic is ~1 block per bucket instead of Z.
func TestReadPathTrafficBelowPathORAM(t *testing.T) {
	const n, block = 4096, 64
	o, _ := New(n, block, DefaultParams())
	rng := rand.New(rand.NewSource(92))
	// Warm up, then measure.
	for i := 0; i < 1000; i++ {
		o.Access(false, uint32(rng.Intn(n)), nil)
	}
	before := o.ServerBytesMoved()
	const probes = 2000
	for i := 0; i < probes; i++ {
		o.Access(false, uint32(rng.Intn(n)), nil)
	}
	perAccess := float64(o.ServerBytesMoved()-before) / probes
	pathORAMCost := float64(2 * (o.Height() + 1) * 4 * block) // read+write Z=4 paths
	if perAccess >= pathORAMCost {
		t.Fatalf("Ring ORAM per-access traffic %.0f not below Path ORAM %.0f",
			perAccess, pathORAMCost)
	}
}
