// Package ringoram implements Ring ORAM (Ren et al., USENIX Security'15),
// the tree ORAM that Obladi — the paper's main baseline (§8.1) — batches
// and parallelizes. Compared to Path ORAM, Ring ORAM reads only ONE slot
// per bucket on the access path (real block or an untouched dummy) and
// amortizes eviction over A accesses along reverse-lexicographic paths,
// with early reshuffles when a bucket runs out of fresh dummies.
//
// As with the other baselines, the trusted-proxy metadata (position map,
// per-bucket slot maps) uses plain structures — exactly the Obladi trust
// model, where the proxy is a trusted machine — while server block traffic
// is fully accounted via ServerBytesMoved.
package ringoram

import (
	"fmt"
	"math/rand"
	"sync"
)

// Params are the Ring ORAM geometry parameters.
type Params struct {
	Z int // real slots per bucket
	S int // dummy slots per bucket
	A int // eviction period (accesses per EvictPath)
}

// DefaultParams follows the Ring ORAM paper's small-Z regime with a
// comfortable dummy budget.
func DefaultParams() Params { return Params{Z: 4, S: 6, A: 3} }

type slotMeta struct {
	valid   bool // holds a live real block
	touched bool // consumed since last reshuffle
	id      uint32
	leaf    uint32
}

type bucket struct {
	slots   []slotMeta
	data    [][]byte // slot payloads (server side)
	touched int      // touched-slot count since last reshuffle
}

type stashBlock struct {
	leaf uint32
	data []byte
}

// ORAM is a Ring ORAM instance over dense block indices 0..n-1.
type ORAM struct {
	mu        sync.Mutex
	p         Params
	blockSize int
	n         int
	height    int
	nLeaves   int

	buckets []bucket
	pos     []uint32
	stash   map[uint32]*stashBlock
	rng     *rand.Rand

	accessCount uint64
	evictG      uint64 // reverse-lexicographic eviction counter
	bytesMoved  uint64
	reshuffles  uint64
}

// New creates a Ring ORAM holding n zeroed blocks.
func New(n, blockSize int, p Params) (*ORAM, error) {
	if n <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("ringoram: invalid geometry n=%d block=%d", n, blockSize)
	}
	if p.Z <= 0 || p.S <= 0 || p.A <= 0 || p.A > p.Z+p.S {
		return nil, fmt.Errorf("ringoram: invalid params %+v", p)
	}
	height := 0
	for 1<<height < n {
		height++
	}
	o := &ORAM{
		p:         p,
		blockSize: blockSize,
		n:         n,
		height:    height,
		nLeaves:   1 << height,
		buckets:   make([]bucket, (1<<(height+1))-1),
		pos:       make([]uint32, n),
		stash:     make(map[uint32]*stashBlock),
		rng:       rand.New(rand.NewSource(rand.Int63())),
	}
	for i := range o.buckets {
		o.buckets[i] = bucket{
			slots: make([]slotMeta, p.Z+p.S),
			data:  make([][]byte, p.Z+p.S),
		}
	}
	for i := range o.pos {
		o.pos[i] = uint32(o.rng.Intn(o.nLeaves))
	}
	return o, nil
}

// NumBlocks returns n.
func (o *ORAM) NumBlocks() int { return o.n }

// Height returns the tree height.
func (o *ORAM) Height() int { return o.height }

func (o *ORAM) pathNodes(leaf uint32) []int {
	nodes := make([]int, o.height+1)
	idx := int(leaf) + o.nLeaves - 1
	for l := o.height; l >= 0; l-- {
		nodes[l] = idx
		idx = (idx - 1) / 2
	}
	return nodes
}

// Access performs one ORAM access (ReadPath + amortized EvictPath).
func (o *ORAM) Access(write bool, id uint32, data []byte) ([]byte, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if int(id) >= o.n {
		return nil, fmt.Errorf("ringoram: block %d out of range", id)
	}

	oldLeaf := o.pos[id]
	o.pos[id] = uint32(o.rng.Intn(o.nLeaves))
	o.readPath(id, oldLeaf)

	blk, ok := o.stash[id]
	if !ok {
		blk = &stashBlock{data: make([]byte, o.blockSize)}
		o.stash[id] = blk
	}
	blk.leaf = o.pos[id]
	prev := append([]byte(nil), blk.data...)
	if write {
		copy(blk.data, data)
		for i := len(data); i < o.blockSize; i++ {
			blk.data[i] = 0
		}
	}

	o.accessCount++
	if o.accessCount%uint64(o.p.A) == 0 {
		o.evictPath(o.reverseLexLeaf())
	}
	return prev, nil
}

// readPath reads exactly one slot per bucket on the path: the target block
// where present, an untouched dummy elsewhere (early-reshuffling buckets
// that have no fresh dummy left). Reshuffles triggered here must never
// place the in-flight block id back into the tree before the access has
// served it, so id is excluded from placement.
func (o *ORAM) readPath(id uint32, leaf uint32) {
	for _, b := range o.pathNodes(leaf) {
		bk := &o.buckets[b]
		hit := -1
		for s := range bk.slots {
			if bk.slots[s].valid && !bk.slots[s].touched && bk.slots[s].id == id {
				hit = s
				break
			}
		}
		if hit >= 0 {
			// Move the real block to the stash; the slot is spent.
			o.stash[id] = &stashBlock{leaf: o.pos[id], data: bk.data[hit]}
			bk.slots[hit].valid = false
			bk.slots[hit].touched = true
			bk.touched++
			o.bytesMoved += uint64(o.blockSize)
		} else {
			// Read a fresh dummy.
			d := o.freshDummy(bk)
			if d < 0 {
				o.reshuffle(b, id)
				d = o.freshDummy(bk)
			}
			bk.slots[d].touched = true
			bk.touched++
			o.bytesMoved += uint64(o.blockSize)
		}
		if bk.touched >= o.p.S {
			o.reshuffle(b, id)
		}
	}
}

// freshDummy returns an untouched, invalid slot index, or -1.
func (o *ORAM) freshDummy(bk *bucket) int {
	for s := range bk.slots {
		if !bk.slots[s].valid && !bk.slots[s].touched {
			return s
		}
	}
	return -1
}

// noExclude is passed when every stash block may be placed.
const noExclude = ^uint32(0)

// reshuffle (early reshuffle): pull the bucket's live blocks into the
// stash and rewrite the bucket with a fresh permutation, never placing
// block `exclude`.
func (o *ORAM) reshuffle(b int, exclude uint32) {
	bk := &o.buckets[b]
	for s := range bk.slots {
		if bk.slots[s].valid {
			o.stash[bk.slots[s].id] = &stashBlock{leaf: bk.slots[s].leaf, data: bk.data[s]}
			o.bytesMoved += uint64(o.blockSize)
		}
		bk.slots[s] = slotMeta{}
	}
	bk.touched = 0
	o.fillBucket(b, o.bucketLevel(b), o.anyLeafThrough(b), exclude)
	o.reshuffles++
}

// evictPath performs the Ring ORAM eviction along the next
// reverse-lexicographic path: read all live blocks on the path into the
// stash, then rewrite every bucket with greedily placed blocks.
func (o *ORAM) evictPath(leaf uint32) {
	nodes := o.pathNodes(leaf)
	for _, b := range nodes {
		bk := &o.buckets[b]
		for s := range bk.slots {
			if bk.slots[s].valid {
				o.stash[bk.slots[s].id] = &stashBlock{leaf: bk.slots[s].leaf, data: bk.data[s]}
				o.bytesMoved += uint64(o.blockSize)
			}
			bk.slots[s] = slotMeta{}
		}
		bk.touched = 0
	}
	for l := len(nodes) - 1; l >= 0; l-- {
		o.fillBucket(nodes[l], l, leaf, noExclude)
	}
}

// fillBucket writes bucket b at the given level (on the path to leaf) with
// up to Z stash blocks whose paths pass through it, plus fresh dummies.
func (o *ORAM) fillBucket(b, level int, leaf uint32, exclude uint32) {
	bk := &o.buckets[b]
	placed := 0
	perm := o.rng.Perm(len(bk.slots))
	pi := 0
	for id, blk := range o.stash {
		if placed == o.p.Z {
			break
		}
		if id == exclude || blk.leaf>>(o.height-level) != leaf>>(o.height-level) {
			continue
		}
		s := perm[pi]
		pi++
		bk.slots[s] = slotMeta{valid: true, id: id, leaf: blk.leaf}
		bk.data[s] = blk.data
		delete(o.stash, id)
		placed++
		o.bytesMoved += uint64(o.blockSize)
	}
	// Remaining slots hold fresh dummies (written as full slots on the
	// server: account their traffic too).
	o.bytesMoved += uint64((len(bk.slots) - placed) * o.blockSize)
}

// bucketLevel returns the depth of heap node b.
func (o *ORAM) bucketLevel(b int) int {
	l := 0
	for (1<<(l+1))-1 <= b {
		l++
	}
	return l
}

// anyLeafThrough returns some leaf whose path passes through node b.
func (o *ORAM) anyLeafThrough(b int) uint32 {
	// Descend to the leftmost leaf under b.
	for b < o.nLeaves-1 {
		b = 2*b + 1
	}
	return uint32(b - (o.nLeaves - 1))
}

// reverseLexLeaf returns the next eviction leaf in reverse-lexicographic
// order (bit-reversed counter).
func (o *ORAM) reverseLexLeaf() uint32 {
	g := o.evictG
	o.evictG++
	var leaf uint32
	for i := 0; i < o.height; i++ {
		leaf = leaf<<1 | uint32(g&1)
		g >>= 1
	}
	return leaf
}

// StashSize returns the proxy stash occupancy.
func (o *ORAM) StashSize() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.stash)
}

// ServerBytesMoved returns cumulative server traffic.
func (o *ORAM) ServerBytesMoved() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.bytesMoved
}

// Reshuffles returns the early-reshuffle count.
func (o *ORAM) Reshuffles() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.reshuffles
}
