package figures

import (
	"strings"
	"testing"
	"time"

	"snoopy/internal/planner"
)

// tinyScale keeps figure smoke tests fast.
func tinyScale() Scale {
	return Scale{Objects: 1 << 12, Block: 32, KTUsers: 1 << 10, Workers: 2, Lambda: 64}
}

func TestAnalyticFigures(t *testing.T) {
	var b strings.Builder
	Fig3(&b, tinyScale())
	Fig4(&b, tinyScale())
	Table8(&b)
	out := b.String()
	for _, want := range []string{"Figure 3", "Figure 4", "Table 8", "S=20", "no-security", "Snoopy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestMeasuredModelShape(t *testing.T) {
	m := measureModel(32, 64, 2)
	if m.LBTime(1000, 4) <= 0 {
		t.Fatal("LBTime degenerate")
	}
	small := m.SubTime(256, 1<<12)
	big := m.SubTime(256, 1<<16)
	if big <= small {
		t.Fatalf("scan cost not increasing: %v vs %v", small, big)
	}
	if m.LBTime(10000, 4) <= m.LBTime(100, 4) {
		t.Fatal("LB cost not increasing in load")
	}
}

func TestBestSplitPrefersFeasible(t *testing.T) {
	m := measureModel(32, 64, 2)
	req := planner.Requirements{Objects: 1 << 14, BlockSize: 32, MaxLatency: time.Second, Lambda: 64}
	lbs, subs, x := bestSplit(req, m, 6)
	if lbs < 1 || subs < 1 || lbs+subs != 6 || x <= 0 {
		t.Fatalf("bad split: %d+%d x=%f", lbs, subs, x)
	}
	// Throughput should not decrease with more machines.
	_, _, x12 := bestSplit(req, m, 12)
	if x12 < x {
		t.Fatalf("throughput fell with more machines: %f -> %f", x, x12)
	}
}

func TestFig12And13Run(t *testing.T) {
	if testing.Short() {
		t.Skip("measured figures")
	}
	var b strings.Builder
	sc := tinyScale()
	Fig12(&b, sc)
	Fig13a(&b, sc)
	if !strings.Contains(b.String(), "make batch") || !strings.Contains(b.String(), "adaptive") {
		t.Fatalf("figure output malformed:\n%s", b.String())
	}
}

func TestBaselineMeasurements(t *testing.T) {
	if testing.Short() {
		t.Skip("measured baselines")
	}
	x, lat := measureObladi(1<<10, 32)
	if x <= 0 || lat <= 0 {
		t.Fatal("obladi measurement degenerate")
	}
	x2, lat2 := measureOblix(1<<10, 32)
	if x2 <= 0 || lat2 <= 0 {
		t.Fatal("oblix measurement degenerate")
	}
	// Oblix is sequential: per-request latency low, throughput low.
	if x2 > x*100 {
		t.Fatalf("oblix throughput suspiciously high: %f vs obladi %f", x2, x)
	}
}

// TestRemainingFiguresRun smoke-tests every figure function at tiny scale
// so harness regressions show up in `go test` rather than only in the CLI.
func TestRemainingFiguresRun(t *testing.T) {
	if testing.Short() {
		t.Skip("measured figures")
	}
	sc := tinyScale()
	for _, f := range []struct {
		name string
		run  func(*strings.Builder)
	}{
		{"Fig9b", func(b *strings.Builder) { Fig9b(b, sc) }},
		{"Fig11a", func(b *strings.Builder) { Fig11a(b, sc) }},
		{"Fig11b", func(b *strings.Builder) { Fig11b(b, sc) }},
		{"Fig13b", func(b *strings.Builder) { Fig13b(b, sc) }},
		{"Fig14", func(b *strings.Builder) { Fig14(b, sc) }},
		{"Headline", func(b *strings.Builder) { Headline(b, sc) }},
	} {
		var b strings.Builder
		f.run(&b)
		if len(b.String()) < 50 || !strings.Contains(b.String(), "#") {
			t.Fatalf("%s produced implausible output:\n%s", f.name, b.String())
		}
	}
}
