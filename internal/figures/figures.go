package figures

import (
	"io"
	"time"

	"snoopy/internal/batch"
	"snoopy/internal/planner"
	"snoopy/internal/workload"
)

// Fig3 — dummy request overhead vs. number of real requests, for S ∈
// {2, 10, 20}, λ = 128. Purely analytic (Theorem 3).
func Fig3(w io.Writer, sc Scale) {
	fprintf(w, "# Figure 3: dummy request overhead (%% extra requests), lambda=%d\n", sc.Lambda)
	fprintf(w, "%10s %12s %12s %12s\n", "requests", "S=2", "S=10", "S=20")
	for _, r := range []int{100, 500, 1000, 2000, 4000, 6000, 8000, 10000} {
		fprintf(w, "%10d", r)
		for _, s := range []int{2, 10, 20} {
			fprintf(w, " %11.1f%%", 100*batch.DummyOverhead(r, s, sc.Lambda))
		}
		fprintf(w, "\n")
	}
	fprintf(w, "# paper shape: overhead falls as R grows, rises with S — e.g. ~50%% means 1 dummy per 2 real\n")
}

// Fig4 — total real-request capacity per epoch vs. subORAM count,
// assuming ≤1K requests per subORAM per epoch, λ ∈ {0 (no security), 80,
// 128}. Purely analytic.
func Fig4(w io.Writer, sc Scale) {
	const perSub = 1000
	fprintf(w, "# Figure 4: real request capacity per epoch (<=1K reqs/subORAM), by lambda\n")
	fprintf(w, "%10s %14s %14s %14s\n", "subORAMs", "no-security", "lambda=80", "lambda=128")
	for s := 1; s <= 20; s++ {
		fprintf(w, "%10d %14d %14d %14d\n", s,
			batch.Capacity(s, -1, perSub),
			batch.Capacity(s, 80, perSub),
			batch.Capacity(s, 128, perSub))
	}
	fprintf(w, "# paper shape: secure capacity grows with S but sublinearly vs the plaintext line\n")
}

// Table8 — qualitative baseline comparison.
func Table8(w io.Writer) {
	fprintf(w, "# Table 8: baseline properties\n")
	fprintf(w, "%-38s %8s %8s %8s %8s\n", "", "Redis", "Obladi", "Oblix", "Snoopy")
	rows := []struct {
		label string
		vals  [4]string
	}{
		{"Oblivious", [4]string{"no", "yes", "yes", "yes"}},
		{"No trusted proxy", [4]string{"yes", "no", "yes", "yes"}},
		{"High throughput", [4]string{"yes", "yes", "no", "yes"}},
		{"Throughput scales with machines", [4]string{"yes", "no", "no", "yes"}},
	}
	for _, r := range rows {
		fprintf(w, "%-38s %8s %8s %8s %8s\n", r.label, r.vals[0], r.vals[1], r.vals[2], r.vals[3])
	}
}

// Fig9a — throughput vs. machine count for latency bounds 300 ms / 500 ms
// / 1 s, against Obladi (2 machines) and Oblix (1 machine). Component
// costs measured, machine scaling via Eq. (1)–(2).
func Fig9a(w io.Writer, sc Scale) {
	fprintf(w, "# Figure 9a: throughput (reqs/s) vs machines — %d objects x %dB (paper: 2M x 160B)\n",
		sc.Objects, sc.Block)
	model := measureModel(sc.Block, sc.Lambda, sc.Workers)
	obladiX, _ := measureObladi(minInt(sc.Objects, 1<<17), sc.Block)
	oblixX, _ := measureOblix(minInt(sc.Objects, 1<<15), sc.Block)

	fprintf(w, "%9s  %22s %22s %22s %10s %10s\n",
		"machines", "snoopy@300ms (L+S)", "snoopy@500ms (L+S)", "snoopy@1s (L+S)", "obladi", "oblix")
	bounds := []time.Duration{300 * time.Millisecond, 500 * time.Millisecond, time.Second}
	for machines := 4; machines <= 18; machines += 2 {
		fprintf(w, "%9d ", machines)
		for _, bound := range bounds {
			req := planner.Requirements{
				Objects: sc.Objects, BlockSize: sc.Block,
				MaxLatency: bound, Lambda: sc.Lambda,
			}
			lbs, subs, x := bestSplit(req, model, machines)
			if x <= 0 {
				fprintf(w, " %12s       ", "infeasible")
			} else {
				fprintf(w, " %12.0f (%d+%2d)", x, lbs, subs)
			}
		}
		fprintf(w, " %10.0f %10.1f\n", obladiX, oblixX)
	}
	fprintf(w, "# paper shape: Snoopy climbs ~linearly with machines; Obladi flat at 2 machines; Oblix flat at 1\n")
}

// Fig9b — key transparency throughput: every logical lookup costs
// log2(users)+1 ORAM accesses over a 32-byte-object store.
func Fig9b(w io.Writer, sc Scale) {
	users := sc.KTUsers
	accesses := workload.KTAccessesPerLookup(users)
	objects := 2 * users // Merkle tree nodes
	const ktBlock = 32
	fprintf(w, "# Figure 9b: key transparency, %d users (%d objects x %dB), %d accesses per lookup\n",
		users, objects, ktBlock, accesses)
	model := measureModel(ktBlock, sc.Lambda, sc.Workers)
	fprintf(w, "%9s  %18s %18s %18s\n", "machines", "KT-ops/s @300ms", "KT-ops/s @500ms", "KT-ops/s @1s")
	for machines := 4; machines <= 18; machines += 2 {
		fprintf(w, "%9d ", machines)
		for _, bound := range []time.Duration{300 * time.Millisecond, 500 * time.Millisecond, time.Second} {
			req := planner.Requirements{
				Objects: objects, BlockSize: ktBlock, MaxLatency: bound, Lambda: sc.Lambda,
			}
			_, _, x := bestSplit(req, model, machines)
			fprintf(w, " %18.0f", x/float64(accesses))
		}
		fprintf(w, "\n")
	}
	fprintf(w, "# paper shape: same scaling as 9a divided by the %d accesses per KT operation\n", accesses)
}

// Fig10 — Snoopy with Oblix as the subORAM: the load balancer design
// scales Oblix past one machine; the linear-scan subORAM still beats it.
func Fig10(w io.Writer, sc Scale) {
	objects := minInt(sc.Objects, 1<<15) // oblix partitions are expensive to build
	fprintf(w, "# Figure 10: Snoopy-Oblix throughput vs machines — %d objects x %dB\n", objects, sc.Block)
	model := measureModel(sc.Block, sc.Lambda, sc.Workers)
	oblixX, _ := measureOblix(minInt(objects, 1<<14), sc.Block)

	// Replace the subORAM cost with the measured oblix per-batch cost.
	oblixModel := planner.CostModel{
		LBTime: model.LBTime,
		SubTime: func(batchSize, objectsPerSub int) time.Duration {
			return measureOblixSubORAMCached(objectsPerSub, batchSize, sc.Block)
		},
	}
	fprintf(w, "%9s  %24s %24s %14s\n", "machines", "snoopy-oblix@500ms (L+S)", "snoopy-native@500ms", "vanilla oblix")
	for machines := 3; machines <= 17; machines += 2 {
		req := planner.Requirements{
			Objects: objects, BlockSize: sc.Block,
			MaxLatency: 500 * time.Millisecond, Lambda: sc.Lambda,
		}
		lbs, subs, x := bestSplit(req, oblixModel, machines)
		nl, ns, nx := bestSplit(req, model, machines)
		fprintf(w, "%9d  %14.0f (%d+%2d) %16.0f (%d+%2d) %14.1f\n", machines, x, lbs, subs, nx, nl, ns, oblixX)
	}
	fprintf(w, "# paper shape: Snoopy-Oblix scales with machines (15.6x vanilla at 17); the\n")
	fprintf(w, "# linear-scan subORAM (Fig 9a) still beats Snoopy-Oblix (paper: 4.85x at 17 machines)\n")
}

// oblixSubCache memoizes oblix partition measurements (they are slow).
var oblixSubCache = map[[2]int]time.Duration{}

func measureOblixSubORAMCached(objectsPerSub, alpha, block int) time.Duration {
	// Bucket the partition size to powers of two to bound distinct probes.
	p := 1
	for p < objectsPerSub {
		p <<= 1
	}
	if p > 1<<15 {
		// Extrapolate: oblix access cost grows ~log², measure at cap and
		// scale by log factor.
		base, ok := oblixSubCache[[2]int{1 << 15, block}]
		if !ok {
			base = measureOblixSubORAM(1<<15, 1, block)
			oblixSubCache[[2]int{1 << 15, block}] = base
		}
		f := log2(float64(p)) / 15
		return time.Duration(float64(alpha) * float64(base) * f * f)
	}
	per, ok := oblixSubCache[[2]int{p, block}]
	if !ok {
		per = measureOblixSubORAM(p, 1, block)
		oblixSubCache[[2]int{p, block}] = per
	}
	return time.Duration(alpha) * per
}

// Fig11a — data size supported per subORAM count with mean latency under
// 160 ms (US–Europe RTT), 1 load balancer, constant load.
func Fig11a(w io.Writer, sc Scale) {
	const load = 2000.0 // reqs/s, constant offered load
	bound := 160 * time.Millisecond
	model := measureModel(sc.Block, sc.Lambda, sc.Workers)
	fprintf(w, "# Figure 11a: max objects vs subORAMs (mean latency <=160ms, 1 LB, %.0f reqs/s)\n", load)
	fprintf(w, "%10s %14s\n", "subORAMs", "max objects")
	epoch := time.Duration(2 * float64(bound) / 5)
	r := int(load * epoch.Seconds())
	for s := 1; s <= 15; s++ {
		alpha := batch.Size(r, s, sc.Lambda)
		if alpha == 0 {
			alpha = 1
		}
		// Largest per-sub partition with processing under the epoch.
		lo, hi := 0, 1<<28
		for lo < hi {
			mid := (lo + hi + 1) / 2
			t := model.SubTime(alpha, mid)
			if lb := model.LBTime(r, s); lb > t {
				t = lb
			}
			if t <= epoch {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		fprintf(w, "%10d %14d\n", s, lo*s)
	}
	fprintf(w, "# paper shape: supported data size grows ~linearly with subORAMs (191K objects per subORAM on Azure)\n")
}

// Fig11b — mean latency vs subORAM count at fixed data size and load,
// with Obladi and Oblix reference latencies.
func Fig11b(w io.Writer, sc Scale) {
	const load = 2000.0
	model := measureModel(sc.Block, sc.Lambda, sc.Workers)
	_, obladiLat := measureObladi(minInt(sc.Objects, 1<<16), sc.Block)
	_, oblixLat := measureOblix(minInt(sc.Objects, 1<<15), sc.Block)
	fprintf(w, "# Figure 11b: mean latency vs subORAMs (%d objects, 1 LB, %.0f reqs/s)\n", sc.Objects, load)
	fprintf(w, "%10s %14s\n", "subORAMs", "mean latency")
	for s := 1; s <= 15; s++ {
		// Fixed point: T = max(LB(X·T), Sub(f(X·T,S), N/S)).
		t := 10 * time.Millisecond
		for i := 0; i < 30; i++ {
			r := int(load * t.Seconds())
			alpha := batch.Size(r, s, sc.Lambda)
			if alpha == 0 {
				alpha = 1
			}
			nt := model.SubTime(alpha, sc.Objects/s)
			if lb := model.LBTime(r, s); lb > nt {
				nt = lb
			}
			if nt <= 0 {
				nt = time.Millisecond
			}
			if absDur(nt-t) < time.Millisecond {
				t = nt
				break
			}
			t = (t + nt) / 2
		}
		fprintf(w, "%10d %14v\n", s, (5 * t / 2).Round(time.Millisecond))
	}
	fprintf(w, "# references: obladi batch latency %v, oblix access latency %v\n",
		obladiLat.Round(time.Millisecond), oblixLat.Round(time.Microsecond))
	fprintf(w, "# paper shape: latency falls as subORAMs parallelize the scan, with diminishing returns\n")
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
