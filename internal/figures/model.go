// Package figures regenerates every table and figure of the paper's
// evaluation (§8). Analytic figures (3, 4) come straight from the
// Theorem-3 math; performance figures measure this repository's real
// components on local hardware and, where the paper's cluster sizes exceed
// one machine, extend the measurements through the paper's own pipeline
// equations (§6, Eq. 1–2) — the planner methodology the authors use
// themselves. Absolute numbers therefore differ from the paper's Azure
// cluster, but the shapes (who wins, scaling slopes, crossovers) are
// preserved and recorded in EXPERIMENTS.md.
package figures

import (
	"fmt"
	"io"
	"math"
	"time"

	"snoopy/internal/batch"
	"snoopy/internal/crypt"
	"snoopy/internal/loadbalancer"
	"snoopy/internal/obladi"
	"snoopy/internal/oblix"
	"snoopy/internal/planner"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
)

// Scale controls experiment sizes. The paper's full sizes (2M–10M objects)
// take hours in pure Go; the default scale preserves every shape at sizes
// a laptop handles in minutes.
type Scale struct {
	// Objects is the total data size for the main experiments (paper: 2M).
	Objects int
	// Block is the object size (paper: 160 B).
	Block int
	// KTUsers is the key-transparency user count (paper: 5M).
	KTUsers int
	// Workers models the per-machine core budget (paper: 4-core DC4s_v2).
	Workers int
	// Lambda is the security parameter.
	Lambda int
}

// DefaultScale fits a laptop run.
func DefaultScale() Scale {
	return Scale{Objects: 1 << 17, Block: 160, KTUsers: 1 << 16, Workers: 4, Lambda: 128}
}

// FullScale is the paper's parameterization (slow!).
func FullScale() Scale {
	return Scale{Objects: 2_000_000, Block: 160, KTUsers: 5_000_000, Workers: 4, Lambda: 128}
}

// Network model for cross-machine figures: ~1 Gbps with datacenter RTT,
// matching the paper's testbed links.
const netBytesPerSec = 125e6

var netRTT = 500 * time.Microsecond

// measureModel builds a planner cost model by timing the real load
// balancer and subORAM at probe sizes near the experiment's operating
// point (block size and λ as configured).
func measureModel(block, lambda, workers int) planner.CostModel {
	// --- Load balancer sort constant ---
	const probeReqs, probeSubs = 2048, 4
	lb := loadbalancer.New(loadbalancer.Config{
		BlockSize: block, NumSubORAMs: probeSubs, Lambda: lambda, SortWorkers: workers,
	}, crypt.MustNewKey())
	reqs := randomReads(probeReqs, block)
	t0 := time.Now()
	b, err := lb.MakeBatches(reqs)
	if err != nil {
		panic(err)
	}
	if _, err := lb.MatchResponses(b.All, reqs); err != nil {
		panic(err)
	}
	lbWall := time.Since(t0)
	m := float64(probeReqs + b.PerSub*probeSubs)
	sortNs := float64(lbWall.Nanoseconds()) / (2 * m * log2(m) * log2(m))

	// --- SubORAM: separate the batch-dependent build from the linear
	// scan by probing two object counts at the same batch size. ---
	const o1, o2 = 1 << 13, 1 << 15
	t1 := timeSubORAM(block, workers, o1, b.PerSub)
	t2 := timeSubORAM(block, workers, o2, b.PerSub)
	scanNs := float64((t2 - t1).Nanoseconds()) / float64(o2-o1)
	if scanNs <= 0 {
		scanNs = 1
	}
	fixed := float64(t1.Nanoseconds()) - scanNs*o1
	mb := 8 * float64(b.PerSub)
	buildSortNs := fixed / (mb * log2(mb) * log2(mb))
	if buildSortNs <= 0 {
		buildSortNs = sortNs
	}

	lbTime := func(r, s int) time.Duration {
		alpha := batch.Size(r, s, lambda)
		mm := float64(r + alpha*s)
		if mm < 2 {
			mm = 2
		}
		return time.Duration(2 * sortNs * mm * log2(mm) * log2(mm))
	}
	subTime := func(batchSize, objectsPerSub int) time.Duration {
		if batchSize < 2 {
			batchSize = 2
		}
		mm := 8 * float64(batchSize)
		compute := buildSortNs*mm*log2(mm)*log2(mm) + scanNs*float64(objectsPerSub)
		// LB↔subORAM transfer for the batch and its responses (Gigabit
		// link + sub-ms RTT, as in the paper's testbed).
		netBytes := float64(2 * batchSize * (block + 64))
		net := float64(netRTT.Nanoseconds()) + netBytes/netBytesPerSec*1e9
		return time.Duration(compute + net)
	}
	return planner.CostModel{LBTime: lbTime, SubTime: subTime}
}

func timeSubORAM(block, workers, objects, batchSize int) time.Duration {
	sub := suboram.New(suboram.Config{BlockSize: block, Workers: workers})
	ids := make([]uint64, objects)
	for i := range ids {
		ids[i] = uint64(i)
	}
	if err := sub.Init(ids, make([]byte, objects*block)); err != nil {
		panic(err)
	}
	reqs := randomReads(batchSize, block)
	t0 := time.Now()
	if _, err := sub.BatchAccess(reqs); err != nil {
		panic(err)
	}
	return time.Since(t0)
}

func randomReads(n, block int) *store.Requests {
	reqs := store.NewRequests(n, block)
	for i := 0; i < n; i++ {
		reqs.SetRow(i, store.OpRead, uint64(i*7+1), 0, uint64(i), uint64(i), nil)
	}
	return reqs
}

// bestSplit returns the (loadBalancers, subORAMs) split of `machines` that
// maximizes modeled throughput under the latency bound, plus that
// throughput.
func bestSplit(req planner.Requirements, m planner.CostModel, machines int) (lbs, subs int, x float64) {
	for b := 1; b < machines; b++ {
		s := machines - b
		xi := planner.MaxThroughput(req, m, b, s)
		if xi > x {
			x, lbs, subs = xi, b, s
		}
	}
	return
}

// measureObladi returns the baseline's sustained throughput and per-batch
// latency at the given data size (2 machines: proxy + storage).
func measureObladi(objects, block int) (reqsPerSec float64, batchLatency time.Duration) {
	ids := make([]uint64, objects)
	for i := range ids {
		ids[i] = uint64(i)
	}
	p, err := obladi.New(obladi.Config{BlockSize: block, Network: obladi.DefaultNetwork()},
		ids, make([]byte, objects*block))
	if err != nil {
		panic(err)
	}
	ops := make([]obladi.Op, obladi.DefaultBatchSize)
	for i := range ops {
		ops[i] = obladi.Op{Key: uint64((i * 37) % objects)}
	}
	// Warm-up batch, then measure.
	if _, err := p.ExecuteBatch(ops); err != nil {
		panic(err)
	}
	const rounds = 3
	t0 := time.Now()
	for r := 0; r < rounds; r++ {
		if _, err := p.ExecuteBatch(ops); err != nil {
			panic(err)
		}
	}
	wall := time.Since(t0)
	per := wall / rounds
	return float64(len(ops)) / per.Seconds(), per
}

// measureOblix returns vanilla Oblix's sequential throughput and
// per-access latency at the given data size (1 machine).
func measureOblix(objects, block int) (reqsPerSec float64, accessLatency time.Duration) {
	d, err := oblix.New(objects, block)
	if err != nil {
		panic(err)
	}
	// Warm up.
	for i := 0; i < 64; i++ {
		d.Access(false, uint32(i%objects), nil)
	}
	const probes = 512
	t0 := time.Now()
	for i := 0; i < probes; i++ {
		d.Access(false, uint32((i*31)%objects), nil)
	}
	per := time.Since(t0) / probes
	return 1 / per.Seconds(), per
}

// measureOblixSubORAM times an oblix partition processing one α-sized
// batch at the given partition size (for Fig. 10's Snoopy-Oblix).
func measureOblixSubORAM(objectsPerSub, alpha, block int) time.Duration {
	d, err := oblix.New(objectsPerSub, block)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 32; i++ {
		d.Access(false, uint32(i%objectsPerSub), nil)
	}
	probes := alpha
	if probes > 256 {
		probes = 256
	}
	t0 := time.Now()
	for i := 0; i < probes; i++ {
		d.Access(false, uint32((i*13)%objectsPerSub), nil)
	}
	per := time.Since(t0) / time.Duration(probes)
	return time.Duration(alpha) * per
}

func log2(x float64) float64 {
	if x < 2 {
		return 1
	}
	return math.Log2(x)
}

func fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}
