package figures

import (
	"io"
	"time"

	"snoopy/internal/planner"
	"snoopy/internal/simnet"
)

// Fig9aSim cross-checks Fig. 9a with the discrete-event cluster simulator
// (internal/simnet): same measured component costs, but throughput found
// by actually scheduling pipelined epochs over simulated machines and
// links instead of the closed-form Eq. (1). Agreement between the two
// columns validates the methodology used for the multi-machine figures.
func Fig9aSim(w io.Writer, sc Scale) {
	fprintf(w, "# Figure 9a (simulated cluster): throughput vs machines — %d objects x %dB, latency <= 500ms\n",
		sc.Objects, sc.Block)
	model := measureModel(sc.Block, sc.Lambda, sc.Workers)
	bound := 500 * time.Millisecond
	epoch := time.Duration(2 * float64(bound) / 5)

	fprintf(w, "%9s  %20s %20s\n", "machines", "simulated (L+S)", "closed-form (L+S)")
	for machines := 4; machines <= 18; machines += 2 {
		var bestX float64
		var bestL, bestS int
		for b := 1; b < machines; b++ {
			s := machines - b
			x, err := simnet.MaxStableThroughput(simnet.Config{
				LBs: b, Subs: s, Objects: sc.Objects, Block: sc.Block,
				Lambda: sc.Lambda, Epoch: epoch, Model: model,
				NetRTT: netRTT, NetBytesPerSec: netBytesPerSec,
				Epochs: 40, Seed: int64(machines*100 + b),
			}, bound)
			if err != nil {
				panic(err)
			}
			if x > bestX {
				bestX, bestL, bestS = x, b, s
			}
		}
		cfL, cfS, cfX := bestSplit(reqFor(sc, bound), model, machines)
		fprintf(w, "%9d  %12.0f (%d+%2d) %12.0f (%d+%2d)\n",
			machines, bestX, bestL, bestS, cfX, cfL, cfS)
	}
	fprintf(w, "# the simulator schedules real pipelined epochs; columns agreeing within ~2x\n")
	fprintf(w, "# validates the closed-form methodology used in Fig 9a/9b/10/11\n")
}

func reqFor(sc Scale, bound time.Duration) planner.Requirements {
	return planner.Requirements{Objects: sc.Objects, BlockSize: sc.Block, MaxLatency: bound, Lambda: sc.Lambda}
}
