package figures

import (
	"io"
	"runtime"
	"time"

	"snoopy/internal/crypt"
	"snoopy/internal/loadbalancer"
	"snoopy/internal/obliv"
	"snoopy/internal/planner"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
)

// Fig12 — breakdown of one epoch's processing time (make batch, subORAM
// process, match responses) as batch size grows, for three data sizes.
// Fully measured, one load balancer and one subORAM (as in the paper).
func Fig12(w io.Writer, sc Scale) {
	sizes := []int{1 << 10, 1 << 15, 1 << 17}
	if sc.Objects >= 1<<20 {
		sizes[2] = 1 << 20
	}
	fprintf(w, "# Figure 12: batch processing breakdown (1 LB, 1 subORAM), block=%dB\n", sc.Block)
	fprintf(w, "# the sealed column stores the partition in enclave-external encrypted memory (§7),\n")
	fprintf(w, "# reproducing the mechanism behind the paper's EPC-paging jump at large data sizes\n")
	for _, objects := range sizes {
		fprintf(w, "## data size %d objects\n", objects)
		fprintf(w, "%10s %14s %14s %16s %14s\n", "requests", "make batch", "process batch", "process (sealed)", "match resp")
		sub := suboram.New(suboram.Config{BlockSize: sc.Block, Workers: sc.Workers})
		sealedSub := suboram.New(suboram.Config{BlockSize: sc.Block, Workers: sc.Workers, Sealed: true})
		ids := make([]uint64, objects)
		for i := range ids {
			ids[i] = uint64(i)
		}
		if err := sub.Init(ids, make([]byte, objects*sc.Block)); err != nil {
			panic(err)
		}
		if err := sealedSub.Init(ids, make([]byte, objects*sc.Block)); err != nil {
			panic(err)
		}
		lb := loadbalancer.New(loadbalancer.Config{
			BlockSize: sc.Block, NumSubORAMs: 1, Lambda: sc.Lambda, SortWorkers: sc.Workers,
		}, crypt.MustNewKey())
		for _, nReq := range []int{1 << 6, 1 << 7, 1 << 8, 1 << 9, 1 << 10} {
			reqs := store.NewRequests(nReq, sc.Block)
			for i := 0; i < nReq; i++ {
				reqs.SetRow(i, store.OpRead, uint64((i*131)%objects), 0, uint64(i), uint64(i), nil)
			}
			batches, err := lb.MakeBatches(reqs)
			if err != nil {
				panic(err)
			}
			out, err := sub.BatchAccess(batches.For(0))
			if err != nil {
				panic(err)
			}
			if _, err := sealedSub.BatchAccess(batches.For(0)); err != nil {
				panic(err)
			}
			if _, err := lb.MatchResponses(out, reqs); err != nil {
				panic(err)
			}
			lbStats := lb.LastStats()
			fprintf(w, "%10d %14v %14v %16v %14v\n", nReq,
				lbStats.MakeBatch.Round(time.Microsecond),
				sub.LastStats().Total().Round(time.Microsecond),
				sealedSub.LastStats().Total().Round(time.Microsecond),
				lbStats.Match.Round(time.Microsecond))
		}
	}
	fprintf(w, "# paper shape: LB time grows with batch size; subORAM time dominated by data size (linear scan)\n")
}

// Fig13a — parallelizing bitonic sort: 1/2/3 threads and the adaptive
// policy across input sizes. Fully measured.
func Fig13a(w io.Writer, sc Scale) {
	fprintf(w, "# Figure 13a: bitonic sort wall time, block=%dB records (host has %d CPU(s);\n", sc.Block, runtime.NumCPU())
	fprintf(w, "#   thread speedups require a multi-core host — on 1 CPU expect overhead instead)\n")
	fprintf(w, "%10s %12s %12s %12s %12s\n", "items", "1 thread", "2 threads", "3 threads", "adaptive")
	for _, n := range []int{1 << 10, 1 << 12, 1 << 14, 1 << 16} {
		fprintf(w, "%10d", n)
		for _, workers := range []int{1, 2, 3, 0} {
			reqs := store.NewRequests(n, sc.Block)
			for i := 0; i < n; i++ {
				reqs.SetRow(i, store.OpRead, uint64((i*2654435761)%1000000), 0, uint64(i), uint64(i), nil)
			}
			t0 := time.Now()
			if workers == 0 {
				obliv.SortAdaptive(store.ByKeyTag{Requests: reqs}, runtime.GOMAXPROCS(0))
			} else if workers == 1 {
				obliv.Sort(store.ByKeyTag{Requests: reqs})
			} else {
				obliv.SortParallel(store.ByKeyTag{Requests: reqs}, workers)
			}
			fprintf(w, " %12v", time.Since(t0).Round(time.Microsecond))
		}
		fprintf(w, "\n")
	}
	fprintf(w, "# paper shape: threads help large sorts; coordination overhead makes 1 thread best when small\n")
}

// Fig13b — parallelizing the subORAM batch processing across enclave
// threads (batch 4K requests). Fully measured.
func Fig13b(w io.Writer, sc Scale) {
	const batchN = 1 << 12
	maxObj := 1 << 17
	if sc.Objects > maxObj {
		maxObj = sc.Objects
	}
	fprintf(w, "# Figure 13b: subORAM batch processing (batch %d), block=%dB (host has %d CPU(s))\n", batchN, sc.Block, runtime.NumCPU())
	fprintf(w, "%10s %12s %12s %12s %12s\n", "objects", "1 thread", "2 threads", "3 threads", "4 threads")
	for objects := 1 << 12; objects <= maxObj; objects <<= 2 {
		fprintf(w, "%10d", objects)
		for _, workers := range []int{1, 2, 3, 4} {
			fprintf(w, " %12v", timeSubORAM(sc.Block, workers, objects, batchN).Round(time.Microsecond))
		}
		fprintf(w, "\n")
	}
	fprintf(w, "# paper shape: added threads cut the linear-scan time roughly proportionally\n")
}

// Fig14 — planner outputs: optimal machine allocation (a) and monthly cost
// (b) as the throughput requirement rises, for two data sizes.
func Fig14(w io.Writer, sc Scale) {
	model := measureModel(sc.Block, sc.Lambda, sc.Workers)
	prices := planner.DefaultPrices()
	fprintf(w, "# Figure 14: planner — optimal configuration vs throughput (max latency 1s)\n")
	fprintf(w, "%12s %12s %6s %6s %12s\n", "objects", "target rps", "LBs", "subs", "cost $/mo")
	for _, objects := range []int{10_000, 1_000_000} {
		for _, x := range []float64{5_000, 20_000, 40_000, 80_000, 120_000} {
			p, err := planner.Optimize(planner.Requirements{
				Objects: objects, BlockSize: sc.Block,
				MinThroughput: x, MaxLatency: time.Second, Lambda: sc.Lambda,
				MaxLoadBalancers: 10, MaxSubORAMs: 40,
			}, model, prices)
			if err != nil {
				fprintf(w, "%12d %12.0f %13s\n", objects, x, "infeasible")
				continue
			}
			fprintf(w, "%12d %12.0f %6d %6d %12.0f\n", objects, x, p.LoadBalancers, p.SubORAMs, p.CostPerMonth)
		}
	}
	fprintf(w, "# paper shape: larger data favors more subORAMs per LB; cost rises with data size and throughput\n")
}

// Headline — the paper's summary claim: Snoopy at 18 machines vs Obladi.
func Headline(w io.Writer, sc Scale) {
	model := measureModel(sc.Block, sc.Lambda, sc.Workers)
	req := planner.Requirements{
		Objects: sc.Objects, BlockSize: sc.Block,
		MaxLatency: 500 * time.Millisecond, Lambda: sc.Lambda,
	}
	lbs, subs, snoopyX := bestSplit(req, model, 18)
	obladiX, obladiLat := measureObladi(minInt(sc.Objects, 1<<17), sc.Block)
	fprintf(w, "# Headline (§8.2): 18 machines, %d objects x %dB, latency <= 500ms\n", sc.Objects, sc.Block)
	fprintf(w, "snoopy:  %10.0f reqs/s  (%d LBs + %d subORAMs)\n", snoopyX, lbs, subs)
	fprintf(w, "obladi:  %10.0f reqs/s  (2 machines, batch latency %v)\n", obladiX, obladiLat.Round(time.Millisecond))
	fprintf(w, "speedup: %10.1fx   (paper: 92K vs 6.7K = 13.7x at 2M objects)\n", snoopyX/obladiX)
}
