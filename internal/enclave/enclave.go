// Package enclave implements the abstract enclave model Snoopy is proven
// secure against (paper §2, §B.1): the attacker controls everything outside
// the enclave, can read/modify enclave-external memory, and observes access
// patterns — but cannot see data inside the processor.
//
// Since Go has no production SGX runtime, this package *is* the substrate
// substitution recorded in DESIGN.md: it provides
//
//   - SealedStore: enclave-external block storage, encrypted with
//     authenticated encryption and integrity-checked against digests kept
//     "inside" the enclave (paper §2 "Data integrity", §7 paging
//     optimization), and
//   - simulated remote attestation: a measurement-binding report a client
//     verifies before keying a channel (paper §3.1).
//
// The access-pattern side of the model is exercised by internal/trace.
package enclave

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"snoopy/internal/crypt"
)

// ErrIntegrity is returned when external memory fails authentication — the
// untrusted host tampered with or rolled back a block.
var ErrIntegrity = errors.New("enclave: external memory integrity violation")

// SealedStore is a fixed-geometry array of value blocks held in untrusted
// (enclave-external) memory. Every block is encrypted and authenticated; a
// per-block digest of the current ciphertext lives in trusted memory, so
// replaying an old (validly encrypted) block is detected — the freshness
// check the paper performs with in-enclave digests.
//
// Reads and writes of distinct blocks may proceed concurrently.
type SealedStore struct {
	blockSize int
	n         int

	sealer *crypt.Sealer

	// Untrusted region: ciphertexts, fixed stride.
	ext []byte
	// Trusted region: per-block digests of the current ciphertext.
	digests []crypt.Digest
	// Per-block write locks (digest+ciphertext must update atomically).
	locks []sync.Mutex
}

const sealedStride = crypt.Overhead

// NewSealedStore creates a store of n zeroed blocks of blockSize bytes,
// sealed under a fresh key.
func NewSealedStore(n, blockSize int) (*SealedStore, error) {
	if n < 0 || blockSize <= 0 {
		return nil, fmt.Errorf("enclave: invalid store geometry n=%d block=%d", n, blockSize)
	}
	sealer, err := crypt.NewSealer(crypt.MustNewKey(), 0)
	if err != nil {
		return nil, err
	}
	s := &SealedStore{
		blockSize: blockSize,
		n:         n,
		sealer:    sealer,
		ext:       make([]byte, n*(blockSize+sealedStride)),
		digests:   make([]crypt.Digest, n),
		locks:     make([]sync.Mutex, n),
	}
	zero := make([]byte, blockSize)
	for i := 0; i < n; i++ {
		s.writeLocked(i, zero)
	}
	return s, nil
}

// NumBlocks returns the number of blocks.
func (s *SealedStore) NumBlocks() int { return s.n }

// BlockSize returns the block size in bytes.
func (s *SealedStore) BlockSize() int { return s.blockSize }

func (s *SealedStore) slot(i int) []byte {
	stride := s.blockSize + sealedStride
	return s.ext[i*stride : (i+1)*stride]
}

func aadFor(i int) []byte {
	return []byte(fmt.Sprintf("block/%d", i))
}

// Read decrypts block i into dst (len >= blockSize), verifying both the
// AEAD tag and the freshness digest.
func (s *SealedStore) Read(i int, dst []byte) error {
	s.locks[i].Lock()
	ct := append([]byte(nil), s.slot(i)...)
	d := s.digests[i]
	s.locks[i].Unlock()
	if !d.Verify(ct) {
		return fmt.Errorf("%w: block %d replayed or corrupted", ErrIntegrity, i)
	}
	pt, err := s.sealer.Open(ct, aadFor(i))
	if err != nil {
		return fmt.Errorf("%w: block %d: %v", ErrIntegrity, i, err)
	}
	copy(dst, pt)
	return nil
}

// Write re-encrypts block i with src. Every scan writes every block back
// (whether or not it changed), so ciphertext churn is data-independent.
func (s *SealedStore) Write(i int, src []byte) {
	s.locks[i].Lock()
	s.writeLocked(i, src)
	s.locks[i].Unlock()
}

func (s *SealedStore) writeLocked(i int, src []byte) {
	ct := s.sealer.Seal(src[:s.blockSize], aadFor(i))
	copy(s.slot(i), ct)
	s.digests[i] = crypt.DigestOf(ct)
}

// Corrupt flips a bit in the external ciphertext of block i — a test hook
// standing in for host tampering.
func (s *SealedStore) Corrupt(i int) { s.slot(i)[3] ^= 1 }

// Rollback restores the external bytes of block i to a previously captured
// snapshot without updating the trusted digest — a replay attack. Returns
// the current external bytes for later replay.
func (s *SealedStore) Snapshot(i int) []byte {
	s.locks[i].Lock()
	defer s.locks[i].Unlock()
	return append([]byte(nil), s.slot(i)...)
}

// Replay overwrites block i's external bytes with a snapshot.
func (s *SealedStore) Replay(i int, snap []byte) {
	s.locks[i].Lock()
	copy(s.slot(i), snap)
	s.locks[i].Unlock()
}

// ---- Simulated remote attestation ----

// Measurement identifies the program loaded into an enclave (MRENCLAVE).
type Measurement [sha256.Size]byte

// Measure hashes a program description into a Measurement.
func Measure(program string) Measurement { return sha256.Sum256([]byte(program)) }

// Platform simulates the hardware vendor's attestation root: enclaves on
// the same platform can produce reports that verifiers holding the platform
// identity can check. (A real deployment would verify vendor signatures;
// the MAC stands in for that chain.)
type Platform struct {
	root crypt.Key
}

// NewPlatform creates an attestation root.
func NewPlatform() *Platform { return &Platform{root: crypt.MustNewKey()} }

// NewPlatformFromKey builds a platform from a shared root key so separate
// processes (cmd/snoopy-server, cmd/snoopy-client) can agree on one
// simulated attestation authority.
func NewPlatformFromKey(root crypt.Key) *Platform { return &Platform{root: root} }

// Report binds a measurement and channel-key fingerprint to the platform.
type Report struct {
	Measurement Measurement
	KeyHash     crypt.Digest
	MAC         [sha256.Size]byte
}

// Attest produces a report for an enclave running `program` that is
// offering the channel key fingerprint keyHash.
func (p *Platform) Attest(m Measurement, keyHash crypt.Digest) Report {
	mac := hmac.New(sha256.New, p.root[:])
	mac.Write(m[:])
	mac.Write(keyHash[:])
	var r Report
	r.Measurement = m
	r.KeyHash = keyHash
	copy(r.MAC[:], mac.Sum(nil))
	return r
}

// Verify checks a report against an expected measurement.
func (p *Platform) Verify(r Report, want Measurement) error {
	if r.Measurement != want {
		return fmt.Errorf("enclave: measurement mismatch")
	}
	mac := hmac.New(sha256.New, p.root[:])
	mac.Write(r.Measurement[:])
	mac.Write(r.KeyHash[:])
	if !hmac.Equal(mac.Sum(nil), r.MAC[:]) {
		return fmt.Errorf("enclave: attestation MAC invalid")
	}
	return nil
}
