package enclave

import (
	"bytes"
	"sync"
	"testing"

	"snoopy/internal/crypt"
)

func TestSealedStoreRoundTrip(t *testing.T) {
	s, err := NewSealedStore(8, 32)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	if err := s.Read(3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 32)) {
		t.Fatal("fresh store should read zeros")
	}
	val := bytes.Repeat([]byte{0xAB}, 32)
	s.Write(3, val)
	if err := s.Read(3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, val) {
		t.Fatal("read-after-write mismatch")
	}
	// Other blocks untouched.
	if err := s.Read(2, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 32)) {
		t.Fatal("neighbouring block disturbed")
	}
}

func TestSealedStoreDetectsCorruption(t *testing.T) {
	s, _ := NewSealedStore(4, 16)
	s.Corrupt(1)
	if err := s.Read(1, make([]byte, 16)); err == nil {
		t.Fatal("corrupted block read succeeded")
	}
}

func TestSealedStoreDetectsRollback(t *testing.T) {
	s, _ := NewSealedStore(4, 16)
	s.Write(2, bytes.Repeat([]byte{1}, 16))
	old := s.Snapshot(2) // a validly-encrypted stale ciphertext
	s.Write(2, bytes.Repeat([]byte{2}, 16))
	s.Replay(2, old)
	if err := s.Read(2, make([]byte, 16)); err == nil {
		t.Fatal("replayed block read succeeded — freshness check missing")
	}
}

func TestSealedStoreCiphertextHidesPlaintext(t *testing.T) {
	s, _ := NewSealedStore(1, 16)
	secret := []byte("sixteen byte key")
	s.Write(0, secret)
	if bytes.Contains(s.ext, secret) {
		t.Fatal("plaintext visible in external memory")
	}
}

func TestSealedStoreConcurrentDistinctBlocks(t *testing.T) {
	s, _ := NewSealedStore(64, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 8)
			for i := w * 8; i < (w+1)*8; i++ {
				buf[0] = byte(i)
				s.Write(i, buf)
				if err := s.Read(i, buf); err != nil {
					t.Error(err)
					return
				}
				if buf[0] != byte(i) {
					t.Errorf("block %d wrong", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestAttestation(t *testing.T) {
	p := NewPlatform()
	m := Measure("snoopy-suboram-v1")
	kh := crypt.DigestOf([]byte("channel public key"))
	r := p.Attest(m, kh)
	if err := p.Verify(r, m); err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(r, Measure("evil-program")); err == nil {
		t.Fatal("wrong measurement accepted")
	}
	r.MAC[0] ^= 1
	if err := p.Verify(r, m); err == nil {
		t.Fatal("forged report accepted")
	}
	other := NewPlatform()
	if err := other.Verify(p.Attest(m, kh), m); err == nil {
		t.Fatal("cross-platform report accepted")
	}
}
