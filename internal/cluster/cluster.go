// Package cluster is the supervision layer that closes Snoopy's failure
// loop (paper §9): a heartbeat/probe failure detector layered over the
// transport's attested channels and core's per-epoch health accounting, and
// a supervisor that turns detector trips into partition failover — promoting
// a standby replica or a node restored from sealed state — with full
// observability (trips, promotions, time-to-recovery).
//
// Every threshold and interval here is public deployment configuration
// (Policy). Failure handling therefore reveals only which partitions are
// down and when — information the epoch schedule and connection state
// already make public — and nothing about the data or queries (Theorem 3 is
// unaffected: batch shapes, resync sizes, and reply timing stay functions
// of public parameters only).
package cluster

import (
	"fmt"
	"sync"
	"time"

	"snoopy/internal/core"
	"snoopy/internal/metrics"
	"snoopy/internal/telemetry"
)

// Policy holds the failure detector's public deployment parameters. The
// zero value gets defaults.
type Policy struct {
	// FailAfter is the consecutive-miss threshold: a partition is declared
	// down after this many failed observations in a row (epoch failures and
	// probe timeouts both count). Default 3.
	FailAfter int
	// ProbeInterval is the background heartbeat period (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one liveness probe (default ProbeInterval).
	ProbeTimeout time.Duration
}

func (p *Policy) fillDefaults() {
	if p.FailAfter <= 0 {
		p.FailAfter = 3
	}
	if p.ProbeInterval <= 0 {
		p.ProbeInterval = time.Second
	}
	if p.ProbeTimeout <= 0 {
		p.ProbeTimeout = p.ProbeInterval
	}
}

// Detector is a consecutive-miss failure detector over a fixed set of
// partitions. Two feeds drive it: per-epoch batch outcomes (ObserveHealth,
// from core.HealthStats) and background liveness probes (Observe, from a
// Supervisor's probe loops). Either feed alone can trip it.
type Detector struct {
	policy Policy
	trips  metrics.Counter
	// telTrips mirrors trips into a telemetry registry when set
	// (Supervisor.Instrument); nil no-ops.
	telTrips *telemetry.Counter

	mu     sync.Mutex
	misses []int
	down   []bool
	onTrip func(part int)
}

// NewDetector creates a detector for parts partitions.
func NewDetector(parts int, policy Policy) *Detector {
	policy.fillDefaults()
	return &Detector{
		policy: policy,
		misses: make([]int, parts),
		down:   make([]bool, parts),
	}
}

// OnTrip registers a callback invoked (without the detector lock held in
// the caller's future; it is called synchronously from Observe) exactly
// once per transition to down.
func (d *Detector) OnTrip(fn func(part int)) {
	d.mu.Lock()
	d.onTrip = fn
	d.mu.Unlock()
}

// Observe feeds one liveness observation for a partition: ok=false is a
// miss (probe timeout, epoch failure), ok=true resets the run and marks a
// previously-down partition recovered.
func (d *Detector) Observe(part int, ok bool) {
	d.mu.Lock()
	var trip func(int)
	if ok {
		d.misses[part] = 0
		d.down[part] = false
	} else {
		d.misses[part]++
		if d.misses[part] >= d.policy.FailAfter && !d.down[part] {
			d.down[part] = true
			d.trips.Inc()
			d.telTrips.Inc()
			trip = d.onTrip
		}
	}
	d.mu.Unlock()
	if trip != nil {
		trip(part)
	}
}

// ObserveHealth feeds a core health snapshot: each partition's current
// consecutive-failure run is folded into the detector (a run of zero is a
// healthy observation). Call it once per epoch.
func (d *Detector) ObserveHealth(h core.HealthStats) {
	for part, run := range h.ConsecutiveFailures {
		d.Observe(part, run == 0)
	}
}

// ObserveLeafHealth feeds the leaf-balancer side of a core health snapshot:
// each load-balancer feed's consecutive-failure run (a dead leaf of the
// aggregation tree fails its feed every epoch) is folded in exactly like a
// partition run. Use a detector sized to the global feed count.
func (d *Detector) ObserveLeafHealth(h core.HealthStats) {
	for feed, run := range h.LeafConsecutiveFailures {
		d.Observe(feed, run == 0)
	}
}

// Down reports whether the partition is currently declared down.
func (d *Detector) Down(part int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.down[part]
}

// Trips returns the total number of down transitions across all partitions.
func (d *Detector) Trips() uint64 { return d.trips.Load() }

// ProbeFunc is one liveness probe attempt — transport.RemoteSubORAM.Ping
// has exactly this shape; in-process deployments supply a closure.
type ProbeFunc func(timeout time.Duration) error

// Stats is a snapshot of the supervisor's observability counters.
type Stats struct {
	// Trips counts detector down-transitions.
	Trips uint64
	// LeafTrips counts leaf-balancer down-transitions (SuperviseLeaves).
	LeafTrips uint64
	// Promotions counts successful failovers (replacement promoted).
	Promotions uint64
	// PromotionFailures counts failover attempts that returned no
	// replacement (retried by core while the partition keeps failing).
	PromotionFailures uint64
	// Recoveries counts completed outages with measured time-to-recovery.
	Recoveries int
	// MeanTimeToRecovery averages first-failed-epoch → promotion, over
	// completed recoveries.
	MeanTimeToRecovery time.Duration
	// MaxTimeToRecovery is the worst observed recovery.
	MaxTimeToRecovery time.Duration

	// RootTrips counts root-detector down-transitions (SuperviseRoot) —
	// strictly separate from partition Trips and LeafTrips: a dead root
	// must never inflate partition failure accounting, and vice versa.
	RootTrips uint64
	// RootPromotions counts standby roots successfully promoted.
	RootPromotions uint64
	// RootPromotionFailures counts failed promotion attempts (retried
	// every ProbeInterval while the root stays down).
	RootPromotionFailures uint64
	// RootRecoveries counts completed root outages, and the two durations
	// below summarize their trip → standby-serving times.
	RootRecoveries         int
	RootMeanTimeToRecovery time.Duration
	RootMaxTimeToRecovery  time.Duration
}

func (s Stats) String() string {
	return fmt.Sprintf("trips=%d leaf_trips=%d root_trips=%d promotions=%d promotion_failures=%d recoveries=%d mttr=%v max_ttr=%v root_promotions=%d root_promotion_failures=%d root_recoveries=%d root_mttr=%v root_max_ttr=%v",
		s.Trips, s.LeafTrips, s.RootTrips, s.Promotions, s.PromotionFailures, s.Recoveries,
		s.MeanTimeToRecovery, s.MaxTimeToRecovery,
		s.RootPromotions, s.RootPromotionFailures, s.RootRecoveries,
		s.RootMeanTimeToRecovery, s.RootMaxTimeToRecovery)
}

// Supervisor ties a Detector to a promotion source, producing the hooks a
// core.Config needs for automatic failover (Failover / OnFailover) plus
// background probe loops and metrics. Typical wiring:
//
//	sup := cluster.NewSupervisor(S, promote, cluster.Policy{FailAfter: 3})
//	cfg.FailoverAfter = sup.Policy().FailAfter
//	cfg.Failover = sup.Failover()
//	cfg.OnFailover = sup.OnFailover()
//	...
//	sup.Watch(s, remote.Ping) // background heartbeats per remote partition
type Supervisor struct {
	policy  Policy
	det     *Detector
	promote core.FailoverFunc

	// leafDet supervises load-balancer feeds (leaves of the aggregation
	// tree) with the same policy; nil until SuperviseLeaves.
	leafDet *Detector
	// reg remembers the Instrument registry so SuperviseLeaves can attach
	// its detector's trip counter whichever call comes first.
	reg *telemetry.Registry

	promotions        metrics.Counter
	promotionFailures metrics.Counter
	recovery          metrics.Latencies

	// Telemetry mirrors of the counters above, bumped at the same sites;
	// all nil (no-ops) until Instrument.
	telPromotions  *telemetry.Counter
	telPromFails   *telemetry.Counter
	telRecoveryDur *telemetry.Histogram

	// Root-failover plane (SuperviseRoot); nil until installed. Its
	// telemetry mirrors live here so Instrument works in either order.
	rootMu            sync.Mutex
	root              *rootPlane
	telRootPromotions *telemetry.Counter
	telRootPromFails  *telemetry.Counter
	telRootRecovery   *telemetry.Histogram

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// Instrument mirrors the supervisor's accounting — detector trips,
// promotions and failed promotions, and the time-to-recovery distribution —
// into a telemetry registry. Every value is already tracked internally
// (Stats); Instrument adds an export path, not a new observation, so
// telemetry-reported failover activity matches Stats exactly (asserted by
// the chaos harness). Call it before the supervisor is wired into a running
// system (before Watch / Failover installation).
func (s *Supervisor) Instrument(reg *telemetry.Registry) {
	s.reg = reg
	s.det.mu.Lock()
	s.det.telTrips = reg.Counter("cluster_detector_trips_total")
	s.det.mu.Unlock()
	if s.leafDet != nil {
		s.leafDet.mu.Lock()
		s.leafDet.telTrips = reg.Counter("cluster_leaf_trips_total")
		s.leafDet.mu.Unlock()
	}
	s.telPromotions = reg.Counter("cluster_promotions_total")
	s.telPromFails = reg.Counter("cluster_promotion_failures_total")
	s.telRecoveryDur = reg.Histogram("cluster_time_to_recovery", nil)
	s.rootMu.Lock()
	if r := s.root; r != nil {
		r.det.mu.Lock()
		r.det.telTrips = reg.Counter("cluster_root_trips_total")
		r.det.mu.Unlock()
	}
	s.rootMu.Unlock()
	s.telRootPromotions = reg.Counter("cluster_root_promotions_total")
	s.telRootPromFails = reg.Counter("cluster_root_promotion_failures_total")
	s.telRootRecovery = reg.Histogram("cluster_root_time_to_recovery", nil)
}

// SuperviseLeaves adds a second detector over the system's feeds (global
// leaf index plane*feedsPerPlane+leaf, core.HealthStats's leaf layout).
// onTrip fires exactly once per down-transition — the usual wiring resets
// or replaces the tripped leaf (core.System.ResetLeaf, or installing a
// fresh transport.RemoteLeaf via Tree.ReplaceLeaf) — and a healthy
// observation afterwards re-arms the leaf. Feed the detector once per epoch
// with ObserveLeafHealth.
func (s *Supervisor) SuperviseLeaves(feeds int, onTrip func(feed int)) {
	s.leafDet = NewDetector(feeds, s.policy)
	if onTrip != nil {
		s.leafDet.OnTrip(onTrip)
	}
	if s.reg != nil {
		s.leafDet.mu.Lock()
		s.leafDet.telTrips = s.reg.Counter("cluster_leaf_trips_total")
		s.leafDet.mu.Unlock()
	}
}

// ObserveLeafHealth feeds the per-epoch leaf-failure runs into the leaf
// detector. No-op until SuperviseLeaves.
func (s *Supervisor) ObserveLeafHealth(h core.HealthStats) {
	if s.leafDet != nil {
		s.leafDet.ObserveLeafHealth(h)
	}
}

// LeafDown reports whether feed is currently declared down. False until
// SuperviseLeaves.
func (s *Supervisor) LeafDown(feed int) bool {
	return s.leafDet != nil && s.leafDet.Down(feed)
}

// NewSupervisor creates a supervisor for parts partitions. promote is the
// deployment's replacement source — promote a replica.Group spare, redial a
// restarted node, reopen sealed state — with core.FailoverFunc's contract.
func NewSupervisor(parts int, promote core.FailoverFunc, policy Policy) *Supervisor {
	policy.fillDefaults()
	return &Supervisor{
		policy:  policy,
		det:     NewDetector(parts, policy),
		promote: promote,
		stop:    make(chan struct{}),
	}
}

// Policy returns the (defaults-filled) policy in effect.
func (s *Supervisor) Policy() Policy { return s.policy }

// Detector exposes the underlying failure detector (for epoch feeds and
// status queries).
func (s *Supervisor) Detector() *Detector { return s.det }

// Failover returns the hook to install as core.Config.Failover: it records
// the trip, delegates to the promotion source, and accounts the outcome.
func (s *Supervisor) Failover() core.FailoverFunc {
	return func(part int, old core.SubORAMClient) (core.SubORAMClient, error) {
		// core's own threshold fired; fold the declaration into the
		// detector so probe-driven and epoch-driven trips share one view.
		s.det.declareDown(part)
		repl, err := s.promote(part, old)
		if err != nil || repl == nil {
			s.promotionFailures.Inc()
			s.telPromFails.Inc()
			return nil, err
		}
		s.promotions.Inc()
		s.telPromotions.Inc()
		s.det.Observe(part, true)
		return repl, nil
	}
}

// declareDown forces the down state (a trip, if not already down),
// regardless of the current miss run.
func (d *Detector) declareDown(part int) {
	d.mu.Lock()
	var trip func(int)
	if !d.down[part] {
		d.down[part] = true
		d.misses[part] = d.policy.FailAfter
		d.trips.Inc()
		d.telTrips.Inc()
		trip = d.onTrip
	}
	d.mu.Unlock()
	if trip != nil {
		trip(part)
	}
}

// OnFailover returns the observer to install as core.Config.OnFailover; it
// feeds the time-to-recovery distribution on successful promotions.
func (s *Supervisor) OnFailover() func(part int, took time.Duration, err error) {
	return func(part int, took time.Duration, err error) {
		if err == nil {
			s.recovery.Add(took)
			s.telRecoveryDur.Observe(took)
		}
	}
}

// Watch starts a background heartbeat loop for one partition: every
// ProbeInterval it runs probe under ProbeTimeout and feeds the detector.
// probe must tolerate being called after the partition was replaced (pass a
// closure reading the current client when failover swaps it). Watch loops
// stop at Close.
func (s *Supervisor) Watch(part int, probe ProbeFunc) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(s.policy.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.det.Observe(part, probe(s.policy.ProbeTimeout) == nil)
			}
		}
	}()
}

// ObserveHealth feeds a per-epoch core health snapshot into the detector.
func (s *Supervisor) ObserveHealth(h core.HealthStats) { s.det.ObserveHealth(h) }

// Down reports whether the partition is currently declared down.
func (s *Supervisor) Down(part int) bool { return s.det.Down(part) }

// Stats snapshots the supervision counters.
func (s *Supervisor) Stats() Stats {
	var leafTrips uint64
	if s.leafDet != nil {
		leafTrips = s.leafDet.Trips()
	}
	st := Stats{
		Trips:              s.det.Trips(),
		LeafTrips:          leafTrips,
		Promotions:         s.promotions.Load(),
		PromotionFailures:  s.promotionFailures.Load(),
		Recoveries:         s.recovery.Count(),
		MeanTimeToRecovery: s.recovery.Mean(),
		MaxTimeToRecovery:  s.recovery.Max(),
	}
	s.rootStats(&st)
	return st
}

// Close stops all Watch loops and waits for them to exit.
func (s *Supervisor) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}
