package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"snoopy/internal/core"
	"snoopy/internal/suboram"
	"snoopy/internal/telemetry"
	"snoopy/internal/transport"
)

// rootHarness is the in-process standby-root setup: partitions with
// replay caches that survive the root, a shared journal directory, and a
// factory for root incarnations.
type rootHarness struct {
	t    *testing.T
	subs []*suboram.SubORAM
	rcs  []*transport.ReplayCache
	dir  string
}

func newRootHarness(t *testing.T, S int) *rootHarness {
	h := &rootHarness{t: t, dir: t.TempDir()}
	for i := 0; i < S; i++ {
		h.subs = append(h.subs, suboram.New(suboram.Config{BlockSize: 32}))
		h.rcs = append(h.rcs, transport.NewReplayCache())
	}
	return h
}

func (h *rootHarness) newRoot() (*core.System, error) {
	clients := make([]core.SubORAMClient, len(h.subs))
	for i := range h.subs {
		clients[i] = transport.NewLocalTagged(h.subs[i], h.rcs[i])
	}
	return core.NewWithSubORAMs(core.Config{
		BlockSize: 32, Lambda: 32, JournalDir: h.dir,
	}, clients)
}

func (h *rootHarness) mustRoot() *core.System {
	sys, err := h.newRoot()
	if err != nil {
		h.t.Fatal(err)
	}
	return sys
}

// TestRootPromotionOnTrip drives the full loop: crash the root, let the
// detector trip on consecutive misses, and verify the supervisor promotes
// a standby over the same journal directory with recovery accounting.
func TestRootPromotionOnTrip(t *testing.T) {
	h := newRootHarness(t, 2)
	r1 := h.mustRoot()
	ids := []uint64{1, 2, 3}
	if err := r1.Init(ids, make([]byte, 3*32)); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	var mu sync.Mutex
	var promoted *core.System
	sup := NewSupervisor(2, nil, Policy{FailAfter: 2, ProbeInterval: time.Millisecond})
	sup.Instrument(reg)
	defer sup.Close()
	sup.SuperviseRoot(r1, func(old *core.System) (*core.System, error) {
		if old != nil {
			old.Close()
		}
		sys, err := h.newRoot()
		if err != nil {
			return nil, err
		}
		mu.Lock()
		promoted = sys
		mu.Unlock()
		return sys, nil
	})
	sup.WatchRoot(func(sys *core.System, _ time.Duration) error {
		if sys == nil || sys.Crashed() {
			return errors.New("root dead")
		}
		return nil
	})

	if sup.RootDown() {
		t.Fatal("root declared down while healthy")
	}
	r1.Crash()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cur := sup.Root(); cur != nil && cur != r1 && !sup.RootDown() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby never promoted: %v", sup.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	p := promoted
	mu.Unlock()
	defer p.Close()
	if sup.Root() != p {
		t.Fatal("supervisor does not serve the promoted root")
	}

	st := sup.Stats()
	if st.RootTrips != 1 || st.RootPromotions != 1 || st.RootRecoveries != 1 {
		t.Fatalf("root accounting: %v", st)
	}
	if st.RootMeanTimeToRecovery <= 0 || st.RootMaxTimeToRecovery < st.RootMeanTimeToRecovery {
		t.Fatalf("time-to-recovery not measured: %v", st)
	}
	if got := reg.Counter("cluster_root_trips_total").Value(); got != 1 {
		t.Fatalf("cluster_root_trips_total = %d, want 1", got)
	}
	if got := reg.Counter("cluster_root_promotions_total").Value(); got != 1 {
		t.Fatalf("cluster_root_promotions_total = %d, want 1", got)
	}
	// The promoted root serves.
	wait, err := p.ReadIdemAsync(99, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Flush()
	if _, found, err := wait(); err != nil || !found {
		t.Fatalf("promoted root read: found=%v err=%v", found, err)
	}
}

// TestRootPromotionRetries: failed attempts are counted and retried until
// one succeeds.
func TestRootPromotionRetries(t *testing.T) {
	h := newRootHarness(t, 1)
	r1 := h.mustRoot()
	defer r1.Close()

	attempts := 0
	var mu sync.Mutex
	sup := NewSupervisor(1, nil, Policy{FailAfter: 1, ProbeInterval: time.Millisecond})
	defer sup.Close()
	sup.SuperviseRoot(r1, func(old *core.System) (*core.System, error) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n < 3 {
			return nil, fmt.Errorf("standby %d not ready", n)
		}
		return h.newRoot()
	})
	sup.ObserveRootHealth(false)

	deadline := time.Now().Add(5 * time.Second)
	for sup.RootDown() {
		if time.Now().After(deadline) {
			t.Fatalf("promotion never succeeded: %v", sup.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	defer sup.Root().Close()
	st := sup.Stats()
	if st.RootPromotionFailures != 2 || st.RootPromotions != 1 {
		t.Fatalf("retry accounting: %v", st)
	}
}

// TestTripPlanesSeparate is the satellite-1 regression: partition trips,
// leaf trips, and root trips are three separate planes — activity in one
// must never bleed into another's counters, in Stats or telemetry.
func TestTripPlanesSeparate(t *testing.T) {
	reg := telemetry.NewRegistry()
	sup := NewSupervisor(3, nil, Policy{FailAfter: 2})
	sup.Instrument(reg)
	defer sup.Close()
	sup.SuperviseLeaves(4, nil)
	sup.SuperviseRoot(nil, nil)

	// Trip one leaf and the root; partitions stay healthy.
	leaf := core.HealthStats{
		ConsecutiveFailures:     []int{0, 0, 0},
		LeafConsecutiveFailures: []int{0, 3, 0, 0},
	}
	for i := 0; i < 3; i++ {
		sup.ObserveHealth(leaf)
		sup.ObserveLeafHealth(leaf)
		sup.ObserveRootHealth(false)
	}
	st := sup.Stats()
	if st.Trips != 0 {
		t.Fatalf("leaf/root failures bled into partition trips: %v", st)
	}
	if st.LeafTrips != 1 || st.RootTrips != 1 {
		t.Fatalf("leaf/root trips not recorded: %v", st)
	}
	if got := reg.Counter("cluster_detector_trips_total").Value(); got != 0 {
		t.Fatalf("partition trip telemetry = %d, want 0", got)
	}
	if got := reg.Counter("cluster_leaf_trips_total").Value(); got != 1 {
		t.Fatalf("leaf trip telemetry = %d, want 1", got)
	}
	if got := reg.Counter("cluster_root_trips_total").Value(); got != 1 {
		t.Fatalf("root trip telemetry = %d, want 1", got)
	}

	// Now trip a partition; leaf and root counters must not move.
	part := core.HealthStats{
		ConsecutiveFailures:     []int{0, 2, 0},
		LeafConsecutiveFailures: []int{0, 0, 0, 0},
	}
	for i := 0; i < 3; i++ {
		sup.ObserveHealth(part)
		sup.ObserveLeafHealth(part)
		sup.ObserveRootHealth(true)
	}
	st = sup.Stats()
	if st.Trips != 1 || st.LeafTrips != 1 || st.RootTrips != 1 {
		t.Fatalf("trip separation violated: %v", st)
	}
	for _, want := range []string{"root_trips=1", "leaf_trips=1", "trips=1", "root_promotions=0"} {
		if !strings.Contains(st.String(), want) {
			t.Fatalf("Stats.String() %q missing %q", st.String(), want)
		}
	}
}
