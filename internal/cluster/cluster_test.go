package cluster

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"snoopy/internal/core"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
	"snoopy/internal/telemetry"
)

func TestDetectorTripsAtThresholdOnly(t *testing.T) {
	d := NewDetector(2, Policy{FailAfter: 3})
	var tripped []int
	d.OnTrip(func(part int) { tripped = append(tripped, part) })

	d.Observe(0, false)
	d.Observe(0, false)
	if d.Down(0) || d.Trips() != 0 {
		t.Fatalf("tripped below threshold: down=%v trips=%d", d.Down(0), d.Trips())
	}
	d.Observe(0, false)
	if !d.Down(0) || d.Trips() != 1 || len(tripped) != 1 || tripped[0] != 0 {
		t.Fatalf("no trip at threshold: down=%v trips=%d tripped=%v", d.Down(0), d.Trips(), tripped)
	}
	// Staying down is not a new trip.
	d.Observe(0, false)
	if d.Trips() != 1 {
		t.Fatalf("repeated miss re-tripped: trips=%d", d.Trips())
	}
	// The other partition is independent.
	if d.Down(1) {
		t.Fatal("partition 1 marked down without observations")
	}
	// A success resets the run and recovers.
	d.Observe(0, true)
	if d.Down(0) {
		t.Fatal("success did not recover partition 0")
	}
	// The next outage needs a full fresh run, and trips again.
	d.Observe(0, false)
	d.Observe(0, false)
	if d.Down(0) {
		t.Fatal("stale misses survived recovery")
	}
	d.Observe(0, false)
	if !d.Down(0) || d.Trips() != 2 {
		t.Fatalf("second outage not tripped: trips=%d", d.Trips())
	}
}

func TestDetectorObserveHealth(t *testing.T) {
	d := NewDetector(2, Policy{FailAfter: 2})
	h := core.HealthStats{ConsecutiveFailures: []int{0, 1}}
	d.ObserveHealth(h) // epoch 1: partition 1 failing
	d.ObserveHealth(h) // epoch 2: still failing
	if d.Down(0) || !d.Down(1) {
		t.Fatalf("health feed: down0=%v down1=%v", d.Down(0), d.Down(1))
	}
	d.ObserveHealth(core.HealthStats{ConsecutiveFailures: []int{0, 0}})
	if d.Down(1) {
		t.Fatal("healthy epoch did not recover partition 1")
	}
}

func TestSupervisorProbeLoopTripsAndRecovers(t *testing.T) {
	var dead atomic.Bool
	sup := NewSupervisor(1, nil, Policy{
		FailAfter: 2, ProbeInterval: 5 * time.Millisecond, ProbeTimeout: 5 * time.Millisecond,
	})
	defer sup.Close()
	sup.Watch(0, func(timeout time.Duration) error {
		if dead.Load() {
			return errors.New("probe timeout")
		}
		return nil
	})

	deadline := time.Now().Add(5 * time.Second)
	dead.Store(true)
	for !sup.Down(0) {
		if time.Now().After(deadline) {
			t.Fatal("probe misses never tripped the detector")
		}
		time.Sleep(time.Millisecond)
	}
	if sup.Stats().Trips != 1 {
		t.Fatalf("trips=%d", sup.Stats().Trips)
	}
	dead.Store(false)
	for sup.Down(0) {
		if time.Now().After(deadline) {
			t.Fatal("successful probes never recovered the partition")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSupervisorFailoverAccounting(t *testing.T) {
	healthy := suboram.New(suboram.Config{BlockSize: 32})
	var calls atomic.Int32
	sup := NewSupervisor(1, func(part int, old core.SubORAMClient) (core.SubORAMClient, error) {
		if calls.Add(1) == 1 {
			return nil, errors.New("standby not ready")
		}
		return healthy, nil
	}, Policy{})
	defer sup.Close()

	fo := sup.Failover()
	if _, err := fo(0, nil); err == nil {
		t.Fatal("first attempt should fail")
	}
	if !sup.Down(0) {
		t.Fatal("failover attempt did not declare the partition down")
	}
	st := sup.Stats()
	if st.Trips != 1 || st.PromotionFailures != 1 || st.Promotions != 0 {
		t.Fatalf("after failed attempt: %v", st)
	}
	repl, err := fo(0, nil)
	if err != nil || repl == nil {
		t.Fatalf("second attempt: %v %v", repl, err)
	}
	if sup.Down(0) {
		t.Fatal("promotion did not recover the partition")
	}
	sup.OnFailover()(0, 40*time.Millisecond, nil)
	sup.OnFailover()(0, time.Hour, errors.New("failed attempts do not count")) // ignored
	st = sup.Stats()
	if st.Promotions != 1 || st.Recoveries != 1 || st.MeanTimeToRecovery != 40*time.Millisecond {
		t.Fatalf("after promotion: %v", st)
	}
}

// crashable is a partition wrapper whose failure mode the test flips.
type crashable struct {
	inner core.SubORAMClient
	dead  atomic.Bool
}

func (c *crashable) Init(ids []uint64, data []byte) error { return c.inner.Init(ids, data) }

func (c *crashable) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	if c.dead.Load() {
		return nil, errors.New("partition crashed")
	}
	return c.inner.BatchAccess(reqs)
}

// TestSupervisorDrivesCoreFailover wires a Supervisor into a core.System
// end to end: a crashed partition trips core's consecutive-failure
// threshold, the supervisor's Failover hook promotes the standby, and the
// system converges back to healthy with the outage fully accounted.
func TestSupervisorDrivesCoreFailover(t *testing.T) {
	const blockSize = 32
	crash := &crashable{inner: suboram.New(suboram.Config{BlockSize: blockSize})}
	subs := []core.SubORAMClient{
		suboram.New(suboram.Config{BlockSize: blockSize}),
		crash,
	}
	sup := NewSupervisor(len(subs), func(part int, old core.SubORAMClient) (core.SubORAMClient, error) {
		return old.(*crashable).inner, nil
	}, Policy{FailAfter: 2})
	defer sup.Close()
	reg := telemetry.NewRegistry()
	sup.Instrument(reg)

	sys, err := core.NewWithSubORAMs(core.Config{
		BlockSize: blockSize, NumLoadBalancers: 1, Lambda: 32,
		FailoverAfter: sup.Policy().FailAfter,
		Failover:      sup.Failover(),
		OnFailover:    sup.OnFailover(),
		Telemetry:     reg,
	}, subs)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	const n = 16
	ids := make([]uint64, n)
	data := make([]byte, n*blockSize)
	for i := range ids {
		ids[i] = uint64(i)
		data[i*blockSize] = byte(i + 1)
	}
	if err := sys.Init(ids, data); err != nil {
		t.Fatal(err)
	}

	crash.dead.Store(true)
	deadline := time.Now().Add(15 * time.Second)
	for {
		waits := make([]func() ([]byte, bool, error), n)
		for i := range ids {
			w, err := sys.ReadAsync(ids[i])
			if err != nil {
				t.Fatal(err)
			}
			waits[i] = w
		}
		sys.Flush()
		bad := 0
		for i, w := range waits {
			v, found, err := w()
			if err != nil {
				bad++
			} else if !found || v[0] != byte(i+1) {
				t.Fatalf("key %d: wrong answer v=%v found=%v", i, v, found)
			}
		}
		sup.ObserveHealth(sys.Health())
		if bad == 0 && sys.Health().Healthy() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never converged: health=%+v stats=%v", sys.Health(), sup.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := sup.Stats()
	if st.Trips < 1 || st.Promotions < 1 || st.Recoveries < 1 {
		t.Fatalf("outage not accounted: %v", st)
	}

	// The telemetry mirror must agree exactly with the supervisor's own
	// accounting of this (real, non-zero) outage.
	snap := reg.Snapshot(0)
	if got := snap.Counters["cluster_detector_trips_total"]; got != st.Trips {
		t.Fatalf("telemetry trips %d != supervisor trips %d", got, st.Trips)
	}
	if got := snap.Counters["cluster_promotions_total"]; got != st.Promotions {
		t.Fatalf("telemetry promotions %d != supervisor promotions %d", got, st.Promotions)
	}
	if got := snap.Counters["cluster_promotion_failures_total"]; got != st.PromotionFailures {
		t.Fatalf("telemetry promotion failures %d != supervisor %d", got, st.PromotionFailures)
	}
	for _, h := range snap.Histograms {
		if h.Name == "cluster_time_to_recovery" {
			if h.Count != uint64(st.Recoveries) {
				t.Fatalf("telemetry recorded %d recoveries, supervisor counted %d", h.Count, st.Recoveries)
			}
			if mean := time.Duration(h.SumNS / int64(h.Count)); mean != st.MeanTimeToRecovery {
				t.Fatalf("telemetry mean time-to-recovery %v != supervisor %v", mean, st.MeanTimeToRecovery)
			}
		}
	}
}

// deadLeaf is a leaf balancer whose run-building always fails — the
// leaf-level analogue of crashable.
type deadLeaf struct{}

func (deadLeaf) BuildRun(uint64, *store.Requests, int, uint64, *store.Requests) ([]uint64, error) {
	return nil, errors.New("leaf crashed")
}

// TestSupervisorLeafTripAndRepair closes the failure loop one level up from
// partitions: a dead leaf of the load-balancer aggregation tree fails its
// feed every epoch, the leaf detector trips at the policy threshold, the
// trip hook resets the leaf in place, and the system converges back to
// healthy with the trip accounted in Stats and telemetry.
func TestSupervisorLeafTripAndRepair(t *testing.T) {
	const blockSize = 32
	const leaves = 3
	sup := NewSupervisor(2, nil, Policy{FailAfter: 2})
	defer sup.Close()
	reg := telemetry.NewRegistry()
	sup.Instrument(reg) // before SuperviseLeaves: both orders must work

	sys, err := core.NewLocal(core.Config{
		BlockSize: blockSize, NumSubORAMs: 2, Lambda: 32, LBLeaves: leaves,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	feeds := sys.NumLoadBalancers() * sys.FeedsPerPlane()
	sup.SuperviseLeaves(feeds, func(feed int) {
		sys.ResetLeaf(feed/sys.FeedsPerPlane(), feed%sys.FeedsPerPlane())
	})

	const n = 16
	ids := make([]uint64, n)
	data := make([]byte, n*blockSize)
	for i := range ids {
		ids[i] = uint64(i)
		data[i*blockSize] = byte(i + 1)
	}
	if err := sys.Init(ids, data); err != nil {
		t.Fatal(err)
	}

	const dead = 1
	sys.LoadBalancerTree(0).ReplaceLeaf(dead, deadLeaf{})

	deadline := time.Now().Add(15 * time.Second)
	for {
		waits := make([]func() ([]byte, bool, error), n)
		for i := range ids {
			w, err := sys.ReadAsync(ids[i])
			if err != nil {
				t.Fatal(err)
			}
			waits[i] = w
		}
		sys.Flush()
		bad := 0
		for i, w := range waits {
			v, found, err := w()
			if err != nil {
				bad++
			} else if !found || v[0] != byte(i+1) {
				t.Fatalf("key %d: wrong answer v=%v found=%v", i, v, found)
			}
		}
		sup.ObserveLeafHealth(sys.Health())
		if bad == 0 && sys.Health().Healthy() && sup.Stats().LeafTrips >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never converged: health=%+v stats=%v", sys.Health(), sup.Stats())
		}
	}

	st := sup.Stats()
	if st.LeafTrips < 1 {
		t.Fatalf("leaf outage not accounted: %v", st)
	}
	if st.Trips != 0 {
		t.Fatalf("leaf outage leaked into partition trips: %v", st)
	}
	if sup.LeafDown(dead) {
		t.Fatal("repaired leaf still declared down")
	}
	if got := reg.Snapshot(0).Counters["cluster_leaf_trips_total"]; got != st.LeafTrips {
		t.Fatalf("telemetry leaf trips %d != supervisor %d", got, st.LeafTrips)
	}
}
