package cluster

import (
	"fmt"
	"sync"
	"time"

	"snoopy/internal/core"
	"snoopy/internal/metrics"
)

// RootPromoteFunc promotes a standby root over a dead one: typically it
// opens a fresh core.System on the same Config.JournalDir (which replays
// the dead root's journaled-but-incomplete epochs against the partitions)
// and returns it. The old root is passed for salvage/close; it may be nil
// on a retry after a failed attempt. Returning an error (or nil) counts a
// promotion failure; the supervisor retries every ProbeInterval while the
// root stays down.
type RootPromoteFunc func(old *core.System) (*core.System, error)

// rootPlane is the supervisor's root-failover state, separate from the
// partition and leaf detectors so root trips never bleed into partition
// accounting (and vice versa).
type rootPlane struct {
	det     *Detector
	promote RootPromoteFunc

	mu        sync.Mutex
	cur       *core.System
	promoting bool
	downSince time.Time

	promotions        metrics.Counter
	promotionFailures metrics.Counter
	recovery          metrics.Latencies
}

// SuperviseRoot adds root-failover supervision: the same consecutive-miss
// detector and Policy knobs as partitions, fed by WatchRoot probes and
// ObserveRootHealth, with promote invoked (and retried every
// ProbeInterval) once the root is declared down. initial is the currently
// serving root (may be nil when only probing a remote root).
func (s *Supervisor) SuperviseRoot(initial *core.System, promote RootPromoteFunc) {
	r := &rootPlane{
		det:     NewDetector(1, s.policy),
		promote: promote,
		cur:     initial,
	}
	if s.reg != nil {
		r.det.mu.Lock()
		r.det.telTrips = s.reg.Counter("cluster_root_trips_total")
		r.det.mu.Unlock()
	}
	r.det.OnTrip(func(int) { s.promoteRoot() })
	s.rootMu.Lock()
	s.root = r
	s.rootMu.Unlock()
}

// Root returns the currently serving root system (the promoted standby
// after a failover). Nil until SuperviseRoot.
func (s *Supervisor) Root() *core.System {
	s.rootMu.Lock()
	r := s.root
	s.rootMu.Unlock()
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur
}

// RootDown reports whether the root is currently declared down (and not
// yet re-promoted). False until SuperviseRoot.
func (s *Supervisor) RootDown() bool {
	s.rootMu.Lock()
	r := s.root
	s.rootMu.Unlock()
	return r != nil && r.det.Down(0)
}

// ObserveRootHealth feeds one epoch-level liveness observation for the
// root (ok=false: epochs stopped advancing, or core reported the root
// crashed). No-op until SuperviseRoot.
func (s *Supervisor) ObserveRootHealth(ok bool) {
	s.rootMu.Lock()
	r := s.root
	s.rootMu.Unlock()
	if r != nil {
		r.det.Observe(0, ok)
	}
}

// WatchRoot starts the background heartbeat loop for the root, the analogue
// of Watch for partitions: every ProbeInterval the probe runs under
// ProbeTimeout and feeds the root detector. For an in-process root the
// probe typically checks Crashed(); for a remote one it is an attested
// Ping. The loop reads the current root through the supervisor, so it
// follows promotions. Stops at Close.
func (s *Supervisor) WatchRoot(probe func(sys *core.System, timeout time.Duration) error) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(s.policy.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.ObserveRootHealth(probe(s.Root(), s.policy.ProbeTimeout) == nil)
			}
		}
	}()
}

// promoteRoot runs promotion attempts until a standby is serving or the
// supervisor closes. Exactly one loop runs per outage.
func (s *Supervisor) promoteRoot() {
	s.rootMu.Lock()
	r := s.root
	s.rootMu.Unlock()
	if r == nil || r.promote == nil {
		return
	}
	r.mu.Lock()
	if r.promoting {
		r.mu.Unlock()
		return
	}
	r.promoting = true
	r.downSince = time.Now()
	r.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			r.mu.Lock()
			old := r.cur
			r.mu.Unlock()
			repl, err := r.promote(old)
			if err == nil && repl == nil {
				err = fmt.Errorf("cluster: root promotion returned no system")
			}
			if err == nil {
				r.mu.Lock()
				r.cur = repl
				r.promoting = false
				took := time.Since(r.downSince)
				r.downSince = time.Time{}
				r.mu.Unlock()
				r.promotions.Inc()
				s.telRootPromotions.Inc()
				r.recovery.Add(took)
				s.telRootRecovery.Observe(took)
				r.det.Observe(0, true)
				return
			}
			r.promotionFailures.Inc()
			s.telRootPromFails.Inc()
			select {
			case <-s.stop:
				r.mu.Lock()
				r.promoting = false
				r.mu.Unlock()
				return
			case <-time.After(s.policy.ProbeInterval):
			}
		}
	}()
}

// rootStats folds the root plane into a Stats snapshot.
func (s *Supervisor) rootStats(st *Stats) {
	s.rootMu.Lock()
	r := s.root
	s.rootMu.Unlock()
	if r == nil {
		return
	}
	st.RootTrips = r.det.Trips()
	st.RootPromotions = r.promotions.Load()
	st.RootPromotionFailures = r.promotionFailures.Load()
	st.RootRecoveries = r.recovery.Count()
	st.RootMeanTimeToRecovery = r.recovery.Mean()
	st.RootMaxTimeToRecovery = r.recovery.Max()
}
