package arena

import (
	"sync"
	"testing"

	"snoopy/internal/store"
)

func TestClassRows(t *testing.T) {
	cases := map[int]int{0: 16, 1: 16, 16: 16, 17: 32, 32: 32, 33: 64, 1000: 1024}
	for n, want := range cases {
		if got := classRows(n); got != want {
			t.Errorf("classRows(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestGetRequestsZeroedAndSized(t *testing.T) {
	p := NewPool()
	r := p.GetRequests(10, 8)
	if r.Len() != 10 || r.BlockSize != 8 {
		t.Fatalf("got %d rows block %d", r.Len(), r.BlockSize)
	}
	// Dirty it, release, reacquire: must come back zeroed.
	for i := 0; i < r.Len(); i++ {
		r.Key[i] = 99
		r.Data[i*8] = 7
	}
	p.PutRequests(r)
	r2 := p.GetRequests(10, 8)
	if r2 != r {
		t.Fatal("same-class Get did not reuse the released set")
	}
	for i := 0; i < r2.Len(); i++ {
		if r2.Key[i] != 0 || r2.Data[i*8] != 0 {
			t.Fatal("reacquired set not zeroed")
		}
	}
}

func TestPutForeignSizeDropped(t *testing.T) {
	p := NewPool()
	// A hand-made Requests whose capacity is not a size class is dropped,
	// not retained (and must not panic).
	r := store.NewRequests(10, 8)
	p.PutRequests(r)
	if st := p.Stats(); st.Dropped != 1 {
		t.Fatalf("foreign-sized put not dropped: %+v", st)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	p := NewPool()
	r := p.GetRequests(16, 8)
	p.PutRequests(r)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	p.PutRequests(r)
}

func TestBitsAndBlocksRoundTrip(t *testing.T) {
	p := NewPool()
	b := p.GetBits(20)
	if len(b) != 20 {
		t.Fatalf("bits length %d", len(b))
	}
	b[3] = 1
	p.PutBits(b)
	b2 := p.GetBits(20)
	if b2[3] != 0 {
		t.Fatal("reacquired bits not zeroed")
	}
	blk := p.GetBlock(100)
	if len(blk) != 100 {
		t.Fatalf("block length %d", len(blk))
	}
	blk[0] = 9
	p.PutBlock(blk)
	if blk2 := p.GetBlock(100); blk2[0] != 0 {
		t.Fatal("reacquired block not zeroed")
	}
}

func TestRecorderDetachedOnPut(t *testing.T) {
	p := NewPool()
	r := p.GetRequests(16, 8)
	r.Rec = nil // explicit: Put must clear any recorder
	p.PutRequests(r)
	r2 := p.GetRequests(16, 8)
	if r2.Rec != nil {
		t.Fatal("recorder leaked through the pool")
	}
}

// TestSteadyStateZeroAllocs: a warmed pool serves Get/Put cycles without
// heap allocation.
func TestSteadyStateZeroAllocs(t *testing.T) {
	p := NewPool()
	p.PutRequests(p.GetRequests(100, 16))
	allocs := testing.AllocsPerRun(100, func() {
		r := p.GetRequests(100, 16)
		p.PutRequests(r)
	})
	if allocs != 0 {
		t.Fatalf("warm Get/Put allocated %.1f times per run", allocs)
	}
}

func TestConcurrentUse(t *testing.T) {
	p := NewPool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r := p.GetRequests(64, 8)
				b := p.GetBits(64)
				p.PutBits(b)
				p.PutRequests(r)
			}
		}()
	}
	wg.Wait()
}

func TestMaxPerClassBounded(t *testing.T) {
	p := NewPool()
	var rs []*store.Requests
	for i := 0; i < maxPerClass+10; i++ {
		rs = append(rs, store.NewRequests(minClassRows, 8))
	}
	for _, r := range rs {
		p.PutRequests(r)
	}
	st := p.Stats()
	if st.Dropped != 10 {
		t.Fatalf("expected 10 drops past maxPerClass, got %d", st.Dropped)
	}
}
