// Package arena recycles the data plane's per-epoch working memory. A
// steady-state Snoopy epoch used to allocate its entire working set every
// round — batch scratch in the load balancer, hash-table work arrays and
// tiers in the subORAM, response sets crossing back — so at high epoch
// rates the garbage collector, not the oblivious passes, set the throughput
// ceiling. The arena gives every per-epoch allocation site an explicit
// acquire/release lifecycle over size-classed free lists: after one warm-up
// epoch the hot path performs zero heap allocations (guarded by
// testing.AllocsPerRun tests in loadbalancer, ohash, and suboram).
//
// Lifecycle rules (see ARCHITECTURE.md "Data plane"):
//
//   - Get* returns a zeroed object of exactly the requested size whose
//     backing storage is a size class (record counts round up to a power of
//     two). Put* returns it; releasing is always OPTIONAL — an object that
//     is never released is simply collected by the GC, so APIs that hand
//     pooled objects to callers outside the epoch loop stay safe.
//   - An object must not be released while any alias (View, column slice,
//     Block) is still live, and must not be released twice. Put panics on a
//     detectable double release.
//   - The pool is safe for concurrent use; the pipelined epoch loop
//     releases epoch e's buffers while epoch e+1 acquires.
//
// Obliviousness is unaffected: pooling changes only where backing arrays
// come from, never the sequence of oblivious operations over them, and
// size classes are functions of public quantities (batch sizes, block
// size) only.
package arena

import (
	"fmt"
	"math/bits"
	"sync"

	"snoopy/internal/store"
)

// minClassRows is the smallest record-count size class.
const minClassRows = 16

// maxPerClass bounds the free list of one size class; beyond it, released
// objects are dropped for the GC. It bounds steady-state retention at a few
// epochs' working set per class.
const maxPerClass = 64

// classRows rounds a record count up to its size class.
func classRows(n int) int {
	if n <= minClassRows {
		return minClassRows
	}
	return 1 << bits.Len(uint(n-1))
}

type reqClass struct{ rows, block int }

// Stats counts pool traffic; used by tests and capacity planning.
type Stats struct {
	Hits    uint64 // Get satisfied from a free list
	Misses  uint64 // Get that had to allocate
	Puts    uint64 // objects returned
	Dropped uint64 // returns discarded (full or foreign-sized)
}

// Pool is a set of size-classed free lists for the data plane's working
// objects: record sets, mark-bit vectors, and value blocks.
type Pool struct {
	mu     sync.Mutex
	reqs   map[reqClass][]*store.Requests
	bits   map[int][][]uint8
	blocks map[int][][]byte
	stats  Stats
}

// Default is the process-wide data-plane pool. The load balancer, hash
// table, subORAM, epoch pipeline, and transport all draw from it unless a
// test threads a private pool through their configs.
var Default = NewPool()

// NewPool creates an empty pool.
func NewPool() *Pool {
	return &Pool{
		reqs:   make(map[reqClass][]*store.Requests),
		bits:   make(map[int][][]uint8),
		blocks: make(map[int][][]byte),
	}
}

// GetRequests returns a zeroed record set of exactly n records with the
// given block size, backed by pooled storage when available.
func (p *Pool) GetRequests(n, blockSize int) *store.Requests {
	if n < 0 || blockSize <= 0 {
		panic(fmt.Sprintf("arena: invalid GetRequests dims n=%d block=%d", n, blockSize))
	}
	c := reqClass{rows: classRows(n), block: blockSize}
	var r *store.Requests
	p.mu.Lock()
	if list := p.reqs[c]; len(list) > 0 {
		r = list[len(list)-1]
		list[len(list)-1] = nil
		p.reqs[c] = list[:len(list)-1]
		p.stats.Hits++
	} else {
		p.stats.Misses++
	}
	p.mu.Unlock()
	if r == nil {
		r = store.NewRequests(c.rows, blockSize)
	}
	r.Resize(n)
	r.Reset()
	return r
}

// PutRequests releases a record set back to the pool. Only sets whose
// backing storage is exactly a size class are retained (anything else —
// e.g. a plain NewRequests result — is left to the GC), so Put is safe to
// call on any Requests the caller owns. The set's trace recorder is
// detached. Panics if r is already on a free list.
func (p *Pool) PutRequests(r *store.Requests) {
	if r == nil {
		return
	}
	r.Rec = nil
	rows := r.Cap()
	c := reqClass{rows: rows, block: r.BlockSize}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Puts++
	if rows != classRows(rows) || len(p.reqs[c]) >= maxPerClass {
		p.stats.Dropped++
		return
	}
	for _, f := range p.reqs[c] {
		if f == r {
			panic("arena: PutRequests double release")
		}
	}
	r.Resize(rows)
	p.reqs[c] = append(p.reqs[c], r)
}

// GetBits returns a zeroed mark-bit vector of length n (the keep/overflow
// masks the oblivious compaction passes consume).
func (p *Pool) GetBits(n int) []uint8 {
	if n < 0 {
		panic("arena: negative GetBits length")
	}
	rows := classRows(n)
	var b []uint8
	p.mu.Lock()
	if list := p.bits[rows]; len(list) > 0 {
		b = list[len(list)-1]
		list[len(list)-1] = nil
		p.bits[rows] = list[:len(list)-1]
		p.stats.Hits++
	} else {
		p.stats.Misses++
	}
	p.mu.Unlock()
	if b == nil {
		b = make([]uint8, rows)
	}
	b = b[:n]
	clear(b)
	return b
}

// PutBits releases a mark-bit vector obtained from GetBits.
func (p *Pool) PutBits(b []uint8) {
	if b == nil {
		return
	}
	rows := cap(b)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Puts++
	if rows != classRows(rows) || len(p.bits[rows]) >= maxPerClass {
		p.stats.Dropped++
		return
	}
	p.bits[rows] = append(p.bits[rows], b[:rows])
}

// GetBlock returns a zeroed byte buffer of length n (value-block scratch).
func (p *Pool) GetBlock(n int) []byte {
	if n < 0 {
		panic("arena: negative GetBlock length")
	}
	rows := classRows(n)
	var b []byte
	p.mu.Lock()
	if list := p.blocks[rows]; len(list) > 0 {
		b = list[len(list)-1]
		list[len(list)-1] = nil
		p.blocks[rows] = list[:len(list)-1]
		p.stats.Hits++
	} else {
		p.stats.Misses++
	}
	p.mu.Unlock()
	if b == nil {
		b = make([]byte, rows)
	}
	b = b[:n]
	clear(b)
	return b
}

// PutBlock releases a byte buffer obtained from GetBlock.
func (p *Pool) PutBlock(b []byte) {
	if b == nil {
		return
	}
	rows := cap(b)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Puts++
	if rows != classRows(rows) || len(p.blocks[rows]) >= maxPerClass {
		p.stats.Dropped++
		return
	}
	p.blocks[rows] = append(p.blocks[rows], b[:rows])
}

// Stats returns a snapshot of pool traffic counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
