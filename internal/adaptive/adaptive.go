// Package adaptive implements the future-work feature the paper sketches
// in §1.1: "adaptively switching between solutions that are optimal under
// different workloads". A partition watches its recent batch sizes and
// serves requests from whichever engine wins at that operating point:
//
//   - high throughput → the linear-scan subORAM (internal/suboram), whose
//     single scan amortizes over large batches;
//   - low throughput → the latency-optimized Oblix-style DORAM
//     (internal/oblix), whose polylogarithmic accesses beat a full scan
//     when batches are small.
//
// Switching migrates the partition state through Export/Init — an offline
// step between epochs — with hysteresis so alternating load does not
// thrash. The wrapper implements core.SubORAMClient, so an adaptive
// partition drops in anywhere a plain one does.
package adaptive

import (
	"fmt"
	"sync"

	"snoopy/internal/oblix"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
)

// Engine names.
const (
	EngineScan  = "linear-scan"
	EngineDORAM = "doram"
)

// Config tunes the switching policy.
type Config struct {
	BlockSize int
	// ScanConfig configures the throughput engine (BlockSize overridden).
	ScanConfig suboram.Config
	// SwitchBelow: move to the DORAM when the windowed mean batch size
	// falls below this (default 32).
	SwitchBelow int
	// SwitchAbove: move back to the linear scan when it rises above this
	// (default 4×SwitchBelow; must exceed SwitchBelow for hysteresis).
	SwitchAbove int
	// Window is the number of recent batches averaged (default 8).
	Window int
}

func (c *Config) fill() error {
	if c.BlockSize <= 0 {
		return fmt.Errorf("adaptive: BlockSize must be positive")
	}
	if c.SwitchBelow <= 0 {
		c.SwitchBelow = 32
	}
	if c.SwitchAbove <= 0 {
		c.SwitchAbove = 4 * c.SwitchBelow
	}
	if c.SwitchAbove <= c.SwitchBelow {
		return fmt.Errorf("adaptive: SwitchAbove (%d) must exceed SwitchBelow (%d)",
			c.SwitchAbove, c.SwitchBelow)
	}
	if c.Window <= 0 {
		c.Window = 8
	}
	c.ScanConfig.BlockSize = c.BlockSize
	return nil
}

// exporter is what both engines provide beyond core.SubORAMClient.
type engine interface {
	Init(ids []uint64, data []byte) error
	BatchAccess(reqs *store.Requests) (*store.Requests, error)
	Export() (ids []uint64, data []byte, err error)
}

// SubORAM is the adaptive partition.
type SubORAM struct {
	cfg Config

	mu       sync.Mutex
	active   engine
	name     string
	recent   []int
	switches int
}

// New creates an adaptive partition (starting on the linear-scan engine).
func New(cfg Config) (*SubORAM, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &SubORAM{cfg: cfg, name: EngineScan, active: suboram.New(cfg.ScanConfig)}, nil
}

// Init loads the partition into the active engine.
func (a *SubORAM) Init(ids []uint64, data []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.active.Init(ids, data)
}

// Engine reports the currently active engine (EngineScan or EngineDORAM).
func (a *SubORAM) Engine() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.name
}

// Switches reports how many engine migrations have happened.
func (a *SubORAM) Switches() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.switches
}

// BatchAccess serves the batch from the active engine, then updates the
// policy window and migrates if the workload has moved into the other
// engine's regime.
func (a *SubORAM) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	out, err := a.active.BatchAccess(reqs)
	if err != nil {
		return nil, err
	}
	a.recent = append(a.recent, reqs.Len())
	if len(a.recent) > a.cfg.Window {
		a.recent = a.recent[len(a.recent)-a.cfg.Window:]
	}
	if len(a.recent) == a.cfg.Window {
		if err := a.maybeSwitch(); err != nil {
			// The served batch is already correct; a failed migration
			// leaves the current engine in place.
			return out, nil
		}
	}
	return out, nil
}

func (a *SubORAM) maybeSwitch() error {
	sum := 0
	for _, n := range a.recent {
		sum += n
	}
	mean := sum / len(a.recent)
	var target string
	switch {
	case a.name == EngineScan && mean < a.cfg.SwitchBelow:
		target = EngineDORAM
	case a.name == EngineDORAM && mean > a.cfg.SwitchAbove:
		target = EngineScan
	default:
		return nil
	}
	ids, data, err := a.active.Export()
	if err != nil {
		return err
	}
	var next engine
	if target == EngineDORAM {
		next = oblix.NewSubORAM(a.cfg.BlockSize)
	} else {
		next = suboram.New(a.cfg.ScanConfig)
	}
	if err := next.Init(ids, data); err != nil {
		return err
	}
	a.active = next
	a.name = target
	a.switches++
	a.recent = a.recent[:0] // restart the window after a migration
	return nil
}
