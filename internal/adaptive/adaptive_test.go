package adaptive

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"snoopy/internal/core"
	"snoopy/internal/store"
)

const testBlock = 16

func newAdaptive(t *testing.T, n int) *SubORAM {
	t.Helper()
	a, err := New(Config{BlockSize: testBlock, SwitchBelow: 8, SwitchAbove: 32, Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, n)
	data := make([]byte, n*testBlock)
	for i := 0; i < n; i++ {
		ids[i] = uint64(i)
		copy(data[i*testBlock:], fmt.Sprintf("v%d", i))
	}
	if err := a.Init(ids, data); err != nil {
		t.Fatal(err)
	}
	return a
}

func runBatch(t *testing.T, a *SubORAM, size, base int) *store.Requests {
	t.Helper()
	reqs := store.NewRequests(size, testBlock)
	for i := 0; i < size; i++ {
		reqs.SetRow(i, store.OpRead, uint64((base+i*7)%200), 0, uint64(i), uint64(i), nil)
	}
	dedupKeys(reqs)
	out, err := a.BatchAccess(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func dedupKeys(reqs *store.Requests) {
	seen := map[uint64]bool{}
	next := uint64(10_000)
	for i := 0; i < reqs.Len(); i++ {
		for seen[reqs.Key[i]] {
			reqs.Key[i] = next
			next++
		}
		seen[reqs.Key[i]] = true
	}
}

func TestStartsOnScanEngine(t *testing.T) {
	a := newAdaptive(t, 100)
	if a.Engine() != EngineScan {
		t.Fatalf("expected scan engine, got %s", a.Engine())
	}
	out := runBatch(t, a, 40, 0)
	if !bytes.HasPrefix(out.Block(0), []byte("v")) {
		t.Fatal("read through adaptive wrapper broken")
	}
}

func TestSwitchesToDORAMUnderLowLoad(t *testing.T) {
	a := newAdaptive(t, 100)
	for i := 0; i < 4; i++ {
		runBatch(t, a, 2, i)
	}
	if a.Engine() != EngineDORAM {
		t.Fatalf("small batches should move to the DORAM, still on %s", a.Engine())
	}
	if a.Switches() != 1 {
		t.Fatalf("expected 1 switch, got %d", a.Switches())
	}
}

func TestSwitchesBackUnderHighLoad(t *testing.T) {
	a := newAdaptive(t, 100)
	for i := 0; i < 4; i++ {
		runBatch(t, a, 2, i) // → DORAM
	}
	for i := 0; i < 4; i++ {
		runBatch(t, a, 64, i) // → back to scan
	}
	if a.Engine() != EngineScan {
		t.Fatalf("large batches should return to the scan engine, on %s", a.Engine())
	}
	if a.Switches() != 2 {
		t.Fatalf("expected 2 switches, got %d", a.Switches())
	}
}

func TestHysteresisPreventsFlapping(t *testing.T) {
	a := newAdaptive(t, 100)
	// Batch sizes between the thresholds must never trigger a switch.
	for i := 0; i < 12; i++ {
		runBatch(t, a, 16, i) // 8 < 16 < 32
	}
	if a.Switches() != 0 {
		t.Fatalf("mid-band load caused %d switches", a.Switches())
	}
}

func TestStateSurvivesMigrations(t *testing.T) {
	a := newAdaptive(t, 60)
	// Write on the scan engine.
	w := store.NewRequests(40, testBlock)
	for i := 0; i < 40; i++ {
		w.SetRow(i, store.OpWrite, uint64(i), 0, uint64(i), uint64(i), []byte(fmt.Sprintf("W%d", i)))
	}
	if _, err := a.BatchAccess(w); err != nil {
		t.Fatal(err)
	}
	// Drive it to the DORAM, then write more.
	for i := 0; i < 4; i++ {
		runBatch(t, a, 2, i)
	}
	if a.Engine() != EngineDORAM {
		t.Fatal("setup failed")
	}
	w2 := store.NewRequests(1, testBlock)
	w2.SetRow(0, store.OpWrite, 5, 0, 0, 0, []byte("ORAM5"))
	if _, err := a.BatchAccess(w2); err != nil {
		t.Fatal(err)
	}
	// Back to the scan engine; all writes must have survived both hops.
	for i := 0; i < 4; i++ {
		runBatch(t, a, 64, i)
	}
	if a.Engine() != EngineScan {
		t.Fatal("setup failed (return)")
	}
	check := store.NewRequests(3, testBlock)
	check.SetRow(0, store.OpRead, 5, 0, 0, 0, nil)
	check.SetRow(1, store.OpRead, 7, 0, 1, 1, nil)
	check.SetRow(2, store.OpRead, 55, 0, 2, 2, nil)
	out, err := a.BatchAccess(check)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]string{5: "ORAM5", 7: "W7", 55: "v55"}
	for i := 0; i < out.Len(); i++ {
		if !bytes.HasPrefix(out.Block(i), []byte(want[out.Key[i]])) {
			t.Fatalf("key %d: got %q want prefix %q", out.Key[i], out.Block(i), want[out.Key[i]])
		}
	}
}

func TestAdaptiveInFullSystem(t *testing.T) {
	a, err := New(Config{BlockSize: 160})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewWithSubORAMs(core.Config{
		BlockSize: 160, Lambda: 32, EpochDuration: 2 * time.Millisecond,
	}, []core.SubORAMClient{a})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ids := []uint64{1, 2, 3}
	if err := sys.Init(ids, make([]byte, 3*160)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Write(2, []byte("adaptive")); err != nil {
		t.Fatal(err)
	}
	v, found, err := sys.Read(2)
	if err != nil || !found || !bytes.HasPrefix(v, []byte("adaptive")) {
		t.Fatalf("adaptive system read: %q %v %v", v, found, err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero BlockSize accepted")
	}
	if _, err := New(Config{BlockSize: 8, SwitchBelow: 50, SwitchAbove: 40}); err == nil {
		t.Fatal("inverted hysteresis band accepted")
	}
}
