// Regression tests for the end-to-end request path (load balancer →
// subORAMs → response matching), single- and multi-epoch. The multi-epoch
// variant originally exposed the Lambert-W batch-sizing bug recorded in
// EXPERIMENTS.md: undersized batches silently dropped requests.
package loadbalancer

import (
	"math/rand"
	"testing"

	"snoopy/internal/crypt"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
)

// TestEndToEndMultiEpochAllAnswered drives many sequential epochs with mixed
// read/write Zipf traffic through 2 LBs sharing 3 subORAMs — the core
// system's data path without any concurrency — hunting a rare lost
// response.
func TestEndToEndMultiEpochAllAnswered(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const S = 3
		const L = 2
		const objects = 4096
		key := crypt.MustNewKey()
		lbs := make([]*LoadBalancer, L)
		for i := range lbs {
			lbs[i] = New(Config{BlockSize: 32, NumSubORAMs: S, Lambda: 64}, key)
		}
		subs := make([]*suboram.SubORAM, S)
		ids := make([]uint64, objects)
		data := make([]byte, objects*32)
		for i := range ids {
			ids[i] = uint64(i)
		}
		pids, pdata, _ := lbs[0].Partition(ids, data)
		for s := 0; s < S; s++ {
			subs[s] = suboram.New(suboram.Config{BlockSize: 32})
			if err := subs[s].Init(pids[s], pdata[s]); err != nil {
				t.Fatal(err)
			}
		}
		zipf := rand.NewZipf(rng, 1.2, 1, objects-1)
		for epoch := 0; epoch < 40; epoch++ {
			type lbEp struct {
				reqs *store.Requests
				b    *Batches
			}
			eps := make([]lbEp, L)
			for i := 0; i < L; i++ {
				n := 20 + rng.Intn(300)
				reqs := store.NewRequests(n, 32)
				for j := 0; j < n; j++ {
					op := store.OpRead
					if rng.Intn(3) == 0 {
						op = store.OpWrite
					}
					reqs.SetRow(j, op, zipf.Uint64(), 0, uint64(j), uint64(j), []byte{'w', byte(epoch)})
				}
				b, err := lbs[i].MakeBatches(reqs)
				if err != nil {
					t.Fatal(err)
				}
				if b.Dropped != 0 {
					t.Fatalf("seed %d epoch %d: dropped %d", seed, epoch, b.Dropped)
				}
				eps[i] = lbEp{reqs, b}
			}
			// SubORAMs process LB batches in order.
			resp := make([][]*store.Requests, L)
			for i := range resp {
				resp[i] = make([]*store.Requests, S)
			}
			for s := 0; s < S; s++ {
				for i := 0; i < L; i++ {
					out, err := subs[s].BatchAccess(eps[i].b.For(s))
					if err != nil {
						t.Fatal(err)
					}
					resp[i][s] = out
				}
			}
			for i := 0; i < L; i++ {
				all := resp[i][0]
				for s := 1; s < S; s++ {
					all = store.Concat(all, resp[i][s])
				}
				matched, err := lbs[i].MatchResponses(all, eps[i].reqs)
				if err != nil {
					t.Fatal(err)
				}
				for j := 0; j < matched.Len(); j++ {
					if matched.Aux[j] != 1 {
						t.Fatalf("seed %d epoch %d lb %d: key %d (op %d, client %d) missed",
							seed, epoch, i, matched.Key[j], matched.Op[j], matched.Client[j])
					}
				}
			}
		}
	}
}
