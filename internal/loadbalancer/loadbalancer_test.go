package loadbalancer

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"snoopy/internal/crypt"
	"snoopy/internal/store"
)

const testBlock = 24

func newLB(t *testing.T, s int) *LoadBalancer {
	t.Helper()
	return New(Config{BlockSize: testBlock, NumSubORAMs: s, Lambda: 32}, crypt.MustNewKey())
}

func reqsOf(t *testing.T, rows []struct {
	op   uint8
	key  uint64
	data string
}) *store.Requests {
	t.Helper()
	r := store.NewRequests(len(rows), testBlock)
	for i, row := range rows {
		r.SetRow(i, row.op, row.key, 0, uint64(i+1), uint64(100+i), []byte(row.data))
	}
	return r
}

func TestMakeBatchesShapeAndRouting(t *testing.T) {
	lb := newLB(t, 4)
	rng := rand.New(rand.NewSource(40))
	n := 300
	reqs := store.NewRequests(n, testBlock)
	for i := 0; i < n; i++ {
		reqs.SetRow(i, store.OpRead, uint64(rng.Intn(10000)), 0, uint64(i), uint64(i), nil)
	}
	b, err := lb.MakeBatches(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if b.Dropped != 0 {
		t.Fatalf("dropped %d requests", b.Dropped)
	}
	if b.All.Len() != 4*b.PerSub {
		t.Fatalf("batch layout wrong: %d rows for PerSub %d", b.All.Len(), b.PerSub)
	}
	if b.PerSub >= n {
		t.Fatalf("batch size %d not below R=%d in high-throughput regime", b.PerSub, n)
	}
	seen := map[uint64]bool{}
	for s := 0; s < 4; s++ {
		part := b.For(s)
		if part.Len() != b.PerSub {
			t.Fatalf("subORAM %d batch size %d", s, part.Len())
		}
		for i := 0; i < part.Len(); i++ {
			key := part.Key[i]
			if seen[key] {
				t.Fatalf("key %#x appears in two batches", key)
			}
			seen[key] = true
			if store.IsDummyKey(key) {
				continue
			}
			if lb.SubORAMFor(key) != s {
				t.Fatalf("key %d routed to subORAM %d, hash says %d", key, s, lb.SubORAMFor(key))
			}
		}
	}
	// Every distinct real key must appear in exactly one batch.
	want := map[uint64]bool{}
	for i := 0; i < n; i++ {
		want[reqs.Key[i]] = true
	}
	for key := range want {
		if !seen[key] {
			t.Fatalf("request key %d missing from batches", key)
		}
	}
}

func TestMakeBatchesDeduplicatesLastWriteWins(t *testing.T) {
	lb := newLB(t, 2)
	reqs := reqsOf(t, []struct {
		op   uint8
		key  uint64
		data string
	}{
		{store.OpRead, 7, ""},
		{store.OpWrite, 7, "first"},
		{store.OpWrite, 7, "second"},
		{store.OpRead, 7, ""},
		{store.OpWrite, 9, "nine"},
	})
	b, err := lb.MakeBatches(reqs)
	if err != nil {
		t.Fatal(err)
	}
	var got7, got9 int
	for i := 0; i < b.All.Len(); i++ {
		switch b.All.Key[i] {
		case 7:
			got7++
			if b.All.Op[i] != store.OpWrite || !bytes.HasPrefix(b.All.Block(i), []byte("second")) {
				t.Fatalf("key 7 representative wrong: op=%d data=%q", b.All.Op[i], b.All.Block(i))
			}
		case 9:
			got9++
		}
	}
	if got7 != 1 || got9 != 1 {
		t.Fatalf("dedup failed: key7×%d key9×%d", got7, got9)
	}
}

func TestMakeBatchesSkewedWorkload(t *testing.T) {
	// Every request for the same object: dedup collapses them to one, so
	// nothing is dropped regardless of skew (paper §4.1).
	lb := newLB(t, 8)
	n := 500
	reqs := store.NewRequests(n, testBlock)
	for i := 0; i < n; i++ {
		reqs.SetRow(i, store.OpRead, 42, 0, uint64(i), uint64(i), nil)
	}
	b, err := lb.MakeBatches(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if b.Dropped != 0 {
		t.Fatalf("skewed workload dropped %d", b.Dropped)
	}
	count := 0
	for i := 0; i < b.All.Len(); i++ {
		if b.All.Key[i] == 42 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("key 42 appears %d times", count)
	}
}

func TestMakeBatchesEmptyEpoch(t *testing.T) {
	lb := newLB(t, 3)
	b, err := lb.MakeBatches(store.NewRequests(0, testBlock))
	if err != nil {
		t.Fatal(err)
	}
	if b.PerSub != 1 || b.All.Len() != 3 {
		t.Fatalf("idle epoch should send one dummy per subORAM, got %d×%d", b.PerSub, 3)
	}
	for i := 0; i < b.All.Len(); i++ {
		if !store.IsDummyKey(b.All.Key[i]) {
			t.Fatal("idle epoch batch contains a real key")
		}
	}
}

// TestMatchResponses simulates the subORAM side trivially: every batch row
// gets a response with recognizable data.
func TestMatchResponses(t *testing.T) {
	lb := newLB(t, 2)
	reqs := reqsOf(t, []struct {
		op   uint8
		key  uint64
		data string
	}{
		{store.OpRead, 5, ""},
		{store.OpRead, 6, ""},
		{store.OpRead, 5, ""}, // duplicate
		{store.OpWrite, 8, "payload"},
	})
	b, err := lb.MakeBatches(reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Fake subORAM processing: answer each non-dummy row with "v<key>".
	resp := b.All.Clone()
	for i := 0; i < resp.Len(); i++ {
		if !store.IsDummyKey(resp.Key[i]) {
			blk := resp.Block(i)
			for k := range blk {
				blk[k] = 0
			}
			copy(blk, []byte(fmt.Sprintf("v%d", resp.Key[i])))
			resp.Aux[i] = 1
		}
	}
	out, err := lb.MatchResponses(resp, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != reqs.Len() {
		t.Fatalf("got %d rows, want %d", out.Len(), reqs.Len())
	}
	byClient := map[uint64]*struct {
		key  uint64
		data string
		aux  uint8
	}{}
	for i := 0; i < out.Len(); i++ {
		byClient[out.Client[i]] = &struct {
			key  uint64
			data string
			aux  uint8
		}{out.Key[i], string(bytes.TrimRight(out.Block(i), "\x00")), out.Aux[i]}
	}
	for i := 0; i < reqs.Len(); i++ {
		got, ok := byClient[reqs.Client[i]]
		if !ok {
			t.Fatalf("no response for client cookie %d", reqs.Client[i])
		}
		if got.key != reqs.Key[i] {
			t.Fatalf("client %d: key %d, want %d", reqs.Client[i], got.key, reqs.Key[i])
		}
		want := fmt.Sprintf("v%d", reqs.Key[i])
		if got.data != want {
			t.Fatalf("client %d: data %q, want %q", reqs.Client[i], got.data, want)
		}
		if got.aux != 1 {
			t.Fatalf("client %d: found bit missing", reqs.Client[i])
		}
	}
}

func TestPartition(t *testing.T) {
	lb := newLB(t, 4)
	n := 200
	ids := make([]uint64, n)
	data := make([]byte, n*testBlock)
	for i := range ids {
		ids[i] = uint64(i)
		data[i*testBlock] = byte(i)
	}
	pids, pdata, err := lb.Partition(ids, data)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for s := range pids {
		total += len(pids[s])
		if len(pdata[s]) != len(pids[s])*testBlock {
			t.Fatalf("partition %d data length mismatch", s)
		}
		for i, id := range pids[s] {
			if lb.SubORAMFor(id) != s {
				t.Fatalf("id %d in wrong partition %d", id, s)
			}
			if pdata[s][i*testBlock] != byte(id) {
				t.Fatalf("id %d data mangled", id)
			}
		}
	}
	if total != n {
		t.Fatalf("partitions hold %d objects, want %d", total, n)
	}
}

func TestSharedKeyGivesSameRouting(t *testing.T) {
	key := crypt.MustNewKey()
	lb1 := New(Config{BlockSize: 8, NumSubORAMs: 5}, key)
	lb2 := New(Config{BlockSize: 8, NumSubORAMs: 5}, key)
	for id := uint64(0); id < 1000; id++ {
		if lb1.SubORAMFor(id) != lb2.SubORAMFor(id) {
			t.Fatal("load balancers with the same key disagree on routing")
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	lb := newLB(t, 2)
	reqs := store.NewRequests(10, testBlock)
	for i := 0; i < 10; i++ {
		reqs.SetRow(i, store.OpRead, uint64(i), 0, uint64(i), uint64(i), nil)
	}
	b, _ := lb.MakeBatches(reqs)
	if _, err := lb.MatchResponses(b.All, reqs); err != nil {
		t.Fatal(err)
	}
	st := lb.LastStats()
	if st.MakeBatch <= 0 || st.Match <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestPartitionObliviousMatchesPlain(t *testing.T) {
	lb := newLB(t, 5)
	n := 300
	ids := make([]uint64, n)
	data := make([]byte, n*testBlock)
	for i := range ids {
		ids[i] = uint64(i * 7)
		data[i*testBlock] = byte(i)
	}
	p1, d1, err := lb.Partition(ids, data)
	if err != nil {
		t.Fatal(err)
	}
	p2, d2, err := lb.PartitionOblivious(ids, data)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		if len(p1[s]) != len(p2[s]) {
			t.Fatalf("partition %d size differs: %d vs %d", s, len(p1[s]), len(p2[s]))
		}
		// Same membership and per-object data, order may differ.
		want := map[uint64]byte{}
		for i, id := range p1[s] {
			want[id] = d1[s][i*testBlock]
		}
		for i, id := range p2[s] {
			b, ok := want[id]
			if !ok {
				t.Fatalf("partition %d: unexpected id %d", s, id)
			}
			if d2[s][i*testBlock] != b {
				t.Fatalf("partition %d id %d: data mismatch", s, id)
			}
		}
	}
}
