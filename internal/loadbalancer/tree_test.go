// Tests for the two-level aggregation tree: equivalence with the monolithic
// balancer, Theorem-3 bound preservation, overflow-victim attribution,
// failed-leaf isolation, zero-allocation guards at leaf and root, and the
// monolithic-vs-tree benchmark behind scripts/bench.sh -lbtree.
package loadbalancer

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"snoopy/internal/arena"
	"snoopy/internal/batch"
	"snoopy/internal/crypt"
	"snoopy/internal/obliv"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
	"snoopy/internal/telemetry"
)

func newTestTree(t testing.TB, key crypt.Key, s, leaves int) *Tree {
	t.Helper()
	tr, err := NewTree(TreeConfig{
		Config: Config{BlockSize: testBlock, NumSubORAMs: s, Lambda: 32},
		Leaves: leaves,
	}, key)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// splitFeeds deals the rows of all round-robin into nf per-feed request sets
// with local arrival sequence numbers, the way core's per-feed queues would.
// The concatenation order matches all's order per feed, so prefix-sum seq
// bases reproduce all's global last-write-wins order... except that feeds
// are contiguous slices here: feed f gets rows [f*n/nf, (f+1)*n/nf).
func splitFeeds(all *store.Requests, nf int) []*store.Requests {
	n := all.Len()
	feeds := make([]*store.Requests, nf)
	lo := 0
	for f := 0; f < nf; f++ {
		hi := (f + 1) * n / nf
		feeds[f] = store.NewRequests(hi-lo, all.BlockSize)
		for i := lo; i < hi; i++ {
			feeds[f].SetRow(i-lo, all.Op[i], all.Key[i], 0, uint64(i-lo), all.Client[i], all.Block(i))
		}
		lo = hi
	}
	return feeds
}

// TestTreeMatchesMonolithicBatches: for the same aggregate request set, the
// tree's merged+deduped batches are row-for-row identical to the monolithic
// balancer's — same α, same surviving keys, same last-write-wins
// representatives. The tree changes how the batch set is computed, not what
// it is.
func TestTreeMatchesMonolithicBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for _, tc := range []struct{ s, leaves, n int }{
		{2, 2, 150}, {4, 3, 400}, {3, 4, 257}, {4, 8, 512}, {5, 1, 99},
	} {
		key := crypt.MustNewKey()
		mono := New(Config{BlockSize: testBlock, NumSubORAMs: tc.s, Lambda: 32}, key)
		tree := newTestTree(t, key, tc.s, tc.leaves)

		all := store.NewRequests(tc.n, testBlock)
		for i := 0; i < tc.n; i++ {
			op := store.OpRead
			var data []byte
			if rng.Intn(3) == 0 {
				op = store.OpWrite
				data = []byte(fmt.Sprintf("w%d", i))
			}
			// Dense key space: duplicates within and across feeds.
			all.SetRow(i, op, uint64(rng.Intn(tc.n/2+1)), 0, uint64(i), uint64(i), data)
		}
		bm, err := mono.MakeBatches(all)
		if err != nil {
			t.Fatal(err)
		}
		bt, feedErrs, err := tree.MakeBatches(1, splitFeeds(all, tc.leaves))
		if err != nil {
			t.Fatal(err)
		}
		if feedErrs != nil {
			t.Fatalf("s=%d L=%d: unexpected feed errors %v", tc.s, tc.leaves, feedErrs)
		}
		if bt.PerSub != bm.PerSub {
			t.Fatalf("s=%d L=%d: tree α=%d, monolithic α=%d", tc.s, tc.leaves, bt.PerSub, bm.PerSub)
		}
		if bt.Dropped != 0 || bm.Dropped != 0 {
			t.Fatalf("s=%d L=%d: unexpected drops %d/%d", tc.s, tc.leaves, bt.Dropped, bm.Dropped)
		}
		for i := 0; i < bm.All.Len(); i++ {
			if bt.All.Key[i] != bm.All.Key[i] || bt.All.Op[i] != bm.All.Op[i] || bt.All.Sub[i] != bm.All.Sub[i] {
				t.Fatalf("s=%d L=%d row %d: tree (key=%#x op=%d sub=%d) vs monolithic (key=%#x op=%d sub=%d)",
					tc.s, tc.leaves, i, bt.All.Key[i], bt.All.Op[i], bt.All.Sub[i], bm.All.Key[i], bm.All.Op[i], bm.All.Sub[i])
			}
			if !bytes.Equal(bt.All.Block(i), bm.All.Block(i)) {
				t.Fatalf("s=%d L=%d row %d key %#x: write representative differs", tc.s, tc.leaves, i, bt.All.Key[i])
			}
		}
		bm.Release()
		bt.Release()
	}
}

// TestTreeEndToEndAllAnswered drives multi-epoch Zipf traffic through a tree
// plane and real subORAMs: every request from every feed gets its response,
// and a cross-feed write is visible to a read in the next epoch (global
// last-write-wins across leaves).
func TestTreeEndToEndAllAnswered(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	const S, L, objects = 3, 4, 2048
	key := crypt.MustNewKey()
	tree := newTestTree(t, key, S, L)

	subs := make([]*suboram.SubORAM, S)
	ids := make([]uint64, objects)
	data := make([]byte, objects*testBlock)
	for i := range ids {
		ids[i] = uint64(i)
	}
	pids, pdata, err := tree.Partition(ids, data)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < S; s++ {
		subs[s] = suboram.New(suboram.Config{BlockSize: testBlock})
		if err := subs[s].Init(pids[s], pdata[s]); err != nil {
			t.Fatal(err)
		}
	}
	zipf := rand.NewZipf(rng, 1.2, 1, objects-1)
	// last[key] = data of the globally latest write, tracked across feeds.
	last := map[uint64][]byte{}
	for epoch := uint64(0); epoch < 20; epoch++ {
		feeds := make([]*store.Requests, L)
		for f := 0; f < L; f++ {
			n := 10 + rng.Intn(120)
			feeds[f] = store.NewRequests(n, testBlock)
			for j := 0; j < n; j++ {
				op := store.OpRead
				var d []byte
				k := zipf.Uint64()
				if rng.Intn(3) == 0 {
					op = store.OpWrite
					d = []byte(fmt.Sprintf("e%d f%d j%d", epoch, f, j))
				}
				feeds[f].SetRow(j, op, k, 0, uint64(j), uint64(f)<<32|uint64(j), d)
			}
		}
		// The globally latest write per key this epoch, in feed-major order
		// (feed f's local seq j maps to global seq base_f + j, and bases are
		// feed-major prefix sums — so a later feed's write beats an earlier
		// feed's at any local position).
		for f := 0; f < L; f++ {
			for j := 0; j < feeds[f].Len(); j++ {
				if feeds[f].Op[j] == store.OpWrite {
					last[feeds[f].Key[j]] = append([]byte(nil), feeds[f].Block(j)...)
				}
			}
		}
		b, feedErrs, err := tree.MakeBatches(epoch, feeds)
		if err != nil {
			t.Fatal(err)
		}
		if feedErrs != nil || b.Dropped != 0 {
			t.Fatalf("epoch %d: feedErrs=%v dropped=%d", epoch, feedErrs, b.Dropped)
		}
		var all *store.Requests
		for s := 0; s < S; s++ {
			out, err := subs[s].BatchAccess(b.For(s))
			if err != nil {
				t.Fatal(err)
			}
			if all == nil {
				all = out
			} else {
				all = store.Concat(all, out)
			}
		}
		b.Release()
		for f := 0; f < L; f++ {
			matched, err := tree.MatchResponses(epoch, all, f, feeds[f])
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < matched.Len(); j++ {
				if matched.Aux[j] != 1 {
					t.Fatalf("epoch %d feed %d: key %d (client %#x) unanswered",
						epoch, f, matched.Key[j], matched.Client[j])
				}
			}
		}
	}
	// Read everything that was ever written back and check the global
	// last-write-wins value survived the tree's merge ordering.
	probe := store.NewRequests(len(last), testBlock)
	i := 0
	keys := make([]uint64, 0, len(last))
	for k := range last {
		probe.SetRow(i, store.OpRead, k, 0, uint64(i), uint64(i), nil)
		keys = append(keys, k)
		i++
	}
	feeds := make([]*store.Requests, L)
	feeds[0] = probe
	for f := 1; f < L; f++ {
		feeds[f] = store.NewRequests(0, testBlock)
	}
	b, _, err := tree.MakeBatches(99, feeds)
	if err != nil {
		t.Fatal(err)
	}
	var all *store.Requests
	for s := 0; s < S; s++ {
		out, err := subs[s].BatchAccess(b.For(s))
		if err != nil {
			t.Fatal(err)
		}
		if all == nil {
			all = out
		} else {
			all = store.Concat(all, out)
		}
	}
	b.Release()
	matched, err := tree.MatchResponses(99, all, 0, probe)
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64][]byte{}
	for j := 0; j < matched.Len(); j++ {
		got[matched.Key[j]] = matched.Block(j)
	}
	for _, k := range keys {
		want := last[k]
		if !bytes.HasPrefix(got[k], want) {
			t.Fatalf("key %d: read %q, want last-write %q", k, got[k], want)
		}
	}
}

// TestTreeTheorem3Bound: across sampled (R, S, leaves/fan-in, λ), the tree's
// batch size is exactly the monolithic Theorem-3 bound f(R,S) for the
// aggregate rate — splitting ingestion across leaves must not change the
// overflow guarantee — and an actual epoch at rate R produces batches of
// exactly that size.
func TestTreeTheorem3Bound(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for _, tc := range []struct{ r, s, leaves, lambda int }{
		{128, 2, 2, 32}, {1024, 4, 4, 64}, {4096, 8, 8, 128},
		{777, 3, 5, 80}, {300, 4, 1, 128}, {2048, 16, 2, 64},
	} {
		key := crypt.MustNewKey()
		tree, err := NewTree(TreeConfig{
			Config: Config{BlockSize: testBlock, NumSubORAMs: tc.s, Lambda: tc.lambda},
			Leaves: tc.leaves, FanIn: tc.leaves,
		}, key)
		if err != nil {
			t.Fatal(err)
		}
		want := batch.Size(tc.r, tc.s, tc.lambda)
		if got := tree.BatchSize(tc.r); got != want {
			t.Fatalf("R=%d S=%d L=%d λ=%d: tree bound %d, Theorem 3 says %d",
				tc.r, tc.s, tc.leaves, tc.lambda, got, want)
		}
		all := store.NewRequests(tc.r, testBlock)
		for i := 0; i < tc.r; i++ {
			all.SetRow(i, store.OpRead, rng.Uint64()%uint64(4*tc.r), 0, uint64(i), uint64(i), nil)
		}
		b, feedErrs, err := tree.MakeBatches(0, splitFeeds(all, tc.leaves))
		if err != nil {
			t.Fatal(err)
		}
		if feedErrs != nil {
			t.Fatal(feedErrs)
		}
		if b.PerSub != want || b.All.Len() != want*tc.s {
			t.Fatalf("R=%d S=%d L=%d: epoch batches %d×%d, want α=%d",
				tc.r, tc.s, tc.leaves, b.PerSub, tc.s, want)
		}
		b.Release()
	}
}

// keysInto returns the set of keys routed to a single subORAM — enough
// distinct keys concentrated on one partition to force a Theorem-3 overflow.
func keysInto(tr *Tree, sub, n int) []uint64 {
	keys := make([]uint64, 0, n)
	for k := uint64(1); len(keys) < n; k++ {
		if tr.SubORAMFor(k) == sub {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestTreeOverflowRootVictims: when the aggregate distinct-key load on one
// subORAM exceeds α, the surplus is dropped at the root and reported as
// global victims (DroppedKeys), with no leaf-local drops — each leaf
// individually fit within its own bound α_f.
func TestTreeOverflowRootVictims(t *testing.T) {
	const S, L = 4, 8
	const perLeaf = 32 // Size(32, 4, 32) == 32: a leaf holds 32 distinct keys in one subORAM without overflowing
	const n = perLeaf * L
	key := crypt.MustNewKey()
	tree := newTestTree(t, key, S, L)
	if af := batch.Size(perLeaf, S, 32); af < perLeaf {
		t.Fatalf("per-leaf bound α_f=%d < %d: leaves would drop locally", af, perLeaf)
	}
	alpha := tree.BatchSize(n)
	if alpha >= n {
		t.Fatalf("test needs the high-throughput regime, α=%d ≥ R=%d", alpha, n)
	}
	keys := keysInto(tree, 0, n)
	all := store.NewRequests(n, testBlock)
	for i := 0; i < n; i++ {
		all.SetRow(i, store.OpRead, keys[i], 0, uint64(i), uint64(i), nil)
	}
	b, feedErrs, err := tree.MakeBatches(0, splitFeeds(all, L))
	if err != nil {
		t.Fatal(err)
	}
	if feedErrs != nil {
		t.Fatalf("leaf-level errors on a root-level overflow: %v", feedErrs)
	}
	if b.DroppedByFeed != nil {
		t.Fatalf("leaf-local drops %v; each leaf's %d keys fit in α_f", b.DroppedByFeed, perLeaf)
	}
	if b.Dropped != n-alpha || len(b.DroppedKeys) != n-alpha {
		t.Fatalf("dropped %d (keys %d), want %d = R−α", b.Dropped, len(b.DroppedKeys), n-alpha)
	}
	// Every key is either in the batches or a victim — never both, never
	// neither.
	served := map[uint64]bool{}
	for i := 0; i < b.All.Len(); i++ {
		if !store.IsDummyKey(b.All.Key[i]) {
			served[b.All.Key[i]] = true
		}
	}
	victims := map[uint64]bool{}
	for _, k := range b.DroppedKeys {
		victims[k] = true
	}
	for _, k := range keys {
		if served[k] == victims[k] {
			t.Fatalf("key %d: served=%v victim=%v", k, served[k], victims[k])
		}
	}
	b.Release()
}

// TestTreeOverflowLeafVictims: a single overloaded leaf drops locally; the
// victims land in DroppedByFeed for that feed only, because another leaf
// might still serve the same key.
func TestTreeOverflowLeafVictims(t *testing.T) {
	const S, L = 4, 3
	key := crypt.MustNewKey()
	tree := newTestTree(t, key, S, L)
	const heavy = 500
	feeds := make([]*store.Requests, L)
	// Feed 0 concentrates `heavy` distinct keys on subORAM 0; the others are
	// tiny — so leaf 0 overflows its own bound α_f while the other leaves
	// (and the root, whose surviving union fits within the aggregate α) are
	// fine.
	light := 4
	alphaLeaf := batch.Size(heavy, S, 32)
	if alphaLeaf >= heavy {
		t.Fatalf("α_f=%d ≥ %d: feed 0 would not overflow", alphaLeaf, heavy)
	}
	keys := keysInto(tree, 0, heavy)
	feeds[0] = store.NewRequests(heavy, testBlock)
	for i := 0; i < heavy; i++ {
		feeds[0].SetRow(i, store.OpRead, keys[i], 0, uint64(i), uint64(i), nil)
	}
	for f := 1; f < L; f++ {
		feeds[f] = store.NewRequests(light, testBlock)
		for i := 0; i < light; i++ {
			// Keys leaf 0 also serves (the smallest survive its keep-scan):
			// the light feeds ride along without adding distinct load.
			feeds[f].SetRow(i, store.OpRead, keys[i], 0, uint64(i), uint64(f)<<32|uint64(i), nil)
		}
	}
	b, feedErrs, err := tree.MakeBatches(0, feeds)
	if err != nil {
		t.Fatal(err)
	}
	if feedErrs != nil {
		t.Fatalf("overflow is not a feed error: %v", feedErrs)
	}
	if b.DroppedByFeed == nil || len(b.DroppedByFeed[0]) != heavy-alphaLeaf {
		t.Fatalf("feed 0 dropped %v, want %d = heavy−α_f victims", b.DroppedByFeed, heavy-alphaLeaf)
	}
	for f := 1; f < L; f++ {
		if len(b.DroppedByFeed[f]) != 0 {
			t.Fatalf("light feed %d has %d victims", f, len(b.DroppedByFeed[f]))
		}
	}
	if len(b.DroppedKeys) != 0 {
		t.Fatalf("root dropped %d keys; the surviving union fits in α", len(b.DroppedKeys))
	}
	// The leaf-0 survivors — including every key the light feeds requested —
	// are all in the batches: leaf-local victims are per-feed, not global.
	served := map[uint64]bool{}
	for i := 0; i < b.All.Len(); i++ {
		served[b.All.Key[i]] = true
	}
	for i := 0; i < alphaLeaf; i++ {
		if !served[keys[i]] {
			t.Fatalf("leaf-0 survivor key %d missing from batches", keys[i])
		}
	}
	victims := map[uint64]bool{}
	for _, k := range b.DroppedByFeed[0] {
		victims[k] = true
	}
	for i := alphaLeaf; i < heavy; i++ {
		if !victims[keys[i]] {
			t.Fatalf("overflowed key %d not reported as a feed-0 victim", keys[i])
		}
	}
	b.Release()
}

// failLeaf is a LeafBalancer that always errors — a crashed/unreachable leaf.
type failLeaf struct{}

func (failLeaf) BuildRun(uint64, *store.Requests, int, uint64, *store.Requests) ([]uint64, error) {
	return nil, errors.New("leaf down")
}

// TestTreeFailedLeafIsolated: a dead leaf yields exactly one feed error; the
// epoch's batches keep their public shape, the other feeds' keys are all
// served, and the dead feed's exclusive keys are absent.
func TestTreeFailedLeafIsolated(t *testing.T) {
	const S, L = 3, 3
	key := crypt.MustNewKey()
	tree := newTestTree(t, key, S, L)
	tree.ReplaceLeaf(1, failLeaf{})

	feeds := make([]*store.Requests, L)
	for f := 0; f < L; f++ {
		feeds[f] = store.NewRequests(50, testBlock)
		for i := 0; i < 50; i++ {
			feeds[f].SetRow(i, store.OpRead, uint64(1000*f+i), 0, uint64(i), uint64(f)<<32|uint64(i), nil)
		}
	}
	b, feedErrs, err := tree.MakeBatches(0, feeds)
	if err != nil {
		t.Fatal(err)
	}
	if feedErrs == nil || feedErrs[1] == nil {
		t.Fatal("dead leaf produced no feed error")
	}
	if feedErrs[0] != nil || feedErrs[2] != nil {
		t.Fatalf("healthy feeds got errors: %v", feedErrs)
	}
	if b.All.Len() != b.PerSub*S {
		t.Fatalf("failure changed the public batch shape: %d rows", b.All.Len())
	}
	served := map[uint64]bool{}
	for i := 0; i < b.All.Len(); i++ {
		served[b.All.Key[i]] = true
	}
	for f := 0; f < L; f++ {
		for i := 0; i < 50; i++ {
			k := feeds[f].Key[i]
			if f == 1 && served[k] {
				t.Fatalf("dead feed's key %d reached the batches", k)
			}
			if f != 1 && !served[k] {
				t.Fatalf("healthy feed %d key %d missing from batches", f, k)
			}
		}
	}
	b.Release()

	// ResetLeaf is a complete repair: the next epoch serves all feeds.
	tree.ResetLeaf(1)
	b2, feedErrs2, err := tree.MakeBatches(1, feeds)
	if err != nil {
		t.Fatal(err)
	}
	if feedErrs2 != nil {
		t.Fatalf("after ResetLeaf: %v", feedErrs2)
	}
	b2.Release()
}

// TestTreeValidation pins the public-configuration contract: fan-in caps the
// leaf count, and MakeBatches insists on exactly one snapshot per feed.
func TestTreeValidation(t *testing.T) {
	key := crypt.MustNewKey()
	if _, err := NewTree(TreeConfig{
		Config: Config{BlockSize: testBlock, NumSubORAMs: 2, Lambda: 32},
		Leaves: 8, FanIn: 4,
	}, key); err == nil {
		t.Fatal("8 leaves into fan-in 4 must be rejected")
	}
	tree := newTestTree(t, key, 2, 3)
	if tree.FanIn() != 3 {
		t.Fatalf("FanIn defaulted to %d, want Leaves=3", tree.FanIn())
	}
	if _, _, err := tree.MakeBatches(0, make([]*store.Requests, 2)); err == nil {
		t.Fatal("feed-count mismatch must be rejected")
	}
}

// TestTreeZeroAllocSteadyState is the tree's tentpole guard: with a warm
// arena, a full tree epoch — every leaf sort, the root merge, global dedupe,
// response matching — performs zero heap allocations at both levels.
// SortWorkers pinned to 1 as in the monolithic guard (goroutines allocate
// and are outside the data-plane guarantee); telemetry and its access-trace
// sink are wired in, the worst case.
func TestTreeZeroAllocSteadyState(t *testing.T) {
	pool := arena.NewPool()
	reg := telemetry.NewRegistry()
	reg.SetTrace(telemetry.NewTraceSink())
	key := crypt.MustNewKey()
	tree, err := NewTree(TreeConfig{
		Config: Config{BlockSize: 32, NumSubORAMs: 4, Lambda: 64, SortWorkers: 1, Pool: pool, Telemetry: reg},
		Leaves: 4,
	}, key)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(63))
	feeds := make([]*store.Requests, 4)
	for f := range feeds {
		feeds[f] = store.NewRequests(64, 32)
		for i := 0; i < 64; i++ {
			feeds[f].SetRow(i, store.OpRead, rng.Uint64()%1000, 0, uint64(i), uint64(i), nil)
		}
	}
	warm := func() *store.Requests {
		b, feedErrs, err := tree.MakeBatches(7, feeds)
		if err != nil || feedErrs != nil {
			t.Fatal(err, feedErrs)
		}
		resp := b.All.Clone()
		b.Release()
		return resp
	}
	resp := warm()

	allocs := testing.AllocsPerRun(50, func() {
		b, feedErrs, err := tree.MakeBatches(7, feeds)
		if err != nil || feedErrs != nil {
			t.Fatal(err, feedErrs)
		}
		b.Release()
	})
	if allocs != 0 {
		t.Fatalf("warm tree MakeBatches allocated %.1f times per run, want 0", allocs)
	}

	m, err := tree.MatchResponses(7, resp, 0, feeds[0])
	if err != nil {
		t.Fatal(err)
	}
	pool.PutRequests(m)
	allocs = testing.AllocsPerRun(50, func() {
		m, err := tree.MatchResponses(7, resp, 1, feeds[1])
		if err != nil {
			t.Fatal(err)
		}
		pool.PutRequests(m)
	})
	if allocs != 0 {
		t.Fatalf("warm tree MatchResponses allocated %.1f times per run, want 0", allocs)
	}
	if reg.Counter("lb_root_merges_total").Value() == 0 || reg.Counter("lb_leaf_runs_total").Value() == 0 {
		t.Fatal("tree telemetry not recording — guard is vacuous")
	}
}

// TestTreeLeafZeroAlloc guards the leaf level in isolation: BuildRun into a
// preallocated destination is allocation-free once the arena is warm.
func TestTreeLeafZeroAlloc(t *testing.T) {
	pool := arena.NewPool()
	key := crypt.MustNewKey()
	leaf := NewLeaf(Config{BlockSize: 32, NumSubORAMs: 4, Lambda: 64, SortWorkers: 1, Pool: pool}, key, 0)
	rng := rand.New(rand.NewSource(64))
	reqs := store.NewRequests(128, 32)
	for i := 0; i < reqs.Len(); i++ {
		reqs.SetRow(i, store.OpRead, rng.Uint64()%500, 0, uint64(i), uint64(i), nil)
	}
	alpha := batch.Size(reqs.Len(), 4, 64)
	dst := store.NewRequests(alpha*4, 32)
	if _, err := leaf.BuildRun(0, reqs, alpha, 0, dst); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := leaf.BuildRun(0, reqs, alpha, 0, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm leaf BuildRun allocated %.1f times per run, want 0", allocs)
	}
}

// TestTreeRootWorkBelowMonolithic pins the tentpole's headline claim at real
// deployment shapes: the root's oblivious compare-exchange count (merging L
// sorted runs of α·S) is strictly below the monolithic balancer's sort of
// the same epoch (R + α·S rows) for every tree with ≥ 2 leaves, and the gap
// widens with L.
func TestTreeRootWorkBelowMonolithic(t *testing.T) {
	const R, S, lambda = 4096, 4, 128
	alpha := batch.Size(R, S, lambda)
	mono := obliv.SortCost(R + alpha*S)
	for _, L := range []int{1, 2, 4, 8} {
		rates := make([]int, L)
		for i := range rates {
			rates[i] = R / L
		}
		root := obliv.MergeSortedCost(TreeRunLens(rates, S, lambda))
		if root >= mono {
			t.Errorf("L=%d: root merge %d compare-exchanges ≥ monolithic sort %d", L, root, mono)
		}
		t.Logf("L=%d: root %d vs monolithic %d (%.1f%%)", L, root, mono, 100*float64(root)/float64(mono))
	}
}

// BenchmarkLBTree is the tentpole benchmark (scripts/bench.sh -lbtree):
// monolithic MakeBatches vs the full tree epoch at 1, 2, 4 and 8 leaves for
// the same aggregate rate, plus the root stage's isolated cost. SortWorkers
// is pinned to 1 so the numbers compare oblivious work, not scheduling.
func BenchmarkLBTree(b *testing.B) {
	const R, S = 4096, 4
	key := crypt.MustNewKey()
	rng := rand.New(rand.NewSource(65))
	all := store.NewRequests(R, 32)
	for i := 0; i < R; i++ {
		all.SetRow(i, store.OpRead, rng.Uint64()%uint64(4*R), 0, uint64(i), uint64(i), nil)
	}

	b.Run("monolithic", func(b *testing.B) {
		pool := arena.NewPool()
		lb := New(Config{BlockSize: 32, NumSubORAMs: S, Lambda: 128, SortWorkers: 1, Pool: pool}, key)
		bb, err := lb.MakeBatches(all)
		if err != nil {
			b.Fatal(err)
		}
		bb.Release()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bb, err := lb.MakeBatches(all)
			if err != nil {
				b.Fatal(err)
			}
			bb.Release()
		}
	})
	for _, leaves := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("tree-%d", leaves), func(b *testing.B) {
			pool := arena.NewPool()
			tree, err := NewTree(TreeConfig{
				Config: Config{BlockSize: 32, NumSubORAMs: S, Lambda: 128, SortWorkers: 1, Pool: pool},
				Leaves: leaves,
			}, key)
			if err != nil {
				b.Fatal(err)
			}
			feeds := splitFeeds(all, leaves)
			bb, feedErrs, err := tree.MakeBatches(0, feeds)
			if err != nil || feedErrs != nil {
				b.Fatal(err, feedErrs)
			}
			bb.Release()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bb, _, err := tree.MakeBatches(uint64(i), feeds)
				if err != nil {
					b.Fatal(err)
				}
				bb.Release()
			}
		})
	}
}
