// Package loadbalancer implements Snoopy's oblivious load balancer (paper
// §4): it turns the requests received during an epoch into one equal-sized,
// deduplicated, dummy-padded batch per subORAM (Fig. 5, Fig. 25), and
// obliviously matches the subORAM responses back to the original client
// requests (Fig. 6).
//
// Load balancers are stateless between epochs and share only the long-term
// keyed hash key that assigns objects to subORAMs, so any number of them
// can run independently and in parallel (§4.3).
package loadbalancer

import (
	"fmt"
	"sync"
	"time"

	"snoopy/internal/arena"
	"snoopy/internal/batch"
	"snoopy/internal/crypt"
	"snoopy/internal/obliv"
	"snoopy/internal/store"
	"snoopy/internal/telemetry"
	"snoopy/internal/trace"
)

// Config configures a load balancer.
type Config struct {
	// BlockSize is the object value size in bytes.
	BlockSize int
	// NumSubORAMs is S, the number of data partitions.
	NumSubORAMs int
	// Lambda is the security parameter for batch sizing (Theorem 3).
	Lambda int
	// SortWorkers bounds oblivious-sort parallelism; 0 means adaptive with
	// GOMAXPROCS (paper Fig. 13a).
	SortWorkers int
	// Rec, when non-nil, records epoch access traces. Test-only; requires
	// SortWorkers == 1.
	Rec *trace.Recorder
	// Pool supplies per-epoch working memory (batch scratch, matched
	// responses). Nil means arena.Default.
	Pool *arena.Pool
	// Telemetry, when non-nil, records batch-assembly and response-matching
	// durations plus per-epoch counters. Every recording site fires once
	// per call with public payloads only (batch sizes, the already-public
	// Theorem-3 overflow count); nil disables recording at zero cost.
	Telemetry *telemetry.Registry
}

// Stats records where an epoch's load-balancer time went (the "Load
// balancer (make batch)" and "(match responses)" components of Fig. 12).
type Stats struct {
	MakeBatch time.Duration
	Match     time.Duration
}

// LoadBalancer assembles and matches oblivious batches. Batch building
// and response matching of different epochs may run concurrently
// (pipelined mode); the methods themselves are stateless apart from the
// mutex-guarded stats.
type LoadBalancer struct {
	cfg    Config
	hasher *crypt.Hasher

	statsMu sync.Mutex
	last    Stats

	// Telemetry instruments, resolved once at construction so recording on
	// the epoch hot path does no registry lookups. All nil (and therefore
	// no-ops) when Config.Telemetry is nil.
	telMakeBatch *telemetry.Histogram
	telMatch     *telemetry.Histogram
	telBatches   *telemetry.Counter
	telDropped   *telemetry.Counter
}

// New creates a load balancer. key is the long-term object→subORAM hash key
// shared by every load balancer in the deployment (paper §4.1: the keyed
// hash "remains the same across epochs").
func New(cfg Config, key crypt.Key) *LoadBalancer {
	if cfg.BlockSize <= 0 || cfg.NumSubORAMs <= 0 {
		panic("loadbalancer: BlockSize and NumSubORAMs must be positive")
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = 128
	}
	return &LoadBalancer{
		cfg:          cfg,
		hasher:       crypt.NewHasher(key),
		telMakeBatch: cfg.Telemetry.Histogram("lb_make_batch", nil),
		telMatch:     cfg.Telemetry.Histogram("lb_match", nil),
		telBatches:   cfg.Telemetry.Counter("lb_batches_total"),
		telDropped:   cfg.Telemetry.Counter("lb_overflow_dropped_total"),
	}
}

// pool returns the configured arena, defaulting to the process-wide one.
func (lb *LoadBalancer) pool() *arena.Pool {
	if lb.cfg.Pool != nil {
		return lb.cfg.Pool
	}
	return arena.Default
}

// SubORAMFor returns the partition that stores id.
func (lb *LoadBalancer) SubORAMFor(id uint64) int {
	return int(lb.hasher.Bucket(id, lb.cfg.NumSubORAMs))
}

// Partition splits an object set across subORAMs for initialization (paper
// Fig. 23). Initialization happens once, before any adversarially chosen
// request, and the partition sizes are a function of the secret hash key
// alone, so a plain (non-oblivious) split is simulatable; deployments that
// want Fig. 23's fully oblivious initialization can sort with
// store.BySubKey first.
func (lb *LoadBalancer) Partition(ids []uint64, data []byte) (partIDs [][]uint64, partData [][]byte, err error) {
	if len(data) != len(ids)*lb.cfg.BlockSize {
		return nil, nil, fmt.Errorf("loadbalancer: data length %d != %d objects × %d",
			len(data), len(ids), lb.cfg.BlockSize)
	}
	s := lb.cfg.NumSubORAMs
	partIDs = make([][]uint64, s)
	partData = make([][]byte, s)
	for i, id := range ids {
		p := lb.SubORAMFor(id)
		partIDs[p] = append(partIDs[p], id)
		partData[p] = append(partData[p], data[i*lb.cfg.BlockSize:(i+1)*lb.cfg.BlockSize]...)
	}
	return partIDs, partData, nil
}

// Batches is the output of MakeBatches: S equal batches laid out
// subORAM-major in one record set. Its storage is drawn from the load
// balancer's arena; call Release when the epoch is done with it (optional —
// an unreleased Batches is simply garbage collected).
type Batches struct {
	All *store.Requests // NumSubORAMs × PerSub rows
	// PerSub is the per-subORAM batch size α = f(R,S).
	PerSub int
	// Dropped counts distinct real requests that exceeded a batch — the
	// negligible-probability overflow event of Theorem 3.
	Dropped int
	// DroppedKeys holds the dropped requests' keys (nil when Dropped == 0)
	// so the system can fail exactly those requests with an explicit error
	// instead of silently answering not-found. These drops are global: the
	// key is absent from the batches, so every feed that requested it is
	// affected.
	DroppedKeys []uint64
	// DroppedByFeed, set only by the tree balancer, holds leaf-local
	// overflow victims per feed: a key dropped at leaf f may still have
	// been served via another leaf, so only feed f's requests for it fail.
	// nil for monolithic balancers and in the (overwhelmingly common)
	// no-overflow case.
	DroppedByFeed [][]uint64

	pool *arena.Pool
}

// batchesPool recycles the Batches structs themselves.
var batchesPool = sync.Pool{New: func() any { return new(Batches) }}

// For returns the batch destined for subORAM s (a view, not a copy).
func (b *Batches) For(s int) *store.Requests {
	return b.All.View(s*b.PerSub, (s+1)*b.PerSub)
}

// ForInto is For writing the window into caller-owned scratch — no
// allocation, for the epoch engine's per-partition dispatch loop. The
// window is invalid once the Batches are released.
func (b *Batches) ForInto(dst *store.Requests, s int) {
	b.All.ViewInto(dst, s*b.PerSub, (s+1)*b.PerSub)
}

// Release returns the batch storage (and the struct) to the arena. The
// Batches and every view obtained from For are invalid afterwards.
func (b *Batches) Release() {
	if b == nil || b.All == nil {
		return
	}
	b.pool.PutRequests(b.All)
	*b = Batches{}
	batchesPool.Put(b)
}

// buildRun assembles one sub-major sorted run for an epoch: reqs copied into
// pooled scratch with subORAM assignment and a public seqBase offset folded
// into Seq (global last-write-wins order across tree feeds), α dummies
// appended per subORAM, the whole obliviously sorted by (subORAM, key,
// write-first, seq-desc), locally deduplicated to the first α distinct keys
// per subORAM, compacted, and resized to exactly α·S rows. This is both the
// body of the monolithic MakeBatches (seqBase 0) and the per-leaf stage of
// the aggregation tree — a leaf's output run is literally a valid batch set,
// which is what makes the root's merge-of-runs sound.
//
// Returns the pooled α·S-row run (caller releases it to lb's pool) and the
// run's Theorem-3 overflow victims.
func (lb *LoadBalancer) buildRun(reqs *store.Requests, alpha int, seqBase uint64) (*store.Requests, []uint64, error) {
	if reqs.BlockSize != lb.cfg.BlockSize {
		return nil, nil, fmt.Errorf("loadbalancer: block size %d != %d", reqs.BlockSize, lb.cfg.BlockSize)
	}
	n := reqs.Len()
	s := lb.cfg.NumSubORAMs

	// ➊ Assign each request to its subORAM; ➋ append α dummies per subORAM.
	pool := lb.pool()
	work := pool.GetRequests(n+alpha*s, lb.cfg.BlockSize)
	work.Rec = lb.cfg.Rec
	for i := 0; i < n; i++ {
		work.CopyRowPlain(i, reqs, i)
		work.Sub[i] = uint32(lb.SubORAMFor(work.Key[i]))
		work.Seq[i] = seqBase + reqs.Seq[i]
	}
	d := n
	for sub := 0; sub < s; sub++ {
		for j := 0; j < alpha; j++ {
			key := store.DummyKeyBit | uint64(sub)<<32 | uint64(j)
			work.SetRow(d, store.OpRead, key, uint32(sub), 0, 0, nil)
			d++
		}
	}

	// ➌ Group into batches: sort by (subORAM, key, write-first, seq-desc).
	// Dummy keys sink to the end of each group; duplicates become adjacent
	// with the last-write-wins representative first.
	obliv.SortAdaptive(store.BySubKeyWriteSeq{Requests: work}, lb.cfg.SortWorkers)

	// ➍ Keep the first α distinct keys per subORAM, branch-free.
	keep := pool.GetBits(work.Len())
	drop := pool.GetBits(work.Len())
	_, droppedKeys := dedupeKeep(work, alpha, keep, drop)
	obliv.Compact(work, keep)
	pool.PutBits(keep)
	pool.PutBits(drop)
	work.Resize(alpha * s)
	return work, droppedKeys, nil
}

// dedupeKeep marks, branch-free, the first α distinct keys of each subORAM
// group of the (sub, key, write-first, seq-desc)-sorted work into keep, and
// the distinct real keys that did not fit — Theorem-3 overflow victims —
// into drop. Shared by the monolithic balancer, the tree's leaves, and the
// tree's root (where work is the merge of the leaf runs and duplicate keys
// span leaves). Returns the victim count and keys.
func dedupeKeep(work *store.Requests, alpha int, keep, drop []uint8) (int, []uint64) {
	dropped := 0
	var distinct uint64
	prevSub := ^uint64(0)
	prevKey := ^uint64(0)
	for i := 0; i < work.Len(); i++ {
		work.Touch(i)
		sub := uint64(work.Sub[i])
		key := work.Key[i]
		newSub := obliv.NeqU64(sub, prevSub)
		newKey := obliv.Or(newSub, obliv.NeqU64(key, prevKey))
		distinct = obliv.SelectU64(newSub, distinct, 0)
		k := newKey & obliv.LtU64(distinct, uint64(alpha))
		keep[i] = k
		// A distinct real key that did not fit is a dropped request.
		isReal := obliv.Not(store.DummyMark(key))
		drop[i] = newKey & obliv.Not(k) & isReal
		dropped += int(drop[i])
		distinct += uint64(newKey)
		prevSub, prevKey = sub, key
	}
	var droppedKeys []uint64
	if dropped > 0 {
		// Theorem-3 overflow event: collect the victims' keys (before
		// Compact permutes work) so the system can fail exactly those
		// requests. The count is public (EpochStats.Dropped), and this
		// branchy pass runs only in the negligible-probability event, where
		// the failure is client-visible anyway.
		droppedKeys = make([]uint64, 0, dropped)
		for i := 0; i < work.Len(); i++ {
			if drop[i] == 1 {
				droppedKeys = append(droppedKeys, work.Key[i])
			}
		}
	}
	return dropped, droppedKeys
}

// MakeBatches obliviously builds the per-subORAM batches for one epoch from
// the requests received (paper Fig. 5 / Fig. 25 lines 1–14). The caller
// must have set Seq to the arrival order (for last-write-wins) and Client
// to its routing cookie. reqs is not modified; duplicates are allowed.
func (lb *LoadBalancer) MakeBatches(reqs *store.Requests) (*Batches, error) {
	t0 := time.Now()
	tt0 := lb.cfg.Telemetry.Now()

	n := reqs.Len()
	s := lb.cfg.NumSubORAMs
	alpha := batch.Size(n, s, lb.cfg.Lambda)
	if alpha == 0 {
		alpha = 1 // an idle epoch still sends one dummy per subORAM
	}
	work, droppedKeys, err := lb.buildRun(reqs, alpha, 0)
	if err != nil {
		return nil, err
	}
	dropped := len(droppedKeys)

	b := batchesPool.Get().(*Batches)
	*b = Batches{All: work, PerSub: alpha, Dropped: dropped, DroppedKeys: droppedKeys, pool: lb.pool()}

	lb.statsMu.Lock()
	lb.last.MakeBatch = time.Since(t0)
	lb.statsMu.Unlock()
	// Fires once per call, unconditionally: the duration is adversary-
	// visible timing, and the overflow count is already public
	// (EpochStats.Dropped; a negligible-probability, client-visible event).
	lb.telMakeBatch.Observe(time.Duration(lb.cfg.Telemetry.Now() - tt0))
	lb.telBatches.Inc()
	lb.telDropped.Add(uint64(dropped))
	return b, nil
}

// MatchResponses obliviously propagates subORAM responses to the original
// client requests (paper Fig. 6 / Fig. 25 lines 18–26). responses is the
// concatenation of every subORAM's response batch; reqs is the epoch's
// original request list (duplicates included). The result has one row per
// original request — same Key, Op, Seq, and Client cookie, with Data (and
// the Aux found bit) carrying the response — in unspecified order. Its
// storage is drawn from the arena; the caller owns it and may release it.
func (lb *LoadBalancer) MatchResponses(responses, reqs *store.Requests) (*store.Requests, error) {
	t0 := time.Now()
	tt0 := lb.cfg.Telemetry.Now()

	if responses.BlockSize != lb.cfg.BlockSize || reqs.BlockSize != lb.cfg.BlockSize {
		return nil, fmt.Errorf("loadbalancer: block size mismatch")
	}
	// ➊ Merge: responses tagged 0, requests tagged 1.
	pool := lb.pool()
	x := pool.GetRequests(responses.Len()+reqs.Len(), lb.cfg.BlockSize)
	x.CopyRowsPlain(0, responses)
	x.CopyRowsPlain(responses.Len(), reqs)
	x.Rec = lb.cfg.Rec
	for i := 0; i < responses.Len(); i++ {
		x.Tag[i] = 0
	}
	for i := responses.Len(); i < x.Len(); i++ {
		x.Tag[i] = 1
	}

	// ➋ Sort by key, responses before the requests they answer.
	obliv.SortAdaptive(store.ByKeyTag{Requests: x}, lb.cfg.SortWorkers)

	// ➌ Propagate response data to the request rows that follow it.
	prevKey := ^uint64(0)
	var prevFound uint8
	prevData := pool.GetBlock(lb.cfg.BlockSize)
	for i := 0; i < x.Len(); i++ {
		x.Touch(i)
		isResp := obliv.Not(x.Tag[i])
		obliv.CondSetU64(isResp, &prevKey, x.Key[i])
		obliv.CondSetU8(isResp, &prevFound, x.Aux[i])
		obliv.CondCopyBytes(isResp, prevData, x.Block(i))
		match := x.Tag[i] & obliv.EqU64(x.Key[i], prevKey)
		obliv.CondCopyBytes(match, x.Block(i), prevData)
		obliv.CondSetU8(match, &x.Aux[i], prevFound)
	}

	pool.PutBlock(prevData)

	// ➍ Compact out the response rows, leaving the answered requests.
	marks := pool.GetBits(x.Len())
	copy(marks, x.Tag)
	obliv.Compact(x, marks)
	pool.PutBits(marks)
	x.Resize(reqs.Len())

	lb.statsMu.Lock()
	lb.last.Match = time.Since(t0)
	lb.statsMu.Unlock()
	lb.telMatch.Observe(time.Duration(lb.cfg.Telemetry.Now() - tt0))
	return x, nil
}

// LastStats returns the timing breakdown of the most recent epoch.
func (lb *LoadBalancer) LastStats() Stats {
	lb.statsMu.Lock()
	defer lb.statsMu.Unlock()
	return lb.last
}

// BatchSize exposes f(R,S) for this deployment's λ — used by the planner
// and benchmarks.
func (lb *LoadBalancer) BatchSize(r int) int {
	return batch.Size(r, lb.cfg.NumSubORAMs, lb.cfg.Lambda)
}

// PartitionOblivious is the fully oblivious initialization of paper
// Fig. 23: objects are tagged with their keyed-hash subORAM assignment,
// obliviously sorted by tag, and split at the tag boundaries. Unlike
// Partition, the memory access pattern of the grouping itself is a fixed
// function of the object count — use it when even initialization runs
// inside an enclave under observation. O(n log² n); prefer Partition for
// bulk loads outside the threat window.
func (lb *LoadBalancer) PartitionOblivious(ids []uint64, data []byte) (partIDs [][]uint64, partData [][]byte, err error) {
	if len(data) != len(ids)*lb.cfg.BlockSize {
		return nil, nil, fmt.Errorf("loadbalancer: data length %d != %d objects × %d",
			len(data), len(ids), lb.cfg.BlockSize)
	}
	s := lb.cfg.NumSubORAMs
	work := store.NewRequests(len(ids), lb.cfg.BlockSize)
	work.Rec = lb.cfg.Rec
	for i, id := range ids {
		work.SetRow(i, store.OpRead, id, uint32(lb.SubORAMFor(id)), 0, 0,
			data[i*lb.cfg.BlockSize:(i+1)*lb.cfg.BlockSize])
	}
	obliv.SortAdaptive(store.BySubKey{Requests: work}, lb.cfg.SortWorkers)

	// Boundary scan (Fig. 23 lines 10-18): partition sizes are a function
	// of the secret hash key only, hence simulatable public outputs.
	partIDs = make([][]uint64, s)
	partData = make([][]byte, s)
	for i := 0; i < work.Len(); i++ {
		p := int(work.Sub[i])
		partIDs[p] = append(partIDs[p], work.Key[i])
		partData[p] = append(partData[p], work.Block(i)...)
	}
	return partIDs, partData, nil
}
