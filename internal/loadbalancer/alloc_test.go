package loadbalancer

import (
	"math/rand"
	"testing"

	"snoopy/internal/arena"
	"snoopy/internal/crypt"
	"snoopy/internal/store"
	"snoopy/internal/telemetry"
)

// TestMakeBatchesZeroAllocSteadyState is the tentpole guard: with a warm
// arena, building an epoch's batches performs zero heap allocations.
// SortWorkers is pinned to 1 — parallel sort spawns goroutines, which
// allocate by nature and are outside the data-plane guarantee.
func TestMakeBatchesZeroAllocSteadyState(t *testing.T) {
	pool := arena.NewPool()
	lb := New(Config{BlockSize: 32, NumSubORAMs: 4, Lambda: 64, SortWorkers: 1, Pool: pool}, crypt.MustNewKey())

	rng := rand.New(rand.NewSource(50))
	reqs := store.NewRequests(256, 32)
	for i := 0; i < reqs.Len(); i++ {
		reqs.SetRow(i, store.OpRead, rng.Uint64()%1000, 0, uint64(i), uint64(i), nil)
	}

	// Warm the pool: one full cycle populates every size class involved.
	b, err := lb.MakeBatches(reqs)
	if err != nil {
		t.Fatal(err)
	}
	b.Release()

	allocs := testing.AllocsPerRun(50, func() {
		b, err := lb.MakeBatches(reqs)
		if err != nil {
			t.Fatal(err)
		}
		b.Release()
	})
	if allocs != 0 {
		t.Fatalf("warm MakeBatches allocated %.1f times per run, want 0", allocs)
	}
}

// TestMatchResponsesZeroAllocSteadyState: the response-matching half of the
// epoch is equally allocation-free once warm.
func TestMatchResponsesZeroAllocSteadyState(t *testing.T) {
	pool := arena.NewPool()
	lb := New(Config{BlockSize: 32, NumSubORAMs: 2, Lambda: 64, SortWorkers: 1, Pool: pool}, crypt.MustNewKey())

	reqs := store.NewRequests(64, 32)
	for i := 0; i < reqs.Len(); i++ {
		reqs.SetRow(i, store.OpRead, uint64(i), 0, uint64(i), uint64(i), nil)
	}
	responses := store.NewRequests(128, 32)
	for i := 0; i < responses.Len(); i++ {
		responses.SetRow(i, store.OpRead, uint64(i), 0, 0, 0, nil)
		responses.Aux[i] = 1
	}

	m, err := lb.MatchResponses(responses, reqs)
	if err != nil {
		t.Fatal(err)
	}
	pool.PutRequests(m)

	allocs := testing.AllocsPerRun(50, func() {
		m, err := lb.MatchResponses(responses, reqs)
		if err != nil {
			t.Fatal(err)
		}
		pool.PutRequests(m)
	})
	if allocs != 0 {
		t.Fatalf("warm MatchResponses allocated %.1f times per run, want 0", allocs)
	}
}

// TestEpochZeroAllocWithTelemetry: both halves of the instrumented epoch —
// batch building and response matching — stay allocation-free with a
// telemetry registry (and its access-trace sink, the worst case) wired in.
func TestEpochZeroAllocWithTelemetry(t *testing.T) {
	pool := arena.NewPool()
	reg := telemetry.NewRegistry()
	reg.SetTrace(telemetry.NewTraceSink())
	lb := New(Config{
		BlockSize: 32, NumSubORAMs: 4, Lambda: 64, SortWorkers: 1,
		Pool: pool, Telemetry: reg,
	}, crypt.MustNewKey())

	rng := rand.New(rand.NewSource(54))
	reqs := store.NewRequests(256, 32)
	for i := 0; i < reqs.Len(); i++ {
		reqs.SetRow(i, store.OpRead, rng.Uint64()%1000, 0, uint64(i), uint64(i), nil)
	}
	warm := func() {
		b, err := lb.MakeBatches(reqs)
		if err != nil {
			t.Fatal(err)
		}
		resp := b.All.Clone()
		b.Release()
		m, err := lb.MatchResponses(resp, reqs)
		if err != nil {
			t.Fatal(err)
		}
		pool.PutRequests(m)
		pool.PutRequests(resp)
	}
	warm()

	allocs := testing.AllocsPerRun(50, func() {
		b, err := lb.MakeBatches(reqs)
		if err != nil {
			t.Fatal(err)
		}
		b.Release()
	})
	if allocs != 0 {
		t.Fatalf("instrumented warm MakeBatches allocated %.1f times per run, want 0", allocs)
	}
	if reg.Counter("lb_batches_total").Value() == 0 {
		t.Fatal("telemetry not recording — guard is vacuous")
	}
}
