package loadbalancer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"snoopy/internal/crypt"
	"snoopy/internal/store"
)

// TestMakeBatchesPropertyInvariants quick-checks the structural invariants
// the security proof rests on, across random request mixes:
//  1. every batch has exactly α rows;
//  2. every distinct real key appears in exactly one batch, on the subORAM
//     its hash assigns;
//  3. nothing is dropped below the Theorem-3 capacity;
//  4. response matching returns every original request with its cookie.
func TestMakeBatchesPropertyInvariants(t *testing.T) {
	lb := New(Config{BlockSize: 16, NumSubORAMs: 3, Lambda: 24}, crypt.MustNewKey())
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%512) + 1
		reqs := store.NewRequests(n, 16)
		for i := 0; i < n; i++ {
			op := store.OpRead
			if rng.Intn(2) == 0 {
				op = store.OpWrite
			}
			reqs.SetRow(i, op, uint64(rng.Intn(n)), 0, uint64(i), uint64(i), []byte{byte(i)})
		}
		b, err := lb.MakeBatches(reqs)
		if err != nil || b.Dropped != 0 {
			return false
		}
		if b.All.Len() != 3*b.PerSub {
			return false
		}
		seen := map[uint64]int{}
		for s := 0; s < 3; s++ {
			part := b.For(s)
			if part.Len() != b.PerSub {
				return false
			}
			for i := 0; i < part.Len(); i++ {
				key := part.Key[i]
				seen[key]++
				if !store.IsDummyKey(key) && lb.SubORAMFor(key) != s {
					return false
				}
			}
		}
		for i := 0; i < n; i++ {
			if seen[reqs.Key[i]] != 1 {
				return false
			}
		}
		// Matching returns exactly the original cookies.
		out, err := lb.MatchResponses(b.All, reqs)
		if err != nil || out.Len() != n {
			return false
		}
		cookies := map[uint64]bool{}
		for i := 0; i < out.Len(); i++ {
			if cookies[out.Client[i]] {
				return false
			}
			cookies[out.Client[i]] = true
		}
		return len(cookies) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
