package loadbalancer

import (
	"fmt"
	"sync"
	"time"

	"snoopy/internal/batch"
	"snoopy/internal/crypt"
	"snoopy/internal/obliv"
	"snoopy/internal/store"
	"snoopy/internal/telemetry"
)

// LeafBalancer is one leaf of the two-level aggregation tree: it turns its
// own clients' epoch requests into the sub-major sorted, locally deduped,
// α-padded run the root merges. In-process leaves are *Leaf; remote leaves
// (transport.RemoteLeaf) forward the same run over an attested channel.
// Implementations must write exactly α·S rows into dst — the run shape is a
// function of public parameters (aggregate R, S, λ) only.
type LeafBalancer interface {
	// BuildRun sorts + locally dedupes reqs into dst (a view into the
	// root's merge scratch, α·S rows). seqBase is the leaf's public
	// sequence offset, giving writes a globally consistent last-write-wins
	// order across leaves. Returns the leaf's local Theorem-3 overflow
	// victims (nil in the overwhelmingly common case).
	BuildRun(epoch uint64, reqs *store.Requests, alpha int, seqBase uint64, dst *store.Requests) ([]uint64, error)
}

// Leaf is the in-process LeafBalancer: a stateless oblivious sorter sharing
// the deployment's routing key. Its run construction is exactly the
// monolithic batch build (sort, keep-first-α-distinct-per-subORAM, compact,
// pad), so a leaf run is itself a valid batch set for the aggregate rate —
// the invariant the root's merge relies on.
type Leaf struct {
	lb    *LoadBalancer
	index int

	telSort *telemetry.Histogram
	telRuns *telemetry.Counter
}

// NewLeaf creates leaf index of a tree plane. key is the deployment's
// shared object→subORAM routing key; cfg matches the root's configuration.
func NewLeaf(cfg Config, key crypt.Key, index int) *Leaf {
	return &Leaf{
		lb:      New(cfg, key),
		index:   index,
		telSort: cfg.Telemetry.Histogram("lb_leaf_sort", nil),
		telRuns: cfg.Telemetry.Counter("lb_leaf_runs_total"),
	}
}

// Index returns the leaf's position in its plane.
func (lf *Leaf) Index() int { return lf.index }

// BuildRun implements LeafBalancer.
func (lf *Leaf) BuildRun(_ uint64, reqs *store.Requests, alpha int, seqBase uint64, dst *store.Requests) ([]uint64, error) {
	tt0 := lf.lb.cfg.Telemetry.Now()
	if want := alpha * lf.lb.cfg.NumSubORAMs; dst.Len() != want {
		return nil, fmt.Errorf("loadbalancer: leaf %d run destination holds %d rows, want %d", lf.index, dst.Len(), want)
	}
	run, droppedKeys, err := lf.lb.buildRun(reqs, alpha, seqBase)
	if err != nil {
		return nil, err
	}
	// The copy into dst models the leaf→root transfer; remote leaves recv
	// straight into dst off the wire.
	dst.CopyRowsPlain(0, run)
	lf.lb.pool().PutRequests(run)
	lf.telSort.Observe(time.Duration(lf.lb.cfg.Telemetry.Now() - tt0))
	lf.telRuns.Inc()
	return droppedKeys, nil
}

// TreeConfig configures a two-level aggregation tree plane.
type TreeConfig struct {
	Config
	// Leaves is the number of leaf load balancers (≥ 1). Leaves == 1
	// degenerates to a monolithic plane with one extra copy.
	Leaves int
	// FanIn caps how many leaf runs the root merges in one epoch; a
	// two-level tree requires Leaves ≤ FanIn. Zero defaults to Leaves.
	// Public deployment configuration, like every shape parameter here.
	FanIn int
}

// Tree is the two-level oblivious aggregation tree: Leaves leaf balancers
// each sort + locally dedupe their own feed, and the root merges the
// already-sorted runs with obliv.MergeSorted — O(n log n) instead of the
// monolithic re-sort's O(n log² n) — then performs global dedupe and
// Theorem-3 padding for the aggregate rate. The schedule (run lengths,
// merge network, batch size) is a function of public (R, S, Leaves, FanIn,
// λ) only.
type Tree struct {
	cfg  TreeConfig
	key  crypt.Key
	root *LoadBalancer

	// leavesMu guards element swaps (ReplaceLeaf/ResetLeaf: leaf failover
	// promotes a replacement in place). The length never changes.
	leavesMu sync.RWMutex
	leaves   []LeafBalancer

	statsMu sync.Mutex
	last    Stats

	// Per-epoch scratch, reused across calls. MakeBatches invocations on
	// one Tree are serialized by the caller (core holds epochMu through
	// stage A); MatchResponses does not touch scratch.
	views    []store.Requests // L+1 run windows into the merge scratch
	runLens  []int            // L+1 run lengths (leaf runs + root dummy run)
	bases    []uint64         // per-leaf public sequence offsets
	alphas   []int            // per-leaf Theorem-3 bound α_f = f(R_f, S)
	leafKeys [][]uint64
	leafErrs []error

	// Telemetry instruments, resolved once at construction; nil-safe.
	telRootMerge *telemetry.Histogram
	telMerges    *telemetry.Counter
	telBatches   *telemetry.Counter
	telDropped   *telemetry.Counter
	stLeaf       *telemetry.SpanStage
	stRoot       *telemetry.SpanStage
	stLeafMatch  *telemetry.SpanStage
}

// NewTree creates a tree plane. key is the deployment-wide routing key
// shared by the root and every leaf (and every other plane).
func NewTree(cfg TreeConfig, key crypt.Key) (*Tree, error) {
	if cfg.Leaves <= 0 {
		cfg.Leaves = 1
	}
	if cfg.FanIn <= 0 {
		cfg.FanIn = cfg.Leaves
	}
	if cfg.Leaves > cfg.FanIn {
		return nil, fmt.Errorf("loadbalancer: %d leaves exceed root fan-in %d (two-level tree)", cfg.Leaves, cfg.FanIn)
	}
	t := &Tree{
		cfg:  cfg,
		key:  key,
		root: New(cfg.Config, key),

		views:    make([]store.Requests, cfg.Leaves+1),
		runLens:  make([]int, cfg.Leaves+1),
		bases:    make([]uint64, cfg.Leaves),
		alphas:   make([]int, cfg.Leaves),
		leafKeys: make([][]uint64, cfg.Leaves),
		leafErrs: make([]error, cfg.Leaves),

		telRootMerge: cfg.Telemetry.Histogram("lb_root_merge", nil),
		telMerges:    cfg.Telemetry.Counter("lb_root_merges_total"),
		telBatches:   cfg.Telemetry.Counter("lb_batches_total"),
		telDropped:   cfg.Telemetry.Counter("lb_overflow_dropped_total"),
		stLeaf:       cfg.Telemetry.Stage("lb_leaf"),
		stRoot:       cfg.Telemetry.Stage("lb_root"),
		stLeafMatch:  cfg.Telemetry.Stage("lb_leaf_match"),
	}
	for i := 0; i < cfg.Leaves; i++ {
		t.leaves = append(t.leaves, NewLeaf(cfg.Config, key, i))
	}
	return t, nil
}

// Feeds returns the leaf count: one client queue per leaf.
func (t *Tree) Feeds() int { return len(t.leaves) }

// FanIn returns the (defaults-filled) root fan-in.
func (t *Tree) FanIn() int { return t.cfg.FanIn }

// Leaf returns the current balancer serving leaf f.
func (t *Tree) Leaf(f int) LeafBalancer {
	t.leavesMu.RLock()
	defer t.leavesMu.RUnlock()
	return t.leaves[f]
}

// ReplaceLeaf swaps in a replacement for leaf f (leaf failover). It serves
// from the next epoch on.
func (t *Tree) ReplaceLeaf(f int, leaf LeafBalancer) {
	t.leavesMu.Lock()
	t.leaves[f] = leaf
	t.leavesMu.Unlock()
}

// ResetLeaf replaces leaf f with a fresh in-process leaf — the default
// promotion source for leaf failover: leaves are stateless between epochs,
// so a restart is a complete repair.
func (t *Tree) ResetLeaf(f int) {
	t.ReplaceLeaf(f, NewLeaf(t.cfg.Config, t.key, f))
}

// fillDummyRun writes the all-dummy α·S run into dst — the neutral element
// of the merge. The root contributes one as its padding reservoir (so leaves
// only pad to their own rate's bound), and it substitutes for a failed leaf
// so the epoch's shape (and the other leaves' service) is unaffected by the
// failure.
func fillDummyRun(dst *store.Requests, alpha, s int) {
	d := 0
	for sub := 0; sub < s; sub++ {
		for j := 0; j < alpha; j++ {
			key := store.DummyKeyBit | uint64(sub)<<32 | uint64(j)
			dst.SetRow(d, store.OpRead, key, uint32(sub), 0, 0, nil)
			d++
		}
	}
}

// TreeRunLens returns the public run-length vector the root merges for an
// epoch: per-leaf runs of α_f·S for each feed's own rate, plus the root's
// α·S dummy run for the aggregate rate. Exported for the planner's cost
// model (obliv.MergeSortedCost over exactly this vector) — the vector is a
// function of public configuration and the public per-feed rates alone.
func TreeRunLens(feedRates []int, s, lambda int) []int {
	runs := make([]int, len(feedRates)+1)
	r := 0
	for f, rf := range feedRates {
		af := batch.Size(rf, s, lambda)
		if af == 0 {
			af = 1
		}
		runs[f] = af * s
		r += rf
	}
	alpha := batch.Size(r, s, lambda)
	if alpha == 0 {
		alpha = 1
	}
	runs[len(feedRates)] = alpha * s
	return runs
}

// runLeaf builds leaf f's run into its window of the merge scratch. A
// method, not a closure: the serial path must stay allocation-free.
func (t *Tree) runLeaf(f int, epoch uint64, reqs *store.Requests, work *store.Requests, lo int) {
	alpha := t.alphas[f]
	dst := &t.views[f]
	work.ViewInto(dst, lo, lo+alpha*t.cfg.NumSubORAMs)
	tl0 := t.cfg.Telemetry.Now()
	keys, err := t.Leaf(f).BuildRun(epoch, reqs, alpha, t.bases[f], dst)
	t.stLeaf.Record(epoch, f, alpha, tl0, t.cfg.Telemetry.Now())
	t.leafKeys[f], t.leafErrs[f] = keys, err
	if err != nil {
		// A dead leaf fails only its own clients: its segment becomes the
		// neutral all-dummy run and the epoch proceeds.
		fillDummyRun(dst, alpha, t.cfg.NumSubORAMs)
	}
}

// MakeBatches implements Balancer: leaves build their runs (in parallel
// unless SortWorkers == 1), the root merges them with obliv.MergeSorted and
// applies global dedupe + Theorem-3 padding for the aggregate rate R.
func (t *Tree) MakeBatches(epoch uint64, feeds []*store.Requests) (*Batches, []error, error) {
	t0 := time.Now()
	L := len(t.leaves)
	if len(feeds) != L {
		return nil, nil, fmt.Errorf("loadbalancer: tree got %d feeds, has %d leaves", len(feeds), L)
	}
	s := t.cfg.NumSubORAMs
	r := 0
	for f, q := range feeds {
		if q.BlockSize != t.cfg.BlockSize {
			return nil, nil, fmt.Errorf("loadbalancer: feed %d block size %d != %d", f, q.BlockSize, t.cfg.BlockSize)
		}
		t.bases[f] = uint64(r) // public prefix-sum sequence offsets
		r += q.Len()
	}
	// Theorem-3 padding: each leaf pads to its own rate's bound α_f (its run
	// is a valid batch set for its feed), and the root contributes an α·S
	// all-dummy run sized for the aggregate rate — the padding reservoir
	// that lets global dedupe always retain exactly α rows per subORAM.
	// The aggregate bound is the monolithic bound: aggregation must not
	// weaken the overflow guarantee.
	alpha := batch.Size(r, s, t.cfg.Lambda)
	if alpha == 0 {
		alpha = 1
	}
	runLen := alpha * s
	total := 0
	for f, q := range feeds {
		af := batch.Size(q.Len(), s, t.cfg.Lambda)
		if af == 0 {
			af = 1
		}
		t.alphas[f] = af
		t.runLens[f] = af * s
		total += af * s
	}
	t.runLens[L] = runLen
	total += runLen

	pool := t.root.pool()
	work := pool.GetRequests(total, t.cfg.BlockSize)
	work.Rec = t.cfg.Rec

	// Leaf stage: each leaf writes its α_f·S run into its public segment of
	// the merge scratch. SortWorkers == 1 keeps the build serial (the
	// zero-alloc guard path, matching the monolithic convention); otherwise
	// leaves run concurrently.
	if t.cfg.SortWorkers == 1 {
		lo := 0
		for f := 0; f < L; f++ {
			t.runLeaf(f, epoch, feeds[f], work, lo)
			lo += t.runLens[f]
		}
	} else {
		var wg sync.WaitGroup
		lo := 0
		for f := 0; f < L; f++ {
			f, off := f, lo
			lo += t.runLens[f]
			wg.Add(1)
			go func() {
				defer wg.Done()
				t.runLeaf(f, epoch, feeds[f], work, off)
			}()
		}
		wg.Wait()
	}
	dropped := 0
	anyErr, anyDrop := false, false
	for f := 0; f < L; f++ {
		dropped += len(t.leafKeys[f])
		anyErr = anyErr || t.leafErrs[f] != nil
		anyDrop = anyDrop || t.leafKeys[f] != nil
	}
	// Rare paths allocate; the steady state (no leaf failures, no overflow)
	// leaves feedErrs and droppedByFeed nil.
	var feedErrs []error
	var droppedByFeed [][]uint64
	if anyErr {
		feedErrs = make([]error, L)
		copy(feedErrs, t.leafErrs)
	}
	if anyDrop {
		droppedByFeed = make([][]uint64, L)
		copy(droppedByFeed, t.leafKeys)
	}
	for f := 0; f < L; f++ {
		t.leafErrs[f], t.leafKeys[f] = nil, nil
	}

	// Root stage: write the padding-reservoir dummy run, merge the L+1
	// already-sorted runs (O(n log n) — the whole point of the tree), then
	// the same global dedupe + keep-first-α scan as the monolithic balancer.
	// Duplicate keys across leaves — real and dummy alike (each leaf's dummy
	// keys are a prefix of the root's) — collapse here; every subORAM group
	// retains exactly α rows because the dummy run alone offers α distinct
	// keys per subORAM.
	tr0 := t.cfg.Telemetry.Now()
	rootRun := &t.views[L]
	work.ViewInto(rootRun, total-runLen, total)
	fillDummyRun(rootRun, alpha, s)
	obliv.MergeSorted(store.BySubKeyWriteSeq{Requests: work}, t.runLens)
	keep := pool.GetBits(work.Len())
	drop := pool.GetBits(work.Len())
	rootDropped, rootKeys := dedupeKeep(work, alpha, keep, drop)
	obliv.Compact(work, keep)
	pool.PutBits(keep)
	pool.PutBits(drop)
	work.Resize(runLen)
	t.telRootMerge.Observe(time.Duration(t.cfg.Telemetry.Now() - tr0))
	t.telMerges.Inc()
	t.stRoot.Record(epoch, -1, runLen, tr0, t.cfg.Telemetry.Now())
	dropped += rootDropped

	b := batchesPool.Get().(*Batches)
	*b = Batches{
		All: work, PerSub: alpha,
		Dropped: dropped, DroppedKeys: rootKeys, DroppedByFeed: droppedByFeed,
		pool: pool,
	}

	t.statsMu.Lock()
	t.last.MakeBatch = time.Since(t0)
	t.statsMu.Unlock()
	t.telBatches.Inc()
	t.telDropped.Add(uint64(dropped))
	return b, feedErrs, nil
}

// MatchResponses implements Balancer: the α·S response set is fanned back
// down the tree — each leaf level matches its own feed's original requests
// against the full (public-shape) response set, in parallel across feeds at
// the call sites.
func (t *Tree) MatchResponses(epoch uint64, responses *store.Requests, feed int, reqs *store.Requests) (*store.Requests, error) {
	tl0 := t.cfg.Telemetry.Now()
	m, err := t.root.MatchResponses(responses, reqs)
	t.stLeafMatch.Record(epoch, feed, reqs.Len(), tl0, t.cfg.Telemetry.Now())
	return m, err
}

// SubORAMFor returns the partition storing id.
func (t *Tree) SubORAMFor(id uint64) int { return t.root.SubORAMFor(id) }

// Partition splits an object set for initialization.
func (t *Tree) Partition(ids []uint64, data []byte) ([][]uint64, [][]byte, error) {
	return t.root.Partition(ids, data)
}

// BatchSize is f(R,S) for the aggregate rate — identical to the monolithic
// bound by construction.
func (t *Tree) BatchSize(r int) int { return t.root.BatchSize(r) }

// LastStats returns the last epoch's timing: the tree-wide batch build
// (leaf sorts + root merge) and the root's response match.
func (t *Tree) LastStats() Stats {
	t.statsMu.Lock()
	mb := t.last.MakeBatch
	t.statsMu.Unlock()
	return Stats{MakeBatch: mb, Match: t.root.LastStats().Match}
}
