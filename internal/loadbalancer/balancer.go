// Balancer abstracts the load-balancer plane so core.System can drive
// either shape of it: the classic monolithic balancer (one oblivious sort
// over the whole epoch) or the two-level aggregation tree (leaf balancers
// sort + locally dedupe their own clients' requests; a root merges the
// already-sorted runs). The abstraction is feed-based: a feed is one
// independent request-ingestion point — the monolithic balancer has one,
// a tree has one per leaf — and the system keeps one client queue per feed
// so a dead leaf fails only its own clients.
package loadbalancer

import (
	"snoopy/internal/store"
)

// Balancer is the epoch-facing contract of a load-balancer plane.
// Implementations: Monolithic (one feed, the original MakeBatches path) and
// Tree (per-leaf feeds aggregated through an oblivious merge).
type Balancer interface {
	// Feeds is the number of independent request-ingestion points. The
	// caller maintains one queue per feed and passes exactly Feeds()
	// per-feed request snapshots to MakeBatches.
	Feeds() int
	// MakeBatches builds one epoch's per-subORAM batches from the per-feed
	// request snapshots. epoch tags telemetry spans (0 is fine outside an
	// epoch loop). feedErrs, when non-nil, isolates per-feed failures: feed
	// f's requests are absent from the batches iff feedErrs[f] != nil, and
	// the rest of the epoch proceeds — the caller fails only that feed's
	// requests. err reports a plane-wide failure (no batches).
	MakeBatches(epoch uint64, feeds []*store.Requests) (b *Batches, feedErrs []error, err error)
	// MatchResponses obliviously matches the epoch's (concatenated healthy)
	// response set back to feed's original request snapshot, returning one
	// row per request with Data/Aux carrying the response. The result is
	// drawn from the balancer's arena; the caller owns and releases it.
	MatchResponses(epoch uint64, responses *store.Requests, feed int, reqs *store.Requests) (*store.Requests, error)
	// SubORAMFor returns the partition storing id.
	SubORAMFor(id uint64) int
	// Partition splits an object set across subORAMs for initialization.
	Partition(ids []uint64, data []byte) ([][]uint64, [][]byte, error)
	// BatchSize is Theorem 3's f(R,S) for this deployment's λ, where R is
	// the whole plane's aggregate epoch request count.
	BatchSize(r int) int
	// LastStats returns the most recent epoch's timing breakdown.
	LastStats() Stats
}

// Monolithic adapts a *LoadBalancer to the Balancer interface: one feed,
// batches built by the single oblivious sort of paper Fig. 5.
type Monolithic struct {
	LB *LoadBalancer
}

// Feeds returns 1: the monolithic balancer ingests everything itself.
func (m Monolithic) Feeds() int { return 1 }

// MakeBatches builds the epoch's batches from the single feed.
func (m Monolithic) MakeBatches(_ uint64, feeds []*store.Requests) (*Batches, []error, error) {
	b, err := m.LB.MakeBatches(feeds[0])
	return b, nil, err
}

// MatchResponses matches responses for the single feed.
func (m Monolithic) MatchResponses(_ uint64, responses *store.Requests, _ int, reqs *store.Requests) (*store.Requests, error) {
	return m.LB.MatchResponses(responses, reqs)
}

// SubORAMFor returns the partition storing id.
func (m Monolithic) SubORAMFor(id uint64) int { return m.LB.SubORAMFor(id) }

// Partition splits an object set for initialization.
func (m Monolithic) Partition(ids []uint64, data []byte) ([][]uint64, [][]byte, error) {
	return m.LB.Partition(ids, data)
}

// BatchSize is f(R,S).
func (m Monolithic) BatchSize(r int) int { return m.LB.BatchSize(r) }

// LastStats returns the last epoch's timing.
func (m Monolithic) LastStats() Stats { return m.LB.LastStats() }
