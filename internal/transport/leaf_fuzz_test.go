package transport

import (
	"bufio"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"snoopy/internal/crypt"
	"snoopy/internal/enclave"
	"snoopy/internal/loadbalancer"
	"snoopy/internal/store"
	"snoopy/internal/wirecode"
)

// tcpPair returns a connected loopback TCP pair. TCP (unlike net.Pipe)
// buffers writes, so a fuzz exchange cannot deadlock on synchronous
// rendezvous while both sides are mid-write.
func tcpPair(tb testing.TB, l net.Listener) (client, server net.Conn) {
	tb.Helper()
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := l.Accept()
		ch <- accepted{c, err}
	}()
	client, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		tb.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		client.Close()
		tb.Fatal(a.err)
	}
	return client, a.c
}

// loopbackSecure builds a pre-keyed secureConn pair over c/s, skipping the
// attested handshake: the fuzz target is the frame decoder behind it.
func loopbackSecure(tb testing.TB, c, s net.Conn) (*secureConn, *secureConn) {
	tb.Helper()
	k1, k2 := crypt.MustNewKey(), crypt.MustNewKey()
	mk := func(key crypt.Key, dir uint32) *crypt.Sealer {
		sl, err := crypt.NewSealer(key, dir)
		if err != nil {
			tb.Fatal(err)
		}
		return sl
	}
	cc := &secureConn{conn: c, br: bufio.NewReader(c), seal: mk(k1, 1), open: mk(k2, 2)}
	sc := &secureConn{conn: s, br: bufio.NewReader(s), seal: mk(k2, 2), open: mk(k1, 1)}
	return cc, sc
}

// FuzzServeLeafRunDecoder throws malformed run requests at the server side
// of the leaf-run protocol: wrong parameter counts, oversized run lengths,
// wrong frame tags, and arbitrary bytes where a wirecode batch frame
// should be. The server must answer "err" (or drop the connection) — never
// panic, and never reply "ok" to a malformed request.
func FuzzServeLeafRunDecoder(f *testing.F) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { l.Close() })
	cfg := loadbalancer.Config{BlockSize: testBlock, NumSubORAMs: 2, Lambda: 32}
	key := crypt.MustNewKey()

	// Seeds: wrong IDs count, huge runLen, truncated frame, junk payload,
	// wrong tag byte, and one well-formed-looking header with a bad body.
	good := store.NewRequests(2, testBlock)
	good.SetRow(0, store.OpRead, 1, 0, 0, 0, nil)
	goodFrame := make([]byte, 0, 256)
	goodFrame = appendReqsPlain(goodFrame, tagBatch, 7, 1, good)
	f.Add(uint8(4), uint64(8), goodFrame)
	f.Add(uint8(2), uint64(8), goodFrame)
	f.Add(uint8(4), uint64(maxRunRows+1), goodFrame)
	f.Add(uint8(4), uint64(8), goodFrame[:len(goodFrame)/2])
	f.Add(uint8(4), uint64(8), []byte{tagControl, 0xff, 0x00})
	f.Add(uint8(4), uint64(8), []byte{0x77, 0x01, 0x02, 0x03})
	f.Add(uint8(0), uint64(0), []byte{})

	f.Fuzz(func(t *testing.T, nIDs uint8, runLen uint64, second []byte) {
		if len(second) > 1<<14 {
			second = second[:1<<14]
		}
		c, s := tcpPair(t, l)
		defer c.Close()
		defer s.Close()
		cc, sc := loopbackSecure(t, c, s)
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer s.Close() // a dropped conn must surface to the client immediately
			serveLeafConn(sc, loadbalancer.NewLeaf(cfg, key, 1), ServeOptions{}.withDefaults())
		}()

		c.SetDeadline(time.Now().Add(5 * time.Second))
		ids := make([]uint64, int(nIDs)%9)
		for i := range ids {
			ids[i] = runLen
		}
		if len(ids) > 3 {
			ids[1] = 4 // α stays sane; runLen (ids[3]) carries the fuzz value
			ids[3] = runLen
		}
		malformed := len(ids) != 4 || runLen > maxRunRows
		sendErr := cc.send(&message{Kind: "run", IDs: ids})
		if sendErr == nil && len(ids) == 4 {
			sendErr = cc.writeSealed(second)
		}
		if sendErr == nil {
			reply, err := cc.recv()
			if err == nil && malformed && reply.Kind == "ok" {
				t.Fatalf("server accepted malformed run (ids=%d runLen=%d)", len(ids), runLen)
			}
			if err == nil && reply.Kind == "ok" {
				// A well-formed exchange must then produce the run frame.
				if _, err := cc.recv(); err != nil {
					t.Logf("run frame after ok: %v", err)
				}
			}
		}
		c.Close()
		s.Close()
		<-done
	})
}

// appendReqsPlain mirrors secureConn.sendReqs' plaintext layout so seeds
// can construct (and corrupt) the exact bytes the decoder expects.
func appendReqsPlain(dst []byte, tag byte, lbID, seq uint64, r *store.Requests) []byte {
	dst = append(dst, tag)
	dst = binary.LittleEndian.AppendUint64(dst, lbID)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	return wirecode.AppendRequests(dst, r)
}

// FuzzDialLeafRunReply plays a malicious leaf server against the client
// side of the protocol: RemoteLeaf.BuildRun must reject replies with wrong
// delivery tags, wrong shapes, or garbage frames — error, never panic,
// never silently accept a run of the wrong shape.
func FuzzDialLeafRunReply(f *testing.F) {
	platform := enclave.NewPlatform()
	m := enclave.Measure("snoopy-leaf")

	f.Add(uint64(0), uint64(0), 4, testBlock, false)
	f.Add(uint64(1), uint64(99), 4, testBlock, false)
	f.Add(uint64(0), uint64(0), 3, testBlock, false)
	f.Add(uint64(0), uint64(0), 4, testBlock-1, false)
	f.Add(uint64(0), uint64(0), 4, testBlock, true)

	f.Fuzz(func(t *testing.T, lbDelta, seqDelta uint64, replyRows, replyBlock int, garbage bool) {
		if replyRows < 0 || replyRows > 1024 || replyBlock < 1 || replyBlock > 512 {
			t.Skip()
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()

		srvDone := make(chan struct{})
		go func() {
			defer close(srvDone)
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			sc, err := serverHandshake(conn, platform, m)
			if err != nil {
				return
			}
			req, err := sc.recv() // "run" control frame
			if err != nil || req.Kind != "run" {
				return
			}
			b, err := sc.recv() // batch frame carrying the delivery tag
			if err != nil {
				return
			}
			if err := sc.send(&message{Kind: "ok"}); err != nil {
				return
			}
			if garbage {
				sc.writeSealed([]byte{0xee, 0xbe, 0xef})
				return
			}
			resp := store.NewRequests(replyRows, replyBlock)
			sc.sendReqs(tagResp, b.lbID+lbDelta, b.seq+seqDelta, resp)
		}()

		rl, err := DialLeafOptions(l.Addr().String(), platform, m,
			Options{RPCTimeout: 5 * time.Second}.NoRetries())
		if err != nil {
			t.Skip() // listener race; nothing to check
		}
		defer rl.Close()

		reqs := store.NewRequests(2, testBlock)
		reqs.SetRow(0, store.OpRead, 1, 0, 0, 0, nil)
		dst := store.NewRequests(4, testBlock)
		_, err = rl.BuildRun(1, reqs, 4, 0, dst)

		tampered := garbage || lbDelta != 0 || seqDelta != 0 || replyRows != dst.Len() || replyBlock != testBlock
		if tampered && err == nil {
			t.Fatalf("BuildRun accepted tampered reply (lbΔ=%d seqΔ=%d shape %d×%d garbage=%v)",
				lbDelta, seqDelta, replyRows, replyBlock, garbage)
		}
		<-srvDone
	})
}
