// Package transport carries Snoopy's load-balancer ↔ subORAM protocol over
// TCP, modeling the paper's deployment (§3.1): every channel is established
// with remote attestation — the client verifies the server enclave's
// measurement before trusting it — and all traffic is encrypted with an
// authenticated scheme under a per-channel key with monotone nonces
// (replay-proof).
//
// Handshake: client sends its X25519 public key; the server replies with
// its own public key plus an attestation report binding the enclave
// measurement to a digest of the handshake transcript. Both sides derive
// the shared secret and split it into two directional sealing keys.
//
// Failure model (§3.1, §9: machines fail): every RPC runs under a deadline,
// and a RemoteSubORAM that loses its connection redials and re-runs the
// full attested handshake under exponential backoff with jitter, within a
// bounded retry budget. Batch frames carry an (lbID, seq) delivery tag; the
// server remembers the last response per load balancer and answers a
// redelivered batch by replaying the stored response instead of re-applying
// it, so an ambiguous failure (response lost in flight) cannot double-apply
// writes — the at-most-once property linearizability needs. All timeout and
// retry parameters derive from public configuration (Options), never from
// request contents, so retry timing leaks nothing the batch schedule does
// not already make public.
package transport

import (
	"bufio"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net"
	"sync"
	"time"

	"snoopy/internal/arena"
	"snoopy/internal/crypt"
	"snoopy/internal/enclave"
	"snoopy/internal/store"
	"snoopy/internal/telemetry"
	"snoopy/internal/wirecode"
)

// maxFrame bounds a single message (64 MiB) to stop a malicious peer from
// forcing unbounded allocation.
const maxFrame = 64 << 20

// Envelope tags: the first plaintext byte of every sealed frame selects the
// payload codec. Control traffic (handshake-adjacent init/ok/err) stays gob
// — it is rare and schema-flexible; the per-epoch batch and response frames
// use the fixed-layout wirecode codec, whose frame length is a closed-form
// function of the public batch size (see internal/wirecode). Batch and
// response frames carry a fixed 16-byte (lbID, seq) delivery tag between
// the envelope tag and the wirecode frame, so the frame length stays a
// function of public parameters only.
const (
	tagControl = 0x00 // gob-encoded message
	tagBatch   = 0x01 // delivery tag + wirecode request batch
	tagResp    = 0x02 // delivery tag + wirecode response batch
	// Grouped frames carry one epoch's worth of batches (one per load
	// balancer) under a single delivery tag and a single AEAD seal/open:
	// delivery tag, a u32 batch count, then count length-prefixed wirecode
	// frames. Every length is a closed-form function of the public batch
	// sizes, so grouping changes neither the trace shape nor its sizes.
	tagBatchN = 0x03 // delivery tag + u32 count + count wirecode request batches
	tagRespN  = 0x04 // delivery tag + u32 count + count wirecode response batches
)

// deliveryTagLen is the fixed (lbID, seq) prefix on batch/response frames.
const deliveryTagLen = 16

// maxBatchesPerFrame bounds the batch count of a grouped frame so a
// malicious peer cannot force unbounded slice allocation. Far above any
// real deployment's load-balancer count (cf. maxTrackedLBs).
const maxBatchesPerFrame = 1024

// ErrClosed is returned for RPCs on a RemoteSubORAM after Close.
var ErrClosed = errors.New("transport: connection closed")

// ErrStale marks a batch delivery whose (lbID, seq) tag is older than the
// last tag the server applied for that load balancer — it can no longer be
// answered exactly-once, so it is rejected rather than re-applied. Distinct
// from partition errors so the server's telemetry can count stale rejects
// separately from real failures.
var ErrStale = errors.New("transport: stale batch delivery")

// RemoteError is an application-level error reported by the server's
// partition (as opposed to a connection failure). RemoteErrors are never
// retried: the channel is healthy and a retry would re-run a failed
// partition operation.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }

// Options sets the failure-handling parameters of a dialed connection. All
// values are public deployment configuration: timeouts and retry schedules
// are functions of these alone, never of request contents.
type Options struct {
	// DialTimeout bounds TCP connect plus the attested handshake
	// (default 5s).
	DialTimeout time.Duration
	// RPCTimeout bounds one BatchAccess attempt — send, remote execution,
	// and response read (default 30s).
	RPCTimeout time.Duration
	// InitTimeout bounds one Init attempt; Init ships the whole partition,
	// so it gets its own, larger budget (default max(RPCTimeout, 2m)).
	InitTimeout time.Duration
	// MaxRetries is how many times a failed RPC redials and retries after
	// the first attempt (default 4; negative disables retries).
	MaxRetries int
	// RetryBase and RetryMax shape the exponential backoff between
	// attempts: sleep_k = min(RetryBase·2^k, RetryMax), each multiplied by
	// a uniform jitter in [0.5, 1.5) (defaults 50ms and 2s).
	RetryBase time.Duration
	// RetryMax caps the backoff (default 2s).
	RetryMax time.Duration
	// Dialer, when non-nil, replaces net.DialTimeout — fault-injection
	// tests wrap connections here.
	Dialer func(network, addr string, timeout time.Duration) (net.Conn, error)
	// Telemetry, when non-nil, records client-side RPC latency and
	// retry/reconnect/failure counters. Recording sites fire per RPC and
	// per retry attempt — a function of the public epoch schedule and of
	// connection failures the network adversary observes directly.
	Telemetry *telemetry.Registry

	maxRetriesSet bool // distinguishes MaxRetries 0 = default from "no retries"
}

// NoRetries returns o with the retry budget set to zero attempts beyond
// the first.
func (o Options) NoRetries() Options {
	o.MaxRetries = 0
	o.maxRetriesSet = true
	return o
}

// WithRetries returns o with an explicit retry budget (0 is honored, unlike
// assigning the field directly, where 0 means "default").
func (o Options) WithRetries(n int) Options {
	o.MaxRetries = n
	o.maxRetriesSet = true
	return o
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RPCTimeout <= 0 {
		o.RPCTimeout = 30 * time.Second
	}
	if o.InitTimeout <= 0 {
		o.InitTimeout = 2 * time.Minute
		if o.RPCTimeout > o.InitTimeout {
			o.InitTimeout = o.RPCTimeout
		}
	}
	if o.MaxRetries == 0 && !o.maxRetriesSet {
		o.MaxRetries = 4
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 50 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 2 * time.Second
	}
	if o.Dialer == nil {
		o.Dialer = net.DialTimeout
	}
	return o
}

// OptionsForEpoch derives RPC deadlines from the deployment's public epoch
// duration (core.Config.EpochDuration): a batch that takes much longer
// than a handful of epochs is stuck, not slow. The floor keeps short-epoch
// deployments from timing out on honest large batches.
func OptionsForEpoch(epoch time.Duration) Options {
	o := Options{}
	if epoch > 0 {
		rpc := 20 * epoch
		if rpc < 2*time.Second {
			rpc = 2 * time.Second
		}
		o.RPCTimeout = rpc
	}
	return o.withDefaults()
}

// message is the protocol envelope. Only the exported fields travel in gob
// control frames; reqs carries a batch/response decoded from a wirecode
// frame (or to be encoded into one) and never passes through gob; reqsN
// carries the batches of a grouped (tagBatchN/tagRespN) frame. lbID and
// seq are the delivery tag of batch/response frames.
type message struct {
	Kind  string // "init" | "batch" | "batchN" | "ok" | "resp" | "respN" | "err"
	IDs   []uint64
	Data  []byte
	Error string

	reqs  *store.Requests
	reqsN []*store.Requests
	lbID  uint64
	seq   uint64
}

// secureConn frames tagged messages through AEAD sealing. Send and receive
// buffers are reused across messages: the steady-state batch path performs
// no per-message allocation beyond the pooled decode target. Sends are
// serialized by sendMu; receives assume a single reader (the serve loop on
// the server, the RemoteSubORAM mutex on the client).
type secureConn struct {
	conn net.Conn
	br   *bufio.Reader

	sendMu sync.Mutex
	seal   *crypt.Sealer // our sending direction
	ptBuf  []byte        // plaintext staging (tag + payload)
	ctBuf  []byte        // length prefix + sealed frame

	open  *crypt.Sealer // peer's sending direction
	rcvCt []byte        // ciphertext receive buffer
	rcvPt []byte        // opened plaintext (valid until next recv)
}

// setDeadline arms (or, with zero, disarms) an absolute I/O deadline on the
// underlying connection covering both directions.
func (c *secureConn) setDeadline(d time.Duration) {
	if d > 0 {
		c.conn.SetDeadline(time.Now().Add(d))
	} else {
		c.conn.SetDeadline(time.Time{})
	}
}

// send transmits a gob control message (tagControl).
func (c *secureConn) send(m *message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	w := sliceWriter{b: append(c.ptBuf[:0], tagControl)}
	if err := gob.NewEncoder(&w).Encode(m); err != nil {
		return err
	}
	c.ptBuf = w.b
	return c.writeSealed(c.ptBuf)
}

// sendReqs transmits a request or response batch as a delivery-tagged
// wirecode frame. The plaintext buffer is pre-sized from the known frame
// length, so steady-state encoding is a pure copy.
func (c *secureConn) sendReqs(tag byte, lbID, seq uint64, r *store.Requests) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	need := 1 + deliveryTagLen + wirecode.FrameLen(r.Len(), r.BlockSize)
	if cap(c.ptBuf) < need {
		c.ptBuf = make([]byte, 0, need)
	}
	c.ptBuf = append(c.ptBuf[:0], tag)
	c.ptBuf = binary.LittleEndian.AppendUint64(c.ptBuf, lbID)
	c.ptBuf = binary.LittleEndian.AppendUint64(c.ptBuf, seq)
	c.ptBuf = wirecode.AppendRequests(c.ptBuf, r)
	return c.writeSealed(c.ptBuf)
}

// sendReqsN transmits one epoch's batches as a single grouped frame: one
// delivery tag, one AEAD seal, one write for all of them. The plaintext
// buffer is pre-sized from the known frame lengths, so steady-state
// encoding is a pure copy.
func (c *secureConn) sendReqsN(tag byte, lbID, seq uint64, rs []*store.Requests) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	need := 1 + deliveryTagLen + 4
	for _, r := range rs {
		need += 4 + wirecode.FrameLen(r.Len(), r.BlockSize)
	}
	if cap(c.ptBuf) < need {
		c.ptBuf = make([]byte, 0, need)
	}
	b := append(c.ptBuf[:0], tag)
	b = binary.LittleEndian.AppendUint64(b, lbID)
	b = binary.LittleEndian.AppendUint64(b, seq)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(rs)))
	for _, r := range rs {
		b = binary.LittleEndian.AppendUint32(b, uint32(wirecode.FrameLen(r.Len(), r.BlockSize)))
		b = wirecode.AppendRequests(b, r)
	}
	c.ptBuf = b
	return c.writeSealed(c.ptBuf)
}

// writeSealed seals pt into the reused ciphertext buffer behind a 4-byte
// big-endian length prefix and writes the whole frame in one call.
func (c *secureConn) writeSealed(pt []byte) error {
	c.ctBuf = append(c.ctBuf[:0], 0, 0, 0, 0)
	c.ctBuf = c.seal.SealAppend(c.ctBuf, pt, nil)
	binary.BigEndian.PutUint32(c.ctBuf[:4], uint32(len(c.ctBuf)-4))
	_, err := c.conn.Write(c.ctBuf)
	return err
}

func (c *secureConn) recv() (*message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	if cap(c.rcvCt) < n {
		c.rcvCt = make([]byte, n)
	}
	buf := c.rcvCt[:n]
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return nil, err
	}
	pt, err := c.open.OpenAppend(c.rcvPt[:0], buf, nil)
	if err != nil {
		return nil, err
	}
	c.rcvPt = pt // retain grown capacity for the next message
	if len(pt) < 1 {
		return nil, fmt.Errorf("transport: empty frame")
	}
	tag, payload := pt[0], pt[1:]
	switch tag {
	case tagControl:
		var m message
		if err := gob.NewDecoder(newByteReader(payload)).Decode(&m); err != nil {
			return nil, err
		}
		return &m, nil
	case tagBatch, tagResp:
		if len(payload) < deliveryTagLen {
			return nil, fmt.Errorf("transport: frame too short for delivery tag")
		}
		lbID := binary.LittleEndian.Uint64(payload)
		seq := binary.LittleEndian.Uint64(payload[8:])
		r, err := wirecode.DecodeRequests(payload[deliveryTagLen:], arena.Default)
		if err != nil {
			return nil, err
		}
		kind := "batch"
		if tag == tagResp {
			kind = "resp"
		}
		return &message{Kind: kind, reqs: r, lbID: lbID, seq: seq}, nil
	case tagBatchN, tagRespN:
		if len(payload) < deliveryTagLen+4 {
			return nil, fmt.Errorf("transport: frame too short for grouped delivery tag")
		}
		lbID := binary.LittleEndian.Uint64(payload)
		seq := binary.LittleEndian.Uint64(payload[8:])
		count := binary.LittleEndian.Uint32(payload[deliveryTagLen:])
		if count > maxBatchesPerFrame {
			return nil, fmt.Errorf("transport: grouped frame of %d batches exceeds limit", count)
		}
		rest := payload[deliveryTagLen+4:]
		rs := make([]*store.Requests, count)
		for i := range rs {
			if len(rest) < 4 {
				putAll(rs[:i])
				return nil, fmt.Errorf("transport: grouped frame truncated at batch %d", i)
			}
			fl := int(binary.LittleEndian.Uint32(rest))
			if fl < 0 || fl > len(rest)-4 {
				putAll(rs[:i])
				return nil, fmt.Errorf("transport: grouped frame sub-length %d out of range", fl)
			}
			r, err := wirecode.DecodeRequests(rest[4:4+fl], arena.Default)
			if err != nil {
				putAll(rs[:i])
				return nil, err
			}
			rs[i] = r
			rest = rest[4+fl:]
		}
		kind := "batchN"
		if tag == tagRespN {
			kind = "respN"
		}
		return &message{Kind: kind, reqsN: rs, lbID: lbID, seq: seq}, nil
	default:
		return nil, fmt.Errorf("transport: unknown frame tag %#x", tag)
	}
}

// putAll releases a prefix of decoded batches back to the arena (grouped
// frame decode-error cleanup).
func putAll(rs []*store.Requests) {
	for _, r := range rs {
		arena.Default.PutRequests(r)
	}
}

type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func newByteReader(b []byte) io.Reader { return &byteReader{b: b} }

type byteReader struct {
	b []byte
	i int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

// deriveKeys splits an ECDH shared secret into two directional keys.
func deriveKeys(secret []byte) (clientToServer, serverToClient crypt.Key) {
	a := sha256.Sum256(append([]byte("c2s|"), secret...))
	b := sha256.Sum256(append([]byte("s2c|"), secret...))
	return crypt.Key(a), crypt.Key(b)
}

// Partition is the server-side subORAM surface: a plain *suboram.SubORAM
// or a durability-wrapped one (*persist.Durable).
type Partition interface {
	Init(ids []uint64, data []byte) error
	BatchAccess(reqs *store.Requests) (*store.Requests, error)
}

// ServeOptions sets the server-side failure-handling parameters.
type ServeOptions struct {
	// HandshakeTimeout bounds the attested handshake on a fresh connection
	// so half-open clients cannot pin goroutines (default 10s).
	HandshakeTimeout time.Duration
	// WriteTimeout bounds each response write so a client that stops
	// reading cannot wedge the serve loop (default 30s).
	WriteTimeout time.Duration
	// IdleTimeout, when positive, closes a connection with no inbound
	// frames for that long. Zero keeps idle connections forever (load
	// balancers legitimately idle between epochs).
	IdleTimeout time.Duration
	// Replay, when non-nil, carries the at-most-once delivery cache across
	// ServeSubORAM incarnations (a restarted listener in the same process).
	// Nil creates a fresh cache.
	Replay *ReplayCache
	// Telemetry, when non-nil, records server-side serving counters
	// (connections, batches, replays, stale rejects, pings, inits) and
	// batch service latency. Every site fires once per protocol message —
	// events the host already observes on the wire.
	Telemetry *telemetry.Registry

	tel serveTel // instruments resolved by withDefaults
}

// serveTel holds the server-side instruments, resolved once per listener so
// the serve loop does no registry lookups. All nil (no-ops) without a
// registry.
type serveTel struct {
	conns    *telemetry.Counter
	batches  *telemetry.Counter
	replays  *telemetry.Counter
	stale    *telemetry.Counter
	pings    *telemetry.Counter
	inits    *telemetry.Counter
	batchDur *telemetry.Histogram
}

func (o ServeOptions) withDefaults() ServeOptions {
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 10 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.Replay == nil {
		o.Replay = NewReplayCache()
	}
	o.tel = serveTel{
		conns:    o.Telemetry.Counter("transport_conns_total"),
		batches:  o.Telemetry.Counter("transport_batches_served_total"),
		replays:  o.Telemetry.Counter("transport_replays_total"),
		stale:    o.Telemetry.Counter("transport_stale_rejects_total"),
		pings:    o.Telemetry.Counter("transport_pings_total"),
		inits:    o.Telemetry.Counter("transport_init_total"),
		batchDur: o.Telemetry.Histogram("transport_batch_serve", nil),
	}
	return o
}

// maxTrackedLBs bounds the replay cache: one stored response per load
// balancer, evicting the least recently delivered entry beyond the cap.
const maxTrackedLBs = 64

// ReplayCache is the server's at-most-once delivery record: the highest
// delivery tag applied per load balancer, with the stored response that a
// redelivery of the same tag replays. It also serializes partition access
// across connections, which the paper's fixed batch order requires anyway.
type ReplayCache struct {
	mu   sync.Mutex
	last map[uint64]*replayEntry
	tick uint64 // logical clock for LRU eviction
}

type replayEntry struct {
	seq   uint64
	resp  *store.Requests   // private clone, not arena-backed (single delivery)
	respN []*store.Requests // private clones (grouped delivery)
	used  uint64
}

// NewReplayCache returns an empty cache.
func NewReplayCache() *ReplayCache { return &ReplayCache{last: make(map[uint64]*replayEntry)} }

// apply resolves one tagged batch delivery against the cache, holding the
// cache lock across the partition call so "look up, apply, record" is
// atomic with respect to other connections:
//
//   - seq > last applied for this lbID → apply the batch, record the
//     response, return it;
//   - seq == last applied → redelivery after an ambiguous failure: replay
//     the stored response without touching the partition;
//   - seq < last applied → a stale delivery that can no longer be answered
//     exactly-once; reject it.
func (rc *ReplayCache) apply(sub Partition, m *message) (*store.Requests, bool, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.tick++
	e := rc.last[m.lbID]
	if e != nil {
		e.used = rc.tick
		if m.seq == e.seq {
			if e.resp == nil {
				return nil, false, fmt.Errorf("%w: batch %d for lb %#x redelivered as a different frame kind", ErrStale, m.seq, m.lbID)
			}
			return e.resp, true, nil
		}
		if m.seq < e.seq {
			return nil, false, fmt.Errorf("%w: batch %d for lb %#x (last applied %d)", ErrStale, m.seq, m.lbID, e.seq)
		}
	}
	out, err := sub.BatchAccess(m.reqs)
	if err != nil {
		return nil, false, err
	}
	if e == nil {
		e = &replayEntry{used: rc.tick}
		rc.last[m.lbID] = e
		rc.evictLocked()
	}
	e.seq = m.seq
	e.resp = out.Clone() // survives the arena release of out
	e.respN = nil
	return out, false, nil
}

// applyN is apply for a grouped delivery: the batches are applied to the
// partition in slice order under one delivery tag, all-or-nothing from the
// client's perspective. A partition error after a prefix has been applied
// is reported as an error for the whole group (the same ambiguous-outcome
// contract a lost single-batch response already has); the entry is not
// recorded, so the delivery is never replayed as a success. The returned
// slice is freshly allocated and owned by the caller; non-replayed
// responses are arena-backed, replayed ones are the cache's private clones.
func (rc *ReplayCache) applyN(sub Partition, m *message) ([]*store.Requests, bool, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.tick++
	e := rc.last[m.lbID]
	if e != nil {
		e.used = rc.tick
		if m.seq == e.seq {
			if e.respN == nil || len(e.respN) != len(m.reqsN) {
				return nil, false, fmt.Errorf("%w: group %d for lb %#x redelivered with a different shape", ErrStale, m.seq, m.lbID)
			}
			return e.respN, true, nil
		}
		if m.seq < e.seq {
			return nil, false, fmt.Errorf("%w: group %d for lb %#x (last applied %d)", ErrStale, m.seq, m.lbID, e.seq)
		}
	}
	outs := make([]*store.Requests, len(m.reqsN))
	for i, r := range m.reqsN {
		out, err := sub.BatchAccess(r)
		if err != nil {
			putAll(outs[:i])
			return nil, false, fmt.Errorf("batch %d of %d: %w", i, len(m.reqsN), err)
		}
		outs[i] = out
	}
	if e == nil {
		e = &replayEntry{used: rc.tick}
		rc.last[m.lbID] = e
		rc.evictLocked()
	}
	e.seq = m.seq
	e.resp = nil
	e.respN = make([]*store.Requests, len(outs))
	for i, out := range outs {
		e.respN[i] = out.Clone() // survives the arena release of outs
	}
	return outs, false, nil
}

// initLocked serializes Init against in-flight batches and resets the
// delivery record: a re-initialized partition starts a fresh history.
func (rc *ReplayCache) init(sub Partition, ids []uint64, data []byte) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if err := sub.Init(ids, data); err != nil {
		return err
	}
	clear(rc.last)
	return nil
}

func (rc *ReplayCache) evictLocked() {
	for len(rc.last) > maxTrackedLBs {
		var victim uint64
		oldest := ^uint64(0)
		for id, e := range rc.last {
			if e.used < oldest {
				oldest, victim = e.used, id
			}
		}
		delete(rc.last, victim)
	}
}

// ServeSubORAM accepts connections on l and serves sub until the listener
// closes. Each connection performs the attested handshake with the given
// platform and measurement.
func ServeSubORAM(l net.Listener, sub Partition, platform *enclave.Platform, m enclave.Measurement) error {
	return ServeSubORAMOptions(l, sub, platform, m, ServeOptions{})
}

// ServeSubORAMOptions is ServeSubORAM with explicit failure-handling
// parameters.
func ServeSubORAMOptions(l net.Listener, sub Partition, platform *enclave.Platform, m enclave.Measurement, opts ServeOptions) error {
	opts = opts.withDefaults()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(opts.HandshakeTimeout))
			sc, err := serverHandshake(conn, platform, m)
			if err != nil {
				return
			}
			conn.SetDeadline(time.Time{})
			opts.tel.conns.Inc()
			serveConn(sc, sub, opts)
		}()
	}
}

func serveConn(sc *secureConn, sub Partition, opts ServeOptions) {
	for {
		if opts.IdleTimeout > 0 {
			sc.conn.SetReadDeadline(time.Now().Add(opts.IdleTimeout))
		}
		m, err := sc.recv()
		if err != nil {
			return
		}
		sc.conn.SetReadDeadline(time.Time{})
		sc.conn.SetWriteDeadline(time.Now().Add(opts.WriteTimeout))
		switch m.Kind {
		case "ping":
			// Liveness probe for the failure detector: proves the attested
			// channel and the serve loop are alive. Carries and reveals
			// nothing — probe timing is public deployment configuration.
			opts.tel.pings.Inc()
			if err := sc.send(&message{Kind: "ok"}); err != nil {
				return
			}
		case "init":
			opts.tel.inits.Inc()
			reply := message{Kind: "ok"}
			if err := opts.Replay.init(sub, m.IDs, m.Data); err != nil {
				reply = message{Kind: "err", Error: err.Error()}
			}
			if err := sc.send(&reply); err != nil {
				return
			}
		case "batch":
			// One counter bump and one latency observation per batch frame
			// — events the host already sees on the wire. Replays and stale
			// rejects (at-most-once bookkeeping) are counted separately.
			opts.tel.batches.Inc()
			tb0 := opts.Telemetry.Now()
			out, replayed, err := opts.Replay.apply(sub, m)
			arena.Default.PutRequests(m.reqs) // batch consumed
			if err != nil {
				if errors.Is(err, ErrStale) {
					opts.tel.stale.Inc()
				}
				if err := sc.send(&message{Kind: "err", Error: err.Error()}); err != nil {
					return
				}
				sc.conn.SetWriteDeadline(time.Time{})
				continue
			}
			if replayed {
				opts.tel.replays.Inc()
			}
			opts.tel.batchDur.Observe(time.Duration(opts.Telemetry.Now() - tb0))
			sendErr := sc.sendReqs(tagResp, m.lbID, m.seq, out)
			if !replayed {
				arena.Default.PutRequests(out)
			}
			if sendErr != nil {
				return
			}
		case "batchN":
			// A grouped frame counts once per contained batch so the served
			// counter keeps its meaning across framing modes.
			opts.tel.batches.Add(uint64(len(m.reqsN)))
			tb0 := opts.Telemetry.Now()
			outs, replayed, err := opts.Replay.applyN(sub, m)
			putAll(m.reqsN) // batches consumed
			if err != nil {
				if errors.Is(err, ErrStale) {
					opts.tel.stale.Inc()
				}
				if err := sc.send(&message{Kind: "err", Error: err.Error()}); err != nil {
					return
				}
				sc.conn.SetWriteDeadline(time.Time{})
				continue
			}
			if replayed {
				opts.tel.replays.Inc()
			}
			opts.tel.batchDur.Observe(time.Duration(opts.Telemetry.Now() - tb0))
			sendErr := sc.sendReqsN(tagRespN, m.lbID, m.seq, outs)
			if !replayed {
				putAll(outs)
			}
			if sendErr != nil {
				return
			}
		default:
			if err := sc.send(&message{Kind: "err", Error: "unknown message kind"}); err != nil {
				return
			}
		}
		sc.conn.SetWriteDeadline(time.Time{})
	}
}

func serverHandshake(conn net.Conn, platform *enclave.Platform, m enclave.Measurement) (*secureConn, error) {
	br := bufio.NewReader(conn)
	// Receive client public key (32 bytes).
	var clientPub [32]byte
	if _, err := io.ReadFull(br, clientPub[:]); err != nil {
		return nil, err
	}
	curve := ecdh.X25519()
	priv, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	peer, err := curve.NewPublicKey(clientPub[:])
	if err != nil {
		return nil, err
	}
	secret, err := priv.ECDH(peer)
	if err != nil {
		return nil, err
	}
	// Attest to the transcript: both public keys.
	transcript := crypt.DigestOf(append(append([]byte{}, clientPub[:]...), priv.PublicKey().Bytes()...))
	report := platform.Attest(m, transcript)
	// Send server public key + report (gob, in the clear — it is public).
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(struct {
		Pub    []byte
		Report enclave.Report
	}{priv.PublicKey().Bytes(), report}); err != nil {
		return nil, err
	}
	c2s, s2c := deriveKeys(secret)
	sealOut, err := crypt.NewSealer(s2c, 2)
	if err != nil {
		return nil, err
	}
	sealIn, err := crypt.NewSealer(c2s, 1)
	if err != nil {
		return nil, err
	}
	return &secureConn{conn: conn, br: br, seal: sealOut, open: sealIn}, nil
}

// RemoteSubORAM is a core.SubORAMClient reached over an attested channel.
// On connection failure it redials and re-attests under exponential backoff
// within Options' retry budget; redelivered batches are answered from the
// server's replay cache, never re-applied.
type RemoteSubORAM struct {
	addr     string
	platform *enclave.Platform
	want     enclave.Measurement
	opts     Options

	lbID uint64 // this handle's delivery-stream identity

	mu  sync.Mutex // serializes RPCs (incl. reconnects) on the channel
	sc  *secureConn
	seq uint64 // delivery tag of the batch in flight

	outScratch []*store.Requests // BatchAccessN result slice, reused under mu

	connMu    sync.Mutex // guards sc swaps against Close (which skips mu)
	closed    chan struct{}
	closeOnce sync.Once

	// Telemetry instruments, resolved once at dial; all nil (no-ops)
	// without Options.Telemetry.
	telRPC        *telemetry.Histogram
	telRetries    *telemetry.Counter
	telReconnects *telemetry.Counter
	telFailures   *telemetry.Counter
}

// Dial connects to a subORAM server with default Options, verifying that
// the peer attests to the expected measurement on the given platform.
func Dial(addr string, platform *enclave.Platform, want enclave.Measurement) (*RemoteSubORAM, error) {
	return DialOptions(addr, platform, want, Options{})
}

// DialOptions is Dial with explicit failure-handling parameters. The
// initial connection is attempted once (callers want fail-fast feedback on
// address or attestation mistakes); the retry budget applies to later
// reconnects.
func DialOptions(addr string, platform *enclave.Platform, want enclave.Measurement, opts Options) (*RemoteSubORAM, error) {
	opts = opts.withDefaults()
	var lbID [8]byte
	if _, err := rand.Read(lbID[:]); err != nil {
		return nil, err
	}
	r := &RemoteSubORAM{
		addr:     addr,
		platform: platform,
		want:     want,
		opts:     opts,
		lbID:     binary.LittleEndian.Uint64(lbID[:]),
		closed:   make(chan struct{}),

		telRPC:        opts.Telemetry.Histogram("transport_rpc", nil),
		telRetries:    opts.Telemetry.Counter("transport_retries_total"),
		telReconnects: opts.Telemetry.Counter("transport_reconnects_total"),
		telFailures:   opts.Telemetry.Counter("transport_rpc_failures_total"),
	}
	sc, err := r.connect()
	if err != nil {
		return nil, err
	}
	r.setConn(sc)
	return r, nil
}

// connect dials and runs the attested handshake under DialTimeout.
func (r *RemoteSubORAM) connect() (*secureConn, error) {
	conn, err := r.opts.Dialer("tcp", r.addr, r.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(r.opts.DialTimeout))
	sc, err := clientHandshake(conn, r.platform, r.want)
	if err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	return sc, nil
}

func (r *RemoteSubORAM) setConn(sc *secureConn) {
	r.connMu.Lock()
	r.sc = sc
	r.connMu.Unlock()
}

func (r *RemoteSubORAM) isClosed() bool {
	select {
	case <-r.closed:
		return true
	default:
		return false
	}
}

// backoff sleeps the k-th retry delay (exponential, jittered, capped) or
// returns early if the handle closes. All inputs are public configuration.
func (r *RemoteSubORAM) backoff(k int) error {
	d := r.opts.RetryBase << uint(k)
	if d <= 0 || d > r.opts.RetryMax {
		d = r.opts.RetryMax
	}
	d = time.Duration(float64(d) * (0.5 + mrand.Float64()))
	select {
	case <-time.After(d):
		return nil
	case <-r.closed:
		return ErrClosed
	}
}

// withRetry runs fn against a live connection, redialing (with the full
// attested handshake) and retrying on connection errors within the retry
// budget. timeout bounds each attempt's I/O. Application-level errors from
// the server (RemoteError) and local protocol violations are returned
// without retry.
func (r *RemoteSubORAM) withRetry(timeout time.Duration, fn func(sc *secureConn) error) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			// Counted per re-attempt: retries happen only on connection
			// failures, which the network adversary observes directly.
			r.telRetries.Inc()
		}
		if r.isClosed() {
			if lastErr != nil {
				return fmt.Errorf("%w (last error: %v)", ErrClosed, lastErr)
			}
			return ErrClosed
		}
		sc := r.sc
		if sc == nil {
			var err error
			sc, err = r.connect()
			if err != nil {
				lastErr = err
				if attempt >= r.opts.MaxRetries {
					break
				}
				if err := r.backoff(attempt); err != nil {
					return err
				}
				continue
			}
			r.setConn(sc)
			r.telReconnects.Inc()
		}
		sc.setDeadline(timeout)
		err := fn(sc)
		sc.setDeadline(0)
		if err == nil {
			return nil
		}
		var re *RemoteError
		if errors.As(err, &re) {
			return err
		}
		// Connection-level failure: drop the channel; the next attempt
		// redials and re-attests.
		sc.conn.Close()
		r.setConn(nil)
		lastErr = err
		if attempt >= r.opts.MaxRetries {
			break
		}
		if err := r.backoff(attempt); err != nil {
			return err
		}
	}
	r.telFailures.Inc()
	return fmt.Errorf("transport: %s: %d attempts failed: %w", r.addr, r.opts.MaxRetries+1, lastErr)
}

func clientHandshake(conn net.Conn, platform *enclave.Platform, want enclave.Measurement) (*secureConn, error) {
	curve := ecdh.X25519()
	priv, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(priv.PublicKey().Bytes()); err != nil {
		return nil, err
	}
	br := bufio.NewReader(conn)
	var hello struct {
		Pub    []byte
		Report enclave.Report
	}
	if err := gob.NewDecoder(br).Decode(&hello); err != nil {
		return nil, err
	}
	if err := platform.Verify(hello.Report, want); err != nil {
		return nil, fmt.Errorf("transport: attestation failed: %w", err)
	}
	transcript := crypt.DigestOf(append(append([]byte{}, priv.PublicKey().Bytes()...), hello.Pub...))
	if hello.Report.KeyHash != transcript {
		return nil, fmt.Errorf("transport: attestation does not bind this channel")
	}
	peer, err := curve.NewPublicKey(hello.Pub)
	if err != nil {
		return nil, err
	}
	secret, err := priv.ECDH(peer)
	if err != nil {
		return nil, err
	}
	c2s, s2c := deriveKeys(secret)
	sealOut, err := crypt.NewSealer(c2s, 1)
	if err != nil {
		return nil, err
	}
	sealIn, err := crypt.NewSealer(s2c, 2)
	if err != nil {
		return nil, err
	}
	return &secureConn{conn: conn, br: br, seal: sealOut, open: sealIn}, nil
}

// Ping performs one lightweight liveness probe over the attested channel,
// redialing (with the full attested handshake) if the channel is down.
// timeout bounds the whole probe; zero uses DialTimeout. A failed probe is
// reported, never retried — the failure detector layered above owns the
// probe schedule, and probe timing derives from public configuration only.
func (r *RemoteSubORAM) Ping(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = r.opts.DialTimeout
	}
	if r.isClosed() {
		return ErrClosed
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sc := r.sc
	if sc == nil {
		var err error
		sc, err = r.connect()
		if err != nil {
			return err
		}
		r.setConn(sc)
	}
	sc.setDeadline(timeout)
	err := func() error {
		if err := sc.send(&message{Kind: "ping"}); err != nil {
			return err
		}
		reply, err := sc.recv()
		if err != nil {
			return err
		}
		if reply.Kind != "ok" {
			return fmt.Errorf("transport: unexpected ping reply %q", reply.Kind)
		}
		return nil
	}()
	sc.setDeadline(0)
	if err != nil {
		sc.conn.Close()
		r.setConn(nil)
	}
	return err
}

// Init implements core.SubORAMClient. Init is idempotent on the server (it
// replaces the partition contents and resets the delivery record), so
// retrying an ambiguous failure is safe.
func (r *RemoteSubORAM) Init(ids []uint64, data []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.withRetry(r.opts.InitTimeout, func(sc *secureConn) error {
		if err := sc.send(&message{Kind: "init", IDs: ids, Data: data}); err != nil {
			return err
		}
		reply, err := sc.recv()
		if err != nil {
			return err
		}
		if reply.Kind == "err" {
			return &RemoteError{Msg: reply.Error}
		}
		return nil
	})
}

// BatchAccess implements core.SubORAMClient. The returned responses are
// drawn from the process-wide arena; the caller owns them and may release
// them back via arena.Default.PutRequests.
//
// Each call is one tagged delivery: retries after an ambiguous failure
// re-send the same (lbID, seq) tag, and a server that already applied the
// batch replays its stored response instead of re-applying, preserving
// at-most-once application.
func (r *RemoteSubORAM) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	seq := r.seq
	tr0 := r.opts.Telemetry.Now()
	var out *store.Requests
	err := r.withRetry(r.opts.RPCTimeout, func(sc *secureConn) error {
		if err := sc.sendReqs(tagBatch, r.lbID, seq, reqs); err != nil {
			return err
		}
		reply, err := sc.recv()
		if err != nil {
			return err
		}
		switch reply.Kind {
		case "resp":
			if reply.lbID != r.lbID || reply.seq != seq {
				arena.Default.PutRequests(reply.reqs)
				return fmt.Errorf("transport: response tag (%#x,%d) does not match batch (%#x,%d)",
					reply.lbID, reply.seq, r.lbID, seq)
			}
			out = reply.reqs
			return nil
		case "err":
			return &RemoteError{Msg: reply.Error}
		default:
			return fmt.Errorf("transport: unexpected reply %q", reply.Kind)
		}
	})
	if err != nil {
		return nil, err
	}
	// End-to-end batch RPC latency including any retries — one observation
	// per successful epoch delivery.
	r.telRPC.Observe(time.Duration(r.opts.Telemetry.Now() - tr0))
	return out, nil
}

// BatchAccessN implements core.BatchedSubORAMClient: one epoch's batches
// travel as a single grouped frame under one delivery tag — one AEAD seal,
// one round trip, one open, however many load-balancer batches the epoch
// has. Application on the server is all-or-nothing per the replay cache's
// grouped-delivery contract; batches are applied in slice order. The
// returned slice is valid only until the next BatchAccessN call on this
// handle; the responses in it are arena-backed and owned by the caller.
func (r *RemoteSubORAM) BatchAccessN(reqs []*store.Requests) ([]*store.Requests, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	seq := r.seq
	tr0 := r.opts.Telemetry.Now()
	if cap(r.outScratch) < len(reqs) {
		r.outScratch = make([]*store.Requests, len(reqs))
	}
	outs := r.outScratch[:len(reqs)]
	err := r.withRetry(r.opts.RPCTimeout, func(sc *secureConn) error {
		if err := sc.sendReqsN(tagBatchN, r.lbID, seq, reqs); err != nil {
			return err
		}
		reply, err := sc.recv()
		if err != nil {
			return err
		}
		switch reply.Kind {
		case "respN":
			if reply.lbID != r.lbID || reply.seq != seq || len(reply.reqsN) != len(reqs) {
				putAll(reply.reqsN)
				return fmt.Errorf("transport: grouped response tag (%#x,%d,%d) does not match batch (%#x,%d,%d)",
					reply.lbID, reply.seq, len(reply.reqsN), r.lbID, seq, len(reqs))
			}
			copy(outs, reply.reqsN)
			return nil
		case "err":
			return &RemoteError{Msg: reply.Error}
		default:
			return fmt.Errorf("transport: unexpected reply %q", reply.Kind)
		}
	})
	if err != nil {
		return nil, err
	}
	r.telRPC.Observe(time.Duration(r.opts.Telemetry.Now() - tr0))
	return outs, nil
}

// Close tears down the connection. It never waits for an in-flight RPC:
// the underlying net.Conn is closed directly (net.Conn.Close is safe
// concurrently with reads and writes), which unblocks any reader stuck on
// a stalled peer, and in-flight or later RPCs fail with ErrClosed instead
// of retrying.
func (r *RemoteSubORAM) Close() error {
	r.closeOnce.Do(func() { close(r.closed) })
	r.connMu.Lock()
	sc := r.sc
	r.connMu.Unlock()
	if sc != nil {
		return sc.conn.Close()
	}
	return nil
}
