// Package transport carries Snoopy's load-balancer ↔ subORAM protocol over
// TCP, modeling the paper's deployment (§3.1): every channel is established
// with remote attestation — the client verifies the server enclave's
// measurement before trusting it — and all traffic is encrypted with an
// authenticated scheme under a per-channel key with monotone nonces
// (replay-proof).
//
// Handshake: client sends its X25519 public key; the server replies with
// its own public key plus an attestation report binding the enclave
// measurement to a digest of the handshake transcript. Both sides derive
// the shared secret and split it into two directional sealing keys.
package transport

import (
	"bufio"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"snoopy/internal/crypt"
	"snoopy/internal/enclave"
	"snoopy/internal/store"
)

// maxFrame bounds a single message (64 MiB) to stop a malicious peer from
// forcing unbounded allocation.
const maxFrame = 64 << 20

// wireRequests is the gob representation of store.Requests (Rec excluded).
type wireRequests struct {
	BlockSize int
	Op        []uint8
	Key       []uint64
	Sub       []uint32
	Tag       []uint8
	Aux       []uint8
	Seq       []uint64
	Client    []uint64
	Data      []byte
}

func toWire(r *store.Requests) wireRequests {
	return wireRequests{
		BlockSize: r.BlockSize, Op: r.Op, Key: r.Key, Sub: r.Sub,
		Tag: r.Tag, Aux: r.Aux, Seq: r.Seq, Client: r.Client, Data: r.Data,
	}
}

func fromWire(w wireRequests) (*store.Requests, error) {
	if w.BlockSize <= 0 {
		return nil, fmt.Errorf("transport: bad block size %d", w.BlockSize)
	}
	n := len(w.Key)
	if len(w.Op) != n || len(w.Sub) != n || len(w.Tag) != n || len(w.Aux) != n ||
		len(w.Seq) != n || len(w.Client) != n || len(w.Data) != n*w.BlockSize {
		return nil, fmt.Errorf("transport: inconsistent request columns")
	}
	return &store.Requests{
		BlockSize: w.BlockSize, Op: w.Op, Key: w.Key, Sub: w.Sub,
		Tag: w.Tag, Aux: w.Aux, Seq: w.Seq, Client: w.Client, Data: w.Data,
	}, nil
}

// message is the single protocol envelope.
type message struct {
	Kind  string // "init" | "batch" | "ok" | "resp" | "err"
	IDs   []uint64
	Data  []byte
	Reqs  wireRequests
	Error string
}

// secureConn frames gob messages through AEAD sealing.
type secureConn struct {
	conn net.Conn
	br   *bufio.Reader

	sendMu sync.Mutex
	seal   *crypt.Sealer // our sending direction
	open   *crypt.Sealer // peer's sending direction
}

func (c *secureConn) send(m *message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	enc := &sliceWriter{}
	if err := gob.NewEncoder(enc).Encode(m); err != nil {
		return err
	}
	buf := c.seal.Seal(enc.b, nil)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(buf)))
	if _, err := c.conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.conn.Write(buf)
	return err
}

func (c *secureConn) recv() (*message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return nil, err
	}
	pt, err := c.open.Open(buf, nil)
	if err != nil {
		return nil, err
	}
	var m message
	if err := gob.NewDecoder(newByteReader(pt)).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func newByteReader(b []byte) io.Reader { return &byteReader{b: b} }

type byteReader struct {
	b []byte
	i int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

// deriveKeys splits an ECDH shared secret into two directional keys.
func deriveKeys(secret []byte) (clientToServer, serverToClient crypt.Key) {
	a := sha256.Sum256(append([]byte("c2s|"), secret...))
	b := sha256.Sum256(append([]byte("s2c|"), secret...))
	return crypt.Key(a), crypt.Key(b)
}

// Partition is the server-side subORAM surface: a plain *suboram.SubORAM
// or a durability-wrapped one (*persist.Durable).
type Partition interface {
	Init(ids []uint64, data []byte) error
	BatchAccess(reqs *store.Requests) (*store.Requests, error)
}

// ServeSubORAM accepts connections on l and serves sub until the listener
// closes. Each connection performs the attested handshake with the given
// platform and measurement.
func ServeSubORAM(l net.Listener, sub Partition, platform *enclave.Platform, m enclave.Measurement) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			defer conn.Close()
			sc, err := serverHandshake(conn, platform, m)
			if err != nil {
				return
			}
			serveConn(sc, sub)
		}()
	}
}

func serveConn(sc *secureConn, sub Partition) {
	for {
		m, err := sc.recv()
		if err != nil {
			return
		}
		var reply message
		switch m.Kind {
		case "init":
			if err := sub.Init(m.IDs, m.Data); err != nil {
				reply = message{Kind: "err", Error: err.Error()}
			} else {
				reply = message{Kind: "ok"}
			}
		case "batch":
			reqs, err := fromWire(m.Reqs)
			if err == nil {
				var out *store.Requests
				out, err = sub.BatchAccess(reqs)
				if err == nil {
					reply = message{Kind: "resp", Reqs: toWire(out)}
				}
			}
			if err != nil {
				reply = message{Kind: "err", Error: err.Error()}
			}
		default:
			reply = message{Kind: "err", Error: "unknown message kind"}
		}
		if err := sc.send(&reply); err != nil {
			return
		}
	}
}

func serverHandshake(conn net.Conn, platform *enclave.Platform, m enclave.Measurement) (*secureConn, error) {
	br := bufio.NewReader(conn)
	// Receive client public key (32 bytes).
	var clientPub [32]byte
	if _, err := io.ReadFull(br, clientPub[:]); err != nil {
		return nil, err
	}
	curve := ecdh.X25519()
	priv, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	peer, err := curve.NewPublicKey(clientPub[:])
	if err != nil {
		return nil, err
	}
	secret, err := priv.ECDH(peer)
	if err != nil {
		return nil, err
	}
	// Attest to the transcript: both public keys.
	transcript := crypt.DigestOf(append(append([]byte{}, clientPub[:]...), priv.PublicKey().Bytes()...))
	report := platform.Attest(m, transcript)
	// Send server public key + report (gob, in the clear — it is public).
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(struct {
		Pub    []byte
		Report enclave.Report
	}{priv.PublicKey().Bytes(), report}); err != nil {
		return nil, err
	}
	c2s, s2c := deriveKeys(secret)
	sealOut, err := crypt.NewSealer(s2c, 2)
	if err != nil {
		return nil, err
	}
	sealIn, err := crypt.NewSealer(c2s, 1)
	if err != nil {
		return nil, err
	}
	return &secureConn{conn: conn, br: br, seal: sealOut, open: sealIn}, nil
}

// RemoteSubORAM is a core.SubORAMClient reached over an attested channel.
type RemoteSubORAM struct {
	mu sync.Mutex
	sc *secureConn
}

// Dial connects to a subORAM server, verifying that the peer attests to the
// expected measurement on the given platform.
func Dial(addr string, platform *enclave.Platform, want enclave.Measurement) (*RemoteSubORAM, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	sc, err := clientHandshake(conn, platform, want)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &RemoteSubORAM{sc: sc}, nil
}

func clientHandshake(conn net.Conn, platform *enclave.Platform, want enclave.Measurement) (*secureConn, error) {
	curve := ecdh.X25519()
	priv, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(priv.PublicKey().Bytes()); err != nil {
		return nil, err
	}
	br := bufio.NewReader(conn)
	var hello struct {
		Pub    []byte
		Report enclave.Report
	}
	if err := gob.NewDecoder(br).Decode(&hello); err != nil {
		return nil, err
	}
	if err := platform.Verify(hello.Report, want); err != nil {
		return nil, fmt.Errorf("transport: attestation failed: %w", err)
	}
	transcript := crypt.DigestOf(append(append([]byte{}, priv.PublicKey().Bytes()...), hello.Pub...))
	if hello.Report.KeyHash != transcript {
		return nil, fmt.Errorf("transport: attestation does not bind this channel")
	}
	peer, err := curve.NewPublicKey(hello.Pub)
	if err != nil {
		return nil, err
	}
	secret, err := priv.ECDH(peer)
	if err != nil {
		return nil, err
	}
	c2s, s2c := deriveKeys(secret)
	sealOut, err := crypt.NewSealer(c2s, 1)
	if err != nil {
		return nil, err
	}
	sealIn, err := crypt.NewSealer(s2c, 2)
	if err != nil {
		return nil, err
	}
	return &secureConn{conn: conn, br: br, seal: sealOut, open: sealIn}, nil
}

// Init implements core.SubORAMClient.
func (r *RemoteSubORAM) Init(ids []uint64, data []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.sc.send(&message{Kind: "init", IDs: ids, Data: data}); err != nil {
		return err
	}
	reply, err := r.sc.recv()
	if err != nil {
		return err
	}
	if reply.Kind == "err" {
		return errors.New(reply.Error)
	}
	return nil
}

// BatchAccess implements core.SubORAMClient.
func (r *RemoteSubORAM) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.sc.send(&message{Kind: "batch", Reqs: toWire(reqs)}); err != nil {
		return nil, err
	}
	reply, err := r.sc.recv()
	if err != nil {
		return nil, err
	}
	switch reply.Kind {
	case "resp":
		return fromWire(reply.Reqs)
	case "err":
		return nil, errors.New(reply.Error)
	default:
		return nil, fmt.Errorf("transport: unexpected reply %q", reply.Kind)
	}
}

// Close tears down the connection.
func (r *RemoteSubORAM) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sc.conn.Close()
}
