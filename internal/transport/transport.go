// Package transport carries Snoopy's load-balancer ↔ subORAM protocol over
// TCP, modeling the paper's deployment (§3.1): every channel is established
// with remote attestation — the client verifies the server enclave's
// measurement before trusting it — and all traffic is encrypted with an
// authenticated scheme under a per-channel key with monotone nonces
// (replay-proof).
//
// Handshake: client sends its X25519 public key; the server replies with
// its own public key plus an attestation report binding the enclave
// measurement to a digest of the handshake transcript. Both sides derive
// the shared secret and split it into two directional sealing keys.
package transport

import (
	"bufio"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"snoopy/internal/arena"
	"snoopy/internal/crypt"
	"snoopy/internal/enclave"
	"snoopy/internal/store"
	"snoopy/internal/wirecode"
)

// maxFrame bounds a single message (64 MiB) to stop a malicious peer from
// forcing unbounded allocation.
const maxFrame = 64 << 20

// Envelope tags: the first plaintext byte of every sealed frame selects the
// payload codec. Control traffic (handshake-adjacent init/ok/err) stays gob
// — it is rare and schema-flexible; the per-epoch batch and response frames
// use the fixed-layout wirecode codec, whose frame length is a closed-form
// function of the public batch size (see internal/wirecode).
const (
	tagControl = 0x00 // gob-encoded message
	tagBatch   = 0x01 // wirecode request batch
	tagResp    = 0x02 // wirecode response batch
)

// message is the protocol envelope. Only the exported fields travel in gob
// control frames; reqs carries a batch/response decoded from a wirecode
// frame (or to be encoded into one) and never passes through gob.
type message struct {
	Kind  string // "init" | "batch" | "ok" | "resp" | "err"
	IDs   []uint64
	Data  []byte
	Error string

	reqs *store.Requests
}

// secureConn frames tagged messages through AEAD sealing. Send and receive
// buffers are reused across messages: the steady-state batch path performs
// no per-message allocation beyond the pooled decode target. Sends are
// serialized by sendMu; receives assume a single reader (the serve loop on
// the server, the RemoteSubORAM mutex on the client).
type secureConn struct {
	conn net.Conn
	br   *bufio.Reader

	sendMu sync.Mutex
	seal   *crypt.Sealer // our sending direction
	ptBuf  []byte        // plaintext staging (tag + payload)
	ctBuf  []byte        // length prefix + sealed frame

	open  *crypt.Sealer // peer's sending direction
	rcvCt []byte        // ciphertext receive buffer
	rcvPt []byte        // opened plaintext (valid until next recv)
}

// send transmits a gob control message (tagControl).
func (c *secureConn) send(m *message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	w := sliceWriter{b: append(c.ptBuf[:0], tagControl)}
	if err := gob.NewEncoder(&w).Encode(m); err != nil {
		return err
	}
	c.ptBuf = w.b
	return c.writeSealed(c.ptBuf)
}

// sendReqs transmits a request or response batch as a wirecode frame. The
// plaintext buffer is pre-sized from the known frame length, so steady-state
// encoding is a pure copy.
func (c *secureConn) sendReqs(tag byte, r *store.Requests) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	need := 1 + wirecode.FrameLen(r.Len(), r.BlockSize)
	if cap(c.ptBuf) < need {
		c.ptBuf = make([]byte, 0, need)
	}
	c.ptBuf = append(c.ptBuf[:0], tag)
	c.ptBuf = wirecode.AppendRequests(c.ptBuf, r)
	return c.writeSealed(c.ptBuf)
}

// writeSealed seals pt into the reused ciphertext buffer behind a 4-byte
// big-endian length prefix and writes the whole frame in one call.
func (c *secureConn) writeSealed(pt []byte) error {
	c.ctBuf = append(c.ctBuf[:0], 0, 0, 0, 0)
	c.ctBuf = c.seal.SealAppend(c.ctBuf, pt, nil)
	binary.BigEndian.PutUint32(c.ctBuf[:4], uint32(len(c.ctBuf)-4))
	_, err := c.conn.Write(c.ctBuf)
	return err
}

func (c *secureConn) recv() (*message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	if cap(c.rcvCt) < n {
		c.rcvCt = make([]byte, n)
	}
	buf := c.rcvCt[:n]
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return nil, err
	}
	pt, err := c.open.OpenAppend(c.rcvPt[:0], buf, nil)
	if err != nil {
		return nil, err
	}
	c.rcvPt = pt // retain grown capacity for the next message
	if len(pt) < 1 {
		return nil, fmt.Errorf("transport: empty frame")
	}
	tag, payload := pt[0], pt[1:]
	switch tag {
	case tagControl:
		var m message
		if err := gob.NewDecoder(newByteReader(payload)).Decode(&m); err != nil {
			return nil, err
		}
		return &m, nil
	case tagBatch, tagResp:
		r, err := wirecode.DecodeRequests(payload, arena.Default)
		if err != nil {
			return nil, err
		}
		kind := "batch"
		if tag == tagResp {
			kind = "resp"
		}
		return &message{Kind: kind, reqs: r}, nil
	default:
		return nil, fmt.Errorf("transport: unknown frame tag %#x", tag)
	}
}

type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func newByteReader(b []byte) io.Reader { return &byteReader{b: b} }

type byteReader struct {
	b []byte
	i int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

// deriveKeys splits an ECDH shared secret into two directional keys.
func deriveKeys(secret []byte) (clientToServer, serverToClient crypt.Key) {
	a := sha256.Sum256(append([]byte("c2s|"), secret...))
	b := sha256.Sum256(append([]byte("s2c|"), secret...))
	return crypt.Key(a), crypt.Key(b)
}

// Partition is the server-side subORAM surface: a plain *suboram.SubORAM
// or a durability-wrapped one (*persist.Durable).
type Partition interface {
	Init(ids []uint64, data []byte) error
	BatchAccess(reqs *store.Requests) (*store.Requests, error)
}

// ServeSubORAM accepts connections on l and serves sub until the listener
// closes. Each connection performs the attested handshake with the given
// platform and measurement.
func ServeSubORAM(l net.Listener, sub Partition, platform *enclave.Platform, m enclave.Measurement) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			defer conn.Close()
			sc, err := serverHandshake(conn, platform, m)
			if err != nil {
				return
			}
			serveConn(sc, sub)
		}()
	}
}

func serveConn(sc *secureConn, sub Partition) {
	for {
		m, err := sc.recv()
		if err != nil {
			return
		}
		switch m.Kind {
		case "init":
			reply := message{Kind: "ok"}
			if err := sub.Init(m.IDs, m.Data); err != nil {
				reply = message{Kind: "err", Error: err.Error()}
			}
			if err := sc.send(&reply); err != nil {
				return
			}
		case "batch":
			out, err := sub.BatchAccess(m.reqs)
			arena.Default.PutRequests(m.reqs) // batch consumed
			if err != nil {
				if err := sc.send(&message{Kind: "err", Error: err.Error()}); err != nil {
					return
				}
				continue
			}
			sendErr := sc.sendReqs(tagResp, out)
			arena.Default.PutRequests(out)
			if sendErr != nil {
				return
			}
		default:
			if err := sc.send(&message{Kind: "err", Error: "unknown message kind"}); err != nil {
				return
			}
		}
	}
}

func serverHandshake(conn net.Conn, platform *enclave.Platform, m enclave.Measurement) (*secureConn, error) {
	br := bufio.NewReader(conn)
	// Receive client public key (32 bytes).
	var clientPub [32]byte
	if _, err := io.ReadFull(br, clientPub[:]); err != nil {
		return nil, err
	}
	curve := ecdh.X25519()
	priv, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	peer, err := curve.NewPublicKey(clientPub[:])
	if err != nil {
		return nil, err
	}
	secret, err := priv.ECDH(peer)
	if err != nil {
		return nil, err
	}
	// Attest to the transcript: both public keys.
	transcript := crypt.DigestOf(append(append([]byte{}, clientPub[:]...), priv.PublicKey().Bytes()...))
	report := platform.Attest(m, transcript)
	// Send server public key + report (gob, in the clear — it is public).
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(struct {
		Pub    []byte
		Report enclave.Report
	}{priv.PublicKey().Bytes(), report}); err != nil {
		return nil, err
	}
	c2s, s2c := deriveKeys(secret)
	sealOut, err := crypt.NewSealer(s2c, 2)
	if err != nil {
		return nil, err
	}
	sealIn, err := crypt.NewSealer(c2s, 1)
	if err != nil {
		return nil, err
	}
	return &secureConn{conn: conn, br: br, seal: sealOut, open: sealIn}, nil
}

// RemoteSubORAM is a core.SubORAMClient reached over an attested channel.
type RemoteSubORAM struct {
	mu sync.Mutex
	sc *secureConn
}

// Dial connects to a subORAM server, verifying that the peer attests to the
// expected measurement on the given platform.
func Dial(addr string, platform *enclave.Platform, want enclave.Measurement) (*RemoteSubORAM, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	sc, err := clientHandshake(conn, platform, want)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &RemoteSubORAM{sc: sc}, nil
}

func clientHandshake(conn net.Conn, platform *enclave.Platform, want enclave.Measurement) (*secureConn, error) {
	curve := ecdh.X25519()
	priv, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(priv.PublicKey().Bytes()); err != nil {
		return nil, err
	}
	br := bufio.NewReader(conn)
	var hello struct {
		Pub    []byte
		Report enclave.Report
	}
	if err := gob.NewDecoder(br).Decode(&hello); err != nil {
		return nil, err
	}
	if err := platform.Verify(hello.Report, want); err != nil {
		return nil, fmt.Errorf("transport: attestation failed: %w", err)
	}
	transcript := crypt.DigestOf(append(append([]byte{}, priv.PublicKey().Bytes()...), hello.Pub...))
	if hello.Report.KeyHash != transcript {
		return nil, fmt.Errorf("transport: attestation does not bind this channel")
	}
	peer, err := curve.NewPublicKey(hello.Pub)
	if err != nil {
		return nil, err
	}
	secret, err := priv.ECDH(peer)
	if err != nil {
		return nil, err
	}
	c2s, s2c := deriveKeys(secret)
	sealOut, err := crypt.NewSealer(c2s, 1)
	if err != nil {
		return nil, err
	}
	sealIn, err := crypt.NewSealer(s2c, 2)
	if err != nil {
		return nil, err
	}
	return &secureConn{conn: conn, br: br, seal: sealOut, open: sealIn}, nil
}

// Init implements core.SubORAMClient.
func (r *RemoteSubORAM) Init(ids []uint64, data []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.sc.send(&message{Kind: "init", IDs: ids, Data: data}); err != nil {
		return err
	}
	reply, err := r.sc.recv()
	if err != nil {
		return err
	}
	if reply.Kind == "err" {
		return errors.New(reply.Error)
	}
	return nil
}

// BatchAccess implements core.SubORAMClient. The returned responses are
// drawn from the process-wide arena; the caller owns them and may release
// them back via arena.Default.PutRequests.
func (r *RemoteSubORAM) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.sc.sendReqs(tagBatch, reqs); err != nil {
		return nil, err
	}
	reply, err := r.sc.recv()
	if err != nil {
		return nil, err
	}
	switch reply.Kind {
	case "resp":
		return reply.reqs, nil
	case "err":
		return nil, errors.New(reply.Error)
	default:
		return nil, fmt.Errorf("transport: unexpected reply %q", reply.Kind)
	}
}

// Close tears down the connection.
func (r *RemoteSubORAM) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sc.conn.Close()
}
