package transport

import (
	"bytes"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"snoopy/internal/core"
	"snoopy/internal/crypt"
	"snoopy/internal/enclave"
	"snoopy/internal/faultnet"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
)

const testBlock = 32

func startServer(t *testing.T, platform *enclave.Platform, m enclave.Measurement) string {
	t.Helper()
	sub := suboram.New(suboram.Config{BlockSize: testBlock})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go ServeSubORAM(l, sub, platform, m)
	return l.Addr().String()
}

func TestRemoteSubORAMRoundTrip(t *testing.T) {
	platform := enclave.NewPlatform()
	m := enclave.Measure("snoopy-suboram")
	addr := startServer(t, platform, m)

	r, err := Dial(addr, platform, m)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ids := []uint64{1, 2, 3}
	data := make([]byte, 3*testBlock)
	copy(data[testBlock:], []byte("two"))
	if err := r.Init(ids, data); err != nil {
		t.Fatal(err)
	}

	reqs := store.NewRequests(2, testBlock)
	reqs.SetRow(0, store.OpRead, 2, 0, 0, 0, nil)
	reqs.SetRow(1, store.OpWrite, 3, 0, 1, 1, []byte("three!"))
	out, err := r.BatchAccess(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("got %d responses", out.Len())
	}
	for i := 0; i < 2; i++ {
		if out.Key[i] == 2 && !bytes.HasPrefix(out.Block(i), []byte("two")) {
			t.Fatalf("read over wire wrong: %q", out.Block(i))
		}
	}

	// The write persisted.
	reqs2 := store.NewRequests(1, testBlock)
	reqs2.SetRow(0, store.OpRead, 3, 0, 0, 0, nil)
	out2, err := r.BatchAccess(reqs2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out2.Block(0), []byte("three!")) {
		t.Fatalf("write over wire lost: %q", out2.Block(0))
	}
}

// TestPingProbesLiveness exercises the failure detector's heartbeat RPC: a
// live server answers promptly, a dead one fails the probe within its
// deadline, and a restarted one answers again after the probe's redial.
func TestPingProbesLiveness(t *testing.T) {
	platform := enclave.NewPlatform()
	m := enclave.Measure("snoopy-suboram")
	sub := suboram.New(suboram.Config{BlockSize: testBlock})
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := raw.Addr().String()
	l := faultnet.WrapListener(raw, nil)
	go ServeSubORAM(l, sub, platform, m)

	r, err := DialOptions(addr, platform, m, Options{DialTimeout: 2 * time.Second}.NoRetries())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Ping(time.Second); err != nil {
		t.Fatalf("ping against live server: %v", err)
	}

	// Kill the server: listener and every live connection die at once.
	l.Kill()
	if err := r.Ping(500 * time.Millisecond); err == nil {
		t.Fatal("ping against dead server succeeded")
	}

	// Restart on the same address: the probe's single redial re-attests and
	// succeeds again.
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	defer l2.Close()
	go ServeSubORAM(l2, sub, platform, m)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := r.Ping(time.Second); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ping never recovered after server restart")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestDialRejectsWrongMeasurement(t *testing.T) {
	platform := enclave.NewPlatform()
	addr := startServer(t, platform, enclave.Measure("genuine"))
	if _, err := Dial(addr, platform, enclave.Measure("expected-other")); err == nil {
		t.Fatal("wrong measurement accepted")
	}
}

func TestDialRejectsWrongPlatform(t *testing.T) {
	m := enclave.Measure("snoopy-suboram")
	addr := startServer(t, enclave.NewPlatform(), m)
	if _, err := Dial(addr, enclave.NewPlatform(), m); err == nil {
		t.Fatal("foreign platform accepted")
	}
}

func TestServerErrorsPropagate(t *testing.T) {
	platform := enclave.NewPlatform()
	m := enclave.Measure("snoopy-suboram")
	addr := startServer(t, platform, m)
	r, err := Dial(addr, platform, m)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Duplicate ids must surface as a remote error.
	if err := r.Init([]uint64{5, 5}, make([]byte, 2*testBlock)); err == nil {
		t.Fatal("remote Init error not propagated")
	}
}

// TestFullSystemOverTCP runs the complete Snoopy system against subORAMs
// living behind real sockets.
func TestFullSystemOverTCP(t *testing.T) {
	platform := enclave.NewPlatform()
	m := enclave.Measure("snoopy-suboram")
	var subs []core.SubORAMClient
	for i := 0; i < 3; i++ {
		addr := startServer(t, platform, m)
		r, err := Dial(addr, platform, m)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		subs = append(subs, r)
	}
	sys, err := core.NewWithSubORAMs(core.Config{
		BlockSize: testBlock, NumLoadBalancers: 2, Lambda: 32,
		EpochDuration: 2 * time.Millisecond,
	}, subs)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	n := 50
	ids := make([]uint64, n)
	data := make([]byte, n*testBlock)
	for i := range ids {
		ids[i] = uint64(i)
		data[i*testBlock] = byte(i)
	}
	if err := sys.Init(ids, data); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Write(7, []byte("over-tcp")); err != nil {
		t.Fatal(err)
	}
	v, found, err := sys.Read(7)
	if err != nil || !found || !bytes.HasPrefix(v, []byte("over-tcp")) {
		t.Fatalf("tcp system read: %q %v %v", v, found, err)
	}
}

func TestServerDeathSurfacesAsError(t *testing.T) {
	platform := enclave.NewPlatform()
	m := enclave.Measure("snoopy-suboram")
	sub := suboram.New(suboram.Config{BlockSize: testBlock})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ServeSubORAM(l, sub, platform, m)
	r, err := Dial(l.Addr().String(), platform, m)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Init([]uint64{1}, make([]byte, testBlock)); err != nil {
		t.Fatal(err)
	}
	l.Close() // kill the "machine" — existing conns die with the listener? no: kill via closing our side's peer
	// Closing the listener stops accepts but not the live connection; to
	// simulate a crash, close the client connection from underneath and
	// observe the error rather than a hang or silent wrong answer.
	r.sc.conn.Close()
	reqs := store.NewRequests(1, testBlock)
	reqs.SetRow(0, store.OpRead, 1, 0, 0, 0, nil)
	if _, err := r.BatchAccess(reqs); err == nil {
		t.Fatal("dead connection produced a response")
	}
	// A fresh server and Dial recovers (listener is gone, so start anew).
	addr2 := startServer(t, platform, m)
	r2, err := Dial(addr2, platform, m)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if err := r2.Init([]uint64{1}, make([]byte, testBlock)); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.BatchAccess(reqs); err != nil {
		t.Fatalf("reconnect failed: %v", err)
	}
}

func TestTamperedFrameRejected(t *testing.T) {
	// A man-in-the-middle flipping ciphertext bits must cause a decode
	// failure, not silent corruption. Simulate by sending garbage directly.
	platform := enclave.NewPlatform()
	m := enclave.Measure("snoopy-suboram")
	addr := startServer(t, platform, m)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sc, err := clientHandshake(conn, platform, m)
	if err != nil {
		t.Fatal(err)
	}
	// Send a frame sealed under the wrong key (a fresh sealer).
	rogue, _ := crypt.NewSealer(crypt.MustNewKey(), 1)
	payload := rogue.Seal([]byte("garbage"), nil)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	conn.Write(hdr[:])
	conn.Write(payload)
	// The server drops the connection; our next receive must error.
	if _, err := sc.recv(); err == nil {
		t.Fatal("server answered a forged frame")
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	platform := enclave.NewPlatform()
	m := enclave.Measure("snoopy-suboram")
	addr := startServer(t, platform, m)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sc, err := clientHandshake(conn, platform, m)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(maxFrame+1))
	conn.Write(hdr[:])
	if _, err := sc.recv(); err == nil {
		t.Fatal("oversized frame did not kill the session")
	}
}

func TestRemoteConcurrentCallers(t *testing.T) {
	platform := enclave.NewPlatform()
	m := enclave.Measure("snoopy-suboram")
	addr := startServer(t, platform, m)
	r, err := Dial(addr, platform, m)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ids := make([]uint64, 64)
	for i := range ids {
		ids[i] = uint64(i)
	}
	if err := r.Init(ids, make([]byte, 64*testBlock)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			for i := 0; i < 5; i++ {
				reqs := store.NewRequests(2, testBlock)
				reqs.SetRow(0, store.OpRead, uint64((g*5+i)%64), 0, 0, 0, nil)
				reqs.SetRow(1, store.OpRead, uint64((g*5+i+32)%64), 0, 1, 1, nil)
				if _, err := r.BatchAccess(reqs); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
