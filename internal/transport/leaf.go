// Leaf-run forwarding: the aggregation tree's leaf load balancers can run
// on their own machines, each obliviously sorting + locally deduplicating
// its clients' requests and forwarding the sealed sorted run to the root
// over the same attested, sealed channel the subORAM protocol uses. Only
// the run's shape travels in the clear-visible frame length, and that shape
// (α_f·S rows) is a closed-form function of public configuration — the
// per-feed rate, subORAM count, and λ — exactly like a batch frame.
//
// A run request is a control frame carrying the public parameters (epoch,
// α, sequence base, run length) followed by one delivery-tagged request
// frame. The reply is a control frame with the (rare) overflow victims
// followed by the run as a response frame. Run building is a stateless
// transformation of the request snapshot, so retries after an ambiguous
// failure simply rebuild — no replay cache is needed.
package transport

import (
	"errors"
	"fmt"
	"net"
	"time"

	"snoopy/internal/arena"
	"snoopy/internal/enclave"
	"snoopy/internal/loadbalancer"
	"snoopy/internal/store"
)

// maxRunRows bounds a requested run length so a malicious root cannot force
// unbounded allocation; generous against any real α·S.
const maxRunRows = 1 << 22

// RemoteLeaf is a loadbalancer.LeafBalancer reached over an attested
// channel: the root installs it in its Tree (Tree.ReplaceLeaf) and the leaf
// machine runs ServeLeaf. It reuses the subORAM handle's redial/retry/
// backoff machinery; Ping makes it probeable by a cluster Supervisor.
type RemoteLeaf struct {
	r *RemoteSubORAM
}

// DialLeaf connects to a leaf load-balancer server, verifying that the peer
// attests to the expected measurement.
func DialLeaf(addr string, platform *enclave.Platform, want enclave.Measurement) (*RemoteLeaf, error) {
	return DialLeafOptions(addr, platform, want, Options{})
}

// DialLeafOptions is DialLeaf with explicit failure-handling parameters.
func DialLeafOptions(addr string, platform *enclave.Platform, want enclave.Measurement, opts Options) (*RemoteLeaf, error) {
	r, err := DialOptions(addr, platform, want, opts)
	if err != nil {
		return nil, err
	}
	return &RemoteLeaf{r: r}, nil
}

// BuildRun implements loadbalancer.LeafBalancer: it ships the feed's
// request snapshot to the remote leaf and copies the returned α·S run into
// dst, returning the leaf-local overflow victims.
func (rl *RemoteLeaf) BuildRun(epoch uint64, reqs *store.Requests, alpha int, seqBase uint64, dst *store.Requests) ([]uint64, error) {
	r := rl.r
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	seq := r.seq
	var dropped []uint64
	err := r.withRetry(r.opts.RPCTimeout, func(sc *secureConn) error {
		if err := sc.send(&message{Kind: "run", IDs: []uint64{epoch, uint64(alpha), seqBase, uint64(dst.Len())}}); err != nil {
			return err
		}
		if err := sc.sendReqs(tagBatch, r.lbID, seq, reqs); err != nil {
			return err
		}
		reply, err := sc.recv()
		if err != nil {
			return err
		}
		switch reply.Kind {
		case "err":
			return &RemoteError{Msg: reply.Error}
		case "ok":
			dropped = reply.IDs
		default:
			return fmt.Errorf("transport: unexpected run reply %q", reply.Kind)
		}
		run, err := sc.recv()
		if err != nil {
			return err
		}
		if run.Kind != "resp" {
			return fmt.Errorf("transport: unexpected run payload %q", run.Kind)
		}
		if run.lbID != r.lbID || run.seq != seq {
			arena.Default.PutRequests(run.reqs)
			return fmt.Errorf("transport: run tag (%#x,%d) does not match request (%#x,%d)",
				run.lbID, run.seq, r.lbID, seq)
		}
		if run.reqs.Len() != dst.Len() || run.reqs.BlockSize != dst.BlockSize {
			n, bs := run.reqs.Len(), run.reqs.BlockSize
			arena.Default.PutRequests(run.reqs)
			return fmt.Errorf("transport: run shape %d×%d does not match expected %d×%d",
				n, bs, dst.Len(), dst.BlockSize)
		}
		dst.CopyRowsPlain(0, run.reqs)
		arena.Default.PutRequests(run.reqs)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dropped, nil
}

// Ping probes the leaf's liveness over the attested channel (for a cluster
// Supervisor's Watch loop).
func (rl *RemoteLeaf) Ping(timeout time.Duration) error { return rl.r.Ping(timeout) }

// Close tears down the connection.
func (rl *RemoteLeaf) Close() error { return rl.r.Close() }

// ServeLeaf accepts connections on l and serves leaf-run requests against
// leaf until the listener closes, with the same attested handshake as
// ServeSubORAM.
func ServeLeaf(l net.Listener, leaf loadbalancer.LeafBalancer, platform *enclave.Platform, m enclave.Measurement) error {
	return ServeLeafOptions(l, leaf, platform, m, ServeOptions{})
}

// ServeLeafOptions is ServeLeaf with explicit failure-handling parameters.
func ServeLeafOptions(l net.Listener, leaf loadbalancer.LeafBalancer, platform *enclave.Platform, m enclave.Measurement, opts ServeOptions) error {
	opts = opts.withDefaults()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(opts.HandshakeTimeout))
			sc, err := serverHandshake(conn, platform, m)
			if err != nil {
				return
			}
			conn.SetDeadline(time.Time{})
			opts.tel.conns.Inc()
			serveLeafConn(sc, leaf, opts)
		}()
	}
}

func serveLeafConn(sc *secureConn, leaf loadbalancer.LeafBalancer, opts ServeOptions) {
	for {
		if opts.IdleTimeout > 0 {
			sc.conn.SetReadDeadline(time.Now().Add(opts.IdleTimeout))
		}
		m, err := sc.recv()
		if err != nil {
			return
		}
		sc.conn.SetReadDeadline(time.Time{})
		sc.conn.SetWriteDeadline(time.Now().Add(opts.WriteTimeout))
		switch m.Kind {
		case "ping":
			opts.tel.pings.Inc()
			if err := sc.send(&message{Kind: "ok"}); err != nil {
				return
			}
		case "run":
			// One counter bump and one latency observation per run frame —
			// events the host already sees on the wire.
			opts.tel.batches.Inc()
			tb0 := opts.Telemetry.Now()
			if len(m.IDs) != 4 {
				if err := sc.send(&message{Kind: "err", Error: "malformed run parameters"}); err != nil {
					return
				}
				break
			}
			epoch, alpha, seqBase, runLen := m.IDs[0], m.IDs[1], m.IDs[2], m.IDs[3]
			b, err := sc.recv()
			if err != nil {
				return
			}
			if b.Kind != "batch" || runLen > maxRunRows {
				arena.Default.PutRequests(b.reqs)
				if err := sc.send(&message{Kind: "err", Error: "malformed run request"}); err != nil {
					return
				}
				break
			}
			dst := arena.Default.GetRequests(int(runLen), b.reqs.BlockSize)
			dropped, err := leaf.BuildRun(epoch, b.reqs, int(alpha), seqBase, dst)
			arena.Default.PutRequests(b.reqs)
			if err != nil {
				arena.Default.PutRequests(dst)
				if err := sc.send(&message{Kind: "err", Error: err.Error()}); err != nil {
					return
				}
				break
			}
			opts.tel.batchDur.Observe(time.Duration(opts.Telemetry.Now() - tb0))
			sendErr := sc.send(&message{Kind: "ok", IDs: dropped})
			if sendErr == nil {
				sendErr = sc.sendReqs(tagResp, b.lbID, b.seq, dst)
			}
			arena.Default.PutRequests(dst)
			if sendErr != nil {
				return
			}
		default:
			if err := sc.send(&message{Kind: "err", Error: "unknown message kind"}); err != nil {
				return
			}
		}
		sc.conn.SetWriteDeadline(time.Time{})
	}
}
