package transport

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"snoopy/internal/crypt"
	"snoopy/internal/enclave"
	"snoopy/internal/store"
)

// TestBatchAccessNRoundTrip drives the grouped frame path end to end: one
// delivery carries an epoch's worth of batches, the server applies them in
// slice order (a write in batch 0 is visible to a read in batch 2), and
// the responses come back positionally matched.
func TestBatchAccessNRoundTrip(t *testing.T) {
	platform := enclave.NewPlatform()
	m := enclave.Measure("snoopy-suboram")
	addr := startServer(t, platform, m)

	r, err := Dial(addr, platform, m)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ids := []uint64{1, 2, 3}
	data := make([]byte, 3*testBlock)
	copy(data[0:], []byte("one"))
	if err := r.Init(ids, data); err != nil {
		t.Fatal(err)
	}

	b0 := store.NewRequests(1, testBlock)
	b0.SetRow(0, store.OpWrite, 2, 0, 0, 0, []byte("from-batch-0"))
	b1 := store.NewRequests(1, testBlock)
	b1.SetRow(0, store.OpRead, 1, 0, 0, 1, nil)
	b2 := store.NewRequests(1, testBlock)
	b2.SetRow(0, store.OpRead, 2, 0, 0, 2, nil)

	outs, err := r.BatchAccessN([]*store.Requests{b0, b1, b2})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("got %d response batches, want 3", len(outs))
	}
	if !bytes.HasPrefix(outs[1].Block(0), []byte("one")) {
		t.Fatalf("batch 1 read wrong: %q", outs[1].Block(0))
	}
	if !bytes.HasPrefix(outs[2].Block(0), []byte("from-batch-0")) {
		t.Fatalf("in-group ordering lost: batch 2 read %q", outs[2].Block(0))
	}

	// A later single-batch delivery on the same handle still works: the
	// framing modes share one delivery-tag sequence.
	q := store.NewRequests(1, testBlock)
	q.SetRow(0, store.OpRead, 2, 0, 0, 0, nil)
	out, err := r.BatchAccess(q)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out.Block(0), []byte("from-batch-0")) {
		t.Fatalf("write lost across framing modes: %q", out.Block(0))
	}
}

// groupPartition records BatchAccess calls and can fail at a chosen
// call index, for exercising the replay cache's grouped-delivery contract
// without a network.
type groupPartition struct {
	calls  int
	failAt int // fail the Nth call (1-based); 0 = never
}

func (p *groupPartition) Init(ids []uint64, data []byte) error { return nil }

func (p *groupPartition) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	p.calls++
	if p.failAt > 0 && p.calls == p.failAt {
		return nil, errors.New("injected partition failure")
	}
	return reqs.Clone(), nil
}

func groupOf(n int) []*store.Requests {
	rs := make([]*store.Requests, n)
	for i := range rs {
		rs[i] = store.NewRequests(1, testBlock)
		rs[i].SetRow(0, store.OpRead, uint64(i+1), 0, 0, 0, nil)
	}
	return rs
}

// TestApplyNReplayAndStale checks at-most-once semantics for grouped
// deliveries: a redelivered tag replays the stored responses without
// touching the partition, an older tag is rejected as stale, and a
// redelivery with a different shape cannot be answered exactly-once.
func TestApplyNReplayAndStale(t *testing.T) {
	rc := NewReplayCache()
	p := &groupPartition{}

	m := &message{Kind: "batchN", reqsN: groupOf(3), lbID: 7, seq: 5}
	outs, replayed, err := rc.applyN(p, m)
	if err != nil || replayed {
		t.Fatalf("first delivery: outs=%v replayed=%v err=%v", outs, replayed, err)
	}
	if p.calls != 3 {
		t.Fatalf("partition saw %d calls, want 3", p.calls)
	}

	// Redelivery of the same tag: replayed, partition untouched.
	outs2, replayed, err := rc.applyN(p, m)
	if err != nil || !replayed {
		t.Fatalf("redelivery: replayed=%v err=%v", replayed, err)
	}
	if p.calls != 3 {
		t.Fatalf("replay touched the partition (%d calls)", p.calls)
	}
	if len(outs2) != 3 {
		t.Fatalf("replayed %d batches, want 3", len(outs2))
	}

	// Older tag: stale.
	old := &message{Kind: "batchN", reqsN: groupOf(2), lbID: 7, seq: 4}
	if _, _, err := rc.applyN(p, old); !errors.Is(err, ErrStale) {
		t.Fatalf("stale delivery: err=%v", err)
	}

	// Same tag, different shape: cannot be answered exactly-once.
	misshapen := &message{Kind: "batchN", reqsN: groupOf(2), lbID: 7, seq: 5}
	if _, _, err := rc.applyN(p, misshapen); !errors.Is(err, ErrStale) {
		t.Fatalf("misshapen redelivery: err=%v", err)
	}

	// A single-batch redelivery of a grouped tag is likewise rejected.
	single := &message{Kind: "batch", reqs: store.NewRequests(1, testBlock), lbID: 7, seq: 5}
	if _, _, err := rc.apply(p, single); !errors.Is(err, ErrStale) {
		t.Fatalf("cross-kind redelivery: err=%v", err)
	}
}

// TestApplyNPartialFailureNotRecorded: a partition error mid-group reports
// the whole delivery as failed and records nothing, so the tag is not
// replayable as a phantom success.
func TestApplyNPartialFailureNotRecorded(t *testing.T) {
	rc := NewReplayCache()
	p := &groupPartition{failAt: 2}

	m := &message{Kind: "batchN", reqsN: groupOf(3), lbID: 9, seq: 1}
	if _, _, err := rc.applyN(p, m); err == nil {
		t.Fatal("partial failure not reported")
	}
	// The failed tag was not recorded: the same seq applies fresh once the
	// partition recovers.
	p.failAt = 0
	outs, replayed, err := rc.applyN(p, m)
	if err != nil || replayed {
		t.Fatalf("retry after failure: replayed=%v err=%v", replayed, err)
	}
	if len(outs) != 3 {
		t.Fatalf("retry returned %d batches", len(outs))
	}
}

// discardConn is a net.Conn that swallows writes, for measuring the send
// path without a peer.
type discardConn struct{}

func (discardConn) Read(b []byte) (int, error)         { return 0, errors.New("no reads") }
func (discardConn) Write(b []byte) (int, error)        { return len(b), nil }
func (discardConn) Close() error                       { return nil }
func (discardConn) LocalAddr() net.Addr                { return nil }
func (discardConn) RemoteAddr() net.Addr               { return nil }
func (discardConn) SetDeadline(t time.Time) error      { return nil }
func (discardConn) SetReadDeadline(t time.Time) error  { return nil }
func (discardConn) SetWriteDeadline(t time.Time) error { return nil }

// TestSendReqsNZeroAlloc pins the batched seal path's steady-state
// allocation behavior: once the staging buffers have grown to the epoch's
// frame size, encoding and sealing a grouped frame allocates nothing.
func TestSendReqsNZeroAlloc(t *testing.T) {
	key, err := crypt.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	seal, err := crypt.NewSealer(key, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := &secureConn{conn: discardConn{}, seal: seal}
	rs := groupOf(4)

	// Warm the staging buffers.
	if err := sc.sendReqsN(tagBatchN, 1, 1, rs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := sc.sendReqsN(tagBatchN, 1, 2, rs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("batched seal path allocates %v per frame, want 0", allocs)
	}
}
