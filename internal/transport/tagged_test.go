package transport

import (
	"bytes"
	"testing"

	"snoopy/internal/enclave"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
)

func taggedPair(t *testing.T) (*LocalTagged, *LocalTagged, *suboram.SubORAM) {
	t.Helper()
	sub := suboram.New(suboram.Config{BlockSize: testBlock})
	if err := sub.Init([]uint64{1, 2, 3}, make([]byte, 3*testBlock)); err != nil {
		t.Fatal(err)
	}
	rc := NewReplayCache()
	return NewLocalTagged(sub, rc), NewLocalTagged(sub, rc), sub
}

func oneWrite(key uint64, val string) *store.Requests {
	reqs := store.NewRequests(1, testBlock)
	reqs.SetRow(0, store.OpWrite, key, 0, 0, 0, []byte(val))
	return reqs
}

func oneRead(key uint64) *store.Requests {
	reqs := store.NewRequests(1, testBlock)
	reqs.SetRow(0, store.OpRead, key, 0, 0, 0, nil)
	return reqs
}

// TestLocalTaggedReplayAcrossIncarnations is the standby-root scenario in
// miniature: incarnation 1 applies a tagged write and crashes; incarnation
// 2 adopts the journaled tag and re-issues the delivery. The partition
// must not apply it twice — the replay cache answers with the recorded
// response, even though incarnation 2's payload differs.
func TestLocalTaggedReplayAcrossIncarnations(t *testing.T) {
	h1, h2, _ := taggedPair(t)

	lbID, seq0 := h1.DeliveryTag()
	if _, err := h1.BatchAccess(oneWrite(2, "first")); err != nil {
		t.Fatal(err)
	}

	// Incarnation 2 replays the journaled delivery (lbID, seq0) — its next
	// BatchAccess travels as seq0+1, the tag incarnation 1 already used.
	h2.AdoptDeliveryTag(lbID, seq0)
	out, err := h2.BatchAccess(oneWrite(2, "SECOND"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("replayed response has %d rows", out.Len())
	}

	// The partition kept the first application.
	got, err := h2.BatchAccess(oneRead(2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got.Block(0), []byte("first")) {
		t.Fatalf("partition re-applied a replayed delivery: %q", got.Block(0))
	}
}

func TestLocalTaggedGroupedReplay(t *testing.T) {
	h1, h2, _ := taggedPair(t)

	lbID, seq0 := h1.DeliveryTag()
	outs, err := h1.BatchAccessN([]*store.Requests{oneWrite(1, "alpha"), oneWrite(3, "gamma")})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("got %d grouped responses", len(outs))
	}

	h2.AdoptDeliveryTag(lbID, seq0)
	replayed, err := h2.BatchAccessN([]*store.Requests{oneWrite(1, "EVIL"), oneWrite(3, "EVIL")})
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 2 {
		t.Fatalf("replay returned %d responses", len(replayed))
	}

	got, err := h2.BatchAccess(oneRead(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got.Block(0), []byte("alpha")) {
		t.Fatalf("grouped replay re-applied: %q", got.Block(0))
	}
}

// TestLocalTaggedReplayTwice checks the replay path hands out independent
// arena-backed copies: releasing one replayed response must not corrupt a
// later replay of the same entry.
func TestLocalTaggedReplayTwice(t *testing.T) {
	h1, h2, _ := taggedPair(t)
	lbID, seq0 := h1.DeliveryTag()
	if _, err := h1.BatchAccess(oneWrite(2, "stable")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		h2.AdoptDeliveryTag(lbID, seq0)
		out, err := h2.BatchAccess(oneWrite(2, "x"))
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		// Scribble over the returned copy; the cache's private clone must
		// be unaffected.
		for j := range out.Data {
			out.Data[j] = 0xee
		}
	}
}

func TestLocalTaggedStaleDeliveryRejected(t *testing.T) {
	h1, h2, _ := taggedPair(t)
	lbID, _ := h1.DeliveryTag()
	if _, err := h1.BatchAccess(oneWrite(2, "a")); err != nil {
		t.Fatal(err)
	}
	if _, err := h1.BatchAccess(oneWrite(2, "b")); err != nil {
		t.Fatal(err)
	}
	// A delivery two sequences behind can no longer be answered
	// exactly-once; it must be rejected, not applied.
	h2.AdoptDeliveryTag(lbID, 0)
	if _, err := h2.BatchAccess(oneWrite(2, "stale")); err == nil {
		t.Fatal("stale delivery accepted")
	}
}

// TestRemoteDeliveryTagAdoption runs the same standby scenario over the
// real attested wire: handle 2 adopts handle 1's tag and the server's
// replay cache deduplicates.
func TestRemoteDeliveryTagAdoption(t *testing.T) {
	platform := enclave.NewPlatform()
	m := enclave.Measure("snoopy-suboram")
	addr := startServer(t, platform, m)

	r1, err := Dial(addr, platform, m)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	if err := r1.Init([]uint64{1, 2, 3}, make([]byte, 3*testBlock)); err != nil {
		t.Fatal(err)
	}
	lbID, seq0 := r1.DeliveryTag()
	if _, err := r1.BatchAccess(oneWrite(2, "orig")); err != nil {
		t.Fatal(err)
	}

	r2, err := Dial(addr, platform, m)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	r2.AdoptDeliveryTag(lbID, seq0)
	if _, err := r2.BatchAccess(oneWrite(2, "DUPL")); err != nil {
		t.Fatal(err)
	}
	got, err := r2.BatchAccess(oneRead(2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got.Block(0), []byte("orig")) {
		t.Fatalf("server re-applied replayed delivery: %q", got.Block(0))
	}
}

func TestReplyDedup(t *testing.T) {
	d := NewReplyDedup(4)
	if !d.Deliver(10) {
		t.Fatal("first delivery suppressed")
	}
	if d.Deliver(10) {
		t.Fatal("duplicate delivered")
	}
	if !d.Deliver(0) || !d.Deliver(0) {
		t.Fatal("untracked id 0 must always deliver")
	}
	for id := uint64(11); id <= 14; id++ {
		if !d.Deliver(id) {
			t.Fatalf("fresh id %d suppressed", id)
		}
	}
	// 10 has been evicted from the 4-entry window: a delivery outside the
	// retry horizon is the application's problem, not the window's.
	if !d.Deliver(10) {
		t.Fatal("evicted id treated as duplicate")
	}
	if d.Deliver(14) {
		t.Fatal("in-window duplicate delivered")
	}
}
