package transport

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snoopy/internal/enclave"
	"snoopy/internal/faultnet"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
)

// fastRetry keeps fault tests quick: small backoff, short deadlines.
func fastRetry() Options {
	return Options{
		DialTimeout: 2 * time.Second,
		RPCTimeout:  5 * time.Second,
		RetryBase:   5 * time.Millisecond,
		RetryMax:    50 * time.Millisecond,
	}
}

// faultDialer wraps the first dialed connection in a faultnet.Conn (handed
// to the test through the channel) and passes later reconnects through
// untouched.
func faultDialer(firstCh chan<- *faultnet.Conn) func(network, addr string, timeout time.Duration) (net.Conn, error) {
	var mu sync.Mutex
	sent := false
	return func(network, addr string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout(network, addr, timeout)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		defer mu.Unlock()
		if !sent {
			sent = true
			fc := faultnet.Wrap(c, faultnet.NoFaults(), faultnet.NoFaults())
			firstCh <- fc
			return fc, nil
		}
		return c, nil
	}
}

func oneReadReq(key uint64) *store.Requests {
	reqs := store.NewRequests(1, testBlock)
	reqs.SetRow(0, store.OpRead, key, 0, 0, 0, nil)
	return reqs
}

// TestFaultMatrix drives the client's receive path through scripted wire
// faults. Every case must surface an error — never a panic, a hang, or a
// silently wrong answer — and do so well inside the RPC deadline.
func TestFaultMatrix(t *testing.T) {
	cases := []struct {
		name string
		// arm mutates the read plan given the current read offset.
		arm func(p *faultnet.Plan, off int64)
	}{
		// Flipping the first length-prefix byte turns the 4-byte big-endian
		// length into ~1 GiB: recv must reject it as oversized, not allocate.
		{"oversized length prefix", func(p *faultnet.Plan, off int64) { p.CorruptAt = off }},
		// Flipping a byte inside the sealed body must fail AEAD opening.
		{"corrupt ciphertext", func(p *faultnet.Plan, off int64) { p.CorruptAt = off + 6 }},
		// Closing mid-frame truncates the response: recv sees a short read.
		{"truncated frame", func(p *faultnet.Plan, off int64) { p.CloseAfter = off + 7 }},
	}
	platform := enclave.NewPlatform()
	m := enclave.Measure("snoopy-suboram")
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr := startServer(t, platform, m)
			firstCh := make(chan *faultnet.Conn, 1)
			opts := fastRetry().NoRetries()
			opts.Dialer = faultDialer(firstCh)
			r, err := DialOptions(addr, platform, m, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			fc := <-firstCh
			if err := r.Init([]uint64{1}, make([]byte, testBlock)); err != nil {
				t.Fatal(err)
			}
			plan := faultnet.NoFaults()
			tc.arm(&plan, fc.ReadOffset())
			fc.SetReadPlan(plan)

			t0 := time.Now()
			_, err = r.BatchAccess(oneReadReq(1))
			if err == nil {
				t.Fatal("faulted response produced a result")
			}
			if d := time.Since(t0); d > 3*time.Second {
				t.Fatalf("error took %v, want well inside the RPC deadline", d)
			}
		})
	}
}

// TestHandshakeTornMidReport cuts the connection while the client is
// reading the server's attestation report: Dial must fail, not hang.
func TestHandshakeTornMidReport(t *testing.T) {
	platform := enclave.NewPlatform()
	m := enclave.Measure("snoopy-suboram")
	addr := startServer(t, platform, m)
	opts := fastRetry().NoRetries()
	opts.Dialer = func(network, a string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout(network, a, timeout)
		if err != nil {
			return nil, err
		}
		read := faultnet.NoFaults()
		read.CloseAfter = 10 // mid server-hello: pub key + report are ~hundreds of bytes
		return faultnet.Wrap(c, read, faultnet.NoFaults()), nil
	}
	t0 := time.Now()
	if _, err := DialOptions(addr, platform, m, opts); err == nil {
		t.Fatal("torn handshake produced a connection")
	}
	if d := time.Since(t0); d > 3*time.Second {
		t.Fatalf("torn handshake took %v to fail", d)
	}
}

// TestRPCDeadlineFiresOnUnresponsiveServer points the client at a server
// that completes the attested handshake and then swallows every frame: the
// per-attempt RPC deadline, not the test timeout, must end the call.
func TestRPCDeadlineFiresOnUnresponsiveServer(t *testing.T) {
	platform := enclave.NewPlatform()
	m := enclave.Measure("snoopy-suboram")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				sc, err := serverHandshake(conn, platform, m)
				if err != nil {
					return
				}
				buf := make([]byte, 4096)
				for { // black hole: read and never answer
					if _, err := sc.conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()

	opts := fastRetry().NoRetries()
	opts.RPCTimeout = 300 * time.Millisecond
	r, err := DialOptions(l.Addr().String(), platform, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	t0 := time.Now()
	_, err = r.BatchAccess(oneReadReq(1))
	if err == nil {
		t.Fatal("unresponsive server produced a response")
	}
	if d := time.Since(t0); d < 200*time.Millisecond || d > 3*time.Second {
		t.Fatalf("deadline fired after %v, want ~300ms", d)
	}
}

// countingPartition counts BatchAccess applications so replay tests can
// assert at-most-once delivery.
type countingPartition struct {
	Partition
	batches atomic.Int64
}

func (p *countingPartition) BatchAccess(r *store.Requests) (*store.Requests, error) {
	p.batches.Add(1)
	return p.Partition.BatchAccess(r)
}

// TestReconnectReplaysDuplicateDelivery loses a response in flight after the
// server applied the batch. The client must redial, re-run the attested
// handshake, and re-deliver the same (lbID, seq) tag; the server must answer
// from its replay cache without re-applying — the at-most-once property.
func TestReconnectReplaysDuplicateDelivery(t *testing.T) {
	platform := enclave.NewPlatform()
	m := enclave.Measure("snoopy-suboram")
	cp := &countingPartition{Partition: suboram.New(suboram.Config{BlockSize: testBlock})}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go ServeSubORAM(l, cp, platform, m)

	firstCh := make(chan *faultnet.Conn, 1)
	opts := fastRetry()
	opts.Dialer = faultDialer(firstCh)
	r, err := DialOptions(l.Addr().String(), platform, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	fc := <-firstCh
	if err := r.Init([]uint64{1}, make([]byte, testBlock)); err != nil {
		t.Fatal(err)
	}

	// Batch 1 goes through cleanly.
	w1 := store.NewRequests(1, testBlock)
	w1.SetRow(0, store.OpWrite, 1, 0, 0, 0, []byte("v1"))
	if _, err := r.BatchAccess(w1); err != nil {
		t.Fatal(err)
	}

	// Lose the response to batch 2: the connection dies the moment the
	// server's reply reaches the client, after the server already applied.
	plan := faultnet.NoFaults()
	plan.CloseAfter = fc.ReadOffset()
	fc.SetReadPlan(plan)
	w2 := store.NewRequests(1, testBlock)
	w2.SetRow(0, store.OpWrite, 1, 0, 0, 0, []byte("v2"))
	out, err := r.BatchAccess(w2)
	if err != nil {
		t.Fatalf("retried delivery failed: %v", err)
	}
	if out.Len() != 1 {
		t.Fatalf("replayed response has %d rows", out.Len())
	}

	// The write landed exactly once and reads back correctly.
	got, err := r.BatchAccess(oneReadReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got.Block(0), []byte("v2")) {
		t.Fatalf("after replayed write, read %q", got.Block(0))
	}
	// 3 client calls → exactly 3 applications: the re-delivered batch 2 was
	// answered from the replay cache, not re-applied.
	if n := cp.batches.Load(); n != 3 {
		t.Fatalf("partition applied %d batches, want 3 (no double-apply)", n)
	}
}

// TestStaleDeliveryRejected hands the server a delivery tag below the last
// applied one; the server must refuse rather than double-apply or replay the
// wrong response.
func TestStaleDeliveryRejected(t *testing.T) {
	platform := enclave.NewPlatform()
	m := enclave.Measure("snoopy-suboram")
	addr := startServer(t, platform, m)
	r, err := DialOptions(addr, platform, m, fastRetry().NoRetries())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Init([]uint64{1}, make([]byte, testBlock)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.BatchAccess(oneReadReq(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.BatchAccess(oneReadReq(1)); err != nil {
		t.Fatal(err)
	}
	// Rewind the client's delivery counter: the next batch carries a stale
	// tag and must be rejected by the server as a RemoteError.
	r.mu.Lock()
	r.seq = 0
	r.mu.Unlock()
	_, err = r.BatchAccess(oneReadReq(1))
	if err == nil {
		t.Fatal("stale delivery was answered")
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("stale delivery error %v is not a RemoteError", err)
	}
}

// TestCloseUnblocksStalledRPC is the regression test for the Close deadlock:
// Close must return promptly even while an RPC is blocked reading from a
// stalled peer, and the blocked RPC must fail with ErrClosed instead of
// retrying forever.
func TestCloseUnblocksStalledRPC(t *testing.T) {
	platform := enclave.NewPlatform()
	m := enclave.Measure("snoopy-suboram")
	addr := startServer(t, platform, m)
	firstCh := make(chan *faultnet.Conn, 1)
	opts := fastRetry()
	opts.RPCTimeout = time.Hour // the stall must be broken by Close, not the deadline
	opts.Dialer = faultDialer(firstCh)
	r, err := DialOptions(addr, platform, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	fc := <-firstCh
	if err := r.Init([]uint64{1}, make([]byte, testBlock)); err != nil {
		t.Fatal(err)
	}
	plan := faultnet.NoFaults()
	plan.StallAfter = fc.ReadOffset()
	fc.SetReadPlan(plan)

	errCh := make(chan error, 1)
	go func() {
		_, err := r.BatchAccess(oneReadReq(1))
		errCh <- err
	}()
	// Let the RPC reach the stalled read.
	time.Sleep(100 * time.Millisecond)
	t0 := time.Now()
	if err := r.Close(); err != nil && time.Since(t0) > time.Second {
		t.Fatalf("Close blocked %v: %v", time.Since(t0), err)
	}
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("Close took %v with an RPC in flight", d)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("stalled RPC returned a response after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled RPC still blocked after Close")
	}
}

// TestKillAndRestartServerResumes crashes the server process mid-run — the
// listener and every live connection die at once — then restarts it on the
// same address with the same partition and replay cache. A client with a
// retry budget must ride out the outage: redial, re-attest, and resume.
func TestKillAndRestartServerResumes(t *testing.T) {
	platform := enclave.NewPlatform()
	m := enclave.Measure("snoopy-suboram")
	sub := suboram.New(suboram.Config{BlockSize: testBlock})
	rc := NewReplayCache()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := faultnet.WrapListener(inner, nil)
	go ServeSubORAMOptions(fl, sub, platform, m, ServeOptions{Replay: rc})
	addr := inner.Addr().String()

	opts := fastRetry().WithRetries(20)
	r, err := DialOptions(addr, platform, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Init([]uint64{1}, make([]byte, testBlock)); err != nil {
		t.Fatal(err)
	}
	w := store.NewRequests(1, testBlock)
	w.SetRow(0, store.OpWrite, 1, 0, 0, 0, []byte("pre-crash"))
	if _, err := r.BatchAccess(w); err != nil {
		t.Fatal(err)
	}

	fl.Kill() // crash: listener gone, live connections severed

	restartErr := make(chan error, 1)
	go func() {
		time.Sleep(50 * time.Millisecond) // client sees the outage first
		l2, err := net.Listen("tcp", addr)
		if err != nil {
			restartErr <- err
			return
		}
		restartErr <- nil
		ServeSubORAMOptions(l2, sub, platform, m, ServeOptions{Replay: rc})
	}()

	// This call spans the crash: early attempts fail, later ones land on the
	// restarted server after a fresh attested handshake.
	got, err := r.BatchAccess(oneReadReq(1))
	if err != nil {
		t.Fatalf("client did not resume across restart: %v", err)
	}
	if !bytes.HasPrefix(got.Block(0), []byte("pre-crash")) {
		t.Fatalf("state lost across restart: %q", got.Block(0))
	}
	if err := <-restartErr; err != nil {
		t.Fatalf("restart listen: %v", err)
	}
}
