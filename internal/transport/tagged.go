package transport

import (
	"crypto/rand"
	"encoding/binary"
	"sync"
	"time"

	"snoopy/internal/arena"
	"snoopy/internal/store"
)

// DeliveryTag returns this handle's delivery-stream identity and the last
// consumed sequence number. The root journals the pair before each epoch's
// dispatch so a standby can re-issue the epoch under the same tags and have
// the partition's ReplayCache deduplicate an already-applied batch.
func (r *RemoteSubORAM) DeliveryTag() (lbID, seq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lbID, r.seq
}

// AdoptDeliveryTag overrides the handle's delivery-stream identity and
// sequence number. A standby root adopts the journaled tags of the crashed
// root before replaying an epoch: the next BatchAccess/BatchAccessN then
// travels as (lbID, seq+1), exactly the delivery the dead root issued (or
// would have issued), and the partition answers from its replay cache if it
// already applied it.
func (r *RemoteSubORAM) AdoptDeliveryTag(lbID, seq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lbID = lbID
	r.seq = seq
}

func randomLBID() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("transport: no entropy for lbID: " + err.Error())
	}
	return binary.LittleEndian.Uint64(b[:])
}

// LocalTagged wraps an in-process Partition with the same tagged
// at-most-once delivery semantics a remote partition server provides: every
// batch travels with an (lbID, seq) tag resolved against a ReplayCache, so
// two root incarnations driving the same partition (the crashed root's
// journaled dispatch and the standby's replay) cannot double-apply an
// epoch. The cache is shared across incarnations — it models the partition
// server's state, which survives the root's crash.
type LocalTagged struct {
	sub Partition
	rc  *ReplayCache

	mu   sync.Mutex
	lbID uint64
	seq  uint64
}

// NewLocalTagged wraps sub with tagged delivery through rc. Handles that
// should deduplicate against each other must share rc.
func NewLocalTagged(sub Partition, rc *ReplayCache) *LocalTagged {
	return &LocalTagged{sub: sub, rc: rc, lbID: randomLBID()}
}

// DeliveryTag implements the journaling hook (see RemoteSubORAM.DeliveryTag).
func (l *LocalTagged) DeliveryTag() (lbID, seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lbID, l.seq
}

// AdoptDeliveryTag implements the standby-replay hook (see
// RemoteSubORAM.AdoptDeliveryTag).
func (l *LocalTagged) AdoptDeliveryTag(lbID, seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lbID = lbID
	l.seq = seq
}

// Init implements core.SubORAMClient; it resets the partition and clears
// the replay cache, exactly as the remote server does.
func (l *LocalTagged) Init(ids []uint64, data []byte) error {
	return l.rc.init(l.sub, ids, data)
}

// BatchAccess implements core.SubORAMClient with tagged delivery: a replay
// of an already-applied sequence returns the recorded response without
// touching the partition.
func (l *LocalTagged) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	l.mu.Lock()
	l.seq++
	m := message{lbID: l.lbID, seq: l.seq, reqs: reqs}
	l.mu.Unlock()
	out, replayed, err := l.rc.apply(l.sub, &m)
	if err != nil {
		return nil, err
	}
	if replayed {
		// The cache's stored response is its private clone; hand the caller
		// an arena-backed copy so the usual release path stays valid.
		out = arenaCopy(out)
	}
	return out, nil
}

// BatchAccessN implements core.BatchedSubORAMClient (grouped delivery,
// all-or-nothing replay).
func (l *LocalTagged) BatchAccessN(reqs []*store.Requests) ([]*store.Requests, error) {
	l.mu.Lock()
	l.seq++
	m := message{lbID: l.lbID, seq: l.seq, reqsN: reqs}
	l.mu.Unlock()
	outs, replayed, err := l.rc.applyN(l.sub, &m)
	if err != nil {
		return nil, err
	}
	if replayed {
		copied := make([]*store.Requests, len(outs))
		for i, out := range outs {
			copied[i] = arenaCopy(out)
		}
		outs = copied
	}
	return outs, nil
}

// Ping implements the health-probe hook; an in-process partition is
// reachable by construction.
func (l *LocalTagged) Ping(time.Duration) error { return nil }

// Close implements core's optional closer hook.
func (l *LocalTagged) Close() error { return nil }

func arenaCopy(src *store.Requests) *store.Requests {
	dst := arena.Default.GetRequests(src.Len(), src.BlockSize)
	dst.CopyRowsPlain(0, src)
	return dst
}

// ReplyDedup is the client-side half of exactly-once: a bounded window of
// recently delivered reply IDs. A client that retried a request against a
// promoted standby may receive the answer twice (once from each root
// incarnation's reply path); Deliver admits only the first. The window is
// bounded (FIFO eviction) so a long-lived client cannot grow it without
// limit — it need only cover the retry horizon, not the session.
type ReplyDedup struct {
	mu   sync.Mutex
	seen map[uint64]struct{}
	ring []uint64
	next int
}

// NewReplyDedup returns a window remembering the last n delivered IDs
// (n defaults to 4096 when <= 0).
func NewReplyDedup(n int) *ReplyDedup {
	if n <= 0 {
		n = 4096
	}
	return &ReplyDedup{seen: make(map[uint64]struct{}, n), ring: make([]uint64, n)}
}

// Deliver reports whether a reply with this ID should be delivered to the
// application: true exactly once per ID within the window. ID 0 is
// reserved for untracked requests and always delivers.
func (d *ReplyDedup) Deliver(id uint64) bool {
	if id == 0 {
		return true
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.seen[id]; dup {
		return false
	}
	if old := d.ring[d.next]; old != 0 {
		delete(d.seen, old)
	}
	d.ring[d.next] = id
	d.next = (d.next + 1) % len(d.ring)
	d.seen[id] = struct{}{}
	return true
}
