package transport

import (
	"bytes"
	"fmt"
	"net"
	"testing"

	"snoopy/internal/crypt"
	"snoopy/internal/enclave"
	"snoopy/internal/loadbalancer"
	"snoopy/internal/store"
)

func startLeafServer(t *testing.T, leaf loadbalancer.LeafBalancer, platform *enclave.Platform, m enclave.Measurement) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go ServeLeaf(l, leaf, platform, m)
	return l.Addr().String()
}

func leafFeeds(t *testing.T) []*store.Requests {
	t.Helper()
	f0 := store.NewRequests(20, testBlock)
	for j := 0; j < 20; j++ {
		f0.SetRow(j, store.OpWrite, uint64(j), 0, uint64(j), uint64(j), []byte(fmt.Sprintf("f0-%d", j)))
	}
	f1 := store.NewRequests(20, testBlock)
	for j := 0; j < 20; j++ {
		f1.SetRow(j, store.OpRead, uint64(j+10), 0, uint64(j), uint64(j), nil)
	}
	return []*store.Requests{f0, f1}
}

// TestRemoteLeafMatchesLocalTree drives a two-leaf aggregation tree whose
// second leaf runs behind the attested transport and checks the produced
// batches are row-for-row identical to an all-local tree under the same
// routing key: forwarding sealed sorted runs over the wire must be
// semantically invisible to the root.
func TestRemoteLeafMatchesLocalTree(t *testing.T) {
	platform := enclave.NewPlatform()
	m := enclave.Measure("snoopy-leaf")
	key := crypt.MustNewKey()
	cfg := loadbalancer.Config{BlockSize: testBlock, NumSubORAMs: 4, Lambda: 32}

	addr := startLeafServer(t, loadbalancer.NewLeaf(cfg, key, 1), platform, m)
	rl, err := DialLeaf(addr, platform, m)
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()

	newTree := func() *loadbalancer.Tree {
		tr, err := loadbalancer.NewTree(loadbalancer.TreeConfig{Config: cfg, Leaves: 2}, key)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	remote := newTree()
	remote.ReplaceLeaf(1, rl)
	local := newTree()

	for epoch := uint64(1); epoch <= 3; epoch++ {
		feeds := leafFeeds(t)
		br, feedErrs, err := remote.MakeBatches(epoch, feeds)
		if err != nil {
			t.Fatal(err)
		}
		if feedErrs != nil {
			t.Fatalf("remote leaf failed: %v", feedErrs)
		}
		bl, _, err := local.MakeBatches(epoch, feeds)
		if err != nil {
			t.Fatal(err)
		}
		if br.PerSub != bl.PerSub || br.All.Len() != bl.All.Len() {
			t.Fatalf("shape mismatch: remote %d×%d local %d×%d", br.PerSub, br.All.Len(), bl.PerSub, bl.All.Len())
		}
		for i := 0; i < br.All.Len(); i++ {
			if br.All.Key[i] != bl.All.Key[i] || br.All.Op[i] != bl.All.Op[i] ||
				br.All.Sub[i] != bl.All.Sub[i] || !bytes.Equal(br.All.Block(i), bl.All.Block(i)) {
				t.Fatalf("epoch %d row %d differs: remote (%#x op%d sub%d) local (%#x op%d sub%d)",
					epoch, i, br.All.Key[i], br.All.Op[i], br.All.Sub[i],
					bl.All.Key[i], bl.All.Op[i], bl.All.Sub[i])
			}
		}
		br.Release()
		bl.Release()
	}
}

// TestRemoteLeafFailureIsolated kills the remote leaf's server and checks
// the tree degrades exactly like a local leaf failure: only that feed gets
// an error, the epoch proceeds, and the batch shape is unchanged.
func TestRemoteLeafFailureIsolated(t *testing.T) {
	platform := enclave.NewPlatform()
	m := enclave.Measure("snoopy-leaf")
	key := crypt.MustNewKey()
	cfg := loadbalancer.Config{BlockSize: testBlock, NumSubORAMs: 4, Lambda: 32}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ServeLeaf(l, loadbalancer.NewLeaf(cfg, key, 1), platform, m)
	rl, err := DialLeafOptions(l.Addr().String(), platform, m, Options{}.NoRetries())
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()
	if err := rl.Ping(0); err != nil {
		t.Fatalf("ping before failure: %v", err)
	}

	tr, err := loadbalancer.NewTree(loadbalancer.TreeConfig{Config: cfg, Leaves: 2}, key)
	if err != nil {
		t.Fatal(err)
	}
	tr.ReplaceLeaf(1, rl)

	l.Close()
	rl.Close() // sever the live channel; NoRetries makes the failure immediate

	feeds := leafFeeds(t)
	b, feedErrs, err := tr.MakeBatches(1, feeds)
	if err != nil {
		t.Fatalf("plane-wide failure from one dead leaf: %v", err)
	}
	if feedErrs == nil || feedErrs[1] == nil {
		t.Fatalf("dead remote leaf not isolated: %v", feedErrs)
	}
	if feedErrs[0] != nil {
		t.Fatalf("healthy leaf failed: %v", feedErrs[0])
	}
	if b.PerSub != tr.BatchSize(40) {
		t.Fatalf("batch shape changed on failure: %d != %d", b.PerSub, tr.BatchSize(40))
	}
	// Feed 1's exclusive keys (20..29) must be absent; feed 0's present.
	seen := map[uint64]bool{}
	for i := 0; i < b.All.Len(); i++ {
		if b.All.Key[i]&store.DummyKeyBit == 0 {
			seen[b.All.Key[i]] = true
		}
	}
	for k := uint64(0); k < 20; k++ {
		if !seen[k] {
			t.Fatalf("healthy feed's key %d missing", k)
		}
	}
	for k := uint64(20); k < 30; k++ {
		if seen[k] {
			t.Fatalf("dead feed's key %d leaked into batches", k)
		}
	}
	b.Release()
}
