package obliv

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// traceSorter wraps a Sorter, recording the (i, j) positions of every
// compare-exchange. Conditions are deliberately not recorded: they are
// secret. Two runs over same-length inputs must produce identical traces.
type traceSorter struct {
	Sorter
	ops []int64
}

func (ts *traceSorter) OSwap(c uint8, i, j int) {
	ts.ops = append(ts.ops, int64(i)<<32|int64(j))
	ts.Sorter.OSwap(c, i, j)
}

func (ts *traceSorter) Greater(i, j int) uint8 { return ts.Sorter.Greater(i, j) }

func randU64s(rng *rand.Rand, n int) U64Slice {
	u := make(U64Slice, n)
	for i := range u {
		u[i] = uint64(rng.Intn(max(1, n/2))) // duplicates likely
	}
	return u
}

func isSortedU64(u U64Slice) bool {
	return sort.SliceIsSorted(u, func(i, j int) bool { return u[i] < u[j] })
}

func TestSortAllSmallSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 0; n <= 130; n++ {
		for trial := 0; trial < 4; trial++ {
			u := randU64s(rng, n)
			Sort(u)
			if !isSortedU64(u) {
				t.Fatalf("n=%d trial=%d: not sorted: %v", n, trial, u)
			}
		}
	}
}

func TestSortPreservesMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := randU64s(rng, 777)
	counts := map[uint64]int{}
	for _, v := range u {
		counts[v]++
	}
	Sort(u)
	for _, v := range u {
		counts[v]--
	}
	for k, c := range counts {
		if c != 0 {
			t.Fatalf("multiset changed for key %d: delta %d", k, c)
		}
	}
}

func TestSortQuick(t *testing.T) {
	f := func(vals []uint64) bool {
		u := U64Slice(append([]uint64(nil), vals...))
		Sort(u)
		return isSortedU64(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 100, 1000, 4096, 5000} {
		for _, workers := range []int{1, 2, 3, 8} {
			a := randU64s(rng, n)
			b := append(U64Slice(nil), a...)
			Sort(a)
			SortParallel(b, workers)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("n=%d workers=%d: mismatch at %d", n, workers, i)
				}
			}
		}
	}
}

func TestSortAdaptive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{10, adaptiveThreshold - 1, adaptiveThreshold + 1} {
		u := randU64s(rng, n)
		SortAdaptive(u, 0)
		if !isSortedU64(u) {
			t.Fatalf("n=%d: SortAdaptive failed", n)
		}
	}
}

// TestSortTraceOblivious verifies the central security property: the
// compare-exchange position sequence depends only on the input length.
func TestSortTraceOblivious(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 2, 33, 128, 1000} {
		var ref []int64
		for trial := 0; trial < 3; trial++ {
			ts := &traceSorter{Sorter: randU64s(rng, n)}
			Sort(ts)
			if trial == 0 {
				ref = ts.ops
				continue
			}
			if len(ts.ops) != len(ref) {
				t.Fatalf("n=%d: trace length varies with data: %d vs %d", n, len(ts.ops), len(ref))
			}
			for i := range ref {
				if ref[i] != ts.ops[i] {
					t.Fatalf("n=%d: trace diverges at op %d", n, i)
				}
			}
		}
	}
}

func TestSortDescendingKeysWithTiebreak(t *testing.T) {
	// A Sorter with a composite ordering: primary key ascending, sequence
	// descending — the shape the load balancer uses for last-write-wins.
	recs := []rec{{3, 1}, {1, 2}, {3, 9}, {1, 1}, {2, 5}, {3, 4}}
	s := &recSorter{recs}
	Sort(s)
	want := []rec{{1, 2}, {1, 1}, {2, 5}, {3, 9}, {3, 4}, {3, 1}}
	for i, w := range want {
		if recs[i] != w {
			t.Fatalf("at %d: got %+v want %+v (full: %+v)", i, recs[i], w, recs)
		}
	}
}

type rec struct{ key, seq uint64 }

type recSorter struct {
	r []rec
}

func (s *recSorter) Len() int { return len(s.r) }

func (s *recSorter) OSwap(c uint8, i, j int) {
	CondSwapU64(c, &s.r[i].key, &s.r[j].key)
	CondSwapU64(c, &s.r[i].seq, &s.r[j].seq)
}

func (s *recSorter) Greater(i, j int) uint8 {
	keyGt := GtU64(s.r[i].key, s.r[j].key)
	keyEq := EqU64(s.r[i].key, s.r[j].key)
	seqLt := LtU64(s.r[i].seq, s.r[j].seq)
	return Or(keyGt, And(keyEq, seqLt))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
