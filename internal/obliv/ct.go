package obliv

// Constant-time predicates and conditional moves. All functions in this file
// are branch-free: control flow never depends on argument values. Conditions
// are uint8 values that must be exactly 0 or 1.

// Mask64 expands a 0/1 condition to a 64-bit mask (0 or all-ones).
func Mask64(c uint8) uint64 { return -uint64(c & 1) }

// MaskByte expands a 0/1 condition to an 8-bit mask (0x00 or 0xFF).
func MaskByte(c uint8) byte { return -(c & 1) }

// LtU64 returns 1 if x < y, else 0, without branching.
func LtU64(x, y uint64) uint8 {
	// Standard borrow-propagation trick: the top bit of
	// (~x & y) | ((~x | y) & (x - y)) is the borrow of x - y.
	return uint8(((^x & y) | ((^x | y) & (x - y))) >> 63)
}

// GtU64 returns 1 if x > y, else 0.
func GtU64(x, y uint64) uint8 { return LtU64(y, x) }

// LeU64 returns 1 if x <= y, else 0.
func LeU64(x, y uint64) uint8 { return 1 - LtU64(y, x) }

// GeU64 returns 1 if x >= y, else 0.
func GeU64(x, y uint64) uint8 { return 1 - LtU64(x, y) }

// EqU64 returns 1 if x == y, else 0.
func EqU64(x, y uint64) uint8 {
	z := x ^ y
	return uint8(1 - ((z | -z) >> 63))
}

// NeqU64 returns 1 if x != y, else 0.
func NeqU64(x, y uint64) uint8 { return 1 - EqU64(x, y) }

// EqU8 returns 1 if x == y, else 0.
func EqU8(x, y uint8) uint8 { return EqU64(uint64(x), uint64(y)) }

// And returns a&b for 0/1 conditions.
func And(a, b uint8) uint8 { return a & b }

// Or returns a|b for 0/1 conditions.
func Or(a, b uint8) uint8 { return a | b }

// Not returns 1-a for a 0/1 condition.
func Not(a uint8) uint8 { return a ^ 1 }

// SelectU64 returns y if c == 1, else x.
func SelectU64(c uint8, x, y uint64) uint64 {
	m := Mask64(c)
	return x ^ (m & (x ^ y))
}

// CondSetU64 sets *dst = src if c == 1 (the paper's oblivious
// compare-and-set on a machine word).
func CondSetU64(c uint8, dst *uint64, src uint64) {
	m := Mask64(c)
	*dst ^= m & (*dst ^ src)
}

// CondSwapU64 exchanges *x and *y if c == 1.
func CondSwapU64(c uint8, x, y *uint64) {
	m := Mask64(c)
	t := m & (*x ^ *y)
	*x ^= t
	*y ^= t
}

// CondSetU8 sets *dst = src if c == 1.
func CondSetU8(c uint8, dst *uint8, src uint8) {
	m := MaskByte(c)
	*dst ^= m & (*dst ^ src)
}

// CondSwapU8 exchanges *x and *y if c == 1.
func CondSwapU8(c uint8, x, y *uint8) {
	m := MaskByte(c)
	t := m & (*x ^ *y)
	*x ^= t
	*y ^= t
}

// CondSetU32 sets *dst = src if c == 1.
func CondSetU32(c uint8, dst *uint32, src uint32) {
	m := uint32(Mask64(c))
	*dst ^= m & (*dst ^ src)
}

// CondSwapU32 exchanges *x and *y if c == 1.
func CondSwapU32(c uint8, x, y *uint32) {
	m := uint32(Mask64(c))
	t := m & (*x ^ *y)
	*x ^= t
	*y ^= t
}

// CondCopyBytes copies src into dst if c == 1. len(dst) must equal len(src).
// The access pattern (a full pass over both slices) is independent of c.
func CondCopyBytes(c uint8, dst, src []byte) {
	if len(dst) != len(src) {
		panic("obliv: CondCopyBytes length mismatch")
	}
	// Word-at-a-time main loop (SIMD on amd64), byte tail.
	n := len(dst) &^ 7
	condCopyWords(Mask64(c), dst, src, n)
	mb := MaskByte(c)
	for i := n; i < len(dst); i++ {
		dst[i] ^= mb & (dst[i] ^ src[i])
	}
}

// CondSwapBytes exchanges a and b if c == 1. len(a) must equal len(b).
func CondSwapBytes(c uint8, a, b []byte) {
	if len(a) != len(b) {
		panic("obliv: CondSwapBytes length mismatch")
	}
	// A conditional swap is the fused access with both masks equal:
	// a' = a^(m&(a^b)), b' = b^(m&(a^b)).
	m := Mask64(c)
	n := len(a) &^ 7
	fusedWords(m, m, a, b, n)
	mb := MaskByte(c)
	for i := n; i < len(a); i++ {
		t := mb & (a[i] ^ b[i])
		a[i] ^= t
		b[i] ^= t
	}
}

// EqBytes returns 1 if a == b, else 0, scanning both slices fully.
// Slices of unequal length compare as 0 (length is treated as public).
func EqBytes(a, b []byte) uint8 {
	if len(a) != len(b) {
		return 0
	}
	var acc byte
	for i := range a {
		acc |= a[i] ^ b[i]
	}
	return EqU64(uint64(acc), 0)
}

func leU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
