package obliv

// Oblivious, order-preserving compaction (paper §4.2.1: "Goodrich's
// algorithm ... runs in time O(n log n) and is order-preserving").
//
// Compact moves the elements whose mark bit is 1 to the front of s,
// preserving their relative order; the unmarked elements end up after them
// in unspecified order. The sequence of OSwap positions depends only on
// s.Len(): mark bits influence only swap *conditions*, via branch-free
// arithmetic. The implementation is the ORCompact / OROffCompact recursion
// (Sasy, Johnson, Goldberg), which performs exactly the swap schedule of a
// reverse butterfly routing network — the same O(n log n) network Goodrich's
// compaction routes through.
//
// marks must have length s.Len() with entries 0 or 1. marks is consumed
// (it is not updated to reflect element movement).
func Compact(s Swapper, marks []uint8) {
	if s.Len() != len(marks) {
		panic("obliv: Compact marks length mismatch")
	}
	orCompact(s, marks, 0, s.Len())
}

// orCompact compacts s[lo:lo+n] for arbitrary n.
func orCompact(s Swapper, marks []uint8, lo, n int) {
	if n < 2 {
		return
	}
	n1 := greatestPowerOfTwoLessThan(n + 1) // largest power of two <= n
	if n1 == n {
		orOffCompact(s, marks, lo, n, 0)
		return
	}
	n2 := n - n1
	m := 0
	for i := lo; i < lo+n2; i++ {
		m += int(marks[i])
	}
	orCompact(s, marks, lo, n2)
	orOffCompact(s, marks, lo+n2, n1, (n1-n2+m)%n1)
	mm := uint64(m)
	for i := 0; i < n2; i++ {
		b := GeU64(uint64(i), mm)
		s.OSwap(b, lo+i, lo+i+n1)
	}
}

// orOffCompact compacts s[lo:lo+n] (n a power of two) so that the marked
// elements occupy positions lo+z, lo+z+1, ... (mod n), in order.
func orOffCompact(s Swapper, marks []uint8, lo, n, z int) {
	if n < 2 {
		return
	}
	if n == 2 {
		b := ((1 - marks[lo]) & marks[lo+1]) ^ uint8(z&1)
		s.OSwap(b, lo, lo+1)
		return
	}
	h := n / 2
	m := 0
	for i := lo; i < lo+h; i++ {
		m += int(marks[i])
	}
	orOffCompact(s, marks, lo, h, z%h)
	orOffCompact(s, marks, lo+h, h, (z+m)%h)
	var sbit uint8
	// sbit and the per-i conditions depend on the secret count m, computed
	// branch-free below.
	zm := uint64(z % h)
	zpm := uint64((z + m) % h)
	sbit = GeU64(zm+uint64(m), uint64(h)) ^ GeU64(uint64(z), uint64(h))
	for i := 0; i < h; i++ {
		b := sbit ^ GeU64(uint64(i), zpm)
		s.OSwap(b, lo+i, lo+i+h)
	}
}

// CompactLogShift is an alternative order-preserving oblivious compaction
// kept for ablation benchmarks: Goodrich's log-shifting formulation. Each
// marked element must move left by d = i - rank(i) positions; d is routed
// one bit at a time over log n passes. Distances of kept elements are
// non-decreasing in i, which guarantees the passes never collide.
//
// It performs (n-2^k) conditional swaps in pass k — the same O(n log n)
// total as Compact — but with worse constants because it must route a
// per-element distance word alongside the payload.
func CompactLogShift(s Swapper, marks []uint8) {
	n := s.Len()
	if n != len(marks) {
		panic("obliv: CompactLogShift marks length mismatch")
	}
	if n < 2 {
		return
	}
	// dist[i] = how far the element currently at slot i still has to move
	// left; live[i] = whether slot i currently holds a marked element.
	// Both arrays are swapped alongside the payload, branch-free.
	dist := make([]uint64, n)
	live := make([]uint8, n)
	rank := uint64(0)
	for i := 0; i < n; i++ {
		mi := marks[i]
		live[i] = mi
		// dist = i - rank if marked, else 0; computed branch-free.
		d := uint64(i) - rank
		dist[i] = Mask64(mi) & d
		rank += uint64(mi)
	}
	for k := 0; (1 << k) < n; k++ {
		step := 1 << k
		bit := uint64(step)
		for j := step; j < n; j++ {
			// Move the element at j left by step iff it is live and bit k
			// of its remaining distance is set.
			c := live[j] & uint8((dist[j]>>uint(k))&1)
			s.OSwap(c, j-step, j)
			// Swap metadata with the same condition.
			CondSwapU64(c, &dist[j-step], &dist[j])
			CondSwapU8(c, &live[j-step], &live[j])
			// Clear the routed bit on the element now at j-step.
			CondSetU64(c, &dist[j-step], dist[j-step]&^bit)
		}
	}
}
