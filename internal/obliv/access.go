package obliv

// FusedAccess performs, in a single pass over both buffers, the pair of
// oblivious compare-and-sets at the heart of the subORAM scan (paper §5,
// Fig. 7 step ➋): for a stored object block obj and a request slot block
// slot,
//
//	cw == 1 (matching write): exchange obj and slot — the object takes the
//	        write payload, the slot keeps the pre-write value as the
//	        response;
//	cr == 1 (matching read):  copy obj into slot — the slot takes the value
//	        as the response, the object is untouched.
//
// At most one of cw, cr may be 1. Both buffers are read and written in full
// regardless of the conditions, so the access pattern reveals neither the
// match nor the request type. len(obj) must equal len(slot).
func FusedAccess(cw, cr uint8, obj, slot []byte) {
	if len(obj) != len(slot) {
		panic("obliv: FusedAccess length mismatch")
	}
	mw := Mask64(cw)
	mrw := Mask64(cr | cw)
	n := len(obj)
	i := 0
	for ; i+8 <= n; i += 8 {
		o := leU64(obj[i:])
		s := leU64(slot[i:])
		putLeU64(obj[i:], o^(mw&(o^s)))
		putLeU64(slot[i:], s^(mrw&(s^o)))
	}
	mwb := MaskByte(cw)
	mrwb := MaskByte(cr | cw)
	for ; i < n; i++ {
		o := obj[i]
		s := slot[i]
		obj[i] = o ^ (mwb & (o ^ s))
		slot[i] = s ^ (mrwb & (s ^ o))
	}
}
