package obliv

// FusedAccess performs, in a single pass over both buffers, the pair of
// oblivious compare-and-sets at the heart of the subORAM scan (paper §5,
// Fig. 7 step ➋): for a stored object block obj and a request slot block
// slot,
//
//	cw == 1 (matching write): exchange obj and slot — the object takes the
//	        write payload, the slot keeps the pre-write value as the
//	        response;
//	cr == 1 (matching read):  copy obj into slot — the slot takes the value
//	        as the response, the object is untouched.
//
// At most one of cw, cr may be 1. Both buffers are read and written in full
// regardless of the conditions, so the access pattern reveals neither the
// match nor the request type. len(obj) must equal len(slot).
func FusedAccess(cw, cr uint8, obj, slot []byte) {
	if len(obj) != len(slot) {
		panic("obliv: FusedAccess length mismatch")
	}
	n := len(obj) &^ 7
	fusedWords(Mask64(cw), Mask64(cr|cw), obj, slot, n)
	mwb := MaskByte(cw)
	mrwb := MaskByte(cr | cw)
	for i := n; i < len(obj); i++ {
		o := obj[i]
		s := slot[i]
		obj[i] = o ^ (mwb & (o ^ s))
		slot[i] = s ^ (mrwb & (s ^ o))
	}
}
