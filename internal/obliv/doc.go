// Package obliv provides the data-oblivious building blocks that every
// enclave-resident Snoopy algorithm is assembled from (paper §4.2.1, §B.4):
//
//   - constant-time predicates and conditional copy/swap ("oblivious
//     compare-and-set", the paper's OCmpSet/OCmpSwap),
//   - bitonic sort (Batcher), serial and parallel, for arbitrary lengths,
//   - order-preserving oblivious compaction (Goodrich-style; the default
//     implementation is the ORCompact recursion, with a log-shift variant
//     kept as an ablation baseline).
//
// Obliviousness contract: every exported algorithm performs a sequence of
// element accesses (reads, conditional swaps) whose *positions* are a fixed
// function of public inputs only — Len() and, for compaction, nothing else.
// Secret data (keys, payloads, mark bits) only ever flows into the condition
// argument of OSwap or into branch-free mask arithmetic, never into an index
// computation or a Go branch. The trace tests in this package and in
// internal/trace verify this empirically by recording access sequences.
package obliv
