package obliv

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// splitRuns partitions n into k non-negative run lengths using rng; some runs
// may be empty, exercising the empty-run skip path.
func splitRuns(rng *rand.Rand, n, k int) []int {
	runs := make([]int, k)
	left := n
	for i := 0; i < k-1; i++ {
		runs[i] = rng.Intn(left + 1)
		left -= runs[i]
	}
	runs[k-1] = left
	return runs
}

func sortRunsAscending(u U64Slice, runs []int) {
	off := 0
	for _, r := range runs {
		seg := u[off : off+r]
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
		off += r
	}
}

func checkMerged(t *testing.T, u U64Slice, want []uint64, ctx string) {
	t.Helper()
	for i := range u {
		if u[i] != want[i] {
			t.Fatalf("%s: index %d = %d, want %d (full: %v vs %v)", ctx, i, u[i], want[i], u, want)
		}
	}
}

// TestMergeSortedMatchesSort cross-checks MergeSorted against sort-from-scratch
// for every length 0..96 (every non-power-of-two included) and several run
// counts, on random values with heavy duplication.
func TestMergeSortedMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for n := 0; n <= 96; n++ {
		for _, k := range []int{1, 2, 3, 4, 5, 7, 8} {
			for trial := 0; trial < 4; trial++ {
				u := make(U64Slice, n)
				for i := range u {
					u[i] = uint64(rng.Intn(n/2 + 1)) // dense duplicates
				}
				want := append([]uint64(nil), u...)
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

				runs := splitRuns(rng, n, k)
				sortRunsAscending(u, runs)
				MergeSorted(u, runs)
				checkMerged(t, u, want, fmt.Sprintf("n=%d k=%d runs=%v", n, k, runs))
			}
		}
	}
}

// TestMergeSortedAdversarial drives the merge through hand-picked worst-case
// run shapes: all-equal values, fully interleaved runs, strictly descending
// value blocks, one giant run plus singletons, and runs of maximally skewed
// lengths.
func TestMergeSortedAdversarial(t *testing.T) {
	cases := []struct {
		name string
		vals []uint64
		runs []int
	}{
		{"lambda-counterexample", []uint64{2, 3, 1}, []int{2, 1}},
		{"all-equal", []uint64{5, 5, 5, 5, 5, 5, 5}, []int{3, 4}},
		{"interleaved", []uint64{0, 2, 4, 6, 8, 1, 3, 5, 7, 9}, []int{5, 5}},
		{"descending-blocks", []uint64{7, 8, 9, 4, 5, 6, 1, 2, 3}, []int{3, 3, 3}},
		{"empty-runs", []uint64{3, 1, 2}, []int{1, 0, 2, 0}},
		{"giant-plus-singletons", []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 0, 11}, []int{10, 1, 1}},
		{"skewed", []uint64{9, 0, 1, 2, 3, 4, 5, 6, 7, 8}, []int{1, 9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := append(U64Slice(nil), tc.vals...)
			want := append([]uint64(nil), tc.vals...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			sortRunsAscending(u, tc.runs)
			MergeSorted(u, tc.runs)
			checkMerged(t, u, want, tc.name)
		})
	}
}

// TestMergeTwoRunsZeroOne is the exhaustive 0/1-principle proof of the
// two-run merge for every split (a, b) with a+b <= 28. A comparator network
// (plus the fixed reversal permutation) sorts all inputs iff it sorts all 0/1
// inputs; every 0/1 pair of ascending runs is 0^p 1^q ++ 0^r 1^t, which after
// reversing the left run is the v-shaped 1^q 0^(p+r) 1^t — exactly the class
// mergeTwoRuns claims Lang's arbitrary-length bitonicMerge handles.
func TestMergeTwoRunsZeroOne(t *testing.T) {
	for n := 2; n <= 28; n++ {
		for a := 0; a <= n; a++ {
			b := n - a
			for p := 0; p <= a; p++ {
				for r := 0; r <= b; r++ {
					u := make(U64Slice, n)
					ones := 0
					for i := p; i < a; i++ {
						u[i] = 1
						ones++
					}
					for i := a + r; i < n; i++ {
						u[i] = 1
						ones++
					}
					mergeTwoRuns(u, 0, a, b)
					for i := range u {
						want := uint64(0)
						if i >= n-ones {
							want = 1
						}
						if u[i] != want {
							t.Fatalf("n=%d a=%d b=%d p=%d r=%d: got %v", n, a, b, p, r, u)
						}
					}
				}
			}
		}
	}
}

// mergeTraceSorter records the position sequence of every Greater and OSwap call —
// but not values or swap conditions — so tests can prove the schedule is a
// function of the run lengths alone.
type mergeTraceSorter struct {
	u     U64Slice
	trace [][3]int // {op (0=Greater, 1=OSwap), i, j}
}

func (ts *mergeTraceSorter) Len() int { return len(ts.u) }

func (ts *mergeTraceSorter) OSwap(c uint8, i, j int) {
	ts.trace = append(ts.trace, [3]int{1, i, j})
	ts.u.OSwap(c, i, j)
}

func (ts *mergeTraceSorter) Greater(i, j int) uint8 {
	ts.trace = append(ts.trace, [3]int{0, i, j})
	return ts.u.Greater(i, j)
}

// TestMergeSortedTraceFixed: two secret-differing inputs with the same public
// run lengths must produce byte-identical compare/swap position sequences —
// the merge network's shape depends only on the lengths.
func TestMergeSortedTraceFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, runs := range [][]int{{5, 3}, {1, 1, 1}, {7, 0, 9, 2}, {13, 13, 13, 13}, {6, 11, 3, 8, 1}} {
		n := 0
		for _, r := range runs {
			n += r
		}
		var traces [][][3]int
		for trial := 0; trial < 3; trial++ {
			u := make(U64Slice, n)
			for i := range u {
				u[i] = rng.Uint64() % 64
			}
			sortRunsAscending(u, runs)
			ts := &mergeTraceSorter{u: u}
			MergeSorted(ts, runs)
			traces = append(traces, ts.trace)
		}
		for trial := 1; trial < len(traces); trial++ {
			if len(traces[trial]) != len(traces[0]) {
				t.Fatalf("runs=%v: trace length %d vs %d across secret inputs", runs, len(traces[trial]), len(traces[0]))
			}
			for i := range traces[0] {
				if traces[trial][i] != traces[0][i] {
					t.Fatalf("runs=%v: trace diverges at step %d: %v vs %v", runs, i, traces[trial][i], traces[0][i])
				}
			}
		}
	}
}

// TestMergeSortedCostAccounting pins the cost model to reality: the number of
// Greater calls MergeSorted makes equals MergeSortedCost, ditto Sort and
// SortCost, and at >=4 equal runs merging is strictly cheaper than
// re-sorting — the tentpole's asymptotic claim, checked concretely.
func TestMergeSortedCostAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, runs := range [][]int{{100, 100}, {64, 64, 64, 64}, {33, 57, 12, 90, 41}} {
		n := 0
		for _, r := range runs {
			n += r
		}
		u := make(U64Slice, n)
		for i := range u {
			u[i] = rng.Uint64()
		}
		sortRunsAscending(u, runs)
		ts := &mergeTraceSorter{u: u}
		MergeSorted(ts, runs)
		got := 0
		for _, step := range ts.trace {
			if step[0] == 0 {
				got++
			}
		}
		if want := MergeSortedCost(runs); got != want {
			t.Errorf("runs=%v: %d compare-exchanges, MergeSortedCost says %d", runs, got, want)
		}
	}

	u := make(U64Slice, 512)
	for i := range u {
		u[i] = rng.Uint64()
	}
	ts := &mergeTraceSorter{u: u}
	Sort(ts)
	got := 0
	for _, step := range ts.trace {
		if step[0] == 0 {
			got++
		}
	}
	if want := SortCost(512); got != want {
		t.Errorf("Sort(512): %d compare-exchanges, SortCost says %d", got, want)
	}

	for _, leaves := range []int{4, 8} {
		runs := make([]int, leaves)
		for i := range runs {
			runs[i] = 4096 / leaves
		}
		if m, s := MergeSortedCost(runs), SortCost(4096); m >= s {
			t.Errorf("%d runs of %d: merge cost %d not below sort cost %d", leaves, runs[0], m, s)
		}
	}
}

func TestMergeSortedPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
		runs []int
	}{
		{"short", 4, []int{1, 2}},
		{"long", 4, []int{3, 3}},
		{"negative", 4, []int{5, -1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			MergeSorted(make(U64Slice, tc.n), tc.runs)
		})
	}
}
