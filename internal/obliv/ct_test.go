package obliv

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLtU64(t *testing.T) {
	cases := []struct {
		x, y uint64
		want uint8
	}{
		{0, 0, 0}, {0, 1, 1}, {1, 0, 0},
		{^uint64(0), 0, 0}, {0, ^uint64(0), 1},
		{^uint64(0), ^uint64(0), 0},
		{1 << 63, (1 << 63) - 1, 0}, {(1 << 63) - 1, 1 << 63, 1},
		{42, 42, 0}, {41, 42, 1},
	}
	for _, c := range cases {
		if got := LtU64(c.x, c.y); got != c.want {
			t.Errorf("LtU64(%d,%d) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestPredicatesQuick(t *testing.T) {
	f := func(x, y uint64) bool {
		lt := LtU64(x, y) == 1
		gt := GtU64(x, y) == 1
		le := LeU64(x, y) == 1
		ge := GeU64(x, y) == 1
		eq := EqU64(x, y) == 1
		ne := NeqU64(x, y) == 1
		return lt == (x < y) && gt == (x > y) && le == (x <= y) &&
			ge == (x >= y) && eq == (x == y) && ne == (x != y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelectAndCondSet(t *testing.T) {
	if SelectU64(0, 7, 9) != 7 {
		t.Error("SelectU64(0) should return first arg")
	}
	if SelectU64(1, 7, 9) != 9 {
		t.Error("SelectU64(1) should return second arg")
	}
	x := uint64(5)
	CondSetU64(0, &x, 10)
	if x != 5 {
		t.Errorf("CondSetU64(0) changed dst: %d", x)
	}
	CondSetU64(1, &x, 10)
	if x != 10 {
		t.Errorf("CondSetU64(1) did not set dst: %d", x)
	}
}

func TestCondSwapU64(t *testing.T) {
	x, y := uint64(1), uint64(2)
	CondSwapU64(0, &x, &y)
	if x != 1 || y != 2 {
		t.Errorf("CondSwapU64(0) swapped: %d %d", x, y)
	}
	CondSwapU64(1, &x, &y)
	if x != 2 || y != 1 {
		t.Errorf("CondSwapU64(1) did not swap: %d %d", x, y)
	}
}

func TestCondBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 160, 1000} {
		a := make([]byte, n)
		b := make([]byte, n)
		rng.Read(a)
		rng.Read(b)
		a0 := append([]byte(nil), a...)
		b0 := append([]byte(nil), b...)

		CondCopyBytes(0, a, b)
		if !bytes.Equal(a, a0) {
			t.Fatalf("n=%d: CondCopyBytes(0) modified dst", n)
		}
		CondCopyBytes(1, a, b)
		if !bytes.Equal(a, b) {
			t.Fatalf("n=%d: CondCopyBytes(1) did not copy", n)
		}

		a = append([]byte(nil), a0...)
		CondSwapBytes(0, a, b)
		if !bytes.Equal(a, a0) || !bytes.Equal(b, b0) {
			t.Fatalf("n=%d: CondSwapBytes(0) modified operands", n)
		}
		CondSwapBytes(1, a, b)
		if !bytes.Equal(a, b0) || !bytes.Equal(b, a0) {
			t.Fatalf("n=%d: CondSwapBytes(1) did not swap", n)
		}
	}
}

func TestEqBytes(t *testing.T) {
	if EqBytes([]byte{1, 2, 3}, []byte{1, 2, 3}) != 1 {
		t.Error("equal slices should compare 1")
	}
	if EqBytes([]byte{1, 2, 3}, []byte{1, 2, 4}) != 0 {
		t.Error("unequal slices should compare 0")
	}
	if EqBytes([]byte{1}, []byte{1, 2}) != 0 {
		t.Error("length mismatch should compare 0")
	}
	if EqBytes(nil, nil) != 1 {
		t.Error("empty slices should compare 1")
	}
}

func TestCondBytesMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	CondCopyBytes(1, make([]byte, 3), make([]byte, 4))
}
