package main

import "testing"
import "snoopy/internal/obliv"

func TestVShapeExhaustive(t *testing.T) {
	// all 0/1 pairs of sorted runs a,b up to length 9 each, merged via MergeSorted
	for a := 0; a <= 9; a++ {
		for b := 0; b <= 9; b++ {
			// run A: zeros then ones, choose count of ones
			for za := 0; za <= a; za++ {
				for zb := 0; zb <= b; zb++ {
					s := make(obliv.U64Slice, 0, a+b)
					for i := 0; i < a; i++ {
						if i < za { s = append(s, 0) } else { s = append(s, 1) }
					}
					for i := 0; i < b; i++ {
						if i < zb { s = append(s, 0) } else { s = append(s, 1) }
					}
					obliv.MergeSorted(s, []int{a, b})
					for i := 1; i < len(s); i++ {
						if s[i-1] > s[i] {
							t.Fatalf("a=%d b=%d za=%d zb=%d: not sorted %v", a, b, za, zb, s)
						}
					}
				}
			}
		}
	}
}
