package obliv

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refCompact is the plain (non-oblivious) specification: marked elements
// first, original order preserved.
func refCompact(vals []uint64, marks []uint8) []uint64 {
	var out []uint64
	for i, v := range vals {
		if marks[i] == 1 {
			out = append(out, v)
		}
	}
	return out
}

func checkCompact(t *testing.T, name string, fn func(Swapper, []uint8), n int, rng *rand.Rand) {
	t.Helper()
	vals := make(U64Slice, n)
	marks := make([]uint8, n)
	for i := range vals {
		vals[i] = uint64(i) + 1000 // distinct, identifiable
		marks[i] = uint8(rng.Intn(2))
	}
	want := refCompact(vals, marks)
	got := append(U64Slice(nil), vals...)
	fn(got, append([]uint8(nil), marks...))
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("%s n=%d: slot %d = %d, want %d (marks=%v)", name, n, i, got[i], w, marks)
		}
	}
	// The unmarked elements must still all be present (it's a permutation).
	seen := map[uint64]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("%s n=%d: duplicate value %d after compaction", name, n, v)
		}
		seen[v] = true
	}
}

func TestCompactAllSmallSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n <= 140; n++ {
		for trial := 0; trial < 6; trial++ {
			checkCompact(t, "Compact", Compact, n, rng)
		}
	}
}

func TestCompactLogShiftAllSmallSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for n := 0; n <= 140; n++ {
		for trial := 0; trial < 6; trial++ {
			checkCompact(t, "CompactLogShift", CompactLogShift, n, rng)
		}
	}
}

func TestCompactLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1000, 4096, 10000} {
		checkCompact(t, "Compact", Compact, n, rng)
		checkCompact(t, "CompactLogShift", CompactLogShift, n, rng)
	}
}

func TestCompactEdgeMarks(t *testing.T) {
	for _, n := range []int{1, 2, 8, 33} {
		allOn := make([]uint8, n)
		allOff := make([]uint8, n)
		vals := make(U64Slice, n)
		for i := range vals {
			vals[i] = uint64(i)
			allOn[i] = 1
		}
		v1 := append(U64Slice(nil), vals...)
		Compact(v1, append([]uint8(nil), allOn...))
		for i := range v1 {
			if v1[i] != uint64(i) {
				t.Fatalf("n=%d all-marked: order disturbed at %d", n, i)
			}
		}
		v2 := append(U64Slice(nil), vals...)
		Compact(v2, allOff) // must not panic; contents may permute
		_ = v2
	}
}

func TestCompactQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := func(raw []bool) bool {
		n := len(raw)
		vals := make(U64Slice, n)
		marks := make([]uint8, n)
		for i := range raw {
			vals[i] = rng.Uint64()
			if raw[i] {
				marks[i] = 1
			}
		}
		want := refCompact(vals, marks)
		got := append(U64Slice(nil), vals...)
		Compact(got, marks)
		for i, w := range want {
			if got[i] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// traceSwapper records OSwap positions to verify the compaction trace is a
// function of length only — not of the mark bits.
type traceSwapper struct {
	U64Slice
	ops []int64
}

func (ts *traceSwapper) OSwap(c uint8, i, j int) {
	ts.ops = append(ts.ops, int64(i)<<32|int64(j))
	ts.U64Slice.OSwap(c, i, j)
}

func TestCompactTraceOblivious(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, fn := range []struct {
		name string
		f    func(Swapper, []uint8)
	}{{"Compact", Compact}, {"CompactLogShift", CompactLogShift}} {
		for _, n := range []int{1, 2, 65, 512, 1000} {
			var ref []int64
			for trial := 0; trial < 4; trial++ {
				ts := &traceSwapper{U64Slice: randU64s(rng, n)}
				marks := make([]uint8, n)
				for i := range marks {
					marks[i] = uint8(rng.Intn(2))
				}
				fn.f(ts, marks)
				if trial == 0 {
					ref = ts.ops
					continue
				}
				if len(ts.ops) != len(ref) {
					t.Fatalf("%s n=%d: trace length varies: %d vs %d", fn.name, n, len(ts.ops), len(ref))
				}
				for i := range ref {
					if ref[i] != ts.ops[i] {
						t.Fatalf("%s n=%d: trace diverges at op %d", fn.name, n, i)
					}
				}
			}
		}
	}
}

func TestCompactMarksMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on marks length mismatch")
		}
	}()
	Compact(make(U64Slice, 4), make([]uint8, 3))
}
