// SSE2 kernels for the fused oblivious word loops. Every instruction
// executes unconditionally with data-independent control flow: the masks
// select values, never branches, so the access pattern and the instruction
// trace are identical whether a condition is 0 or 1.

#include "textflag.h"

// func fusedAccessAsm(mw, mrw uint64, obj, slot *byte, n int)
// Requires n > 0 and n%8 == 0. In place:
//
//	obj'  = obj  ^ (mw  & (obj^slot))
//	slot' = slot ^ (mrw & (obj^slot))
TEXT ·fusedAccessAsm(SB), NOSPLIT, $0-40
	MOVQ mw+0(FP), AX
	MOVQ mrw+8(FP), BX
	MOVQ obj+16(FP), SI
	MOVQ slot+24(FP), DI
	MOVQ n+32(FP), CX
	MOVQ AX, X0
	PUNPCKLQDQ X0, X0
	MOVQ BX, X1
	PUNPCKLQDQ X1, X1

loop32:
	CMPQ CX, $32
	JLT  loop16
	MOVOU (SI), X2
	MOVOU (DI), X3
	MOVOU 16(SI), X6
	MOVOU 16(DI), X7
	MOVOU X2, X4
	PXOR  X3, X4
	MOVOU X6, X8
	PXOR  X7, X8
	MOVOU X4, X5
	PAND  X0, X5
	PXOR  X2, X5
	MOVOU X8, X9
	PAND  X0, X9
	PXOR  X6, X9
	PAND  X1, X4
	PXOR  X3, X4
	PAND  X1, X8
	PXOR  X7, X8
	MOVOU X5, (SI)
	MOVOU X4, (DI)
	MOVOU X9, 16(SI)
	MOVOU X8, 16(DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $32, CX
	JMP  loop32

loop16:
	CMPQ CX, $16
	JLT  loop8
	MOVOU (SI), X2
	MOVOU (DI), X3
	MOVOU X2, X4
	PXOR  X3, X4
	MOVOU X4, X5
	PAND  X0, X5
	PXOR  X2, X5
	PAND  X1, X4
	PXOR  X3, X4
	MOVOU X5, (SI)
	MOVOU X4, (DI)
	ADDQ $16, SI
	ADDQ $16, DI
	SUBQ $16, CX

loop8:
	CMPQ CX, $8
	JLT  done
	MOVQ (SI), AX
	MOVQ (DI), BX
	MOVQ AX, DX
	XORQ BX, DX
	MOVQ DX, R8
	ANDQ mw+0(FP), R8
	XORQ AX, R8
	ANDQ mrw+8(FP), DX
	XORQ BX, DX
	MOVQ R8, (SI)
	MOVQ DX, (DI)
	ADDQ $8, SI
	ADDQ $8, DI
	SUBQ $8, CX
	JMP  loop8

done:
	RET

// func condCopyAsm(m uint64, dst, src *byte, n int)
// Requires n > 0 and n%8 == 0. In place:
//
//	dst' = dst ^ (m & (dst^src))
//
// src is only read (it may be shared read-only across goroutines).
TEXT ·condCopyAsm(SB), NOSPLIT, $0-32
	MOVQ m+0(FP), AX
	MOVQ dst+8(FP), SI
	MOVQ src+16(FP), DI
	MOVQ n+24(FP), CX
	MOVQ AX, X0
	PUNPCKLQDQ X0, X0

copy32:
	CMPQ CX, $32
	JLT  copy16
	MOVOU (SI), X2
	MOVOU (DI), X3
	MOVOU 16(SI), X4
	MOVOU 16(DI), X5
	PXOR  X2, X3
	PAND  X0, X3
	PXOR  X2, X3
	PXOR  X4, X5
	PAND  X0, X5
	PXOR  X4, X5
	MOVOU X3, (SI)
	MOVOU X5, 16(SI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $32, CX
	JMP  copy32

copy16:
	CMPQ CX, $16
	JLT  copy8
	MOVOU (SI), X2
	MOVOU (DI), X3
	PXOR  X2, X3
	PAND  X0, X3
	PXOR  X2, X3
	MOVOU X3, (SI)
	ADDQ $16, SI
	ADDQ $16, DI
	SUBQ $16, CX

copy8:
	CMPQ CX, $8
	JLT  copydone
	MOVQ (SI), BX
	MOVQ (DI), DX
	XORQ BX, DX
	ANDQ AX, DX
	XORQ BX, DX
	MOVQ DX, (SI)
	ADDQ $8, SI
	ADDQ $8, DI
	SUBQ $8, CX
	JMP  copy8

copydone:
	RET
