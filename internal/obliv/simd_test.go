package obliv

import (
	"bytes"
	"math/rand"
	"testing"
)

// Scalar reference implementations: the pre-SIMD word loops, kept here as
// the oracle the optimized kernels must match bit-for-bit.

func refFusedAccess(cw, cr uint8, obj, slot []byte) {
	mwb := MaskByte(cw)
	mrwb := MaskByte(cr | cw)
	for i := range obj {
		o := obj[i]
		s := slot[i]
		obj[i] = o ^ (mwb & (o ^ s))
		slot[i] = s ^ (mrwb & (s ^ o))
	}
}

func refCondCopy(c uint8, dst, src []byte) {
	mb := MaskByte(c)
	for i := range dst {
		dst[i] ^= mb & (dst[i] ^ src[i])
	}
}

func refCondSwap(c uint8, a, b []byte) {
	mb := MaskByte(c)
	for i := range a {
		t := mb & (a[i] ^ b[i])
		a[i] ^= t
		b[i] ^= t
	}
}

// TestFusedWordLoopsMatchReference cross-checks the word-loop kernels
// (SSE2 on amd64, scalar elsewhere) against byte-at-a-time references over
// lengths that exercise the 32/16/8-byte chunks and every tail size.
func TestFusedWordLoopsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	lengths := []int{0, 1, 7, 8, 9, 15, 16, 17, 24, 31, 32, 33, 40, 63, 64, 96, 100, 160, 161, 1024, 1031}
	for _, n := range lengths {
		for trial := 0; trial < 64; trial++ {
			a1 := make([]byte, n)
			b1 := make([]byte, n)
			r.Read(a1)
			r.Read(b1)
			a2 := append([]byte(nil), a1...)
			b2 := append([]byte(nil), b1...)

			cw := uint8(trial & 1)
			cr := uint8((trial>>1)&1) & (1 - cw)
			aRef := append([]byte(nil), a1...)
			bRef := append([]byte(nil), b1...)
			FusedAccess(cw, cr, a1, b1)
			refFusedAccess(cw, cr, aRef, bRef)
			if !bytes.Equal(a1, aRef) || !bytes.Equal(b1, bRef) {
				t.Fatalf("FusedAccess mismatch n=%d cw=%d cr=%d", n, cw, cr)
			}

			c := uint8(trial & 1)
			aRef = append([]byte(nil), a2...)
			bRef = append([]byte(nil), b2...)
			CondSwapBytes(c, a1, b1)
			refCondSwap(c, aRef, bRef)
			copy(a1, a2)
			copy(b1, b2)
			CondSwapBytes(c, a1, b1)
			if !bytes.Equal(a1, aRef) || !bytes.Equal(b1, bRef) {
				t.Fatalf("CondSwapBytes mismatch n=%d c=%d", n, c)
			}

			srcSnap := append([]byte(nil), b2...)
			copy(a1, a2)
			copy(b1, b2)
			aRef = append([]byte(nil), a2...)
			CondCopyBytes(c, a1, b1)
			refCondCopy(c, aRef, srcSnap)
			if !bytes.Equal(a1, aRef) {
				t.Fatalf("CondCopyBytes dst mismatch n=%d c=%d", n, c)
			}
			if !bytes.Equal(b1, srcSnap) {
				t.Fatalf("CondCopyBytes mutated src n=%d c=%d", n, c)
			}
		}
	}
}

// TestFusedWordLoopsUnalignedBase verifies the kernels at every base
// misalignment: MOVOU handles unaligned addresses, but the wrapper's tail
// split must still be exact when the slice does not start 16-byte aligned.
func TestFusedWordLoopsUnalignedBase(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	backA := make([]byte, 256)
	backB := make([]byte, 256)
	for off := 0; off < 16; off++ {
		for _, n := range []int{8, 40, 160} {
			a := backA[off : off+n]
			b := backB[off : off+n]
			r.Read(a)
			r.Read(b)
			aRef := append([]byte(nil), a...)
			bRef := append([]byte(nil), b...)
			FusedAccess(1, 0, a, b)
			refFusedAccess(1, 0, aRef, bRef)
			if !bytes.Equal(a, aRef) || !bytes.Equal(b, bRef) {
				t.Fatalf("unaligned mismatch off=%d n=%d", off, n)
			}
		}
	}
}

func BenchmarkCondSwapBytes160(b *testing.B) {
	x := make([]byte, 160)
	y := make([]byte, 160)
	b.SetBytes(320)
	for i := 0; i < b.N; i++ {
		CondSwapBytes(uint8(i&1), x, y)
	}
}

func BenchmarkCondCopyBytes160(b *testing.B) {
	x := make([]byte, 160)
	y := make([]byte, 160)
	b.SetBytes(320)
	for i := 0; i < b.N; i++ {
		CondCopyBytes(uint8(i&1), x, y)
	}
}
