//go:build !amd64 || purego

package obliv

// SIMDWordLoops reports whether the fused word loops run on SIMD kernels
// (false here: portable scalar fallback).
const SIMDWordLoops = false

// fusedWords applies obj' = obj^(mw&(obj^slot)), slot' = slot^(mrw&(obj^slot))
// to the first n bytes of both slices. n must be a multiple of 8 and no
// larger than either length.
func fusedWords(mw, mrw uint64, obj, slot []byte, n int) {
	for i := 0; i+8 <= n; i += 8 {
		o := leU64(obj[i:])
		s := leU64(slot[i:])
		putLeU64(obj[i:], o^(mw&(o^s)))
		putLeU64(slot[i:], s^(mrw&(s^o)))
	}
}

// condCopyWords applies dst' = dst^(m&(dst^src)) to the first n bytes.
// n must be a multiple of 8 and no larger than either length. src is
// never written.
func condCopyWords(m uint64, dst, src []byte, n int) {
	for i := 0; i+8 <= n; i += 8 {
		d := leU64(dst[i:])
		s := leU64(src[i:])
		putLeU64(dst[i:], d^(m&(d^s)))
	}
}
