package obliv

import (
	"bytes"
	"testing"
)

func TestFusedAccess(t *testing.T) {
	objOrig := []byte("stored-object-value")
	slotOrig := []byte("request-write-paylo")

	// No match: both untouched.
	obj := append([]byte(nil), objOrig...)
	slot := append([]byte(nil), slotOrig...)
	FusedAccess(0, 0, obj, slot)
	if !bytes.Equal(obj, objOrig) || !bytes.Equal(slot, slotOrig) {
		t.Fatal("no-op case modified buffers")
	}

	// Matching read: slot takes object value, object untouched.
	obj = append([]byte(nil), objOrig...)
	slot = append([]byte(nil), slotOrig...)
	FusedAccess(0, 1, obj, slot)
	if !bytes.Equal(obj, objOrig) {
		t.Fatal("read modified object")
	}
	if !bytes.Equal(slot, objOrig) {
		t.Fatalf("read response wrong: %q", slot)
	}

	// Matching write: object takes payload, slot keeps pre-write value.
	obj = append([]byte(nil), objOrig...)
	slot = append([]byte(nil), slotOrig...)
	FusedAccess(1, 0, obj, slot)
	if !bytes.Equal(obj, slotOrig) {
		t.Fatalf("write not applied: %q", obj)
	}
	if !bytes.Equal(slot, objOrig) {
		t.Fatalf("write response should be pre-write value: %q", slot)
	}
}

func TestFusedAccessOddLength(t *testing.T) {
	// Exercise the byte-tail path (length not a multiple of 8).
	obj := []byte{1, 2, 3}
	slot := []byte{9, 9, 9}
	FusedAccess(1, 0, obj, slot)
	if !bytes.Equal(obj, []byte{9, 9, 9}) || !bytes.Equal(slot, []byte{1, 2, 3}) {
		t.Fatalf("odd-length swap wrong: %v %v", obj, slot)
	}
}
