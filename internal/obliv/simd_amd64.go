//go:build amd64 && !purego

package obliv

// SIMDWordLoops reports whether the fused word loops run on the SSE2
// kernels in simd_amd64.s (true here) or the portable scalar fallback.
const SIMDWordLoops = true

//go:noescape
func fusedAccessAsm(mw, mrw uint64, obj, slot *byte, n int)

//go:noescape
func condCopyAsm(m uint64, dst, src *byte, n int)

// fusedWords applies obj' = obj^(mw&(obj^slot)), slot' = slot^(mrw&(obj^slot))
// to the first n bytes of both slices. n must be a multiple of 8 and no
// larger than either length.
func fusedWords(mw, mrw uint64, obj, slot []byte, n int) {
	if n > 0 {
		fusedAccessAsm(mw, mrw, &obj[0], &slot[0], n)
	}
}

// condCopyWords applies dst' = dst^(m&(dst^src)) to the first n bytes.
// n must be a multiple of 8 and no larger than either length. src is
// never written.
func condCopyWords(m uint64, dst, src []byte, n int) {
	if n > 0 {
		condCopyAsm(m, &dst[0], &src[0], n)
	}
}
