package obliv

import "math/bits"

// MergeSorted obliviously merges k consecutive ascending runs held in s into
// one ascending sequence. runs gives the length of each run, laid out
// back-to-back from index 0; their sum must equal s.Len(). The merge performs
// O(n log n · log k) compare-exchanges — asymptotically cheaper than
// re-sorting from scratch (O(n log² n)) — and, like Sort, its sequence of
// touched (i, j) positions depends only on the run lengths, never on element
// values: run lengths are public parameters, so the schedule leaks nothing.
//
// Like Sort, MergeSorted is not stable; callers that need a deterministic
// order for equal keys must fold a tiebreaker into Greater.
func MergeSorted(s Sorter, runs []int) {
	total := 0
	for _, r := range runs {
		if r < 0 {
			panic("obliv: MergeSorted run length negative")
		}
		total += r
	}
	if total != s.Len() {
		panic("obliv: MergeSorted run lengths do not cover the sequence")
	}
	mergeRuns(s, 0, runs)
}

// mergeRuns merges the consecutive runs starting at lo via a balanced binary
// tree of two-run merges: left half of the runs, right half, then the pair.
// The tree shape depends only on len(runs), keeping the schedule public.
func mergeRuns(s Sorter, lo int, runs []int) int {
	switch len(runs) {
	case 0:
		return 0
	case 1:
		return runs[0]
	}
	h := len(runs) / 2
	a := mergeRuns(s, lo, runs[:h])
	b := mergeRuns(s, lo+a, runs[h:])
	mergeTwoRuns(s, lo, a, b)
	return a + b
}

// mergeTwoRuns merges the ascending runs s[lo:lo+a] and s[lo+a:lo+a+b] into
// one ascending run. It first reverses the left run with unconditional swaps
// (a fixed permutation — no data-dependent access), turning the concatenation
// into a "v-shaped" sequence (descending then ascending, with an arbitrary
// inflection point). Lang's arbitrary-length bitonicMerge sorts exactly that
// class: at every level the m = 2^⌊log n⌋ window compare-exchanges push the
// n-m largest elements into the upper part and leave both recursion halves
// v-shaped again. Reversing is essential — merging two ascending runs
// directly forms a Λ-shaped sequence, which the arbitrary-length network does
// NOT sort (e.g. [2,3,1] stays broken); see TestMergeTwoRunsZeroOne for the
// exhaustive 0/1-principle check of the v-shaped claim.
func mergeTwoRuns(s Sorter, lo, a, b int) {
	if a == 0 || b == 0 {
		return
	}
	for i := 0; i < a/2; i++ {
		s.OSwap(1, lo+i, lo+a-1-i)
	}
	bitonicMerge(s, lo, a+b, true)
}

// MergeSortedCost returns the number of compare-exchanges MergeSorted will
// perform for the given run lengths — a pure function of public parameters,
// used by the planner's cost model and by tests asserting the merge beats a
// full re-sort.
func MergeSortedCost(runs []int) int {
	cost := 0
	var walk func(lens []int) int
	walk = func(lens []int) int {
		switch len(lens) {
		case 0:
			return 0
		case 1:
			return lens[0]
		}
		h := len(lens) / 2
		a := walk(lens[:h])
		b := walk(lens[h:])
		if a > 0 && b > 0 {
			cost += bitonicMergeCost(a + b)
		}
		return a + b
	}
	walk(runs)
	return cost
}

// SortCost returns the number of compare-exchanges Sort performs on a
// sequence of length n. Public-parameter function, planner companion to
// MergeSortedCost. Memoized along the recursion: the two halves differ in
// length by at most one, so only O(log n) distinct lengths occur and the
// planner can evaluate it for epoch-scale n (10⁸+) in microseconds.
func SortCost(n int) int {
	memo := make(map[int]int)
	var rec func(int) int
	rec = func(n int) int {
		if n <= 1 {
			return 0
		}
		if c, ok := memo[n]; ok {
			return c
		}
		m := n / 2
		c := rec(m) + rec(n-m) + bitonicMergeCost(n)
		memo[n] = c
		return c
	}
	return rec(n)
}

func bitonicMergeCost(n int) int {
	if n <= 1 {
		return 0
	}
	if n&(n-1) == 0 {
		// Power of two: log₂ n levels of n/2 comparators each. Closed form
		// so the arbitrary-length recursion below strips one top bit per
		// step instead of expanding the full O(n)-node recursion tree.
		return n * (bits.Len(uint(n)) - 1) / 2
	}
	m := greatestPowerOfTwoLessThan(n)
	return (n - m) + bitonicMergeCost(m) + bitonicMergeCost(n-m)
}
