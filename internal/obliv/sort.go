package obliv

import (
	"runtime"
	"sync"
)

// Swapper is a collection supporting oblivious conditional swaps. OSwap must
// exchange elements i and j iff cond == 1, touching both elements with an
// access pattern independent of cond.
type Swapper interface {
	Len() int
	OSwap(cond uint8, i, j int)
}

// Sorter extends Swapper with a branch-free ordering predicate: Greater
// returns 1 iff element i must be placed strictly after element j.
type Sorter interface {
	Swapper
	Greater(i, j int) uint8
}

// Sort obliviously sorts s in ascending order using Batcher's bitonic
// network, generalized to arbitrary lengths (H.W. Lang's variant). The
// sequence of (i, j) compare-exchange positions depends only on s.Len();
// it performs O(n log² n) compare-exchanges. Sorting is not stable; callers
// that need stability must fold a tiebreaker into Greater.
func Sort(s Sorter) {
	bitonicSort(s, 0, s.Len(), true)
}

// bitonicSort sorts s[lo:lo+n] ascending if up, descending otherwise.
func bitonicSort(s Sorter, lo, n int, up bool) {
	if n <= 1 {
		return
	}
	m := n / 2
	bitonicSort(s, lo, m, !up)
	bitonicSort(s, lo+m, n-m, up)
	bitonicMerge(s, lo, n, up)
}

// bitonicMerge merges the bitonic sequence s[lo:lo+n] into ascending
// (up) or descending order.
func bitonicMerge(s Sorter, lo, n int, up bool) {
	if n <= 1 {
		return
	}
	m := greatestPowerOfTwoLessThan(n)
	for i := lo; i < lo+n-m; i++ {
		compareSwap(s, i, i+m, up)
	}
	bitonicMerge(s, lo, m, up)
	bitonicMerge(s, lo+m, n-m, up)
}

func compareSwap(s Sorter, i, j int, up bool) {
	g := s.Greater(i, j) // 1 if element i belongs after element j
	var dir uint8
	if up {
		dir = 1
	}
	// Ascending: swap when i is greater. Descending: swap when i is not
	// greater. The branch above depends only on the public direction.
	s.OSwap(g^dir^1, i, j)
}

func greatestPowerOfTwoLessThan(n int) int {
	k := 1
	for k < n {
		k <<= 1
	}
	return k >> 1
}

// SortParallel sorts like Sort but fans compare-exchange work out across up
// to `workers` goroutines. The network — and therefore the access pattern —
// is identical to Sort's; only the interleaving of independent
// compare-exchanges differs. workers <= 1 falls back to the serial sort.
func SortParallel(s Sorter, workers int) {
	if workers <= 1 || s.Len() < 2 {
		Sort(s)
		return
	}
	sem := make(chan struct{}, workers-1)
	var p parSorter
	p.s = s
	p.sem = sem
	p.sort(0, s.Len(), true)
}

// parallelGrain is the subproblem size below which the parallel sorter stops
// spawning goroutines and recursing into the semaphore.
const parallelGrain = 1 << 9

type parSorter struct {
	s   Sorter
	sem chan struct{}
}

// tryGo runs f on a fresh goroutine if a worker slot is free, signalling wg;
// otherwise it runs f inline and returns false.
func (p *parSorter) tryGo(wg *sync.WaitGroup, f func()) {
	select {
	case p.sem <- struct{}{}:
		wg.Add(1)
		go func() {
			defer func() {
				<-p.sem
				wg.Done()
			}()
			f()
		}()
	default:
		f()
	}
}

func (p *parSorter) sort(lo, n int, up bool) {
	if n <= 1 {
		return
	}
	if n < parallelGrain {
		bitonicSort(p.s, lo, n, up)
		return
	}
	m := n / 2
	var wg sync.WaitGroup
	p.tryGo(&wg, func() { p.sort(lo, m, !up) })
	p.sort(lo+m, n-m, up)
	wg.Wait()
	p.merge(lo, n, up)
}

func (p *parSorter) merge(lo, n int, up bool) {
	if n <= 1 {
		return
	}
	if n < parallelGrain {
		bitonicMerge(p.s, lo, n, up)
		return
	}
	m := greatestPowerOfTwoLessThan(n)
	// The n-m compare-exchanges at this level are independent; chunk them.
	span := n - m
	chunk := (span + cap(p.sem)) / (cap(p.sem) + 1)
	if chunk < parallelGrain/4 {
		chunk = parallelGrain / 4
	}
	var wg sync.WaitGroup
	for off := 0; off < span; off += chunk {
		end := off + chunk
		if end > span {
			end = span
		}
		lo, m, off, end := lo, m, off, end
		if end < span {
			p.tryGo(&wg, func() {
				for i := lo + off; i < lo+end; i++ {
					compareSwap(p.s, i, i+m, up)
				}
			})
		} else {
			for i := lo + off; i < lo+end; i++ {
				compareSwap(p.s, i, i+m, up)
			}
		}
	}
	wg.Wait()
	var wg2 sync.WaitGroup
	p.tryGo(&wg2, func() { p.merge(lo, m, up) })
	p.merge(lo+m, n-m, up)
	wg2.Wait()
}

// adaptiveThreshold is the element count above which SortAdaptive switches
// from the serial to the parallel sorter. Below it, goroutine coordination
// costs more than it saves (paper Fig. 13a: "for smaller data sizes, the
// coordination overhead actually makes it cheaper to use a single thread").
const adaptiveThreshold = 1 << 13

// SortAdaptive picks the serial sort for small inputs and the parallel sort
// (with up to workers goroutines, default GOMAXPROCS) for large ones.
func SortAdaptive(s Sorter, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if s.Len() < adaptiveThreshold || workers == 1 {
		Sort(s)
		return
	}
	SortParallel(s, workers)
}

// U64Slice is a Sorter over plain uint64 keys; useful for tests and as a
// reference implementation of the Sorter contract.
type U64Slice []uint64

func (u U64Slice) Len() int { return len(u) }

func (u U64Slice) OSwap(c uint8, i, j int) { CondSwapU64(c, &u[i], &u[j]) }

func (u U64Slice) Greater(i, j int) uint8 { return GtU64(u[i], u[j]) }
