package history

import "testing"

func TestSequentialHistory(t *testing.T) {
	ops := []Op{
		{Key: 1, Write: true, Input: "a", Output: "", Start: 0, End: 1},
		{Key: 1, Write: false, Output: "a", Start: 2, End: 3},
		{Key: 1, Write: true, Input: "b", Output: "a", Start: 4, End: 5},
		{Key: 1, Write: false, Output: "b", Start: 6, End: 7},
	}
	if !CheckLinearizable(nil, ops) {
		t.Fatal("valid sequential history rejected")
	}
}

func TestStaleReadRejected(t *testing.T) {
	ops := []Op{
		{Key: 1, Write: true, Input: "a", Output: "", Start: 0, End: 1},
		{Key: 1, Write: false, Output: "", Start: 2, End: 3}, // stale: must see "a"
	}
	if CheckLinearizable(nil, ops) {
		t.Fatal("stale read accepted")
	}
}

func TestConcurrentWriteEitherOrder(t *testing.T) {
	// Two overlapping writes; a later read may see either, but the write
	// outputs (pre-write values) must be consistent with the chosen order.
	ops := []Op{
		{Key: 1, Write: true, Input: "a", Output: "", Start: 0, End: 10},
		{Key: 1, Write: true, Input: "b", Output: "a", Start: 1, End: 9},
		{Key: 1, Write: false, Output: "b", Start: 11, End: 12},
	}
	if !CheckLinearizable(nil, ops) {
		t.Fatal("valid overlapping-write history rejected")
	}
	// Read of "a" with write outputs pinning a-then-b is invalid.
	ops[2].Output = "a"
	if CheckLinearizable(nil, ops) {
		t.Fatal("inconsistent read accepted")
	}
}

func TestConcurrentReadDuringWrite(t *testing.T) {
	ops := []Op{
		{Key: 1, Write: true, Input: "x", Output: "", Start: 0, End: 10},
		{Key: 1, Write: false, Output: "", Start: 1, End: 2},  // before the write lands
		{Key: 1, Write: false, Output: "x", Start: 3, End: 4}, // after
	}
	if !CheckLinearizable(nil, ops) {
		t.Fatal("read-during-write history rejected")
	}
}

func TestRealTimeOrderViolation(t *testing.T) {
	// w(a) fully precedes w(b); a final read sees "a" — b was lost.
	ops := []Op{
		{Key: 1, Write: true, Input: "a", Output: "", Start: 0, End: 1},
		{Key: 1, Write: true, Input: "b", Output: "a", Start: 2, End: 3},
		{Key: 1, Write: false, Output: "a", Start: 4, End: 5},
	}
	if CheckLinearizable(nil, ops) {
		t.Fatal("lost write accepted")
	}
}

func TestInitialValues(t *testing.T) {
	ops := []Op{{Key: 7, Write: false, Output: "seed", Start: 0, End: 1}}
	if !CheckLinearizable(map[uint64]string{7: "seed"}, ops) {
		t.Fatal("initial value not honoured")
	}
	if CheckLinearizable(map[uint64]string{7: "other"}, ops) {
		t.Fatal("wrong initial value accepted")
	}
}

func TestKeysAreIndependent(t *testing.T) {
	ops := []Op{
		{Key: 1, Write: true, Input: "a", Output: "", Start: 0, End: 1},
		{Key: 2, Write: false, Output: "", Start: 2, End: 3}, // key 2 never written
	}
	if !CheckLinearizable(nil, ops) {
		t.Fatal("independent keys conflated")
	}
}

func TestEmptyHistory(t *testing.T) {
	if !CheckLinearizable(nil, nil) {
		t.Fatal("empty history rejected")
	}
}
