// Package history checks linearizability of key-value histories (paper §2
// "Linearizability" and Appendix C). Snoopy promises that if one operation
// completes before another begins, the second observes the first; this
// package verifies recorded concurrent histories against register semantics
// with the Wing–Gong search, made tractable by compositionality: a history
// is linearizable iff its per-key projections are.
package history

import "sort"

// Op is one completed operation in a history.
type Op struct {
	Key   uint64
	Write bool
	// Input is the written value (writes only).
	Input string
	// Output is the observed value: for reads, the value returned; for
	// writes, the returned pre-write value.
	Output string
	// IgnoreOutput excludes Output from checking; the op still takes
	// effect. Snoopy's batched writes return the *epoch-start* value (all
	// deduplicated duplicates share one subORAM response, paper Fig. 6),
	// which is not the immediate-predecessor value a strict read-modify-
	// write would return, so system-level histories set this on writes.
	IgnoreOutput bool
	// Start and End are real-time bounds (any monotone clock, ns).
	Start, End int64
}

// CheckLinearizable reports whether ops is linearizable with respect to
// per-key register semantics, starting from the given initial values
// (missing keys start as "").
func CheckLinearizable(initial map[uint64]string, ops []Op) bool {
	byKey := map[uint64][]Op{}
	for _, op := range ops {
		byKey[op.Key] = append(byKey[op.Key], op)
	}
	for key, kops := range byKey {
		if !checkRegister(initial[key], kops) {
			return false
		}
	}
	return true
}

// checkRegister runs the Wing–Gong linearizability search for one register.
func checkRegister(initial string, ops []Op) bool {
	n := len(ops)
	if n == 0 {
		return true
	}
	if n > 63 {
		// The search is exponential in the worst case; histories this long
		// should be checked per-epoch instead.
		panic("history: register history too long to check")
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].Start < ops[j].Start })

	type state struct {
		mask uint64
		val  string
	}
	visited := map[state]bool{}
	full := uint64(1)<<n - 1

	var search func(mask uint64, val string) bool
	search = func(mask uint64, val string) bool {
		if mask == full {
			return true
		}
		st := state{mask, val}
		if visited[st] {
			return false
		}
		visited[st] = true

		// The earliest end time among not-yet-linearized ops bounds which
		// ops may be linearized next: op i is eligible iff no other pending
		// op finished before i started.
		minEnd := int64(1<<63 - 1)
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 && ops[i].End < minEnd {
				minEnd = ops[i].End
			}
		}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				continue
			}
			if ops[i].Start > minEnd {
				continue // some pending op really finished before this began
			}
			op := ops[i]
			if !op.IgnoreOutput && op.Output != val {
				continue // observation inconsistent with current value
			}
			next := val
			if op.Write {
				next = op.Input
			}
			if search(mask|1<<i, next) {
				return true
			}
		}
		return false
	}
	return search(0, initial)
}
