// Package telemetry is Snoopy's oblivious-safe observability layer: a
// process-wide registry of counters, gauges, and fixed-bucket histograms,
// plus per-epoch stage spans recorded into a bounded ring and exported as a
// structured epoch trace.
//
// Telemetry added to an oblivious system is itself attack surface: a
// counter bumped only on a hash-table hit, or a histogram keyed on request
// contents, silently reinstates the access-pattern side channel the
// oblivious building blocks were chosen to close. This package is designed
// so that cannot happen, and internal/trace's leakage tests enforce it:
//
//   - Every instrument name, label, and bucket boundary is fixed at
//     registration time from public deployment configuration. There is no
//     API for dynamic (request-derived) labels.
//   - Every recording site fires a constant number of times per epoch /
//     batch / RPC, at positions that are a function of public parameters
//     (epoch number, partition index, batch size α, request count R) only.
//     Nothing records conditionally on secret data.
//   - Recording reads time exclusively through the registry's own clock
//     (Now), so tests can substitute a deterministic clock and assert that
//     two workloads differing only in secret keys/values produce
//     byte-identical exports — the executable form of "observability
//     reveals nothing beyond public information".
//   - Histogram bucket selection scans the full (public) bound list every
//     observation — constant shape. The selected bucket depends only on the
//     observed duration, which the adversary measures directly anyway; it
//     is the very quantity the histogram exists to record.
//   - Recording on the data-plane hot path is allocation-free once the
//     registry is built (AllocsPerRun == 0 guards in suboram/
//     loadbalancer/core), matching the PR 2 zero-alloc contract.
//
// A nil *Registry (and every instrument obtained from one) is valid and
// records nothing, so components thread telemetry unconditionally and
// deployments that do not enable it pay only a nil check.
package telemetry

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"snoopy/internal/metrics"
)

// DefBuckets are the default histogram bucket upper bounds: one decade per
// bucket from 1µs to 10s, a public constant that covers every latency in
// the system from a hash-table probe to a cross-restart failover.
var DefBuckets = []time.Duration{
	time.Microsecond,
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// DefaultSpanRing is the default capacity of the epoch-span ring.
const DefaultSpanRing = 1024

// Registry holds a deployment's instruments and its span ring. Create one
// per process (or per system under test) with NewRegistry; obtain
// instruments by name (registration is idempotent — the same name returns
// the same instrument, so components sharing a registry share counters).
type Registry struct {
	clock func() int64 // monotonic nanoseconds; SetClock replaces (tests)

	mu       sync.Mutex
	byName   map[string]any
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	stages   []*SpanStage
	nextSite uint32

	ringMu    sync.Mutex
	ring      []Span
	ringPos   int
	ringTotal uint64

	sink atomic.Pointer[TraceSink]
}

// NewRegistry creates an empty registry with the real monotonic clock and
// the default span ring capacity.
func NewRegistry() *Registry {
	start := time.Now()
	return &Registry{
		clock:  func() int64 { return int64(time.Since(start)) },
		byName: make(map[string]any),
		ring:   make([]Span, DefaultSpanRing),
	}
}

// SetClock replaces the registry clock (deterministic tests). Call before
// any recording; the clock must be safe for the caller's concurrency.
func (r *Registry) SetClock(fn func() int64) {
	if r == nil {
		return
	}
	r.clock = fn
}

// SetSpanRing resizes the span ring (public configuration). Call before
// any recording; existing spans are discarded.
func (r *Registry) SetSpanRing(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.ringMu.Lock()
	r.ring = make([]Span, n)
	r.ringPos = 0
	r.ringTotal = 0
	r.ringMu.Unlock()
}

// SetTrace installs (or, with nil, removes) a TraceSink observing every
// recording event. Test facility for the leakage suite.
func (r *Registry) SetTrace(ts *TraceSink) {
	if r == nil {
		return
	}
	r.sink.Store(ts)
}

// Now returns the registry clock reading in nanoseconds. All telemetry
// timing must come from here — never from time.Now directly — so the
// leakage tests can substitute a deterministic clock.
func (r *Registry) Now() int64 {
	if r == nil {
		return 0
	}
	return r.clock()
}

// trace forwards one recording event to the sink, if any.
func (r *Registry) trace(site uint32, a, b uint64) {
	if r == nil {
		return
	}
	if ts := r.sink.Load(); ts != nil {
		ts.record(site, a, b)
	}
}

// site allocates the next site identifier. Caller holds mu. Site numbering
// follows registration order, which is itself a function of public
// configuration (component construction order), so the trace site space is
// public.
func (r *Registry) site() uint32 {
	s := r.nextSite
	r.nextSite++
	return s
}

// ---- Counter ----

// Counter is a named, monotonically increasing event counter. A nil
// *Counter records nothing.
type Counter struct {
	reg  *Registry
	name string
	site uint32
	c    metrics.Counter
}

// Counter returns the counter registered under name, creating it on first
// use. Names are public configuration; never derive one from request
// contents.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.byName[name]; ok {
		c, ok := got.(*Counter)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q registered as %T, requested as counter", name, got))
		}
		return c
	}
	c := &Counter{reg: r, name: name, site: r.site()}
	r.byName[name] = c
	r.counters = append(r.counters, c)
	return c
}

// Add increments the counter by n. n must be a function of public
// parameters (a batch size, a retry count) — never of secret contents.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.c.Add(n)
	c.reg.trace(c.site, n, 0)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.c.Load()
}

// ---- Gauge ----

// Gauge is a named instantaneous value. A nil *Gauge records nothing.
type Gauge struct {
	reg  *Registry
	name string
	site uint32
	v    atomic.Int64
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.byName[name]; ok {
		g, ok := got.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q registered as %T, requested as gauge", name, got))
		}
		return g
	}
	g := &Gauge{reg: r, name: name, site: r.site()}
	r.byName[name] = g
	r.gauges = append(r.gauges, g)
	return g
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.reg.trace(g.site, uint64(v), 0)
}

// SetMax sets the gauge to v unless the stored value is already larger —
// the race-free monotone update for values like "latest completed epoch"
// that concurrent (pipelined) completions may report out of order. The
// trace event fires unconditionally with the attempted value, so the
// event stream is a function of what was recorded, never of the goroutine
// schedule that interleaved the recordings.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if cur >= v || g.v.CompareAndSwap(cur, v) {
			break
		}
	}
	g.reg.trace(g.site, uint64(v), 0)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
	g.reg.trace(g.site, uint64(delta), 1)
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// ---- Histogram ----

// Histogram accumulates duration observations into fixed buckets. Bucket
// bounds are set at registration (public configuration) and never change.
// A nil *Histogram records nothing.
type Histogram struct {
	reg    *Registry
	name   string
	site   uint32
	bounds []int64 // upper bounds in ns, ascending; +inf bucket implied
	counts []atomic.Uint64
	sum    atomic.Int64
	n      atomic.Uint64
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds (nil means DefBuckets). Bounds are fixed at
// first registration; later calls with the same name return the existing
// instrument regardless of bounds.
func (r *Registry) Histogram(name string, bounds []time.Duration) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.byName[name]; ok {
		h, ok := got.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q registered as %T, requested as histogram", name, got))
		}
		return h
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	h := &Histogram{reg: r, name: name, site: r.site()}
	h.bounds = make([]int64, len(bounds))
	for i, b := range bounds {
		h.bounds[i] = int64(b)
	}
	sort.Slice(h.bounds, func(i, j int) bool { return h.bounds[i] < h.bounds[j] })
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	r.byName[name] = h
	r.hists = append(r.hists, h)
	return h
}

// Observe records one duration. The bucket scan always walks the full
// (public, fixed-length) bound list — constant shape; the selected bucket
// depends only on the observed duration, which is adversary-visible timing,
// never on secret contents.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	idx := 0
	for _, b := range h.bounds {
		if ns > b {
			idx++
		}
	}
	h.counts[idx].Add(1)
	h.sum.Add(ns)
	h.n.Add(1)
	h.reg.trace(h.site, uint64(idx), 0)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Mean returns the average observation (0 with no observations).
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// ---- Spans ----

// Span is one recorded pipeline-stage execution. Every field is a function
// of public parameters: the stage name is registration-time constant, Epoch
// and Part index the public schedule, B is the public batch/request size,
// and Start/Dur are registry-clock timing (adversary-visible anyway).
type Span struct {
	Stage string `json:"stage"`
	Epoch uint64 `json:"epoch"`
	Part  int    `json:"part"`
	B     int    `json:"b"`
	Start int64  `json:"start_ns"`
	Dur   int64  `json:"dur_ns"`
}

// SpanStage is a named recording site for spans. Each recorded span also
// feeds the stage's duration histogram ("<name>_dur").
type SpanStage struct {
	reg  *Registry
	name string
	site uint32
	hist *Histogram
}

// Stage returns the span stage registered under name, creating it (and its
// duration histogram) on first use.
func (r *Registry) Stage(name string) *SpanStage {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if got, ok := r.byName[name]; ok {
		r.mu.Unlock()
		st, ok := got.(*SpanStage)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q registered as %T, requested as stage", name, got))
		}
		return st
	}
	st := &SpanStage{reg: r, name: name, site: r.site()}
	r.byName[name] = st
	r.stages = append(r.stages, st)
	r.mu.Unlock()
	st.hist = r.Histogram(name+"_dur", nil)
	return st
}

// Record appends one completed span for this stage: epoch and part index
// the public schedule, b is the public size tag, start/end are registry
// clock readings (use Registry.Now). Allocation-free.
func (st *SpanStage) Record(epoch uint64, part, b int, start, end int64) {
	if st == nil {
		return
	}
	r := st.reg
	r.ringMu.Lock()
	r.ring[r.ringPos] = Span{Stage: st.name, Epoch: epoch, Part: part, B: b, Start: start, Dur: end - start}
	r.ringPos++
	if r.ringPos == len(r.ring) {
		r.ringPos = 0
	}
	r.ringTotal++
	r.ringMu.Unlock()
	st.hist.Observe(time.Duration(end - start))
	r.trace(st.site, epoch, uint64(part))
}

// SpanHandle is an in-flight span started with Start; End completes it.
// Value type: start/stop performs no heap allocation.
type SpanHandle struct {
	st    *SpanStage
	epoch uint64
	part  int
	b     int
	start int64
}

// Start opens a span; call End on the returned handle when the stage
// completes. For stages whose size tag is known only afterwards, use
// Record directly.
func (st *SpanStage) Start(epoch uint64, part, b int) SpanHandle {
	if st == nil {
		return SpanHandle{}
	}
	return SpanHandle{st: st, epoch: epoch, part: part, b: b, start: st.reg.Now()}
}

// End completes the span.
func (h SpanHandle) End() {
	if h.st == nil {
		return
	}
	h.st.Record(h.epoch, h.part, h.b, h.start, h.st.reg.Now())
}

// Spans returns up to n of the most recent spans in canonical order —
// sorted by (Epoch, Stage, Part) — so the exported trace is a deterministic
// function of the recorded span set regardless of goroutine interleaving.
func (r *Registry) Spans(n int) []Span {
	if r == nil || n <= 0 {
		return nil
	}
	r.ringMu.Lock()
	total := int(r.ringTotal)
	if total > len(r.ring) {
		total = len(r.ring)
	}
	if n > total {
		n = total
	}
	out := make([]Span, 0, n)
	// Walk backwards from the most recent slot.
	for i := 0; i < n; i++ {
		pos := r.ringPos - 1 - i
		for pos < 0 {
			pos += len(r.ring)
		}
		out = append(out, r.ring[pos])
	}
	r.ringMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Epoch != out[j].Epoch {
			return out[i].Epoch < out[j].Epoch
		}
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Part < out[j].Part
	})
	return out
}

// ---- Export ----

// WriteMetrics writes the plain-text export: one line per counter and
// gauge, count/sum plus cumulative bucket lines per histogram, all sorted
// by name. The output is a deterministic function of the recorded values —
// the leakage tests compare it byte for byte.
func (r *Registry) WriteMetrics(w io.Writer) error {
	if r == nil {
		_, err := fmt.Fprintln(w, "# telemetry disabled")
		return err
	}
	r.mu.Lock()
	counters := append([]*Counter(nil), r.counters...)
	gauges := append([]*Gauge(nil), r.gauges...)
	hists := append([]*Histogram(nil), r.hists...)
	r.mu.Unlock()
	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", c.name, c.Value()); err != nil {
			return err
		}
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "gauge %s %d\n", g.name, g.Value()); err != nil {
			return err
		}
	}
	for _, h := range hists {
		if _, err := fmt.Fprintf(w, "hist %s count %d sum_ns %d\n", h.name, h.Count(), h.sum.Load()); err != nil {
			return err
		}
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "hist %s le %d %d\n", h.name, b, cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "hist %s le +inf %d\n", h.name, cum); err != nil {
			return err
		}
	}
	return nil
}

// HistogramSnapshot is one histogram's state in a Snapshot.
type HistogramSnapshot struct {
	Name     string   `json:"name"`
	Count    uint64   `json:"count"`
	SumNS    int64    `json:"sum_ns"`
	BoundsNS []int64  `json:"bounds_ns"`
	Counts   []uint64 `json:"counts"`
}

// Snapshot is a point-in-time, JSON-marshalable view of the registry
// (consumed by snoopy-bench for results/BENCH_observability.json).
type Snapshot struct {
	Counters   map[string]uint64   `json:"counters"`
	Gauges     map[string]int64    `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
	Spans      []Span              `json:"spans"`
}

// Snapshot captures the registry: all counters and gauges, every histogram
// with per-bucket counts, and the last nSpans spans in canonical order.
func (r *Registry) Snapshot(nSpans int) Snapshot {
	snap := Snapshot{
		Counters: map[string]uint64{},
		Gauges:   map[string]int64{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := append([]*Counter(nil), r.counters...)
	gauges := append([]*Gauge(nil), r.gauges...)
	hists := append([]*Histogram(nil), r.hists...)
	r.mu.Unlock()
	for _, c := range counters {
		snap.Counters[c.name] = c.Value()
	}
	for _, g := range gauges {
		snap.Gauges[g.name] = g.Value()
	}
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	for _, h := range hists {
		hs := HistogramSnapshot{
			Name:     h.name,
			Count:    h.Count(),
			SumNS:    h.sum.Load(),
			BoundsNS: append([]int64(nil), h.bounds...),
		}
		for i := range h.counts {
			hs.Counts = append(hs.Counts, h.counts[i].Load())
		}
		snap.Histograms = append(snap.Histograms, hs)
	}
	snap.Spans = r.Spans(nSpans)
	return snap
}

// ---- Trace sink (leakage-test facility) ----

// TraceSink observes every recording event of a registry as a per-site
// multiset digest: each event is hashed with its site identifier and summed
// (order-insensitively) into that site's accumulator. Two sinks are Equal
// when every site saw the same multiset of events. Order within a site is
// deliberately not part of the digest — concurrent recorders (per-partition
// stage-B goroutines) interleave nondeterministically — but the site space
// itself, registration-ordered, is public and fixed, so equality still
// means: which instruments recorded, how often, and with what (public)
// event payloads is identical.
type TraceSink struct {
	mu    sync.Mutex
	sites map[uint32]*siteDigest
	n     uint64
}

type siteDigest struct {
	sum [4]uint64 // wrapping vector sum of sha256(event) — multiset digest
	n   uint64
}

// NewTraceSink creates an empty sink.
func NewTraceSink() *TraceSink {
	return &TraceSink{sites: make(map[uint32]*siteDigest)}
}

func (t *TraceSink) record(site uint32, a, b uint64) {
	var buf [20]byte
	binary.LittleEndian.PutUint32(buf[0:4], site)
	binary.LittleEndian.PutUint64(buf[4:12], a)
	binary.LittleEndian.PutUint64(buf[12:20], b)
	h := sha256.Sum256(buf[:])
	t.mu.Lock()
	d := t.sites[site]
	if d == nil {
		d = &siteDigest{}
		t.sites[site] = d
	}
	for i := 0; i < 4; i++ {
		d.sum[i] += binary.LittleEndian.Uint64(h[i*8:])
	}
	d.n++
	t.n++
	t.mu.Unlock()
}

// Count returns the total number of observed events.
func (t *TraceSink) Count() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Sum returns the sink digest: a hash over every site's event count and
// multiset digest, in site order.
func (t *TraceSink) Sum() [sha256.Size]byte {
	if t == nil {
		return [sha256.Size]byte{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sites := make([]uint32, 0, len(t.sites))
	for s := range t.sites {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	h := sha256.New()
	var buf [8]byte
	for _, s := range sites {
		d := t.sites[s]
		binary.LittleEndian.PutUint32(buf[:4], s)
		h.Write(buf[:4])
		binary.LittleEndian.PutUint64(buf[:], d.n)
		h.Write(buf[:])
		for i := 0; i < 4; i++ {
			binary.LittleEndian.PutUint64(buf[:], d.sum[i])
			h.Write(buf[:])
		}
	}
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// EqualTraces reports whether two sinks observed identical per-site event
// multisets.
func EqualTraces(a, b *TraceSink) bool {
	return a.Count() == b.Count() && a.Sum() == b.Sum()
}
