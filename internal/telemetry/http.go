package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// DefaultTraceSpans is how many spans /trace/epochs returns when the
// request does not specify ?n=.
const DefaultTraceSpans = 256

// Handler returns the operator surface for a registry:
//
//	/metrics         plain-text counters, gauges, histogram buckets
//	/trace/epochs    last-N epoch stage spans as JSON (?n= overrides N)
//	/debug/pprof/    the standard net/http/pprof index and profiles
//
// Everything served is derived from the registry, whose contents are a
// function of public configuration only — the surface is safe to expose to
// an operator who must not learn request contents.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.WriteMetrics(w)
	})
	mux.HandleFunc("/trace/epochs", func(w http.ResponseWriter, req *http.Request) {
		n := DefaultTraceSpans
		if s := req.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		spans := reg.Spans(n)
		if spans == nil {
			spans = []Span{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(spans)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves Handler(reg) until the returned shutdown
// function is called. It returns the bound address (useful with ":0").
func Serve(addr string, reg *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(reg), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() error { return srv.Close() }, nil
}
