package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.SetClock(func() int64 { return 0 })
	r.SetSpanRing(4)
	r.SetTrace(NewTraceSink())
	if r.Now() != 0 {
		t.Fatal("nil Now")
	}
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	g := r.Gauge("y")
	g.Set(7)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	h := r.Histogram("z", nil)
	h.Observe(time.Millisecond)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram")
	}
	st := r.Stage("s")
	st.Record(1, 0, 0, 0, 1)
	sp := st.Start(1, 0, 0)
	sp.End()
	if got := r.Spans(10); got != nil {
		t.Fatalf("nil Spans = %v", got)
	}
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "disabled") {
		t.Fatalf("nil WriteMetrics = %q", buf.String())
	}
	snap := r.Snapshot(10)
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 {
		t.Fatal("nil snapshot not empty")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("reqs") != c {
		t.Fatal("counter registration not idempotent")
	}
	g := r.Gauge("epoch")
	g.Set(9)
	g.Add(-2)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d", g.Value())
	}
	h := r.Histogram("lat", nil)
	h.Observe(5 * time.Microsecond) // bucket le 10µs
	h.Observe(2 * time.Millisecond) // bucket le 10ms
	h.Observe(20 * time.Second)     // +inf bucket
	if h.Count() != 3 {
		t.Fatalf("hist count = %d", h.Count())
	}
	want := 5*time.Microsecond + 2*time.Millisecond + 20*time.Second
	if h.Sum() != want {
		t.Fatalf("hist sum = %v want %v", h.Sum(), want)
	}
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{
		"counter reqs 5\n",
		"gauge epoch 7\n",
		"hist lat count 3",
		fmt.Sprintf("hist lat le %d 1\n", 10*time.Microsecond),
		"hist lat le +inf 3\n",
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("export missing %q:\n%s", line, out)
		}
	}
}

func TestHistogramBucketSelection(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []time.Duration{time.Millisecond, time.Second})
	h.Observe(0)                    // le 1ms
	h.Observe(time.Millisecond)     // le 1ms (inclusive upper bound)
	h.Observe(time.Millisecond + 1) // le 1s
	h.Observe(2 * time.Second)      // +inf
	want := []uint64{2, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d want %d", i, got, w)
		}
	}
}

func TestSpanRingAndCanonicalOrder(t *testing.T) {
	r := NewRegistry()
	var tick int64
	r.SetClock(func() int64 { tick++; return tick })
	a := r.Stage("stage_a")
	b := r.Stage("stage_b")
	// Record out of canonical order.
	b.Record(2, 1, 8, 10, 20)
	a.Record(2, 0, 8, 0, 5)
	b.Record(1, 0, 4, 1, 2)
	spans := r.Spans(10)
	if len(spans) != 3 {
		t.Fatalf("spans = %d", len(spans))
	}
	wantOrder := []struct {
		epoch uint64
		stage string
		part  int
	}{{1, "stage_b", 0}, {2, "stage_a", 0}, {2, "stage_b", 1}}
	for i, w := range wantOrder {
		s := spans[i]
		if s.Epoch != w.epoch || s.Stage != w.stage || s.Part != w.part {
			t.Fatalf("span %d = %+v want %+v", i, s, w)
		}
	}
	if spans[2].Dur != 10 {
		t.Fatalf("dur = %d", spans[2].Dur)
	}
	// Handle-based span uses the registry clock.
	sp := a.Start(3, 2, 16)
	sp.End()
	got := r.Spans(1)
	if len(got) != 1 || got[0].Epoch != 3 || got[0].Dur != 1 {
		t.Fatalf("handle span = %+v", got)
	}
}

func TestSpanRingBounded(t *testing.T) {
	r := NewRegistry()
	r.SetSpanRing(4)
	st := r.Stage("s")
	for i := 0; i < 10; i++ {
		st.Record(uint64(i), 0, 0, 0, 1)
	}
	spans := r.Spans(100)
	if len(spans) != 4 {
		t.Fatalf("ring kept %d spans", len(spans))
	}
	for i, s := range spans {
		if want := uint64(6 + i); s.Epoch != want {
			t.Fatalf("span %d epoch = %d want %d", i, s.Epoch, want)
		}
	}
}

func TestTraceSinkMultisetEquality(t *testing.T) {
	r1 := NewRegistry()
	r2 := NewRegistry()
	for _, r := range []*Registry{r1, r2} {
		r.SetClock(func() int64 { return 0 })
	}
	s1, s2 := NewTraceSink(), NewTraceSink()
	r1.SetTrace(s1)
	r2.SetTrace(s2)
	// Same multiset of events, different order.
	c1, h1 := r1.Counter("c"), r1.Histogram("h", nil)
	c2, h2 := r2.Counter("c"), r2.Histogram("h", nil)
	c1.Add(1)
	c1.Add(2)
	h1.Observe(time.Millisecond)
	h2.Observe(time.Millisecond)
	c2.Add(2)
	c2.Add(1)
	if !EqualTraces(s1, s2) {
		t.Fatal("reordered identical events should be trace-equal")
	}
	// One extra event breaks equality.
	c1.Add(1)
	if EqualTraces(s1, s2) {
		t.Fatal("different multisets reported equal")
	}
	// Differing payload at the same site breaks equality.
	s3, s4 := NewTraceSink(), NewTraceSink()
	r3, r4 := NewRegistry(), NewRegistry()
	r3.SetTrace(s3)
	r4.SetTrace(s4)
	r3.Counter("c").Add(5)
	r4.Counter("c").Add(6)
	if EqualTraces(s3, s4) {
		t.Fatal("different payloads reported equal")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	r.SetTrace(NewTraceSink())
	c := r.Counter("c")
	h := r.Histogram("h", nil)
	st := r.Stage("s")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.Inc()
				h.Observe(time.Duration(j) * time.Microsecond)
				st.Record(uint64(j), i, j, 0, 1)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			for j := 0; j < 50; j++ {
				buf.Reset()
				_ = r.WriteMetrics(&buf)
				_ = r.Spans(64)
				_ = r.Snapshot(16)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 1600 {
		t.Fatalf("counter = %d", c.Value())
	}
	if h.Count() != 1600 {
		t.Fatalf("hist = %d", h.Count())
	}
}

func TestHTTPSurface(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(3)
	r.Stage("stage_a").Record(1, 0, 8, 0, 100)
	addr, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "counter reqs 3") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	code, body = get("/trace/epochs?n=10")
	if code != 200 {
		t.Fatalf("/trace/epochs = %d", code)
	}
	var spans []Span
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("trace json: %v", err)
	}
	if len(spans) != 1 || spans[0].Stage != "stage_a" || spans[0].Dur != 100 {
		t.Fatalf("spans = %+v", spans)
	}
	code, _ = get("/debug/pprof/")
	if code != 200 {
		t.Fatalf("pprof = %d", code)
	}
}

func TestRecordingAllocs(t *testing.T) {
	r := NewRegistry()
	r.SetTrace(NewTraceSink())
	c := r.Counter("c")
	h := r.Histogram("h", nil)
	st := r.Stage("s")
	if a := testing.AllocsPerRun(100, func() { c.Add(2) }); a != 0 {
		t.Fatalf("Counter.Add allocs = %v", a)
	}
	if a := testing.AllocsPerRun(100, func() { h.Observe(time.Millisecond) }); a != 0 {
		t.Fatalf("Histogram.Observe allocs = %v", a)
	}
	if a := testing.AllocsPerRun(100, func() {
		sp := st.Start(1, 0, 8)
		sp.End()
	}); a != 0 {
		t.Fatalf("span start/stop allocs = %v", a)
	}
}

func TestWriteMetricsDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.SetClock(func() int64 { return 0 })
		// Register in scrambled order; export must sort.
		r.Gauge("zz").Set(1)
		r.Counter("b").Add(2)
		r.Histogram("m", nil).Observe(time.Millisecond)
		r.Counter("a").Add(7)
		return r
	}
	var b1, b2 bytes.Buffer
	_ = build().WriteMetrics(&b1)
	_ = build().WriteMetrics(&b2)
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("export not deterministic:\n%s\n--\n%s", b1.String(), b2.String())
	}
	if idx := strings.Index(b1.String(), "counter a 7"); idx < 0 || idx > strings.Index(b1.String(), "counter b 2") {
		t.Fatalf("counters not sorted:\n%s", b1.String())
	}
}
