// Package pir applies Snoopy's techniques to private information
// retrieval, the extension sketched in the paper's §9: the subORAMs are
// replaced by classic two-server XOR PIR shards, and Snoopy's oblivious
// load balancer routes requests to the shard holding each object — hiding
// the request-to-shard mapping that plain sharded PIR would leak, while
// each shard pays a linear scan only over its partition instead of the
// whole store (PIR's fundamental limitation the paper calls out).
//
// The two servers of a shard are assumed non-colluding (standard IT-PIR).
// Reads are information-theoretically private against either server;
// writes update both replicas directly and are NOT private — PIR mode
// suits read-dominated stores such as transparency logs (§3.2).
package pir

import (
	"crypto/rand"
	"fmt"
	"sync"

	"snoopy/internal/store"
)

// Server is one of the two non-colluding PIR servers for a shard: a plain
// replica of the shard's blocks that answers XOR queries.
type Server struct {
	mu     sync.RWMutex
	n      int
	block  int
	blocks []byte // n × block
}

// NewServer creates a server over n zeroed blocks.
func NewServer(n, block int) *Server {
	return &Server{n: n, block: block, blocks: make([]byte, n*block)}
}

// Load replaces block i.
func (s *Server) Load(i int, data []byte) {
	s.mu.Lock()
	copy(s.blocks[i*s.block:(i+1)*s.block], data)
	s.mu.Unlock()
}

// Answer XORs together every block whose bit is set in the query vector
// (length ceil(n/8) bytes). The server necessarily scans all its blocks —
// the access pattern is the same for every query.
func (s *Server) Answer(query []byte) ([]byte, error) {
	if len(query) != (s.n+7)/8 {
		return nil, fmt.Errorf("pir: query length %d for %d blocks", len(query), s.n)
	}
	out := make([]byte, s.block)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i := 0; i < s.n; i++ {
		bit := (query[i/8] >> (i % 8)) & 1
		mask := -bit // 0x00 or 0xFF
		blk := s.blocks[i*s.block : (i+1)*s.block]
		for j := range out {
			out[j] ^= mask & blk[j]
		}
	}
	return out, nil
}

// SubORAM is a Snoopy partition served by a two-server PIR shard. It
// implements core.SubORAMClient for read traffic.
type SubORAM struct {
	mu    sync.Mutex
	block int
	n     int
	a, b  *Server
	ids   []uint64
	idx   map[uint64]int
}

// NewSubORAM creates an empty PIR shard.
func NewSubORAM(blockSize int) *SubORAM {
	return &SubORAM{block: blockSize}
}

// Init loads the shard onto both servers.
func (s *SubORAM) Init(ids []uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(data) != len(ids)*s.block {
		return fmt.Errorf("pir: data length mismatch")
	}
	n := len(ids)
	if n == 0 {
		n = 1
	}
	s.n = n
	s.a = NewServer(n, s.block)
	s.b = NewServer(n, s.block)
	s.ids = append([]uint64(nil), ids...)
	s.idx = make(map[uint64]int, len(ids))
	for i, id := range ids {
		if _, dup := s.idx[id]; dup {
			return fmt.Errorf("pir: duplicate id %d", id)
		}
		s.idx[id] = i
		s.a.Load(i, data[i*s.block:(i+1)*s.block])
		s.b.Load(i, data[i*s.block:(i+1)*s.block])
	}
	return nil
}

// BatchAccess answers each request with a fresh two-server PIR query.
// Dummy and absent keys issue queries for a random index (the servers see
// identically distributed vectors either way); their responses are zeroed
// with Aux == 0. Write requests are applied to both replicas directly and
// answered with the pre-write value — correct, but not private; see the
// package comment.
func (s *SubORAM) BatchAccess(reqs *store.Requests) (*store.Requests, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.a == nil {
		return nil, fmt.Errorf("pir: not initialized")
	}
	out := reqs.Clone()
	qlen := (s.n + 7) / 8
	for i := 0; i < out.Len(); i++ {
		dense, known := s.idx[out.Key[i]]
		target := dense
		if !known {
			target = int(out.Seq[i]) % s.n // arbitrary; response discarded
		}
		// ρ uniformly random; second query flips the target bit.
		q1 := make([]byte, qlen)
		if _, err := rand.Read(q1); err != nil {
			return nil, err
		}
		// Mask stray bits beyond n so Answer lengths stay canonical.
		if s.n%8 != 0 {
			q1[qlen-1] &= byte(1<<(s.n%8)) - 1
		}
		q2 := make([]byte, qlen)
		copy(q2, q1)
		q2[target/8] ^= 1 << (target % 8)

		a1, err := s.a.Answer(q1)
		if err != nil {
			return nil, err
		}
		a2, err := s.b.Answer(q2)
		if err != nil {
			return nil, err
		}
		blk := out.Block(i)
		for j := range blk {
			blk[j] = a1[j] ^ a2[j]
		}
		if !known {
			for j := range blk {
				blk[j] = 0
			}
			out.Aux[i] = 0
			continue
		}
		out.Aux[i] = 1
		if out.Op[i] == store.OpWrite {
			// Non-private write path: update both replicas in place; the
			// PIR answer above already captured the pre-write value.
			s.a.Load(dense, reqs.Block(i))
			s.b.Load(dense, reqs.Block(i))
		}
	}
	return out, nil
}
