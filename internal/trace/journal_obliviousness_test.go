// Journal leakage tests: the root's sealed epoch journal and the
// standby-promotion path must not reinstate the side channel. Two full
// deployments run workloads identical in every public dimension — request
// count per epoch, epoch count, configuration, and the crash schedule
// (which epoch the root dies in, and at which protocol point) — but
// differing in every secret one: which keys are accessed, what values are
// written, and the duplicate structure the balancer dedupes. The journal's
// host-visible I/O trace (every file read and write with offset and
// length), the telemetry access trace, and the exported /metrics and
// /trace/epochs bytes must come out identical across the runs, through the
// crash, the standby's replay of the journaled epoch, and the clients'
// idempotent retries.
package trace_test

import (
	"bytes"
	"errors"
	"math/rand"
	"net/http/httptest"
	"testing"

	"snoopy/internal/core"
	"snoopy/internal/suboram"
	"snoopy/internal/telemetry"
	"snoopy/internal/trace"
	"snoopy/internal/transport"
)

// journalWorkload drives a journaling deployment with secrets derived from
// seed: epochs × perEpoch idempotent requests against tagged partitions,
// with the root crashed at the "dispatch" point of crashEpoch and a
// standby promoted over the same journal directory (replaying the epoch
// and answering the clients' retries from its reply window). Returns the
// exported /metrics and /trace/epochs bytes, the telemetry trace, and the
// two incarnations' journal I/O recorders.
func journalWorkload(t *testing.T, seed int64, dir string, epochs, perEpoch int,
	crashEpoch uint64) ([]byte, []byte, *telemetry.TraceSink, *trace.Recorder, *trace.Recorder) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	reg := telemetry.NewRegistry()
	reg.SetClock(func() int64 { return 0 })
	sink := telemetry.NewTraceSink()
	reg.SetTrace(sink)

	const parts = 2
	subs := make([]*suboram.SubORAM, parts)
	rcs := make([]*transport.ReplayCache, parts)
	for i := range subs {
		subs[i] = suboram.New(suboram.Config{BlockSize: block})
		rcs[i] = transport.NewReplayCache()
	}
	recPrimary, recStandby := trace.New(), trace.New()
	open := func(rec *trace.Recorder) *core.System {
		clients := make([]core.SubORAMClient, parts)
		for i := range clients {
			clients[i] = transport.NewLocalTagged(subs[i], rcs[i])
		}
		sys, err := core.NewWithSubORAMs(core.Config{
			BlockSize:        block,
			NumLoadBalancers: 1,
			Lambda:           32,
			SortWorkers:      1,
			JournalDir:       dir,
			JournalRec:       rec,
			Telemetry:        reg,
			// The crash schedule is public: both runs kill the root at the
			// same epoch and protocol point.
			TestCrashPoint: func(point string, epoch uint64) bool {
				return point == "dispatch" && epoch == crashEpoch
			},
		}, clients)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	sys := open(recPrimary)
	closed := false
	defer func() {
		if !closed {
			sys.Close()
		}
	}()

	// Secret object set: same size both runs, different keys and values.
	const nObjects = 128
	ids := make([]uint64, nObjects)
	perm := rng.Perm(nObjects * 64)
	for i := range ids {
		ids[i] = uint64(perm[i])
	}
	data := make([]byte, nObjects*block)
	rng.Read(data)
	if err := sys.Init(ids, data); err != nil {
		t.Fatal(err)
	}

	type pend struct {
		id    uint64
		key   uint64
		write bool
		val   []byte
		wait  func() ([]byte, bool, error)
	}
	nextID := uint64(1)
	for e := 0; e < epochs; e++ {
		waits := make([]pend, 0, perEpoch)
		var last uint64
		for i := 0; i < perEpoch; i++ {
			// Secret key choice: loaded keys, missing keys, and duplicates
			// (collapsed by the oblivious dedup) in a seed-dependent mix.
			key := ids[rng.Intn(nObjects)]
			switch rng.Intn(4) {
			case 0:
				key = uint64(rng.Intn(1 << 20)) // likely not loaded
			case 1:
				if i > 0 {
					key = last // duplicate within the epoch
				}
			}
			last = key
			p := pend{id: nextID, key: key, write: i%2 == 1}
			nextID++
			var err error
			if p.write {
				p.val = make([]byte, block)
				rng.Read(p.val)
				p.wait, err = sys.WriteIdemAsync(p.id, p.key, p.val)
			} else {
				p.wait, err = sys.ReadIdemAsync(p.id, p.key)
			}
			if err != nil {
				t.Fatal(err)
			}
			waits = append(waits, p)
		}
		sys.Flush()
		if sys.Crashed() {
			// Public failover: promote the standby over the same journal
			// directory (replays the journaled epoch against the tagged
			// partitions) and retry every unanswered request under its
			// original idempotency ID — answered from the reply window.
			sys.Close()
			sys = open(recStandby)
			for _, p := range waits {
				if _, _, err := p.wait(); !errors.Is(err, core.ErrRootDown) {
					t.Fatalf("in-flight request after root crash: %v", err)
				}
				var err error
				if p.write {
					_, _, err = sys.WriteIdem(p.id, p.key, p.val)
				} else {
					_, _, err = sys.ReadIdem(p.id, p.key)
				}
				if err != nil {
					t.Fatalf("idempotent retry after promotion: %v", err)
				}
			}
			continue
		}
		for _, p := range waits {
			if _, _, err := p.wait(); err != nil {
				t.Fatal(err)
			}
		}
	}
	sys.Close()
	closed = true

	// Export through the real HTTP operator surface, not just the internal
	// snapshot: these are the bytes an observer of the endpoint sees.
	h := telemetry.Handler(reg)
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, httptest.NewRequest("GET", "/metrics", nil))
	if mrec.Code != 200 {
		t.Fatalf("/metrics status %d", mrec.Code)
	}
	trec := httptest.NewRecorder()
	h.ServeHTTP(trec, httptest.NewRequest("GET", "/trace/epochs?n=1024", nil))
	if trec.Code != 200 {
		t.Fatalf("/trace/epochs status %d", trec.Code)
	}
	return mrec.Body.Bytes(), trec.Body.Bytes(), sink, recPrimary, recStandby
}

// TestJournalTraceIndependentOfSecrets: the full failover story — journal
// writes before every dispatch, a root crash after dispatch, the standby's
// journal replay reads, and the retry traffic — produces byte-identical
// host-visible I/O and telemetry across secret-differing workloads.
func TestJournalTraceIndependentOfSecrets(t *testing.T) {
	const epochs, perEpoch = 4, 24
	const crashEpoch = 2
	metricsA, spansA, sinkA, priA, stbA := journalWorkload(t, 1001, t.TempDir(), epochs, perEpoch, crashEpoch)
	metricsB, spansB, sinkB, priB, stbB := journalWorkload(t, 2002, t.TempDir(), epochs, perEpoch, crashEpoch)

	if priA.Count() == 0 || stbA.Count() == 0 {
		t.Fatalf("journal I/O not captured (primary %d, standby %d events)", priA.Count(), stbA.Count())
	}
	if !trace.Equal(priA, priB) {
		t.Fatalf("primary journal I/O depends on secrets (%d vs %d events)", priA.Count(), priB.Count())
	}
	if !trace.Equal(stbA, stbB) {
		t.Fatalf("standby journal I/O (replay reads included) depends on secrets (%d vs %d events)",
			stbA.Count(), stbB.Count())
	}
	if !bytes.Equal(metricsA, metricsB) {
		diffLines(t, "/metrics output", metricsA, metricsB)
	}
	if !bytes.Equal(spansA, spansB) {
		diffLines(t, "/trace/epochs output", spansA, spansB)
	}
	if !telemetry.EqualTraces(sinkA, sinkB) {
		t.Fatalf("telemetry access trace depends on secrets (%d vs %d events)",
			sinkA.Count(), sinkB.Count())
	}
}

// TestJournalTraceCrashFreeRunsMatch: without a crash, two secret-differing
// journaling runs still produce identical journal write traces — the
// journal-before-dispatch write is one fixed-shape record per epoch, a
// function of public parameters (α, S, feed counts) only.
func TestJournalTraceCrashFreeRunsMatch(t *testing.T) {
	const epochs, perEpoch = 3, 16
	_, _, _, priA, stbA := journalWorkload(t, 3003, t.TempDir(), epochs, perEpoch, 0)
	_, _, _, priB, stbB := journalWorkload(t, 4004, t.TempDir(), epochs, perEpoch, 0)
	if priA.Count() == 0 {
		t.Fatal("journal I/O not captured")
	}
	if !trace.Equal(priA, priB) {
		t.Fatalf("journal I/O depends on secrets (%d vs %d events)", priA.Count(), priB.Count())
	}
	if stbA.Count() != 0 || stbB.Count() != 0 {
		t.Fatal("standby recorder used without a crash")
	}
}
