// Telemetry leakage tests: the observability layer must not reinstate the
// side channel the store closes. Two full deployments run workloads that are
// identical in every public dimension (request count per epoch, epoch count,
// configuration) but differ in every secret one — which keys are loaded,
// which keys are accessed (including the duplicate pattern the load balancer
// dedupes), and what values are written. The telemetry access trace (every
// recording-site invocation with its payloads), the exported /metrics bytes,
// and the exported /trace/epochs bytes must come out identical.
//
// The registry clock is stubbed to zero so durations cannot differ between
// runs for scheduling reasons; what remains — which instruments exist, how
// often each site fires, and every recorded payload — is exactly the part
// that must be a function of public configuration only.
package trace_test

import (
	"bytes"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"testing"

	"snoopy/internal/core"
	"snoopy/internal/telemetry"
)

// telemetryWorkload drives a deployment with secrets derived from seed:
// epochs × perEpoch requests, half reads, half writes, with duplicate keys
// sprinkled in (dedup depth is secret). Returns the exported /metrics body,
// the /trace/epochs body, and the raw recording-site trace.
func telemetryWorkload(t *testing.T, cfg core.Config, seed int64, epochs, perEpoch int) ([]byte, []byte, *telemetry.TraceSink) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	reg := telemetry.NewRegistry()
	reg.SetClock(func() int64 { return 0 })
	sink := telemetry.NewTraceSink()
	reg.SetTrace(sink)
	cfg.Telemetry = reg

	sys, err := core.NewLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// Secret object set: same size both runs, different keys and values.
	const nObjects = 128
	ids := make([]uint64, nObjects)
	perm := rng.Perm(nObjects * 64)
	for i := range ids {
		ids[i] = uint64(perm[i])
	}
	data := make([]byte, nObjects*cfg.BlockSize)
	rng.Read(data)
	if err := sys.Init(ids, data); err != nil {
		t.Fatal(err)
	}

	var pending []func() ([]byte, bool, error)
	for e := 0; e < epochs; e++ {
		waits := make([]func() ([]byte, bool, error), 0, perEpoch)
		var last uint64
		for i := 0; i < perEpoch; i++ {
			// Secret key choice: loaded keys, missing keys, and duplicates
			// (collapsed by the oblivious dedup) in a seed-dependent mix.
			key := ids[rng.Intn(nObjects)]
			switch rng.Intn(4) {
			case 0:
				key = uint64(rng.Intn(1 << 20)) // likely not loaded
			case 1:
				if i > 0 {
					key = last // duplicate within the epoch
				}
			}
			last = key
			var w func() ([]byte, bool, error)
			var err error
			if i%2 == 0 {
				w, err = sys.ReadAsync(key)
			} else {
				secret := make([]byte, cfg.BlockSize)
				rng.Read(secret)
				w, err = sys.WriteAsync(key, secret)
			}
			if err != nil {
				t.Fatal(err)
			}
			waits = append(waits, w)
		}
		sys.Flush()
		if cfg.Pipeline {
			// Overlapped engine: let epochs pile up in the pipeline and
			// drain at the end, so stages genuinely overlap while the
			// trace is captured.
			pending = append(pending, waits...)
			continue
		}
		for _, w := range waits {
			if _, _, err := w(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, w := range pending {
		if _, _, err := w(); err != nil {
			t.Fatal(err)
		}
	}

	// Export through the real HTTP operator surface, not just the internal
	// snapshot: these are the bytes an observer of the endpoint sees.
	h := telemetry.Handler(reg)
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, httptest.NewRequest("GET", "/metrics", nil))
	if mrec.Code != 200 {
		t.Fatalf("/metrics status %d", mrec.Code)
	}
	trec := httptest.NewRecorder()
	h.ServeHTTP(trec, httptest.NewRequest("GET", "/trace/epochs?n=1024", nil))
	if trec.Code != 200 {
		t.Fatalf("/trace/epochs status %d", trec.Code)
	}
	return mrec.Body.Bytes(), trec.Body.Bytes(), sink
}

// diffLines pinpoints the first differing line for a readable failure.
func diffLines(t *testing.T, what string, a, b []byte) {
	t.Helper()
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			t.Fatalf("%s differs at line %d:\n  run A: %s\n  run B: %s", what, i+1, al[i], bl[i])
		}
	}
	t.Fatalf("%s differs in length: %d vs %d lines", what, len(al), len(bl))
}

func assertTelemetryIndependent(t *testing.T, cfg core.Config, epochs, perEpoch int) {
	t.Helper()
	metricsA, spansA, sinkA := telemetryWorkload(t, cfg, 1001, epochs, perEpoch)
	metricsB, spansB, sinkB := telemetryWorkload(t, cfg, 2002, epochs, perEpoch)

	if sinkA.Count() == 0 {
		t.Fatal("telemetry trace captured nothing — instrumentation broken")
	}
	if !bytes.Equal(metricsA, metricsB) {
		diffLines(t, "/metrics output", metricsA, metricsB)
	}
	if !bytes.Equal(spansA, spansB) {
		diffLines(t, "/trace/epochs output", spansA, spansB)
	}
	if !telemetry.EqualTraces(sinkA, sinkB) {
		t.Fatalf("telemetry access trace depends on secrets (%d vs %d events)",
			sinkA.Count(), sinkB.Count())
	}
}

// TestTelemetryTraceIndependentOfSecretsSequential: single load balancer,
// single partition, durable (so the persist WAL instruments are exercised),
// fully sequential workers — the strictest byte-for-byte comparison.
func TestTelemetryTraceIndependentOfSecretsSequential(t *testing.T) {
	run := func(seed int64, dir string) ([]byte, []byte, *telemetry.TraceSink) {
		return telemetryWorkload(t, core.Config{
			BlockSize:        block,
			NumLoadBalancers: 1,
			NumSubORAMs:      1,
			Lambda:           32,
			SortWorkers:      1,
			SubORAMWorkers:   1,
			DataDir:          dir,
		}, seed, 3, 24)
	}
	metricsA, spansA, sinkA := run(1001, t.TempDir())
	metricsB, spansB, sinkB := run(2002, t.TempDir())
	if sinkA.Count() == 0 {
		t.Fatal("telemetry trace captured nothing — instrumentation broken")
	}
	if !bytes.Equal(metricsA, metricsB) {
		diffLines(t, "/metrics output", metricsA, metricsB)
	}
	if !bytes.Equal(spansA, spansB) {
		diffLines(t, "/trace/epochs output", spansA, spansB)
	}
	if !telemetry.EqualTraces(sinkA, sinkB) {
		t.Fatalf("telemetry access trace depends on secrets (%d vs %d events)",
			sinkA.Count(), sinkB.Count())
	}
}

// TestTelemetryTraceIndependentOfSecretsParallel: the production shape —
// multiple load balancers and partitions, parallel workers. Goroutine
// interleaving may reorder recordings between runs, but the canonical span
// ordering and the per-site multiset trace digest must still match exactly.
func TestTelemetryTraceIndependentOfSecretsParallel(t *testing.T) {
	assertTelemetryIndependent(t, core.Config{
		BlockSize:        block,
		NumLoadBalancers: 2,
		NumSubORAMs:      4,
		Lambda:           32,
		SortWorkers:      2,
		SubORAMWorkers:   2,
		// Pin the public client→LB assignment so both runs present the
		// same per-LB request counts (that assignment is visible to the
		// network adversary; only the secrets may differ between runs).
		TestLBChoiceSeed: 99,
	}, 4, 48)
}

// TestTelemetryTraceIndependentOfSecretsTree: the hierarchical
// load-balancer plane. Leaf sorts, the root merge, and the per-level
// response fan-down add their own instruments (lb_leaf_sort, lb_root_merge,
// the lb_leaf/lb_root/lb_leaf_match stages); all of them must stay
// functions of the public tree shape and per-feed request counts. The
// pinned assignment seed fixes which leaf each client contacts (public —
// the network adversary sees it); only keys, values, and duplicate
// structure differ between the runs.
func TestTelemetryTraceIndependentOfSecretsTree(t *testing.T) {
	assertTelemetryIndependent(t, core.Config{
		BlockSize:        block,
		NumLoadBalancers: 1,
		NumSubORAMs:      2,
		Lambda:           32,
		LBLeaves:         4,
		SortWorkers:      1,
		SubORAMWorkers:   1,
		TestLBChoiceSeed: 99,
	}, 3, 32)
}

// TestTelemetryTraceIndependentOfSecretsTreeParallel: same property with
// parallel leaf sorting and several planes — recording order may vary, but
// the canonical ordering and multiset digest must not.
func TestTelemetryTraceIndependentOfSecretsTreeParallel(t *testing.T) {
	assertTelemetryIndependent(t, core.Config{
		BlockSize:        block,
		NumLoadBalancers: 2,
		NumSubORAMs:      4,
		Lambda:           32,
		LBLeaves:         2,
		SortWorkers:      2,
		SubORAMWorkers:   2,
		TestLBChoiceSeed: 99,
	}, 4, 48)
}

// TestTelemetryTraceIndependentOfSecretsPipelined: the overlapped epoch
// engine (Pipeline, depth 4) with epochs deliberately left in flight so
// stage A of later epochs runs while stage B/C of earlier ones drain. The
// dispatch schedule, the per-stage spans, the depth gauge, and the
// monotone epoch-gauge updates must all stay functions of public
// parameters: byte-identical /metrics and /trace/epochs, identical
// per-site trace multisets, regardless of which secrets flow through the
// overlapped stages.
func TestTelemetryTraceIndependentOfSecretsPipelined(t *testing.T) {
	assertTelemetryIndependent(t, core.Config{
		BlockSize:        block,
		NumLoadBalancers: 2,
		NumSubORAMs:      4,
		Lambda:           32,
		SortWorkers:      2,
		SubORAMWorkers:   2,
		Pipeline:         true,
		PipelineDepth:    4,
		TestLBChoiceSeed: 99,
	}, 6, 48)
}

// TestTelemetrySnapshotIndependentOfSecrets: the programmatic export
// (Registry.Snapshot, what snoopy-bench writes to BENCH_observability.json)
// is as content-independent as the HTTP surface.
func TestTelemetrySnapshotIndependentOfSecrets(t *testing.T) {
	cfg := core.Config{
		BlockSize:        block,
		NumLoadBalancers: 1,
		NumSubORAMs:      2,
		Lambda:           32,
		SortWorkers:      1,
		SubORAMWorkers:   1,
	}
	runSnap := func(seed int64) telemetry.Snapshot {
		reg := telemetry.NewRegistry()
		reg.SetClock(func() int64 { return 0 })
		c := cfg
		c.Telemetry = reg
		sys, err := core.NewLocal(c)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		rng := rand.New(rand.NewSource(seed))
		ids := make([]uint64, 64)
		for i := range ids {
			ids[i] = uint64(rng.Intn(1<<30)*64 + i) // distinct, secret
		}
		data := make([]byte, 64*block)
		rng.Read(data)
		if err := sys.Init(ids, data); err != nil {
			t.Fatal(err)
		}
		for e := 0; e < 2; e++ {
			waits := make([]func() ([]byte, bool, error), 0, 16)
			for i := 0; i < 16; i++ {
				w, err := sys.WriteAsync(ids[rng.Intn(len(ids))], []byte{byte(rng.Intn(256))})
				if err != nil {
					t.Fatal(err)
				}
				waits = append(waits, w)
			}
			sys.Flush()
			for _, w := range waits {
				if _, _, err := w(); err != nil {
					t.Fatal(err)
				}
			}
		}
		return reg.Snapshot(256)
	}
	a, b := runSnap(7), runSnap(8)
	if len(a.Counters) == 0 || len(a.Spans) == 0 {
		t.Fatal("snapshot captured nothing")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshot depends on secrets:\nA: %+v\nB: %+v", a, b)
	}
}
