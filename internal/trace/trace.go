// Package trace records the adversary-visible access pattern of Snoopy's
// oblivious algorithms so tests can check the system's core security claim
// empirically: for fixed public parameters (request count, subORAM count,
// data size, hash keys), the position sequence of every memory access is
// identical no matter what the requests contain. This is the executable
// counterpart of the simulators in the paper's Figs. 20/22/24/26 — the
// simulator "runs" the same positions without knowing the data, so equal
// traces mean the adversary learns nothing beyond public information.
package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
)

// Event kinds.
const (
	KindSwap    uint8 = 1 // conditional swap of rows (i, j)
	KindCopyRow uint8 = 2 // conditional copy row src → dst
	KindTouch   uint8 = 3 // full read/write pass over row i
	// File events record the host-visible I/O of the persistence layer
	// (internal/persist) as (byte offset, length) pairs: what the untrusted
	// disk observes must likewise be independent of request contents.
	KindFileRead  uint8 = 4 // read of (offset, length) from a state file
	KindFileWrite uint8 = 5 // write of (offset, length) to a state file
	// Segment events record the disk-resident partition store's I/O
	// (internal/segstore) as (byte offset, length) pairs within the segment
	// data file. Every segment I/O is a full-slot transfer, so the offset
	// identifies the (segment, epoch-parity slot) and the length is the
	// fixed sealed slot size — both functions of public parameters only.
	KindSegRead  uint8 = 6 // full-slot read at (offset, length)
	KindSegWrite uint8 = 7 // full-slot write at (offset, length)
)

// Recorder accumulates an access trace as a running hash (position data
// only — conditions and contents are secret and never enter the trace).
// A nil *Recorder is valid and records nothing. Not safe for concurrent
// use: tracing is a single-threaded test facility.
type Recorder struct {
	h hash.Hash
	n uint64
}

// New creates an empty Recorder.
func New() *Recorder { return &Recorder{h: sha256.New()} }

// Record appends an event.
func (r *Recorder) Record(kind uint8, i, j int) {
	if r == nil {
		return
	}
	var buf [17]byte
	buf[0] = kind
	binary.LittleEndian.PutUint64(buf[1:9], uint64(i))
	binary.LittleEndian.PutUint64(buf[9:17], uint64(j))
	r.h.Write(buf[:])
	r.n++
}

// Count returns the number of recorded events.
func (r *Recorder) Count() uint64 {
	if r == nil {
		return 0
	}
	return r.n
}

// Sum returns the trace digest.
func (r *Recorder) Sum() [sha256.Size]byte {
	if r == nil {
		return [sha256.Size]byte{}
	}
	var out [sha256.Size]byte
	copy(out[:], r.h.Sum(nil))
	return out
}

// Equal reports whether two recorders saw identical traces.
func Equal(a, b *Recorder) bool {
	return a.Count() == b.Count() && a.Sum() == b.Sum()
}
