package trace_test

import (
	"math/rand"
	"testing"

	"snoopy/internal/persist"
	"snoopy/internal/segstore"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
	"snoopy/internal/trace"
)

// TestSegstoreTraceIndependentOfContents checks the disk-resident
// partition's obliviousness claim end to end: the host-visible I/O — every
// (kind, offset, length) the disk observes across segment slot reads and
// writes, WAL appends, and registry commits — is byte-identical across
// workloads that differ only in secrets (which objects exist, which are
// accessed, the read/write mix, the stored values) while sharing the same
// public shape (object count, block size, segment geometry, batch length,
// epoch count). Workers stays 1: the Recorder is not concurrency-safe, and
// one worker keeps the interleaving canonical.
func TestSegstoreTraceIndependentOfContents(t *testing.T) {
	const (
		n         = 64 // objects per partition (public)
		m         = 24 // requests per batch (public)
		epochs    = 5
		segBlocks = 8 // 8 segments of 8 blocks; buffer is 1/8 the partition
	)
	rng := rand.New(rand.NewSource(97))

	var refWrite, refRecover *trace.Recorder
	for trial := 0; trial < 4; trial++ {
		dir := t.TempDir()
		rec := trace.New()
		cfg := persist.SegConfig{
			BlockSize: block, SegmentBlocks: segBlocks, WALRows: 16, Rec: rec,
		}
		build := func(ss *segstore.Store) persist.StorePartition {
			return suboram.New(suboram.Config{BlockSize: block, Workers: 1, Store: ss})
		}
		sd, err := persist.NewSegDurable(dir, build, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ids, data := randomImage(rng, n)
		if err := sd.Init(ids, data); err != nil {
			t.Fatal(err)
		}
		for e := 0; e < epochs; e++ {
			reqs := store.NewRequests(m, block)
			perm := rng.Perm(1 << 20)
			for i := 0; i < m; i++ {
				key := uint64(perm[i]) // distinct; hit-or-miss varies by trial
				if rng.Intn(2) == 0 {
					key = ids[rng.Intn(n)]
					for j := 0; j < i; j++ {
						if reqs.Key[j] == key {
							key = uint64(perm[i])
							break
						}
					}
				}
				op := store.OpRead
				var val []byte
				if rng.Intn(2) == 0 {
					op = store.OpWrite
					val = make([]byte, block)
					rng.Read(val)
				}
				reqs.SetRow(i, op, key, 0, uint64(i), uint64(i), val)
			}
			if _, err := sd.BatchAccess(reqs); err != nil {
				t.Fatal(err)
			}
		}
		sd.Close()
		if trial == 0 {
			refWrite = rec
		} else if !trace.Equal(refWrite, rec) {
			t.Fatalf("trial %d: disk-resident I/O trace depends on secrets (%d events vs %d)",
				trial, rec.Count(), refWrite.Count())
		}

		// Recovery: reopening the directory streams a verification pass
		// whose (offset, length) sequence must be content-independent too.
		rrec := trace.New()
		rcfg := cfg
		rcfg.Rec = rrec
		sd2, err := persist.NewSegDurable(dir, build, rcfg)
		if err != nil {
			t.Fatal(err)
		}
		if !sd2.Recovered() {
			t.Fatal("reopen did not recover")
		}
		sd2.Close()
		if trial == 0 {
			refRecover = rrec
		} else if !trace.Equal(refRecover, rrec) {
			t.Fatalf("trial %d: disk-resident recovery trace depends on stored contents (%d events vs %d)",
				trial, rrec.Count(), refRecover.Count())
		}
	}
	if refWrite.Count() == 0 || refRecover.Count() == 0 {
		t.Fatal("disk-resident partition recorded no I/O events")
	}
}
