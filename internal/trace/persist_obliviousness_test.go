package trace_test

import (
	"math/rand"
	"sort"
	"testing"

	"snoopy/internal/persist"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
	"snoopy/internal/trace"
)

// randomImage builds n objects with sorted distinct random ids and random
// values — per-trial secret contents over a fixed public size.
func randomImage(rng *rand.Rand, n int) (ids []uint64, data []byte) {
	seen := map[uint64]bool{}
	for len(ids) < n {
		id := uint64(rng.Intn(1 << 20))
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	data = make([]byte, n*block)
	rng.Read(data)
	return ids, data
}

// TestPersistenceTraceIndependentOfRequests checks the durability layer's
// own obliviousness claim: the host-visible file I/O — every (offset,
// length) the disk observes, for WAL appends, snapshot writes, and recovery
// reads — depends only on public parameters (object count, block size,
// batch length, epoch count), never on which objects are accessed, the
// read/write mix, or the stored values.
func TestPersistenceTraceIndependentOfRequests(t *testing.T) {
	const (
		n      = 64 // objects per partition
		m      = 24 // requests per batch (public)
		epochs = 7  // crosses a SnapshotEvery boundary mid-stream
	)
	cfg := persist.Config{
		BlockSize: block, ChunkBlocks: 8, WALRows: 16, SnapshotEvery: 3,
	}
	rng := rand.New(rand.NewSource(91))

	var refWrite, refRecover *trace.Recorder
	for trial := 0; trial < 4; trial++ {
		dir := t.TempDir()
		// Only the persistence layer is traced: the subORAM's in-memory scan
		// trace is covered by its own test, and tracing it here would mix in
		// the per-trial (public) hash keys.
		rec := trace.New()
		tcfg := cfg
		tcfg.Rec = rec
		dur, err := persist.NewDurable(dir, suboram.New(suboram.Config{BlockSize: block}), tcfg)
		if err != nil {
			t.Fatal(err)
		}
		ids, data := randomImage(rng, n)
		if err := dur.Init(ids, data); err != nil {
			t.Fatal(err)
		}
		for e := 0; e < epochs; e++ {
			reqs := store.NewRequests(m, block)
			perm := rng.Perm(1 << 20)
			for i := 0; i < m; i++ {
				key := uint64(perm[i]) // distinct; hit-or-miss varies by trial
				if rng.Intn(2) == 0 {
					key = ids[rng.Intn(n)] // force some hits (still distinct via perm fallback)
					for j := 0; j < i; j++ {
						if reqs.Key[j] == key {
							key = uint64(perm[i])
							break
						}
					}
				}
				op := store.OpRead
				var val []byte
				if rng.Intn(2) == 0 {
					op = store.OpWrite
					val = make([]byte, block)
					rng.Read(val)
				}
				reqs.SetRow(i, op, key, 0, uint64(i), uint64(i), val)
			}
			if _, err := dur.BatchAccess(reqs); err != nil {
				t.Fatal(err)
			}
		}
		dur.Close()
		if trial == 0 {
			refWrite = rec
		} else if !trace.Equal(refWrite, rec) {
			t.Fatalf("trial %d: persistence write trace depends on request contents (%d events vs %d)",
				trial, rec.Count(), refWrite.Count())
		}

		// Recovery path: reopening the directory must also read a
		// content-independent (offset, length) sequence.
		rrec := trace.New()
		rcfg := cfg
		rcfg.Rec = rrec
		dur2, err := persist.NewDurable(dir, suboram.New(suboram.Config{BlockSize: block}), rcfg)
		if err != nil {
			t.Fatal(err)
		}
		if !dur2.Recovered() {
			t.Fatal("reopen did not recover")
		}
		dur2.Close()
		if trial == 0 {
			refRecover = rrec
		} else if !trace.Equal(refRecover, rrec) {
			t.Fatalf("trial %d: recovery trace depends on stored contents (%d events vs %d)",
				trial, rrec.Count(), refRecover.Count())
		}
	}
	if refWrite.Count() == 0 || refRecover.Count() == 0 {
		t.Fatal("persistence layer recorded no file events")
	}
}
