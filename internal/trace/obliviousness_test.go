// Package trace_test holds the system-level obliviousness tests: for fixed
// public parameters, the full access trace of the load balancer's epoch
// processing and the subORAM's batch processing must be bit-identical no
// matter what the requests contain — the executable form of the paper's
// simulation proofs (Theorems 1 and 2).
package trace_test

import (
	"math/rand"
	"testing"

	"snoopy/internal/crypt"
	"snoopy/internal/loadbalancer"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
	"snoopy/internal/trace"
)

const block = 16

// randomRequests builds n requests with random keys/ops/payloads, including
// duplicate keys with probability ~1/3.
func randomRequests(rng *rand.Rand, n int) *store.Requests {
	reqs := store.NewRequests(n, block)
	var last uint64
	for i := 0; i < n; i++ {
		key := uint64(rng.Intn(1 << 20))
		if i > 0 && rng.Intn(3) == 0 {
			key = last // force duplicates
		}
		last = key
		op := store.OpRead
		data := []byte(nil)
		if rng.Intn(2) == 0 {
			op = store.OpWrite
			data = []byte{byte(rng.Intn(256))}
		}
		reqs.SetRow(i, op, key, 0, uint64(i), uint64(i), data)
		if rng.Intn(4) == 0 {
			reqs.Op[i] = store.OpWrite // extra op skew
		}
	}
	return reqs
}

// distinctRequests builds n requests with distinct random keys (subORAM
// precondition, paper Definition 2).
func distinctRequests(rng *rand.Rand, n int) *store.Requests {
	reqs := store.NewRequests(n, block)
	perm := rng.Perm(n * 8)
	for i := 0; i < n; i++ {
		op := store.OpRead
		if rng.Intn(2) == 0 {
			op = store.OpWrite
		}
		reqs.SetRow(i, op, uint64(perm[i]), 0, uint64(i), uint64(i), []byte{byte(i)})
	}
	return reqs
}

func TestLoadBalancerEpochTraceIndependentOfRequests(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	key := crypt.MustNewKey()
	const n, s = 200, 4

	var ref *trace.Recorder
	var refBatchRows int
	for trial := 0; trial < 4; trial++ {
		rec := trace.New()
		lb := loadbalancer.New(loadbalancer.Config{
			BlockSize: block, NumSubORAMs: s, Lambda: 32, SortWorkers: 1, Rec: rec,
		}, key)
		reqs := randomRequests(rng, n)
		b, err := lb.MakeBatches(reqs)
		if err != nil {
			t.Fatal(err)
		}
		// Simulate responses (the subORAM trace is tested separately): echo
		// the batches back. Sizes are public, so this keeps the match-phase
		// input shape fixed.
		resp := b.All.Clone()
		if _, err := lb.MatchResponses(resp, reqs); err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			ref = rec
			refBatchRows = b.All.Len()
			continue
		}
		if b.All.Len() != refBatchRows {
			t.Fatalf("public batch shape varied: %d vs %d", b.All.Len(), refBatchRows)
		}
		if !trace.Equal(ref, rec) {
			t.Fatalf("trial %d: load balancer trace depends on request contents "+
				"(%d vs %d events)", trial, rec.Count(), ref.Count())
		}
	}
	if ref.Count() == 0 {
		t.Fatal("recorder captured nothing — instrumentation broken")
	}
}

func TestLoadBalancerTraceIndependentOfHashKey(t *testing.T) {
	// Routing key changes where requests go, but not the access trace.
	rng := rand.New(rand.NewSource(51))
	reqs := randomRequests(rng, 150)
	var ref *trace.Recorder
	for trial := 0; trial < 3; trial++ {
		rec := trace.New()
		lb := loadbalancer.New(loadbalancer.Config{
			BlockSize: block, NumSubORAMs: 3, Lambda: 32, SortWorkers: 1, Rec: rec,
		}, crypt.MustNewKey())
		if _, err := lb.MakeBatches(reqs); err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			ref = rec
			continue
		}
		if !trace.Equal(ref, rec) {
			t.Fatal("trace depends on the routing key")
		}
	}
}

func TestSubORAMTraceIndependentOfBatchContents(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	const nObjects, batchN = 300, 64

	ids := make([]uint64, nObjects)
	data := make([]byte, nObjects*block)
	for i := range ids {
		ids[i] = uint64(1<<21) + uint64(i)
	}
	keys := [2]crypt.SipKey{crypt.MustNewSipKey(), crypt.MustNewSipKey()}

	var ref *trace.Recorder
	for trial := 0; trial < 4; trial++ {
		rec := trace.New()
		s := suboram.New(suboram.Config{
			BlockSize: block, Workers: 1, Rec: rec, TestHashKeys: &keys,
		})
		if err := s.Init(ids, data); err != nil {
			t.Fatal(err)
		}
		// Different distinct request sets, same public size. Some keys hit
		// stored objects, some miss; ops vary.
		reqs := distinctRequests(rng, batchN)
		for i := 0; i < batchN; i += 2 {
			reqs.Key[i] = ids[rng.Intn(nObjects)] // ensure hits, distinct? may collide
		}
		dedup(reqs)
		if _, err := s.BatchAccess(reqs); err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			ref = rec
			continue
		}
		if !trace.Equal(ref, rec) {
			t.Fatalf("trial %d: subORAM trace depends on batch contents "+
				"(%d vs %d events)", trial, rec.Count(), ref.Count())
		}
	}
	if ref.Count() == 0 {
		t.Fatal("recorder captured nothing — instrumentation broken")
	}
}

// dedup rewrites any duplicate keys to fresh distinct ones (plain code —
// test setup only).
func dedup(reqs *store.Requests) {
	seen := map[uint64]bool{}
	next := uint64(1 << 30)
	for i := 0; i < reqs.Len(); i++ {
		for seen[reqs.Key[i]] {
			reqs.Key[i] = next
			next++
		}
		seen[reqs.Key[i]] = true
	}
}

func TestRecorderBasics(t *testing.T) {
	a, b := trace.New(), trace.New()
	if !trace.Equal(a, b) {
		t.Fatal("empty recorders should be equal")
	}
	a.Record(trace.KindSwap, 1, 2)
	if trace.Equal(a, b) {
		t.Fatal("different traces compared equal")
	}
	b.Record(trace.KindSwap, 1, 2)
	if !trace.Equal(a, b) {
		t.Fatal("same traces compared unequal")
	}
	b.Record(trace.KindSwap, 2, 1)
	a.Record(trace.KindSwap, 1, 2)
	if trace.Equal(a, b) {
		t.Fatal("order/position must matter")
	}
	var nilRec *trace.Recorder
	nilRec.Record(trace.KindTouch, 0, 0) // must not panic
	if nilRec.Count() != 0 {
		t.Fatal("nil recorder should count zero")
	}
}

// TestPartitionObliviousTrace: the Fig. 23 oblivious initialization must
// produce identical sort traces for different object sets of equal size.
func TestPartitionObliviousTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	const n = 200
	var ref *trace.Recorder
	for trial := 0; trial < 3; trial++ {
		rec := trace.New()
		lb := loadbalancer.New(loadbalancer.Config{
			BlockSize: block, NumSubORAMs: 4, Lambda: 32, SortWorkers: 1, Rec: rec,
		}, crypt.MustNewKey())
		ids := make([]uint64, n)
		perm := rng.Perm(n * 10)
		for i := range ids {
			ids[i] = uint64(perm[i])
		}
		data := make([]byte, n*block)
		rng.Read(data)
		if _, _, err := lb.PartitionOblivious(ids, data); err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			ref = rec
			continue
		}
		if !trace.Equal(ref, rec) {
			t.Fatal("oblivious partition trace depends on object contents")
		}
	}
	if ref.Count() == 0 {
		t.Fatal("no trace recorded")
	}
}
