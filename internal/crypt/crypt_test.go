package crypt

import (
	"bytes"
	"testing"
)

func TestSealOpenRoundTrip(t *testing.T) {
	key := MustNewKey()
	s, err := NewSealer(key, 1)
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("the frequency with which a doctor accesses a database")
	aad := []byte("epoch=7")
	ct := s.Seal(pt, aad)
	if bytes.Contains(ct, pt) {
		t.Fatal("ciphertext contains plaintext")
	}
	got, err := s.Open(ct, aad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("round trip mismatch: %q", got)
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	s, _ := NewSealer(MustNewKey(), 1)
	ct := s.Seal([]byte("payload"), nil)
	for _, i := range []int{0, NonceSize, len(ct) - 1} {
		bad := append([]byte(nil), ct...)
		bad[i] ^= 1
		if _, err := s.Open(bad, nil); err == nil {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}
	if _, err := s.Open(ct, []byte("wrong aad")); err == nil {
		t.Fatal("wrong AAD accepted")
	}
	if _, err := s.Open(ct[:4], nil); err == nil {
		t.Fatal("truncated message accepted")
	}
}

func TestNoncesNeverRepeat(t *testing.T) {
	s, _ := NewSealer(MustNewKey(), 3)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		ct := s.Seal([]byte("x"), nil)
		n := string(ct[:NonceSize])
		if seen[n] {
			t.Fatal("nonce reuse")
		}
		seen[n] = true
	}
}

func TestChannelsSeparateNonces(t *testing.T) {
	key := MustNewKey()
	a, _ := NewSealer(key, 1)
	b, _ := NewSealer(key, 2)
	ca := a.Seal([]byte("x"), nil)
	cb := b.Seal([]byte("x"), nil)
	if bytes.Equal(ca[:NonceSize], cb[:NonceSize]) {
		t.Fatal("different channels produced identical nonces")
	}
}

func TestHasherDeterministicAndKeyed(t *testing.T) {
	k1, k2 := MustNewKey(), MustNewKey()
	h1, h1b, h2 := NewHasher(k1), NewHasher(k1), NewHasher(k2)
	if h1.Sum64(42) != h1b.Sum64(42) {
		t.Fatal("same key must give same hash")
	}
	if h1.Sum64(42) == h2.Sum64(42) {
		t.Fatal("different keys should give different hashes (overwhelmingly)")
	}
}

func TestBucketRangeAndBalance(t *testing.T) {
	h := NewHasher(MustNewKey())
	const n = 16
	counts := make([]int, n)
	const trials = 16000
	for id := uint64(0); id < trials; id++ {
		b := h.Bucket(id, n)
		if int(b) >= n {
			t.Fatalf("bucket %d out of range", b)
		}
		counts[b]++
	}
	mean := trials / n
	for i, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Fatalf("bucket %d badly unbalanced: %d (mean %d)", i, c, mean)
		}
	}
}

func TestDigest(t *testing.T) {
	b := []byte("block contents")
	d := DigestOf(b)
	if !d.Verify(b) {
		t.Fatal("digest should verify")
	}
	b[0] ^= 1
	if d.Verify(b) {
		t.Fatal("digest verified tampered block")
	}
}
