package crypt

import (
	"encoding/binary"
	"testing"
)

// TestSipHashVector checks against the reference test vectors from the
// SipHash paper (Aumasson & Bernstein), key 000102...0f, message 00..07.
func TestSipHashVector(t *testing.T) {
	var kb [16]byte
	for i := range kb {
		kb[i] = byte(i)
	}
	k := SipKey{
		binary.LittleEndian.Uint64(kb[0:8]),
		binary.LittleEndian.Uint64(kb[8:16]),
	}
	var mb [8]byte
	for i := range mb {
		mb[i] = byte(i)
	}
	msg := binary.LittleEndian.Uint64(mb[:])
	// Expected SipHash-2-4 output for the 8-byte message 0001..07
	// (reference-vector bytes 62 24 93 9a 79 f5 f5 93, little-endian).
	want := uint64(0x93f5f5799a932462)
	if got := SipHash(k, msg); got != want {
		t.Fatalf("SipHash = %016x, want %016x", got, want)
	}
}

func TestSipHashKeyed(t *testing.T) {
	k1, k2 := MustNewSipKey(), MustNewSipKey()
	if SipHash(k1, 7) == SipHash(k2, 7) {
		t.Fatal("different keys should disagree")
	}
	if SipHash(k1, 7) != SipHash(k1, 7) {
		t.Fatal("same key must agree")
	}
}

func TestSipBucketBalance(t *testing.T) {
	k := MustNewSipKey()
	const n = 32
	counts := make([]int, n)
	const trials = 32000
	for id := uint64(0); id < trials; id++ {
		counts[SipBucket(k, id, n)]++
	}
	mean := trials / n
	for i, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Fatalf("bucket %d unbalanced: %d (mean %d)", i, c, mean)
		}
	}
}
