package crypt

import (
	"crypto/rand"
	"encoding/binary"
	"sync"
)

// SipKey is a 128-bit key for SipHash-2-4.
type SipKey [2]uint64

// sipEntropy buffers CSPRNG output for SipKey sampling. A fresh pair of
// keys is drawn for every batch (paper §5), which puts key sampling on the
// steady-state epoch path; reading the kernel CSPRNG in 4 KiB gulps into a
// fixed global buffer keeps that path allocation-free (crypto/rand.Read
// forces its destination to escape) and amortizes the syscall.
var sipEntropy struct {
	mu  sync.Mutex
	buf [4096]byte
	off int // bytes consumed; starts "empty" via init below
}

func init() { sipEntropy.off = len(sipEntropy.buf) }

// NewSipKey samples a SipHash key from 16 buffered CSPRNG bytes.
func NewSipKey() (SipKey, error) {
	e := &sipEntropy
	e.mu.Lock()
	if e.off+16 > len(e.buf) {
		if _, err := rand.Read(e.buf[:]); err != nil {
			e.mu.Unlock()
			return SipKey{}, err
		}
		e.off = 0
	}
	k := SipKey{
		binary.LittleEndian.Uint64(e.buf[e.off : e.off+8]),
		binary.LittleEndian.Uint64(e.buf[e.off+8 : e.off+16]),
	}
	e.off += 16
	e.mu.Unlock()
	return k, nil
}

// MustNewSipKey panics on entropy failure.
func MustNewSipKey() SipKey {
	k, err := NewSipKey()
	if err != nil {
		panic(err)
	}
	return k
}

// SipHash computes SipHash-2-4 of an 8-byte message (the object identifier).
// It is the fast keyed PRF used to assign requests to hash-table buckets;
// the key is resampled for every batch (paper §5: "for every batch we sample
// a new key ... for the keyed hash function assigning objects to buckets").
func SipHash(k SipKey, id uint64) uint64 {
	v0 := k[0] ^ 0x736f6d6570736575
	v1 := k[1] ^ 0x646f72616e646f6d
	v2 := k[0] ^ 0x6c7967656e657261
	v3 := k[1] ^ 0x7465646279746573

	round := func() {
		v0 += v1
		v1 = v1<<13 | v1>>51
		v1 ^= v0
		v0 = v0<<32 | v0>>32
		v2 += v3
		v3 = v3<<16 | v3>>48
		v3 ^= v2
		v0 += v3
		v3 = v3<<21 | v3>>43
		v3 ^= v0
		v2 += v1
		v1 = v1<<17 | v1>>47
		v1 ^= v2
		v2 = v2<<32 | v2>>32
	}

	// One 8-byte block.
	v3 ^= id
	round()
	round()
	v0 ^= id

	// Length block: message length 8, i.e. 8<<56.
	b := uint64(8) << 56
	v3 ^= b
	round()
	round()
	v0 ^= b

	// Finalization.
	v2 ^= 0xff
	round()
	round()
	round()
	round()
	return v0 ^ v1 ^ v2 ^ v3
}

// SipBucket maps id to [0, n) using SipHash with multiply-shift reduction.
func SipBucket(k SipKey, id uint64, n int) uint32 {
	if n <= 0 {
		panic("crypt: SipBucket range must be positive")
	}
	v := SipHash(k, id)
	return uint32((v >> 32) * uint64(n) >> 32)
}
