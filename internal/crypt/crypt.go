// Package crypt provides the cryptographic tools Snoopy relies on (paper
// §3.1, §7): authenticated encryption with a strict nonce discipline for all
// inter-node and sealed-storage traffic, and a keyed cryptographic hash used
// to assign objects to subORAMs and hash-table buckets (§4.1, §5).
package crypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
)

// KeySize is the byte length of all symmetric keys (AES-256 / HMAC keys).
const KeySize = 32

// NonceSize is the AES-GCM nonce length in bytes.
const NonceSize = 12

// Overhead is the ciphertext expansion of Seal: nonce plus GCM tag.
const Overhead = NonceSize + 16

// ErrAuth is returned when decryption or digest verification fails,
// indicating tampering by the untrusted host.
var ErrAuth = errors.New("crypt: authentication failure")

// Key is a symmetric secret key.
type Key [KeySize]byte

// NewKey samples a fresh random key.
func NewKey() (Key, error) {
	var k Key
	if _, err := rand.Read(k[:]); err != nil {
		return Key{}, fmt.Errorf("crypt: sampling key: %w", err)
	}
	return k, nil
}

// MustNewKey is NewKey for contexts (tests, examples) where entropy failure
// is fatal anyway.
func MustNewKey() Key {
	k, err := NewKey()
	if err != nil {
		panic(err)
	}
	return k
}

// Sealer performs authenticated encryption with a monotone nonce counter,
// preventing both forgery and replay of messages within a channel (paper
// §3.1: "all communication is encrypted using an authenticated encryption
// scheme with a nonce to prevent replay attacks"). A Sealer is safe for
// concurrent use.
type Sealer struct {
	aead    cipher.AEAD
	counter atomic.Uint64
	channel uint32
}

// NewSealer builds a Sealer for the given key. The channel id is folded into
// every nonce so that distinct channels sharing a key never collide.
func NewSealer(key Key, channel uint32) (*Sealer, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("crypt: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("crypt: %w", err)
	}
	return &Sealer{aead: aead, channel: channel}, nil
}

// Seal encrypts and authenticates plaintext with the given associated data,
// returning nonce||ciphertext||tag. Each call consumes a fresh nonce.
func (s *Sealer) Seal(plaintext, aad []byte) []byte {
	return s.SealAppend(nil, plaintext, aad)
}

// SealAppend is Seal appending to dst (which may share no storage with
// plaintext), so a steady-state sender can reuse one frame buffer per
// channel instead of allocating per message.
func (s *Sealer) SealAppend(dst, plaintext, aad []byte) []byte {
	// The nonce is built in place at the end of dst and passed to the AEAD
	// as a slice of dst itself: a local nonce array would escape through
	// the cipher.AEAD interface call and cost one heap allocation per
	// frame. Seal appends the ciphertext after the nonce and never writes
	// the prefix, so the aliasing is safe.
	off := len(dst)
	var nonce [NonceSize]byte
	binary.LittleEndian.PutUint32(nonce[0:4], s.channel)
	binary.LittleEndian.PutUint64(nonce[4:12], s.counter.Add(1))
	dst = append(dst, nonce[:]...)
	return s.aead.Seal(dst, dst[off:off+NonceSize], plaintext, aad)
}

// Open authenticates and decrypts a message produced by Seal with the same
// key and associated data.
func (s *Sealer) Open(msg, aad []byte) ([]byte, error) {
	return s.OpenAppend(nil, msg, aad)
}

// OpenAppend is Open appending the plaintext to dst (which may share no
// storage with msg), the receive-side counterpart of SealAppend.
func (s *Sealer) OpenAppend(dst, msg, aad []byte) ([]byte, error) {
	if len(msg) < NonceSize {
		return nil, ErrAuth
	}
	pt, err := s.aead.Open(dst, msg[:NonceSize], msg[NonceSize:], aad)
	if err != nil {
		return nil, ErrAuth
	}
	return pt, nil
}

// RandomSealer performs authenticated encryption with fresh random nonces.
// It serves sealed *storage* (state that outlives the process), where the
// Sealer's monotone counter discipline would repeat nonces after a restart:
// a recovered enclave re-sealing block 0 under counter 1 would collide with
// the pre-crash seal of block 0. Random 96-bit nonces make collisions
// negligible regardless of restarts. A RandomSealer is safe for concurrent
// use.
type RandomSealer struct {
	aead cipher.AEAD
}

// NewRandomSealer builds a RandomSealer for the given key.
func NewRandomSealer(key Key) (*RandomSealer, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("crypt: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("crypt: %w", err)
	}
	return &RandomSealer{aead: aead}, nil
}

// Seal encrypts and authenticates plaintext with the given associated data,
// returning nonce||ciphertext||tag (Overhead bytes of expansion).
func (s *RandomSealer) Seal(plaintext, aad []byte) []byte {
	return s.SealAppend(nil, plaintext, aad)
}

// SealAppend is Seal appending to dst (which may share no storage with
// plaintext), so a steady-state sealed-storage writer can reuse one
// ciphertext buffer per stream instead of allocating per record.
func (s *RandomSealer) SealAppend(dst, plaintext, aad []byte) []byte {
	// Stage the nonce inside dst rather than a local array: locals passed
	// to rand.Read and the AEAD interface escape, costing one heap
	// allocation per seal — dst is already heap-backed.
	n := len(dst)
	var zero [NonceSize]byte
	dst = append(dst, zero[:]...)
	nonce := dst[n : n+NonceSize]
	if _, err := rand.Read(nonce); err != nil {
		panic(fmt.Sprintf("crypt: sampling nonce: %v", err))
	}
	return s.aead.Seal(dst, nonce, plaintext, aad)
}

// Open authenticates and decrypts a message produced by Seal with the same
// key and associated data.
func (s *RandomSealer) Open(msg, aad []byte) ([]byte, error) {
	return s.OpenAppend(nil, msg, aad)
}

// OpenAppend is Open appending the plaintext to dst (which may share no
// storage with msg), the read-side counterpart of SealAppend.
func (s *RandomSealer) OpenAppend(dst, msg, aad []byte) ([]byte, error) {
	if len(msg) < NonceSize {
		return nil, ErrAuth
	}
	pt, err := s.aead.Open(dst, msg[:NonceSize], msg[NonceSize:], aad)
	if err != nil {
		return nil, ErrAuth
	}
	return pt, nil
}

// Hasher is the keyed cryptographic hash H_k of the paper: it maps object
// identifiers to [range) such that, without the key, the attacker cannot
// predict or bias assignments (§4.1: "requests are randomly distributed by
// using a keyed hash function where the attacker does not know the key").
//
// The PRF is SipHash-2-4 under a key derived from the 256-bit secret (the
// same PRF the hash-table bucket assignment uses). It is stateless and
// allocation-free: Sum64 sits on the per-request path of every epoch
// (object→subORAM assignment), where the previous HMAC-SHA256 construction
// spent more time allocating MAC state than hashing.
type Hasher struct {
	k SipKey
}

// NewHasher builds a keyed hasher.
func NewHasher(key Key) *Hasher {
	// Domain-separate from direct uses of the key: hash the key through
	// SHA-256 with a context label before truncating to the SipHash key.
	d := sha256.Sum256(append([]byte("snoopy-hasher/v1|"), key[:]...))
	return &Hasher{k: SipKey{
		binary.LittleEndian.Uint64(d[0:8]),
		binary.LittleEndian.Uint64(d[8:16]),
	}}
}

// Sum64 returns the full 64-bit keyed hash of id.
func (h *Hasher) Sum64(id uint64) uint64 {
	return SipHash(h.k, id)
}

// Bucket maps id to a bucket index in [0, n). n must be positive.
func (h *Hasher) Bucket(id uint64, n int) uint32 {
	if n <= 0 {
		panic("crypt: Bucket range must be positive")
	}
	// Multiply-shift reduction avoids modulo bias beyond 2^-32 for the
	// bucket counts used here (n << 2^32).
	v := h.Sum64(id)
	return uint32((v >> 32) * uint64(n) >> 32)
}

// Digest is a SHA-256 content digest used for integrity of enclave-external
// memory (paper §2: "for memory outside the enclave, we store a digest of
// each block inside the enclave").
type Digest [sha256.Size]byte

// DigestOf computes the digest of b.
func DigestOf(b []byte) Digest { return sha256.Sum256(b) }

// Verify reports whether b matches the digest, in constant time.
func (d Digest) Verify(b []byte) bool {
	got := sha256.Sum256(b)
	return hmac.Equal(got[:], d[:])
}
