package persist

import (
	"encoding/binary"
	"errors"
	"io"
	"os"
	"sync"
)

// counterContext is the AAD context for the epoch counter record.
const counterContext = "snoopy-persist/counter/v1"

// FileCounter is the trusted monotonic epoch counter of paper §9, persisted
// to the partition directory. It implements the same Increment/Current
// contract as internal/replica's Counter abstraction (ROTE / the SGX
// counter service), so a replicated deployment can drive its rollback
// detection from the durable partition counter instead of a volatile one.
//
// The counter file's *contents* are sealed — host edits fail
// authentication — but its *monotonicity* across restarts is what real
// monotonic-counter hardware provides and this simulation assumes: the
// threat model trusts that the host cannot revert the counter file together
// with the data files to a consistent stale pair. Everything else (snapshot,
// WAL) is untrusted storage whose freshness recovery checks against this
// counter.
type FileCounter struct {
	mu  sync.Mutex
	d   *dir
	val uint64
	err error // sticky persistence failure, surfaced by the Durable wrapper
}

// openCounter loads the counter file, creating it at zero when absent.
func openCounter(d *dir) (*FileCounter, bool, error) {
	c := &FileCounter{d: d}
	f, err := os.Open(d.file(counterFile))
	if errors.Is(err, os.ErrNotExist) {
		if err := c.persist(0); err != nil {
			return nil, false, err
		}
		return c, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	pt, err := d.readRecord(f, counterContext, nil, 8, 0)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, false, errCorrupt("epoch counter file truncated")
		}
		return nil, false, err
	}
	c.val = binary.LittleEndian.Uint64(pt)
	return c, true, nil
}

func (c *FileCounter) persist(v uint64) error {
	var pt [8]byte
	binary.LittleEndian.PutUint64(pt[:], v)
	if err := c.d.writeFileAtomic(counterFile, c.d.sealRecord(counterContext, nil, pt[:])); err != nil {
		return err
	}
	c.val = v
	return nil
}

// Increment advances the counter by one, durably, and returns the new
// value. A persistence failure is sticky (see Err); the in-memory value
// still advances so callers observe monotone values.
func (c *FileCounter) Increment() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := c.val + 1
	if err := c.persist(v); err != nil && c.err == nil {
		c.err = err
	}
	c.val = v
	return v
}

// Current returns the counter without advancing it.
func (c *FileCounter) Current() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.val
}

// Err returns the first persistence failure, if any. A counter with a
// non-nil Err no longer guarantees durability of its increments.
func (c *FileCounter) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}
