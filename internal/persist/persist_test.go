package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"snoopy/internal/enclave"
	"snoopy/internal/store"
	"snoopy/internal/suboram"
)

const testBlock = 32

func newPartition(t *testing.T) *suboram.SubORAM {
	t.Helper()
	return suboram.New(suboram.Config{BlockSize: testBlock})
}

// loadObjects initializes dur with n objects whose value encodes their id.
func loadObjects(t *testing.T, dur *Durable, n int) {
	t.Helper()
	ids := make([]uint64, n)
	data := make([]byte, n*testBlock)
	for i := range ids {
		ids[i] = uint64(i + 1)
		fillValue(data[i*testBlock:(i+1)*testBlock], uint64(i+1), 0)
	}
	if err := dur.Init(ids, data); err != nil {
		t.Fatalf("Init: %v", err)
	}
}

// fillValue writes a recognizable (id, version) pattern into a value block.
func fillValue(dst []byte, id, version uint64) {
	for i := range dst {
		dst[i] = byte(id)*3 + byte(version)*7 + byte(i)
	}
}

// writeBatch applies a single-row write batch for (key, version).
func writeBatch(t *testing.T, dur *Durable, key, version uint64) {
	t.Helper()
	reqs := store.NewRequests(1, testBlock)
	val := make([]byte, testBlock)
	fillValue(val, key, version)
	reqs.SetRow(0, store.OpWrite, key, 0, 1, 0, val)
	if _, err := dur.BatchAccess(reqs); err != nil {
		t.Fatalf("write batch key=%d: %v", key, err)
	}
}

// readBack reads key through a batch and returns the value block.
func readBack(t *testing.T, dur *Durable, key uint64) []byte {
	t.Helper()
	reqs := store.NewRequests(1, testBlock)
	reqs.SetRow(0, store.OpRead, key, 0, 1, 0, nil)
	out, err := dur.BatchAccess(reqs)
	if err != nil {
		t.Fatalf("read batch key=%d: %v", key, err)
	}
	return out.Block(0)
}

func expectValue(t *testing.T, dur *Durable, key, version uint64) {
	t.Helper()
	want := make([]byte, testBlock)
	fillValue(want, key, version)
	if got := readBack(t, dur, key); !bytes.Equal(got, want) {
		t.Fatalf("key %d: got %x, want version %d (%x)", key, got, version, want)
	}
}

func TestDurableRoundTrip(t *testing.T) {
	dirPath := t.TempDir()
	dur, err := NewDurable(dirPath, newPartition(t), Config{BlockSize: testBlock})
	if err != nil {
		t.Fatal(err)
	}
	if dur.Recovered() {
		t.Fatal("fresh directory reported recovered")
	}
	loadObjects(t, dur, 10)
	writeBatch(t, dur, 3, 1)
	writeBatch(t, dur, 7, 2)
	writeBatch(t, dur, 3, 5)
	if got := dur.Epoch(); got != 3 {
		t.Fatalf("epoch = %d, want 3", got)
	}
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a fresh in-memory partition: state must come from disk.
	dur2, err := NewDurable(dirPath, newPartition(t), Config{BlockSize: testBlock})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer dur2.Close()
	if !dur2.Recovered() {
		t.Fatal("reopen did not recover")
	}
	if got := dur2.Epoch(); got != 3 {
		t.Fatalf("recovered epoch = %d, want 3", got)
	}
	expectValue(t, dur2, 3, 5)
	expectValue(t, dur2, 7, 2)
	expectValue(t, dur2, 1, 0) // untouched object keeps its load-time value
}

// TestRestoreSealsStateAndSurvivesCrash: Restore (the replica-resync
// import path) must leave the partition serving the imported state AND
// seal it on disk, so a crash right after a resync recovers the resynced
// state, not the pre-resync one.
func TestRestoreSealsStateAndSurvivesCrash(t *testing.T) {
	dirPath := t.TempDir()
	dur, err := NewDurable(dirPath, newPartition(t), Config{BlockSize: testBlock})
	if err != nil {
		t.Fatal(err)
	}
	loadObjects(t, dur, 4)
	writeBatch(t, dur, 2, 1)

	// Import a peer's image: same ids, different versions.
	n := 4
	ids := make([]uint64, n)
	data := make([]byte, n*testBlock)
	for i := range ids {
		ids[i] = uint64(i + 1)
		fillValue(data[i*testBlock:(i+1)*testBlock], uint64(i+1), 9)
	}
	if err := dur.Restore(ids, data); err != nil {
		t.Fatal(err)
	}
	expectValue(t, dur, 2, 9)
	if dur.ReplayedEpochs() != 0 {
		t.Fatalf("fresh open reported replayed epochs: %d", dur.ReplayedEpochs())
	}
	// Crash (no Close) and recover: the restored image is the durable one.
	dur2, err := NewDurable(dirPath, newPartition(t), Config{BlockSize: testBlock})
	if err != nil {
		t.Fatalf("reopen after restore: %v", err)
	}
	defer dur2.Close()
	if !dur2.Recovered() {
		t.Fatal("reopen did not recover")
	}
	expectValue(t, dur2, 2, 9)
	expectValue(t, dur2, 4, 9)
}

func TestRecoveryAcrossSnapshots(t *testing.T) {
	dirPath := t.TempDir()
	cfg := Config{BlockSize: testBlock, SnapshotEvery: 2}
	dur, err := NewDurable(dirPath, newPartition(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	loadObjects(t, dur, 8)
	for v := uint64(1); v <= 7; v++ {
		writeBatch(t, dur, 1+v%3, v)
	}
	dur.Close()

	dur2, err := NewDurable(dirPath, newPartition(t), cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer dur2.Close()
	// Last writes: v=7→key 2, v=6→key 1, v=5→key 3.
	expectValue(t, dur2, 2, 7)
	expectValue(t, dur2, 1, 6)
	expectValue(t, dur2, 3, 5)
}

func TestRecoveryDiscardsUnacknowledgedTail(t *testing.T) {
	dirPath := t.TempDir()
	dur, err := NewDurable(dirPath, newPartition(t), Config{BlockSize: testBlock})
	if err != nil {
		t.Fatal(err)
	}
	loadObjects(t, dur, 4)
	writeBatch(t, dur, 2, 1)

	// Simulate a crash after the WAL fsync but before the counter bump: the
	// record for epoch 2 is on disk, but epoch 2 was never acknowledged.
	reqs := store.NewRequests(1, testBlock)
	val := make([]byte, testBlock)
	fillValue(val, 2, 99)
	reqs.SetRow(0, store.OpWrite, 2, 0, 1, 0, val)
	dur.mu.Lock()
	if err := dur.d.appendWAL(dur.wal, &dur.walSize, dur.ctr.Current()+1, reqs, dur.cfg.WALRows, testBlock); err != nil {
		t.Fatal(err)
	}
	if err := dur.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	dur.mu.Unlock()
	dur.Close()

	dur2, err := NewDurable(dirPath, newPartition(t), Config{BlockSize: testBlock})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer dur2.Close()
	if got := dur2.Epoch(); got != 1 {
		t.Fatalf("recovered epoch = %d, want 1", got)
	}
	expectValue(t, dur2, 2, 1) // the unacknowledged version 99 must not surface

	// The discarded tail must also be gone from the file, so new appends
	// stay contiguous.
	writeBatch(t, dur2, 2, 2)
	dur2.Close()
	dur3, err := NewDurable(dirPath, newPartition(t), Config{BlockSize: testBlock})
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer dur3.Close()
	expectValue(t, dur3, 2, 2)
}

func TestRollbackDetected(t *testing.T) {
	dirPath := t.TempDir()
	dur, err := NewDurable(dirPath, newPartition(t), Config{BlockSize: testBlock})
	if err != nil {
		t.Fatal(err)
	}
	loadObjects(t, dur, 4)
	writeBatch(t, dur, 1, 1)

	// Host stashes a validly-sealed copy of the mutable state...
	stale := map[string][]byte{}
	for _, name := range []string{snapshotFile, walFile} {
		b, err := os.ReadFile(filepath.Join(dirPath, name))
		if err != nil {
			t.Fatal(err)
		}
		stale[name] = b
	}
	writeBatch(t, dur, 1, 2)
	writeBatch(t, dur, 1, 3)
	dur.Close()

	// ...and serves it after more epochs were acknowledged.
	for name, b := range stale {
		if err := os.WriteFile(filepath.Join(dirPath, name), b, 0o600); err != nil {
			t.Fatal(err)
		}
	}
	_, err = NewDurable(dirPath, newPartition(t), Config{BlockSize: testBlock})
	if !errors.Is(err, ErrRollback) {
		t.Fatalf("stale state: err = %v, want ErrRollback", err)
	}
	if !errors.Is(err, enclave.ErrIntegrity) {
		t.Fatalf("ErrRollback must be in the ErrIntegrity class, got %v", err)
	}
}

func TestMissingFilesDetected(t *testing.T) {
	for _, name := range []string{snapshotFile, walFile, counterFile} {
		t.Run(name, func(t *testing.T) {
			dirPath := t.TempDir()
			dur, err := NewDurable(dirPath, newPartition(t), Config{BlockSize: testBlock})
			if err != nil {
				t.Fatal(err)
			}
			loadObjects(t, dur, 4)
			writeBatch(t, dur, 1, 1)
			dur.Close()
			if err := os.Remove(filepath.Join(dirPath, name)); err != nil {
				t.Fatal(err)
			}
			dur2, err := NewDurable(dirPath, newPartition(t), Config{BlockSize: testBlock})
			if err == nil {
				dur2.Close()
				// Deleting epoch.ctr models destroying the trusted counter —
				// real counter hardware cannot be erased by the host, so the
				// simulation accepts a silently-fresh counter only when it
				// never reaches this branch.
				if name != counterFile {
					t.Fatalf("deleting %s went undetected", name)
				}
				t.Skip("counter deletion is outside the modeled threat (hardware counter)")
			}
			if !errors.Is(err, enclave.ErrIntegrity) {
				t.Fatalf("deleting %s: err = %v, want ErrIntegrity class", name, err)
			}
		})
	}
}

func TestTamperDetected(t *testing.T) {
	for _, name := range []string{snapshotFile, walFile, counterFile} {
		t.Run(name, func(t *testing.T) {
			dirPath := t.TempDir()
			dur, err := NewDurable(dirPath, newPartition(t), Config{BlockSize: testBlock})
			if err != nil {
				t.Fatal(err)
			}
			loadObjects(t, dur, 4)
			writeBatch(t, dur, 1, 1)
			dur.Close()

			path := filepath.Join(dirPath, name)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)/2] ^= 0x40
			if err := os.WriteFile(path, b, 0o600); err != nil {
				t.Fatal(err)
			}
			_, err = NewDurable(dirPath, newPartition(t), Config{BlockSize: testBlock})
			if !errors.Is(err, enclave.ErrIntegrity) {
				t.Fatalf("tampering %s: err = %v, want ErrIntegrity class", name, err)
			}
		})
	}
}

func TestLargeBatchSpansWALRecords(t *testing.T) {
	dirPath := t.TempDir()
	cfg := Config{BlockSize: testBlock, WALRows: 4}
	dur, err := NewDurable(dirPath, newPartition(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	loadObjects(t, dur, 16)
	// One batch of 10 rows (> WALRows, spans 3 records): writes to every
	// other key, reads interleaved.
	reqs := store.NewRequests(10, testBlock)
	val := make([]byte, testBlock)
	for i := 0; i < 10; i++ {
		key := uint64(i + 1)
		if i%2 == 0 {
			fillValue(val, key, 11)
			reqs.SetRow(i, store.OpWrite, key, 0, uint64(i), 0, val)
		} else {
			reqs.SetRow(i, store.OpRead, key, 0, uint64(i), 0, nil)
		}
	}
	if _, err := dur.BatchAccess(reqs); err != nil {
		t.Fatal(err)
	}
	dur.Close()

	dur2, err := NewDurable(dirPath, newPartition(t), cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer dur2.Close()
	for i := 0; i < 10; i++ {
		key := uint64(i + 1)
		if i%2 == 0 {
			expectValue(t, dur2, key, 11)
		} else {
			expectValue(t, dur2, key, 0) // reads must not have become writes
		}
	}
}

func TestBlockSizeMismatchRejected(t *testing.T) {
	dirPath := t.TempDir()
	dur, err := NewDurable(dirPath, newPartition(t), Config{BlockSize: testBlock})
	if err != nil {
		t.Fatal(err)
	}
	loadObjects(t, dur, 2)
	dur.Close()
	_, err = NewDurable(dirPath, suboram.New(suboram.Config{BlockSize: 64}), Config{BlockSize: 64})
	if err == nil {
		t.Fatal("block size mismatch went undetected")
	}
}

func TestCounterDurability(t *testing.T) {
	dirPath := t.TempDir()
	d, err := openDir(dirPath, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctr, existed, err := openCounter(d)
	if err != nil {
		t.Fatal(err)
	}
	if existed {
		t.Fatal("fresh counter reported as existing")
	}
	for i := uint64(1); i <= 5; i++ {
		if got := ctr.Increment(); got != i {
			t.Fatalf("Increment = %d, want %d", got, i)
		}
	}
	ctr2, existed, err := openCounter(d)
	if err != nil {
		t.Fatal(err)
	}
	if !existed || ctr2.Current() != 5 {
		t.Fatalf("reloaded counter = %d (existed=%v), want 5", ctr2.Current(), existed)
	}
}

func TestRoutingKeyPersists(t *testing.T) {
	dirPath := t.TempDir()
	k1, err := LoadOrCreateRoutingKey(dirPath)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := LoadOrCreateRoutingKey(dirPath)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("routing key changed across loads")
	}
	// Tampering the sealed key file must fail loudly, not yield a new key.
	path := filepath.Join(dirPath, routeKeyFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 1
	if err := os.WriteFile(path, b, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOrCreateRoutingKey(dirPath); !errors.Is(err, enclave.ErrIntegrity) {
		t.Fatalf("tampered routing key: err = %v, want ErrIntegrity class", err)
	}
}
