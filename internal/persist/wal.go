package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"os"

	"snoopy/internal/store"
	"snoopy/internal/trace"
	"snoopy/internal/wirecode"
)

// walContext is the AAD context for WAL records.
const walContext = "snoopy-persist/wal/v1"

// walPrefixLen is the stored public prefix of a WAL record:
// epoch u64 | part u32 | last u8. The prefix is in the clear (the reader
// cannot know the epoch in advance) but bound through the AAD.
const walPrefixLen = 8 + 4 + 1

func putWALPrefix(buf []byte, epoch uint64, part uint32, last bool) {
	binary.LittleEndian.PutUint64(buf[0:8], epoch)
	binary.LittleEndian.PutUint32(buf[8:12], part)
	buf[12] = 0
	if last {
		buf[12] = 1
	}
}

// appendWAL appends the sealed log record(s) for one applied batch. Every
// record carries exactly walRows rows in the wirecode key/value row shape
// (the same per-record layout the wire codec uses, so durable and wire
// representations cannot drift); a batch larger than walRows spans multiple
// parts and a smaller one is padded with dummy rows, so record count and
// size depend only on the public batch length. Read rows are re-keyed into
// the dummy space branch-free (the host cannot tell reads from writes), and
// dummy rows are skipped at replay. The row-staging buffer is reused across
// batches.
//
// The caller fsyncs after all parts are written; the epoch is acknowledged
// only after the trusted counter advances past it.
func (d *dir) appendWAL(f *os.File, offset *int64, epoch uint64, reqs *store.Requests, walRows, blockSize int) error {
	rowLen := wirecode.KVRowLen(blockSize)
	n := reqs.Len()
	parts := (n + walRows - 1) / walRows
	if parts == 0 {
		parts = 1 // an empty batch still logs one (all-dummy) record
	}
	if cap(d.walRowsBuf) < walRows*rowLen {
		d.walRowsBuf = make([]byte, walRows*rowLen)
	}
	rows := d.walRowsBuf[:walRows*rowLen]
	var prefix [walPrefixLen]byte
	for p := 0; p < parts; p++ {
		for r := 0; r < walRows; r++ {
			row := rows[r*rowLen : (r+1)*rowLen]
			i := p*walRows + r
			if i < n {
				// A read contributes no state change: flip it into the dummy
				// key space with arithmetic on the op bit, not a branch, so
				// the row layout never depends on the secret op.
				key := reqs.Key[i] | uint64(reqs.Op[i]^store.OpWrite)<<63
				wirecode.PutKVRow(row, key, reqs.Block(i))
			} else {
				wirecode.PutKVRow(row, store.DummyKeyBit, nil)
			}
		}
		putWALPrefix(prefix[:], epoch, uint32(p), p == parts-1)
		rec := d.sealPrefixed(walContext, prefix[:], rows)
		if _, err := f.Write(rec); err != nil {
			return err
		}
		d.rec.Record(trace.KindFileWrite, int(*offset), len(rec))
		*offset += int64(len(rec))
	}
	return nil
}

// replayWAL validates the log against the snapshot epoch snapEpoch and the
// trusted counter epoch ctrEpoch, applying the write rows of every epoch in
// (snapEpoch, ctrEpoch] through apply. Records must form one contiguous,
// strictly increasing epoch sequence starting at or before snapEpoch+1
// (records at or before snapEpoch are authenticated, then skipped — they
// predate the snapshot). Anything after the counter epoch — valid records,
// torn bytes, or garbage — belongs to a batch that was never acknowledged
// and is discarded. The returned validLen is the file length up to and
// including the last acknowledged record; the caller truncates to it before
// appending.
func (d *dir) replayWAL(path string, snapEpoch, ctrEpoch uint64, walRows, blockSize int, apply func(rows []byte)) (validLen int64, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		if snapEpoch == ctrEpoch {
			return 0, nil
		}
		return 0, ErrRollback
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)

	rowLen := wirecode.KVRowLen(blockSize)
	recLen := int64(recordLen(walPrefixLen, walRows*rowLen))
	var offset int64
	applied := snapEpoch // state is complete through this epoch
	inEpoch := false     // assembling cur's parts
	var cur uint64       // epoch currently being assembled (when inEpoch)
	var prev uint64      // last fully completed epoch
	var nextPart uint32
	first := true
	for applied < ctrEpoch {
		prefix, rows, err := d.readPrefixed(r, walContext, walPrefixLen, walRows*rowLen, offset)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return 0, ErrRollback // acknowledged epochs are missing from the log
			}
			return 0, err
		}
		epoch := binary.LittleEndian.Uint64(prefix[0:8])
		part := binary.LittleEndian.Uint32(prefix[8:12])
		last := prefix[12] == 1
		switch {
		case first:
			if epoch > snapEpoch+1 {
				return 0, ErrRollback // gap: epochs before the first record are missing
			}
		case inEpoch:
			if epoch != cur {
				return 0, errCorrupt("epoch %d interleaved into epoch %d", epoch, cur)
			}
		default:
			if epoch != prev+1 {
				return 0, errCorrupt("wal epoch sequence broken: %d after %d", epoch, prev)
			}
		}
		if !inEpoch {
			cur, nextPart = epoch, 0
		}
		if part != nextPart {
			return 0, errCorrupt("epoch %d part %d out of order (want %d)", epoch, part, nextPart)
		}
		if epoch > ctrEpoch {
			// A record past the trusted counter is the crash artifact of an
			// unacknowledged batch; it and everything after it are discarded.
			return offset, nil
		}
		first = false
		if epoch > snapEpoch {
			apply(rows)
		}
		offset += recLen
		if last {
			prev, inEpoch = epoch, false
			if epoch > snapEpoch {
				applied = epoch
			}
		} else {
			inEpoch, nextPart = true, part+1
		}
	}
	return offset, nil
}

// collectWAL reads a single-epoch redo log (SegDurable truncates the log at
// the start of every batch, so it holds at most one batch's record set) and
// returns the epoch and concatenated rows of the complete record set at its
// head, if any. Torn tails, tampered records, interleaved epochs, or
// out-of-order parts all yield complete == false rather than an error: the
// redo log only ever describes a batch the counter has NOT acknowledged, so
// an unreadable log means "nothing to roll forward", never an integrity
// violation — the acknowledged state lives in the segment store, which is
// verified separately.
func (d *dir) collectWAL(path string, walRows, blockSize int) (epoch uint64, rows []byte, complete bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil, false, nil
	}
	if err != nil {
		return 0, nil, false, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	rowLen := wirecode.KVRowLen(blockSize)
	recLen := int64(recordLen(walPrefixLen, walRows*rowLen))
	var offset int64
	var nextPart uint32
	first := true
	for {
		prefix, rec, err := d.readPrefixed(r, walContext, walPrefixLen, walRows*rowLen, offset)
		if err != nil {
			return 0, nil, false, nil
		}
		e := binary.LittleEndian.Uint64(prefix[0:8])
		p := binary.LittleEndian.Uint32(prefix[8:12])
		last := prefix[12] == 1
		if first {
			epoch, first = e, false
		} else if e != epoch {
			return 0, nil, false, nil
		}
		if p != nextPart {
			return 0, nil, false, nil
		}
		rows = append(rows, rec...)
		offset += recLen
		if last {
			return epoch, rows, true, nil
		}
		nextPart = p + 1
	}
}

// applyRows folds one WAL record's rows into a partition image: rows whose
// key is outside the dummy space overwrite the block of the matching
// object; writes to unknown keys are no-ops (matching batch semantics).
func applyRows(rows []byte, blockSize int, index map[uint64]int, data []byte) {
	rowLen := wirecode.KVRowLen(blockSize)
	for r := 0; r*rowLen < len(rows); r++ {
		row := rows[r*rowLen : (r+1)*rowLen]
		key := wirecode.KVRowKey(row)
		if store.IsDummyKey(key) {
			continue
		}
		if i, ok := index[key]; ok {
			copy(data[i*blockSize:(i+1)*blockSize], wirecode.KVRowValue(row))
		}
	}
}
