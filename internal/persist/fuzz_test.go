package persist

// Fuzz target for the sealed-state decoder: however the host mangles the
// partition directory — bit flips, truncation, reordered records, appended
// garbage, across any of the four files — recovery must either fail with an
// enclave.ErrIntegrity-class error or load exactly the acknowledged state.
// It must never panic and never silently load something else.
//
// `go test` runs the seed corpus; `go test -fuzz=FuzzRecoveryDecoder` explores.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"snoopy/internal/enclave"
)

func FuzzRecoveryDecoder(f *testing.F) {
	// Seeds: every file × every mutation kind, plus boundary positions.
	for fileIdx := byte(0); fileIdx < 4; fileIdx++ {
		for op := byte(0); op < 4; op++ {
			f.Add(fileIdx, op, uint32(0), byte(0xff))
			f.Add(fileIdx, op, uint32(1<<30), byte(1))
			f.Add(fileIdx, op, uint32(77), byte(0))
		}
	}
	f.Fuzz(func(t *testing.T, fileIdx, op byte, pos uint32, val byte) {
		cfg := Config{BlockSize: testBlock, WALRows: 4, SnapshotEvery: 100}
		dirPath := t.TempDir()
		dur, err := NewDurable(dirPath, newPartition(t), cfg)
		if err != nil {
			t.Fatal(err)
		}
		loadObjects(t, dur, 8)
		writeBatch(t, dur, 2, 1)
		writeBatch(t, dur, 3, 2)
		writeBatch(t, dur, 2, 3)
		dur.Close()

		name := []string{sealKeyFile, counterFile, snapshotFile, walFile}[fileIdx%4]
		path := filepath.Join(dirPath, name)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		switch op % 4 {
		case 0: // flip bits in one byte
			b[int(pos)%len(b)] ^= val | 1
		case 1: // truncate
			b = b[:int(pos)%(len(b)+1)]
		case 2: // reorder: swap the first two sealed WAL records, or halves
			recLen := recordLen(walPrefixLen, cfg.WALRows*(8+testBlock))
			if name == walFile && len(b) >= 2*recLen {
				tmp := append([]byte(nil), b[:recLen]...)
				copy(b, b[recLen:2*recLen])
				copy(b[recLen:2*recLen], tmp)
			} else {
				half := len(b) / 2
				tmp := append([]byte(nil), b[:half]...)
				copy(b, b[half:2*half])
				copy(b[half:2*half], tmp)
			}
		case 3: // append garbage
			for i := 0; i < int(pos%64)+1; i++ {
				b = append(b, val)
			}
		}
		if err := os.WriteFile(path, b, 0o600); err != nil {
			t.Fatal(err)
		}

		dur2, err := NewDurable(dirPath, newPartition(t), cfg)
		if err != nil {
			if !errors.Is(err, enclave.ErrIntegrity) {
				t.Fatalf("mutating %s (op %d): error outside the integrity class: %v", name, op%4, err)
			}
			return
		}
		// Recovery accepted the directory: the mutation must have been
		// harmless (identity, or past the acknowledged prefix) and the state
		// must be exactly the acknowledged one.
		defer dur2.Close()
		if got := dur2.Epoch(); got != 3 {
			t.Fatalf("mutating %s (op %d): silently loaded epoch %d, want 3", name, op%4, got)
		}
		expectValue(t, dur2, 2, 3)
		expectValue(t, dur2, 3, 2)
		expectValue(t, dur2, 1, 0)
	})
}
